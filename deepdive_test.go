package deepdive_test

import (
	"strings"
	"testing"

	"deepdive"
)

const spouseSource = `
@relation Sentence(sid, words).
@relation PersonMention(mid, sid, eid).
@relation Married(e1, e2).
@variable HasSpouse(m1, m2).
@relation HasSpouse_Ev(m1, m2, label).

@semantics(ratio).

Cand: HasSpouse(m1, m2) :-
    PersonMention(m1, s, e1), PersonMention(m2, s, e2), m1 != m2.

FE: HasSpouse(m1, m2) :-
    PersonMention(m1, s, e1), PersonMention(m2, s, e2),
    Sentence(s, words), m1 != m2
    weight = phrase(m1, m2, words).

Sup: HasSpouse_Ev(m1, m2, true) :-
    HasSpouse(m1, m2), PersonMention(m1, s, e1), PersonMention(m2, s, e2),
    Married(e1, e2).
`

// phraseUDF buckets the text between the two mentions; mention ids encode
// token positions as m<idx>.
func phraseUDF(args []string) string {
	words := strings.Fields(args[2])
	if len(words) > 2 {
		return strings.Join(words[1:len(words)-1], "_")
	}
	return "short"
}

func spouseEngine(t *testing.T) *deepdive.Engine {
	t.Helper()
	eng, err := deepdive.Open(spouseSource,
		deepdive.WithUDF("phrase", phraseUDF),
		deepdive.WithSeed(7),
		deepdive.WithLearning(15, 0.3),
		deepdive.WithInference(30, 400),
		deepdive.WithMaterialization(600, 0.01),
	)
	if err != nil {
		t.Fatal(err)
	}
	// Three sentences: two expressing marriage with "wife", one neutral.
	must(t, eng.Load("Sentence", []deepdive.Tuple{
		{"s1", "Alan and his wife Beth"},
		{"s2", "Carl and his wife Dana"},
		{"s3", "Eve met Frank"},
	}))
	must(t, eng.Load("PersonMention", []deepdive.Tuple{
		{"a", "s1", "Alan"}, {"b", "s1", "Beth"},
		{"c", "s2", "Carl"}, {"d", "s2", "Dana"},
		{"e", "s3", "Eve"}, {"f", "s3", "Frank"},
	}))
	must(t, eng.Load("Married", []deepdive.Tuple{
		{"Alan", "Beth"},
	}))
	must(t, eng.Init())
	return eng
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func TestEngineEndToEnd(t *testing.T) {
	eng := spouseEngine(t)
	st := eng.Stats()
	if st.Variables != 6 { // 3 sentences × 2 ordered pairs
		t.Fatalf("vars = %d, want 6", st.Variables)
	}
	if st.Evidence != 1 { // (a,b) supervised via Married(Alan, Beth)
		t.Fatalf("evidence = %d, want 1", st.Evidence)
	}
	eng.Learn()
	eng.Infer()
	// Distant supervision on s1's "wife" phrase should transfer to s2.
	p, ok := eng.Marginal("HasSpouse", deepdive.Tuple{"c", "d"})
	if !ok {
		t.Fatal("no marginal for (c,d)")
	}
	if p < 0.6 {
		t.Fatalf("P(HasSpouse(c,d)) = %v, want > 0.6 (learned from s1)", p)
	}
	pe, ok := eng.Marginal("HasSpouse", deepdive.Tuple{"e", "f"})
	if !ok {
		t.Fatal("no marginal for (e,f)")
	}
	if pe >= p {
		t.Fatalf("neutral pair (e,f)=%v not less likely than wife pair (c,d)=%v", pe, p)
	}
	// Evidence fact reports probability 1.
	if pa, _ := eng.Marginal("HasSpouse", deepdive.Tuple{"a", "b"}); pa != 1 {
		t.Fatalf("evidence marginal = %v", pa)
	}
	// Extractions include the evidence fact.
	ex := eng.Extractions("HasSpouse", 0.5)
	foundEvidence := false
	for _, f := range ex {
		if f.Evidence && f.Tuple[0] == "a" {
			foundEvidence = true
		}
	}
	if !foundEvidence {
		t.Fatalf("extractions missing evidence fact: %+v", ex)
	}
}

func TestEngineIncrementalUpdate(t *testing.T) {
	eng := spouseEngine(t)
	eng.Learn()
	if _, err := eng.Materialize(); err != nil {
		t.Fatal(err)
	}
	// New document arrives incrementally.
	res, err := eng.Update(deepdive.Update{
		Inserts: map[string][]deepdive.Tuple{
			"Sentence":      {{"s4", "Gus and his wife Hana"}},
			"PersonMention": {{"g", "s4", "Gus"}, {"h", "s4", "Hana"}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.NewVars == 0 {
		t.Fatal("new document created no variables")
	}
	p, ok := eng.Marginal("HasSpouse", deepdive.Tuple{"g", "h"})
	if !ok {
		t.Fatal("no marginal for incremental pair")
	}
	if p < 0.5 {
		t.Fatalf("P(HasSpouse(g,h)) = %v, want > 0.5 from the wife feature", p)
	}
}

func TestEngineUpdateWithNewRule(t *testing.T) {
	eng := spouseEngine(t)
	eng.Learn()
	if _, err := eng.Materialize(); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Update(deepdive.Update{
		RuleSource: `Sym: HasSpouse(m2, m1) :- HasSpouse(m1, m2) weight = 1.5.`,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.NewFactors == 0 {
		t.Fatal("symmetry rule added no factors")
	}
	// Symmetry should lift (b,a) via the evidence on (a,b).
	p, ok := eng.Marginal("HasSpouse", deepdive.Tuple{"b", "a"})
	if !ok {
		t.Fatal("no marginal for (b,a)")
	}
	if p < 0.5 {
		t.Fatalf("P(HasSpouse(b,a)) = %v, want > 0.5 via symmetry", p)
	}
}

func TestEngineErrors(t *testing.T) {
	if _, err := deepdive.Open("not a program"); err == nil {
		t.Fatal("bad program accepted")
	}
	eng := spouseEngine(t)
	if err := eng.Load("Sentence", nil); err == nil {
		t.Fatal("Load after Init accepted")
	}
	if _, err := eng.Update(deepdive.Update{}); err == nil {
		t.Fatal("Update before Materialize accepted")
	}
	if _, ok := eng.Marginal("HasSpouse", deepdive.Tuple{"zz", "yy"}); ok {
		t.Fatal("marginal for unknown tuple")
	}
	if eng.Relation("Nope") != nil {
		t.Fatal("unknown relation returned tuples")
	}
	if got := eng.Relation("Married"); len(got) != 1 {
		t.Fatalf("Married relation = %v", got)
	}
	if got := eng.Candidates("HasSpouse"); len(got) != 6 {
		t.Fatalf("candidates = %d, want 6", len(got))
	}
}

func TestOpenRejectsUnknownUDF(t *testing.T) {
	_, err := deepdive.Open(`
@variable Q(x).
@relation R(x).
Q(x) :- R(x).
Q(x) :- R(x) weight = mystery(x).
`)
	if err == nil || !strings.Contains(err.Error(), "unknown UDF") {
		t.Fatalf("err = %v", err)
	}
}

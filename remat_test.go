package deepdive_test

// Tests for the quality autopilot's background re-materializer: the swap
// must land and refill the consumed store, any write must preempt an
// in-flight materialization (no torn graph reads — meaningful under
// -race), concurrent snapshot readers must stay consistent across engine
// swaps, and Close/CloseNow during a materialization must cancel it and
// leave no goroutine behind.

import (
	"context"
	"fmt"
	"runtime"
	"testing"
	"time"

	"deepdive"
)

// rematKB builds the spouse KB with a deliberately small store and an
// aggressive low-water mark, so a single update's inference drains the
// store below the mark and arms the re-materializer.
func rematKB(t *testing.T, budget time.Duration, opts ...deepdive.Option) *deepdive.KB {
	t.Helper()
	return spouseKB(t, append([]deepdive.Option{
		deepdive.WithMaterialization(300, 0.01),
		deepdive.WithInference(20, 120),
		deepdive.WithRematerialization(250, budget),
	}, opts...)...)
}

// waitAutopilot polls the live autopilot state until cond holds.
func waitAutopilot(t *testing.T, kb *deepdive.KB, what string, cond func(deepdive.AutopilotStats) bool) deepdive.AutopilotStats {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		ap := kb.Autopilot()
		if cond(ap) {
			return ap
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s; autopilot: %+v", what, ap)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRematLandsAndRefillsStore pins the happy path: one update drains
// the store below the low-water mark, the background re-materialization
// swaps in a full fresh store, publishes a snapshot, and the KB keeps
// serving sampling-strategy updates instead of falling back to
// variational for good.
func TestRematLandsAndRefillsStore(t *testing.T) {
	kb := rematKB(t, 0)
	defer kb.Close()
	ctx := context.Background()

	before := kb.Autopilot()
	if before.StoreRemaining < before.LowWater {
		t.Fatalf("store already below low-water before any update: %+v", before)
	}
	epoch := kb.Snapshot().Epoch()

	res, err := kb.Apply(ctx, docUpdate(0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Strategy != deepdive.StrategySampling {
		t.Fatalf("first update strategy = %v, want sampling (store is full)", res.Strategy)
	}

	ap := waitAutopilot(t, kb, "re-materialization to land", func(ap deepdive.AutopilotStats) bool {
		return ap.Rematerializations >= 1 && !ap.Rematerializing
	})
	if ap.StoreRemaining != ap.StoreLen || ap.StoreLen < 300 {
		t.Fatalf("swapped store not full: %d/%d", ap.StoreRemaining, ap.StoreLen)
	}
	snap := kb.Snapshot()
	if snap.Epoch() <= epoch+1 {
		t.Fatalf("re-materialization did not publish (epoch %d, update published %d)", snap.Epoch(), epoch+1)
	}
	// The swapped-in marginals are a fresh i.i.d. estimate of the current
	// distribution: every candidate stays resolvable and the update's
	// wife-feature pair stays confidently extracted.
	if p, ok := snap.Marginal("HasSpouse", deepdive.Tuple{"p0a", "p0b"}); !ok || p < 0.5 {
		t.Fatalf("post-swap marginal for inserted pair = (%v, %v), want > 0.5", p, ok)
	}
	if s := snap.Stats().Autopilot; s == nil || s.Rematerializations < 1 {
		t.Fatalf("published snapshot does not carry the swap: %+v", s)
	}

	// The reset boundary is live: the next update draws on the fresh
	// store and runs the sampling strategy again.
	res, err = kb.Apply(ctx, docUpdate(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Strategy != deepdive.StrategySampling {
		t.Fatalf("post-swap update strategy = %v, want sampling off the refilled store", res.Strategy)
	}
}

// TestRematPreemptedByApply pins the write-preemption contract: a write
// arriving while a re-materialization is sampling cancels it (the swap
// is abandoned, counted in RematPreempted) and the write proceeds
// normally; a later idle window still lands a fresh materialization.
func TestRematPreemptedByApply(t *testing.T) {
	// A long budget holds the materialization in its cancellable sampling
	// loop so the next Apply reliably catches it in flight.
	kb := rematKB(t, 2*time.Second)
	defer kb.Close()
	ctx := context.Background()

	if _, err := kb.Apply(ctx, docUpdate(0)); err != nil {
		t.Fatal(err)
	}
	waitAutopilot(t, kb, "re-materialization to start", func(ap deepdive.AutopilotStats) bool {
		return ap.Rematerializing
	})
	if _, err := kb.Apply(ctx, docUpdate(1)); err != nil {
		t.Fatal(err)
	}
	if got := kb.Autopilot().RematPreempted; got < 1 {
		t.Fatalf("RematPreempted = %d after preempting write, want >= 1", got)
	}

	// The preempting update re-armed the trigger on its way out; with the
	// writers now idle that relaunched materialization must land.
	ap := waitAutopilot(t, kb, "post-preemption re-materialization", func(ap deepdive.AutopilotStats) bool {
		return ap.Rematerializations >= 1
	})
	if ap.StoreRemaining < ap.LowWater {
		t.Fatalf("landed swap left the store below low-water: %+v", ap)
	}
}

// TestRematRaceWithReadersAndApplies races lock-free snapshot readers
// against a pipelined update stream with the re-materializer armed on a
// short budget, so engine swaps, preemptions, delta grounding, and
// reads all interleave. Meaningful under -race; the assertions check
// every observed view stays internally consistent across swaps.
func TestRematRaceWithReadersAndApplies(t *testing.T) {
	kb := rematKB(t, 20*time.Millisecond, deepdive.WithParallelism(2))
	defer kb.Close()

	stop := make(chan struct{})
	readerDone := make(chan error, 4)
	for r := 0; r < 4; r++ {
		go func() {
			var err error
			var lastEpoch uint64
			for {
				select {
				case <-stop:
					readerDone <- err
					return
				default:
				}
				s := kb.Snapshot()
				if e := s.Epoch(); e < lastEpoch {
					err = fmt.Errorf("epoch went backwards: %d then %d", lastEpoch, e)
				} else {
					lastEpoch = e
				}
				for _, tup := range s.Candidates("HasSpouse") {
					if _, ok := s.Marginal("HasSpouse", tup); !ok {
						err = fmt.Errorf("epoch %d: candidate %v lost its marginal across a swap", s.Epoch(), tup)
					}
				}
				if ap := s.Stats().Autopilot; ap != nil && ap.StoreRemaining > ap.StoreLen {
					err = fmt.Errorf("epoch %d: impossible store level %d/%d", s.Epoch(), ap.StoreRemaining, ap.StoreLen)
				}
				kb.Autopilot() // race the live-stats path too
			}
		}()
	}

	q := kb.Updates()
	var tickets []*deepdive.Ticket
	for i := 0; i < 8; i++ {
		tickets = append(tickets, q.Submit(conflictMark(docUpdate(100+i))))
	}
	for i, tk := range tickets {
		if _, err := tk.Wait(context.Background()); err != nil {
			t.Fatalf("update %d: %v", i, err)
		}
	}
	// Quiesce: the last update re-armed the materializer; let one land
	// while the readers are still hammering.
	waitAutopilot(t, kb, "a swap to land under reader load", func(ap deepdive.AutopilotStats) bool {
		return ap.Rematerializations >= 1
	})
	close(stop)
	for r := 0; r < 4; r++ {
		if err := <-readerDone; err != nil {
			t.Fatal(err)
		}
	}
	if got, want := kb.Snapshot().GroundVersion(), uint64(9); got != want {
		t.Fatalf("final ground version %d, want %d", got, want)
	}
}

// TestRematCloseDuringMaterialization pins the shutdown contract: Close
// (drain) and CloseNow (abort) arriving while a re-materialization is
// sampling must cancel it promptly, wait the goroutine out, and leave
// nothing running — the KB keeps serving its last snapshot.
func TestRematCloseDuringMaterialization(t *testing.T) {
	for _, mode := range []string{"close", "closenow"} {
		t.Run(mode, func(t *testing.T) {
			baseline := runtime.NumGoroutine()
			kb := rematKB(t, 5*time.Second)
			if _, err := kb.Apply(context.Background(), docUpdate(0)); err != nil {
				t.Fatal(err)
			}
			waitAutopilot(t, kb, "re-materialization to start", func(ap deepdive.AutopilotStats) bool {
				return ap.Rematerializing
			})
			snap := kb.Snapshot()

			start := time.Now()
			if mode == "close" {
				kb.Close()
			} else {
				kb.CloseNow()
			}
			// A 5s sampling budget was pending; shutdown must cancel it
			// cooperatively, not wait it out.
			if elapsed := time.Since(start); elapsed > 3*time.Second {
				t.Fatalf("%s took %v with a materialization in flight", mode, elapsed)
			}
			if ap := kb.Autopilot(); ap.Rematerializing {
				t.Fatalf("%s returned with a run still marked in flight: %+v", mode, ap)
			}
			if got := kb.Snapshot(); got != snap {
				t.Fatalf("%s published a snapshot (epoch %d -> %d)", mode, snap.Epoch(), got.Epoch())
			}

			// Drain assertion: every KB goroutine (queue worker and
			// re-materializer) must be gone. Poll briefly — exiting
			// goroutines unwind asynchronously after Close returns.
			deadline := time.Now().Add(5 * time.Second)
			for runtime.NumGoroutine() > baseline && time.Now().Before(deadline) {
				time.Sleep(10 * time.Millisecond)
			}
			if n := runtime.NumGoroutine(); n > baseline {
				t.Fatalf("%s leaked goroutines: %d running, baseline %d", mode, n, baseline)
			}
		})
	}
}

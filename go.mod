module deepdive

go 1.22

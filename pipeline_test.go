package deepdive_test

// Tests for the pipelined ground→learn→infer update path: a differential
// harness asserting the stage-overlapped queue publishes the exact same
// epochs and marginals as the serialized lesion and as direct Apply
// calls, per-ticket cancellation semantics, CloseNow, and concurrent
// snapshot readers racing a pipelined stream (run under -race).

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"deepdive"
)

// conflictMark makes an update conflict with every other marked update:
// it inserts and deletes one shared marker tuple (inserts apply before
// deletes, so the marker nets out of the database) touching a common
// (relation, tuple) key. Marked updates therefore never coalesce, which
// pins the queue's batching to one update per batch independent of
// worker timing — the property the differential tests need to compare
// epoch streams across queue configurations.
func conflictMark(u deepdive.Update) deepdive.Update {
	marker := deepdive.Tuple{"conflict-marker", "pipeline"}
	if u.Inserts == nil {
		u.Inserts = map[string][]deepdive.Tuple{}
	}
	if u.Deletes == nil {
		u.Deletes = map[string][]deepdive.Tuple{}
	}
	u.Inserts["Sentence"] = append(u.Inserts["Sentence"], marker)
	u.Deletes["Sentence"] = append(u.Deletes["Sentence"], marker)
	return u
}

// pipelineStream builds a randomized, conflict-chained update stream:
// new two-mention documents with occasional retractions of an earlier
// document's mention.
func pipelineStream(n int) []deepdive.Update {
	rng := rand.New(rand.NewSource(11))
	retracted := map[int]bool{}
	var ups []deepdive.Update
	for i := 0; i < n; i++ {
		u := docUpdate(100 + i)
		if i > 0 && rng.Intn(3) == 0 {
			j := rng.Intn(i)
			if !retracted[j] {
				retracted[j] = true
				sid := fmt.Sprintf("sx%d", 100+j)
				m1 := fmt.Sprintf("p%da", 100+j)
				u.Deletes = map[string][]deepdive.Tuple{
					"PersonMention": {{m1, sid, "Pat" + sid}},
				}
			}
		}
		ups = append(ups, conflictMark(u))
	}
	return ups
}

// statsEqual compares GraphStats with the autopilot state compared by
// value: GraphStats carries it as a pointer, so plain struct equality
// would compare identities and always fail across two KBs. Comparing the
// values keeps the autopilot's decisions (strategy counts, probe
// histogram, store level) inside the bit-identical differential.
func statsEqual(a, b deepdive.GraphStats) bool {
	pa, pb := a.Autopilot, b.Autopilot
	a.Autopilot, b.Autopilot = nil, nil
	if a != b {
		return false
	}
	if (pa == nil) != (pb == nil) {
		return false
	}
	return pa == nil || *pa == *pb
}

// requireSnapshotsEqual asserts two snapshots are bit-identical views:
// same epoch stream position, same grounding lineage, same candidates,
// same marginal for every candidate fact.
func requireSnapshotsEqual(t *testing.T, a, b *deepdive.Snapshot, la, lb string) {
	t.Helper()
	if a.Epoch() != b.Epoch() {
		t.Fatalf("epoch: %s=%d %s=%d", la, a.Epoch(), lb, b.Epoch())
	}
	if a.GroundVersion() != b.GroundVersion() || a.GraphEpoch() != b.GraphEpoch() {
		t.Fatalf("lineage: %s=(%d,%d) %s=(%d,%d)", la, a.GroundVersion(), a.GraphEpoch(),
			lb, b.GroundVersion(), b.GraphEpoch())
	}
	if !statsEqual(a.Stats(), b.Stats()) {
		t.Fatalf("stats: %s=%+v %s=%+v", la, a.Stats(), lb, b.Stats())
	}
	ca, cb := a.Candidates("HasSpouse"), b.Candidates("HasSpouse")
	if len(ca) != len(cb) {
		t.Fatalf("candidates: %s=%d %s=%d", la, len(ca), lb, len(cb))
	}
	for i, tup := range ca {
		if tup.Key() != cb[i].Key() {
			t.Fatalf("candidate %d: %s=%v %s=%v", i, la, tup, lb, cb[i])
		}
		ma, oka := a.Marginal("HasSpouse", tup)
		mb, okb := b.Marginal("HasSpouse", tup)
		if oka != okb || ma != mb {
			t.Fatalf("marginal %v: %s=(%v,%v) %s=(%v,%v)", tup, la, ma, oka, lb, mb, okb)
		}
	}
}

// TestPipelinedQueueMatchesSerialized is the differential harness for
// the stage-overlapped queue: the same conflict-chained update stream
// runs through (1) the pipelined queue, (2) the serialized-queue lesion,
// and (3) direct synchronous Apply calls, and all three must publish
// bit-identical final views — the pipeline is a pure throughput
// optimization with no observable semantic difference.
func TestPipelinedQueueMatchesSerialized(t *testing.T) {
	ups := pipelineStream(8)

	viaQueue := func(opts ...deepdive.Option) *deepdive.Snapshot {
		kb := spouseKB(t, opts...)
		defer kb.Close()
		q := kb.Updates()
		var tickets []*deepdive.Ticket
		for _, u := range ups {
			tickets = append(tickets, q.Submit(u))
		}
		for i, tk := range tickets {
			if _, err := tk.Wait(context.Background()); err != nil {
				t.Fatalf("update %d: %v", i, err)
			}
		}
		if got := q.Batches(); got != uint64(len(ups)) {
			t.Fatalf("batches = %d, want %d (conflict chaining must force singleton batches)", got, len(ups))
		}
		return kb.Snapshot()
	}

	pipelined := viaQueue()
	serialized := viaQueue(deepdive.WithSerializedUpdates(true))
	requireSnapshotsEqual(t, pipelined, serialized, "pipelined", "serialized")

	direct := spouseKB(t)
	defer direct.Close()
	for i, u := range ups {
		if _, err := direct.Apply(context.Background(), u); err != nil {
			t.Fatalf("direct apply %d: %v", i, err)
		}
	}
	requireSnapshotsEqual(t, pipelined, direct.Snapshot(), "pipelined", "direct")
}

// TestSubmitCtxPendingCancellation pins the per-ticket contract: a
// context cancelled while the update is still pending retracts it — the
// ticket resolves to the context error, nothing is applied — and later
// updates are unaffected.
func TestSubmitCtxPendingCancellation(t *testing.T) {
	kb := spouseKB(t)
	defer kb.Close()
	q := kb.Updates()
	q.Pause()

	ctx, cancel := context.WithCancel(context.Background())
	doomed, err := q.SubmitCtx(ctx, docUpdate(300))
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	survivor := q.Submit(docUpdate(301))
	q.Resume()

	if _, werr := doomed.Wait(context.Background()); !errors.Is(werr, context.Canceled) {
		t.Fatalf("cancelled pending ticket resolved %v, want context.Canceled", werr)
	}
	res, werr := survivor.Wait(context.Background())
	if werr != nil {
		t.Fatalf("survivor ticket: %v", werr)
	}
	if res.Coalesced != 1 {
		t.Fatalf("survivor batch coalesced %d updates, want 1 (cancelled update must not be applied)", res.Coalesced)
	}
	// The retracted document must not be in the published view.
	if got := kb.Snapshot().Candidates("HasSpouse"); len(got) == 0 {
		t.Fatal("survivor update not applied")
	}
	sid := "sx300"
	for _, tup := range kb.Snapshot().Candidates("HasSpouse") {
		if len(tup) == 2 && (tup[0] == "p300a" || tup[0] == "p300b") {
			t.Fatalf("retracted update's candidate %v was applied; sid=%s", tup, sid)
		}
	}
}

// TestQueueCloseNow pins the lifecycle contract: CloseNow cancels the
// queue's lifecycle context, so pending batches resolve to the context
// error without being applied and the queue shuts down.
func TestQueueCloseNow(t *testing.T) {
	kb := spouseKB(t)
	q := kb.Updates()
	q.Pause()
	var tickets []*deepdive.Ticket
	for i := 0; i < 3; i++ {
		tickets = append(tickets, q.Submit(docUpdate(400+i)))
	}
	epoch := kb.Snapshot().Epoch()
	q.CloseNow()
	for i, tk := range tickets {
		if _, err := tk.Wait(context.Background()); !errors.Is(err, context.Canceled) {
			t.Fatalf("ticket %d resolved %v, want context.Canceled", i, err)
		}
	}
	if got := kb.Snapshot().Epoch(); got != epoch {
		t.Fatalf("CloseNow published epoch %d (was %d); aborted batches must publish nothing", got, epoch)
	}
	if tk := q.Submit(docUpdate(409)); tk != nil {
		if _, err := tk.Wait(context.Background()); !errors.Is(err, deepdive.ErrQueueClosed) {
			t.Fatalf("post-close submit resolved %v, want ErrQueueClosed", err)
		}
	}
}

// TestSnapshotReadersDuringPipelinedStream races lock-free snapshot
// readers against the full pipeline — parallel delta grounding under
// groundMu overlapping learning/inference under stateMu — and checks
// every observed view is internally consistent. Meaningful under -race.
func TestSnapshotReadersDuringPipelinedStream(t *testing.T) {
	kb := spouseKB(t, deepdive.WithParallelism(2))
	defer kb.Close()
	q := kb.Updates()

	stop := make(chan struct{})
	readerDone := make(chan error, 4)
	for r := 0; r < 4; r++ {
		go func() {
			var err error
			for {
				select {
				case <-stop:
					readerDone <- err
					return
				default:
				}
				s := kb.Snapshot()
				cands := s.Candidates("HasSpouse")
				exts := s.Extractions("HasSpouse", 0.0)
				if len(exts) > len(cands) {
					err = fmt.Errorf("snapshot epoch %d: %d extractions from %d candidates",
						s.Epoch(), len(exts), len(cands))
				}
				for _, tup := range cands {
					s.Marginal("HasSpouse", tup)
				}
			}
		}()
	}

	ups := pipelineStream(6)
	var tickets []*deepdive.Ticket
	for _, u := range ups {
		tickets = append(tickets, q.Submit(u))
	}
	for i, tk := range tickets {
		if _, err := tk.Wait(context.Background()); err != nil {
			t.Fatalf("update %d: %v", i, err)
		}
	}
	close(stop)
	for r := 0; r < 4; r++ {
		if err := <-readerDone; err != nil {
			t.Fatal(err)
		}
	}
	if got, want := kb.Snapshot().GroundVersion(), uint64(1+len(ups)); got != want {
		t.Fatalf("final ground version %d, want %d", got, want)
	}
}

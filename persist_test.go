package deepdive_test

// Durability tests: checkpoint/restart round trips, the crash
// kill-point harness (recovery must serve marginals bit-identical to a
// never-crashed oracle at every injection point), WAL replay
// determinism across worker counts, and the cold-start benchmarks
// behind BENCH_persist.json.

import (
	"context"
	"errors"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"deepdive"
)

// persistSpouseKB is spouseKB for any testing.TB (benchmarks included):
// program parsed, base data loaded, grounded, learned, inferred, and
// materialized.
func persistSpouseKB(tb testing.TB, opts ...deepdive.Option) *deepdive.KB {
	tb.Helper()
	kb, err := deepdive.OpenKB(spouseSource, append([]deepdive.Option{
		deepdive.WithUDF("phrase", phraseUDF),
		deepdive.WithSeed(7),
		deepdive.WithLearning(15, 0.3),
		deepdive.WithInference(30, 400),
		deepdive.WithMaterialization(600, 0.01),
	}, opts...)...)
	if err != nil {
		tb.Fatal(err)
	}
	bmust(tb, kb.Load("Sentence", []deepdive.Tuple{
		{"s1", "Alan and his wife Beth"},
		{"s2", "Carl and his wife Dana"},
		{"s3", "Eve met Frank"},
	}))
	bmust(tb, kb.Load("PersonMention", []deepdive.Tuple{
		{"a", "s1", "Alan"}, {"b", "s1", "Beth"},
		{"c", "s2", "Carl"}, {"d", "s2", "Dana"},
		{"e", "s3", "Eve"}, {"f", "s3", "Frank"},
	}))
	bmust(tb, kb.Load("Married", []deepdive.Tuple{
		{"Alan", "Beth"},
	}))
	ctx := context.Background()
	bmust(tb, kb.Init(ctx))
	if _, err := kb.Learn(ctx); err != nil {
		tb.Fatal(err)
	}
	if _, err := kb.Infer(ctx); err != nil {
		tb.Fatal(err)
	}
	if _, err := kb.Materialize(ctx); err != nil {
		tb.Fatal(err)
	}
	return kb
}

func bmust(tb testing.TB, err error) {
	tb.Helper()
	if err != nil {
		tb.Fatal(err)
	}
}

// reopenSpouseKB restarts from dir with the standard options and
// asserts the KB actually recovered from disk rather than starting
// fresh.
func reopenSpouseKB(tb testing.TB, dir string, opts ...deepdive.Option) *deepdive.KB {
	tb.Helper()
	kb, err := deepdive.OpenKB(spouseSource, append([]deepdive.Option{
		deepdive.WithUDF("phrase", phraseUDF),
		deepdive.WithSeed(7),
		deepdive.WithLearning(15, 0.3),
		deepdive.WithInference(30, 400),
		deepdive.WithMaterialization(600, 0.01),
		deepdive.WithDataDir(dir),
	}, opts...)...)
	if err != nil {
		tb.Fatal(err)
	}
	if !kb.Recovered() {
		tb.Fatal("reopened KB did not recover from snapshot")
	}
	return kb
}

// spouseBits captures every HasSpouse candidate's marginal as raw
// float64 bits: the harness asserts bit-identity, not tolerance.
func spouseBits(kb *deepdive.KB) map[string]uint64 {
	snap := kb.Snapshot()
	out := make(map[string]uint64)
	for _, c := range snap.Candidates("HasSpouse") {
		m, ok := snap.Marginal("HasSpouse", c)
		if !ok {
			continue
		}
		key := ""
		for _, f := range c {
			key += f + "\x00"
		}
		out[key] = math.Float64bits(m)
	}
	return out
}

func assertSameBits(tb testing.TB, want, got map[string]uint64, label string) {
	tb.Helper()
	if len(want) == 0 {
		tb.Fatalf("%s: empty oracle marginals", label)
	}
	if len(got) != len(want) {
		tb.Fatalf("%s: %d candidates, oracle has %d", label, len(got), len(want))
	}
	for k, w := range want {
		g, ok := got[k]
		if !ok {
			tb.Fatalf("%s: candidate %q missing", label, k)
		}
		if g != w {
			tb.Fatalf("%s: candidate %q marginal bits %x, oracle %x (%v vs %v)",
				label, k, g, w, math.Float64frombits(g), math.Float64frombits(w))
		}
	}
}

// faultArm injects a single failure at one kill point, then disarms.
type faultArm struct {
	mu    sync.Mutex
	point string
	fired int
}

func (f *faultArm) hook(p string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if p == f.point {
		f.point = ""
		f.fired++
		return errors.New("injected crash")
	}
	return nil
}

func (f *faultArm) arm(p string) {
	f.mu.Lock()
	f.point = p
	f.mu.Unlock()
}

func (f *faultArm) firedCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.fired
}

func TestCheckpointRestart(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	kb := persistSpouseKB(t, deepdive.WithDataDir(dir))
	bmust(t, kb.Checkpoint(ctx))
	for i := 0; i < 3; i++ {
		if _, err := kb.Apply(ctx, docUpdate(i)); err != nil {
			t.Fatal(err)
		}
	}
	want := spouseBits(kb)
	bmust(t, kb.Close())

	// Restart replays the three logged updates on top of the snapshot.
	kb2 := reopenSpouseKB(t, dir)
	assertSameBits(t, want, spouseBits(kb2), "after restart")

	// The recovered KB is live: it takes updates and checkpoints.
	if _, err := kb2.Apply(ctx, docUpdate(7)); err != nil {
		t.Fatal(err)
	}
	bmust(t, kb2.Checkpoint(ctx))
	want2 := spouseBits(kb2)
	bmust(t, kb2.Close())

	// Second restart lands on the new snapshot with an empty WAL tail.
	kb3 := reopenSpouseKB(t, dir)
	defer kb3.Close()
	assertSameBits(t, want2, spouseBits(kb3), "after second restart")

	// Only the newest generation survives a successful checkpoint.
	snaps, err := filepath.Glob(filepath.Join(dir, "snap-*.ddkb"))
	bmust(t, err)
	if len(snaps) != 1 {
		t.Fatalf("stale snapshots not removed: %v", snaps)
	}
}

func TestCheckpointRequiresSetup(t *testing.T) {
	kb := persistSpouseKB(t) // no data dir
	defer kb.Close()
	if err := kb.Checkpoint(context.Background()); err == nil {
		t.Fatal("Checkpoint without WithDataDir succeeded")
	}

	kb2, err := deepdive.OpenKB(spouseSource,
		deepdive.WithUDF("phrase", phraseUDF),
		deepdive.WithDataDir(t.TempDir()))
	bmust(t, err)
	defer kb2.Close()
	if kb2.Recovered() {
		t.Fatal("empty data dir reported as recovered")
	}
	if err := kb2.Checkpoint(context.Background()); err == nil {
		t.Fatal("Checkpoint before Init succeeded")
	}
}

// TestCrashTornWALTail simulates a crash mid-append: garbage lands
// after the last complete record. Recovery truncates the torn tail and
// serves exactly the acknowledged updates.
func TestCrashTornWALTail(t *testing.T) {
	ctx := context.Background()

	oracle := persistSpouseKB(t, deepdive.WithDataDir(t.TempDir()))
	defer oracle.Close()
	bmust(t, oracle.Checkpoint(ctx))
	for i := 0; i < 2; i++ {
		if _, err := oracle.Apply(ctx, docUpdate(i)); err != nil {
			t.Fatal(err)
		}
	}
	want := spouseBits(oracle)

	dir := t.TempDir()
	victim := persistSpouseKB(t, deepdive.WithDataDir(dir))
	bmust(t, victim.Checkpoint(ctx))
	for i := 0; i < 2; i++ {
		if _, err := victim.Apply(ctx, docUpdate(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Crash: abandon the KB and scribble a torn record onto the live
	// segment, as a power cut mid-write would.
	wals, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	bmust(t, err)
	if len(wals) != 1 {
		t.Fatalf("expected one WAL segment, got %v", wals)
	}
	f, err := os.OpenFile(wals[0], os.O_WRONLY|os.O_APPEND, 0)
	bmust(t, err)
	if _, err := f.Write([]byte{0x57, 0x44, 0x52, 0x31, 0x03, 0x00}); err != nil {
		t.Fatal(err)
	}
	bmust(t, f.Close())

	kb := reopenSpouseKB(t, dir)
	defer kb.Close()
	assertSameBits(t, want, spouseBits(kb), "torn WAL tail")

	// The trimmed segment keeps taking appends after recovery.
	if _, err := kb.Apply(ctx, docUpdate(9)); err != nil {
		t.Fatal(err)
	}
}

// TestCrashWALAppendLost covers the kill point where the record itself
// is lost (crash before the write reached the log). The update was
// never acknowledged — Apply returns an error, durability suspends
// until repair — and recovery serves the state without it.
func TestCrashWALAppendLost(t *testing.T) {
	ctx := context.Background()

	oracle := persistSpouseKB(t, deepdive.WithDataDir(t.TempDir()))
	defer oracle.Close()
	bmust(t, oracle.Checkpoint(ctx))
	for i := 0; i < 2; i++ {
		if _, err := oracle.Apply(ctx, docUpdate(i)); err != nil {
			t.Fatal(err)
		}
	}
	want := spouseBits(oracle)

	dir := t.TempDir()
	arm := &faultArm{}
	// Auto-repair off: this test pins the latched-broken behavior itself
	// (the self-healing loop has its own tests in health_test.go).
	victim := persistSpouseKB(t, deepdive.WithDataDir(dir),
		deepdive.WithPersistFaultHook(arm.hook), deepdive.WithAutoRepair(false))
	bmust(t, victim.Checkpoint(ctx))
	for i := 0; i < 2; i++ {
		if _, err := victim.Apply(ctx, docUpdate(i)); err != nil {
			t.Fatal(err)
		}
	}
	arm.arm(deepdive.FaultWALAppend)
	if _, err := victim.Apply(ctx, docUpdate(2)); !errors.Is(err, deepdive.ErrDurabilitySuspended) {
		t.Fatalf("update with lost WAL record: got %v, want ErrDurabilitySuspended", err)
	}
	if arm.firedCount() != 1 {
		t.Fatal("fault hook did not fire")
	}
	// Durability is latched broken: later updates refuse too.
	if _, err := victim.Apply(ctx, docUpdate(3)); !errors.Is(err, deepdive.ErrDurabilitySuspended) {
		t.Fatalf("update on broken chain: got %v, want ErrDurabilitySuspended", err)
	}

	// Crash here: recovery sees only the two acknowledged updates.
	kb := reopenSpouseKB(t, dir)
	defer kb.Close()
	assertSameBits(t, want, spouseBits(kb), "lost WAL append")
	if _, err := kb.Apply(ctx, docUpdate(9)); err != nil {
		t.Fatal(err)
	}
}

// TestWALRepairCheckpoint is the no-crash continuation of the lost
// append: Checkpoint re-establishes the durable chain and updates flow
// again.
func TestWALRepairCheckpoint(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	arm := &faultArm{}
	kb := persistSpouseKB(t, deepdive.WithDataDir(dir),
		deepdive.WithPersistFaultHook(arm.hook), deepdive.WithAutoRepair(false))
	bmust(t, kb.Checkpoint(ctx))
	if _, err := kb.Apply(ctx, docUpdate(0)); err != nil {
		t.Fatal(err)
	}
	arm.arm(deepdive.FaultWALAppend)
	if _, err := kb.Apply(ctx, docUpdate(1)); err == nil {
		t.Fatal("lost-record update acknowledged")
	}
	if _, err := kb.Apply(ctx, docUpdate(2)); err == nil {
		t.Fatal("update accepted on broken chain")
	}
	bmust(t, kb.Checkpoint(ctx)) // repair
	if _, err := kb.Apply(ctx, docUpdate(3)); err != nil {
		t.Fatalf("update after repair: %v", err)
	}
	want := spouseBits(kb)
	bmust(t, kb.Close())

	kb2 := reopenSpouseKB(t, dir)
	defer kb2.Close()
	assertSameBits(t, want, spouseBits(kb2), "after repair checkpoint")
}

// TestCrashLoggedUnpublished covers the window where the record is
// durable but the crash hits before the update's inference publishes:
// replay completes the update, so recovery matches an oracle that
// applied it fully.
func TestCrashLoggedUnpublished(t *testing.T) {
	ctx := context.Background()

	oracle := persistSpouseKB(t, deepdive.WithDataDir(t.TempDir()))
	defer oracle.Close()
	bmust(t, oracle.Checkpoint(ctx))
	for i := 0; i < 3; i++ {
		if _, err := oracle.Apply(ctx, docUpdate(i)); err != nil {
			t.Fatal(err)
		}
	}
	want := spouseBits(oracle)

	dir := t.TempDir()
	arm := &faultArm{}
	victim := persistSpouseKB(t, deepdive.WithDataDir(dir),
		deepdive.WithPersistFaultHook(arm.hook))
	bmust(t, victim.Checkpoint(ctx))
	for i := 0; i < 2; i++ {
		if _, err := victim.Apply(ctx, docUpdate(i)); err != nil {
			t.Fatal(err)
		}
	}
	arm.arm(deepdive.FaultWALAppended)
	if _, err := victim.Apply(ctx, docUpdate(2)); err == nil {
		t.Fatal("crashed-before-publish update reported success")
	}
	if arm.firedCount() != 1 {
		t.Fatal("fault hook did not fire")
	}

	kb := reopenSpouseKB(t, dir)
	defer kb.Close()
	assertSameBits(t, want, spouseBits(kb), "logged unpublished")
}

// crashedCheckpointOracle runs the shared sequence for the two
// snapshot-write kill points with no fault injected: checkpoint, two
// updates, a second (successful) checkpoint, two more updates.
func crashedCheckpointOracle(t *testing.T) map[string]uint64 {
	t.Helper()
	ctx := context.Background()
	kb := persistSpouseKB(t, deepdive.WithDataDir(t.TempDir()))
	defer kb.Close()
	bmust(t, kb.Checkpoint(ctx))
	for i := 0; i < 2; i++ {
		if _, err := kb.Apply(ctx, docUpdate(i)); err != nil {
			t.Fatal(err)
		}
	}
	bmust(t, kb.Checkpoint(ctx))
	for i := 2; i < 4; i++ {
		if _, err := kb.Apply(ctx, docUpdate(i)); err != nil {
			t.Fatal(err)
		}
	}
	return spouseBits(kb)
}

// crashedCheckpointVictim runs the same sequence with a fault injected
// at `point` during the second checkpoint, then abandons the KB
// (simulated crash) and returns its data dir.
func crashedCheckpointVictim(t *testing.T, point string) string {
	t.Helper()
	ctx := context.Background()
	dir := t.TempDir()
	arm := &faultArm{}
	kb := persistSpouseKB(t, deepdive.WithDataDir(dir),
		deepdive.WithPersistFaultHook(arm.hook))
	bmust(t, kb.Checkpoint(ctx))
	for i := 0; i < 2; i++ {
		if _, err := kb.Apply(ctx, docUpdate(i)); err != nil {
			t.Fatal(err)
		}
	}
	arm.arm(point)
	if err := kb.Checkpoint(ctx); err == nil {
		t.Fatal("faulted checkpoint reported success")
	}
	// The WAL rotated before the kill point either way; post-crash
	// updates commit to the new segment.
	for i := 2; i < 4; i++ {
		if _, err := kb.Apply(ctx, docUpdate(i)); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestCrashMidSnapshotWrite kills the checkpoint after WAL rotation but
// before the snapshot file exists: recovery must fall back to the
// previous generation and replay across the rotation boundary,
// reproducing the crashed checkpoint's compaction along the way.
func TestCrashMidSnapshotWrite(t *testing.T) {
	want := crashedCheckpointOracle(t)
	dir := crashedCheckpointVictim(t, deepdive.FaultSnapWrite)

	snaps, err := filepath.Glob(filepath.Join(dir, "snap-*.ddkb"))
	bmust(t, err)
	if len(snaps) != 1 {
		t.Fatalf("expected only the first snapshot on disk, got %v", snaps)
	}
	wals, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	bmust(t, err)
	if len(wals) != 2 {
		t.Fatalf("expected both WAL generations on disk, got %v", wals)
	}

	kb := reopenSpouseKB(t, dir)
	defer kb.Close()
	assertSameBits(t, want, spouseBits(kb), "mid snapshot write")
	if _, err := kb.Apply(context.Background(), docUpdate(9)); err != nil {
		t.Fatal(err)
	}
}

// TestCrashSnapshotWrittenPreCleanup kills the checkpoint after the new
// snapshot is durable but before stale generations are removed:
// recovery uses the newest image and ignores the leftovers, and the
// next successful checkpoint sweeps them.
func TestCrashSnapshotWrittenPreCleanup(t *testing.T) {
	want := crashedCheckpointOracle(t)
	dir := crashedCheckpointVictim(t, deepdive.FaultSnapWritten)

	snaps, err := filepath.Glob(filepath.Join(dir, "snap-*.ddkb"))
	bmust(t, err)
	if len(snaps) != 2 {
		t.Fatalf("expected stale + new snapshots on disk, got %v", snaps)
	}

	kb := reopenSpouseKB(t, dir)
	assertSameBits(t, want, spouseBits(kb), "snapshot written pre-cleanup")

	bmust(t, kb.Checkpoint(context.Background()))
	bmust(t, kb.Close())
	snaps, err = filepath.Glob(filepath.Join(dir, "snap-*.ddkb"))
	bmust(t, err)
	if len(snaps) != 1 {
		t.Fatalf("stale generations survived the next checkpoint: %v", snaps)
	}
}

// TestWALReplayDeterminism: for each worker count, restarting from
// snapshot + WAL reproduces the live process's marginals bit-for-bit.
// (Marginals differ across worker counts; each count must be
// self-consistent.)
func TestWALReplayDeterminism(t *testing.T) {
	for _, par := range []int{1, 4} {
		par := par
		t.Run(map[int]string{1: "sequential", 4: "parallel4"}[par], func(t *testing.T) {
			ctx := context.Background()
			dir := t.TempDir()
			kb := persistSpouseKB(t, deepdive.WithDataDir(dir),
				deepdive.WithParallelism(par))
			bmust(t, kb.Checkpoint(ctx))
			for i := 0; i < 4; i++ {
				if _, err := kb.Apply(ctx, docUpdate(i)); err != nil {
					t.Fatal(err)
				}
			}
			want := spouseBits(kb)
			bmust(t, kb.Close())

			kb2 := reopenSpouseKB(t, dir, deepdive.WithParallelism(par))
			defer kb2.Close()
			assertSameBits(t, want, spouseBits(kb2), "replay determinism")
		})
	}
}

// ---------------------------------------------------------------------
// Benchmarks behind BENCH_persist.json.

// benchSnapshotDir builds a checkpointed KB directory once per process.
var benchSnapshotDir struct {
	sync.Once
	dir string
}

func benchPersistDir(b *testing.B) string {
	b.Helper()
	benchSnapshotDir.Do(func() {
		dir, err := os.MkdirTemp("", "ddkb-bench-*")
		if err != nil {
			b.Fatal(err)
		}
		kb := persistSpouseKB(b, deepdive.WithDataDir(dir))
		ctx := context.Background()
		for i := 0; i < 8; i++ {
			if _, err := kb.Apply(ctx, docUpdate(i)); err != nil {
				b.Fatal(err)
			}
		}
		bmust(b, kb.Checkpoint(ctx))
		bmust(b, kb.Close())
		benchSnapshotDir.dir = dir
	})
	if benchSnapshotDir.dir == "" {
		b.Fatal("benchmark snapshot dir setup failed")
	}
	return benchSnapshotDir.dir
}

// BenchmarkColdStartFromSnapshot measures restart latency when the WAL
// tail is empty: decode the snapshot, restore the engine, serve.
func BenchmarkColdStartFromSnapshot(b *testing.B) {
	dir := benchPersistDir(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kb := reopenSpouseKB(b, dir)
		if len(kb.Candidates("HasSpouse")) == 0 {
			b.Fatal("recovered KB has no candidates")
		}
		kb.Close()
	}
}

// BenchmarkRematerializeFromScratch measures the alternative: ground,
// learn, infer, and materialize the same KB at the same sample budget.
func BenchmarkRematerializeFromScratch(b *testing.B) {
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		kb := persistSpouseKB(b)
		for j := 0; j < 8; j++ {
			if _, err := kb.Apply(ctx, docUpdate(j)); err != nil {
				b.Fatal(err)
			}
		}
		kb.Close()
	}
}

// BenchmarkWALReplay measures replay throughput: each iteration
// restarts from a snapshot with a 16-update WAL tail.
func BenchmarkWALReplay(b *testing.B) {
	dir, err := os.MkdirTemp("", "ddkb-walbench-*")
	bmust(b, err)
	defer os.RemoveAll(dir)
	kb := persistSpouseKB(b, deepdive.WithDataDir(dir))
	ctx := context.Background()
	bmust(b, kb.Checkpoint(ctx))
	const tail = 16
	for i := 0; i < tail; i++ {
		if _, err := kb.Apply(ctx, docUpdate(i)); err != nil {
			b.Fatal(err)
		}
	}
	bmust(b, kb.Close())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kb := reopenSpouseKB(b, dir)
		kb.Close()
	}
	b.ReportMetric(tail, "replayed_updates/op")
}

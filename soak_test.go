package deepdive_test

// The oracle soak harness: a long stream of queued updates runs through
// KB.Updates() against a deliberately undersized sample store, and at
// checkpoints the served marginals of long-lived tracked facts are
// compared against an exact-inference oracle — a full from-scratch Gibbs
// rerun over the KB's current graph and weights (KB.Infer). This pins
// the quality autopilot end to end: the drift regression it fixes is
// exactly "facts touched by early post-materialization updates decay
// toward the uninformed prior once the store exhausts", which only a
// long stream exposes.
//
// Oracle choice: the reference deliberately reuses the current model
// instead of re-learning from scratch. Incremental warmstart learning
// follows its own trajectory toward the full retrain (a learning-side
// approximation pinned elsewhere, see TestEngineInPlaceUpdateMatches-
// Rebuild for graph equivalence); folding it into the oracle would
// conflate learner transients with the inference drift this harness
// exists to catch. "Exact marginals under the model the KB is actually
// serving" is the invariant every incremental inference strategy must
// track.
//
// Three modes:
//   - autopilot: re-materialization + measured optimizer + cumulative
//     change sets (the default stack). Must track the oracle throughout
//     and re-materialize during the stream's idle windows.
//   - cumulative-only: no re-materialization; the store exhausts for
//     good, but cumulative change tracking keeps every
//     post-materialization delta encoded in the variational graph. Must
//     still track the oracle.
//   - static lesion (WithStaticOptimizer): per-update change sets, no
//     re-materialization. Must FAIL the drift bound — this proves the
//     soak detects the regression rather than passing vacuously.
//
// The default stream length keeps CI fast; set SOAK_UPDATES=200 (or run
// `make soak`) for the full acceptance-length soak.

import (
	"context"
	"fmt"
	"math"
	"os"
	"strconv"
	"testing"
	"time"

	"deepdive"
)

// soakUpdates returns the stream length: SOAK_UPDATES when set, else the
// short default.
func soakUpdates(t *testing.T) int {
	t.Helper()
	if s := os.Getenv("SOAK_UPDATES"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			t.Fatalf("bad SOAK_UPDATES=%q", s)
		}
		return n
	}
	return 60
}

// soakCheckpoint is one oracle comparison: after `after` applied
// updates, `drift` is the max and `meanDrift` the mean |served − oracle|
// over the tracked facts.
type soakCheckpoint struct {
	after     int
	drift     float64
	meanDrift float64
	auto      deepdive.AutopilotStats
}

// runSoak streams n document updates through the queue one ticket at a
// time (Submit+Wait, so nothing coalesces and every update runs the full
// ground→learn→infer path). Every tenth update the stream idles until no
// re-materialization is in flight — the extractor-latency gaps the
// paper's idle-time materialization exploits; without them a saturated
// stream preempts every launch. At each checkpoint the served snapshot
// is frozen, then KB.Infer computes the exact current-model marginals
// and the drift over the tracked facts (the mention pairs of the first
// ten documents — the facts a drifting approximation forgets first) is
// recorded.
func runSoak(t *testing.T, n int, opts ...deepdive.Option) []soakCheckpoint {
	t.Helper()
	kb := spouseKB(t, append([]deepdive.Option{
		// Undersized on purpose: the store holds ~3 updates' worth of
		// proposals, so the stream spends most of its life past the
		// materialization boundary.
		deepdive.WithMaterialization(300, 0.01),
		deepdive.WithInference(20, 100),
	}, opts...)...)
	defer kb.Close()
	q := kb.Updates()
	ctx := context.Background()

	tracked := 10
	if tracked > n {
		tracked = n
	}
	var pairs []deepdive.Tuple
	for i := 0; i < tracked; i++ {
		pairs = append(pairs, deepdive.Tuple{fmt.Sprintf("p%da", 100+i), fmt.Sprintf("p%db", 100+i)})
	}

	idle := func() {
		deadline := time.Now().Add(30 * time.Second)
		for kb.Autopilot().Rematerializing {
			if time.Now().After(deadline) {
				t.Fatal("re-materialization never settled during an idle window")
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	every := n / 3
	if every < 1 {
		every = 1
	}
	var cps []soakCheckpoint
	for i := 0; i < n; i++ {
		if _, err := q.Submit(docUpdate(100 + i)).Wait(ctx); err != nil {
			t.Fatalf("update %d: %v", i, err)
		}
		if (i+1)%10 == 0 {
			idle()
		}
		if (i+1)%every == 0 || i == n-1 {
			served := kb.Snapshot()
			auto := kb.Autopilot()
			if _, err := kb.Infer(ctx); err != nil {
				t.Fatalf("oracle inference after update %d: %v", i, err)
			}
			oracle := kb.Snapshot()
			drift, sum := 0.0, 0.0
			for _, p := range pairs {
				got, okG := served.Marginal("HasSpouse", p)
				want, okO := oracle.Marginal("HasSpouse", p)
				if !okG || !okO {
					t.Fatalf("checkpoint %d: tracked pair %v missing (served=%v oracle=%v)", i+1, p, okG, okO)
				}
				d := math.Abs(got - want)
				sum += d
				if d > drift {
					drift = d
				}
			}
			mean := sum / float64(len(pairs))
			t.Logf("checkpoint %3d updates: drift max %.3f mean %.3f (autopilot: %d sampling / %d variational / %d remat / %d preempted, store %d/%d)",
				i+1, drift, mean, auto.SamplingRuns, auto.VariationalRuns,
				auto.Rematerializations, auto.RematPreempted, auto.StoreRemaining, auto.StoreLen)
			if len(cps) > 0 && cps[len(cps)-1].after == i+1 {
				continue // i == n-1 coincided with a regular checkpoint
			}
			cps = append(cps, soakCheckpoint{after: i + 1, drift: drift, meanDrift: mean, auto: auto})
		}
	}
	return cps
}

// soakTolerance is the per-fact drift bound the autopilot modes must
// satisfy at every checkpoint: it absorbs the sampling noise of the
// 100-world estimates on both sides, while a tracked fact the
// approximation forgot sits at the uninformed ~0.5 — several times this
// far from the exact marginal.
const soakTolerance = 0.25

// soakMeanTolerance bounds the mean drift across the tracked facts. The
// per-fact bound must stay loose against worst-case noise of a single
// 100-world estimate, but noise is independent across facts and averages
// out, while real forgetting hits every early fact at once — so the mean
// separates the two regimes much more sharply (healthy runs sit near
// 0.03–0.06; the static lesion's mean exceeds 0.25).
const soakMeanTolerance = 0.12

// TestSoakAutopilot is the acceptance soak: the full autopilot stack
// must track the exact-inference oracle at every checkpoint, keep
// re-materializing through the stream's idle windows, and keep the
// sampling strategy alive past the first store exhaustion.
func TestSoakAutopilot(t *testing.T) {
	n := soakUpdates(t)
	cps := runSoak(t, n, deepdive.WithRematerialization(250, 0))
	for _, cp := range cps {
		if cp.drift > soakTolerance {
			t.Errorf("checkpoint %d: drift %.3f exceeds %.2f", cp.after, cp.drift, soakTolerance)
		}
		if cp.meanDrift > soakMeanTolerance {
			t.Errorf("checkpoint %d: mean drift %.3f exceeds %.2f", cp.after, cp.meanDrift, soakMeanTolerance)
		}
	}
	final := cps[len(cps)-1].auto
	if final.Rematerializations < 1 {
		t.Errorf("no background re-materialization landed across %d updates: %+v", n, final)
	}
	if final.SamplingRuns == 0 {
		t.Errorf("autopilot never chose sampling: %+v", final)
	}
}

// TestSoakCumulativeOnly is the middle lesion: without re-materialization
// the store exhausts for good and every late update infers variationally,
// but cumulative change tracking keeps all post-materialization deltas
// encoded — tracked facts must not collapse toward the uninformed prior.
func TestSoakCumulativeOnly(t *testing.T) {
	cps := runSoak(t, soakUpdates(t))
	for _, cp := range cps {
		if cp.drift > soakTolerance {
			t.Errorf("checkpoint %d: drift %.3f exceeds %.2f", cp.after, cp.drift, soakTolerance)
		}
		if cp.meanDrift > soakMeanTolerance {
			t.Errorf("checkpoint %d: mean drift %.3f exceeds %.2f", cp.after, cp.meanDrift, soakMeanTolerance)
		}
	}
	final := cps[len(cps)-1].auto
	if final.Rematerializations != 0 {
		t.Errorf("re-materialization ran without being configured: %+v", final)
	}
	if final.VariationalRuns == 0 {
		t.Errorf("store never exhausted — the soak is not exercising the post-materialization regime: %+v", final)
	}
}

// TestSoakStaticLesionDrifts proves the harness detects the regression:
// the pre-autopilot configuration (static rules, per-update change sets,
// no re-materialization) must violate both drift bounds once the store
// is gone and the variational graph forgets earlier updates' groups —
// the mean bound in particular, since forgetting is systematic across
// the tracked facts rather than noise on one of them.
func TestSoakStaticLesionDrifts(t *testing.T) {
	cps := runSoak(t, soakUpdates(t), deepdive.WithStaticOptimizer(true))
	worst, worstMean := 0.0, 0.0
	for _, cp := range cps {
		if cp.drift > worst {
			worst = cp.drift
		}
		if cp.meanDrift > worstMean {
			worstMean = cp.meanDrift
		}
	}
	if worst <= soakTolerance {
		t.Fatalf("static lesion stayed within %.2f (worst drift %.3f) — the soak would not catch the drift regression", soakTolerance, worst)
	}
	if worstMean <= soakMeanTolerance {
		t.Fatalf("static lesion mean drift stayed within %.2f (worst %.3f) — the tightened bound would not catch the drift regression", soakMeanTolerance, worstMean)
	}
}

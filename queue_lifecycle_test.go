package deepdive_test

// Lifecycle edge tests for UpdateQueue, complementing the backpressure
// regressions in backpressure_test.go: SubmitCtx behaviour while the
// queue is paused, Close racing Pause/Resume hammering, and the ordering
// of backpressure-slot releases when batches are taken and cancelled
// updates are retracted. The races here are only meaningful under -race.

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"deepdive"
)

// TestSubmitCtxDuringPause pins three paused-queue contracts at once:
// SubmitCtx below the bound enqueues without blocking while paused;
// cancelling a pending update while paused does NOT retract it eagerly
// (retraction is lazy — it happens when the worker next scans the
// queue, so the cancelled update keeps holding its backpressure slot);
// and on Resume the retraction releases that slot ahead of the batch
// take, letting a blocked submitter in.
func TestSubmitCtxDuringPause(t *testing.T) {
	kb := spouseKB(t, deepdive.WithMaxPending(2))
	defer kb.Close()
	q := kb.Updates()
	q.Pause()

	// Below the bound: SubmitCtx enqueues immediately even though the
	// worker is paused.
	ctx, cancel := context.WithCancel(context.Background())
	doomed, err := q.SubmitCtx(ctx, docUpdate(510))
	if err != nil {
		t.Fatal(err)
	}
	live, err := q.SubmitCtx(context.Background(), docUpdate(511))
	if err != nil {
		t.Fatal(err)
	}
	if got := q.Pending(); got != 2 {
		t.Fatalf("Pending = %d, want 2", got)
	}

	// The bound is hit; park a third submitter on the slot wait.
	submitted := make(chan *deepdive.Ticket, 1)
	go func() {
		tk, serr := q.SubmitCtx(context.Background(), docUpdate(512))
		if serr == nil {
			submitted <- tk
		}
	}()

	// Cancel the pending update while paused: retraction is lazy, so the
	// blocked submitter must stay blocked and Pending unchanged.
	cancel()
	select {
	case <-submitted:
		t.Fatal("blocked submitter got a slot while the queue was paused; retraction must be lazy")
	case <-time.After(150 * time.Millisecond):
	}
	if got := q.Pending(); got != 2 {
		t.Fatalf("Pending after cancel while paused = %d, want 2 (lazy retraction)", got)
	}
	select {
	case <-doomed.Done():
		t.Fatal("cancelled pending ticket resolved while the queue was paused")
	default:
	}

	// Resume: the worker retracts the cancelled update (releasing its
	// slot before taking the batch), applies the survivor, and the
	// blocked submitter slots in.
	q.Resume()
	var third *deepdive.Ticket
	select {
	case third = <-submitted:
	case <-time.After(30 * time.Second):
		t.Fatal("blocked submitter still stuck after Resume")
	}

	if _, werr := doomed.Wait(context.Background()); !errors.Is(werr, context.Canceled) {
		t.Fatalf("cancelled ticket resolved %v, want context.Canceled", werr)
	}
	for name, tk := range map[string]*deepdive.Ticket{"live": live, "third": third} {
		if _, werr := tk.Wait(context.Background()); werr != nil {
			t.Fatalf("%s ticket: %v", name, werr)
		}
	}

	// The retracted document must not have been applied; the others must.
	applied := map[string]bool{}
	for _, tup := range kb.Snapshot().Candidates("HasSpouse") {
		if len(tup) == 2 {
			applied[tup[0]] = true
		}
	}
	if applied["p510a"] {
		t.Fatal("retracted update's candidate p510a was applied")
	}
	for _, want := range []string{"p511a", "p512a"} {
		if !applied[want] {
			t.Fatalf("surviving update's candidate %s missing from the published view", want)
		}
	}
}

// TestQueueBackpressureReleaseOrdering parks several submitters on a
// single backpressure slot and checks the release chain: each taken
// batch frees exactly the tokens it consumed, so every parked submitter
// eventually acquires the slot and applies — none starve, none are lost,
// and none sneak in before a token is actually freed. Run under -race.
func TestQueueBackpressureReleaseOrdering(t *testing.T) {
	kb := spouseKB(t, deepdive.WithMaxPending(1))
	defer kb.Close()
	q := kb.Updates()
	q.Pause()

	first := q.Submit(docUpdate(520))
	const waiters = 4
	var wg sync.WaitGroup
	tks := make(chan *deepdive.Ticket, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tk, err := q.SubmitCtx(context.Background(), docUpdate(521+i))
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
				return
			}
			tks <- tk
		}(i)
	}

	// All waiters must be parked: the one slot is held by `first` and
	// nothing drains while paused.
	time.Sleep(100 * time.Millisecond)
	if got := q.Pending(); got != 1 {
		t.Fatalf("Pending with all waiters parked = %d, want 1", got)
	}

	q.Resume()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("parked submitters never all acquired the slot after Resume")
	}
	close(tks)

	wctx, wcancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer wcancel()
	if _, err := first.Wait(wctx); err != nil {
		t.Fatalf("first ticket: %v", err)
	}
	n := 0
	for tk := range tks {
		if _, err := tk.Wait(wctx); err != nil {
			t.Fatalf("waiter ticket %d: %v", n, err)
		}
		n++
	}
	if n != waiters {
		t.Fatalf("resolved %d waiter tickets, want %d", n, waiters)
	}
	if got := q.Applied(); got != waiters+1 {
		t.Fatalf("Applied = %d, want %d", got, waiters+1)
	}
}

// TestQueueCloseRacingPauseResume hammers Pause/Resume and concurrent
// submitters while Close runs. Close must win — it clears the paused
// flag, drains what was accepted, and stops — without deadlocking
// against the hammer, and every ticket handed out must resolve to
// either a successful apply or ErrQueueClosed. Run under -race.
func TestQueueCloseRacingPauseResume(t *testing.T) {
	kb := spouseKB(t, deepdive.WithMaxPending(2))
	q := kb.Updates()

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Pause/Resume hammer: races the flag against Close's paused=false.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			q.Pause()
			q.Resume()
		}
	}()

	// Submitters: keep the pending queue and the slot channel busy so
	// Close has real work to drain and real waiters to refuse.
	var tmu sync.Mutex
	var tickets []*deepdive.Ticket
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				tk, err := q.SubmitCtx(context.Background(), docUpdate(600+w*1000+i))
				if err != nil {
					return
				}
				tmu.Lock()
				tickets = append(tickets, tk)
				tmu.Unlock()
			}
		}(w)
	}

	time.Sleep(150 * time.Millisecond)
	closed := make(chan struct{})
	go func() {
		kb.Close()
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(60 * time.Second):
		t.Fatal("Close deadlocked against the Pause/Resume hammer")
	}
	close(stop)
	wg.Wait()

	// Every handed-out ticket must be resolved — applied before the
	// drain finished, or refused with ErrQueueClosed. Nothing may leak.
	tmu.Lock()
	defer tmu.Unlock()
	if len(tickets) == 0 {
		t.Fatal("no submissions made it in before Close; the race window was empty")
	}
	var applied, refused int
	for i, tk := range tickets {
		select {
		case <-tk.Done():
		case <-time.After(30 * time.Second):
			t.Fatalf("ticket %d unresolved after Close returned", i)
		}
		_, err := tk.Wait(nil)
		switch {
		case err == nil:
			applied++
		case errors.Is(err, deepdive.ErrQueueClosed):
			refused++
		default:
			t.Fatalf("ticket %d resolved %v, want nil or ErrQueueClosed", i, err)
		}
	}
	if applied == 0 {
		t.Fatalf("all %d tickets refused; expected the pre-Close stream to apply some", len(tickets))
	}
	t.Logf("close race: %d applied, %d refused of %d tickets", applied, refused, len(tickets))

	// The queue must stay closed: a late submit resolves ErrQueueClosed.
	if tk := q.Submit(docUpdate(999)); tk != nil {
		if _, err := tk.Wait(nil); !errors.Is(err, deepdive.ErrQueueClosed) {
			t.Fatalf("post-Close submit resolved %v, want ErrQueueClosed", err)
		}
	}
}

package deepdive_test

import (
	"math"
	"testing"

	"deepdive"
)

// inPlaceEngine is spouseEngine with the O(Δ) in-place update path
// toggled by opt.
func inPlaceEngine(t *testing.T, inPlace bool) *deepdive.Engine {
	t.Helper()
	eng, err := deepdive.Open(spouseSource,
		deepdive.WithUDF("phrase", phraseUDF),
		deepdive.WithSeed(7),
		deepdive.WithLearning(15, 0.3),
		deepdive.WithInference(30, 400),
		deepdive.WithMaterialization(600, 0.01),
		deepdive.WithInPlaceUpdates(inPlace),
	)
	if err != nil {
		t.Fatal(err)
	}
	must(t, eng.Load("Sentence", []deepdive.Tuple{
		{"s1", "Alan and his wife Beth"},
		{"s2", "Carl and his wife Dana"},
		{"s3", "Eve met Frank"},
	}))
	must(t, eng.Load("PersonMention", []deepdive.Tuple{
		{"a", "s1", "Alan"}, {"b", "s1", "Beth"},
		{"c", "s2", "Carl"}, {"d", "s2", "Dana"},
		{"e", "s3", "Eve"}, {"f", "s3", "Frank"},
	}))
	must(t, eng.Load("Married", []deepdive.Tuple{
		{"Alan", "Beth"},
	}))
	must(t, eng.Init())
	eng.Learn()
	if _, err := eng.Materialize(); err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestEngineInPlaceUpdateMatchesRebuild runs the same development
// sequence — a new document, then a new rule — through the default
// rebuild path and the WithInPlaceUpdates patch path, and requires the
// resulting knowledge bases to agree: same candidates, same evidence,
// marginals within sampling tolerance.
func TestEngineInPlaceUpdateMatchesRebuild(t *testing.T) {
	updates := []deepdive.Update{
		{Inserts: map[string][]deepdive.Tuple{
			"Sentence":      {{"s4", "Gus and his wife Hana"}},
			"PersonMention": {{"g", "s4", "Gus"}, {"h", "s4", "Hana"}},
		}},
		{RuleSource: `Sym: HasSpouse(m2, m1) :- HasSpouse(m1, m2) weight = 1.5.`},
	}

	engines := map[string]*deepdive.Engine{
		"rebuild": inPlaceEngine(t, false),
		"inplace": inPlaceEngine(t, true),
	}
	for name, eng := range engines {
		for i, u := range updates {
			if _, err := eng.Update(u); err != nil {
				t.Fatalf("%s: update %d: %v", name, i, err)
			}
		}
	}

	reb, inp := engines["rebuild"], engines["inplace"]
	cands := reb.Candidates("HasSpouse")
	if got := inp.Candidates("HasSpouse"); len(got) != len(cands) {
		t.Fatalf("candidate counts diverge: %d vs %d", len(cands), len(got))
	}
	for _, c := range cands {
		pr, okR := reb.Marginal("HasSpouse", c)
		pi, okI := inp.Marginal("HasSpouse", c)
		if okR != okI {
			t.Fatalf("candidate %v: marginal presence diverges (%v vs %v)", c, okR, okI)
		}
		if math.Abs(pr-pi) > 0.15 {
			t.Fatalf("candidate %v: marginal %v (rebuild) vs %v (in-place)", c, pr, pi)
		}
	}
	// The incremental pair must be recovered on both paths.
	for name, eng := range engines {
		p, ok := eng.Marginal("HasSpouse", deepdive.Tuple{"g", "h"})
		if !ok || p < 0.5 {
			t.Fatalf("%s: P(HasSpouse(g,h)) = %v ok=%v, want > 0.5", name, p, ok)
		}
	}
	sr, si := reb.Stats(), inp.Stats()
	if !statsEqual(sr, si) {
		t.Fatalf("graph stats diverge: %+v vs %+v", sr, si)
	}
}

package deepdive

// Durable KB: snapshot + write-ahead-log persistence over the wire
// format in internal/persist.
//
// Layout. A data directory holds at most a handful of files:
//
//	snap-<gen>.ddkb   full KB image: sectioned, checksummed, written
//	                  atomically (tmp + fsync + rename + dir fsync)
//	wal-<gen>.log     the update log paired with snap-<gen>: every
//	                  record with ticket > the snapshot's commit ticket
//	                  post-dates the image
//
// Durability begins at the first Checkpoint: it compacts the factor
// graph (folding patch overflow into a freshly rebuilt frozen base),
// encodes the full state under the writer locks, rotates to a new WAL
// generation, and writes the snapshot file off-lock. From then on every
// committed update is appended to the active segment — fsync'd before
// the commit it describes (write-ahead), so recovery never finds a
// committed-but-unlogged mutation. Recovery opens the newest snapshot
// that validates (falling back generation by generation), restores the
// grounder, databases, factor graphs, engine, and sample store exactly,
// and replays the WAL tail through the ordinary Apply path — which is
// deterministic for a fixed configuration, so the recovered marginals
// are bit-identical to a process that never crashed.
//
// Crash windows. Every kill point lands in a recoverable state:
//
//	mid WAL append        torn tail record; ReadWAL truncates it, the
//	                      update was never acknowledged
//	logged, unpublished   replay completes the update
//	mid snapshot write    the new generation's image is missing or fails
//	                      validation; recovery falls back to the previous
//	                      snapshot and replays both its segment and the
//	                      already-rotated new one
//	written, pre-cleanup  stale generations are ignored and removed by
//	                      the next checkpoint

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"slices"
	"strconv"
	"strings"
	"sync"

	"deepdive/internal/datalog"
	"deepdive/internal/factor"
	"deepdive/internal/ground"
	"deepdive/internal/inc"
	"deepdive/internal/persist"
)

// kbSnapMagic is "DDKBSNP1" little-endian.
const kbSnapMagic uint64 = 0x31504e53424b4444

// kbSnapVersion is bumped on any incompatible snapshot-layout change
// (v2 appended the probe-skip counter to the autopilot section); Open
// rejects snapshots from other versions rather than guessing.
const kbSnapVersion = 2

// Snapshot section kinds.
const (
	secMeta     = 1 // format version, generations, tickets, seeds
	secProgram  = 2 // full program source (base rules + applied updates)
	secGrounder = 3 // grounding tables, including every db relation
	secGraphCur = 4 // the served factor graph (frozen CSR pools)
	secGraphOld = 5 // the engine's Pr(0) graph, when distinct from cur
	secEngine   = 6 // sample store, variational materialization, accum
	secMarg     = 7 // published marginal vector
	secPending  = 8 // carried change set of unpublished grounded deltas
	secAuto     = 9 // autopilot counters, for stats continuity
)

// FaultHook is a crash-injection callback for the recovery tests: it is
// invoked at the named kill points below and a non-nil error aborts the
// operation at exactly that point, leaving the on-disk state a crash at
// that instant would leave.
type FaultHook func(point string) error

// Kill points passed to a FaultHook.
const (
	// FaultWALAppend fires before a committed update's record is written.
	// An error simulates a crash that loses the record: the in-memory
	// commit still proceeds, and durability latches broken until the next
	// checkpoint.
	FaultWALAppend = "wal-append"
	// FaultWALAppended fires once the record is durable, before the
	// update's inference publishes. An error simulates a crash in that
	// window; replay completes the update.
	FaultWALAppended = "wal-appended"
	// FaultSnapWrite fires after the WAL has rotated to the new
	// generation but before the snapshot file is written.
	FaultSnapWrite = "snap-write"
	// FaultSnapWritten fires once the new snapshot is durable, before
	// stale generations are removed.
	FaultSnapWritten = "snap-written"
)

// ErrDurabilitySuspended is reported by every update between a failed
// WAL append and the checkpoint that repairs the durable chain (with
// auto-repair enabled, the background loop issues that checkpoint; see
// health.go). Match with errors.Is — the reported error usually wraps
// this sentinel together with the append failure that latched it.
var ErrDurabilitySuspended = fmt.Errorf("deepdive: WAL append failed; durability suspended until the chain is repaired")

// persistInject consults the optional I/O fault injector (nil-safe).
func persistInject(inj IOInjector, op IOFaultOp) error {
	if inj == nil {
		return nil
	}
	return inj.Fault(op)
}

func snapPath(dir string, gen uint64) string {
	return filepath.Join(dir, fmt.Sprintf("snap-%08d.ddkb", gen))
}

func walPath(dir string, gen uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%08d.log", gen))
}

// persistGens lists the generation numbers of files named
// <prefix><gen><suffix> in dir, ascending.
func persistGens(dir, prefix, suffix string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var gens []uint64
	for _, e := range ents {
		name := e.Name()
		if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
			continue
		}
		gen, err := strconv.ParseUint(name[len(prefix):len(name)-len(suffix)], 10, 64)
		if err != nil {
			continue
		}
		gens = append(gens, gen)
	}
	slices.Sort(gens)
	return gens, nil
}

// ---------------------------------------------------------------------
// Update codec (WAL record payloads).

// encodeUpdate serializes one (possibly coalesced) update. Relation
// names are sorted so the payload is a pure function of the update's
// value, and tuple order within a relation is preserved — replay feeds
// ApplyUpdateStaged the exact sequence the original commit saw.
func encodeUpdate(u *Update) []byte {
	var b persist.Buf
	b.Str(u.RuleSource)
	appendTupleMap(&b, u.Inserts)
	appendTupleMap(&b, u.Deletes)
	return b.Bytes()
}

func appendTupleMap(b *persist.Buf, m map[string][]Tuple) {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	slices.Sort(names)
	b.Strs(names)
	for _, n := range names {
		ts := m[n]
		b.U64(uint64(len(ts)))
		for _, t := range ts {
			b.Strs(t)
		}
	}
}

func decodeUpdate(p []byte) (Update, error) {
	r := persist.NewRd(p)
	var u Update
	u.RuleSource = r.Str("update rules")
	u.Inserts = readTupleMap(r, p, "update inserts")
	u.Deletes = readTupleMap(r, p, "update deletes")
	if err := r.Err(); err != nil {
		return Update{}, err
	}
	if !r.Done() {
		return Update{}, fmt.Errorf("deepdive: trailing bytes in WAL update record")
	}
	return u, nil
}

func readTupleMap(r *persist.Rd, p []byte, what string) map[string][]Tuple {
	names := r.Strs(what + " relations")
	if len(names) == 0 {
		return nil
	}
	m := make(map[string][]Tuple, len(names))
	for _, n := range names {
		cnt := r.U64(what + " tuple count")
		if cnt > uint64(len(p)) { // corrupt count; records are CRC-guarded, be safe anyway
			r.Fail(what + " tuple count")
			return nil
		}
		ts := make([]Tuple, 0, cnt)
		for i := uint64(0); i < cnt && r.Err() == nil; i++ {
			ts = append(ts, Tuple(r.Strs(what+" tuple")))
		}
		m[n] = ts
	}
	return m
}

// ---------------------------------------------------------------------
// Checkpoint.

// Checkpoint writes a full snapshot of the KB to its data directory and
// rotates the write-ahead log, bounding recovery replay to the updates
// committed after this call. The state is compacted first: any patch
// overflow the incremental applies accumulated is folded into a freshly
// rebuilt frozen CSR base, and the measured optimizer's probe memo is
// reset (so WAL replay from the snapshot sees the same cache evolution
// the live process does after its checkpoint). Encoding happens under
// the writer locks; the file write — the slow, fsync-bound half — runs
// off-lock, so updates stream on while the image lands on disk.
//
// Checkpoint is also the repair path after a failed WAL append: it
// re-establishes a complete durable chain (in that case the file write
// stays under the locks so no update can commit against a chain that is
// still incomplete).
func (kb *KB) Checkpoint(ctx context.Context) error {
	if kb.opts.DataDir == "" {
		return fmt.Errorf("deepdive: Checkpoint without a data directory (WithDataDir)")
	}
	kb.ckptMu.Lock()
	defer kb.ckptMu.Unlock()

	unlock := kb.lockExclusive()
	locked := true
	defer func() {
		if locked {
			unlock()
		}
	}()
	if err := ctxErr(ctx); err != nil {
		return err
	}
	if !kb.inited {
		return fmt.Errorf("deepdive: Checkpoint before Init")
	}

	// Compact: rebuild the flat pools from the grounding tables so the
	// snapshot's base carries no patch overflow, and install the rebuilt
	// graph as the served one (group order and flat handles are stable
	// across the rebuild, so change-set indexes stay valid).
	kb.grounder.MarkGraphDirty()
	kb.publishLocked()
	if kb.engine != nil {
		kb.engine.ResetProbeCache()
	}

	newGen := kb.walGen + 1
	data := kb.encodeSnapshotLocked(newGen)

	// Rotate the WAL before releasing the locks: records committed from
	// now on land in the new generation's segment, whose existence must
	// be durable before its first append.
	if err := persistInject(kb.opts.IOFaults, persist.OpWALCreate); err != nil {
		return err
	}
	w, err := persist.CreateWAL(walPath(kb.opts.DataDir, newGen))
	if err != nil {
		return err
	}
	w.SetInjector(kb.opts.IOFaults)
	if err := persist.SyncDir(kb.opts.DataDir); err != nil {
		w.Close()
		return err
	}
	if kb.wal != nil {
		kb.wal.Close()
	}
	kb.wal = w
	kb.walGen = newGen

	// Off-lock file write on the normal path. When repairing a broken
	// chain the write stays under the locks: the old segment is missing a
	// committed record, so new-segment records are only replayable on top
	// of this snapshot — no commit may slip in before it is durable.
	repairing := kb.walBroken.Load()
	if !repairing {
		locked = false
		unlock()
	}
	if h := kb.opts.PersistFault; h != nil {
		if err := h(FaultSnapWrite); err != nil {
			return err
		}
	}
	if err := persist.WriteFileAtomic(snapPath(kb.opts.DataDir, newGen), data, kb.opts.IOFaults); err != nil {
		return err
	}
	kb.walBroken.Store(false)
	kb.noteChainRepaired()
	if h := kb.opts.PersistFault; h != nil {
		if err := h(FaultSnapWritten); err != nil {
			return err
		}
	}
	kb.removeStaleGenerations(newGen)
	return nil
}

// encodeSnapshotLocked assembles the snapshot file image. Callers hold
// both writer locks with the pipeline drained (lockExclusive).
func (kb *KB) encodeSnapshotLocked(walGen uint64) []byte {
	var meta persist.Buf
	meta.U8(kbSnapVersion)
	meta.U64(walGen)
	meta.U64(kb.commitTicket)
	meta.U64(kb.epoch.Load())
	meta.I64(kb.engineSeed)
	kb.rematMu.Lock()
	meta.I64(kb.rematSpawns)
	kb.rematMu.Unlock()

	var prog persist.Buf
	prog.Str(kb.grounder.Program().String())

	var grd persist.Buf
	kb.grounder.AppendSnapshot(&grd)

	var cur persist.Buf
	kb.curGraph.AppendSnapshot(&cur)

	secs := []persist.Section{
		{Kind: secMeta, Payload: meta.Bytes()},
		{Kind: secProgram, Payload: prog.Bytes()},
		{Kind: secGrounder, Payload: grd.Bytes()},
		{Kind: secGraphCur, Payload: cur.Bytes()},
	}
	if kb.engine != nil {
		if old := kb.engine.OldGraph(); old != kb.curGraph {
			var b persist.Buf
			old.AppendSnapshot(&b)
			secs = append(secs, persist.Section{Kind: secGraphOld, Payload: b.Bytes()})
		}
		var b persist.Buf
		kb.engine.AppendSnapshot(&b)
		secs = append(secs, persist.Section{Kind: secEngine, Payload: b.Bytes()})
	}
	if kb.marg != nil {
		var b persist.Buf
		b.F64s(kb.marg)
		secs = append(secs, persist.Section{Kind: secMarg, Payload: b.Bytes()})
	}
	var pend persist.Buf
	kb.pending.AppendSnapshot(&pend)
	secs = append(secs, persist.Section{Kind: secPending, Payload: pend.Bytes()})

	var auto persist.Buf
	auto.U64(kb.auto.sampling)
	auto.U64(kb.auto.variational)
	auto.U64(kb.auto.rerun)
	auto.U64(kb.auto.fallbacks)
	for _, h := range kb.auto.hist {
		auto.U64(h)
	}
	auto.F64(kb.auto.lastAccept)
	auto.F64(kb.auto.lastProbe)
	auto.U64(kb.auto.probeSkips)
	auto.U64(kb.remats.Load())
	auto.U64(kb.rematLost.Load())
	auto.U64(kb.rematForced.Load())
	secs = append(secs, persist.Section{Kind: secAuto, Payload: auto.Bytes()})

	return persist.EncodeFile(kbSnapMagic, secs)
}

// removeStaleGenerations best-effort deletes snapshots and WAL segments
// older than the generation just written.
func (kb *KB) removeStaleGenerations(keep uint64) {
	for _, kind := range []struct{ prefix, suffix string }{
		{"snap-", ".ddkb"}, {"wal-", ".log"},
	} {
		gens, err := persistGens(kb.opts.DataDir, kind.prefix, kind.suffix)
		if err != nil {
			continue
		}
		for _, gen := range gens {
			if gen < keep {
				os.Remove(filepath.Join(kb.opts.DataDir,
					fmt.Sprintf("%s%08d%s", kind.prefix, gen, kind.suffix)))
			}
		}
	}
}

// ---------------------------------------------------------------------
// Recovery.

// Recovered reports whether this KB was restored from a snapshot in its
// data directory. A recovered KB is fully materialized and serving the
// state as of the crash's last durable point: skip Init, Learn, and
// Materialize and go straight to queries and updates.
func (kb *KB) Recovered() bool { return kb.recovered }

// recoverKB attempts restart-from-disk: the newest snapshot generation
// that fully validates is restored and its WAL tail replayed. Returns
// (nil, nil) when the directory holds no snapshot (fresh start); an
// error when snapshots exist but none is usable (surfacing corruption
// rather than silently discarding state).
func recoverKB(source string, o Options) (*KB, error) {
	gens, err := persistGens(o.DataDir, "snap-", ".ddkb")
	if err != nil {
		return nil, err
	}
	if len(gens) == 0 {
		return nil, nil
	}
	var lastErr error
	for i := len(gens) - 1; i >= 0; i-- {
		kb, err := restoreKB(source, o, gens[i])
		if err != nil {
			lastErr = err
			continue
		}
		return kb, nil
	}
	return nil, fmt.Errorf("deepdive: no usable snapshot in %s: %w", o.DataDir, lastErr)
}

// sectionRd wraps a required section in a decoder.
func sectionRd(secs []persist.Section, kind uint32, name string) (*persist.Rd, error) {
	p := persist.FindSection(secs, kind)
	if p == nil {
		return nil, fmt.Errorf("deepdive: snapshot missing %s section", name)
	}
	return persist.NewRd(p), nil
}

// restoreKB loads one snapshot generation and replays its WAL tail.
//
// The program is re-parsed from the snapshot's own source — which
// includes every rule update applied before the checkpoint — and ground
// by a fresh Grounder, reproducing the original rule indexes, weight
// keys, and topo order; the caller's source is superseded (it must be
// the same base program). The caller's UDFs and runtime options apply
// as configuration, exactly as on first open.
func restoreKB(source string, o Options, gen uint64) (*KB, error) {
	_ = source
	data, err := os.ReadFile(snapPath(o.DataDir, gen))
	if err != nil {
		return nil, err
	}
	secs, err := persist.DecodeFile(kbSnapMagic, data)
	if err != nil {
		return nil, err
	}

	mrd, err := sectionRd(secs, secMeta, "meta")
	if err != nil {
		return nil, err
	}
	if v := mrd.U8("snapshot version"); mrd.Err() == nil && v != kbSnapVersion {
		return nil, fmt.Errorf("deepdive: unsupported snapshot version %d", v)
	}
	walGen := mrd.U64("wal generation")
	ticket := mrd.U64("commit ticket")
	epoch := mrd.U64("kb epoch")
	engineSeed := mrd.I64("engine seed")
	rematSpawns := mrd.I64("remat spawns")
	if err := mrd.Err(); err != nil {
		return nil, err
	}

	prd, err := sectionRd(secs, secProgram, "program")
	if err != nil {
		return nil, err
	}
	src := prd.Str("program source")
	if err := prd.Err(); err != nil {
		return nil, err
	}
	prog, err := datalog.Parse(src)
	if err != nil {
		return nil, err
	}
	udfs := ground.UDFRegistry{}
	for name, f := range o.UDFs {
		udfs[name] = f
	}
	g, err := ground.New(prog, udfs)
	if err != nil {
		return nil, err
	}
	g.SetInPlaceUpdates(!o.RebuildUpdates)
	g.SetParallelism(o.Parallelism)

	crd, err := sectionRd(secs, secGraphCur, "current graph")
	if err != nil {
		return nil, err
	}
	curG, err := factor.DecodeGraphSnapshot(crd)
	if err != nil {
		return nil, err
	}
	grd, err := sectionRd(secs, secGrounder, "grounder")
	if err != nil {
		return nil, err
	}
	if err := g.RestoreSnapshot(grd, curG); err != nil {
		return nil, err
	}

	kb := &KB{opts: o, grounder: g}
	kb.seqCond = sync.NewCond(&kb.seqMu)
	kb.snap.Store(emptySnapshot())
	kb.curGraph = curG
	kb.inited = true
	kb.recovered = true
	kb.commitTicket = ticket
	kb.engineSeed = engineSeed
	kb.rematSpawns = rematSpawns
	kb.epoch.Store(epoch)

	if eb := persist.FindSection(secs, secEngine); eb != nil {
		oldG := curG
		if ob := persist.FindSection(secs, secGraphOld); ob != nil {
			oldG, err = factor.DecodeGraphSnapshot(persist.NewRd(ob))
			if err != nil {
				return nil, err
			}
		}
		eng, err := inc.RestoreEngine(oldG, kb.engineOpts(engineSeed), persist.NewRd(eb))
		if err != nil {
			return nil, err
		}
		kb.engine = eng
	}
	if mb := persist.FindSection(secs, secMarg); mb != nil {
		mr := persist.NewRd(mb)
		kb.marg = mr.F64s("marginals")
		if err := mr.Err(); err != nil {
			return nil, err
		}
	}
	pendRd, err := sectionRd(secs, secPending, "pending change set")
	if err != nil {
		return nil, err
	}
	pend, err := inc.DecodeChangeSet(pendRd)
	if err != nil {
		return nil, err
	}
	kb.pending = pend

	ard, err := sectionRd(secs, secAuto, "autopilot")
	if err != nil {
		return nil, err
	}
	kb.auto.sampling = ard.U64("auto sampling")
	kb.auto.variational = ard.U64("auto variational")
	kb.auto.rerun = ard.U64("auto rerun")
	kb.auto.fallbacks = ard.U64("auto fallbacks")
	for i := range kb.auto.hist {
		kb.auto.hist[i] = ard.U64("auto hist")
	}
	kb.auto.lastAccept = ard.F64("auto lastAccept")
	kb.auto.lastProbe = ard.F64("auto lastProbe")
	kb.auto.probeSkips = ard.U64("auto probeSkips")
	kb.remats.Store(ard.U64("auto remats"))
	kb.rematLost.Store(ard.U64("auto rematLost"))
	kb.rematForced.Store(ard.U64("auto rematForced"))
	if err := ard.Err(); err != nil {
		return nil, err
	}

	// Serve the restored state, then bring it current by replaying the
	// logged tail through the ordinary Apply path.
	kb.publishLocked()
	if err := kb.replayWAL(walGen, ticket); err != nil {
		return nil, err
	}

	// Re-arm the active segment: append to the highest existing
	// generation (the one rotated in by the last checkpoint attempt, even
	// if that checkpoint's snapshot never landed), trimming any torn
	// tail.
	wgens, err := persistGens(o.DataDir, "wal-", ".log")
	if err != nil {
		return nil, err
	}
	maxGen := walGen
	for _, wg := range wgens {
		if wg > maxGen {
			maxGen = wg
		}
	}
	w, err := persist.OpenWALAppend(walPath(o.DataDir, maxGen))
	if err != nil {
		return nil, err
	}
	w.SetInjector(o.IOFaults)
	if err := persist.SyncDir(o.DataDir); err != nil {
		w.Close()
		return nil, err
	}
	kb.wal = w
	kb.walGen = maxGen
	return kb, nil
}

// replayWAL applies the logged tail: every record with a ticket past
// the snapshot's, across every segment of the snapshot's generation and
// later, in order. Replay runs through the ordinary Apply path with
// kb.replaying set, which suppresses re-logging and background
// re-materialization; a record whose update was logged but never
// published (crash in that window) is completed here, exactly as the
// live process would have.
func (kb *KB) replayWAL(fromGen, snapTicket uint64) error {
	gens, err := persistGens(kb.opts.DataDir, "wal-", ".log")
	if err != nil {
		return err
	}
	kb.replaying = true
	defer func() { kb.replaying = false }()
	last := snapTicket
	for _, gen := range gens {
		if gen < fromGen {
			continue
		}
		if gen > fromGen {
			// A segment past the snapshot's generation exists only because
			// a later checkpoint rotated to it and then crashed before its
			// image became usable. That checkpoint compacted the graph and
			// reset the probe memo under the locks immediately before
			// rotating, so records in this segment were committed against
			// the perturbed state; reproduce the perturbation here to keep
			// the replay trajectory bit-identical.
			kb.grounder.MarkGraphDirty()
			kb.publishLocked()
			if kb.engine != nil {
				kb.engine.ResetProbeCache()
			}
		}
		recs, err := persist.ReadWAL(walPath(kb.opts.DataDir, gen))
		if err != nil {
			return err
		}
		for _, rec := range recs {
			if rec.Ticket <= snapTicket {
				continue
			}
			if rec.Ticket != last+1 {
				return fmt.Errorf("deepdive: WAL replay gap: ticket %d follows %d", rec.Ticket, last)
			}
			u, err := decodeUpdate(rec.Payload)
			if err != nil {
				return err
			}
			if _, err := kb.Apply(context.Background(), u); err != nil {
				return fmt.Errorf("deepdive: WAL replay of update %d: %w", rec.Ticket, err)
			}
			last = rec.Ticket
		}
	}
	kb.commitTicket = last
	return nil
}

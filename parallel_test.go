package deepdive_test

import (
	"math"
	"strings"
	"testing"

	"deepdive"
	"deepdive/internal/datalog"
	"deepdive/internal/db"
	"deepdive/internal/factor"
	"deepdive/internal/ground"
	"deepdive/internal/inc"
	"deepdive/internal/learn"
)

// quickstartGraph grounds the quickstart (Figure 2) program and learns
// its weights sequentially, returning the graph plus the learnable mask.
func quickstartGraph(t *testing.T) *factor.Graph {
	t.Helper()
	prog, err := datalog.Parse(spouseSource)
	if err != nil {
		t.Fatal(err)
	}
	g, err := ground.New(prog, ground.UDFRegistry{"phrase": func(args []string) string {
		words := strings.Fields(args[2])
		if len(words) > 2 {
			return strings.Join(words[1:len(words)-1], "_")
		}
		return "short"
	}})
	if err != nil {
		t.Fatal(err)
	}
	load := func(rel string, tuples []db.Tuple) {
		if err := g.LoadBase(rel, tuples); err != nil {
			t.Fatal(err)
		}
	}
	load("Sentence", []db.Tuple{
		{"s1", "Alan and his wife Beth"},
		{"s2", "Carl and his wife Dana"},
		{"s3", "Eve met Frank"},
	})
	load("PersonMention", []db.Tuple{
		{"a", "s1", "Alan"}, {"b", "s1", "Beth"},
		{"c", "s2", "Carl"}, {"d", "s2", "Dana"},
		{"e", "s3", "Eve"}, {"f", "s3", "Frank"},
	})
	load("Married", []db.Tuple{{"Alan", "Beth"}})
	if err := g.Ground(); err != nil {
		t.Fatal(err)
	}
	graph := g.Graph()
	frozen := make([]bool, graph.NumWeights())
	for i := range frozen {
		frozen[i] = true
	}
	for _, w := range g.LearnableWeights() {
		frozen[w] = false
	}
	learn.Train(graph, learn.Options{Epochs: 15, StepSize: 0.3, Seed: 8, Frozen: frozen})
	return graph
}

// TestParallelInferenceMatchesSequentialOnQuickstart runs sequential and
// sharded-parallel Gibbs over the identical learned quickstart graph and
// requires the marginals to agree within 0.02 mean absolute difference —
// the acceptance bound for the parallel sampling path.
func TestParallelInferenceMatchesSequentialOnQuickstart(t *testing.T) {
	g := quickstartGraph(t)
	seq := inc.Rerun(g, 50, 5000, 9)
	par := inc.RerunParallel(g, 50, 5000, 9, 4)
	if len(seq) != len(par) {
		t.Fatalf("marginal widths differ: %d vs %d", len(seq), len(par))
	}
	var mad float64
	n := 0
	for v := range seq {
		if g.IsEvidence(factor.VarID(v)) {
			if seq[v] != par[v] {
				t.Fatalf("evidence var %d: sequential %v, parallel %v", v, seq[v], par[v])
			}
			continue
		}
		mad += math.Abs(seq[v] - par[v])
		n++
	}
	mad /= float64(n)
	if mad > 0.02 {
		t.Fatalf("mean absolute marginal difference = %.4f over %d free vars, want <= 0.02", mad, n)
	}
}

// TestEngineWithParallelism drives the full public development loop —
// learn, infer, materialize, incremental update — with parallel chains
// enabled, checking that the parallel path is wired through every layer
// and still learns the quickstart relation.
func TestEngineWithParallelism(t *testing.T) {
	eng, err := deepdive.Open(spouseSource,
		deepdive.WithUDF("phrase", phraseUDF),
		deepdive.WithSeed(7),
		deepdive.WithLearning(15, 0.3),
		deepdive.WithInference(30, 400),
		deepdive.WithMaterialization(600, 0.01),
		deepdive.WithParallelism(4),
	)
	if err != nil {
		t.Fatal(err)
	}
	must(t, eng.Load("Sentence", []deepdive.Tuple{
		{"s1", "Alan and his wife Beth"},
		{"s2", "Carl and his wife Dana"},
		{"s3", "Eve met Frank"},
	}))
	must(t, eng.Load("PersonMention", []deepdive.Tuple{
		{"a", "s1", "Alan"}, {"b", "s1", "Beth"},
		{"c", "s2", "Carl"}, {"d", "s2", "Dana"},
		{"e", "s3", "Eve"}, {"f", "s3", "Frank"},
	}))
	must(t, eng.Load("Married", []deepdive.Tuple{{"Alan", "Beth"}}))
	must(t, eng.Init())
	eng.Learn()
	eng.Infer()
	p, ok := eng.Marginal("HasSpouse", deepdive.Tuple{"c", "d"})
	if !ok {
		t.Fatal("no marginal for (c,d)")
	}
	if p < 0.6 {
		t.Fatalf("P(HasSpouse(c,d)) = %v, want > 0.6 (learned from s1)", p)
	}
	if _, err := eng.Materialize(); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Update(deepdive.Update{Inserts: map[string][]deepdive.Tuple{
		"Sentence":      {{"s4", "Gail and her husband Hank"}},
		"PersonMention": {{"g", "s4", "Gail"}, {"h", "s4", "Hank"}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res.NewVars == 0 {
		t.Fatal("update grounded no new variables")
	}
	if _, ok := eng.Marginal("HasSpouse", deepdive.Tuple{"g", "h"}); !ok {
		t.Fatal("no marginal for the incremental pair (g,h)")
	}
}

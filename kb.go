package deepdive

import (
	"context"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"deepdive/internal/datalog"
	"deepdive/internal/factor"
	"deepdive/internal/gibbs"
	"deepdive/internal/ground"
	"deepdive/internal/inc"
	"deepdive/internal/learn"
	"deepdive/internal/persist"
)

// KB is the serving handle of a DeepDive knowledge base. It separates the
// two halves of the paper's development loop so they can overlap:
//
//   - Reads are snapshot-isolated and lock-free: Snapshot returns an
//     immutable view (marginals + extraction tables pinned to one
//     grounding version and graph epoch) acquired by an atomic pointer
//     load. Any number of goroutines may query snapshots while writes
//     are in flight; a reader never observes a half-applied update.
//   - Writes — Init, Learn, Infer, Materialize, Apply — are serialized
//     per stage, accept a context.Context for cancellation and deadlines
//     (checked cooperatively between Gibbs sweeps and Metropolis-Hastings
//     proposals), and publish a fresh snapshot on success. A cancelled
//     write returns the context's error and publishes nothing: readers
//     keep the previous consistent view.
//
// Apply is internally a two-stage pipeline: a *grounding stage* (DRed
// delta evaluation + graph commit, under groundMu) and a *finish stage*
// (warmstart learning, incremental inference, snapshot publication,
// under stateMu). The stages of consecutive applies overlap — the update
// queue grounds batch N+1 while batch N is still learning/inferring —
// but a sequencer forces graph commits and publications into submission
// order, so the published epoch stream is identical to fully serialized
// execution (see applyGround/applyFinish).
//
// Updates() exposes an asynchronous, coalescing update queue on top of
// Apply for streaming ingest. The zero KB is not usable; construct one
// with OpenKB. The deprecated Engine wraps a KB with the old synchronous
// single-goroutine API.
type KB struct {
	opts Options

	// groundMu serializes the grounding stage: all grounder and database
	// access. stateMu serializes the finish stage: engine, marginals, the
	// pending change set, graph mutation (the commit of a staged delta
	// patches the served graph's lineage) and snapshot publication.
	// Monolithic writers (Init, Learn, Infer, Materialize) hold both with
	// the pipeline drained in between (lockExclusive); lock order is
	// always groundMu → stateMu.
	groundMu sync.Mutex
	stateMu  sync.Mutex

	// Apply-pipeline sequencer: every staged apply takes a ticket
	// (seqTail) after its delta evaluation, and commits + finishes run in
	// strict ticket order (seqHead advances when a finish completes), so
	// publish order equals grounding order even when stages overlap.
	seqMu   sync.Mutex
	seqCond *sync.Cond
	seqHead uint64
	seqTail uint64

	grounder *ground.Grounder // guarded by groundMu
	engine   *inc.Engine      // written under both locks, read under either
	marg     []float64        // guarded by stateMu
	inited   bool             // written under both locks, read under either
	// pending accumulates the change sets of applies whose grounding
	// committed but whose inference never published (cancelled mid-way):
	// the next apply scores the union, so no grounded delta's factors
	// escape the acceptance test. Guarded by stateMu.
	pending inc.ChangeSet

	// curGraph is the graph the served state corresponds to — the same
	// pointer grounder.Graph() last returned, mirrored here so the
	// background re-materializer can read it without touching the
	// grounder (which would need groundMu). Guarded by stateMu.
	curGraph *factor.Graph
	// stateGen counts state mutations (graph commits, weight learning,
	// engine swaps). A background re-materialization snapshots it at
	// launch and installs its engine only if it is unchanged — a stale
	// materialization (preempted by any write) is discarded. Guarded by
	// stateMu.
	stateGen uint64
	// auto aggregates quality-autopilot statistics (strategy counts,
	// acceptance histogram). Guarded by stateMu.
	auto autoCounters

	// Background re-materializer coordination; see autopilot.go.
	// rematPreemptStreak counts consecutive launches lost to writer
	// preemption (guarded by rematMu); rematForced counts cooperative
	// slots the update queue held for a starving re-materialization.
	rematMu            sync.Mutex
	rematRun           *rematRun
	rematClosed        bool
	rematSpawns        int64
	rematPreemptStreak int
	rematWG            sync.WaitGroup
	remats             atomic.Uint64
	rematLost          atomic.Uint64
	rematForced        atomic.Uint64

	// Durability state; see persist.go. wal/walGen form the active
	// write-ahead segment (appends run under groundMu; Checkpoint swaps
	// the handle under lockExclusive, which excludes appenders);
	// commitTicket numbers logged commits in WAL order (guarded by
	// groundMu). walBroken latches a failed append — every later update
	// reports a durability error until a Checkpoint writes a complete
	// chain again. ckptMu serializes checkpoints; replaying marks WAL
	// replay during recovery (suppresses re-logging and background
	// re-materialization); recovered reports restore-from-snapshot;
	// engineSeed is the seed the live engine was materialized with
	// (persisted so a restored engine is reconstructed identically).
	wal          *persist.WAL
	walGen       uint64
	commitTicket uint64
	walBroken    atomic.Bool
	ckptMu       sync.Mutex
	replaying    bool
	recovered    bool
	engineSeed   int64

	// Degraded-mode health machine + background WAL repair; see
	// health.go. health holds a HealthState; the repair* fields
	// coordinate the self-healing checkpoint loop (repairMu guards
	// repairActive/repairCancel/repairClosed; the counters are
	// read lock-free by Health()).
	health         atomic.Int32
	repairMu       sync.Mutex
	repairActive   bool
	repairClosed   bool
	repairCancel   context.CancelFunc
	repairWG       sync.WaitGroup
	repairAttempts atomic.Uint64
	repairFailures atomic.Uint64
	autoRepairs    atomic.Uint64

	epoch atomic.Uint64
	snap  atomic.Pointer[Snapshot]

	// Publication broadcast for subscribers (see Published): pubCh is
	// closed by every snapshot publication and lazily re-armed by the next
	// Published call. Nil when nobody is waiting — publishing then costs
	// one mutex acquisition and no allocation.
	pubMu sync.Mutex
	pubCh chan struct{}

	queueOnce sync.Once
	queue     *UpdateQueue
}

// OpenKB parses and validates a DeepDive program and returns a serving
// handle over it. The KB starts empty: Load base data, then Init, Learn,
// Infer/Materialize, and serve.
//
// With WithDataDir, OpenKB first attempts recovery: if the directory
// holds a snapshot, the newest valid generation is restored, the WAL
// tail replayed, and the returned KB (Recovered() == true) is already
// materialized and serving — skip Init/Learn/Materialize. Otherwise the
// KB starts empty as usual and durability begins at the first
// Checkpoint.
func OpenKB(source string, opts ...Option) (*KB, error) {
	var o Options
	for _, f := range opts {
		f(&o)
	}
	o.fill()
	if o.DataDir != "" {
		if err := os.MkdirAll(o.DataDir, 0o755); err != nil {
			return nil, err
		}
		kb, err := recoverKB(source, o)
		if err != nil {
			return nil, err
		}
		if kb != nil {
			return kb, nil
		}
	}
	prog, err := datalog.Parse(source)
	if err != nil {
		return nil, err
	}
	udfs := ground.UDFRegistry{}
	for name, f := range o.UDFs {
		udfs[name] = f
	}
	g, err := ground.New(prog, udfs)
	if err != nil {
		return nil, err
	}
	g.SetInPlaceUpdates(!o.RebuildUpdates)
	g.SetParallelism(o.Parallelism)
	kb := &KB{opts: o, grounder: g}
	kb.seqCond = sync.NewCond(&kb.seqMu)
	kb.snap.Store(emptySnapshot())
	return kb, nil
}

// seqEnter issues the next pipeline ticket. Called at the end of a
// successful delta evaluation, under groundMu, so tickets are issued in
// grounding order.
func (kb *KB) seqEnter() uint64 {
	kb.seqMu.Lock()
	s := kb.seqTail
	kb.seqTail++
	kb.seqMu.Unlock()
	return s
}

// seqAwait blocks until every apply ticketed before s has finished.
func (kb *KB) seqAwait(s uint64) {
	kb.seqMu.Lock()
	for kb.seqHead != s {
		kb.seqCond.Wait()
	}
	kb.seqMu.Unlock()
}

// seqExit retires ticket s, unblocking the next staged apply.
func (kb *KB) seqExit(s uint64) {
	kb.seqMu.Lock()
	kb.seqHead = s + 1
	kb.seqCond.Broadcast()
	kb.seqMu.Unlock()
}

// seqDrain waits until no staged applies are in flight. Callers hold
// groundMu, so no new ticket can be issued while draining.
func (kb *KB) seqDrain() {
	kb.seqMu.Lock()
	for kb.seqHead != kb.seqTail {
		kb.seqCond.Wait()
	}
	kb.seqMu.Unlock()
}

// lockExclusive acquires both writer locks for a monolithic operation:
// groundMu first stops new grounding stages, the drain then waits out
// every staged finish, an in-flight background re-materialization is
// preempted (every caller mutates graph or weight state the
// re-materializer may be reading), and stateMu finally claims the
// inference state. The generation bump invalidates any re-materialization
// that already finished sampling but has not swapped in yet.
// Release through the returned func.
func (kb *KB) lockExclusive() func() {
	kb.groundMu.Lock()
	kb.seqDrain()
	kb.preemptRemat()
	kb.stateMu.Lock()
	kb.stateGen++
	return func() {
		kb.stateMu.Unlock()
		kb.groundMu.Unlock()
	}
}

// Snapshot returns the latest published view of the knowledge base. The
// call is a single atomic pointer load — no locks, safe from any number
// of goroutines concurrently with writers. The returned Snapshot is
// immutable; hold it for as many queries as need one consistent view.
func (kb *KB) Snapshot() *Snapshot { return kb.snap.Load() }

// Published returns a channel closed at the next snapshot publication —
// the epoch-notification hook push subscribers are built on. The
// intended loop acquires the channel *before* reading the snapshot, so a
// publication landing between the two is never missed:
//
//	for {
//		ch := kb.Published()
//		snap := kb.Snapshot()
//		... diff snap against the last view served ...
//		select {
//		case <-ch: // a newer snapshot exists; loop
//		case <-ctx.Done():
//			return
//		}
//	}
//
// Waiters only ever block on the returned channel, never inside the
// publish path: publishing closes the armed channel under a dedicated
// mutex and carries on, so a stalled subscriber can never delay a
// publication.
func (kb *KB) Published() <-chan struct{} {
	kb.pubMu.Lock()
	defer kb.pubMu.Unlock()
	if kb.pubCh == nil {
		kb.pubCh = make(chan struct{})
	}
	return kb.pubCh
}

// notifyPublish wakes every Published waiter. Called after the snapshot
// pointer swap, so a woken waiter always observes the new (or an even
// newer) snapshot.
func (kb *KB) notifyPublish() {
	kb.pubMu.Lock()
	if kb.pubCh != nil {
		close(kb.pubCh)
		kb.pubCh = nil
	}
	kb.pubMu.Unlock()
}

// Load inserts base tuples into a base relation. Call before Init; use
// Apply (or the update queue) for changes afterwards.
func (kb *KB) Load(relation string, tuples []Tuple) error {
	kb.groundMu.Lock()
	defer kb.groundMu.Unlock()
	if kb.inited {
		return fmt.Errorf("deepdive: Load after Init; use Apply for incremental data")
	}
	return kb.grounder.LoadBase(relation, tuples)
}

// Init performs the initial grounding (candidate generation, feature
// extraction, supervision, factor-graph construction) and publishes the
// first snapshot (evidence-only until inference runs).
func (kb *KB) Init(ctx context.Context) error {
	defer kb.lockExclusive()()
	if err := ctxErr(ctx); err != nil {
		return err
	}
	if err := kb.grounder.Ground(); err != nil {
		return err
	}
	kb.inited = true
	kb.publishLocked()
	return nil
}

// frozen returns the non-learnable weight mask.
func (kb *KB) frozen(g *factor.Graph) []bool {
	mask := make([]bool, g.NumWeights())
	for i := range mask {
		mask[i] = true
	}
	for _, w := range kb.grounder.LearnableWeights() {
		mask[w] = false
	}
	return mask
}

// runtime derives the Gibbs chain-selection config from the options.
func (kb *KB) runtime() gibbs.Runtime {
	return gibbs.Runtime{Workers: kb.opts.Parallelism, Replicas: kb.opts.Replicas, SyncEvery: kb.opts.SyncEvery}
}

// engineOpts derives the incremental-engine configuration — shared by
// Materialize and the background re-materializer so a swapped-in engine
// behaves identically to an explicitly materialized one. The measured
// §3.2 optimizer and cumulative change tracking are on unless the
// StaticOptimizer lesion reverts to the pre-autopilot behavior.
func (kb *KB) engineOpts(seed int64) inc.Options {
	return inc.Options{
		MaterializationSamples: kb.opts.MatSamples,
		Burnin:                 kb.opts.InferBurnin,
		KeepSamples:            kb.opts.InferKeep,
		Lambda:                 kb.opts.Lambda,
		Parallelism:            kb.opts.Parallelism,
		Replicas:               kb.opts.Replicas,
		SyncEvery:              kb.opts.SyncEvery,
		Seed:                   seed,
		MeasuredOptimizer:      !kb.opts.StaticOptimizer,
		CumulativeChanges:      !kb.opts.StaticOptimizer,
	}
}

// Learn fits rule weights from scratch (tied weights start at zero;
// fixed weights stay fixed). Cancellation via ctx returns promptly with
// the context's error; the weights of the last completed gradient step
// remain installed (a coherent, partially trained model) but no new
// snapshot is published.
func (kb *KB) Learn(ctx context.Context) (time.Duration, error) {
	defer kb.lockExclusive()()
	if err := ctxErr(ctx); err != nil {
		return 0, err
	}
	start := time.Now()
	g := kb.grounder.Graph()
	warm := append([]float64(nil), g.Weights()...)
	for _, w := range kb.grounder.LearnableWeights() {
		warm[w] = 0
	}
	_, err := learn.TrainCtx(ctx, g, learn.Options{
		Epochs:         kb.opts.LearnEpochs,
		StepSize:       kb.opts.LearnStep,
		Parallelism:    kb.opts.Parallelism,
		Replicas:       kb.opts.Replicas,
		SyncEvery:      kb.opts.SyncEvery,
		AsyncAveraging: kb.opts.AsyncAveraging,
		Seed:           kb.opts.Seed + 1,
		Warmstart:      warm,
		Frozen:         kb.frozen(g),
	})
	if err != nil {
		return time.Since(start), err
	}
	kb.publishLocked()
	return time.Since(start), nil
}

// Infer runs Gibbs sampling from scratch on the current graph, stores
// marginals for every candidate fact, and publishes a snapshot carrying
// them. Cancellation returns promptly with the context's error; the
// partial estimate is discarded and the previous snapshot keeps serving.
func (kb *KB) Infer(ctx context.Context) (time.Duration, error) {
	defer kb.lockExclusive()()
	if err := ctxErr(ctx); err != nil {
		return 0, err
	}
	start := time.Now()
	m := inc.RerunWithCtx(ctx, kb.grounder.Graph(), kb.opts.InferBurnin, kb.opts.InferKeep, kb.opts.Seed+2, kb.runtime())
	if err := ctxErr(ctx); err != nil {
		return time.Since(start), err
	}
	kb.marg = m
	kb.pending = inc.ChangeSet{} // full rerun covered every grounded delta
	kb.publishLocked()
	return time.Since(start), nil
}

// Materialize prepares the incremental-inference engine (sample bundles +
// variational approximation) over the current distribution. Call after
// Learn; afterwards Apply serves changes incrementally. Materialization
// is all-or-nothing under cancellation: a cancelled call installs no
// engine and returns the context's error.
func (kb *KB) Materialize(ctx context.Context) (time.Duration, error) {
	defer kb.lockExclusive()()
	if err := ctxErr(ctx); err != nil {
		return 0, err
	}
	eng, err := inc.NewEngineCtx(ctx, kb.grounder.Graph(), kb.engineOpts(kb.opts.Seed+3))
	if err != nil {
		return 0, err
	}
	kb.engine = eng
	kb.engineSeed = kb.opts.Seed + 3
	kb.pending = inc.ChangeSet{} // the new Pr(0) bakes in every grounded delta
	kb.publishLocked()
	return eng.MaterializationTime(), nil
}

// Apply applies one increment of the development loop — new rules,
// inserted tuples, deleted tuples — through incremental grounding (DRed),
// warmstart learning when the model changed, and incremental inference
// under the optimizer's strategy choice, then publishes a snapshot with
// the refreshed marginals.
//
// Cancellation semantics: the context is checked before grounding and
// cooperatively during learning and inference. A run cancelled after
// grounding keeps the grounded delta (grounding is not rolled back) but
// publishes no snapshot and refreshes no marginals — readers keep the
// previous consistent view. The cancelled delta's change set is carried
// forward and merged into the next apply's acceptance scoring, so a
// later successful Apply (or a full Infer/Materialize) publishes the
// accumulated state with every grounded factor accounted for.
func (kb *KB) Apply(ctx context.Context, u Update) (*UpdateResult, error) {
	st, err := kb.applyGround(ctx, u)
	if err != nil {
		return nil, err
	}
	return kb.applyFinish(ctx, st)
}

// stagedApply is an update whose grounding stage has committed: the
// graph is patched and the grounding version bumped, but learning,
// inference, and publication have not run. applyFinish completes it.
// Every successful applyGround MUST be followed by exactly one
// applyFinish (even if the caller no longer wants the result) — the
// finish retires the pipeline ticket that later applies wait on.
type stagedApply struct {
	seq    uint64
	delta  *ground.Delta
	graph  *factor.Graph
	frozen []bool
	skel   *Snapshot
	res    *UpdateResult
	// walErr records a durability failure (or an injected crash) on this
	// update's write-ahead append: the commit stands, but applyFinish
	// fails the update without publishing and the delta carries in
	// pending, exactly like a cancellation.
	walErr error
}

// applyGround runs the grounding stage of the apply pipeline: DRed delta
// evaluation under groundMu, then — once every earlier apply has
// finished — the graph commit, pending-change-set merge, and snapshot
// skeleton under stateMu. The expensive half (delta evaluation, often
// parallel itself; see ground.SetParallelism) overlaps the previous
// apply's learning and inference; only the cheap O(Δ) commit waits.
func (kb *KB) applyGround(ctx context.Context, u Update) (*stagedApply, error) {
	kb.groundMu.Lock()
	defer kb.groundMu.Unlock()
	if !kb.inited {
		return nil, fmt.Errorf("deepdive: Apply before Init")
	}
	if kb.engine == nil {
		return nil, fmt.Errorf("deepdive: Apply before Materialize")
	}
	// Fail fast while the durable chain is broken — before delta
	// evaluation, so a refused update leaves no unacknowledged mutation
	// in the grounder tables (the mid-append failure below has no such
	// luxury: by then evaluation has already run).
	if kb.wal != nil && !kb.replaying && kb.walBroken.Load() {
		if HealthState(kb.health.Load()) == ReadOnly {
			return nil, ErrReadOnly
		}
		return nil, ErrDurabilitySuspended
	}
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	var rules []*datalog.Rule
	if u.RuleSource != "" {
		prog := kb.grounder.Program()
		combined := prog.String() + "\n" + u.RuleSource
		full, err := datalog.Parse(combined)
		if err != nil {
			return nil, err
		}
		rules = full.Rules[len(prog.Rules):]
	}
	res := &UpdateResult{}

	start := time.Now()
	delta, commit, err := kb.grounder.ApplyUpdateStaged(ground.Update{
		NewRules: rules,
		Inserts:  u.Inserts,
		Deletes:  u.Deletes,
	})
	if err != nil {
		return nil, err
	}
	// The delta is fully evaluated; no error returns beyond this point
	// (the ticket taken here must be retired by applyFinish).
	st := &stagedApply{seq: kb.seqEnter(), delta: delta, res: res}

	// Committing patches the served graph's lineage, which must observe
	// the previous apply's learned weights (the patch snapshots the
	// weight vector) and must not race its still-running inference. Wait
	// for the preceding finish, then commit under stateMu. The preempt
	// sits between the two: it must run after the preceding finish (which
	// may spawn a re-materialization at its end) and before the commit
	// patches pool state a re-materializer could be sampling from
	// (factor.Patch is not safe against in-flight evaluation anywhere in
	// the lineage).
	kb.seqAwait(st.seq)
	// Write-ahead: once a durable log is active, the record describing
	// this commit must be on disk before the commit happens — recovery
	// replays the logged tail over the last snapshot, so a committed but
	// unlogged mutation would silently diverge the durable chain. The
	// append runs here, after seqAwait, so records land in commit order.
	// A failed append latches walBroken: the in-memory commit still
	// proceeds (the grounder tables are already mutated and must stay
	// consistent), but this and every later update reports a durability
	// error until a Checkpoint writes a fresh snapshot and rotates to a
	// complete segment.
	if kb.wal != nil && !kb.replaying {
		if kb.walBroken.Load() {
			// Latched between this update's fast-path check and its append
			// (only possible for the update that broke the chain itself in
			// a pipelined race); refuse like any other suspended update.
			st.walErr = ErrDurabilitySuspended
		} else {
			payload := encodeUpdate(&u)
			if h := kb.opts.PersistFault; h != nil {
				st.walErr = h(FaultWALAppend)
			}
			if st.walErr == nil {
				st.walErr = kb.wal.Append(kb.commitTicket+1, payload)
			}
			if st.walErr != nil {
				kb.noteWALBroken()
				// Wrap so the triggering update's error matches the
				// suspended-durability class too (errors.Is compatible),
				// while keeping the underlying append failure visible.
				st.walErr = fmt.Errorf("%w: %w", ErrDurabilitySuspended, st.walErr)
			} else {
				kb.commitTicket++
				if h := kb.opts.PersistFault; h != nil {
					// The record is durable; an abort past this point
					// loses only the publication, which replay completes.
					st.walErr = h(FaultWALAppended)
				}
			}
		}
	}
	kb.preemptRemat()
	kb.stateMu.Lock()
	commit()
	kb.stateGen++
	st.graph = kb.grounder.Graph()
	kb.curGraph = st.graph
	// The grounded delta is now committed. Fold it into the pending
	// change set immediately: if this update's learning or inference is
	// cancelled, the next apply scores this delta's groups too instead of
	// silently dropping their energy from the acceptance test.
	kb.pending = kb.pending.Merge(inc.FromDelta(delta))
	st.frozen = kb.frozen(st.graph)
	// Partial-progress publication: when this batch's grounding stage
	// already ran longer than the configured threshold, its learning and
	// inference will hold the final publication back for at least as long
	// again — publish an intermediate snapshot right after the commit so
	// readers and subscribers see the new structure (fresh candidates,
	// evidence values, deletions) immediately instead of a minutes-stale
	// view. The intermediate carries the previous marginals; facts grounded
	// by this batch report "no marginal yet" until the final publication
	// re-scores everything. Suppressed during WAL replay (replay timing is
	// not the original run's) — recovery re-publishes only final states.
	if d := kb.opts.ProgressPublish; d > 0 && !kb.replaying && time.Since(start) >= d {
		st.res.IntermediateEpoch = kb.publishStaged(kb.buildSkeleton(st.graph)).Epoch()
	}
	st.skel = kb.buildSkeleton(st.graph)
	kb.stateMu.Unlock()

	res.GroundTime = time.Since(start)
	res.NewVars = len(delta.NewVars)
	res.NewFactors = len(delta.AddedGroups)
	return st, nil
}

// applyFinish runs the finish stage of the apply pipeline — warmstart
// learning when the model changed, incremental inference under the
// optimizer's strategy choice, snapshot publication — and retires the
// pipeline ticket. It holds only stateMu, so the next update's grounding
// stage evaluates concurrently under groundMu.
func (kb *KB) applyFinish(ctx context.Context, st *stagedApply) (*UpdateResult, error) {
	defer kb.seqExit(st.seq)
	kb.stateMu.Lock()
	defer kb.stateMu.Unlock()
	if st.walErr != nil {
		return nil, st.walErr
	}
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	res, delta := st.res, st.delta
	if delta.StructureChanged() || delta.HasEvidenceChange() {
		start := time.Now()
		_, err := learn.TrainCtx(ctx, st.graph, learn.Options{
			Epochs:         kb.opts.IncLearnEpochs,
			StepSize:       kb.opts.LearnStep,
			Parallelism:    kb.opts.Parallelism,
			Replicas:       kb.opts.Replicas,
			SyncEvery:      kb.opts.SyncEvery,
			AsyncAveraging: kb.opts.AsyncAveraging,
			Seed:           kb.opts.Seed + 5,
			Warmstart:      append([]float64(nil), st.graph.Weights()...),
			Frozen:         st.frozen,
		})
		res.LearnTime = time.Since(start)
		if err != nil {
			return nil, err
		}
	}

	// Score the accumulated set; weight drift is recomputed against the
	// current weights on every attempt, so it is not folded into pending.
	cs := kb.pending.Merge(inc.ChangeSet{})
	addWeightChanges(&cs, kb.engine, st.graph)

	start := time.Now()
	ir := kb.engine.AutoInferCtx(ctx, st.graph, cs, func() []inc.DecompGroup {
		return inc.ComponentGroups(st.graph)
	})
	res.InferTime = time.Since(start)
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	res.Strategy = ir.Strategy
	res.Acceptance = ir.AcceptanceRate
	res.Probe = ir.Probed
	res.ProbeReused = ir.ProbeReused
	kb.recordAutoResult(ir)
	kb.marg = ir.Marginals
	kb.pending = inc.ChangeSet{} // published: nothing carries over
	res.Epoch = kb.publishStaged(st.skel).Epoch()
	// With the store drawn down by this update's inference, check the
	// low-water mark and kick off a background re-materialization while
	// the write locks are idle.
	kb.maybeRematerialize()
	return res, nil
}

// Updates returns the KB's asynchronous update queue, starting it on
// first use. See UpdateQueue.
func (kb *KB) Updates() *UpdateQueue {
	kb.queueOnce.Do(func() {
		kb.queue = newUpdateQueue(kb)
	})
	return kb.queue
}

// Close shuts the update queue down (draining already-submitted updates)
// and leaves the KB serving its last published snapshot. Any background
// re-materialization is cancelled and waited out — after Close returns no
// KB goroutine is left running. Reads stay valid after Close; further
// writes are the caller's responsibility to stop. Close is idempotent and
// safe against a concurrent first Updates() call: it resolves the queue
// through the same once, so an update submitted before Close is always
// drained.
func (kb *KB) Close() error {
	kb.Updates().Close()
	kb.shutdownRemat()
	kb.shutdownRepair()
	return kb.closeWAL()
}

// closeWAL releases the active write-ahead segment. Further applies on
// a closed KB are the caller's responsibility to stop (as with any
// post-Close write).
func (kb *KB) closeWAL() error {
	kb.groundMu.Lock()
	defer kb.groundMu.Unlock()
	if kb.wal == nil {
		return nil
	}
	err := kb.wal.Close()
	kb.wal = nil
	return err
}

// CloseNow is Close without draining: queued updates that have not
// started resolve with ErrQueueClosed, in-flight batches are cancelled
// through the queue's lifecycle context, and any background
// re-materialization is cancelled and waited out.
func (kb *KB) CloseNow() error {
	kb.Updates().CloseNow()
	kb.shutdownRemat()
	kb.shutdownRepair()
	return kb.closeWAL()
}

// buildSkeleton freezes the grounding-dependent half of a snapshot: the
// per-relation fact tables (tuples, variable ids, evidence values) and
// graph statistics, pinned to the current grounding version and graph
// epoch. The marginal vector and the publication epoch are attached
// later by publishStaged, once inference has run — this is what lets the
// pipelined apply path build the skeleton during its grounding stage.
// Callers hold groundMu (the skeleton reads grounder state) and pass the
// committed graph the snapshot pins.
func (kb *KB) buildSkeleton(g *factor.Graph) *Snapshot {
	s := &Snapshot{
		groundVersion: kb.grounder.Version(),
		graphEpoch:    g.Epoch(),
		rels:          map[string]*relView{},
	}
	nv := kb.grounder.NumVars()
	for v := 0; v < nv; v++ {
		id := factor.VarID(v)
		if !kb.grounder.IsLive(id) {
			continue
		}
		rel, tuple := kb.grounder.VarTuple(id)
		rv := s.rels[rel]
		if rv == nil {
			rv = &relView{byKey: map[string]int32{}}
			s.rels[rel] = rv
		}
		f := snapFact{tuple: tuple, v: int32(v)}
		if v < g.NumVars() && g.IsEvidence(id) {
			f.evidence = true
			f.evValue = g.EvidenceValue(id)
		}
		rv.byKey[tuple.Key()] = int32(len(rv.facts))
		rv.facts = append(rv.facts, f)
	}
	st := GraphStats{
		Variables: g.NumVars(),
		Factors:   kb.grounder.NumGroundings(),
		Weights:   g.NumWeights(),
	}
	for v := 0; v < g.NumVars(); v++ {
		if g.IsEvidence(factor.VarID(v)) {
			st.Evidence++
		}
	}
	st.QueryFacts = st.Variables - st.Evidence
	s.stats = st
	return s
}

// publishStaged attaches the current marginals and the next publication
// epoch to a prepared skeleton and swaps it in as the served view.
// Callers hold stateMu.
func (kb *KB) publishStaged(s *Snapshot) *Snapshot {
	if kb.marg != nil {
		s.marg = append([]float64(nil), kb.marg...)
	}
	if kb.engine != nil {
		ap := kb.autopilotLocked()
		s.stats.Autopilot = &ap
	}
	s.epoch = kb.epoch.Add(1)
	kb.snap.Store(s)
	kb.notifyPublish()
	return s
}

// publishLocked freezes the current grounding + marginal state into a
// fresh Snapshot and swaps it in as the served view — the monolithic
// writer path. Callers hold both writer locks (lockExclusive).
func (kb *KB) publishLocked() *Snapshot {
	g := kb.grounder.Graph()
	kb.curGraph = g
	return kb.publishStaged(kb.buildSkeleton(g))
}

// Marginal is shorthand for Snapshot().Marginal — one consistent point
// read. Multi-query consumers should hold a Snapshot instead.
func (kb *KB) Marginal(relation string, t Tuple) (float64, bool) {
	return kb.Snapshot().Marginal(relation, t)
}

// Extractions is shorthand for Snapshot().Extractions.
func (kb *KB) Extractions(relation string, threshold float64) []Extraction {
	return kb.Snapshot().Extractions(relation, threshold)
}

// Candidates is shorthand for Snapshot().Candidates.
func (kb *KB) Candidates(relation string) []Tuple {
	return kb.Snapshot().Candidates(relation)
}

// Stats reports the grounding statistics of the latest snapshot.
func (kb *KB) Stats() GraphStats { return kb.Snapshot().Stats() }

// Relation exposes a read-only copy of a database relation's current
// tuples. Unlike snapshot queries this reads the live database (under
// the writer lock): base relations are not part of the served KB view.
func (kb *KB) Relation(name string) []Tuple {
	kb.groundMu.Lock()
	defer kb.groundMu.Unlock()
	r := kb.grounder.DB().Relation(name)
	if r == nil {
		return nil
	}
	return r.Tuples()
}

// ctxErr returns ctx's error, tolerating a nil context.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

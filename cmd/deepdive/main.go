// Command deepdive runs one of the built-in KBC systems end to end:
// corpus generation, NLP preprocessing, grounding, weight learning,
// inference, and an incremental development loop over the paper's
// A1/FE1/FE2/I1/S1/S2 rule iterations.
//
// Usage:
//
//	deepdive [-system News] [-sem ratio] [-threshold 0.9] [-seed 1] [-full]
//	         [-parallel -1 | -replicas -1 [-syncevery 8]] [-inplace]
//	         [-serve 2s [-data-dir ./kb]]
//
// With -data-dir the serving demo is durable: the materialized KB is
// checkpointed there, every streamed update is write-ahead logged, and
// a rerun with the same directory restarts from snapshot + WAL instead
// of re-grounding and re-materializing.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"deepdive"
	"deepdive/internal/corpus"
	"deepdive/internal/factor"
	"deepdive/internal/kbc"
)

func main() {
	// All work happens in run so deferred cleanups (profile flushes) fire
	// before the process exits, on error paths included.
	os.Exit(run())
}

func run() int {
	system := flag.String("system", "Genomics", "system: Adversarial, News, Genomics, Pharma, Paleontology")
	semName := flag.String("sem", "ratio", "counting semantics: linear, logical, ratio")
	threshold := flag.Float64("threshold", 0.9, "extraction threshold")
	seed := flag.Int64("seed", 1, "random seed")
	full := flag.Bool("full", false, "use the full scaled corpus (slower)")
	parallel := flag.Int("parallel", 1, "Gibbs worker shards (<=1 sequential, -1 one per core)")
	replicas := flag.Int("replicas", 0, "replica engine workers (0 off, -1 one per core); overrides -parallel")
	syncEvery := flag.Int("syncevery", 0, "replica merge interval in sweeps/steps (0 = default)")
	rebuild := flag.Bool("rebuild", false, "rebuild the factor graph on every update (lesion; default is the O(Δ) in-place patch)")
	serve := flag.Duration("serve", 0, "after the iteration loop, run a snapshot-serving demo for this long (e.g. 2s): concurrent readers over deepdive.KB snapshots while the update queue coalesces rule iterations")
	readers := flag.Int("readers", 4, "reader goroutines for the -serve demo")
	rematLow := flag.Int("remat-low", 0, "serving demo: background re-materialization low-water mark in unconsumed samples (0 off)")
	rematBudget := flag.Duration("remat-budget", 0, "serving demo: extra sampling time per background re-materialization")
	staticOpt := flag.Bool("static-optimizer", false, "serving demo lesion: static §3.3 strategy rules, per-update change sets, no re-materialization")
	dataDir := flag.String("data-dir", "", "serving demo: durable KB directory (snapshot + WAL); rerunning with the same directory restarts from disk")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file (inspect with `go tool pprof`)")
	memprofile := flag.String("memprofile", "", "write a heap profile at exit to this file")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	sem, err := factor.ParseSemantics(*semName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	sys, err := corpus.SystemByName(*system)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if !*full {
		spec := sys.Spec
		if spec.NumDocs > 120 {
			spec.NumDocs = 120
		}
		sys = corpus.Generate(spec)
	}

	cfg := kbc.Config{
		Sem: sem, Seed: *seed, Threshold: *threshold,
		Parallelism: *parallel, Replicas: *replicas, SyncEvery: *syncEvery,
		RebuildUpdates: *rebuild,
	}
	fmt.Printf("== %s (%d docs, %d relations) ==\n",
		sys.Spec.Name, len(sys.Docs), len(sys.Spec.Relations))

	p, err := kbc.NewPipeline(sys, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	st := p.SystemStats()
	fmt.Printf("grounded: %d vars, %d factors, %d rules\n", st.Vars, st.Factors, st.Rules)

	learnT := p.LearnFull()
	inferT := p.InferFromScratch()
	fmt.Printf("initial learn %v, inference %v, F1 %.3f\n",
		learnT.Round(1e6), inferT.Round(1e6), p.Evaluate(p.Marginals, *threshold).F1)

	matT := p.Materialize()
	fmt.Printf("materialized both strategies in %v (%d samples)\n",
		matT.Round(1e6), p.Engine().Store().Len())

	fmt.Printf("\n%-5s %10s %12s %12s %12s %6s  %s\n",
		"rule", "F1", "ground", "learn", "infer", "acc", "strategy")
	for _, rule := range kbc.IterationNames {
		res, err := p.ApplyIteration(rule)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", rule, err)
			return 1
		}
		fmt.Printf("%-5s %10.3f %12v %12v %12v %6.2f  %v\n",
			rule, res.Scores.F1, res.GroundTime.Round(1e3), res.LearnTime.Round(1e3),
			res.InferTime.Round(1e3), res.Acceptance, res.Strategy)
	}

	fmt.Printf("\ncalibration (probability bucket -> empirical accuracy):\n")
	for _, b := range p.Calibration(p.Marginals, 5) {
		if b.Count == 0 {
			continue
		}
		fmt.Printf("  [%.1f,%.1f): %4d facts, %.2f true\n", b.Lo, b.Hi, b.Count, b.FracTrue)
	}

	if *serve > 0 {
		sc := serveConfig{d: *serve, readers: *readers,
			rematLow: *rematLow, rematBudget: *rematBudget, staticOpt: *staticOpt,
			dataDir: *dataDir}
		if err := serveDemo(sys, sem, cfg, sc); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	return 0
}

// serveConfig carries the -serve demo's flags: window, reader count, and
// the quality-autopilot knobs.
type serveConfig struct {
	d           time.Duration
	readers     int
	rematLow    int
	rematBudget time.Duration
	staticOpt   bool
	dataDir     string
}

// serveDemo exercises the snapshot-serving API end to end: a deepdive.KB
// is built over the same generated system, `readers` goroutines query
// snapshots continuously, and the coalescing update queue re-applies the
// development iterations as streamed updates. Reader throughput, the
// batch/coalescing statistics, and the quality autopilot's decisions are
// printed at the end.
func serveDemo(sys *corpus.System, sem factor.Semantics, cfg kbc.Config, sc serveConfig) error {
	d, readers := sc.d, sc.readers
	fmt.Printf("\n== serving demo: %d readers, %v, updates streaming through the queue ==\n", readers, d)
	opts := []deepdive.Option{
		deepdive.WithSeed(cfg.Seed),
		deepdive.WithParallelism(cfg.Parallelism),
		deepdive.WithReplicas(cfg.Replicas, cfg.SyncEvery),
		deepdive.WithRebuildUpdates(cfg.RebuildUpdates),
		deepdive.WithRematerialization(sc.rematLow, sc.rematBudget),
		deepdive.WithStaticOptimizer(sc.staticOpt),
	}
	for name, f := range kbc.UDFs() {
		opts = append(opts, deepdive.WithUDF(name, f))
	}
	if sc.dataDir != "" {
		opts = append(opts, deepdive.WithDataDir(sc.dataDir))
	}
	kb, err := deepdive.OpenKB(kbc.BaseProgram(sys, sem), opts...)
	if err != nil {
		return err
	}
	ctx := context.Background()
	if kb.Recovered() {
		fmt.Printf("restarted from %s: epoch %d, %d vars — skipping ground/learn/infer/materialize\n",
			sc.dataDir, kb.Snapshot().Epoch(), kb.Stats().Variables)
	} else {
		for rel, tuples := range kbc.BaseTuples(sys) {
			if err := kb.Load(rel, tuples); err != nil {
				return err
			}
		}
		if err := kb.Init(ctx); err != nil {
			return err
		}
		if _, err := kb.Learn(ctx); err != nil {
			return err
		}
		if _, err := kb.Infer(ctx); err != nil {
			return err
		}
		if _, err := kb.Materialize(ctx); err != nil {
			return err
		}
		if sc.dataDir != "" {
			if err := kb.Checkpoint(ctx); err != nil {
				return err
			}
			fmt.Printf("checkpointed materialized KB to %s\n", sc.dataDir)
		}
	}
	rels := make([]string, 0, len(sys.Spec.Relations))
	for _, r := range sys.Spec.Relations {
		rels = append(rels, "Rel_"+r.Name)
	}

	var reads atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			var n uint64
			for {
				select {
				case <-stop:
					reads.Add(n)
					return
				default:
				}
				snap := kb.Snapshot()
				rel := rels[int(n)%len(rels)]
				for _, c := range snap.Candidates(rel) {
					snap.Marginal(rel, c)
				}
				snap.Extractions(rel, 0.9)
				n++
			}
		}(r)
	}

	// Stream each development iteration through the coalescing queue
	// once, spaced across the window; readers keep hammering snapshots
	// until the deadline regardless of when the updates run dry.
	q := kb.Updates()
	start := time.Now()
	deadline := time.After(d)
	var tickets []*deepdive.Ticket
stream:
	for i := 0; ; i++ {
		if i < len(kbc.IterationNames) {
			if src := kbc.IterationRules(sys, kbc.IterationNames[i]); src != "" {
				tickets = append(tickets, q.Submit(deepdive.Update{RuleSource: src}))
			}
		}
		select {
		case <-deadline:
			break stream
		case <-time.After(d / 20):
		}
	}
	for _, t := range tickets {
		if _, err := t.Wait(ctx); err != nil {
			fmt.Printf("  update failed: %v\n", err)
		}
	}
	close(stop)
	wg.Wait()
	if sc.dataDir != "" {
		if err := kb.Checkpoint(ctx); err != nil {
			fmt.Printf("  final checkpoint failed: %v\n", err)
		} else {
			fmt.Printf("final checkpoint written to %s; rerun with -data-dir %s to restart from it\n",
				sc.dataDir, sc.dataDir)
		}
	}
	kb.Close()
	elapsed := time.Since(start)
	snap := kb.Snapshot()
	fmt.Printf("served %d snapshot scans in %v (%.0f scans/sec) while applying %d updates in %d coalesced batches\n",
		reads.Load(), elapsed.Round(time.Millisecond),
		float64(reads.Load())/elapsed.Seconds(), q.Applied(), q.Batches())
	fmt.Printf("final snapshot: epoch %d, ground version %d, graph epoch %d, %d vars\n",
		snap.Epoch(), snap.GroundVersion(), snap.GraphEpoch(), snap.Stats().Variables)
	ap := kb.Autopilot()
	fmt.Printf("autopilot: %d sampling / %d variational / %d rerun runs (%d fallbacks), store %d/%d",
		ap.SamplingRuns, ap.VariationalRuns, ap.RerunRuns, ap.Fallbacks, ap.StoreRemaining, ap.StoreLen)
	if ap.LowWater > 0 {
		fmt.Printf(", low-water %d, %d re-materializations (%d preempted, %d forced slots)",
			ap.LowWater, ap.Rematerializations, ap.RematPreempted, ap.RematForced)
	}
	fmt.Println()
	if ap.LastProbe >= 0 {
		fmt.Printf("autopilot: last measured acceptance probe %.2f, histogram %v\n", ap.LastProbe, ap.AcceptanceHist)
	}
	return nil
}

// Command deepdive runs one of the built-in KBC systems end to end:
// corpus generation, NLP preprocessing, grounding, weight learning,
// inference, and an incremental development loop over the paper's
// A1/FE1/FE2/I1/S1/S2 rule iterations.
//
// Usage:
//
//	deepdive [-system News] [-sem ratio] [-threshold 0.9] [-seed 1] [-full]
//	         [-parallel -1 | -replicas -1 [-syncevery 8]] [-inplace]
//	         [-serve 127.0.0.1:8090 [-serve-for 30s] [-data-dir ./kb]]
//
// -serve starts the real HTTP serving tier (KB.Serve) on the given
// address after the iteration loop: lock-free snapshot reads, update
// POSTs through the coalescing queue, and SSE marginal-delta
// subscriptions. The development iterations are streamed through the
// queue while serving so subscribers see live deltas. The server runs
// until -serve-for elapses or SIGINT/SIGTERM.
//
// With -data-dir the served KB is durable: the materialized KB is
// checkpointed there, every streamed update is write-ahead logged, and
// a rerun with the same directory restarts from snapshot + WAL instead
// of re-grounding and re-materializing.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"syscall"
	"time"

	"deepdive"
	"deepdive/internal/corpus"
	"deepdive/internal/factor"
	"deepdive/internal/kbc"
)

func main() {
	// All work happens in run so deferred cleanups (profile flushes) fire
	// before the process exits, on error paths included.
	os.Exit(run())
}

func run() int {
	system := flag.String("system", "Genomics", "system: Adversarial, News, Genomics, Pharma, Paleontology")
	semName := flag.String("sem", "ratio", "counting semantics: linear, logical, ratio")
	threshold := flag.Float64("threshold", 0.9, "extraction threshold")
	seed := flag.Int64("seed", 1, "random seed")
	full := flag.Bool("full", false, "use the full scaled corpus (slower)")
	parallel := flag.Int("parallel", 1, "Gibbs worker shards (<=1 sequential, -1 one per core)")
	replicas := flag.Int("replicas", 0, "replica engine workers (0 off, -1 one per core); overrides -parallel")
	syncEvery := flag.Int("syncevery", 0, "replica merge interval in sweeps/steps (0 = default)")
	rebuild := flag.Bool("rebuild", false, "rebuild the factor graph on every update (lesion; default is the O(Δ) in-place patch)")
	serve := flag.String("serve", "", "after the iteration loop, serve the KB over HTTP on this address (e.g. 127.0.0.1:8090, :0 for a free port) while streaming the rule iterations through the update queue")
	serveFor := flag.Duration("serve-for", 0, "shut the -serve server down after this long (0 = serve until SIGINT/SIGTERM)")
	rematLow := flag.Int("remat-low", 0, "serving: background re-materialization low-water mark in unconsumed samples (0 off)")
	rematBudget := flag.Duration("remat-budget", 0, "serving: extra sampling time per background re-materialization")
	staticOpt := flag.Bool("static-optimizer", false, "serving lesion: static §3.3 strategy rules, per-update change sets, no re-materialization")
	dataDir := flag.String("data-dir", "", "serving: durable KB directory (snapshot + WAL); rerunning with the same directory restarts from disk")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file (inspect with `go tool pprof`)")
	memprofile := flag.String("memprofile", "", "write a heap profile at exit to this file")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	sem, err := factor.ParseSemantics(*semName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	sys, err := corpus.SystemByName(*system)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if !*full {
		spec := sys.Spec
		if spec.NumDocs > 120 {
			spec.NumDocs = 120
		}
		sys = corpus.Generate(spec)
	}

	cfg := kbc.Config{
		Sem: sem, Seed: *seed, Threshold: *threshold,
		Parallelism: *parallel, Replicas: *replicas, SyncEvery: *syncEvery,
		RebuildUpdates: *rebuild,
	}
	fmt.Printf("== %s (%d docs, %d relations) ==\n",
		sys.Spec.Name, len(sys.Docs), len(sys.Spec.Relations))

	p, err := kbc.NewPipeline(sys, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	st := p.SystemStats()
	fmt.Printf("grounded: %d vars, %d factors, %d rules\n", st.Vars, st.Factors, st.Rules)

	learnT := p.LearnFull()
	inferT := p.InferFromScratch()
	fmt.Printf("initial learn %v, inference %v, F1 %.3f\n",
		learnT.Round(1e6), inferT.Round(1e6), p.Evaluate(p.Marginals, *threshold).F1)

	matT := p.Materialize()
	fmt.Printf("materialized both strategies in %v (%d samples)\n",
		matT.Round(1e6), p.Engine().Store().Len())

	fmt.Printf("\n%-5s %10s %12s %12s %12s %6s  %s\n",
		"rule", "F1", "ground", "learn", "infer", "acc", "strategy")
	for _, rule := range kbc.IterationNames {
		res, err := p.ApplyIteration(rule)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", rule, err)
			return 1
		}
		fmt.Printf("%-5s %10.3f %12v %12v %12v %6.2f  %v\n",
			rule, res.Scores.F1, res.GroundTime.Round(1e3), res.LearnTime.Round(1e3),
			res.InferTime.Round(1e3), res.Acceptance, res.Strategy)
	}

	fmt.Printf("\ncalibration (probability bucket -> empirical accuracy):\n")
	for _, b := range p.Calibration(p.Marginals, 5) {
		if b.Count == 0 {
			continue
		}
		fmt.Printf("  [%.1f,%.1f): %4d facts, %.2f true\n", b.Lo, b.Hi, b.Count, b.FracTrue)
	}

	if *serve != "" {
		sc := serveConfig{addr: *serve, serveFor: *serveFor,
			rematLow: *rematLow, rematBudget: *rematBudget, staticOpt: *staticOpt,
			dataDir: *dataDir}
		if err := serveHTTP(sys, sem, cfg, sc); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	return 0
}

// serveConfig carries the -serve flags: listen address, window, and the
// quality-autopilot knobs.
type serveConfig struct {
	addr        string
	serveFor    time.Duration
	rematLow    int
	rematBudget time.Duration
	staticOpt   bool
	dataDir     string
}

// serveHTTP is the network serving tier end to end: a deepdive.KB is
// built over the same generated system (or recovered from -data-dir),
// exposed over HTTP via KB.Serve, and the development iterations are
// streamed through the coalescing update queue while clients read,
// update, and subscribe. Runs until serveFor elapses or the process is
// interrupted; queue and autopilot statistics are printed at the end.
func serveHTTP(sys *corpus.System, sem factor.Semantics, cfg kbc.Config, sc serveConfig) error {
	fmt.Printf("\n== serving: HTTP tier on %s, updates streaming through the queue ==\n", sc.addr)
	opts := []deepdive.Option{
		deepdive.WithSeed(cfg.Seed),
		deepdive.WithParallelism(cfg.Parallelism),
		deepdive.WithReplicas(cfg.Replicas, cfg.SyncEvery),
		deepdive.WithRebuildUpdates(cfg.RebuildUpdates),
		deepdive.WithRematerialization(sc.rematLow, sc.rematBudget),
		deepdive.WithStaticOptimizer(sc.staticOpt),
	}
	for name, f := range kbc.UDFs() {
		opts = append(opts, deepdive.WithUDF(name, f))
	}
	if sc.dataDir != "" {
		opts = append(opts, deepdive.WithDataDir(sc.dataDir))
	}
	kb, err := deepdive.OpenKB(kbc.BaseProgram(sys, sem), opts...)
	if err != nil {
		return err
	}
	ctx := context.Background()
	if kb.Recovered() {
		fmt.Printf("restarted from %s: epoch %d, %d vars — skipping ground/learn/infer/materialize\n",
			sc.dataDir, kb.Snapshot().Epoch(), kb.Stats().Variables)
	} else {
		for rel, tuples := range kbc.BaseTuples(sys) {
			if err := kb.Load(rel, tuples); err != nil {
				return err
			}
		}
		if err := kb.Init(ctx); err != nil {
			return err
		}
		if _, err := kb.Learn(ctx); err != nil {
			return err
		}
		if _, err := kb.Infer(ctx); err != nil {
			return err
		}
		if _, err := kb.Materialize(ctx); err != nil {
			return err
		}
		if sc.dataDir != "" {
			if err := kb.Checkpoint(ctx); err != nil {
				return err
			}
			fmt.Printf("checkpointed materialized KB to %s\n", sc.dataDir)
		}
	}
	// The server lives until the window elapses or the process is
	// interrupted; cancelling the context severs subscription streams.
	sctx, stopSig := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stopSig()
	if sc.serveFor > 0 {
		var cancel context.CancelFunc
		sctx, cancel = context.WithTimeout(sctx, sc.serveFor)
		defer cancel()
	}
	srv, err := kb.Serve(sctx, deepdive.ServeOptions{Addr: sc.addr})
	if err != nil {
		kb.Close()
		return err
	}
	start := time.Now()
	fmt.Printf("serving on http://%s\n", srv.Addr())
	fmt.Printf("  curl 'http://%s/v1/health'\n", srv.Addr())
	fmt.Printf("  curl 'http://%s/v1/facts?relation=Rel_%s&threshold=0.9'\n", srv.Addr(), sys.Spec.Relations[0].Name)
	fmt.Printf("  curl -N 'http://%s/v1/subscribe?relation=Rel_%s'\n", srv.Addr(), sys.Spec.Relations[0].Name)

	// Stream each development iteration through the coalescing queue,
	// spaced across the window (capped at 2s apart), so subscribers see
	// live deltas; HTTP clients read/update/subscribe concurrently.
	q := kb.Updates()
	space := 2 * time.Second
	if sc.serveFor > 0 {
		if s := sc.serveFor / 20; s < space {
			space = s
		}
	}
	var tickets []*deepdive.Ticket
	for _, rule := range kbc.IterationNames {
		if src := kbc.IterationRules(sys, rule); src != "" {
			tickets = append(tickets, q.Submit(deepdive.Update{RuleSource: src}))
		}
		select {
		case <-sctx.Done():
		case <-time.After(space):
		}
	}
	for _, t := range tickets {
		if _, err := t.Wait(ctx); err != nil {
			fmt.Printf("  update failed: %v\n", err)
		}
	}
	<-sctx.Done()
	shctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shctx); err != nil {
		fmt.Printf("  shutdown: %v\n", err)
	}
	if sc.dataDir != "" {
		if err := kb.Checkpoint(ctx); err != nil {
			fmt.Printf("  final checkpoint failed: %v\n", err)
		} else {
			fmt.Printf("final checkpoint written to %s; rerun with -data-dir %s to restart from it\n",
				sc.dataDir, sc.dataDir)
		}
	}
	kb.Close()
	elapsed := time.Since(start)
	snap := kb.Snapshot()
	fmt.Printf("served for %v: %d updates applied in %d coalesced batches\n",
		elapsed.Round(time.Millisecond), q.Applied(), q.Batches())
	fmt.Printf("final snapshot: epoch %d, ground version %d, graph epoch %d, %d vars\n",
		snap.Epoch(), snap.GroundVersion(), snap.GraphEpoch(), snap.Stats().Variables)
	ap := kb.Autopilot()
	fmt.Printf("autopilot: %d sampling / %d variational / %d rerun runs (%d fallbacks), store %d/%d",
		ap.SamplingRuns, ap.VariationalRuns, ap.RerunRuns, ap.Fallbacks, ap.StoreRemaining, ap.StoreLen)
	if ap.LowWater > 0 {
		fmt.Printf(", low-water %d, %d re-materializations (%d preempted, %d forced slots)",
			ap.LowWater, ap.Rematerializations, ap.RematPreempted, ap.RematForced)
	}
	fmt.Println()
	if ap.LastProbe >= 0 {
		fmt.Printf("autopilot: last measured acceptance probe %.2f, histogram %v\n", ap.LastProbe, ap.AcceptanceHist)
	}
	return nil
}

// Command deepdive runs one of the built-in KBC systems end to end:
// corpus generation, NLP preprocessing, grounding, weight learning,
// inference, and an incremental development loop over the paper's
// A1/FE1/FE2/I1/S1/S2 rule iterations.
//
// Usage:
//
//	deepdive [-system News] [-sem ratio] [-threshold 0.9] [-seed 1] [-full]
//	         [-parallel -1 | -replicas -1 [-syncevery 8]] [-inplace]
package main

import (
	"flag"
	"fmt"
	"os"

	"deepdive/internal/corpus"
	"deepdive/internal/factor"
	"deepdive/internal/kbc"
)

func main() {
	system := flag.String("system", "Genomics", "system: Adversarial, News, Genomics, Pharma, Paleontology")
	semName := flag.String("sem", "ratio", "counting semantics: linear, logical, ratio")
	threshold := flag.Float64("threshold", 0.9, "extraction threshold")
	seed := flag.Int64("seed", 1, "random seed")
	full := flag.Bool("full", false, "use the full scaled corpus (slower)")
	parallel := flag.Int("parallel", 1, "Gibbs worker shards (<=1 sequential, -1 one per core)")
	replicas := flag.Int("replicas", 0, "replica engine workers (0 off, -1 one per core); overrides -parallel")
	syncEvery := flag.Int("syncevery", 0, "replica merge interval in sweeps/steps (0 = default)")
	inplace := flag.Bool("inplace", false, "apply updates to the factor graph in place (O(Δ) patch) instead of rebuilding")
	flag.Parse()

	sem, err := factor.ParseSemantics(*semName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	sys, err := corpus.SystemByName(*system)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if !*full {
		spec := sys.Spec
		if spec.NumDocs > 120 {
			spec.NumDocs = 120
		}
		sys = corpus.Generate(spec)
	}

	cfg := kbc.Config{
		Sem: sem, Seed: *seed, Threshold: *threshold,
		Parallelism: *parallel, Replicas: *replicas, SyncEvery: *syncEvery,
		InPlaceUpdates: *inplace,
	}
	fmt.Printf("== %s (%d docs, %d relations) ==\n",
		sys.Spec.Name, len(sys.Docs), len(sys.Spec.Relations))

	p, err := kbc.NewPipeline(sys, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	st := p.SystemStats()
	fmt.Printf("grounded: %d vars, %d factors, %d rules\n", st.Vars, st.Factors, st.Rules)

	learnT := p.LearnFull()
	inferT := p.InferFromScratch()
	fmt.Printf("initial learn %v, inference %v, F1 %.3f\n",
		learnT.Round(1e6), inferT.Round(1e6), p.Evaluate(p.Marginals, *threshold).F1)

	matT := p.Materialize()
	fmt.Printf("materialized both strategies in %v (%d samples)\n",
		matT.Round(1e6), p.Engine().Store().Len())

	fmt.Printf("\n%-5s %10s %12s %12s %12s %6s  %s\n",
		"rule", "F1", "ground", "learn", "infer", "acc", "strategy")
	for _, rule := range kbc.IterationNames {
		res, err := p.ApplyIteration(rule)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", rule, err)
			os.Exit(1)
		}
		fmt.Printf("%-5s %10.3f %12v %12v %12v %6.2f  %v\n",
			rule, res.Scores.F1, res.GroundTime.Round(1e3), res.LearnTime.Round(1e3),
			res.InferTime.Round(1e3), res.Acceptance, res.Strategy)
	}

	fmt.Printf("\ncalibration (probability bucket -> empirical accuracy):\n")
	for _, b := range p.Calibration(p.Marginals, 5) {
		if b.Count == 0 {
			continue
		}
		fmt.Printf("  [%.1f,%.1f): %4d facts, %.2f true\n", b.Lo, b.Hi, b.Count, b.FracTrue)
	}
}

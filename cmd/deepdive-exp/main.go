// Command deepdive-exp regenerates the paper's tables and figures.
//
// Usage:
//
//	deepdive-exp [-scale quick|full] [-seed N] <experiment>...
//	deepdive-exp all
//
// Experiments: f4 f5a f5b f5c f6 f7 f9 f10a f10b f11 f13 f14 f15 f16 f17
// ground. See DESIGN.md for the experiment index and EXPERIMENTS.md for
// recorded results.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"deepdive/internal/exp"
)

func main() {
	scale := flag.String("scale", "quick", "experiment scale: quick or full")
	seed := flag.Int64("seed", 1, "random seed")
	budget := flag.Duration("budget", 2*time.Second, "materialization budget for f15")
	flag.Parse()

	sc := exp.Quick
	switch *scale {
	case "quick":
	case "full":
		sc = exp.Full
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}

	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: deepdive-exp [-scale quick|full] <experiment>... | all")
		fmt.Fprintln(os.Stderr, "experiments: f4 f5a f5b f5c f6 f7 f9 f10a f10b f11 f13 f14 f15 f16 f17 ground")
		os.Exit(2)
	}

	runners := map[string]func() *exp.Report{
		"f4":     func() *exp.Report { return exp.Fig4() },
		"f5a":    func() *exp.Report { return exp.Fig5a(exp.Fig5aSizes, *seed) },
		"f5b":    func() *exp.Report { return exp.Fig5b(1000, exp.Fig5bDeltas, *seed) },
		"f5c":    func() *exp.Report { return exp.Fig5c(1000, exp.Fig5cSparsities, *seed) },
		"f6":     func() *exp.Report { return exp.Fig6(sc, exp.Fig6Lambdas, *seed) },
		"f7":     func() *exp.Report { return exp.Fig7(sc, *seed) },
		"f9":     func() *exp.Report { return exp.Fig9(sc, *seed) },
		"f10a":   func() *exp.Report { return exp.Fig10a(sc, *seed) },
		"f10b":   func() *exp.Report { return exp.Fig10b(sc, *seed) },
		"f11":    func() *exp.Report { return exp.Fig11(sc, *seed) },
		"f13":    func() *exp.Report { return exp.Fig13(exp.Fig13Sizes, *seed) },
		"f14":    func() *exp.Report { return exp.Fig14(sc, *seed) },
		"f15":    func() *exp.Report { return exp.Fig15(sc, *budget, *seed) },
		"f16":    func() *exp.Report { return exp.Fig16(*seed) },
		"f17":    func() *exp.Report { return exp.Fig17(*seed) },
		"ground": func() *exp.Report { return exp.Grounding(sc, *seed) },
	}
	order := []string{"f4", "f5a", "f5b", "f5c", "f6", "f7", "f9", "f10a",
		"f10b", "f11", "f13", "f14", "f15", "f16", "f17", "ground"}

	if len(args) == 1 && args[0] == "all" {
		args = order
	}
	for _, name := range args {
		run, ok := runners[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", name)
			os.Exit(2)
		}
		start := time.Now()
		rep := run()
		fmt.Println(rep.String())
		fmt.Printf("  [%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}
}

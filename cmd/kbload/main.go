// Command kbload drives mixed read/update/subscribe traffic against a
// deepdive HTTP server (internal/serve) and reports wire-level latency:
// read p50/p99, update round-trip, and subscription fan-out lag under a
// sustained writer, swept over client counts.
//
// Usage:
//
//	kbload -addr http://127.0.0.1:8090 [-clients 1,4,8] [-duration 3s]
//	kbload -self [-out BENCH_serve_http.json]
//
// With -self the tool hosts its own spouse KB on a loopback port via
// KB.Serve and drives that, so the benchmark is reproducible without a
// separately started server.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"deepdive"
)

func main() {
	var cfg config
	var clients string
	flag.StringVar(&cfg.addr, "addr", "", "base URL of a running server (e.g. http://127.0.0.1:8090)")
	flag.BoolVar(&cfg.self, "self", false, "self-host a spouse KB on a loopback port and drive it")
	flag.StringVar(&clients, "clients", "1,4,8", "comma-separated reader-client counts to sweep")
	flag.IntVar(&cfg.writers, "writers", 1, "sustained writer goroutines (waited update POSTs)")
	flag.IntVar(&cfg.subscribers, "subscribers", 2, "SSE subscribers measuring fan-out lag")
	flag.DurationVar(&cfg.dur, "duration", 3*time.Second, "measurement window per client count")
	flag.StringVar(&cfg.out, "out", "", "write the benchmark JSON here (default stdout only)")
	flag.Int64Var(&cfg.seed, "seed", 7, "seed for the self-hosted KB")
	flag.Parse()

	for _, part := range strings.Split(clients, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "bad -clients entry %q\n", part)
			os.Exit(2)
		}
		cfg.clients = append(cfg.clients, n)
	}
	if cfg.addr == "" && !cfg.self {
		fmt.Fprintln(os.Stderr, "need -addr or -self")
		os.Exit(2)
	}

	doc, err := run(context.Background(), cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	enc, _ := json.MarshalIndent(doc, "", "  ")
	fmt.Println(string(enc))
	if cfg.out != "" {
		if err := os.WriteFile(cfg.out, append(enc, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

type config struct {
	addr        string
	self        bool
	clients     []int
	writers     int
	subscribers int
	dur         time.Duration
	out         string
	seed        int64
}

type benchDoc struct {
	Bench  string `json:"bench"`
	Config struct {
		DurationMS  float64 `json:"duration_ms_per_phase"`
		Writers     int     `json:"writers"`
		Subscribers int     `json:"subscribers"`
		SelfHosted  bool    `json:"self_hosted"`
		Seed        int64   `json:"seed"`
	} `json:"config"`
	Phases []phaseResult `json:"phases"`
	Repro  []string      `json:"repro"`
}

type phaseResult struct {
	Clients      int     `json:"clients"`
	Reads        uint64  `json:"reads"`
	ReadErrors   uint64  `json:"read_errors"`
	ReadsPerSec  float64 `json:"reads_per_sec"`
	ReadP50us    float64 `json:"read_p50_us"`
	ReadP99us    float64 `json:"read_p99_us"`
	Updates      uint64  `json:"updates"`
	UpdateP50ms  float64 `json:"update_p50_ms"`
	SubDeltas    uint64  `json:"sub_deltas"`
	FanoutP50us  float64 `json:"fanout_p50_us"`
	FanoutP99us  float64 `json:"fanout_p99_us"`
	FanoutMaxUS  float64 `json:"fanout_max_us"`
	FinalEpoch   uint64  `json:"final_epoch"`
	SubsDropped  float64 `json:"subscribers_dropped"`
	UpdateErrors uint64  `json:"update_errors"`
	// SubReconnects / SubResumes count subscriber stream re-dials and how
	// many of them the server resumed from a Last-Event-ID token instead
	// of a full snapshot resync.
	SubReconnects uint64 `json:"sub_reconnects"`
	SubResumes    uint64 `json:"sub_resumes"`
	// AckedUpdates is the number of 200-acknowledged waited updates;
	// AckedLost counts acked documents whose facts were missing from the
	// final fact table (any non-zero value fails the run — an ack that
	// does not survive is the one lie a load harness must not tolerate).
	AckedUpdates int `json:"acked_updates"`
	AckedLost    int `json:"acked_lost"`
	// ErrorClasses histograms every refusal by wire class: "conn" for
	// transport failures, "http_<status>_<code>" for typed JSON refusals
	// (queue_saturated, durability_suspended, ...), "http_<status>" for
	// untyped ones.
	ErrorClasses map[string]uint64 `json:"error_classes,omitempty"`
}

// errHist is the shared error-class histogram.
type errHist struct {
	mu sync.Mutex
	m  map[string]uint64
}

func newErrHist() *errHist { return &errHist{m: make(map[string]uint64)} }

func (h *errHist) add(class string) {
	h.mu.Lock()
	h.m[class]++
	h.mu.Unlock()
}

func (h *errHist) snapshot() map[string]uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.m) == 0 {
		return nil
	}
	out := make(map[string]uint64, len(h.m))
	for k, v := range h.m {
		out[k] = v
	}
	return out
}

// classifyHTTPError buckets one non-200 response: typed refusals (the
// serving tier's coded JSON errors) get their own class so a chaos run
// can tell shedding from suspension from drain.
func classifyHTTPError(status int, body []byte) string {
	var typed struct {
		Code string `json:"code"`
	}
	if json.Unmarshal(body, &typed) == nil && typed.Code != "" {
		return fmt.Sprintf("http_%d_%s", status, typed.Code)
	}
	return fmt.Sprintf("http_%d", status)
}

// docID numbers the inserted documents across all phases so repeated
// sweeps against one server never collide on tuple keys.
var docID atomic.Int64

func run(ctx context.Context, cfg config) (*benchDoc, error) {
	base := cfg.addr
	if cfg.self {
		srv, cleanup, err := selfHost(ctx, cfg.seed)
		if err != nil {
			return nil, err
		}
		defer cleanup()
		base = "http://" + srv.Addr()
		fmt.Fprintf(os.Stderr, "self-hosted spouse KB at %s\n", base)
	}
	docID.Store(10_000)

	doc := &benchDoc{Bench: "serve_http"}
	doc.Config.DurationMS = float64(cfg.dur.Milliseconds())
	doc.Config.Writers = cfg.writers
	doc.Config.Subscribers = cfg.subscribers
	doc.Config.SelfHosted = cfg.self
	doc.Config.Seed = cfg.seed
	doc.Repro = []string{
		"go run ./cmd/kbload -self -clients 1,4,8 -duration 3s -out BENCH_serve_http.json",
		"go run ./cmd/deepdive -system News -serve 127.0.0.1:8090 -serve-for 60s  # then: go run ./cmd/kbload -addr http://127.0.0.1:8090",
	}
	for _, c := range cfg.clients {
		pr, err := runPhase(ctx, base, c, cfg)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "clients=%d: %d reads (p50 %.0fus p99 %.0fus), %d updates, %d deltas (fanout p50 %.0fus p99 %.0fus)\n",
			c, pr.Reads, pr.ReadP50us, pr.ReadP99us, pr.Updates, pr.SubDeltas, pr.FanoutP50us, pr.FanoutP99us)
		doc.Phases = append(doc.Phases, pr)
	}
	return doc, nil
}

// recvMap records the first arrival time of each epoch on one
// subscriber's stream.
type recvMap struct {
	sync.Mutex
	m map[uint64]time.Time
}

// subscriber is one reconnecting SSE client: it follows the stream's id
// lines, and on any disconnect re-dials with jittered exponential
// backoff and a Last-Event-ID header so the server can resume it with a
// catch-up delta instead of a full resync.
type subscriber struct {
	base       string
	rm         *recvMap
	deltas     *atomic.Uint64
	resumes    *atomic.Uint64
	reconnects *atomic.Uint64
	hist       *errHist
	ready      chan<- error
	rng        *rand.Rand

	lastID    string
	readySent bool
}

func (s *subscriber) markReady() {
	if !s.readySent {
		s.readySent = true
		s.ready <- nil
	}
}

func (s *subscriber) run(ctx context.Context) {
	const backoffBase, backoffMax = 50 * time.Millisecond, 2 * time.Second
	backoff := backoffBase
	first := true
	for ctx.Err() == nil {
		if !first {
			s.reconnects.Add(1)
			// Full jitter over [backoff/2, backoff]: concurrent clients cut
			// off by one drain must not re-dial in lockstep.
			d := backoff/2 + time.Duration(s.rng.Int63n(int64(backoff/2)+1))
			select {
			case <-time.After(d):
			case <-ctx.Done():
				return
			}
			if backoff *= 2; backoff > backoffMax {
				backoff = backoffMax
			}
		}
		first = false
		req, err := http.NewRequestWithContext(ctx, "GET", s.base+"/v1/subscribe?relation=HasSpouse", nil)
		if err != nil {
			return
		}
		if s.lastID != "" {
			req.Header.Set("Last-Event-ID", s.lastID)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			if ctx.Err() == nil {
				s.hist.add("conn")
			}
			continue
		}
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			s.hist.add(classifyHTTPError(resp.StatusCode, body))
			continue
		}
		healthy := s.consume(resp.Body)
		resp.Body.Close()
		if healthy {
			backoff = backoffBase
		}
	}
}

// consume reads one connected stream until it ends, reporting whether
// any event arrived (a healthy connection resets the backoff).
func (s *subscriber) consume(body io.Reader) bool {
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	event, sawEvent := "", false
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "id: "):
			s.lastID = line[len("id: "):]
		case strings.HasPrefix(line, "event: "):
			event = line[len("event: "):]
		case strings.HasPrefix(line, "data: "):
			now := time.Now()
			sawEvent = true
			switch event {
			case "snapshot":
				s.markReady()
			case "resumed":
				s.resumes.Add(1)
				s.markReady()
			case "delta":
				var payload struct {
					Epoch uint64 `json:"epoch"`
				}
				if json.Unmarshal([]byte(line[len("data: "):]), &payload) == nil {
					s.deltas.Add(1)
					s.rm.Lock()
					if _, seen := s.rm.m[payload.Epoch]; !seen {
						s.rm.m[payload.Epoch] = now
					}
					s.rm.Unlock()
				}
			case "drain":
				// The server is going away gracefully; the run loop
				// reconnects (to it or a successor).
				return sawEvent
			}
		}
	}
	return sawEvent
}

// runPhase drives one measurement window: `clients` readers, the
// configured writers and subscribers, all against `base`, for cfg.dur.
func runPhase(ctx context.Context, base string, clients int, cfg config) (phaseResult, error) {
	pr := phaseResult{Clients: clients}
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Writer acks: epoch -> time the waited POST returned. Fan-out lag is
	// measured against the ack because the publish instant is not visible
	// on the wire; the ack happens strictly after the publish, so the
	// reported lag is a floor-biased (never inflated) estimate.
	var ackMu sync.Mutex
	acks := make(map[uint64]time.Time)

	// Subscribers connect first so every writer epoch is observable. Each
	// is a reconnecting client: a severed (or drained) stream re-dials
	// with jittered exponential backoff and the last SSE id it saw, so a
	// server with the epoch still in its resume window replays a catch-up
	// delta instead of a full snapshot.
	recvs := make([]*recvMap, cfg.subscribers)
	subCtx, subCancel := context.WithCancel(ctx)
	defer subCancel()
	subReady := make(chan error, cfg.subscribers)
	var deltas, resumes, reconnects atomic.Uint64
	hist := newErrHist()
	for s := 0; s < cfg.subscribers; s++ {
		rm := &recvMap{m: make(map[uint64]time.Time)}
		recvs[s] = rm
		sub := &subscriber{
			base: base, rm: rm,
			deltas: &deltas, resumes: &resumes, reconnects: &reconnects,
			hist: hist, ready: subReady,
			rng: rand.New(rand.NewSource(cfg.seed + int64(s))),
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			sub.run(subCtx)
		}()
	}
	for s := 0; s < cfg.subscribers; s++ {
		select {
		case err := <-subReady:
			if err != nil {
				return pr, err
			}
		case <-time.After(10 * time.Second):
			return pr, fmt.Errorf("subscriber %d never received its snapshot event", s)
		}
	}

	// Readers: alternate point marginal lookups and extraction-table
	// scans, recording wire latency per request.
	lats := make([][]time.Duration, clients)
	var reads, readErrs atomic.Uint64
	for r := 0; r < clients; r++ {
		r := r
		lats[r] = make([]time.Duration, 0, 4096)
		wg.Add(1)
		go func() {
			defer wg.Done()
			urls := [2]string{
				base + "/v1/marginal?relation=HasSpouse&tuple=a&tuple=b",
				base + "/v1/facts?relation=HasSpouse&threshold=0.5",
			}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				t0 := time.Now()
				resp, err := http.Get(urls[i%2])
				if err != nil {
					readErrs.Add(1)
					hist.add("conn")
					continue
				}
				_, _ = bufio.NewReader(resp.Body).WriteTo(noopWriter{})
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					readErrs.Add(1)
					hist.add(classifyHTTPError(resp.StatusCode, nil))
					continue
				}
				lats[r] = append(lats[r], time.Since(t0))
				reads.Add(1)
			}
		}()
	}

	// Writers: sustained waited update POSTs, one new document each. A
	// 200 ack records the document for post-phase verification — the
	// harness fails outright if an acked document's facts are missing
	// from the final table.
	var updates, updateErrs atomic.Uint64
	var updateLats struct {
		sync.Mutex
		d []time.Duration
	}
	ackedDocs := make(map[int]bool)
	var finalEpoch atomic.Uint64
	for w := 0; w < cfg.writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				doc := int(docID.Add(1))
				t0 := time.Now()
				resp, err := http.Post(base+"/v1/update?wait=1", "application/json", bytes.NewReader(updateBody(doc)))
				if err != nil {
					updateErrs.Add(1)
					hist.add("conn")
					continue
				}
				rbody, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					updateErrs.Add(1)
					hist.add(classifyHTTPError(resp.StatusCode, rbody))
					continue
				}
				var res struct {
					Epoch uint64 `json:"epoch"`
				}
				if json.Unmarshal(rbody, &res) != nil {
					updateErrs.Add(1)
					hist.add("bad_body")
					continue
				}
				ack := time.Now()
				updates.Add(1)
				updateLats.Lock()
				updateLats.d = append(updateLats.d, ack.Sub(t0))
				updateLats.Unlock()
				ackMu.Lock()
				acks[res.Epoch] = ack
				ackedDocs[doc] = true
				ackMu.Unlock()
				for {
					cur := finalEpoch.Load()
					if res.Epoch <= cur || finalEpoch.CompareAndSwap(cur, res.Epoch) {
						break
					}
				}
			}
		}()
	}

	select {
	case <-time.After(cfg.dur):
	case <-ctx.Done():
	}
	close(stop)
	// Give in-flight deltas a moment to land, then cancel the SSE
	// contexts so the subscriber goroutines unblock.
	time.Sleep(200 * time.Millisecond)
	subCancel()
	wg.Wait()

	// Fan-out lag: delta arrival relative to the writer's ack, per
	// (epoch, subscriber) pair; arrivals before the ack count as zero.
	var fanout []time.Duration
	ackMu.Lock()
	for _, rm := range recvs {
		rm.Lock()
		for epoch, at := range rm.m {
			if ack, ok := acks[epoch]; ok {
				lag := at.Sub(ack)
				if lag < 0 {
					lag = 0
				}
				fanout = append(fanout, lag)
			}
		}
		rm.Unlock()
	}
	ackMu.Unlock()

	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	pr.Reads = reads.Load()
	pr.ReadErrors = readErrs.Load()
	pr.ReadsPerSec = float64(pr.Reads) / cfg.dur.Seconds()
	pr.ReadP50us = us(percentile(all, 0.50))
	pr.ReadP99us = us(percentile(all, 0.99))
	pr.Updates = updates.Load()
	pr.UpdateErrors = updateErrs.Load()
	pr.UpdateP50ms = us(percentile(updateLats.d, 0.50)) / 1000
	pr.SubDeltas = deltas.Load()
	pr.FanoutP50us = us(percentile(fanout, 0.50))
	pr.FanoutP99us = us(percentile(fanout, 0.99))
	pr.FanoutMaxUS = us(percentile(fanout, 1.0))
	pr.FinalEpoch = finalEpoch.Load()
	pr.SubReconnects = reconnects.Load()
	pr.SubResumes = resumes.Load()
	pr.ErrorClasses = hist.snapshot()
	if pr.Updates == 0 {
		return pr, fmt.Errorf("clients=%d: no update succeeded (%d errors)", clients, pr.UpdateErrors)
	}
	if pr.Reads == 0 {
		return pr, fmt.Errorf("clients=%d: no read succeeded (%d errors)", clients, pr.ReadErrors)
	}

	// Acked-write verification: every 200-acknowledged document must
	// have its HasSpouse candidate in the final fact table. An ack that
	// vanished means the serving tier lied about durability of the apply
	// — the one failure a load report must not average away.
	pr.AckedUpdates = len(ackedDocs)
	lost, err := verifyAcked(base, ackedDocs)
	if err != nil {
		return pr, fmt.Errorf("clients=%d: acked-write verification: %w", clients, err)
	}
	pr.AckedLost = len(lost)
	if len(lost) > 0 {
		return pr, fmt.Errorf("clients=%d: %d acked update(s) missing from the final fact table (first: doc %d)",
			clients, len(lost), lost[0])
	}
	return pr, nil
}

// verifyAcked fetches the final HasSpouse table and returns the acked
// documents whose candidate fact is missing.
func verifyAcked(base string, ackedDocs map[int]bool) ([]int, error) {
	if len(ackedDocs) == 0 {
		return nil, nil
	}
	resp, err := http.Get(base + "/v1/facts?relation=HasSpouse")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("final facts read: %s", resp.Status)
	}
	var table struct {
		Facts []struct {
			Tuple []string `json:"tuple"`
		} `json:"facts"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&table); err != nil {
		return nil, err
	}
	present := make(map[string]bool, len(table.Facts))
	for _, f := range table.Facts {
		present[strings.Join(f.Tuple, "\x00")] = true
	}
	var lost []int
	for doc := range ackedDocs {
		// updateBody(doc) inserts mentions p<doc>a / p<doc>b in one
		// sentence; the grounded candidate is their ordered pair.
		key := fmt.Sprintf("p%da\x00p%db", doc, doc)
		if !present[key] {
			lost = append(lost, doc)
		}
	}
	sort.Ints(lost)
	return lost, nil
}

type noopWriter struct{}

func (noopWriter) Write(p []byte) (int, error) { return len(p), nil }

func percentile(d []time.Duration, q float64) time.Duration {
	if len(d) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), d...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

func us(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

// updateBody is the wire form of the test suite's docUpdate: one new
// two-mention sentence whose ordered pairs become HasSpouse candidates.
func updateBody(i int) []byte {
	sid := fmt.Sprintf("sx%d", i)
	m1, m2 := fmt.Sprintf("p%da", i), fmt.Sprintf("p%db", i)
	u := map[string]any{
		"inserts": map[string][][]string{
			"Sentence":      {{sid, "Pat and his wife Sam"}},
			"PersonMention": {{m1, sid, "Pat" + sid}, {m2, sid, "Sam" + sid}},
		},
	}
	b, _ := json.Marshal(u)
	return b
}

// The self-hosted target: the same spouse program the root test suite
// serves, materialized and exposed through KB.Serve on a loopback port.
const spouseSource = `
@relation Sentence(sid, words).
@relation PersonMention(mid, sid, eid).
@relation Married(e1, e2).
@variable HasSpouse(m1, m2).
@relation HasSpouse_Ev(m1, m2, label).

@semantics(ratio).

Cand: HasSpouse(m1, m2) :-
    PersonMention(m1, s, e1), PersonMention(m2, s, e2), m1 != m2.

FE: HasSpouse(m1, m2) :-
    PersonMention(m1, s, e1), PersonMention(m2, s, e2),
    Sentence(s, words), m1 != m2
    weight = phrase(m1, m2, words).

Sup: HasSpouse_Ev(m1, m2, true) :-
    HasSpouse(m1, m2), PersonMention(m1, s, e1), PersonMention(m2, s, e2),
    Married(e1, e2).
`

func phraseUDF(args []string) string {
	words := strings.Fields(args[2])
	if len(words) > 2 {
		return strings.Join(words[1:len(words)-1], "_")
	}
	return "short"
}

func selfHost(ctx context.Context, seed int64) (*deepdive.KBServer, func(), error) {
	kb, err := deepdive.OpenKB(spouseSource,
		deepdive.WithUDF("phrase", phraseUDF),
		deepdive.WithSeed(seed),
		deepdive.WithLearning(15, 0.3),
		deepdive.WithInference(30, 400),
		deepdive.WithMaterialization(600, 0.01),
	)
	if err != nil {
		return nil, nil, err
	}
	load := func(rel string, tuples []deepdive.Tuple) {
		if err == nil {
			err = kb.Load(rel, tuples)
		}
	}
	load("Sentence", []deepdive.Tuple{
		{"s1", "Alan and his wife Beth"},
		{"s2", "Carl and his wife Dana"},
		{"s3", "Eve met Frank"},
	})
	load("PersonMention", []deepdive.Tuple{
		{"a", "s1", "Alan"}, {"b", "s1", "Beth"},
		{"c", "s2", "Carl"}, {"d", "s2", "Dana"},
		{"e", "s3", "Eve"}, {"f", "s3", "Frank"},
	})
	load("Married", []deepdive.Tuple{{"Alan", "Beth"}})
	if err != nil {
		kb.Close()
		return nil, nil, err
	}
	for _, step := range []func() error{
		func() error { return kb.Init(ctx) },
		func() error { _, err := kb.Learn(ctx); return err },
		func() error { _, err := kb.Infer(ctx); return err },
		func() error { _, err := kb.Materialize(ctx); return err },
	} {
		if err := step(); err != nil {
			kb.Close()
			return nil, nil, err
		}
	}
	srv, err := kb.Serve(ctx, deepdive.ServeOptions{Addr: "127.0.0.1:0"})
	if err != nil {
		kb.Close()
		return nil, nil, err
	}
	cleanup := func() {
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(sctx)
		kb.Close()
	}
	return srv, cleanup, nil
}

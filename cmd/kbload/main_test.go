package main

import (
	"context"
	"testing"
	"time"
)

// TestLoadHarnessSmoke runs the full harness — self-hosted KB, readers,
// a sustained writer, and fan-out-measuring subscribers — for a short
// window and checks every traffic class actually moved.
func TestLoadHarnessSmoke(t *testing.T) {
	cfg := config{
		self:        true,
		clients:     []int{2},
		writers:     1,
		subscribers: 1,
		dur:         400 * time.Millisecond,
		seed:        7,
	}
	doc, err := run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Phases) != 1 {
		t.Fatalf("phases = %d, want 1", len(doc.Phases))
	}
	pr := doc.Phases[0]
	if pr.Reads == 0 || pr.Updates == 0 || pr.SubDeltas == 0 {
		t.Fatalf("idle traffic class: %+v", pr)
	}
	if pr.ReadP99us < pr.ReadP50us {
		t.Fatalf("p99 %v < p50 %v", pr.ReadP99us, pr.ReadP50us)
	}
	if pr.FinalEpoch == 0 {
		t.Fatal("writer never learned an epoch")
	}
	if pr.AckedUpdates == 0 {
		t.Fatal("no acked updates recorded for verification")
	}
	if pr.AckedLost != 0 {
		t.Fatalf("acked updates lost: %d", pr.AckedLost)
	}
}

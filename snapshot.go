package deepdive

import "sort"

// Snapshot is an immutable, point-in-time view of the knowledge base: the
// marginal probability and extraction state of every live candidate fact,
// pinned to one grounding version and one factor-graph epoch. Snapshots
// are published by the KB through an atomic pointer swap, so any number
// of reader goroutines can query concurrently — with zero locks and no
// coordination with writers — while Learn/Infer/Apply produce the next
// one. A snapshot never changes after publication: readers that need a
// consistent multi-query view hold one Snapshot and issue every query
// against it.
type Snapshot struct {
	epoch         uint64
	groundVersion uint64
	graphEpoch    int32
	stats         GraphStats
	marg          []float64 // owned copy; nil before the first inference
	rels          map[string]*relView
}

// snapFact is one live candidate fact frozen into a snapshot. Marginals
// are looked up through the variable id in the snapshot's marginal
// vector: the fact table (the snapshot *skeleton*) is built during the
// grounding stage of a pipelined apply, before that update's inference
// has produced marginals — the finish stage attaches the vector and the
// epoch without touching the fact table again.
type snapFact struct {
	tuple    Tuple
	v        int32 // variable id (index into marg)
	evidence bool
	evValue  bool
}

// relView is the frozen per-relation fact table: facts in ascending
// variable-id order (the same order Engine.Extractions historically
// reported) plus a tuple-key index for point lookups.
type relView struct {
	byKey map[string]int32
	facts []snapFact
}

// emptySnapshot is what KB.Snapshot returns before the first publication.
func emptySnapshot() *Snapshot {
	return &Snapshot{rels: map[string]*relView{}}
}

// Epoch returns the KB publication generation this snapshot belongs to:
// 0 for the initial empty view, then +1 per published state change.
// Epochs are totally ordered — a reader observing epoch n has all of
// update batch n and nothing of batch n+1.
func (s *Snapshot) Epoch() uint64 { return s.epoch }

// GroundVersion returns the grounding generation (one per Ground or
// applied update batch) the snapshot is pinned to.
func (s *Snapshot) GroundVersion() uint64 { return s.groundVersion }

// GraphEpoch returns the factor graph's patch epoch at snapshot time
// (0 = freshly built, +1 per in-place patch along the lineage).
func (s *Snapshot) GraphEpoch() int32 { return s.graphEpoch }

// Stats reports the grounded factor-graph statistics at snapshot time.
func (s *Snapshot) Stats() GraphStats { return s.stats }

// Marginal returns the marginal probability of a candidate fact, or
// (0, false) when no such live candidate exists or no inference has run
// yet. Evidence facts report their supervised value (0 or 1).
func (s *Snapshot) Marginal(relation string, t Tuple) (float64, bool) {
	rv := s.rels[relation]
	if rv == nil {
		return 0, false
	}
	i, ok := rv.byKey[t.Key()]
	if !ok {
		return 0, false
	}
	f := &rv.facts[i]
	switch {
	case f.evidence:
		if f.evValue {
			return 1, true
		}
		return 0, true
	case s.marg != nil && int(f.v) < len(s.marg):
		return s.marg[f.v], true
	default:
		return 0, false
	}
}

// Extractions returns the facts of a variable relation whose probability
// exceeds the threshold, including supervised-true evidence facts, in
// stable (variable-id) order.
func (s *Snapshot) Extractions(relation string, threshold float64) []Extraction {
	rv := s.rels[relation]
	if rv == nil {
		return nil
	}
	var out []Extraction
	for i := range rv.facts {
		f := &rv.facts[i]
		if f.evidence {
			if f.evValue {
				out = append(out, Extraction{Tuple: f.tuple, Probability: 1, Evidence: true})
			}
			continue
		}
		if s.marg != nil && int(f.v) < len(s.marg) && s.marg[f.v] > threshold {
			out = append(out, Extraction{Tuple: f.tuple, Probability: s.marg[f.v]})
		}
	}
	return out
}

// Fact is one live candidate fact enumerated by Snapshot.Facts: its
// tuple, its probability, and how that probability is determined.
// Evidence facts report their supervised value (0 or 1); query facts
// report their inferred marginal, with Known false when no inference has
// covered the variable yet (e.g. on a partial-progress snapshot
// published before the batch that grounded the fact finished inferring).
type Fact struct {
	Tuple       Tuple
	Probability float64
	Known       bool
	Evidence    bool
}

// Facts enumerates every live fact of a relation with its probability,
// in stable (variable-id) order — the bulk form of Marginal, built for
// consumers that diff successive snapshots (e.g. streaming subscribers).
func (s *Snapshot) Facts(relation string) []Fact {
	rv := s.rels[relation]
	if rv == nil {
		return nil
	}
	out := make([]Fact, len(rv.facts))
	for i := range rv.facts {
		f := &rv.facts[i]
		out[i] = Fact{Tuple: f.tuple}
		switch {
		case f.evidence:
			out[i].Evidence, out[i].Known = true, true
			if f.evValue {
				out[i].Probability = 1
			}
		case s.marg != nil && int(f.v) < len(s.marg):
			out[i].Probability, out[i].Known = s.marg[f.v], true
		}
	}
	return out
}

// Relations lists the relations with live facts in this snapshot, in
// sorted order.
func (s *Snapshot) Relations() []string {
	out := make([]string, 0, len(s.rels))
	for name := range s.rels {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Candidates returns every live candidate tuple of a variable relation,
// in stable (variable-id) order.
func (s *Snapshot) Candidates(relation string) []Tuple {
	rv := s.rels[relation]
	if rv == nil {
		return nil
	}
	out := make([]Tuple, len(rv.facts))
	for i := range rv.facts {
		out[i] = rv.facts[i].tuple
	}
	return out
}

package deepdive

// KB health state machine and self-healing WAL repair.
//
// A durable KB has exactly one failure latch on its write path: a failed
// write-ahead append breaks the durable chain (walBroken), after which
// every update is refused until a Checkpoint writes a fresh snapshot and
// rotates to a complete segment. Before this file, that checkpoint was
// the operator's problem. Now the latch also drives an explicit health
// state machine —
//
//	Healthy ──(WAL append fails)──► DurabilityDegraded
//	DurabilityDegraded ──(repair checkpoint lands)──► Healthy
//	DurabilityDegraded ──(ReadOnlyAfter consecutive repair failures)──► ReadOnly
//	ReadOnly ──(repair checkpoint lands)──► Healthy
//
// — and a background repair goroutine that retries the repair checkpoint
// with capped, jittered exponential backoff until the chain is whole
// again. Reads never participate: the snapshot pointer keeps serving the
// last published state through every transition, which is the property
// the chaos harness probes continuously.
//
// DurabilityDegraded and ReadOnly differ only in what they promise
// callers: Degraded means "updates are refused right now, a repair is in
// flight, retry with backoff" (HTTP 503 + Retry-After at the serve
// tier); ReadOnly means repair has failed ReadOnlyAfter times in a row —
// the disk is probably genuinely gone and callers should stop retrying
// (still 503, but with the read_only error code and no Retry-After
// hint). The repair loop keeps trying in both states; ReadOnly is an
// advisory escalation, not a terminal latch.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// HealthState is one state of the KB's degraded-mode state machine.
type HealthState int32

const (
	// Healthy: the write path is fully operational (for a durable KB, the
	// WAL chain is complete; a non-durable KB is always Healthy).
	Healthy HealthState = iota
	// DurabilityDegraded: a WAL append failed, updates are refused with
	// ErrDurabilitySuspended, and the background repair loop is retrying
	// the repair checkpoint. Reads serve normally.
	DurabilityDegraded
	// ReadOnly: repair has failed Options.ReadOnlyAfter consecutive times;
	// updates are refused with ErrReadOnly. Reads serve normally and the
	// repair loop keeps retrying at the capped backoff.
	ReadOnly
)

func (s HealthState) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case DurabilityDegraded:
		return "durability-degraded"
	case ReadOnly:
		return "read-only"
	}
	return "unknown"
}

// ErrReadOnly is reported by updates while the KB is in the ReadOnly
// health state (repair has failed Options.ReadOnlyAfter consecutive
// times). errors.Is(err, ErrDurabilitySuspended) also holds: ReadOnly is
// a refinement of the suspended-durability refusal, not a new class.
var ErrReadOnly = fmt.Errorf("%w; repair has failed repeatedly, KB is read-only", ErrDurabilitySuspended)

// HealthStats is a point-in-time report of the degraded-mode machinery.
type HealthStats struct {
	State     HealthState
	Durable   bool // a data directory is configured
	WALBroken bool // the durable chain is currently incomplete

	AutoRepair bool // background repair is enabled
	Repairing  bool // the repair goroutine is currently running

	RepairAttempts uint64 // auto-repair checkpoint attempts
	RepairFailures uint64 // attempts that failed
	AutoRepairs    uint64 // repairs that landed (chain restored without an operator)
}

// Health reports the KB's health state and repair counters. Safe from
// any goroutine; never blocks on the writer locks.
func (kb *KB) Health() HealthStats {
	kb.repairMu.Lock()
	repairing := kb.repairActive
	kb.repairMu.Unlock()
	return HealthStats{
		State:          HealthState(kb.health.Load()),
		Durable:        kb.opts.DataDir != "",
		WALBroken:      kb.walBroken.Load(),
		AutoRepair:     kb.opts.DataDir != "" && !kb.opts.DisableAutoRepair,
		Repairing:      repairing,
		RepairAttempts: kb.repairAttempts.Load(),
		RepairFailures: kb.repairFailures.Load(),
		AutoRepairs:    kb.autoRepairs.Load(),
	}
}

// noteWALBroken latches the broken durable chain, transitions the health
// state, and launches the background repair loop. Called under groundMu
// from the failed append.
func (kb *KB) noteWALBroken() {
	kb.walBroken.Store(true)
	kb.health.CompareAndSwap(int32(Healthy), int32(DurabilityDegraded))
	kb.launchRepair()
}

// noteChainRepaired transitions back to Healthy after a checkpoint
// (manual or auto) re-established the durable chain.
func (kb *KB) noteChainRepaired() {
	kb.health.CompareAndSwap(int32(DurabilityDegraded), int32(Healthy))
	kb.health.CompareAndSwap(int32(ReadOnly), int32(Healthy))
}

// launchRepair starts the background repair goroutine if auto-repair is
// enabled and no loop is already running.
func (kb *KB) launchRepair() {
	if kb.opts.DataDir == "" || kb.opts.DisableAutoRepair {
		return
	}
	kb.repairMu.Lock()
	defer kb.repairMu.Unlock()
	if kb.repairClosed || kb.repairActive {
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	kb.repairActive = true
	kb.repairCancel = cancel
	kb.repairWG.Add(1)
	go kb.repairLoop(ctx)
}

// repairLoop retries the repair checkpoint with capped, jittered
// exponential backoff until the chain is whole (or the KB closes). Each
// attempt is a full Checkpoint: it takes the writer locks exclusively,
// so an attempt naturally queues behind (never preempts) in-flight
// writes and background re-materialization — contention is bounded
// because every update is refusing fast while the chain is broken.
func (kb *KB) repairLoop(ctx context.Context) {
	defer kb.repairWG.Done()
	defer func() {
		kb.repairMu.Lock()
		kb.repairActive = false
		kb.repairCancel = nil
		closed := kb.repairClosed
		kb.repairMu.Unlock()
		// Close the exit race: a new append failure between this loop's
		// final walBroken check and the repairActive reset above would have
		// seen repairActive==true and skipped its launch — relaunch for it.
		if !closed && kb.walBroken.Load() {
			kb.launchRepair()
		}
	}()
	backoff := kb.opts.RepairBackoff
	streak := 0
	for {
		// Full jitter over [backoff/2, backoff]: decorrelates repair storms
		// when many KBs share a recovering disk.
		d := backoff/2 + time.Duration(rand.Int63n(int64(backoff/2)+1))
		select {
		case <-time.After(d):
		case <-ctx.Done():
			return
		}
		if !kb.walBroken.Load() {
			return // a manual Checkpoint repaired the chain first
		}
		kb.repairAttempts.Add(1)
		err := kb.Checkpoint(ctx)
		if err == nil {
			kb.autoRepairs.Add(1)
			if !kb.walBroken.Load() {
				return
			}
			// Broken again already (append failed right after the repair):
			// restart the schedule from the base backoff.
			backoff = kb.opts.RepairBackoff
			streak = 0
			continue
		}
		if ctx.Err() != nil || errors.Is(err, context.Canceled) {
			return
		}
		kb.repairFailures.Add(1)
		streak++
		if n := kb.opts.ReadOnlyAfter; n > 0 && streak >= n {
			kb.health.CompareAndSwap(int32(DurabilityDegraded), int32(ReadOnly))
		}
		backoff *= 2
		if max := kb.opts.RepairBackoffMax; backoff > max {
			backoff = max
		}
	}
}

// shutdownRepair cancels any in-flight repair loop and waits it out;
// no loop launches afterwards. Part of Close/CloseNow.
func (kb *KB) shutdownRepair() {
	kb.repairMu.Lock()
	kb.repairClosed = true
	cancel := kb.repairCancel
	kb.repairMu.Unlock()
	if cancel != nil {
		cancel()
	}
	kb.repairWG.Wait()
}

package datalog

import (
	"fmt"
	"strconv"
	"strings"

	"deepdive/internal/factor"
)

// Parse parses a DeepDive program. The grammar:
//
//	program    := { statement }
//	statement  := decl | rule
//	decl       := '@variable' Ident '(' cols ')' '.'
//	            | '@relation' Ident '(' cols ')' '.'
//	            | '@semantics' '(' ident ')' '.'
//	rule       := [Label ':'] atom [ ':-' body ] [weight] [sem] '.'
//	body       := item { ',' item }
//	item       := ['!'] atom | term op term
//	atom       := Ident '(' [ term { ',' term } ] ')'
//	term       := lowercase-ident | string | number | 'true' | 'false'
//	weight     := 'weight' '=' ( number | Ident '(' vars ')' )
//	sem        := 'sem' '=' ( 'linear' | 'logical' | 'ratio' )
//	op         := '=' | '!=' | '<' | '<='
//
// Identifiers starting with an upper-case letter are predicate or label
// names; lower-case identifiers are variables inside atoms. The constants
// true and false are recognized (used by supervision rule heads). Comments
// run from '#' or '//' to end of line.
//
// Parse validates the program: declared predicates, matching arities,
// range restriction (head and weight variables bound in the body),
// negation safety, and evidence-relation conventions.
func Parse(src string) (*Program, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, prog: &Program{
		Decls:      make(map[string]*RelDecl),
		DefaultSem: factor.Linear,
	}}
	if err := p.parseProgram(); err != nil {
		return nil, err
	}
	if err := Validate(p.prog); err != nil {
		return nil, err
	}
	return p.prog, nil
}

// MustParse is Parse that panics on error, for programs embedded in
// generators and tests.
func MustParse(src string) *Program {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

type parser struct {
	toks []token
	pos  int
	prog *Program
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) peek() token { return p.toks[min(p.pos+1, len(p.toks)-1)] }

func (p *parser) advance() token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) errorf(t token, format string, args ...any) error {
	return fmt.Errorf("datalog: %d:%d: %s", t.line, t.col, fmt.Sprintf(format, args...))
}

func (p *parser) expectPunct(text string) error {
	t := p.cur()
	if t.kind != tokPunct || t.text != text {
		return p.errorf(t, "expected %q, found %s", text, t)
	}
	p.advance()
	return nil
}

func (p *parser) expectIdent() (string, error) {
	t := p.cur()
	if t.kind != tokIdent {
		return "", p.errorf(t, "expected identifier, found %s", t)
	}
	p.advance()
	return t.text, nil
}

func (p *parser) parseProgram() error {
	for p.cur().kind != tokEOF {
		if p.cur().kind == tokPunct && p.cur().text == "@" {
			if err := p.parseDecl(); err != nil {
				return err
			}
			continue
		}
		if err := p.parseRule(); err != nil {
			return err
		}
	}
	return nil
}

func (p *parser) parseDecl() error {
	p.advance() // '@'
	kw, err := p.expectIdent()
	if err != nil {
		return err
	}
	switch kw {
	case "variable", "relation":
		name, err := p.expectIdent()
		if err != nil {
			return err
		}
		if err := p.expectPunct("("); err != nil {
			return err
		}
		var cols []string
		for {
			if p.cur().kind == tokPunct && p.cur().text == ")" {
				p.advance()
				break
			}
			col, err := p.expectIdent()
			if err != nil {
				return err
			}
			cols = append(cols, col)
			if p.cur().kind == tokPunct && p.cur().text == "," {
				p.advance()
			}
		}
		if err := p.expectPunct("."); err != nil {
			return err
		}
		if _, dup := p.prog.Decls[name]; dup {
			return fmt.Errorf("datalog: duplicate declaration of %s", name)
		}
		p.prog.Decls[name] = &RelDecl{Name: name, Cols: cols, Variable: kw == "variable"}
		p.prog.DeclOrder = append(p.prog.DeclOrder, name)
		return nil
	case "semantics":
		if err := p.expectPunct("("); err != nil {
			return err
		}
		name, err := p.expectIdent()
		if err != nil {
			return err
		}
		sem, err := factor.ParseSemantics(name)
		if err != nil {
			return err
		}
		if err := p.expectPunct(")"); err != nil {
			return err
		}
		if err := p.expectPunct("."); err != nil {
			return err
		}
		p.prog.DefaultSem = sem
		return nil
	default:
		return fmt.Errorf("datalog: unknown declaration @%s", kw)
	}
}

func isUpperIdent(s string) bool {
	return len(s) > 0 && s[0] >= 'A' && s[0] <= 'Z'
}

func (p *parser) parseTerm() (Term, error) {
	t := p.cur()
	switch t.kind {
	case tokIdent:
		p.advance()
		switch t.text {
		case "true", "false":
			return Term{Value: t.text}, nil
		}
		if isUpperIdent(t.text) {
			return Term{}, p.errorf(t, "term %q starts upper-case; variables are lower-case, constants are quoted", t.text)
		}
		return Term{IsVar: true, Name: t.text}, nil
	case tokString:
		p.advance()
		return Term{Value: t.text}, nil
	case tokNumber:
		p.advance()
		return Term{Value: t.text}, nil
	default:
		return Term{}, p.errorf(t, "expected term, found %s", t)
	}
}

func (p *parser) parseAtom() (*Atom, error) {
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	a := &Atom{Pred: name}
	for {
		if p.cur().kind == tokPunct && p.cur().text == ")" {
			p.advance()
			return a, nil
		}
		term, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		a.Args = append(a.Args, term)
		if p.cur().kind == tokPunct && p.cur().text == "," {
			p.advance()
		}
	}
}

// parseBodyItem parses one conjunct: negated atom, atom, or comparison.
func (p *parser) parseBodyItem() (BodyItem, error) {
	if p.cur().kind == tokPunct && p.cur().text == "!" {
		p.advance()
		a, err := p.parseAtom()
		if err != nil {
			return BodyItem{}, err
		}
		return BodyItem{Atom: a, Neg: true}, nil
	}
	// Lookahead: Ident '(' is an atom; otherwise a comparison.
	if p.cur().kind == tokIdent && isUpperIdent(p.cur().text) &&
		p.peek().kind == tokPunct && p.peek().text == "(" {
		a, err := p.parseAtom()
		if err != nil {
			return BodyItem{}, err
		}
		return BodyItem{Atom: a}, nil
	}
	l, err := p.parseTerm()
	if err != nil {
		return BodyItem{}, err
	}
	opTok := p.cur()
	if opTok.kind != tokPunct {
		return BodyItem{}, p.errorf(opTok, "expected comparison operator, found %s", opTok)
	}
	switch opTok.text {
	case "=", "!=", "<", "<=":
	default:
		return BodyItem{}, p.errorf(opTok, "unsupported comparison operator %q", opTok.text)
	}
	p.advance()
	r, err := p.parseTerm()
	if err != nil {
		return BodyItem{}, err
	}
	return BodyItem{Cond: &Cond{Op: opTok.text, L: l, R: r}}, nil
}

func (p *parser) parseRule() error {
	r := &Rule{}
	// Optional label: Ident ':' (but not ':-').
	if p.cur().kind == tokIdent && p.peek().kind == tokPunct && p.peek().text == ":" {
		r.Label = p.advance().text
		p.advance() // ':'
	}
	head, err := p.parseAtom()
	if err != nil {
		return err
	}
	r.Head = *head
	if p.cur().kind == tokPunct && p.cur().text == ":-" {
		p.advance()
		for {
			item, err := p.parseBodyItem()
			if err != nil {
				return err
			}
			r.Body = append(r.Body, item)
			if p.cur().kind == tokPunct && p.cur().text == "," {
				p.advance()
				continue
			}
			break
		}
	}
	// Optional weight clause.
	if p.cur().kind == tokIdent && p.cur().text == "weight" {
		p.advance()
		if err := p.expectPunct("="); err != nil {
			return err
		}
		r.Weight.HasWeight = true
		t := p.cur()
		switch t.kind {
		case tokNumber:
			p.advance()
			v, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return p.errorf(t, "bad weight literal %q: %v", t.text, err)
			}
			r.Weight.IsFixed = true
			r.Weight.Fixed = v
		case tokIdent:
			fn := p.advance().text
			r.Weight.Func = fn
			if err := p.expectPunct("("); err != nil {
				return err
			}
			for {
				if p.cur().kind == tokPunct && p.cur().text == ")" {
					p.advance()
					break
				}
				v, err := p.expectIdent()
				if err != nil {
					return err
				}
				if isUpperIdent(v) {
					return fmt.Errorf("datalog: weight argument %q must be a variable", v)
				}
				r.Weight.Args = append(r.Weight.Args, v)
				if p.cur().kind == tokPunct && p.cur().text == "," {
					p.advance()
				}
			}
		default:
			return p.errorf(t, "expected weight value, found %s", t)
		}
	}
	// Optional semantics clause.
	if p.cur().kind == tokIdent && p.cur().text == "sem" {
		p.advance()
		if err := p.expectPunct("="); err != nil {
			return err
		}
		name, err := p.expectIdent()
		if err != nil {
			return err
		}
		sem, err := factor.ParseSemantics(name)
		if err != nil {
			return err
		}
		r.Sem, r.SemSet = sem, true
	}
	if err := p.expectPunct("."); err != nil {
		return err
	}
	p.prog.Rules = append(p.prog.Rules, r)
	return nil
}

// Validate checks a program's static semantics and assigns rule kinds.
func Validate(prog *Program) error {
	for _, r := range prog.Rules {
		if err := validateRule(prog, r); err != nil {
			return err
		}
	}
	return nil
}

func validateRule(prog *Program, r *Rule) error {
	name := ruleName(r)
	headDecl := prog.Decls[r.Head.Pred]
	if headDecl == nil {
		return fmt.Errorf("datalog: %s: undeclared head relation %s", name, r.Head.Pred)
	}
	if len(r.Head.Args) != headDecl.Arity() {
		return fmt.Errorf("datalog: %s: head %s has %d args, declared arity %d",
			name, r.Head.Pred, len(r.Head.Args), headDecl.Arity())
	}
	bodyVars := map[string]bool{}
	for _, b := range r.Body {
		if b.Atom == nil {
			continue
		}
		d := prog.Decls[b.Atom.Pred]
		if d == nil {
			return fmt.Errorf("datalog: %s: undeclared body relation %s", name, b.Atom.Pred)
		}
		if len(b.Atom.Args) != d.Arity() {
			return fmt.Errorf("datalog: %s: body atom %s has %d args, declared arity %d",
				name, b.Atom.Pred, len(b.Atom.Args), d.Arity())
		}
		if !b.Neg {
			for _, v := range b.Atom.Vars() {
				bodyVars[v] = true
			}
		}
	}
	// Negation and condition safety: variables must be bound positively.
	for _, b := range r.Body {
		if b.Atom != nil && b.Neg {
			for _, v := range b.Atom.Vars() {
				if !bodyVars[v] {
					return fmt.Errorf("datalog: %s: variable %s in negated atom %s is not bound by a positive atom",
						name, v, b.Atom.Pred)
				}
			}
		}
		if b.Cond != nil {
			for _, t := range []Term{b.Cond.L, b.Cond.R} {
				if t.IsVar && !bodyVars[t.Name] {
					return fmt.Errorf("datalog: %s: variable %s in condition is not bound by a positive atom", name, t.Name)
				}
			}
		}
	}
	// Range restriction: head variables bound in body (facts exempt).
	if len(r.Body) > 0 {
		for _, v := range r.Head.Vars() {
			if !bodyVars[v] {
				return fmt.Errorf("datalog: %s: head variable %s is not bound in the body", name, v)
			}
		}
	} else if len(r.Head.Vars()) > 0 {
		return fmt.Errorf("datalog: %s: fact with variables", name)
	}
	// Weight arguments bound in body or head.
	if r.Weight.HasWeight && !r.Weight.IsFixed {
		headVars := map[string]bool{}
		for _, v := range r.Head.Vars() {
			headVars[v] = true
		}
		for _, v := range r.Weight.Args {
			if !bodyVars[v] && !headVars[v] {
				return fmt.Errorf("datalog: %s: weight argument %s is not bound", name, v)
			}
		}
	}
	// Classify.
	if base, isEv := EvidenceTarget(r.Head.Pred); isEv {
		if r.Weight.HasWeight {
			return fmt.Errorf("datalog: %s: supervision rule into %s cannot carry a weight", name, r.Head.Pred)
		}
		baseDecl := prog.Decls[base]
		if baseDecl == nil {
			return fmt.Errorf("datalog: %s: evidence relation %s has no base variable relation %s", name, r.Head.Pred, base)
		}
		if !baseDecl.Variable {
			return fmt.Errorf("datalog: %s: evidence base relation %s is not declared @variable", name, base)
		}
		if headDecl.Arity() != baseDecl.Arity()+1 {
			return fmt.Errorf("datalog: %s: evidence relation %s must have arity %d (base arity + label), has %d",
				name, r.Head.Pred, baseDecl.Arity()+1, headDecl.Arity())
		}
		r.Kind = KindSupervision
		return nil
	}
	if r.Weight.HasWeight {
		if !headDecl.Variable {
			return fmt.Errorf("datalog: %s: weighted rule head %s must be declared @variable", name, r.Head.Pred)
		}
		r.Kind = KindInference
		return nil
	}
	r.Kind = KindDerivation
	return nil
}

func ruleName(r *Rule) string {
	if r.Label != "" {
		return r.Label
	}
	return "rule " + strings.SplitN(r.String(), " :-", 2)[0]
}

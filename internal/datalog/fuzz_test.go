package datalog

import (
	"testing"
)

// FuzzDatalogParser drives Parse with arbitrary program text. The parser
// must never panic, and any program it accepts must round-trip: the
// String rendering of the parsed program must parse again to the same
// number of declarations and rules (the incremental-update path relies on
// re-parsing Program.String plus appended rule source).
//
// Run the smoke pass with `make fuzz-smoke`; a short pass also runs in CI.
func FuzzDatalogParser(f *testing.F) {
	seeds := []string{
		spouseProgram,
		"@variable Q(x).\n@relation R(x).\nQ(x) :- R(x) weight = -1.5 sem = ratio.",
		"@variable Q(x).\n@relation R(x, f).\nQ(x) :- R(x, f) weight = w(f).",
		"@relation R(x).\n@relation S(x).\n@relation Out(x).\nOut(x) :- R(x), !S(x).",
		"@semantics(logical).\n@relation R(a, b).\n",
		"R1: Head(x) :- Body(x), x != y.",
		"@variable V(a).\n@relation V_Ev(a, label).\nS: V_Ev(a, true) :- V(a).",
		"# comment\n// comment\n@relation R(x). R(x) :-",
		"@relation R(\"quoted\", x).",
		"weight = 1.5 sem = linear.",
		"@variable Q(x).\nQ(true) :- .",
		"∆∆∆ @relation ümlaut(x).",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<14 {
			t.Skip("oversized input")
		}
		prog, err := Parse(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		rendered := prog.String()
		again, err := Parse(rendered)
		if err != nil {
			t.Fatalf("accepted program failed to re-parse its String rendering:\nsource: %q\nrendered: %q\nerror: %v",
				src, rendered, err)
		}
		if len(again.Rules) != len(prog.Rules) || len(again.Decls) != len(prog.Decls) {
			t.Fatalf("round-trip changed shape: %d/%d rules, %d/%d decls\nsource: %q\nrendered: %q",
				len(prog.Rules), len(again.Rules), len(prog.Decls), len(again.Decls), src, rendered)
		}
	})
}

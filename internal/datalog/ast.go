package datalog

import (
	"fmt"
	"strings"

	"deepdive/internal/factor"
)

// RelDecl declares a relation in the user schema. Variable relations
// (declared @variable) hold tuples that become Boolean random variables
// in the factor graph; plain relations (@relation) are deterministic
// (EDB or derived) data.
type RelDecl struct {
	Name     string
	Cols     []string
	Variable bool
}

// Arity returns the number of columns.
func (d *RelDecl) Arity() int { return len(d.Cols) }

// Term is a rule argument: a variable or a constant.
type Term struct {
	IsVar bool
	Name  string // variable name when IsVar
	Value string // constant value otherwise
}

// String renders the term in source syntax.
func (t Term) String() string {
	if t.IsVar {
		return t.Name
	}
	return fmt.Sprintf("%q", t.Value)
}

// Atom is a predicate applied to terms.
type Atom struct {
	Pred string
	Args []Term
}

// String renders the atom in source syntax.
func (a Atom) String() string {
	parts := make([]string, len(a.Args))
	for i, t := range a.Args {
		parts[i] = t.String()
	}
	return a.Pred + "(" + strings.Join(parts, ", ") + ")"
}

// Vars returns the distinct variable names of the atom, in order.
func (a Atom) Vars() []string {
	var out []string
	seen := map[string]bool{}
	for _, t := range a.Args {
		if t.IsVar && !seen[t.Name] {
			seen[t.Name] = true
			out = append(out, t.Name)
		}
	}
	return out
}

// Cond is a comparison body item.
type Cond struct {
	Op   string // "=", "!=", "<", "<="
	L, R Term
}

// String renders the condition.
func (c Cond) String() string { return fmt.Sprintf("%s %s %s", c.L, c.Op, c.R) }

// BodyItem is one conjunct of a rule body: an atom (possibly negated) or
// a comparison.
type BodyItem struct {
	Atom *Atom
	Neg  bool
	Cond *Cond
}

// String renders the body item.
func (b BodyItem) String() string {
	if b.Cond != nil {
		return b.Cond.String()
	}
	if b.Neg {
		return "!" + b.Atom.String()
	}
	return b.Atom.String()
}

// WeightExpr describes a rule's weight clause.
//
//   - Fixed: `weight = 1.5` — a constant, not learned.
//   - Tied:  `weight = w(f, g)` — one learned weight per distinct binding
//     of the listed variables (the paper's weight tying).
//   - UDF:   `weight = phrase(m1, m2, sent)` — the named user-defined
//     function maps the bound arguments to a tie key; one learned weight
//     per distinct key (rule FE1 of the paper).
//
// The zero WeightExpr (no weight clause) marks a deterministic rule.
type WeightExpr struct {
	HasWeight bool
	Fixed     float64 // used when Func == ""
	IsFixed   bool
	Func      string   // "w" for pure tying, else UDF name
	Args      []string // variable names passed to Func
}

// String renders the weight clause ("" when absent).
func (w WeightExpr) String() string {
	if !w.HasWeight {
		return ""
	}
	if w.IsFixed {
		return fmt.Sprintf("weight = %g", w.Fixed)
	}
	return fmt.Sprintf("weight = %s(%s)", w.Func, strings.Join(w.Args, ", "))
}

// RuleKind classifies rules by their role in the KBC pipeline
// (Section 2.2 / Figure 8 of the paper).
type RuleKind uint8

const (
	// KindDerivation is a deterministic rule (candidate mapping or plain
	// view): no weight, head not an evidence relation.
	KindDerivation RuleKind = iota
	// KindSupervision derives into an evidence relation R_Ev
	// (distant supervision, rule S1 of the paper).
	KindSupervision
	// KindInference carries a weight and grounds factors (feature
	// extraction rules FE1/FE2 and inference rules I1).
	KindInference
)

// String implements fmt.Stringer.
func (k RuleKind) String() string {
	switch k {
	case KindDerivation:
		return "derivation"
	case KindSupervision:
		return "supervision"
	case KindInference:
		return "inference"
	default:
		return fmt.Sprintf("RuleKind(%d)", uint8(k))
	}
}

// Rule is one parsed rule.
type Rule struct {
	Label  string // optional, e.g. "FE1"
	Head   Atom
	Body   []BodyItem
	Weight WeightExpr
	Sem    factor.Semantics
	SemSet bool // whether the rule overrides the program default
	Kind   RuleKind
}

// String renders the rule in source syntax.
func (r *Rule) String() string {
	var sb strings.Builder
	if r.Label != "" {
		sb.WriteString(r.Label)
		sb.WriteString(": ")
	}
	sb.WriteString(r.Head.String())
	if len(r.Body) > 0 {
		sb.WriteString(" :- ")
		parts := make([]string, len(r.Body))
		for i, b := range r.Body {
			parts[i] = b.String()
		}
		sb.WriteString(strings.Join(parts, ", "))
	}
	if r.Weight.HasWeight {
		sb.WriteString(" ")
		sb.WriteString(r.Weight.String())
	}
	if r.SemSet {
		fmt.Fprintf(&sb, " sem = %s", r.Sem)
	}
	sb.WriteString(".")
	return sb.String()
}

// BodyVars returns the distinct variables bound by positive body atoms.
func (r *Rule) BodyVars() []string {
	var out []string
	seen := map[string]bool{}
	for _, b := range r.Body {
		if b.Atom == nil || b.Neg {
			continue
		}
		for _, v := range b.Atom.Vars() {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	return out
}

// Program is a parsed and validated DeepDive program.
type Program struct {
	Decls      map[string]*RelDecl
	DeclOrder  []string
	Rules      []*Rule
	DefaultSem factor.Semantics
}

// Decl returns the declaration of a relation (nil when absent).
func (p *Program) Decl(name string) *RelDecl { return p.Decls[name] }

// RuleByLabel returns the first rule with the given label, or nil.
func (p *Program) RuleByLabel(label string) *Rule {
	for _, r := range p.Rules {
		if r.Label == label {
			return r
		}
	}
	return nil
}

// EvidenceSuffix is the naming convention linking a variable relation R to
// its evidence relation R_Ev (Section 2.2: "each user relation is
// associated with an evidence relation with the same schema and an
// additional field").
const EvidenceSuffix = "_Ev"

// EvidenceTarget returns the base variable-relation name for an evidence
// relation name, and whether the name follows the convention.
func EvidenceTarget(name string) (string, bool) {
	if strings.HasSuffix(name, EvidenceSuffix) && len(name) > len(EvidenceSuffix) {
		return strings.TrimSuffix(name, EvidenceSuffix), true
	}
	return "", false
}

// SemOf returns the rule's effective semantics given the program default.
func (p *Program) SemOf(r *Rule) factor.Semantics {
	if r.SemSet {
		return r.Sem
	}
	return p.DefaultSem
}

// String renders the whole program in source syntax.
func (p *Program) String() string {
	var sb strings.Builder
	for _, name := range p.DeclOrder {
		d := p.Decls[name]
		kind := "@relation"
		if d.Variable {
			kind = "@variable"
		}
		fmt.Fprintf(&sb, "%s %s(%s).\n", kind, d.Name, strings.Join(d.Cols, ", "))
	}
	fmt.Fprintf(&sb, "@semantics(%s).\n", p.DefaultSem)
	for _, r := range p.Rules {
		sb.WriteString(r.String())
		sb.WriteString("\n")
	}
	return sb.String()
}

// Package datalog implements DeepDive's declarative language (Section 2.2
// of the paper): datalog-style rules with weights, weight tying, UDF
// weight expressions, and per-rule counting semantics. A program consists
// of relation declarations and rules; see Parse for the grammar.
package datalog

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind enumerates lexer token types.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokPunct // one of ( ) , . : :- = != < <= ! @
)

type token struct {
	kind tokenKind
	text string
	line int
	col  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokString:
		return fmt.Sprintf("%q", t.text)
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1, col: 1} }

func (l *lexer) errorf(line, col int, format string, args ...any) error {
	return fmt.Errorf("datalog: %d:%d: %s", line, col, fmt.Sprintf(format, args...))
}

func (l *lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

// skipSpaceAndComments consumes whitespace, // line comments, and
// # line comments.
func (l *lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '#':
			for l.pos < len(l.src) && l.peekByte() != '\n' {
				l.advance()
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.peekByte() != '\n' {
				l.advance()
			}
		default:
			return
		}
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	l.skipSpaceAndComments()
	line, col := l.line, l.col
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, line: line, col: col}, nil
	}
	c := l.peekByte()
	switch {
	case isIdentStart(c):
		start := l.pos
		for l.pos < len(l.src) && isIdentPart(l.peekByte()) {
			l.advance()
		}
		return token{kind: tokIdent, text: l.src[start:l.pos], line: line, col: col}, nil
	case c >= '0' && c <= '9' || c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9':
		start := l.pos
		l.advance() // first digit or '-'
		for l.pos < len(l.src) {
			c := l.peekByte()
			if c >= '0' && c <= '9' || c == '.' && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9' || c == 'e' || c == 'E' {
				l.advance()
				continue
			}
			if (c == '-' || c == '+') && l.pos > start && (l.src[l.pos-1] == 'e' || l.src[l.pos-1] == 'E') {
				l.advance()
				continue
			}
			break
		}
		return token{kind: tokNumber, text: l.src[start:l.pos], line: line, col: col}, nil
	case c == '"':
		l.advance()
		var sb strings.Builder
		for {
			if l.pos >= len(l.src) {
				return token{}, l.errorf(line, col, "unterminated string literal")
			}
			c := l.advance()
			if c == '"' {
				break
			}
			if c == '\\' {
				if l.pos >= len(l.src) {
					return token{}, l.errorf(line, col, "unterminated escape in string literal")
				}
				e := l.advance()
				switch e {
				case 'n':
					sb.WriteByte('\n')
				case 't':
					sb.WriteByte('\t')
				case '"', '\\':
					sb.WriteByte(e)
				default:
					return token{}, l.errorf(line, col, "unknown escape \\%c", e)
				}
				continue
			}
			sb.WriteByte(c)
		}
		return token{kind: tokString, text: sb.String(), line: line, col: col}, nil
	default:
		// Multi-character punctuation first.
		two := ""
		if l.pos+1 < len(l.src) {
			two = l.src[l.pos : l.pos+2]
		}
		switch two {
		case ":-", "!=", "<=":
			l.advance()
			l.advance()
			return token{kind: tokPunct, text: two, line: line, col: col}, nil
		}
		switch c {
		case '(', ')', ',', '.', ':', '=', '<', '!', '@':
			l.advance()
			return token{kind: tokPunct, text: string(c), line: line, col: col}, nil
		}
		return token{}, l.errorf(line, col, "unexpected character %q", string(c))
	}
}

// lexAll tokenizes the whole input.
func lexAll(src string) ([]token, error) {
	l := newLexer(src)
	var toks []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.kind == tokEOF {
			return toks, nil
		}
	}
}

package datalog

import (
	"strings"
	"testing"

	"deepdive/internal/factor"
)

// spouseProgram is the paper's running example (Figure 2), in this
// package's syntax.
const spouseProgram = `
# User schema (Figure 2, panel 2).
@relation Sentence(sid, content).
@relation PersonCandidate(sid, mid).
@relation Mentions(sid, mid).
@relation EL(mid, eid).
@relation Married(eid1, eid2).
@variable MarriedCandidate(mid1, mid2).
@variable MarriedMentions(mid1, mid2).
@relation MarriedMentions_Ev(mid1, mid2, label).

@semantics(logical).

// R1: candidate generation.
R1: MarriedCandidate(m1, m2) :-
    PersonCandidate(s, m1), PersonCandidate(s, m2), m1 != m2.

// FE1: feature extraction with a UDF-tied weight.
FE1: MarriedMentions(m1, m2) :-
    MarriedCandidate(m1, m2), Mentions(s, m1), Mentions(s, m2),
    Sentence(s, sent)
    weight = phrase(m1, m2, sent).

// S1: distant supervision.
S1: MarriedMentions_Ev(m1, m2, true) :-
    MarriedCandidate(m1, m2), EL(m1, e1), EL(m2, e2), Married(e1, e2).
`

func TestParseSpouseProgram(t *testing.T) {
	p, err := Parse(spouseProgram)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Rules) != 3 {
		t.Fatalf("parsed %d rules, want 3", len(p.Rules))
	}
	if p.DefaultSem != factor.Logical {
		t.Fatalf("default semantics %v, want logical", p.DefaultSem)
	}
	r1 := p.RuleByLabel("R1")
	if r1 == nil || r1.Kind != KindDerivation {
		t.Fatalf("R1 = %+v, want derivation", r1)
	}
	if len(r1.Body) != 3 || r1.Body[2].Cond == nil || r1.Body[2].Cond.Op != "!=" {
		t.Fatalf("R1 body = %v", r1.Body)
	}
	fe1 := p.RuleByLabel("FE1")
	if fe1 == nil || fe1.Kind != KindInference {
		t.Fatalf("FE1 kind = %v, want inference", fe1.Kind)
	}
	if fe1.Weight.Func != "phrase" || len(fe1.Weight.Args) != 3 {
		t.Fatalf("FE1 weight = %+v", fe1.Weight)
	}
	s1 := p.RuleByLabel("S1")
	if s1 == nil || s1.Kind != KindSupervision {
		t.Fatalf("S1 kind = %v, want supervision", s1.Kind)
	}
	if s1.Head.Args[2].IsVar || s1.Head.Args[2].Value != "true" {
		t.Fatalf("S1 head label arg = %+v, want constant true", s1.Head.Args[2])
	}
}

func TestParseFixedWeightAndSem(t *testing.T) {
	p, err := Parse(`
@variable Q(x).
@relation R(x).
Q(x) :- R(x) weight = -1.5 sem = ratio.
`)
	if err != nil {
		t.Fatal(err)
	}
	r := p.Rules[0]
	if !r.Weight.IsFixed || r.Weight.Fixed != -1.5 {
		t.Fatalf("weight = %+v", r.Weight)
	}
	if !r.SemSet || r.Sem != factor.Ratio {
		t.Fatalf("sem = %v set=%v", r.Sem, r.SemSet)
	}
	if p.SemOf(r) != factor.Ratio {
		t.Fatal("SemOf should honor rule override")
	}
}

func TestParseTiedWeight(t *testing.T) {
	p, err := Parse(`
@variable Class(x).
@relation R(x, f).
Class(x) :- R(x, f) weight = w(f).
`)
	if err != nil {
		t.Fatal(err)
	}
	r := p.Rules[0]
	if r.Weight.Func != "w" || len(r.Weight.Args) != 1 || r.Weight.Args[0] != "f" {
		t.Fatalf("tied weight = %+v", r.Weight)
	}
}

func TestParseNegation(t *testing.T) {
	p, err := Parse(`
@relation R(x).
@relation S(x).
@relation Out(x).
Out(x) :- R(x), !S(x).
`)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Rules[0].Body[1].Neg {
		t.Fatal("negation not parsed")
	}
}

func TestParseFact(t *testing.T) {
	p, err := Parse(`
@relation R(x, y).
R("a", "b").
`)
	if err != nil {
		t.Fatal(err)
	}
	r := p.Rules[0]
	if len(r.Body) != 0 || r.Head.Args[0].Value != "a" {
		t.Fatalf("fact = %v", r)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		frag string // expected error substring
	}{
		{"undeclared head", `Q(x) :- Q(x).`, "undeclared head"},
		{"undeclared body", "@relation Q(x).\nQ(x) :- R(x).", "undeclared body"},
		{"head arity", "@relation Q(x, y).\n@relation R(x).\nQ(x) :- R(x).", "head Q has 1 args"},
		{"body arity", "@relation Q(x).\n@relation R(x).\nQ(x) :- R(x, x).", "body atom R has 2 args"},
		{"range restriction", "@relation Q(x).\n@relation R(y).\nQ(x) :- R(y).", "head variable x"},
		{"unsafe negation", "@relation Q(x).\n@relation R(x).\n@relation S(y).\nQ(x) :- R(x), !S(z).", "negated atom"},
		{"unsafe condition", "@relation Q(x).\n@relation R(x).\nQ(x) :- R(x), z != x.", "condition"},
		{"fact with vars", "@relation Q(x).\nQ(x).", "fact with variables"},
		{"weighted non-variable head", "@relation Q(x).\n@relation R(x).\nQ(x) :- R(x) weight = 1.", "must be declared @variable"},
		{"weighted supervision", "@variable Q(x).\n@relation Q_Ev(x, l).\n@relation R(x).\nQ_Ev(x, true) :- R(x) weight = 1.", "cannot carry a weight"},
		{"evidence without base", "@relation Foo_Ev(x, l).\n@relation R(x).\nFoo_Ev(x, true) :- R(x).", "no base variable relation"},
		{"evidence arity", "@variable Q(x).\n@relation Q_Ev(x, l, extra).\n@relation R(x).\nQ_Ev(x, true, true) :- R(x).", "must have arity 2"},
		{"unbound weight arg", "@variable Q(x).\n@relation R(x).\nQ(x) :- R(x) weight = w(zz).", "weight argument zz"},
		{"upper-case term", "@relation Q(x).\n@relation R(x).\nQ(x) :- R(Bad).", "starts upper-case"},
		{"duplicate decl", "@relation R(x).\n@relation R(y).", "duplicate declaration"},
		{"unknown decl", "@thing R(x).", "unknown declaration"},
		{"bad semantics", "@semantics(quadratic).", "unknown semantics"},
		{"unterminated string", "@relation R(x).\nR(\"oops).", "unterminated"},
		{"missing dot", "@relation R(x)", `expected "."`},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("%s: accepted bad program", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("%s: error %q does not contain %q", c.name, err, c.frag)
		}
	}
}

func TestEvidenceTarget(t *testing.T) {
	if base, ok := EvidenceTarget("Married_Ev"); !ok || base != "Married" {
		t.Fatalf("EvidenceTarget = %q, %v", base, ok)
	}
	if _, ok := EvidenceTarget("Married"); ok {
		t.Fatal("non-evidence name accepted")
	}
	if _, ok := EvidenceTarget("_Ev"); ok {
		t.Fatal("bare suffix accepted")
	}
}

func TestProgramStringRoundTrip(t *testing.T) {
	p := MustParse(spouseProgram)
	src2 := p.String()
	p2, err := Parse(src2)
	if err != nil {
		t.Fatalf("re-parse of String() failed: %v\n%s", err, src2)
	}
	if len(p2.Rules) != len(p.Rules) {
		t.Fatalf("round trip lost rules: %d vs %d", len(p2.Rules), len(p.Rules))
	}
	if p2.String() != src2 {
		t.Fatal("String() not a fixpoint")
	}
}

func TestRuleStringForms(t *testing.T) {
	p := MustParse(spouseProgram)
	s := p.RuleByLabel("FE1").String()
	for _, frag := range []string{"FE1:", "weight = phrase(m1, m2, sent)", ":-"} {
		if !strings.Contains(s, frag) {
			t.Errorf("FE1.String() = %q missing %q", s, frag)
		}
	}
}

func TestCommentsAndWhitespace(t *testing.T) {
	p, err := Parse("# leading\n//also\n@relation R(x).\nR(\"a\"). # trailing\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Rules) != 1 {
		t.Fatalf("rules = %d", len(p.Rules))
	}
}

func TestStringEscapes(t *testing.T) {
	p, err := Parse(`
@relation R(x).
R("line\nbreak\t\"q\"\\").
`)
	if err != nil {
		t.Fatal(err)
	}
	want := "line\nbreak\t\"q\"\\"
	if got := p.Rules[0].Head.Args[0].Value; got != want {
		t.Fatalf("escape = %q, want %q", got, want)
	}
}

func TestNumericConstants(t *testing.T) {
	p, err := Parse(`
@relation R(x).
R(42).
R(-3.5).
R(1e-2).
`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Rules[0].Head.Args[0].Value != "42" ||
		p.Rules[1].Head.Args[0].Value != "-3.5" ||
		p.Rules[2].Head.Args[0].Value != "1e-2" {
		t.Fatalf("numeric constants parsed wrong: %v %v %v",
			p.Rules[0].Head.Args[0], p.Rules[1].Head.Args[0], p.Rules[2].Head.Args[0])
	}
}

func TestRuleKindString(t *testing.T) {
	if KindDerivation.String() != "derivation" ||
		KindSupervision.String() != "supervision" ||
		KindInference.String() != "inference" {
		t.Fatal("RuleKind strings wrong")
	}
	if RuleKind(9).String() != "RuleKind(9)" {
		t.Fatal("unknown RuleKind string wrong")
	}
}

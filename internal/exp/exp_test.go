package exp

import (
	"strings"
	"testing"
	"time"
)

// The experiment functions are exercised end to end by cmd/deepdive-exp
// and the repository benchmarks; these tests pin their report structure
// and the cheap invariants.

func TestFig4ClosedForms(t *testing.T) {
	r := Fig4()
	joined := strings.Join(r.Lines, "\n")
	if !strings.Contains(joined, "linear") || !strings.Contains(joined, "ratio") {
		t.Fatalf("report missing semantics rows:\n%s", joined)
	}
	// Linear row must show ~1, logical exactly 0.5.
	for _, l := range r.Lines {
		if strings.HasPrefix(l, "linear") && !strings.Contains(l, "1.0000") {
			t.Fatalf("linear row = %q", l)
		}
		if strings.HasPrefix(l, "logical") && !strings.Contains(l, "0.5000") {
			t.Fatalf("logical row = %q", l)
		}
	}
}

func TestFig5aSmall(t *testing.T) {
	r := Fig5a([]int{2, 10}, 1)
	if len(r.Lines) < 3 {
		t.Fatalf("too few lines: %v", r.Lines)
	}
	// Strawman must be present (not "—") for both feasible sizes.
	for _, l := range r.Lines[1:3] {
		if strings.Contains(l, "—") {
			t.Fatalf("strawman missing for feasible size: %q", l)
		}
	}
}

func TestFig5bAcceptanceMonotone(t *testing.T) {
	r := Fig5b(60, []float64{0, 2.0}, 1)
	if len(r.Lines) < 3 {
		t.Fatalf("lines = %v", r.Lines)
	}
	// delta = 0 row must report acceptance 1.000.
	if !strings.Contains(r.Lines[1], "1.000") {
		t.Fatalf("zero-delta row = %q", r.Lines[1])
	}
}

func TestFig13SmallConverges(t *testing.T) {
	r := Fig13([]int{4}, 1)
	if len(r.Lines) != 2 {
		t.Fatalf("lines = %v", r.Lines)
	}
	if strings.Contains(r.Lines[1], ">") {
		t.Fatalf("tiny voting program failed to converge: %q", r.Lines[1])
	}
}

func TestFig16And17Structure(t *testing.T) {
	r := Fig16(1)
	if len(r.Lines) != 5 { // header + 3 strategies + note
		t.Fatalf("Fig16 lines = %d: %v", len(r.Lines), r.Lines)
	}
	r = Fig17(1)
	if len(r.Lines) < 6 {
		t.Fatalf("Fig17 lines = %v", r.Lines)
	}
}

func TestFig15Budget(t *testing.T) {
	r := Fig15(Quick, 30*time.Millisecond, 1)
	if len(r.Lines) != 6 { // header + 5 systems
		t.Fatalf("Fig15 lines = %d: %v", len(r.Lines), r.Lines)
	}
}

func TestPairwiseGraphShape(t *testing.T) {
	g := pairwiseGraph(50, 2.0, 1.0, 1)
	if g.NumVars() != 50 || g.NumGroups() != 100 {
		t.Fatalf("graph shape: %d vars, %d groups", g.NumVars(), g.NumGroups())
	}
	newG, changed := perturbWeights(g, 10, 0.5)
	if len(changed) != 10 {
		t.Fatalf("changed = %d", len(changed))
	}
	if newG.Weight(newG.Group(0).Weight) == g.Weight(g.Group(0).Weight) {
		t.Fatal("perturbation did not change the first weight")
	}
	if newG.NumVars() != g.NumVars() {
		t.Fatal("perturbed graph has different variable count")
	}
}

func TestSystemsScales(t *testing.T) {
	quick := systems(Quick)
	if len(quick) != 5 {
		t.Fatalf("systems = %d", len(quick))
	}
	for _, s := range quick {
		if len(s.Docs) == 0 {
			t.Fatalf("%s: empty corpus", s.Spec.Name)
		}
	}
}

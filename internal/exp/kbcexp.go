package exp

import (
	"fmt"
	"strings"
	"time"

	"deepdive/internal/corpus"
	"deepdive/internal/db"
	"deepdive/internal/factor"
	"deepdive/internal/ground"
	"deepdive/internal/kbc"
)

// Fig7 reproduces the Figure 7 statistics table for the five systems,
// grounded with the full rule inventory.
func Fig7(sc Scale, seed int64) *Report {
	r := &Report{Title: "Figure 7: statistics of the KBC systems (scaled ~2000x)"}
	r.addf("%-14s %8s %6s %7s %9s %10s", "System", "#Docs", "#Rels", "#Rules", "#Vars", "#Factors")
	for _, sys := range systems(sc) {
		rr, err := kbc.Rerun(sys, kbcConfig(factor.Ratio, seed), len(kbc.IterationNames)-1)
		if err != nil {
			r.addf("%-14s error: %v", sys.Spec.Name, err)
			continue
		}
		st := rr.Pipeline.SystemStats()
		r.addf("%-14s %8d %6d %7d %9d %10d",
			sys.Spec.Name, st.Docs, st.Relations, st.Rules, st.Vars, st.Factors)
	}
	return r
}

// buildIncPipeline grounds, learns, and materializes the snapshot-0
// system.
func buildIncPipeline(sys *corpus.System, cfg kbc.Config) (*kbc.Pipeline, error) {
	p, err := kbc.NewPipeline(sys, cfg)
	if err != nil {
		return nil, err
	}
	p.LearnFull()
	p.InferFromScratch()
	p.Materialize()
	return p, nil
}

// Fig9 reproduces the Figure 9 table: per rule category and per system,
// the inference+learning time of Rerun vs. Incremental, with the
// speedup factor.
func Fig9(sc Scale, seed int64) *Report {
	r := &Report{Title: "Figure 9: end-to-end efficiency of incremental inference and learning"}
	r.addf("%-14s %-5s %12s %12s %8s  %-12s", "System", "Rule", "Rerun", "Incremental", "Speedup", "Strategy")
	for _, sys := range systems(sc) {
		cfg := kbcConfig(factor.Ratio, seed)
		incP, err := buildIncPipeline(sys, cfg)
		if err != nil {
			r.addf("%-14s error: %v", sys.Spec.Name, err)
			continue
		}
		for k, rule := range kbc.IterationNames {
			ir, err := incP.ApplyIteration(rule)
			if err != nil {
				r.addf("%-14s %-5s error: %v", sys.Spec.Name, rule, err)
				break
			}
			rr, err := kbc.Rerun(sys, cfg, k)
			if err != nil {
				r.addf("%-14s %-5s rerun error: %v", sys.Spec.Name, rule, err)
				break
			}
			r.addf("%-14s %-5s %12s %12s %8s  %-12s",
				sys.Spec.Name, rule, ms(rr.Total()), ms(ir.Total()),
				speedup(rr.Total(), ir.Total()), ir.Strategy)
		}
	}
	return r
}

// Fig10a reproduces Figure 10(a): quality (F1) against cumulative
// execution time for Rerun and Incremental on the News system.
func Fig10a(sc Scale, seed int64) *Report {
	r := &Report{Title: "Figure 10(a): quality improvement over cumulative time (News)"}
	sys := systems(sc)[1] // News
	cfg := kbcConfig(factor.Ratio, seed)

	r.addf("%-5s %14s %8s   %14s %8s", "Rule", "rerun-cum", "F1", "inc-cum", "F1")
	incP, err := buildIncPipeline(sys, cfg)
	if err != nil {
		r.addf("error: %v", err)
		return r
	}
	var rerunCum, incCum time.Duration
	for k, rule := range kbc.IterationNames {
		ir, err := incP.ApplyIteration(rule)
		if err != nil {
			r.addf("%s: %v", rule, err)
			return r
		}
		incCum += ir.Total()
		rr, err := kbc.Rerun(sys, cfg, k)
		if err != nil {
			r.addf("%s: %v", rule, err)
			return r
		}
		rerunCum += rr.Total()
		r.addf("%-5s %14s %8.3f   %14s %8.3f",
			rule, ms(rerunCum), rr.Scores.F1, ms(incCum), ir.Scores.F1)
	}
	r.addf("(same quality trajectory, delivered faster — the 22x claim at paper scale)")
	return r
}

// Fig10b reproduces Figure 10(b): F1 of the three semantics per system.
func Fig10b(sc Scale, seed int64) *Report {
	r := &Report{Title: "Figure 10(b): quality (F1) of different semantics"}
	r.addf("%-10s %-14s %-10s %-8s %-14s", "", "Adversarial", "News", "Genomics", "Pharma/Paleo")
	sysList := systems(sc)
	names := []string{"Adversarial", "News", "Genomics", "Pharma", "Paleontology"}
	r.Lines = r.Lines[:0]
	header := fmt.Sprintf("%-9s", "Sem")
	for _, n := range names {
		header += fmt.Sprintf(" %12s", n)
	}
	r.Lines = append(r.Lines, header)
	for _, sem := range []factor.Semantics{factor.Linear, factor.Logical, factor.Ratio} {
		line := fmt.Sprintf("%-9s", sem)
		for _, sys := range sysList {
			rr, err := kbc.Rerun(sys, kbcConfig(sem, seed), len(kbc.IterationNames)-1)
			if err != nil {
				line += fmt.Sprintf(" %12s", "err")
				continue
			}
			line += fmt.Sprintf(" %12.3f", rr.Scores.F1)
		}
		r.Lines = append(r.Lines, line)
	}
	return r
}

// Fig6Lambdas is the regularization sweep of Figure 6.
var Fig6Lambdas = []float64{0.001, 0.01, 0.1, 1, 10}

// Fig6 reproduces Figure 6: quality (F1) and the approximate graph's
// factor count under different variational regularization parameters, on
// the News system with a supervision update (the workload that routes to
// the variational strategy).
func Fig6(sc Scale, lambdas []float64, seed int64) *Report {
	r := &Report{Title: "Figure 6: variational λ sweep on News (quality and #factors)"}
	r.addf("%10s %10s %10s %12s", "lambda", "F1", "#factors", "inf-time")
	sys := systems(sc)[1]
	for _, lambda := range lambdas {
		cfg := kbcConfig(factor.Ratio, seed)
		cfg.Lambda = lambda
		// Materialize a mature graph (through I1, which contributes the
		// pairwise correlations the relaxation sparsifies), then apply the
		// supervision rule S1 — the workload that routes to variational.
		rr, err := kbc.Rerun(sys, cfg, 3)
		if err != nil {
			r.addf("λ=%g: %v", lambda, err)
			continue
		}
		p := rr.Pipeline
		p.Materialize()
		ir, err := p.ApplyIteration("S1")
		if err != nil {
			r.addf("λ=%g: %v", lambda, err)
			continue
		}
		nf := 0
		if vm := p.Engine().Variational(); vm != nil {
			nf = vm.NumFactors()
		}
		r.addf("%10g %10.3f %10d %12s", lambda, ir.Scores.F1, nf, ms(ir.InferTime))
	}
	r.addf("(small λ: dense approximation; large λ: sparse and fast, quality degrades past the safe region)")
	return r
}

// Fig11 reproduces the Figure 11 lesion study on one system: inference
// time per rule with the full optimizer vs. NoSampling vs. NoRelaxation
// (variational disabled) vs. NoWorkloadInfo.
func Fig11(sc Scale, seed int64) *Report {
	r := &Report{Title: "Figure 11: lesion study of the materialization tradeoff (News)"}
	r.addf("%-5s %12s %12s %12s %12s", "Rule", "Full", "NoSampling", "NoRelax", "NoWorkload")
	sys := systems(sc)[1]
	variants := []struct {
		name string
		mut  func(*kbc.Config)
	}{
		{"Full", func(c *kbc.Config) {}},
		{"NoSampling", func(c *kbc.Config) { c.DisableSampling = true }},
		{"NoRelax", func(c *kbc.Config) { c.DisableVariational = true }},
		{"NoWorkload", func(c *kbc.Config) { c.IgnoreWorkload = true }},
	}
	times := make(map[string]map[string]time.Duration)
	for _, v := range variants {
		cfg := kbcConfig(factor.Ratio, seed)
		v.mut(&cfg)
		p, err := buildIncPipeline(sys, cfg)
		if err != nil {
			r.addf("%s: %v", v.name, err)
			return r
		}
		times[v.name] = map[string]time.Duration{}
		for _, rule := range kbc.IterationNames {
			ir, err := p.ApplyIteration(rule)
			if err != nil {
				r.addf("%s/%s: %v", v.name, rule, err)
				return r
			}
			times[v.name][rule] = ir.InferTime
		}
	}
	for _, rule := range kbc.IterationNames {
		r.addf("%-5s %12s %12s %12s %12s", rule,
			ms(times["Full"][rule]), ms(times["NoSampling"][rule]),
			ms(times["NoRelax"][rule]), ms(times["NoWorkload"][rule]))
	}
	return r
}

// Fig14 reproduces the Figure 14 lesion: inference time with and without
// the Algorithm 2 decomposition.
func Fig14(sc Scale, seed int64) *Report {
	r := &Report{Title: "Figure 14: lesion study of decomposition (News)"}
	r.addf("%-5s %12s %16s %14s %14s", "Rule", "All", "NoDecomposition", "acc(All)", "acc(NoDec)")
	sys := systems(sc)[1]

	run := func(noDec bool) (map[string]time.Duration, map[string]float64, error) {
		cfg := kbcConfig(factor.Ratio, seed)
		cfg.NoDecompose = noDec
		p, err := buildIncPipeline(sys, cfg)
		if err != nil {
			return nil, nil, err
		}
		t := map[string]time.Duration{}
		a := map[string]float64{}
		for _, rule := range kbc.IterationNames {
			ir, err := p.ApplyIteration(rule)
			if err != nil {
				return nil, nil, err
			}
			t[rule] = ir.InferTime
			a[rule] = ir.Acceptance
		}
		return t, a, nil
	}
	tAll, aAll, err := run(false)
	if err != nil {
		r.addf("error: %v", err)
		return r
	}
	tNo, aNo, err := run(true)
	if err != nil {
		r.addf("error: %v", err)
		return r
	}
	for _, rule := range kbc.IterationNames {
		r.addf("%-5s %12s %16s %14.2f %14.2f",
			rule, ms(tAll[rule]), ms(tNo[rule]), aAll[rule], aNo[rule])
	}
	r.addf("(without decomposition, any change collapses the global acceptance test)")
	return r
}

// Fig15 reproduces Figure 15: how many samples each system materializes
// within a fixed wall-clock budget (the paper's 8 hours, scaled to the
// given budget).
func Fig15(sc Scale, budget time.Duration, seed int64) *Report {
	r := &Report{Title: fmt.Sprintf("Figure 15: samples materialized within %v", budget)}
	r.addf("%-14s %12s", "System", "#Samples")
	for _, sys := range systems(sc) {
		cfg := kbcConfig(factor.Ratio, seed)
		cfg.MatSamples = 10 // the budget loop does the real work
		p, err := buildIncPipeline(sys, cfg)
		if err != nil {
			r.addf("%-14s error: %v", sys.Spec.Name, err)
			continue
		}
		n := p.Engine().MaterializeForBudget(budget)
		r.addf("%-14s %12d", sys.Spec.Name, n)
	}
	return r
}

// Grounding reproduces the incremental-grounding claim of Sections 1/4.2
// (up to 360× for FE1 on News at paper scale): time to fold a new-document
// delta into the grounding incrementally versus re-grounding from
// scratch.
func Grounding(sc Scale, seed int64) *Report {
	r := &Report{Title: "Incremental grounding: delta evaluation vs. full re-grounding (News + FE1)"}
	sys := systems(sc)[1]
	cfg := kbcConfig(factor.Ratio, seed)
	p, err := kbc.NewPipeline(sys, cfg)
	if err != nil {
		r.addf("error: %v", err)
		return r
	}
	// Install FE1 so the delta has feature work to do.
	rules, err := kbc.ParseIteration(sys, p.BaseSrc, "FE1")
	if err != nil {
		r.addf("error: %v", err)
		return r
	}
	if _, err := p.G.ApplyUpdate(ground.Update{NewRules: rules}); err != nil {
		r.addf("error: %v", err)
		return r
	}

	// The delta: one new document's worth of base tuples.
	extra := corpus.Generate(func() corpus.Spec {
		s := sys.Spec
		s.Seed += 999
		s.NumDocs = 2
		s.TruePairsPerRel = 2
		s.FalsePairsPerRel = 2
		return s
	}())
	delta := kbc.BaseTuples(extra)
	// Rename sentence and mention ids so they do not collide with the
	// existing corpus (mid format: m:<sid>:<start>:<end>).
	ins := map[string][]db.Tuple{}
	for _, t := range delta["Sentence"] {
		ins["Sentence"] = append(ins["Sentence"], db.Tuple{"x" + t[0], t[1]})
	}
	for _, t := range delta["Mention"] {
		newMid := "m:x" + strings.TrimPrefix(t[0], "m:")
		ins["Mention"] = append(ins["Mention"], db.Tuple{newMid, "x" + t[1], t[2], t[3]})
	}

	start := time.Now()
	if _, err := p.G.ApplyUpdate(ground.Update{Inserts: ins}); err != nil {
		r.addf("incremental error: %v", err)
		return r
	}
	incTime := time.Since(start)

	start = time.Now()
	if err := p.G.Ground(); err != nil {
		r.addf("full reground error: %v", err)
		return r
	}
	fullTime := time.Since(start)

	r.addf("full re-grounding: %s", ms(fullTime))
	r.addf("incremental delta: %s", ms(incTime))
	r.addf("speedup:           %s", speedup(fullTime, incTime))
	return r
}

package exp

import (
	"math"
	"time"

	"deepdive/internal/corpus"
	"deepdive/internal/factor"
	"deepdive/internal/learn"
)

// spamGraph builds a logistic-regression factor graph over an email
// prefix: one variable per email (evidence over the training prefix),
// one tied weight per vocabulary word (the paper's Example 2.6
// classifier Class(x) :- R(x, f) with weight = w(f)).
func spamGraph(emails []corpus.Email, trainN int) (*factor.Graph, []factor.VarID) {
	b := factor.NewBuilder()
	anchor := b.AddEvidenceVar(true)
	wordW := map[string]factor.WeightID{}
	var vars []factor.VarID
	for i, e := range emails {
		var v factor.VarID
		if i < trainN {
			v = b.AddEvidenceVar(e.Spam)
		} else {
			v = b.AddVar()
		}
		vars = append(vars, v)
		seen := map[string]bool{}
		for _, w := range e.Words {
			if seen[w] {
				continue // logical-style: one grounding per word per email
			}
			seen[w] = true
			wid, ok := wordW[w]
			if !ok {
				wid = b.AddWeight(0)
				wordW[w] = wid
			}
			b.AddGroup(v, wid, factor.Linear,
				[]factor.Grounding{{Lits: []factor.Literal{{Var: anchor}}}})
		}
	}
	return b.MustBuild(), vars
}

// Fig16 reproduces Figure 16 (Appendix B.3): convergence of incremental
// learning strategies after an update that adds both new features and new
// training examples. SGD with warmstart reaches a near-optimal loss
// fastest; SGD without warmstart needs more epochs; full gradient descent
// with warmstart is slowest per unit of progress.
func Fig16(seed int64) *Report {
	r := &Report{Title: "Figure 16: convergence of incremental learning strategies"}
	// "Old" model: trained on the first chunk of the stream.
	emails := corpus.GenerateSpamStream(corpus.SpamStreamSpec{N: 400, DriftAt: 0.99, Seed: seed})
	gOld, _ := spamGraph(emails[:200], 160)
	oldRes := learn.Train(gOld, learn.Options{Epochs: 8, StepSize: 0.15, L2: 0.12, Seed: seed})

	// The update: new emails (new labels) and their new word features.
	gNew, _ := spamGraph(emails, 320)
	warm := make([]float64, gNew.NumWeights())
	copy(warm, oldRes.Weights) // weight ids are prefix-stable by construction

	type strat struct {
		name string
		opt  learn.Options
	}
	strats := []strat{
		{"SGD+Warmstart", learn.Options{Method: learn.SGD, Epochs: 10, StepSize: 0.15, Seed: seed + 1, Warmstart: warm, TrackLoss: true}},
		{"SGD-Warmstart", learn.Options{Method: learn.SGD, Epochs: 10, StepSize: 0.15, Seed: seed + 1, TrackLoss: true}},
		{"GD+Warmstart", learn.Options{Method: learn.GD, Epochs: 10, StepSize: 0.15, Seed: seed + 1, Warmstart: warm, TrackLoss: true}},
	}
	r.addf("%-15s %10s %10s %10s %10s %12s", "Strategy", "loss@0", "loss@1", "loss@5", "loss@10", "time")
	for _, s := range strats {
		// Initial loss before any epoch: shows the warmstart head start.
		probe := s.opt
		probe.TrackLoss = false
		initial := learn.NewTrainer(factor.NewBuilderFrom(gNew).MustBuild(), probe).Loss(2)

		g := factor.NewBuilderFrom(gNew).MustBuild()
		start := time.Now()
		res := learn.Train(g, s.opt)
		elapsed := time.Since(start)
		l := res.LossByEpoch
		r.addf("%-15s %10.4f %10.4f %10.4f %10.4f %12s",
			s.name, initial, l[0], l[4], l[len(l)-1], ms(elapsed))
	}
	r.addf("(warmstart starts from a lower loss; SGD converges faster than GD per epoch)")
	return r
}

// Fig17 reproduces Figure 17 (Appendix B.4): concept drift. The spam
// vocabulary shifts mid-stream; Rerun trains on the 30%% prefix from
// scratch while Incremental warmstarts from a model trained on the first
// 10%%. Both converge to the same loss; warmstart starts lower.
func Fig17(seed int64) *Report {
	r := &Report{Title: "Figure 17: impact of concept drift (chronological spam stream)"}
	emails := corpus.GenerateSpamStream(corpus.SpamStreamSpec{N: 900, DriftAt: 0.2, Seed: seed})
	n10 := len(emails) * 10 / 100
	n30 := len(emails) * 30 / 100

	// Phase 1: model trained on the first 10% (pre/around the drift).
	gFirst, _ := spamGraph(emails[:n30], n10)
	first := learn.Train(gFirst, learn.Options{Epochs: 8, StepSize: 0.15, L2: 0.12, Seed: seed})

	epochs := 12
	// Rerun: train on 30% from scratch.
	gRerun, _ := spamGraph(emails[:n30], n30)
	rerun := learn.Train(gRerun, learn.Options{Epochs: epochs, StepSize: 0.25, Seed: seed + 1, TrackLoss: true})

	// Incremental: warmstart from the 10% model.
	gInc, _ := spamGraph(emails[:n30], n30)
	warm := make([]float64, gInc.NumWeights())
	copy(warm, first.Weights)

	// Initial losses before any epoch: the cold model starts at log 2;
	// the warmstarted model starts lower even though the spam vocabulary
	// drifted under it.
	coldInit := learn.NewTrainer(factor.NewBuilderFrom(gRerun).MustBuild(),
		learn.Options{Seed: seed + 1}).Loss(2)
	warmInit := learn.NewTrainer(factor.NewBuilderFrom(gInc).MustBuild(),
		learn.Options{Seed: seed + 1, Warmstart: warm}).Loss(2)

	incr := learn.Train(gInc, learn.Options{Epochs: epochs, StepSize: 0.25, Seed: seed + 1, Warmstart: warm, TrackLoss: true})

	r.addf("%-8s %12s %12s", "epoch", "Rerun", "Incremental")
	r.addf("%-8s %12.4f %12.4f", "initial", coldInit, warmInit)
	for e := 0; e < epochs; e += 2 {
		r.addf("%-8d %12.4f %12.4f", e+1, rerun.LossByEpoch[e], incr.LossByEpoch[e])
	}
	r.addf("%-8s %12.4f %12.4f", "final",
		rerun.LossByEpoch[epochs-1], incr.LossByEpoch[epochs-1])
	r.addf("(even under drift, warmstart starts lower and both converge to the same loss)")
	return r
}

// Fig4 verifies the Example 2.5 semantics table in closed form: the
// probability of the voting query under each g for |Up| = 10^6,
// |Down| = 10^6 − 100.
func Fig4() *Report {
	r := &Report{Title: "Figure 4 / Example 2.5: semantics of g on the voting program"}
	up, down := 1_000_000, 1_000_000-100
	r.addf("%-9s %22s", "Semantics", "Pr[q]  (|Up|=1e6, |Down|=1e6-100)")
	for _, sem := range []factor.Semantics{factor.Linear, factor.Logical, factor.Ratio} {
		w := sem.G(up) - sem.G(down)
		p := 1 / (1 + math.Exp(-2*w))
		r.addf("%-9s %22.12f", sem, p)
	}
	r.addf("(linear saturates at 1; ratio and logical stay at ~0.5, as in Example 2.5)")
	return r
}

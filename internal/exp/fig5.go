package exp

import (
	"strconv"
	"time"

	"deepdive/internal/factor"
	"deepdive/internal/gibbs"
	"deepdive/internal/inc"
)

// Fig5aSizes mirrors the paper's graph-size axis.
var Fig5aSizes = []int{2, 10, 17, 100, 1000, 10000}

// Fig5a reproduces Figure 5(a): materialization and inference time of
// the three strategies as the factor graph grows. Strawman runs only
// where feasible (≤ 17 vars here, ≤ ~20 in the paper).
func Fig5a(sizes []int, seed int64) *Report {
	r := &Report{Title: "Figure 5(a): strategy cost vs. graph size"}
	r.addf("%8s  %12s %12s %12s   %12s %12s %12s",
		"n", "mat-straw", "mat-sample", "mat-var", "inf-straw", "inf-sample", "inf-var")
	const matSamples, keep = 400, 300
	for _, n := range sizes {
		g := pairwiseGraph(n, 2.0, 1.0, seed)
		newG, changed := perturbWeights(g, max(1, n/10), 0.3)
		cs := inc.ChangeSet{ChangedOld: changed, ChangedNew: changed}

		var matS, infS string = "     —", "     —"
		if n <= inc.MaxStrawmanVars {
			start := time.Now()
			sm, err := inc.MaterializeStrawman(g)
			if err == nil {
				matS = ms(time.Since(start))
				start = time.Now()
				sm.Infer(newG, changed, changed, 20, keep, seed+1)
				infS = ms(time.Since(start))
			}
		}

		start := time.Now()
		sampler := gibbs.New(g, seed+2)
		store := sampler.CollectSamples(20, matSamples)
		matSa := time.Since(start)

		start = time.Now()
		vm, err := inc.MaterializeVariational(g, store, inc.VariationalOptions{Lambda: 0.01})
		if err != nil {
			r.addf("n=%d: variational materialization failed: %v", n, err)
			continue
		}
		matV := time.Since(start)

		store.Reset()
		start = time.Now()
		inc.SamplingInfer(g, newG, store, cs, min(keep, matSamples-1), seed+3)
		infSa := time.Since(start)

		start = time.Now()
		inc.VariationalInfer(vm, g, newG, changed, 20, keep, seed+4)
		infV := time.Since(start)

		r.addf("%8d  %12s %12s %12s   %12s %12s %12s",
			n, matS, ms(matSa), ms(matV), infS, ms(infSa), ms(infV))
	}
	r.addf("(strawman infeasible beyond %d free variables, as in the paper)", inc.MaxStrawmanVars)
	return r
}

// Fig5bDeltas are weight perturbations sweeping the acceptance rate from
// ≈1 down to ≈0 (the paper's amount-of-change axis).
var Fig5bDeltas = []float64{0, 0.05, 0.3, 1.0, 3.0}

// Fig5b reproduces Figure 5(b): sampling vs. variational execution time
// as the amount of change (measured by the achieved acceptance rate)
// varies on a 1000-variable graph.
func Fig5b(n int, deltas []float64, seed int64) *Report {
	r := &Report{Title: "Figure 5(b): execution time vs. acceptance rate (amount of change)"}
	r.addf("%8s  %12s  %12s %12s", "delta", "acceptance", "inf-sample", "inf-var")
	const matSamples, keep = 1200, 800
	g := pairwiseGraph(n, 2.0, 1.0, seed)
	sampler := gibbs.New(g, seed+2)
	store := sampler.CollectSamples(20, matSamples)
	vm, err := inc.MaterializeVariational(g, store, inc.VariationalOptions{Lambda: 0.01})
	if err != nil {
		r.addf("variational materialization failed: %v", err)
		return r
	}
	for _, d := range deltas {
		newG, changed := perturbWeights(g, n, d)
		cs := inc.ChangeSet{ChangedOld: changed, ChangedNew: changed}

		store.Reset()
		start := time.Now()
		sr := inc.SamplingInfer(g, newG, store, cs, keep, seed+3)
		infSa := time.Since(start)

		start = time.Now()
		inc.VariationalInfer(vm, g, newG, changed, 20, keep, seed+4)
		infV := time.Since(start)

		r.addf("%8.2f  %12.3f  %12s %12s", d, sr.AcceptanceRate(), ms(infSa), ms(infV))
	}
	r.addf("(high acceptance favors sampling; large changes favor the variational side)")
	return r
}

// Fig5cSparsities mirrors the paper's correlation-sparsity axis.
var Fig5cSparsities = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 1.0}

// Fig5c reproduces Figure 5(c): execution time vs. the fraction of
// non-zero correlations. Sparser originals give the variational approach
// smaller approximate graphs and faster inference.
func Fig5c(n int, sparsities []float64, seed int64) *Report {
	r := &Report{Title: "Figure 5(c): execution time vs. sparsity of correlations"}
	r.addf("%8s  %10s  %12s %12s", "sparsity", "var-edges", "inf-sample", "inf-var")
	const matSamples, keep = 800, 600
	for _, s := range sparsities {
		g := pairwiseGraph(n, 2.0, s, seed)
		sampler := gibbs.New(g, seed+2)
		store := sampler.CollectSamples(20, matSamples)
		vm, err := inc.MaterializeVariational(g, store, inc.VariationalOptions{Lambda: 0.02})
		if err != nil {
			r.addf("sparsity %.1f: %v", s, err)
			continue
		}
		// A moderate change so the sampling side has to work.
		newG, changed := perturbWeights(g, n/2, 0.5)
		cs := inc.ChangeSet{ChangedOld: changed, ChangedNew: changed}

		store.Reset()
		start := time.Now()
		inc.SamplingInfer(g, newG, store, cs, keep, seed+3)
		infSa := time.Since(start)

		start = time.Now()
		inc.VariationalInfer(vm, g, newG, changed, 20, keep, seed+4)
		infV := time.Since(start)

		r.addf("%8.1f  %10d  %12s %12s", s, len(vm.Edges), ms(infSa), ms(infV))
	}
	return r
}

// Fig13Sizes is the |U|+|D| axis of the convergence experiment.
var Fig13Sizes = []int{4, 16, 64, 256, 1024}

// Fig13 reproduces Figure 13 (Appendix A): Gibbs sweeps until the voting
// program's query marginal is within 1% of the exact value, for the three
// semantics. Linear blows up as votes grow; Logical and Ratio stay near
// O(n log n).
func Fig13(sizes []int, seed int64) *Report {
	r := &Report{Title: "Figure 13: voting-program convergence vs. |U|+|D|"}
	r.addf("%8s  %10s %10s %10s   (sweeps to reach ±1%% of exact marginal)",
		"|U|+|D|", "linear", "logical", "ratio")
	const maxSweeps = 30000
	for _, total := range sizes {
		row := make(map[factor.Semantics]string)
		for _, sem := range []factor.Semantics{factor.Linear, factor.Logical, factor.Ratio} {
			g, q := votingGraph(sem, total/2, total/2)
			// |U| = |D| and symmetric weights: exact marginal is 1/2.
			res := gibbs.SweepsToConverge(g, q, 0.5, 0.01, maxSweeps, 25, seed)
			if res.Converged {
				row[sem] = fmt6(res.Sweeps)
			} else {
				row[sem] = ">" + fmt6(maxSweeps)
			}
		}
		r.addf("%8d  %10s %10s %10s", total,
			row[factor.Linear], row[factor.Logical], row[factor.Ratio])
	}
	return r
}

func fmt6(n int) string { return strconv.Itoa(n) }

// votingGraph builds Example 2.5's voting program with free up/down vote
// variables, so the chain has to mix over the votes too (the Appendix A
// experimental setting: "all variables to be non-evidence variables").
func votingGraph(sem factor.Semantics, nUp, nDown int) (*factor.Graph, factor.VarID) {
	b := factor.NewBuilder()
	q := b.AddVar()
	wUp := b.AddWeight(1)
	wDown := b.AddWeight(-1)
	var upG, downG []factor.Grounding
	for i := 0; i < nUp; i++ {
		v := b.AddVar()
		upG = append(upG, factor.Grounding{Lits: []factor.Literal{{Var: v}}})
	}
	for i := 0; i < nDown; i++ {
		v := b.AddVar()
		downG = append(downG, factor.Grounding{Lits: []factor.Literal{{Var: v}}})
	}
	b.AddGroup(q, wUp, sem, upG)
	b.AddGroup(q, wDown, sem, downG)
	return b.MustBuild(), q
}

// Package exp implements the paper's experiments: one regeneration
// function per table/figure of the evaluation (Sections 3.2.4 and 4,
// Appendices A/B). Each function returns formatted report lines; the
// deepdive-exp command prints them and the repository benchmarks wrap
// them. Everything is deterministic in the configured seeds.
//
// DESIGN.md carries the experiment index; EXPERIMENTS.md records
// paper-reported versus measured values.
package exp

import (
	"fmt"
	"math/rand"
	"time"

	"deepdive/internal/corpus"
	"deepdive/internal/factor"
	"deepdive/internal/kbc"
)

// Report is a titled block of result lines.
type Report struct {
	Title string
	Lines []string
}

func (r *Report) addf(format string, args ...any) {
	r.Lines = append(r.Lines, fmt.Sprintf(format, args...))
}

// String renders the report.
func (r *Report) String() string {
	out := r.Title + "\n"
	for _, l := range r.Lines {
		out += "  " + l + "\n"
	}
	return out
}

// Scale picks experiment sizes. Quick keeps the full suite within a few
// minutes; Full uses the complete corpora.
type Scale int

const (
	// Quick shrinks corpora for fast runs (benchmarks, CI).
	Quick Scale = iota
	// Full uses the Figure 7 scaled corpora as generated.
	Full
)

// systems returns the evaluation systems at the requested scale.
func systems(sc Scale) []*corpus.System {
	if sc == Full {
		return corpus.AllSystems()
	}
	shrink := func(spec corpus.Spec, docs, pairs int) corpus.Spec {
		spec.NumDocs = docs
		if spec.TruePairsPerRel > pairs {
			spec.TruePairsPerRel = pairs
		}
		if spec.FalsePairsPerRel > 3*pairs {
			spec.FalsePairsPerRel = 3 * pairs
		}
		return spec
	}
	return []*corpus.System{
		corpus.Generate(shrink(corpus.Adversarial(), 220, 40)),
		corpus.Generate(shrink(corpus.News(), 80, 6)),
		corpus.Generate(shrink(corpus.Genomics(), 25, 9)),
		corpus.Generate(shrink(corpus.Pharma(), 40, 7)),
		corpus.Generate(shrink(corpus.Paleontology(), 30, 8)),
	}
}

// kbcConfig is the shared pipeline configuration for KBC experiments.
func kbcConfig(sem factor.Semantics, seed int64) kbc.Config {
	return kbc.Config{
		Sem:         sem,
		LearnEpochs: 8, IncLearnEpochs: 3,
		InferBurnin: 15, InferKeep: 150,
		MatSamples: 500,
		Seed:       seed,
	}
}

// ms renders a duration in milliseconds with sub-ms precision.
func ms(d time.Duration) string {
	return fmt.Sprintf("%8.2fms", float64(d.Microseconds())/1000)
}

// speedup renders a ratio, guarding division by ~zero.
func speedup(base, inc time.Duration) string {
	if inc <= 0 {
		inc = time.Microsecond
	}
	return fmt.Sprintf("%6.1fx", float64(base)/float64(inc))
}

// pairwiseGraph builds the synthetic factor graphs of the Figure 5
// tradeoff study: n variables, pairwise factors between random variable
// pairs with weights sampled from [-0.5, 0.5] (the paper's setting), and
// a (1 - sparsity) fraction of weights zeroed.
func pairwiseGraph(n int, factorsPerVar float64, sparsity float64, seed int64) *factor.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := factor.NewBuilder()
	vars := make([]factor.VarID, n)
	for i := range vars {
		vars[i] = b.AddVar()
	}
	nFactors := int(float64(n) * factorsPerVar)
	if n >= 2 {
		for i := 0; i < nFactors; i++ {
			a := rng.Intn(n)
			c := rng.Intn(n)
			for c == a {
				c = rng.Intn(n)
			}
			w := rng.Float64() - 0.5
			if rng.Float64() >= sparsity {
				w = 0 // zeroed weight: present but inert (the sparsity axis)
			}
			wid := b.AddWeight(w)
			b.AddGroup(vars[a], wid, factor.Linear,
				[]factor.Grounding{{Lits: []factor.Literal{{Var: vars[c]}}}})
		}
	}
	return b.MustBuild()
}

// perturbWeights returns a copy-shaped change: the first k group weights
// shifted by delta on the new graph, with the matching changed-group
// lists. The graphs share variable ids.
func perturbWeights(g *factor.Graph, k int, delta float64) (*factor.Graph, []int32) {
	newG := factor.NewBuilderFrom(g).MustBuild()
	if k > newG.NumGroups() {
		k = newG.NumGroups()
	}
	changed := make([]int32, 0, k)
	seen := map[factor.WeightID]bool{}
	for gi := 0; gi < k; gi++ {
		w := newG.GroupWeight(gi)
		if !seen[w] {
			seen[w] = true
			newG.SetWeight(w, newG.Weight(w)+delta)
		}
		changed = append(changed, int32(gi))
	}
	return newG, changed
}

package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"
)

// resumeRing holds the last Options.ResumeWindow published views, keyed
// by epoch, so a subscriber reconnecting with a Last-Event-ID still in
// the window can resume with one catch-up delta instead of a full
// snapshot resync. Views are immutable, so holding them costs only the
// memory of the snapshots themselves (which share structure with the
// live one). Filled by the subscription handlers as they observe
// publications; an epoch that was never observed by any subscriber ages
// out naturally and resumption falls back to the full resync.
type resumeRing struct {
	cap   int
	mu    sync.Mutex
	views []View // ascending epoch order; at most cap entries
}

// add records a published view (deduplicating by epoch).
func (r *resumeRing) add(v View) {
	if r.cap <= 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if n := len(r.views); n > 0 && r.views[n-1].Epoch() >= v.Epoch() {
		return
	}
	r.views = append(r.views, v)
	if len(r.views) > r.cap {
		r.views = append(r.views[:0:0], r.views[len(r.views)-r.cap:]...)
	}
}

// at returns the held view of one epoch, or nil when it aged out.
func (r *resumeRing) at(epoch uint64) View {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := len(r.views) - 1; i >= 0; i-- {
		switch {
		case r.views[i].Epoch() == epoch:
			return r.views[i]
		case r.views[i].Epoch() < epoch:
			return nil
		}
	}
	return nil
}

// Change is one per-fact delta pushed on a subscription stream.
type Change struct {
	Relation string   `json:"relation"`
	Tuple    []string `json:"tuple"`
	// Probability/Known/Evidence mirror Fact; meaningless when Removed.
	Probability float64 `json:"probability"`
	Known       bool    `json:"known"`
	Evidence    bool    `json:"evidence,omitempty"`
	// Delta is the signed probability movement since the last state this
	// subscriber was sent (0 for newly appearing facts).
	Delta float64 `json:"delta,omitempty"`
	// Removed marks a fact that left the KB (e.g. its document was
	// deleted and DRed retracted the candidate).
	Removed bool `json:"removed,omitempty"`
}

// deltaEvent is the payload of one "delta" stream event: every tracked
// fact that moved between the subscriber's last-sent state and the
// current snapshot.
type deltaEvent struct {
	Epoch uint64 `json:"epoch"`
	// Skipped counts publications this event coalesced over: 0 when the
	// subscriber kept up, n when it was slow (or filtered events were
	// suppressed) and n intermediate epochs were never sent. Consumers
	// needing every epoch must check Skipped and treat the event as a
	// state resync, not a strict journal.
	Skipped uint64   `json:"skipped,omitempty"`
	Changes []Change `json:"changes"`
}

// snapshotEvent is the payload of the initial "snapshot" stream event.
type snapshotEvent struct {
	Epoch uint64            `json:"epoch"`
	Facts map[string][]Fact `json:"facts"`
}

// sentFact is the last per-fact state written to one subscriber.
type sentFact struct {
	p        float64
	known    bool
	evidence bool
}

// subFilter is one subscription's fact filter.
type subFilter struct {
	rels     map[string]bool // nil = all relations
	tupleKey string          // "" = all tuples
	minDelta float64
}

func (f *subFilter) wantRel(rel string) bool { return f.rels == nil || f.rels[rel] }

func factKey(tuple []string) string { return strings.Join(tuple, "\x00") }

// handleSubscribe streams per-fact marginal deltas as Server-Sent Events.
//
// Protocol: one "snapshot" event with the full filtered fact state, then
// one "delta" event per observed publication carrying every fact whose
// probability moved by at least min_delta (plus all appearances,
// removals, and known/evidence transitions). Each subscriber runs in its
// own handler goroutine and diffs the current snapshot against the state
// it last SENT — not against the previous epoch — so a subscriber that
// falls behind coalesces the missed epochs into one resync delta (the
// event's skipped count says how many) instead of replaying a backlog.
//
// The publish path never blocks on subscribers: publication just closes
// a broadcast channel (see Backend.Published), and all per-subscriber
// work — diffing, JSON encoding, the connection write — happens here.
// A write is bounded by Options.WriteTimeout; a client stalled past it
// is dropped and must reconnect for a fresh snapshot+resync.
//
// Reconnection: every snapshot/delta event carries an SSE id line (the
// epoch it brought the subscriber to). A client reconnecting with a
// Last-Event-ID whose epoch is still in the server's resume window gets
// a "resumed" event plus one catch-up delta from that epoch instead of
// the full snapshot; an aged-out epoch falls back to the ordinary full
// resync. On drain the stream ends with a "drain" event after the
// in-flight write, so clients know to reconnect elsewhere.
//
// Query parameters: relation (repeatable; default all), tuple
// (repeatable components naming one fact; requires exactly one
// relation), min_delta (default Options.MinDelta).
func (s *Server) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeStatusErr(w, &StatusError{Status: http.StatusServiceUnavailable,
			Code: "shutting_down", Msg: "server is draining"})
		return
	}
	if max := s.opts.MaxSubscribers; max > 0 && s.subscribers.Load() >= int64(max) {
		writeStatusErr(w, &StatusError{Status: http.StatusServiceUnavailable,
			Code: "subscriber_limit", RetryAfter: 1,
			Msg: fmt.Sprintf("subscriber limit (%d) reached", max)})
		return
	}
	q := r.URL.Query()
	filter := subFilter{minDelta: s.opts.MinDelta}
	if rels := q["relation"]; len(rels) > 0 {
		filter.rels = make(map[string]bool, len(rels))
		for _, rel := range rels {
			filter.rels[rel] = true
		}
	}
	if tuple := q["tuple"]; len(tuple) > 0 {
		if len(filter.rels) != 1 {
			writeErr(w, http.StatusBadRequest, "tuple filter requires exactly one relation parameter")
			return
		}
		filter.tupleKey = factKey(tuple)
	}
	if md := q.Get("min_delta"); md != "" {
		v, err := strconv.ParseFloat(md, 64)
		if err != nil || v < 0 {
			writeErr(w, http.StatusBadRequest, "bad min_delta %q", md)
			return
		}
		filter.minDelta = v
	}

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	s.subscribers.Add(1)
	s.subsTotal.Add(1)
	defer s.subscribers.Add(-1)

	rc := http.NewResponseController(w)
	// Every event carries an id line — the epoch it brings the subscriber
	// to — which SSE clients echo back as Last-Event-ID on reconnect.
	writeEvent := func(name string, id uint64, v any) error {
		data, err := json.Marshal(v)
		if err != nil {
			return err
		}
		if err := rc.SetWriteDeadline(time.Now().Add(s.opts.WriteTimeout)); err != nil &&
			!errors.Is(err, http.ErrNotSupported) {
			return err
		}
		if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", id, name, data); err != nil {
			if errors.Is(err, os.ErrDeadlineExceeded) {
				s.subsDropped.Add(1)
			}
			return err
		}
		if err := rc.Flush(); err != nil && !errors.Is(err, http.ErrNotSupported) {
			return err
		}
		return nil
	}

	// Arm the publication channel BEFORE reading the view: a publication
	// racing the initial snapshot then still wakes the loop, which diffs
	// against last-sent state and so never misses it.
	pub := s.b.Published()
	v := s.b.View()
	s.ring.add(v)
	sent := make(map[string]map[string]sentFact)
	lastEpoch := v.Epoch()

	// Last-Event-ID resumption: rebuild the subscriber's last-sent state
	// from the held view of the epoch it already has, so the catch-up is
	// one delta instead of the full fact table.
	resumed := false
	if tok := r.Header.Get("Last-Event-ID"); tok != "" && s.opts.ResumeWindow > 0 {
		if ep, err := strconv.ParseUint(tok, 10, 64); err == nil && ep <= lastEpoch {
			if held := s.ring.at(ep); held != nil {
				collectSent(held, &filter, sent)
				lastEpoch = ep
				resumed = true
				s.subsResumed.Add(1)
			}
		}
	}
	if resumed {
		if err := writeEvent("resumed", lastEpoch, map[string]uint64{"epoch": lastEpoch}); err != nil {
			return
		}
		// Catch-up delta from the resumed epoch to the current view. Same
		// min_delta bookkeeping as the loop: an all-filtered diff keeps
		// lastEpoch stale so the skipped count stays honest later.
		if v.Epoch() != lastEpoch {
			ev := s.diff(v, &filter, sent)
			if len(ev.Changes) > 0 {
				ev.Skipped = v.Epoch() - lastEpoch - 1
				lastEpoch = v.Epoch()
				if err := writeEvent("delta", ev.Epoch, ev); err != nil {
					return
				}
			}
		}
	} else {
		init := snapshotEvent{Epoch: v.Epoch(), Facts: map[string][]Fact{}}
		for _, rel := range v.Relations() {
			if !filter.wantRel(rel) {
				continue
			}
			var kept []Fact
			for _, f := range v.Facts(rel) {
				k := factKey(f.Tuple)
				if filter.tupleKey != "" && k != filter.tupleKey {
					continue
				}
				kept = append(kept, f)
			}
			init.Facts[rel] = kept
		}
		collectSent(v, &filter, sent)
		if err := writeEvent("snapshot", init.Epoch, init); err != nil {
			return
		}
	}

	heartbeat := time.NewTicker(s.opts.Heartbeat)
	defer heartbeat.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-s.drainCh:
			// Graceful drain: tell the client this stream is over (it
			// should reconnect to another instance) and end the handler so
			// the server's shutdown is not held hostage by idle streams.
			_ = writeEvent("drain", lastEpoch, map[string]uint64{"epoch": lastEpoch})
			return
		case <-heartbeat.C:
			if err := rc.SetWriteDeadline(time.Now().Add(s.opts.WriteTimeout)); err != nil &&
				!errors.Is(err, http.ErrNotSupported) {
				return
			}
			if _, err := fmt.Fprint(w, ": hb\n\n"); err != nil {
				if errors.Is(err, os.ErrDeadlineExceeded) {
					s.subsDropped.Add(1)
				}
				return
			}
			if err := rc.Flush(); err != nil && !errors.Is(err, http.ErrNotSupported) {
				return
			}
		case <-pub:
		}
		// Re-arm before reading so a publication landing between the read
		// and the next select wakes the loop immediately.
		pub = s.b.Published()
		v = s.b.View()
		s.ring.add(v)
		if v.Epoch() == lastEpoch {
			continue
		}
		ev := s.diff(v, &filter, sent)
		if len(ev.Changes) == 0 {
			// All movement below min_delta: keep lastEpoch stale so the
			// skipped count stays honest when a change finally clears it.
			continue
		}
		ev.Skipped = v.Epoch() - lastEpoch - 1
		lastEpoch = v.Epoch()
		if err := writeEvent("delta", ev.Epoch, ev); err != nil {
			return
		}
	}
}

// collectSent seeds a subscriber's sent-state map with the filtered
// facts of one view (the state the client is assumed to already hold).
func collectSent(v View, filter *subFilter, sent map[string]map[string]sentFact) {
	for _, rel := range v.Relations() {
		if !filter.wantRel(rel) {
			continue
		}
		m := sent[rel]
		if m == nil {
			m = make(map[string]sentFact)
			sent[rel] = m
		}
		for _, f := range v.Facts(rel) {
			k := factKey(f.Tuple)
			if filter.tupleKey != "" && k != filter.tupleKey {
				continue
			}
			m[k] = sentFact{p: f.Probability, known: f.Known, evidence: f.Evidence}
		}
	}
}

// diff computes the delta event between a subscriber's last-sent state
// and the current view, updating sent in place for every emitted change
// (changes below the min_delta floor keep their old sent state, so small
// drifts accumulate and eventually clear the floor).
func (s *Server) diff(v View, filter *subFilter, sent map[string]map[string]sentFact) deltaEvent {
	ev := deltaEvent{Epoch: v.Epoch()}
	seen := make(map[string]bool, len(sent))
	for _, rel := range v.Relations() {
		if !filter.wantRel(rel) {
			continue
		}
		seen[rel] = true
		m := sent[rel]
		if m == nil {
			m = make(map[string]sentFact)
			sent[rel] = m
		}
		live := make(map[string]bool, len(m))
		for _, f := range v.Facts(rel) {
			k := factKey(f.Tuple)
			if filter.tupleKey != "" && k != filter.tupleKey {
				continue
			}
			live[k] = true
			old, existed := m[k]
			cur := sentFact{p: f.Probability, known: f.Known, evidence: f.Evidence}
			switch {
			case !existed:
				ev.Changes = append(ev.Changes, Change{
					Relation: rel, Tuple: f.Tuple,
					Probability: f.Probability, Known: f.Known, Evidence: f.Evidence,
				})
			case old.known != cur.known || old.evidence != cur.evidence ||
				(cur.known && abs(cur.p-old.p) >= filter.minDelta && cur.p != old.p):
				ev.Changes = append(ev.Changes, Change{
					Relation: rel, Tuple: f.Tuple,
					Probability: f.Probability, Known: f.Known, Evidence: f.Evidence,
					Delta: cur.p - old.p,
				})
			default:
				continue
			}
			m[k] = cur
		}
		for k, old := range m {
			if live[k] {
				continue
			}
			ev.Changes = append(ev.Changes, Change{
				Relation: rel, Tuple: strings.Split(k, "\x00"),
				Delta: -old.p, Removed: true,
			})
			delete(m, k)
		}
	}
	// Relations that vanished entirely (every fact retracted).
	for rel, m := range sent {
		if seen[rel] || len(m) == 0 {
			continue
		}
		if !filter.wantRel(rel) {
			continue
		}
		for k, old := range m {
			ev.Changes = append(ev.Changes, Change{
				Relation: rel, Tuple: strings.Split(k, "\x00"),
				Delta: -old.p, Removed: true,
			})
			delete(m, k)
		}
	}
	return ev
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Package serve is the KB's network serving tier: an HTTP/JSON front
// end over the snapshot-isolated read API, the coalescing update queue,
// and a streaming subscription endpoint that pushes per-fact marginal
// deltas on every snapshot publication.
//
// The package is deliberately decoupled from the root deepdive package
// through the Backend interface (deepdive.KB.Serve supplies the adapter)
// so the HTTP layer stays testable against a fake KB and the root
// package stays free of net/http.
//
// # Endpoints
//
//	GET  /v1/health                   liveness + current epoch
//	GET  /v1/stats                    graph + queue + serving statistics
//	GET  /v1/autopilot                quality-autopilot state (snapshot-frozen)
//	GET  /v1/marginal?relation=R&tuple=a&tuple=b
//	                                  one fact's probability (lock-free point read)
//	GET  /v1/facts?relation=R[&threshold=0.9]
//	                                  bulk fact table of one relation
//	POST /v1/update[?wait=1]          submit an update through the queue;
//	                                  wait=1 blocks for the batch's UpdateResult
//	GET  /v1/subscribe?...            SSE stream of per-fact marginal deltas
//
// Every read endpoint serves straight off the current snapshot — an
// atomic pointer load on the Backend side — and never touches a KB
// write lock. See the package's handler documentation and the README
// "Network serving" section for the subscription semantics.
package serve

import "context"

// Fact is one fact of a snapshot relation on the wire.
type Fact struct {
	Tuple []string `json:"tuple"`
	// Probability is the fact's marginal (evidence facts report their
	// supervised 0/1 value). Meaningless when Known is false.
	Probability float64 `json:"probability"`
	// Known is false when no inference run has covered the fact yet —
	// e.g. on a partial-progress snapshot published between a batch's
	// graph commit and its inference.
	Known    bool `json:"known"`
	Evidence bool `json:"evidence,omitempty"`
}

// Update is the wire form of one KB update: rule source and/or inserted
// and deleted tuples per relation.
type Update struct {
	RuleSource string                `json:"rule_source,omitempty"`
	Inserts    map[string][][]string `json:"inserts,omitempty"`
	Deletes    map[string][][]string `json:"deletes,omitempty"`
}

// Empty reports whether the update carries no work.
func (u *Update) Empty() bool {
	return u.RuleSource == "" && len(u.Inserts) == 0 && len(u.Deletes) == 0
}

// UpdateResult is the wire form of a batch's application report.
type UpdateResult struct {
	Epoch uint64 `json:"epoch"`
	// IntermediateEpoch is the partial-progress snapshot published after
	// the batch's graph commit (0 when none was).
	IntermediateEpoch uint64  `json:"intermediate_epoch,omitempty"`
	Coalesced         int     `json:"coalesced"`
	Strategy          string  `json:"strategy"`
	Acceptance        float64 `json:"acceptance"`
	Probe             float64 `json:"probe"`
	ProbeReused       bool    `json:"probe_reused,omitempty"`
	NewVars           int     `json:"new_vars"`
	NewFactors        int     `json:"new_factors"`
	GroundMillis      float64 `json:"ground_ms"`
	LearnMillis       float64 `json:"learn_ms"`
	InferMillis       float64 `json:"infer_ms"`
}

// QueueStats is the wire form of the update queue's counters. The
// field set and order mirror deepdive.QueueStats exactly — the adapter
// converts by struct conversion.
type QueueStats struct {
	Pending int `json:"pending"`
	// Capacity is the queue's backpressure bound (0 = unbounded).
	Capacity int    `json:"capacity,omitempty"`
	Batches  uint64 `json:"batches"`
	Applied  uint64 `json:"applied"`
	// AvgBatchMillis is the EWMA of recent batch apply wall times; the
	// Retry-After hint under saturation is Pending × AvgBatchMillis.
	AvgBatchMillis float64 `json:"avg_batch_ms,omitempty"`
	Closed         bool    `json:"closed,omitempty"`
}

// HealthInfo is the backend's degraded-mode report behind /v1/health:
// the KB health state machine, WAL status, and self-repair counters.
type HealthInfo struct {
	// State is the KB health state: "healthy", "durability-degraded", or
	// "read-only". Non-durable KBs are always "healthy".
	State string `json:"state"`
	// Durable reports whether a data directory is configured at all.
	Durable bool `json:"durable"`
	// WALBroken reports an incomplete durable chain (updates refused).
	WALBroken bool `json:"wal_broken,omitempty"`
	// AutoRepair / Repairing report the background repair loop's
	// configuration and liveness; the counters its history.
	AutoRepair     bool   `json:"auto_repair"`
	Repairing      bool   `json:"repairing,omitempty"`
	RepairAttempts uint64 `json:"repair_attempts,omitempty"`
	RepairFailures uint64 `json:"repair_failures,omitempty"`
	AutoRepairs    uint64 `json:"auto_repairs,omitempty"`
}

// StatusError is a backend refusal with a concrete HTTP mapping: the
// status code, a machine-readable error code for the JSON body, and an
// optional Retry-After hint in seconds. The update handler unwraps it
// with errors.As; refusals without one fall back to 409.
type StatusError struct {
	Status     int
	Code       string
	RetryAfter int // seconds; 0 omits the header
	Msg        string
}

func (e *StatusError) Error() string { return e.Msg }

// View is one immutable snapshot of the KB as the HTTP layer consumes
// it. Implementations must be safe for concurrent use and must never
// block on KB writers (the deepdive adapter wraps an immutable
// Snapshot).
type View interface {
	// Epoch is the snapshot's publication generation (monotone).
	Epoch() uint64
	// Relations lists the relations with live facts, sorted.
	Relations() []string
	// Facts enumerates one relation's facts in stable order.
	Facts(relation string) []Fact
	// Marginal is the point read behind /v1/marginal.
	Marginal(relation string, tuple []string) (float64, bool)
	// Stats returns the JSON-marshalable graph statistics blob.
	Stats() any
}

// Backend is the narrow surface the HTTP layer needs from a KB. All
// methods must be safe for concurrent use; View and Published must not
// block on writers.
type Backend interface {
	// View returns the current snapshot (an atomic load on the KB side).
	View() View
	// Published returns a channel closed at the next snapshot
	// publication. Subscribers acquire the channel before reading the
	// view so no publication is missed (see deepdive.KB.Published).
	Published() <-chan struct{}
	// Submit routes an update into the KB's coalescing queue under ctx.
	// With wait, it blocks until the update's batch is applied (or ctx
	// is cancelled) and returns the batch result; without, it returns
	// (nil, nil) as soon as the update is enqueued.
	Submit(ctx context.Context, u Update, wait bool) (*UpdateResult, error)
	// Autopilot returns the JSON-marshalable autopilot state frozen into
	// the latest snapshot (nil before materialization).
	Autopilot() any
	// QueueStats reports the update queue's counters.
	QueueStats() QueueStats
	// Health reports the KB's degraded-mode state (never blocks on
	// writers; liveness must stay observable through any fault).
	Health() HealthInfo
}

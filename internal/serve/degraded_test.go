package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// postUpdate posts one valid update body and returns the response (caller
// closes the body).
func postUpdate(t *testing.T, url string, wait bool) *http.Response {
	t.Helper()
	u := url + "/v1/update"
	if wait {
		u += "?wait=1"
	}
	resp, err := http.Post(u, "application/json",
		strings.NewReader(`{"inserts": {"Sentence": [["s1", "text"]]}}`))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeErr(t *testing.T, resp *http.Response) map[string]string {
	t.Helper()
	defer resp.Body.Close()
	var body map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("bad error JSON: %v", err)
	}
	return body
}

// TestOverloadShedding pins the admission gate: a saturated queue sheds
// updates with 429 + a Retry-After derived from the backlog drain
// estimate, before the body ever reaches Submit.
func TestOverloadShedding(t *testing.T) {
	b := newFakeBackend(baseView())
	submitted := 0
	b.submit = func(ctx context.Context, u Update, wait bool) (*UpdateResult, error) {
		submitted++
		return &UpdateResult{Epoch: 2}, nil
	}
	// 8 pending × 500ms per batch = 4s drain estimate.
	b.mu.Lock()
	b.stats = QueueStats{Pending: 8, Capacity: 8, AvgBatchMillis: 500}
	b.mu.Unlock()
	srv := New(b, Options{})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	resp := postUpdate(t, ts.URL, true)
	if resp.StatusCode != 429 {
		t.Fatalf("saturated update: %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "4" {
		t.Fatalf("Retry-After = %q, want 4 (8 pending x 500ms)", ra)
	}
	if body := decodeErr(t, resp); body["code"] != "queue_saturated" {
		t.Fatalf("error code = %q, want queue_saturated", body["code"])
	}
	if submitted != 0 {
		t.Fatal("shed update reached Submit")
	}
	if srv.shed.Load() != 1 {
		t.Fatalf("shed counter = %d, want 1", srv.shed.Load())
	}

	// Below capacity the gate opens again.
	b.mu.Lock()
	b.stats = QueueStats{Pending: 3, Capacity: 8, AvgBatchMillis: 500}
	b.mu.Unlock()
	resp = postUpdate(t, ts.URL, true)
	resp.Body.Close()
	if resp.StatusCode != 200 || submitted != 1 {
		t.Fatalf("post-pressure update: %d (submitted %d), want 200/1", resp.StatusCode, submitted)
	}
}

// TestRetryAfterSeconds pins the hint's clamps.
func TestRetryAfterSeconds(t *testing.T) {
	cases := []struct {
		qs   QueueStats
		want int
	}{
		{QueueStats{Pending: 8, AvgBatchMillis: 0}, 1},      // no estimate yet
		{QueueStats{Pending: 1, AvgBatchMillis: 10}, 1},     // sub-second clamps up
		{QueueStats{Pending: 8, AvgBatchMillis: 500}, 4},    // the honest middle
		{QueueStats{Pending: 500, AvgBatchMillis: 900}, 60}, // capped
	}
	for _, c := range cases {
		if got := retryAfterSeconds(c.qs); got != c.want {
			t.Errorf("retryAfterSeconds(%+v) = %d, want %d", c.qs, got, c.want)
		}
	}
}

// TestStatusErrorMapping pins the typed-refusal wire surface: a backend
// StatusError carries its status, code, and Retry-After through the
// update handler; untyped errors stay the generic 409.
func TestStatusErrorMapping(t *testing.T) {
	b := newFakeBackend(baseView())
	var refusal error
	b.submit = func(ctx context.Context, u Update, wait bool) (*UpdateResult, error) {
		return nil, refusal
	}
	ts := testServer(t, b, Options{})

	cases := []struct {
		err        error
		status     int
		code       string
		retryAfter string
	}{
		{&StatusError{Status: 503, Code: "durability_suspended", RetryAfter: 2,
			Msg: "durable chain broken"}, 503, "durability_suspended", "2"},
		{&StatusError{Status: 503, Code: "read_only",
			Msg: "repair failed repeatedly"}, 503, "read_only", ""},
		{&StatusError{Status: 503, Code: "shutting_down",
			Msg: "queue closed"}, 503, "shutting_down", ""},
	}
	for _, c := range cases {
		refusal = c.err
		resp := postUpdate(t, ts.URL, true)
		if resp.StatusCode != c.status {
			t.Fatalf("%s: status %d, want %d", c.code, resp.StatusCode, c.status)
		}
		if ra := resp.Header.Get("Retry-After"); ra != c.retryAfter {
			t.Fatalf("%s: Retry-After %q, want %q", c.code, ra, c.retryAfter)
		}
		if body := decodeErr(t, resp); body["code"] != c.code {
			t.Fatalf("error code %q, want %q", body["code"], c.code)
		}
	}

	// An untyped apply error stays the generic conflict: retrying
	// unchanged will not help, and no Retry-After pretends otherwise.
	b.submit = func(ctx context.Context, u Update, wait bool) (*UpdateResult, error) {
		return nil, errInjectedApply
	}
	resp := postUpdate(t, ts.URL, true)
	if resp.StatusCode != 409 {
		t.Fatalf("untyped refusal: %d, want 409", resp.StatusCode)
	}
	resp.Body.Close()

	// The no-wait path surfaces typed refusals too (a closed queue must
	// not be acknowledged 202).
	b.submit = func(ctx context.Context, u Update, wait bool) (*UpdateResult, error) {
		return nil, &StatusError{Status: 503, Code: "shutting_down", Msg: "queue closed"}
	}
	resp = postUpdate(t, ts.URL, false)
	if resp.StatusCode != 503 {
		t.Fatalf("no-wait refusal: %d, want 503", resp.StatusCode)
	}
	if body := decodeErr(t, resp); body["code"] != "shutting_down" {
		t.Fatalf("no-wait code = %q, want shutting_down", body["code"])
	}
}

type injectedApplyError struct{}

func (injectedApplyError) Error() string { return "injected apply error" }

var errInjectedApply = injectedApplyError{}

// TestUpdateTimeout pins the per-endpoint update bound: a Submit that
// outlives Options.UpdateTimeout comes back 503 update_timeout while the
// client is still connected.
func TestUpdateTimeout(t *testing.T) {
	b := newFakeBackend(baseView())
	b.submit = func(ctx context.Context, u Update, wait bool) (*UpdateResult, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	ts := testServer(t, b, Options{UpdateTimeout: 50 * time.Millisecond})

	start := time.Now()
	resp := postUpdate(t, ts.URL, true)
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("timeout took %v", d)
	}
	if resp.StatusCode != 503 {
		t.Fatalf("timed-out update: %d, want 503", resp.StatusCode)
	}
	if body := decodeErr(t, resp); body["code"] != "update_timeout" {
		t.Fatalf("error code = %q, want update_timeout", body["code"])
	}
}

// TestHealthDegradedReporting pins liveness-vs-readiness semantics: the
// health endpoint answers 200 through every KB state (restarting a
// degraded-but-serving KB would only lose repair progress) and carries
// the full degraded-mode report in the body.
func TestHealthDegradedReporting(t *testing.T) {
	b := newFakeBackend(baseView())
	b.mu.Lock()
	b.health = HealthInfo{
		State: "durability-degraded", Durable: true, WALBroken: true,
		AutoRepair: true, Repairing: true, RepairAttempts: 3, RepairFailures: 3,
	}
	b.mu.Unlock()
	ts := testServer(t, b, Options{})

	code, body := get(t, ts.URL+"/v1/health")
	if code != 200 {
		t.Fatalf("degraded liveness: %d, want 200", code)
	}
	if body["state"] != "durability-degraded" {
		t.Fatalf("health state = %v", body["state"])
	}
	h := body["health"].(map[string]any)
	if h["wal_broken"] != true || h["repairing"] != true || h["repair_failures"] != float64(3) {
		t.Fatalf("health report: %v", h)
	}

	// A degraded KB is still READY — it serves reads and sheds writes
	// with precise 503s of its own.
	if code, _ := get(t, ts.URL+"/v1/health?ready=1"); code != 200 {
		t.Fatalf("degraded readiness: %d, want 200", code)
	}

	// /v1/stats carries the same report for dashboards.
	code, body = get(t, ts.URL+"/v1/stats")
	if code != 200 || body["health"].(map[string]any)["state"] != "durability-degraded" {
		t.Fatalf("stats health: %d %v", code, body["health"])
	}
}

// TestDrain pins the graceful-drain protocol end to end: readiness fails,
// new updates and subscriptions are refused shutting_down, live streams
// end with a "drain" event, and plain reads keep serving.
func TestDrain(t *testing.T) {
	b := newFakeBackend(baseView())
	srv := New(b, Options{Heartbeat: time.Hour})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	c := dialSSE(t, ts.URL+"/v1/subscribe?relation=HasSpouse")
	if name, _ := c.next(t); name != "snapshot" {
		t.Fatal("no snapshot before drain")
	}

	srv.StartDrain()
	srv.StartDrain() // idempotent

	// The live stream ends with a drain event after its in-flight write.
	name, data := c.next(t)
	if name != "drain" {
		t.Fatalf("stream event %q, want drain (data %s)", name, data)
	}
	deadline := time.Now().Add(10 * time.Second)
	for srv.Subscribers() > 0 {
		if time.Now().After(deadline) {
			t.Fatal("drained stream never ended")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Liveness stays 200; readiness fails with status draining.
	code, body := get(t, ts.URL+"/v1/health")
	if code != 200 || body["draining"] != true {
		t.Fatalf("draining liveness: %d %v", code, body)
	}
	code, body = get(t, ts.URL+"/v1/health?ready=1")
	if code != 503 || body["status"] != "draining" {
		t.Fatalf("draining readiness: %d %v", code, body)
	}

	// New updates and subscriptions are refused with the typed code.
	resp := postUpdate(t, ts.URL, true)
	if resp.StatusCode != 503 {
		t.Fatalf("draining update: %d, want 503", resp.StatusCode)
	}
	if body := decodeErr(t, resp); body["code"] != "shutting_down" {
		t.Fatalf("draining update code = %q", body["code"])
	}
	resp, err := http.Get(ts.URL + "/v1/subscribe")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 503 {
		t.Fatalf("draining subscribe: %d, want 503", resp.StatusCode)
	}
	if body := decodeErr(t, resp); body["code"] != "shutting_down" {
		t.Fatalf("draining subscribe code = %q", body["code"])
	}

	// Plain reads keep serving through the drain.
	if code, _ := get(t, ts.URL+"/v1/facts?relation=HasSpouse"); code != 200 {
		t.Fatalf("draining read: %d, want 200", code)
	}
}

// dialSSEResume dials the subscription endpoint with a Last-Event-ID
// header, emulating an EventSource client reconnecting.
func dialSSEResume(t *testing.T, url, lastEventID string) *sseClient {
	t.Helper()
	req, err := http.NewRequest("GET", url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		resp.Body.Close()
		t.Fatalf("subscribe: %d", resp.StatusCode)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return &sseClient{resp: resp, rd: bufio.NewReader(resp.Body)}
}

// TestSubscribeResume pins Last-Event-ID resumption: a reconnecting
// subscriber whose epoch is still in the resume window gets a "resumed"
// event plus one catch-up delta carrying exactly the movement it missed,
// instead of the full snapshot resync.
func TestSubscribeResume(t *testing.T) {
	b := newFakeBackend(baseView())
	srv := New(b, Options{Heartbeat: time.Hour})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	// First connection observes epochs 1 and 2, seeding the resume ring.
	c := dialSSE(t, ts.URL+"/v1/subscribe?relation=HasSpouse")
	if name, _ := c.next(t); name != "snapshot" {
		t.Fatal("no snapshot event")
	}
	b.publish(&fakeView{epoch: 2, rels: map[string][]Fact{
		"HasSpouse": {
			{Tuple: []string{"Alan", "Beth"}, Probability: 0.95, Known: true},
			{Tuple: []string{"Eve", "Frank"}, Probability: 0.3, Known: true},
		},
	}})
	if ev := c.nextDelta(t); ev.Epoch != 2 {
		t.Fatalf("first client delta: %+v", ev)
	}
	c.resp.Body.Close() // the client "loses" its connection

	// The KB moves on while the client is gone.
	b.publish(&fakeView{epoch: 3, rels: map[string][]Fact{
		"HasSpouse": {
			{Tuple: []string{"Alan", "Beth"}, Probability: 0.97, Known: true},
			{Tuple: []string{"Eve", "Frank"}, Probability: 0.3, Known: true},
		},
	}})

	// Reconnect with the epoch the client already holds.
	rc := dialSSEResume(t, ts.URL+"/v1/subscribe?relation=HasSpouse", "2")
	name, data := rc.next(t)
	if name != "resumed" {
		t.Fatalf("first event %q, want resumed (data %s)", name, data)
	}
	var res map[string]uint64
	if err := json.Unmarshal([]byte(data), &res); err != nil || res["epoch"] != 2 {
		t.Fatalf("resumed payload: %s (%v)", data, err)
	}
	ev := rc.nextDelta(t)
	if ev.Epoch != 3 || len(ev.Changes) != 1 {
		t.Fatalf("catch-up delta: %+v", ev)
	}
	if ch := ev.Changes[0]; factKey(ch.Tuple) != factKey([]string{"Alan", "Beth"}) ||
		abs(ch.Delta-0.02) > 1e-12 {
		t.Fatalf("catch-up change: %+v (want the 0.95->0.97 movement)", ch)
	}
	if srv.subsResumed.Load() != 1 {
		t.Fatalf("resume counter = %d, want 1", srv.subsResumed.Load())
	}

	// The resumed stream keeps receiving ordinary deltas.
	b.publish(&fakeView{epoch: 4, rels: map[string][]Fact{
		"HasSpouse": {
			{Tuple: []string{"Alan", "Beth"}, Probability: 0.5, Known: true},
			{Tuple: []string{"Eve", "Frank"}, Probability: 0.3, Known: true},
		},
	}})
	if ev := rc.nextDelta(t); ev.Epoch != 4 || len(ev.Changes) != 1 {
		t.Fatalf("post-resume delta: %+v", ev)
	}
}

// TestSubscribeResumeFallback pins the aged-out path: a Last-Event-ID no
// longer in the window (or from the future) falls back to the full
// snapshot resync instead of failing the stream.
func TestSubscribeResumeFallback(t *testing.T) {
	b := newFakeBackend(baseView())
	srv := New(b, Options{Heartbeat: time.Hour, ResumeWindow: 1})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	// Seed the 1-deep ring with epoch 1, then age it out with epoch 2.
	c := dialSSE(t, ts.URL+"/v1/subscribe")
	c.next(t)
	b.publish(&fakeView{epoch: 2, rels: map[string][]Fact{
		"HasSpouse": {
			{Tuple: []string{"Alan", "Beth"}, Probability: 0.95, Known: true},
			{Tuple: []string{"Eve", "Frank"}, Probability: 0.3, Known: true},
		},
	}})
	c.nextDelta(t)
	c.resp.Body.Close()

	for _, tok := range []string{"1", "999", "not-an-epoch"} {
		rc := dialSSEResume(t, ts.URL+"/v1/subscribe", tok)
		name, data := rc.next(t)
		if name != "snapshot" {
			t.Fatalf("Last-Event-ID %q: first event %q, want snapshot fallback", tok, name)
		}
		var snap snapshotEvent
		if err := json.Unmarshal([]byte(data), &snap); err != nil || snap.Epoch != 2 {
			t.Fatalf("Last-Event-ID %q: fallback snapshot %s", tok, data)
		}
		rc.resp.Body.Close()
	}
	if srv.subsResumed.Load() != 0 {
		t.Fatalf("fallbacks counted as resumes: %d", srv.subsResumed.Load())
	}

	// A negative window disables resumption outright.
	srv2 := New(b, Options{Heartbeat: time.Hour, ResumeWindow: -1})
	ts2 := httptest.NewServer(srv2.Handler())
	t.Cleanup(ts2.Close)
	c2 := dialSSE(t, ts2.URL+"/v1/subscribe")
	c2.next(t)
	c2.resp.Body.Close()
	rc := dialSSEResume(t, ts2.URL+"/v1/subscribe", "2")
	if name, _ := rc.next(t); name != "snapshot" {
		t.Fatalf("disabled resume: first event %q, want snapshot", name)
	}
}

// TestSSEEventIDs pins that every snapshot/delta event carries an SSE id
// line with the epoch it brings the subscriber to — the token clients
// echo back as Last-Event-ID.
func TestSSEEventIDs(t *testing.T) {
	b := newFakeBackend(baseView())
	ts := testServer(t, b, Options{Heartbeat: time.Hour})

	resp, err := http.Get(ts.URL + "/v1/subscribe?relation=HasSpouse")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	rd := bufio.NewReader(resp.Body)

	readEvent := func() (id, name string) {
		t.Helper()
		done := make(chan struct{})
		go func() {
			defer close(done)
			for {
				line, err := rd.ReadString('\n')
				if err != nil {
					return
				}
				line = strings.TrimRight(line, "\n")
				switch {
				case strings.HasPrefix(line, "id: "):
					id = strings.TrimPrefix(line, "id: ")
				case strings.HasPrefix(line, "event: "):
					name = strings.TrimPrefix(line, "event: ")
				case line == "" && name != "":
					return
				}
			}
		}()
		select {
		case <-done:
			return id, name
		case <-time.After(5 * time.Second):
			t.Fatal("no event within 5s")
			return "", ""
		}
	}

	if id, name := readEvent(); name != "snapshot" || id != "1" {
		t.Fatalf("snapshot id line: event %q id %q, want snapshot/1", name, id)
	}
	b.publish(&fakeView{epoch: 7, rels: map[string][]Fact{
		"HasSpouse": {
			{Tuple: []string{"Alan", "Beth"}, Probability: 0.5, Known: true},
		},
	}})
	if id, name := readEvent(); name != "delta" || id != "7" {
		t.Fatalf("delta id line: event %q id %q, want delta/7", name, id)
	}
}

package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"
)

// Options configure the HTTP serving tier.
type Options struct {
	// MinDelta is the default minimum |Δ probability| a subscription
	// pushes; per-request ?min_delta overrides it. 0 pushes every change.
	MinDelta float64
	// WriteTimeout bounds one subscriber event write: a client that
	// stalls longer than this is dropped (it reconnects for a fresh
	// resync). Default 30s.
	WriteTimeout time.Duration
	// Heartbeat is the idle keep-alive interval on subscription streams
	// (an SSE comment line, so intermediaries do not sever quiet
	// connections). Default 15s.
	Heartbeat time.Duration
	// MaxSubscribers caps concurrent subscription streams (503 beyond).
	// 0 means unbounded.
	MaxSubscribers int
}

func (o Options) fill() Options {
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = 30 * time.Second
	}
	if o.Heartbeat <= 0 {
		o.Heartbeat = 15 * time.Second
	}
	return o
}

// Server is the HTTP serving tier over one Backend. Construct with New;
// expose via Handler (testable without a listener) or an http.Server of
// the caller's choosing.
type Server struct {
	b    Backend
	opts Options
	mux  *http.ServeMux

	subscribers atomic.Int64 // live subscription streams
	subsTotal   atomic.Uint64
	subsDropped atomic.Uint64 // streams dropped for stalling past WriteTimeout
	reads       atomic.Uint64 // read-endpoint requests served
	updates     atomic.Uint64 // update POSTs accepted
}

// New builds the serving tier over b.
func New(b Backend, opts Options) *Server {
	s := &Server{b: b, opts: opts.fill(), mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /v1/health", s.handleHealth)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/autopilot", s.handleAutopilot)
	s.mux.HandleFunc("GET /v1/marginal", s.handleMarginal)
	s.mux.HandleFunc("GET /v1/facts", s.handleFacts)
	s.mux.HandleFunc("POST /v1/update", s.handleUpdate)
	s.mux.HandleFunc("GET /v1/subscribe", s.handleSubscribe)
	return s
}

// Handler returns the root handler (mountable under httptest or any
// http.Server).
func (s *Server) Handler() http.Handler { return s.mux }

// Subscribers reports the number of live subscription streams.
func (s *Server) Subscribers() int { return int(s.subscribers.Load()) }

// writeJSON writes one JSON response body.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// writeErr writes one JSON error body.
func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok",
		"epoch":  s.b.View().Epoch(),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	v := s.b.View()
	writeJSON(w, http.StatusOK, map[string]any{
		"epoch":     v.Epoch(),
		"relations": v.Relations(),
		"graph":     v.Stats(),
		"queue":     s.b.QueueStats(),
		"serving": map[string]any{
			"subscribers":         s.subscribers.Load(),
			"subscriptions_total": s.subsTotal.Load(),
			"subscribers_dropped": s.subsDropped.Load(),
			"reads":               s.reads.Load(),
			"updates_accepted":    s.updates.Load(),
		},
	})
}

func (s *Server) handleAutopilot(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"epoch":     s.b.View().Epoch(),
		"autopilot": s.b.Autopilot(),
	})
}

// handleMarginal is the wire point read: one fact's probability off the
// current snapshot. The whole request path is lock-free on the KB side —
// an atomic snapshot load plus a map lookup.
func (s *Server) handleMarginal(w http.ResponseWriter, r *http.Request) {
	s.reads.Add(1)
	q := r.URL.Query()
	rel := q.Get("relation")
	tuple := q["tuple"]
	if rel == "" || len(tuple) == 0 {
		writeErr(w, http.StatusBadRequest, "relation and at least one tuple parameter required")
		return
	}
	v := s.b.View()
	p, ok := v.Marginal(rel, tuple)
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]any{
			"relation": rel, "tuple": tuple, "known": false, "epoch": v.Epoch(),
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"relation": rel, "tuple": tuple, "probability": p, "known": true, "epoch": v.Epoch(),
	})
}

// handleFacts is the bulk read: one relation's fact table, optionally
// thresholded (facts with Known && Probability >= threshold, plus
// supervised-true evidence).
func (s *Server) handleFacts(w http.ResponseWriter, r *http.Request) {
	s.reads.Add(1)
	q := r.URL.Query()
	rel := q.Get("relation")
	if rel == "" {
		writeErr(w, http.StatusBadRequest, "relation parameter required")
		return
	}
	v := s.b.View()
	facts := v.Facts(rel)
	if ts := q.Get("threshold"); ts != "" {
		th, err := strconv.ParseFloat(ts, 64)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "bad threshold %q", ts)
			return
		}
		kept := facts[:0:0]
		for _, f := range facts {
			if f.Known && f.Probability > th {
				kept = append(kept, f)
			}
		}
		facts = kept
	}
	if facts == nil {
		facts = []Fact{}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"relation": rel, "epoch": v.Epoch(), "facts": facts,
	})
}

// handleUpdate feeds one update into the KB's coalescing queue. The
// request body is the JSON Update; with ?wait=1 the response carries the
// applied batch's UpdateResult (epoch, coalesced width, strategy), and
// the wait runs under the request context — a disconnected client
// retracts a still-pending update per the queue's SubmitCtx contract.
// Without wait, a 202 acknowledges enqueueing only; apply errors surface
// through /v1/stats and waiting submitters.
func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	var u Update
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&u); err != nil {
		writeErr(w, http.StatusBadRequest, "bad update body: %v", err)
		return
	}
	if u.Empty() {
		writeErr(w, http.StatusBadRequest, "empty update: provide rule_source, inserts, or deletes")
		return
	}
	for rel, ts := range u.Inserts {
		for _, t := range ts {
			if len(t) == 0 {
				writeErr(w, http.StatusBadRequest, "empty tuple in inserts[%q]", rel)
				return
			}
		}
	}
	for rel, ts := range u.Deletes {
		for _, t := range ts {
			if len(t) == 0 {
				writeErr(w, http.StatusBadRequest, "empty tuple in deletes[%q]", rel)
				return
			}
		}
	}
	wait := r.URL.Query().Get("wait") == "1"
	res, err := s.b.Submit(r.Context(), u, wait)
	if err != nil {
		if r.Context().Err() != nil {
			// Client went away mid-wait; nothing useful to write.
			return
		}
		writeErr(w, http.StatusConflict, "update failed: %v", err)
		return
	}
	s.updates.Add(1)
	if !wait {
		writeJSON(w, http.StatusAccepted, map[string]string{"status": "queued"})
		return
	}
	writeJSON(w, http.StatusOK, res)
}

package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Options configure the HTTP serving tier.
type Options struct {
	// MinDelta is the default minimum |Δ probability| a subscription
	// pushes; per-request ?min_delta overrides it. 0 pushes every change.
	MinDelta float64
	// WriteTimeout bounds one subscriber event write: a client that
	// stalls longer than this is dropped (it reconnects for a fresh
	// resync). Default 30s.
	WriteTimeout time.Duration
	// Heartbeat is the idle keep-alive interval on subscription streams
	// (an SSE comment line, so intermediaries do not sever quiet
	// connections). Default 15s.
	Heartbeat time.Duration
	// MaxSubscribers caps concurrent subscription streams (503 beyond).
	// 0 means unbounded.
	MaxSubscribers int
	// ReadTimeout bounds one read-endpoint request (stats, autopilot,
	// marginal, facts). Reads are lock-free on the KB side, so this is a
	// safety net against pathological response sizes, not a queue-wait
	// bound. 0 (the default) means unbounded. /v1/health is exempt:
	// liveness must answer even when everything else is drowning.
	ReadTimeout time.Duration
	// UpdateTimeout bounds one POST /v1/update request, including the
	// ?wait=1 wait for the batch result. On expiry the handler responds
	// 503 update_timeout — the update may still apply if its batch was
	// already taken (a still-pending update is retracted). 0 (the
	// default) waits as long as the client does.
	UpdateTimeout time.Duration
	// ResumeWindow is how many recently published views the server holds
	// for SSE Last-Event-ID resumption: a subscriber reconnecting with an
	// epoch still in the window gets one catch-up delta instead of a full
	// snapshot resync. 0 selects the default (32); negative disables
	// resumption.
	ResumeWindow int
}

func (o Options) fill() Options {
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = 30 * time.Second
	}
	if o.Heartbeat <= 0 {
		o.Heartbeat = 15 * time.Second
	}
	if o.ResumeWindow == 0 {
		o.ResumeWindow = 32
	}
	return o
}

// Server is the HTTP serving tier over one Backend. Construct with New;
// expose via Handler (testable without a listener) or an http.Server of
// the caller's choosing.
type Server struct {
	b    Backend
	opts Options
	mux  *http.ServeMux

	subscribers atomic.Int64 // live subscription streams
	subsTotal   atomic.Uint64
	subsDropped atomic.Uint64 // streams dropped for stalling past WriteTimeout
	subsResumed atomic.Uint64 // streams resumed from a Last-Event-ID token
	reads       atomic.Uint64 // read-endpoint requests served
	updates     atomic.Uint64 // update POSTs accepted
	shed        atomic.Uint64 // updates refused 429 at the admission gate

	// ring holds recently published views for Last-Event-ID resumption
	// (see hub.go).
	ring resumeRing

	// Drain state: StartDrain flips draining (readiness fails, new
	// updates and subscriptions are refused 503 shutting_down) and closes
	// drainCh, which tells every live subscription loop to finish its
	// current event and end the stream. Reads keep serving until the
	// listener actually closes.
	draining  atomic.Bool
	drainCh   chan struct{}
	drainOnce sync.Once
}

// New builds the serving tier over b.
func New(b Backend, opts Options) *Server {
	s := &Server{b: b, opts: opts.fill(), mux: http.NewServeMux(), drainCh: make(chan struct{})}
	s.ring.cap = s.opts.ResumeWindow
	s.mux.HandleFunc("GET /v1/health", s.handleHealth)
	s.mux.Handle("GET /v1/stats", s.read(s.handleStats))
	s.mux.Handle("GET /v1/autopilot", s.read(s.handleAutopilot))
	s.mux.Handle("GET /v1/marginal", s.read(s.handleMarginal))
	s.mux.Handle("GET /v1/facts", s.read(s.handleFacts))
	s.mux.HandleFunc("POST /v1/update", s.handleUpdate)
	s.mux.HandleFunc("GET /v1/subscribe", s.handleSubscribe)
	return s
}

// read wraps a read handler in the per-endpoint ReadTimeout (no-op when
// unset). Subscriptions and health are never wrapped: one is long-lived
// by design, the other is the liveness probe.
func (s *Server) read(h http.HandlerFunc) http.Handler {
	if s.opts.ReadTimeout <= 0 {
		return h
	}
	return http.TimeoutHandler(h, s.opts.ReadTimeout, `{"error":"read timeout","code":"read_timeout"}`)
}

// Handler returns the root handler (mountable under httptest or any
// http.Server).
func (s *Server) Handler() http.Handler { return s.mux }

// Subscribers reports the number of live subscription streams.
func (s *Server) Subscribers() int { return int(s.subscribers.Load()) }

// StartDrain begins a graceful drain: readiness (GET /v1/health?ready=1)
// starts failing 503 so load balancers stop routing here, new updates
// and new subscriptions are refused with code shutting_down, and every
// live subscription stream ends after its in-flight event. Point reads
// keep serving until the listener closes — a draining server is still
// alive. Idempotent.
func (s *Server) StartDrain() {
	s.drainOnce.Do(func() {
		s.draining.Store(true)
		close(s.drainCh)
	})
}

// Draining reports whether StartDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// retryAfterSeconds derives the Retry-After hint from queue pressure:
// the estimated time to drain the current backlog (pending updates ×
// the EWMA batch wall time), clamped to [1s, 60s].
func retryAfterSeconds(qs QueueStats) int {
	if qs.AvgBatchMillis <= 0 {
		return 1
	}
	sec := int(math.Ceil(float64(qs.Pending) * qs.AvgBatchMillis / 1000))
	if sec < 1 {
		sec = 1
	}
	if sec > 60 {
		sec = 60
	}
	return sec
}

// writeJSON writes one JSON response body.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// writeErr writes one JSON error body.
func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// handleHealth serves both probe semantics over one endpoint:
//
//   - Liveness (default): 200 whenever the process can answer — through
//     DurabilityDegraded, ReadOnly, and a drain alike, because reads
//     keep serving off the snapshot pointer in every one of those
//     states. Restarting a degraded-but-serving KB would only lose its
//     repair progress.
//   - Readiness (?ready=1): 503 once the server is draining — stop
//     routing new work here. A degraded KB is still ready: it serves
//     reads and sheds updates with precise 503s of their own.
//
// The body always carries the full degraded-mode picture: health state
// machine, WAL status, repair counters, and queue depth.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	h := s.b.Health()
	draining := s.draining.Load()
	body := map[string]any{
		"status":   "ok",
		"epoch":    s.b.View().Epoch(),
		"state":    h.State,
		"draining": draining,
		"health":   h,
		"queue":    s.b.QueueStats(),
	}
	if r.URL.Query().Get("ready") == "1" && draining {
		body["status"] = "draining"
		writeJSON(w, http.StatusServiceUnavailable, body)
		return
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	v := s.b.View()
	writeJSON(w, http.StatusOK, map[string]any{
		"epoch":     v.Epoch(),
		"relations": v.Relations(),
		"graph":     v.Stats(),
		"queue":     s.b.QueueStats(),
		"health":    s.b.Health(),
		"serving": map[string]any{
			"subscribers":         s.subscribers.Load(),
			"subscriptions_total": s.subsTotal.Load(),
			"subscribers_dropped": s.subsDropped.Load(),
			"subscribers_resumed": s.subsResumed.Load(),
			"reads":               s.reads.Load(),
			"updates_accepted":    s.updates.Load(),
			"updates_shed":        s.shed.Load(),
			"draining":            s.draining.Load(),
		},
	})
}

func (s *Server) handleAutopilot(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"epoch":     s.b.View().Epoch(),
		"autopilot": s.b.Autopilot(),
	})
}

// handleMarginal is the wire point read: one fact's probability off the
// current snapshot. The whole request path is lock-free on the KB side —
// an atomic snapshot load plus a map lookup.
func (s *Server) handleMarginal(w http.ResponseWriter, r *http.Request) {
	s.reads.Add(1)
	q := r.URL.Query()
	rel := q.Get("relation")
	tuple := q["tuple"]
	if rel == "" || len(tuple) == 0 {
		writeErr(w, http.StatusBadRequest, "relation and at least one tuple parameter required")
		return
	}
	v := s.b.View()
	p, ok := v.Marginal(rel, tuple)
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]any{
			"relation": rel, "tuple": tuple, "known": false, "epoch": v.Epoch(),
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"relation": rel, "tuple": tuple, "probability": p, "known": true, "epoch": v.Epoch(),
	})
}

// handleFacts is the bulk read: one relation's fact table, optionally
// thresholded (facts with Known && Probability >= threshold, plus
// supervised-true evidence).
func (s *Server) handleFacts(w http.ResponseWriter, r *http.Request) {
	s.reads.Add(1)
	q := r.URL.Query()
	rel := q.Get("relation")
	if rel == "" {
		writeErr(w, http.StatusBadRequest, "relation parameter required")
		return
	}
	v := s.b.View()
	facts := v.Facts(rel)
	if ts := q.Get("threshold"); ts != "" {
		th, err := strconv.ParseFloat(ts, 64)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "bad threshold %q", ts)
			return
		}
		kept := facts[:0:0]
		for _, f := range facts {
			if f.Known && f.Probability > th {
				kept = append(kept, f)
			}
		}
		facts = kept
	}
	if facts == nil {
		facts = []Fact{}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"relation": rel, "epoch": v.Epoch(), "facts": facts,
	})
}

// writeStatusErr writes one coded JSON error with its Retry-After hint.
func writeStatusErr(w http.ResponseWriter, se *StatusError) {
	if se.RetryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(se.RetryAfter))
	}
	writeJSON(w, se.Status, map[string]string{"error": se.Msg, "code": se.Code})
}

// handleUpdate feeds one update into the KB's coalescing queue. The
// request body is the JSON Update; with ?wait=1 the response carries the
// applied batch's UpdateResult (epoch, coalesced width, strategy), and
// the wait runs under the request context — a disconnected client
// retracts a still-pending update per the queue's SubmitCtx contract.
// Without wait, a 202 acknowledges enqueueing only; apply errors surface
// through /v1/stats and waiting submitters.
//
// Refusals are typed, so clients can tell back-off from bad-request:
//
//	429 queue_saturated       pending ≥ capacity; Retry-After estimates
//	                          the backlog drain time
//	503 shutting_down         the server is draining (or the queue closed)
//	503 durability_suspended  WAL broken, repair in flight; Retry-After
//	                          hints at the repair backoff
//	503 read_only             repair has failed repeatedly; stop retrying
//	503 update_timeout        Options.UpdateTimeout expired mid-apply
//	409 (generic)             the update itself failed (bad rules, apply
//	                          error): do not retry unchanged
func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeStatusErr(w, &StatusError{Status: http.StatusServiceUnavailable,
			Code: "shutting_down", Msg: "server is draining"})
		return
	}
	// Admission gate: shed before parsing the body — when the queue is at
	// its backpressure bound, Submit would block the handler goroutine;
	// refusing with a drain-time hint keeps the tier's memory bounded and
	// pushes the wait to the client, which can back off or go elsewhere.
	if qs := s.b.QueueStats(); qs.Capacity > 0 && qs.Pending >= qs.Capacity {
		s.shed.Add(1)
		writeStatusErr(w, &StatusError{Status: http.StatusTooManyRequests,
			Code: "queue_saturated", RetryAfter: retryAfterSeconds(qs),
			Msg: fmt.Sprintf("update queue saturated (%d pending / %d capacity)", qs.Pending, qs.Capacity)})
		return
	}
	var u Update
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&u); err != nil {
		writeErr(w, http.StatusBadRequest, "bad update body: %v", err)
		return
	}
	if u.Empty() {
		writeErr(w, http.StatusBadRequest, "empty update: provide rule_source, inserts, or deletes")
		return
	}
	for rel, ts := range u.Inserts {
		for _, t := range ts {
			if len(t) == 0 {
				writeErr(w, http.StatusBadRequest, "empty tuple in inserts[%q]", rel)
				return
			}
		}
	}
	for rel, ts := range u.Deletes {
		for _, t := range ts {
			if len(t) == 0 {
				writeErr(w, http.StatusBadRequest, "empty tuple in deletes[%q]", rel)
				return
			}
		}
	}
	wait := r.URL.Query().Get("wait") == "1"
	ctx := r.Context()
	if d := s.opts.UpdateTimeout; d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	res, err := s.b.Submit(ctx, u, wait)
	if err != nil {
		if r.Context().Err() != nil {
			// Client went away mid-wait; nothing useful to write.
			return
		}
		var se *StatusError
		if errors.As(err, &se) {
			writeStatusErr(w, se)
			return
		}
		if ctx.Err() != nil {
			// The per-endpoint UpdateTimeout expired (the client is still
			// here). The update may still apply if its batch was already
			// taken; a still-pending one was retracted.
			writeStatusErr(w, &StatusError{Status: http.StatusServiceUnavailable,
				Code: "update_timeout", RetryAfter: retryAfterSeconds(s.b.QueueStats()),
				Msg: fmt.Sprintf("update timed out after %s", s.opts.UpdateTimeout)})
			return
		}
		writeErr(w, http.StatusConflict, "update failed: %v", err)
		return
	}
	s.updates.Add(1)
	if !wait {
		writeJSON(w, http.StatusAccepted, map[string]string{"status": "queued"})
		return
	}
	writeJSON(w, http.StatusOK, res)
}

package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeView is an immutable View for handler tests.
type fakeView struct {
	epoch uint64
	rels  map[string][]Fact
}

func (v *fakeView) Epoch() uint64 { return v.epoch }
func (v *fakeView) Relations() []string {
	out := make([]string, 0, len(v.rels))
	for name := range v.rels {
		out = append(out, name)
	}
	return out
}
func (v *fakeView) Facts(rel string) []Fact { return v.rels[rel] }
func (v *fakeView) Marginal(rel string, tuple []string) (float64, bool) {
	k := factKey(tuple)
	for _, f := range v.rels[rel] {
		if factKey(f.Tuple) == k && f.Known {
			return f.Probability, true
		}
	}
	return 0, false
}
func (v *fakeView) Stats() any { return map[string]int{"vars": 1} }

// fakeBackend implements Backend with the same publication contract the
// KB adapter provides: Published returns a channel closed by the next
// publish call.
type fakeBackend struct {
	mu     sync.Mutex
	view   *fakeView
	pubCh  chan struct{}
	submit func(ctx context.Context, u Update, wait bool) (*UpdateResult, error)
	stats  QueueStats // zero value reported as the defaults below
	health HealthInfo // zero value reported as a healthy non-durable KB
}

func newFakeBackend(v *fakeView) *fakeBackend { return &fakeBackend{view: v} }

func (b *fakeBackend) View() View {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.view
}

func (b *fakeBackend) Published() <-chan struct{} {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.pubCh == nil {
		b.pubCh = make(chan struct{})
	}
	return b.pubCh
}

// publish swaps the view and wakes subscribers — the whole operation is
// a mutex-guarded pointer swap plus a channel close, exactly like the
// KB's publishStaged, so its latency is what the stalled-subscriber test
// measures.
func (b *fakeBackend) publish(v *fakeView) {
	b.mu.Lock()
	b.view = v
	if b.pubCh != nil {
		close(b.pubCh)
		b.pubCh = nil
	}
	b.mu.Unlock()
}

func (b *fakeBackend) Submit(ctx context.Context, u Update, wait bool) (*UpdateResult, error) {
	if b.submit != nil {
		return b.submit(ctx, u, wait)
	}
	if !wait {
		return nil, nil
	}
	return &UpdateResult{Epoch: b.View().Epoch() + 1, Coalesced: 1, Strategy: "sampling"}, nil
}

func (b *fakeBackend) Autopilot() any { return map[string]int{"sampling_runs": 2} }

func (b *fakeBackend) QueueStats() QueueStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.stats == (QueueStats{}) {
		return QueueStats{Pending: 0, Batches: 3, Applied: 3}
	}
	return b.stats
}

func (b *fakeBackend) Health() HealthInfo {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.health == (HealthInfo{}) {
		return HealthInfo{State: "healthy"}
	}
	return b.health
}

func baseView() *fakeView {
	return &fakeView{
		epoch: 1,
		rels: map[string][]Fact{
			"HasSpouse": {
				{Tuple: []string{"Alan", "Beth"}, Probability: 0.9, Known: true},
				{Tuple: []string{"Eve", "Frank"}, Probability: 0.3, Known: true},
			},
		},
	}
}

func testServer(t *testing.T, b Backend, o Options) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(New(b, o).Handler())
	t.Cleanup(ts.Close)
	return ts
}

func get(t *testing.T, url string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("GET %s: bad JSON: %v", url, err)
	}
	return resp.StatusCode, body
}

func TestReadEndpoints(t *testing.T) {
	ts := testServer(t, newFakeBackend(baseView()), Options{})

	code, body := get(t, ts.URL+"/v1/health")
	if code != 200 || body["status"] != "ok" || body["epoch"] != float64(1) {
		t.Fatalf("health: %d %v", code, body)
	}

	code, body = get(t, ts.URL+"/v1/marginal?relation=HasSpouse&tuple=Alan&tuple=Beth")
	if code != 200 || body["probability"] != 0.9 || body["known"] != true {
		t.Fatalf("marginal: %d %v", code, body)
	}
	code, body = get(t, ts.URL+"/v1/marginal?relation=HasSpouse&tuple=No&tuple=Body")
	if code != 404 || body["known"] != false {
		t.Fatalf("unknown fact: %d %v", code, body)
	}
	if code, _ = get(t, ts.URL+"/v1/marginal?relation=HasSpouse"); code != 400 {
		t.Fatalf("tupleless marginal: %d, want 400", code)
	}
	if code, _ = get(t, ts.URL+"/v1/marginal?tuple=a"); code != 400 {
		t.Fatalf("relationless marginal: %d, want 400", code)
	}

	code, body = get(t, ts.URL+"/v1/facts?relation=HasSpouse")
	if code != 200 || len(body["facts"].([]any)) != 2 {
		t.Fatalf("facts: %d %v", code, body)
	}
	code, body = get(t, ts.URL+"/v1/facts?relation=HasSpouse&threshold=0.5")
	if code != 200 || len(body["facts"].([]any)) != 1 {
		t.Fatalf("thresholded facts: %d %v", code, body)
	}
	code, body = get(t, ts.URL+"/v1/facts?relation=Nothing")
	if code != 200 || len(body["facts"].([]any)) != 0 {
		t.Fatalf("empty relation: %d %v", code, body)
	}
	if code, _ = get(t, ts.URL+"/v1/facts?relation=HasSpouse&threshold=nan-ish"); code != 400 {
		t.Fatalf("bad threshold: %d, want 400", code)
	}
	if code, _ = get(t, ts.URL+"/v1/facts"); code != 400 {
		t.Fatalf("relationless facts: %d, want 400", code)
	}

	code, body = get(t, ts.URL+"/v1/stats")
	if code != 200 || body["queue"].(map[string]any)["batches"] != float64(3) {
		t.Fatalf("stats: %d %v", code, body)
	}
	code, body = get(t, ts.URL+"/v1/autopilot")
	if code != 200 || body["autopilot"].(map[string]any)["sampling_runs"] != float64(2) {
		t.Fatalf("autopilot: %d %v", code, body)
	}
}

// TestUpdateValidation pins the 400 surface of POST /v1/update: the
// handler must reject malformed bodies before anything reaches the
// queue.
func TestUpdateValidation(t *testing.T) {
	submitted := 0
	b := newFakeBackend(baseView())
	b.submit = func(ctx context.Context, u Update, wait bool) (*UpdateResult, error) {
		submitted++
		return &UpdateResult{Epoch: 2}, nil
	}
	ts := testServer(t, b, Options{})

	post := func(body string) int {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/update?wait=1", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		return resp.StatusCode
	}

	bad := []string{
		`{`,                        // truncated JSON
		`[]`,                       // wrong shape
		`{"bogus_field": 1}`,       // unknown field
		`{}`,                       // empty update
		`{"inserts": {}}`,          // still empty
		`{"inserts": {"R": [[]]}}`, // empty tuple
		`{"deletes": {"R": [[]]}}`, // empty tuple on the delete side
	}
	for _, body := range bad {
		if code := post(body); code != 400 {
			t.Errorf("POST %q: %d, want 400", body, code)
		}
	}
	if submitted != 0 {
		t.Fatalf("malformed bodies reached Submit %d times", submitted)
	}

	if code := post(`{"inserts": {"Sentence": [["s9", "Pat and his wife Sam"]]}}`); code != 200 {
		t.Fatalf("valid update: %d, want 200", code)
	}
	if submitted != 1 {
		t.Fatalf("valid update submitted %d times, want 1", submitted)
	}

	// Without wait the handler acknowledges with 202.
	resp, err := http.Post(ts.URL+"/v1/update", "application/json",
		strings.NewReader(`{"rule_source": "R(x) :- S(x)."}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 202 {
		t.Fatalf("no-wait update: %d, want 202", resp.StatusCode)
	}

	// GET on a POST-only route is a method error, not a handler panic.
	resp, err = http.Get(ts.URL + "/v1/update")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 405 {
		t.Fatalf("GET /v1/update: %d, want 405", resp.StatusCode)
	}
}

// TestUpdateContextCancellation pins that a client disconnecting mid
// ?wait=1 cancels the request context handed to Submit — the wire-level
// form of the queue's retract-on-cancel contract.
func TestUpdateContextCancellation(t *testing.T) {
	b := newFakeBackend(baseView())
	observed := make(chan error, 1)
	entered := make(chan struct{})
	b.submit = func(ctx context.Context, u Update, wait bool) (*UpdateResult, error) {
		close(entered)
		<-ctx.Done()
		observed <- ctx.Err()
		return nil, ctx.Err()
	}
	ts := testServer(t, b, Options{})

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/update?wait=1",
		strings.NewReader(`{"inserts": {"R": [["a"]]}}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	done := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		done <- err
	}()

	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("Submit never entered")
	}
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("request succeeded despite cancellation")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("request did not return after cancel")
	}
	select {
	case err := <-observed:
		if err != context.Canceled {
			t.Fatalf("Submit ctx error = %v, want Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Submit ctx never cancelled")
	}
}

// sseClient reads one SSE stream event by event.
type sseClient struct {
	resp *http.Response
	rd   *bufio.Reader
}

func dialSSE(t *testing.T, url string) *sseClient {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		resp.Body.Close()
		t.Fatalf("subscribe: %d", resp.StatusCode)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return &sseClient{resp: resp, rd: bufio.NewReader(resp.Body)}
}

// next returns the next non-comment event's (name, data). It fails the
// test after a 5s stall.
func (c *sseClient) next(t *testing.T) (string, string) {
	t.Helper()
	type ev struct {
		name, data string
		err        error
	}
	out := make(chan ev, 1)
	go func() {
		var name, data string
		for {
			line, err := c.rd.ReadString('\n')
			if err != nil {
				out <- ev{err: err}
				return
			}
			line = strings.TrimRight(line, "\n")
			switch {
			case strings.HasPrefix(line, "event: "):
				name = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				data = strings.TrimPrefix(line, "data: ")
			case line == "" && name != "":
				out <- ev{name: name, data: data}
				return
			}
		}
	}()
	select {
	case e := <-out:
		if e.err != nil {
			t.Fatalf("subscription stream: %v", e.err)
		}
		return e.name, e.data
	case <-time.After(5 * time.Second):
		t.Fatal("no subscription event within 5s")
		return "", ""
	}
}

func (c *sseClient) nextDelta(t *testing.T) deltaEvent {
	t.Helper()
	name, data := c.next(t)
	if name != "delta" {
		t.Fatalf("event %q, want delta (data %s)", name, data)
	}
	var ev deltaEvent
	if err := json.Unmarshal([]byte(data), &ev); err != nil {
		t.Fatal(err)
	}
	return ev
}

// TestSubscribeStream pins the subscription protocol: initial snapshot,
// per-publication deltas with correct per-fact movements, removal
// events, coalesced-epoch skip accounting, and per-subscriber epoch
// monotonicity.
func TestSubscribeStream(t *testing.T) {
	b := newFakeBackend(baseView())
	ts := testServer(t, b, Options{Heartbeat: time.Hour})
	c := dialSSE(t, ts.URL+"/v1/subscribe?relation=HasSpouse")

	name, data := c.next(t)
	if name != "snapshot" {
		t.Fatalf("first event %q, want snapshot", name)
	}
	var snap snapshotEvent
	if err := json.Unmarshal([]byte(data), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Epoch != 1 || len(snap.Facts["HasSpouse"]) != 2 {
		t.Fatalf("snapshot event: %+v", snap)
	}

	// One fact moves, one appears.
	b.publish(&fakeView{epoch: 2, rels: map[string][]Fact{
		"HasSpouse": {
			{Tuple: []string{"Alan", "Beth"}, Probability: 0.95, Known: true},
			{Tuple: []string{"Eve", "Frank"}, Probability: 0.3, Known: true},
			{Tuple: []string{"Carl", "Dana"}, Probability: 0.8, Known: true},
		},
	}})
	ev := c.nextDelta(t)
	if ev.Epoch != 2 || ev.Skipped != 0 || len(ev.Changes) != 2 {
		t.Fatalf("delta: %+v", ev)
	}
	byTuple := map[string]Change{}
	for _, ch := range ev.Changes {
		byTuple[factKey(ch.Tuple)] = ch
	}
	if ch := byTuple[factKey([]string{"Alan", "Beth"})]; ch.Probability != 0.95 || abs(ch.Delta-0.05) > 1e-12 {
		t.Fatalf("moved fact: %+v", ch)
	}
	if ch := byTuple[factKey([]string{"Carl", "Dana"})]; ch.Probability != 0.8 || ch.Delta != 0 {
		t.Fatalf("appeared fact: %+v", ch)
	}

	// An epoch jump (the fake's stand-in for publications raced past a
	// slow consumer) is reported as skipped, and a removal closes out the
	// retracted fact.
	b.publish(&fakeView{epoch: 4, rels: map[string][]Fact{
		"HasSpouse": {
			{Tuple: []string{"Alan", "Beth"}, Probability: 0.95, Known: true},
			{Tuple: []string{"Eve", "Frank"}, Probability: 0.3, Known: true},
		},
	}})
	ev = c.nextDelta(t)
	if ev.Epoch != 4 || ev.Skipped != 1 || len(ev.Changes) != 1 {
		t.Fatalf("removal delta: %+v", ev)
	}
	if ch := ev.Changes[0]; !ch.Removed || factKey(ch.Tuple) != factKey([]string{"Carl", "Dana"}) || abs(ch.Delta+0.8) > 1e-12 {
		t.Fatalf("removal change: %+v", ch)
	}
}

// TestSubscribeMinDelta pins the min_delta floor AND its accumulation
// semantics: sub-floor movements are suppressed but not forgotten — the
// diff runs against last-SENT state, so drift crossing the floor across
// several publications is eventually reported with the full movement.
func TestSubscribeMinDelta(t *testing.T) {
	b := newFakeBackend(baseView())
	ts := testServer(t, b, Options{Heartbeat: time.Hour})
	c := dialSSE(t, ts.URL+"/v1/subscribe?relation=HasSpouse&min_delta=0.05")
	if name, _ := c.next(t); name != "snapshot" {
		t.Fatal("no snapshot event")
	}

	pub := func(epoch uint64, p float64) {
		b.publish(&fakeView{epoch: epoch, rels: map[string][]Fact{
			"HasSpouse": {
				{Tuple: []string{"Alan", "Beth"}, Probability: p, Known: true},
				{Tuple: []string{"Eve", "Frank"}, Probability: 0.3, Known: true},
			},
		}})
	}
	pub(2, 0.92) // +0.02: below floor, suppressed
	pub(3, 0.94) // +0.04 cumulative: still below
	pub(4, 0.96) // +0.06 cumulative: crosses the floor
	ev := c.nextDelta(t)
	if ev.Epoch != 4 || len(ev.Changes) != 1 {
		t.Fatalf("accumulated delta: %+v", ev)
	}
	if ch := ev.Changes[0]; abs(ch.Delta-0.06) > 1e-9 || ch.Probability != 0.96 {
		t.Fatalf("accumulated change: %+v (want the full 0.06 movement)", ch)
	}
	// Note: epochs 2 and 3 produced no event at all — Skipped on the
	// epoch-4 event counts them as coalesced.
	if ev.Skipped != 2 {
		t.Fatalf("skipped = %d, want 2 (suppressed epochs)", ev.Skipped)
	}

	if code, _ := get(t, ts.URL+"/v1/subscribe?min_delta=-1"); code != 400 {
		t.Fatalf("negative min_delta: %d, want 400", code)
	}
	if code, _ := get(t, ts.URL+"/v1/subscribe?tuple=a"); code != 400 {
		t.Fatalf("tuple filter without relation: %d, want 400", code)
	}
}

// TestSubscribeFactFilter pins the single-fact subscription: only the
// named tuple's movements are pushed.
func TestSubscribeFactFilter(t *testing.T) {
	b := newFakeBackend(baseView())
	ts := testServer(t, b, Options{Heartbeat: time.Hour})
	c := dialSSE(t, ts.URL+"/v1/subscribe?relation=HasSpouse&tuple=Alan&tuple=Beth")
	name, data := c.next(t)
	var snap snapshotEvent
	if name != "snapshot" || json.Unmarshal([]byte(data), &snap) != nil || len(snap.Facts["HasSpouse"]) != 1 {
		t.Fatalf("filtered snapshot: %s %s", name, data)
	}

	// The other fact moves a lot, the tracked one a little.
	b.publish(&fakeView{epoch: 2, rels: map[string][]Fact{
		"HasSpouse": {
			{Tuple: []string{"Alan", "Beth"}, Probability: 0.91, Known: true},
			{Tuple: []string{"Eve", "Frank"}, Probability: 0.99, Known: true},
		},
	}})
	ev := c.nextDelta(t)
	if len(ev.Changes) != 1 || factKey(ev.Changes[0].Tuple) != factKey([]string{"Alan", "Beth"}) {
		t.Fatalf("fact filter leaked: %+v", ev)
	}
}

// TestMaxSubscribers pins the 503 cap.
func TestMaxSubscribers(t *testing.T) {
	b := newFakeBackend(baseView())
	ts := testServer(t, b, Options{MaxSubscribers: 1, Heartbeat: time.Hour})
	c := dialSSE(t, ts.URL+"/v1/subscribe")
	c.next(t) // snapshot received: the slot is held
	resp, err := http.Get(ts.URL + "/v1/subscribe")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Fatalf("over-cap subscribe: %d, want 503", resp.StatusCode)
	}
}

// TestStalledSubscriberDoesNotBlockPublish is the tentpole's liveness
// pin: a subscriber that never reads its socket cannot delay a
// publication, and a healthy subscriber on the same server keeps
// receiving every delta while the stalled one is eventually dropped by
// the write deadline.
func TestStalledSubscriberDoesNotBlockPublish(t *testing.T) {
	b := newFakeBackend(baseView())
	srv := New(b, Options{WriteTimeout: 150 * time.Millisecond, Heartbeat: time.Hour})
	ts := httptest.NewServer(srv.Handler())
	// Registered before dialSSE's body-close cleanup: Close (which waits
	// for live handlers) must run after the healthy stream is closed.
	t.Cleanup(ts.Close)

	// Stalled client: completes the request, never reads the response.
	conn, err := net.Dial("tcp", strings.TrimPrefix(ts.URL, "http://"))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "GET /v1/subscribe HTTP/1.1\r\nHost: x\r\nAccept: text/event-stream\r\n\r\n")
	deadline := time.Now().Add(10 * time.Second)
	for srv.Subscribers() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("stalled subscriber never registered")
		}
		time.Sleep(5 * time.Millisecond)
	}

	healthy := dialSSE(t, ts.URL+"/v1/subscribe?relation=HasSpouse")
	if name, _ := healthy.next(t); name != "snapshot" {
		t.Fatal("healthy subscriber got no snapshot")
	}

	// Publish a stream of fat deltas. Every publish must return at
	// channel-close speed regardless of the stalled client's full socket,
	// and the healthy subscriber must observe a monotone epoch stream.
	wide := make([]Fact, 4000)
	var lastEpoch uint64 = 1
	for i := uint64(2); i < 40; i++ {
		for j := range wide {
			wide[j] = Fact{
				Tuple:       []string{fmt.Sprintf("left-%04d-%d", j, i), fmt.Sprintf("right-%04d-%d", j, i)},
				Probability: float64(i) / 100,
				Known:       true,
			}
		}
		start := time.Now()
		b.publish(&fakeView{epoch: i, rels: map[string][]Fact{"HasSpouse": append([]Fact(nil), wide...)}})
		if d := time.Since(start); d > time.Second {
			t.Fatalf("publish %d took %v with a stalled subscriber", i, d)
		}
		ev := healthy.nextDelta(t)
		if ev.Epoch <= lastEpoch {
			t.Fatalf("healthy subscriber epoch went %d -> %d", lastEpoch, ev.Epoch)
		}
		lastEpoch = ev.Epoch
	}

	// The stalled subscriber is eventually dropped by the write deadline.
	deadline = time.Now().Add(15 * time.Second)
	for srv.Subscribers() > 1 {
		if time.Now().After(deadline) {
			t.Fatalf("stalled subscriber never dropped (still %d live)", srv.Subscribers())
		}
		time.Sleep(20 * time.Millisecond)
	}
	if srv.subsDropped.Load() == 0 {
		t.Fatal("drop counter not incremented")
	}
}

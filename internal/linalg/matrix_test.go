package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewMatrixZeroed(t *testing.T) {
	m := NewMatrix(3, 4)
	if m.Rows != 3 || m.Cols != 4 {
		t.Fatalf("dims = %dx%d, want 3x4", m.Rows, m.Cols)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("element (%d,%d) = %v, want 0", i, j, m.At(i, j))
			}
		}
	}
}

func TestSetAtAdd(t *testing.T) {
	m := NewSquare(2)
	m.Set(0, 1, 5)
	m.Add(0, 1, 2.5)
	if got := m.At(0, 1); got != 7.5 {
		t.Fatalf("At(0,1) = %v, want 7.5", got)
	}
	if got := m.At(1, 0); got != 0 {
		t.Fatalf("At(1,0) = %v, want 0", got)
	}
}

func TestIdentity(t *testing.T) {
	m := Identity(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if m.At(i, j) != want {
				t.Fatalf("I(%d,%d) = %v, want %v", i, j, m.At(i, j), want)
			}
		}
	}
}

func TestFromRows(t *testing.T) {
	m, err := FromRows([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(1, 0) != 3 {
		t.Fatalf("At(1,0) = %v, want 3", m.At(1, 0))
	}
	if _, err := FromRows([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("ragged rows accepted")
	}
	empty, err := FromRows(nil)
	if err != nil || empty.Rows != 0 {
		t.Fatalf("empty FromRows = %v rows, err=%v", empty.Rows, err)
	}
}

func TestCloneIndependent(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestCopyFromPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("CopyFrom with mismatched dims did not panic")
		}
	}()
	NewSquare(2).CopyFrom(NewSquare(3))
}

func TestScaleAddScaled(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	m.Scale(2)
	if m.At(1, 1) != 8 {
		t.Fatalf("Scale: At(1,1) = %v, want 8", m.At(1, 1))
	}
	other, _ := FromRows([][]float64{{1, 0}, {0, 1}})
	m.AddScaled(other, -2)
	if m.At(0, 0) != 0 || m.At(1, 1) != 6 {
		t.Fatalf("AddScaled gave %v, %v; want 0, 6", m.At(0, 0), m.At(1, 1))
	}
}

func TestSymmetrize(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 4}, {2, 1}})
	m.Symmetrize()
	if m.At(0, 1) != 3 || m.At(1, 0) != 3 {
		t.Fatalf("Symmetrize gave off-diagonals %v, %v; want 3, 3", m.At(0, 1), m.At(1, 0))
	}
	if !m.IsSymmetric(0) {
		t.Fatal("IsSymmetric false after Symmetrize")
	}
}

func TestIsSymmetric(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2}, {2.1, 1}})
	if m.IsSymmetric(0.01) {
		t.Fatal("IsSymmetric true with diff 0.1 > tol 0.01")
	}
	if !m.IsSymmetric(0.2) {
		t.Fatal("IsSymmetric false with diff 0.1 < tol 0.2")
	}
	if NewMatrix(2, 3).IsSymmetric(1) {
		t.Fatal("non-square matrix reported symmetric")
	}
}

func TestMul(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := FromRows([][]float64{{5, 6}, {7, 8}})
	c := a.Mul(b)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want[i][j] {
				t.Fatalf("Mul(%d,%d) = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestMulVec(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	got := a.MulVec([]float64{1, 1})
	if got[0] != 3 || got[1] != 7 {
		t.Fatalf("MulVec = %v, want [3 7]", got)
	}
}

func TestMaxAbsDiff(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := FromRows([][]float64{{1, 2.5}, {3, 3}})
	if d := a.MaxAbsDiff(b); d != 1 {
		t.Fatalf("MaxAbsDiff = %v, want 1", d)
	}
}

func randomSPD(rng *rand.Rand, n int) *Matrix {
	// A·Aᵀ + n·I is SPD with overwhelming margin.
	a := NewSquare(n)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	m := NewSquare(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for k := 0; k < n; k++ {
				s += a.At(i, k) * a.At(j, k)
			}
			m.Set(i, j, s)
		}
		m.Add(i, i, float64(n))
	}
	return m
}

func TestCholeskyReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 3, 7, 15} {
		m := randomSPD(rng, n)
		l, err := Cholesky(m)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		// L·Lᵀ must reconstruct m.
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				var s float64
				for k := 0; k <= min(i, j); k++ {
					s += l.At(i, k) * l.At(j, k)
				}
				if !almostEq(s, m.At(i, j), 1e-8) {
					t.Fatalf("n=%d: (LLᵀ)(%d,%d) = %v, want %v", n, i, j, s, m.At(i, j))
				}
			}
		}
		// Strictly upper triangle must be zero.
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if l.At(i, j) != 0 {
					t.Fatalf("n=%d: L(%d,%d) = %v, want 0", n, i, j, l.At(i, j))
				}
			}
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, -1
	if _, err := Cholesky(m); err != ErrNotPositiveDefinite {
		t.Fatalf("err = %v, want ErrNotPositiveDefinite", err)
	}
	if _, err := Cholesky(NewMatrix(2, 3)); err == nil {
		t.Fatal("non-square matrix accepted")
	}
}

func TestLogDetKnown(t *testing.T) {
	m, _ := FromRows([][]float64{{4, 0}, {0, 9}})
	got, err := LogDet(m)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(got, math.Log(36), 1e-12) {
		t.Fatalf("LogDet = %v, want log(36) = %v", got, math.Log(36))
	}
}

func TestSolveSPD(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{1, 3, 8} {
		m := randomSPD(rng, n)
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		b := m.MulVec(want)
		got, err := SolveSPD(m, b)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if !almostEq(got[i], want[i], 1e-8) {
				t.Fatalf("n=%d: x[%d] = %v, want %v", n, i, got[i], want[i])
			}
		}
	}
	if _, err := SolveSPD(NewSquare(2), []float64{1}); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}

func TestInverseSPD(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 2, 5, 12} {
		m := randomSPD(rng, n)
		inv, err := InverseSPD(m)
		if err != nil {
			t.Fatal(err)
		}
		prod := m.Mul(inv)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				want := 0.0
				if i == j {
					want = 1
				}
				if !almostEq(prod.At(i, j), want, 1e-8) {
					t.Fatalf("n=%d: (M·M⁻¹)(%d,%d) = %v, want %v", n, i, j, prod.At(i, j), want)
				}
			}
		}
		if !inv.IsSymmetric(1e-12) {
			t.Fatalf("n=%d: inverse is not symmetric", n)
		}
	}
}

func TestCovarianceKnown(t *testing.T) {
	// Perfectly anti-correlated pair.
	samples := [][]float64{{1, 0}, {0, 1}, {1, 0}, {0, 1}}
	cov, err := Covariance(samples)
	if err != nil {
		t.Fatal(err)
	}
	// var = Σ(x-mean)²/(n-1) = 4·0.25/3 = 1/3
	if !almostEq(cov.At(0, 0), 1.0/3, 1e-12) {
		t.Fatalf("var = %v, want 1/3", cov.At(0, 0))
	}
	if !almostEq(cov.At(0, 1), -1.0/3, 1e-12) {
		t.Fatalf("cov = %v, want -1/3", cov.At(0, 1))
	}
}

func TestCovarianceEdgeCases(t *testing.T) {
	if m, err := Covariance(nil); err != nil || m.Rows != 0 {
		t.Fatalf("empty: %v rows, err=%v", m.Rows, err)
	}
	m, err := Covariance([][]float64{{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 0) != 0 || m.At(1, 1) != 0 {
		t.Fatal("single sample should give zero covariance")
	}
	if _, err := Covariance([][]float64{{1, 2}, {1}}); err == nil {
		t.Fatal("ragged samples accepted")
	}
}

// Property: for random SPD matrices, LogDet(M) equals the log-determinant
// computed from the product of Cholesky diagonal entries squared, and
// InverseSPD round-trips through SolveSPD.
func TestQuickCholeskyProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(10)
		m := randomSPD(r, n)
		ld, err := LogDet(m)
		if err != nil {
			return false
		}
		// det(M) > 0 ⇒ exp(logdet) finite & positive for these sizes.
		if math.IsNaN(ld) || math.IsInf(ld, 0) {
			return false
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		b := m.MulVec(x)
		got, err := SolveSPD(m, b)
		if err != nil {
			return false
		}
		for i := range x {
			if !almostEq(got[i], x[i], 1e-6) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Package linalg provides the small amount of dense linear algebra the
// variational materialization strategy (Algorithm 1 of the paper) needs:
// symmetric matrices, Cholesky factorization, log-determinants, and
// inverses of symmetric positive definite matrices.
//
// The package is deliberately minimal — column pivoting, banded storage,
// and BLAS-style blocking are out of scope. Matrices are row-major dense
// float64. All operations are deterministic.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// Matrix is a dense row-major n×m matrix of float64.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, Data[i*Cols+j] is element (i,j)
}

// NewMatrix returns a zero-initialized rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: negative dimension %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// NewSquare returns a zero-initialized n×n matrix.
func NewSquare(n int) *Matrix { return NewMatrix(n, n) }

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewSquare(n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// FromRows builds a matrix from row slices. All rows must have equal length.
func FromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 {
		return NewMatrix(0, 0), nil
	}
	cols := len(rows[0])
	m := NewMatrix(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("linalg: ragged rows: row 0 has %d cols, row %d has %d", cols, i, len(r))
		}
		copy(m.Data[i*cols:(i+1)*cols], r)
	}
	return m, nil
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Add increments element (i, j) by v.
func (m *Matrix) Add(i, j int, v float64) { m.Data[i*m.Cols+j] += v }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// CopyFrom overwrites m with the contents of src. Dimensions must match.
func (m *Matrix) CopyFrom(src *Matrix) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic(fmt.Sprintf("linalg: CopyFrom dimension mismatch %dx%d vs %dx%d", m.Rows, m.Cols, src.Rows, src.Cols))
	}
	copy(m.Data, src.Data)
}

// Scale multiplies every element by s, in place.
func (m *Matrix) Scale(s float64) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// AddScaled adds s·other to m, in place. Dimensions must match.
func (m *Matrix) AddScaled(other *Matrix, s float64) {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		panic(fmt.Sprintf("linalg: AddScaled dimension mismatch %dx%d vs %dx%d", m.Rows, m.Cols, other.Rows, other.Cols))
	}
	for i, v := range other.Data {
		m.Data[i] += s * v
	}
}

// Symmetrize replaces m with (m + mᵀ)/2. m must be square.
func (m *Matrix) Symmetrize() {
	if m.Rows != m.Cols {
		panic("linalg: Symmetrize on non-square matrix")
	}
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			v := (m.At(i, j) + m.At(j, i)) / 2
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
}

// IsSymmetric reports whether m is symmetric within tol.
func (m *Matrix) IsSymmetric(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

// Mul returns m·other as a new matrix.
func (m *Matrix) Mul(other *Matrix) *Matrix {
	if m.Cols != other.Rows {
		panic(fmt.Sprintf("linalg: Mul dimension mismatch %dx%d · %dx%d", m.Rows, m.Cols, other.Rows, other.Cols))
	}
	out := NewMatrix(m.Rows, other.Cols)
	for i := 0; i < m.Rows; i++ {
		mi := m.Data[i*m.Cols : (i+1)*m.Cols]
		oi := out.Data[i*out.Cols : (i+1)*out.Cols]
		for k, mv := range mi {
			if mv == 0 {
				continue
			}
			ok := other.Data[k*other.Cols : (k+1)*other.Cols]
			for j, ov := range ok {
				oi[j] += mv * ov
			}
		}
	}
	return out
}

// MulVec returns m·x as a new vector. len(x) must equal m.Cols.
func (m *Matrix) MulVec(x []float64) []float64 {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("linalg: MulVec dimension mismatch %dx%d · %d", m.Rows, m.Cols, len(x)))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// MaxAbsDiff returns the largest absolute element-wise difference between
// m and other. Dimensions must match.
func (m *Matrix) MaxAbsDiff(other *Matrix) float64 {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		panic("linalg: MaxAbsDiff dimension mismatch")
	}
	var worst float64
	for i, v := range m.Data {
		d := math.Abs(v - other.Data[i])
		if d > worst {
			worst = d
		}
	}
	return worst
}

// ErrNotPositiveDefinite is returned when a Cholesky factorization fails.
var ErrNotPositiveDefinite = errors.New("linalg: matrix is not positive definite")

// Cholesky computes the lower-triangular L with L·Lᵀ = m for a symmetric
// positive definite m. The strictly-upper triangle of the result is zero.
// Returns ErrNotPositiveDefinite when a non-positive pivot is encountered.
func Cholesky(m *Matrix) (*Matrix, error) {
	if m.Rows != m.Cols {
		return nil, fmt.Errorf("linalg: Cholesky on non-square %dx%d matrix", m.Rows, m.Cols)
	}
	n := m.Rows
	l := NewSquare(n)
	for j := 0; j < n; j++ {
		d := m.At(j, j)
		for k := 0; k < j; k++ {
			ljk := l.At(j, k)
			d -= ljk * ljk
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, ErrNotPositiveDefinite
		}
		ljj := math.Sqrt(d)
		l.Set(j, j, ljj)
		for i := j + 1; i < n; i++ {
			s := m.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, s/ljj)
		}
	}
	return l, nil
}

// LogDet returns log(det(m)) for a symmetric positive definite m,
// computed via Cholesky as 2·Σ log L_ii.
func LogDet(m *Matrix) (float64, error) {
	l, err := Cholesky(m)
	if err != nil {
		return 0, err
	}
	var s float64
	for i := 0; i < l.Rows; i++ {
		s += math.Log(l.At(i, i))
	}
	return 2 * s, nil
}

// solveLower solves L·y = b for lower-triangular L, in place into a new slice.
func solveLower(l *Matrix, b []float64) []float64 {
	n := l.Rows
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		row := l.Data[i*n : i*n+i]
		for k, v := range row {
			s -= v * y[k]
		}
		y[i] = s / l.At(i, i)
	}
	return y
}

// solveUpperT solves Lᵀ·x = y for lower-triangular L (i.e. upper-triangular Lᵀ).
func solveUpperT(l *Matrix, y []float64) []float64 {
	n := l.Rows
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
	return x
}

// SolveSPD solves m·x = b for symmetric positive definite m.
func SolveSPD(m *Matrix, b []float64) ([]float64, error) {
	if len(b) != m.Rows {
		return nil, fmt.Errorf("linalg: SolveSPD dimension mismatch %dx%d vs %d", m.Rows, m.Cols, len(b))
	}
	l, err := Cholesky(m)
	if err != nil {
		return nil, err
	}
	return solveUpperT(l, solveLower(l, b)), nil
}

// InverseSPD returns the inverse of a symmetric positive definite matrix,
// column by column through the Cholesky factor.
func InverseSPD(m *Matrix) (*Matrix, error) {
	l, err := Cholesky(m)
	if err != nil {
		return nil, err
	}
	n := m.Rows
	inv := NewSquare(n)
	e := make([]float64, n)
	for j := 0; j < n; j++ {
		e[j] = 1
		col := solveUpperT(l, solveLower(l, e))
		e[j] = 0
		for i := 0; i < n; i++ {
			inv.Set(i, j, col[i])
		}
	}
	// Clean up asymmetry from round-off: the inverse of an SPD matrix is
	// symmetric, and downstream projected-gradient steps rely on that.
	inv.Symmetrize()
	return inv, nil
}

// Covariance estimates the sample covariance matrix of the given
// observations. samples[k][i] is observation k of variable i. With fewer
// than two samples the result is the zero matrix.
func Covariance(samples [][]float64) (*Matrix, error) {
	if len(samples) == 0 {
		return NewSquare(0), nil
	}
	n := len(samples[0])
	for k, s := range samples {
		if len(s) != n {
			return nil, fmt.Errorf("linalg: sample %d has %d vars, want %d", k, len(s), n)
		}
	}
	mean := make([]float64, n)
	for _, s := range samples {
		for i, v := range s {
			mean[i] += v
		}
	}
	inv := 1 / float64(len(samples))
	for i := range mean {
		mean[i] *= inv
	}
	cov := NewSquare(n)
	if len(samples) < 2 {
		return cov, nil
	}
	denom := 1 / float64(len(samples)-1)
	for _, s := range samples {
		for i := 0; i < n; i++ {
			di := s[i] - mean[i]
			if di == 0 {
				continue
			}
			row := cov.Data[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				row[j] += di * (s[j] - mean[j]) * denom
			}
		}
	}
	cov.Symmetrize()
	return cov, nil
}

package linalg

import (
	"fmt"
	"math"
)

// LogDetProblem describes the constrained log-determinant maximization of
// Algorithm 1 in the paper:
//
//	argmax_X  log det X
//	s.t.      X_kk = M_kk + 1/3
//	          |X_kj - M_kj| <= λ          for (k,j) in the NZ pattern
//	          X_kj = 0                    for (k,j) not in the NZ pattern
//
// M is the (sparsified) sample covariance matrix; the NZ pattern contains
// pairs of variables that co-occur in some factor. The solution X̂ plays the
// role of an (approximate) inverse covariance: a non-zero off-diagonal entry
// becomes a pairwise factor in the approximated graph.
type LogDetProblem struct {
	M       *Matrix // symmetric covariance estimate
	Pattern []bool  // Pattern[i*n+j]: (i,j) allowed non-zero (diagonal implied)
	Lambda  float64 // ℓ∞ box half-width around M off-diagonals
	Ridge   float64 // extra diagonal mass, default 1/3 per Algorithm 1
}

// LogDetOptions tunes the projected-gradient solver.
type LogDetOptions struct {
	MaxIters int     // maximum gradient steps (default 200)
	StepSize float64 // initial step (default 0.25)
	Tol      float64 // stop when the projected step moves < Tol (default 1e-6)
}

// LogDetResult reports the solution and solver diagnostics.
type LogDetResult struct {
	X         *Matrix
	LogDet    float64
	Iters     int
	Converged bool
}

func (opt *LogDetOptions) fill() LogDetOptions {
	o := LogDetOptions{MaxIters: 200, StepSize: 0.25, Tol: 1e-6}
	if opt != nil {
		if opt.MaxIters > 0 {
			o.MaxIters = opt.MaxIters
		}
		if opt.StepSize > 0 {
			o.StepSize = opt.StepSize
		}
		if opt.Tol > 0 {
			o.Tol = opt.Tol
		}
	}
	return o
}

// project clamps x onto the feasible set of p, in place.
func (p *LogDetProblem) project(x *Matrix) {
	n := p.M.Rows
	ridge := p.Ridge
	if ridge == 0 {
		ridge = 1.0 / 3.0
	}
	for i := 0; i < n; i++ {
		x.Set(i, i, p.M.At(i, i)+ridge)
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if p.Pattern != nil && !p.Pattern[i*n+j] {
				x.Set(i, j, 0)
				continue
			}
			m := p.M.At(i, j)
			v := x.At(i, j)
			if v > m+p.Lambda {
				v = m + p.Lambda
			} else if v < m-p.Lambda {
				v = m - p.Lambda
			}
			x.Set(i, j, v)
		}
	}
	x.Symmetrize()
	// Re-pin the diagonal: Symmetrize leaves it unchanged, but be explicit
	// in case Pattern zeroed asymmetric entries.
	for i := 0; i < n; i++ {
		x.Set(i, i, p.M.At(i, i)+ridge)
	}
}

// feasibleStart returns a strictly feasible, positive definite starting
// point: the projection of the diagonal-only matrix.
func (p *LogDetProblem) feasibleStart() *Matrix {
	x := NewSquare(p.M.Rows)
	p.project(x)
	// Shrink off-diagonals toward zero until Cholesky succeeds. Because the
	// diagonal is M_kk + 1/3 > 0 and off-diagonals can be scaled to zero,
	// a feasible PD point always exists (the box contains the scaled point
	// whenever it contains the original, since 0 stays within [m-λ, m+λ]
	// only when |m| ≤ λ; otherwise we scale toward the box midpoint).
	for shrink := 1.0; shrink > 1e-9; shrink /= 2 {
		if _, err := Cholesky(x); err == nil {
			return x
		}
		n := p.M.Rows
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j {
					x.Set(i, j, x.At(i, j)/2)
				}
			}
		}
		p.project2(x) // clamp back into the box without resetting toward M
	}
	// Last resort: diagonal matrix; always PD because diagonal entries are
	// variances plus 1/3.
	n := p.M.Rows
	d := NewSquare(n)
	ridge := p.Ridge
	if ridge == 0 {
		ridge = 1.0 / 3.0
	}
	for i := 0; i < n; i++ {
		d.Set(i, i, p.M.At(i, i)+ridge)
	}
	return d
}

// project2 clamps off-diagonals into the box but does not pull entries
// toward M; used while searching for a PD start.
func (p *LogDetProblem) project2(x *Matrix) {
	n := p.M.Rows
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if p.Pattern != nil && !p.Pattern[i*n+j] {
				x.Set(i, j, 0)
				continue
			}
			m := p.M.At(i, j)
			v := x.At(i, j)
			if v > m+p.Lambda {
				v = m + p.Lambda
			} else if v < m-p.Lambda {
				v = m - p.Lambda
			}
			x.Set(i, j, v)
		}
	}
}

// Solve runs projected gradient ascent on log det X. The gradient of
// log det X is X⁻¹; each iteration steps along it, projects back onto the
// constraint set, and backtracks the step size whenever positive
// definiteness is lost or the objective decreases.
func (p *LogDetProblem) Solve(opt *LogDetOptions) (*LogDetResult, error) {
	if p.M.Rows != p.M.Cols {
		return nil, fmt.Errorf("linalg: logdet problem needs square M, got %dx%d", p.M.Rows, p.M.Cols)
	}
	if p.Pattern != nil && len(p.Pattern) != p.M.Rows*p.M.Cols {
		return nil, fmt.Errorf("linalg: pattern length %d, want %d", len(p.Pattern), p.M.Rows*p.M.Cols)
	}
	o := opt.fill()
	n := p.M.Rows
	if n == 0 {
		return &LogDetResult{X: NewSquare(0), Converged: true}, nil
	}

	x := p.feasibleStart()
	obj, err := LogDet(x)
	if err != nil {
		return nil, fmt.Errorf("linalg: infeasible start: %w", err)
	}

	step := o.StepSize
	res := &LogDetResult{}
	for it := 0; it < o.MaxIters; it++ {
		res.Iters = it + 1
		grad, err := InverseSPD(x)
		if err != nil {
			return nil, fmt.Errorf("linalg: lost positive definiteness at iter %d: %w", it, err)
		}
		accepted := false
		for try := 0; try < 30; try++ {
			cand := x.Clone()
			cand.AddScaled(grad, step)
			p.project(cand)
			candObj, err := LogDet(cand)
			if err == nil && candObj >= obj-1e-12 {
				moved := cand.MaxAbsDiff(x)
				x, obj = cand, candObj
				accepted = true
				if moved < o.Tol {
					res.X, res.LogDet, res.Converged = x, obj, true
					return res, nil
				}
				// Gentle step growth after a success keeps progress fast on
				// well-conditioned problems.
				step = math.Min(step*1.2, o.StepSize*4)
				break
			}
			step /= 2
		}
		if !accepted {
			// The projected point is a fixed point at every reachable step
			// size: treat as converged.
			res.X, res.LogDet, res.Converged = x, obj, true
			return res, nil
		}
	}
	res.X, res.LogDet = x, obj
	return res, nil
}

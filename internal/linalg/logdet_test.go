package linalg

import (
	"math"
	"math/rand"
	"testing"
)

// unconstrainedOptimum: with λ = +inf and a full pattern, the maximizer of
// log det X over the box is unconstrained except for the pinned diagonal;
// log det is maximized at the diagonal matrix when off-diagonals are free
// to go to zero... it is not, in general. We instead verify first-order
// optimality via complementary slackness on small problems.
func TestLogDetDiagonalProblem(t *testing.T) {
	// With λ = 0 the box forces X = M + ridge·I exactly (on-pattern).
	m, _ := FromRows([][]float64{{0.25, 0.1}, {0.1, 0.25}})
	pat := []bool{true, true, true, true}
	p := &LogDetProblem{M: m, Pattern: pat, Lambda: 0}
	res, err := p.Solve(nil)
	if err != nil {
		t.Fatal(err)
	}
	wantDiag := 0.25 + 1.0/3
	if !almostEq(res.X.At(0, 0), wantDiag, 1e-9) {
		t.Fatalf("X(0,0) = %v, want %v", res.X.At(0, 0), wantDiag)
	}
	if !almostEq(res.X.At(0, 1), 0.1, 1e-9) {
		t.Fatalf("X(0,1) = %v, want 0.1 (pinned by λ=0)", res.X.At(0, 1))
	}
}

func TestLogDetLargeLambdaDrivesOffDiagonalsTowardZero(t *testing.T) {
	// For fixed diagonal, log det X is maximized when off-diagonals vanish.
	// With a huge λ the box never binds, so the solution should approach
	// the diagonal matrix.
	m, _ := FromRows([][]float64{{0.2, 0.15}, {0.15, 0.2}})
	p := &LogDetProblem{M: m, Pattern: []bool{true, true, true, true}, Lambda: 100}
	res, err := p.Solve(&LogDetOptions{MaxIters: 2000, Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X.At(0, 1)) > 1e-4 {
		t.Fatalf("X(0,1) = %v, want ≈ 0 with non-binding box", res.X.At(0, 1))
	}
}

func TestLogDetRespectsPattern(t *testing.T) {
	// Three variables; pattern allows only the (0,1) edge.
	m := NewSquare(3)
	for i := 0; i < 3; i++ {
		m.Set(i, i, 0.25)
	}
	m.Set(0, 1, 0.2)
	m.Set(1, 0, 0.2)
	m.Set(1, 2, 0.2)
	m.Set(2, 1, 0.2)
	pat := make([]bool, 9)
	pat[0*3+1], pat[1*3+0] = true, true
	p := &LogDetProblem{M: m, Pattern: pat, Lambda: 0.05}
	res, err := p.Solve(nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.X.At(1, 2) != 0 || res.X.At(0, 2) != 0 {
		t.Fatalf("off-pattern entries non-zero: X(1,2)=%v X(0,2)=%v", res.X.At(1, 2), res.X.At(0, 2))
	}
	// The (0,1) entry must lie inside its box.
	if d := math.Abs(res.X.At(0, 1) - 0.2); d > 0.05+1e-9 {
		t.Fatalf("X(0,1) = %v violates box around 0.2 (λ=0.05)", res.X.At(0, 1))
	}
}

func TestLogDetMonotoneInLambda(t *testing.T) {
	// A larger λ gives a weakly larger feasible set, so the optimum cannot
	// decrease.
	rng := rand.New(rand.NewSource(7))
	n := 6
	m := randomSPD(rng, n)
	m.Scale(1.0 / float64(n))
	pat := make([]bool, n*n)
	for i := range pat {
		pat[i] = true
	}
	prev := math.Inf(-1)
	for _, lambda := range []float64{0, 0.01, 0.1, 1} {
		p := &LogDetProblem{M: m, Pattern: pat, Lambda: lambda}
		res, err := p.Solve(&LogDetOptions{MaxIters: 800})
		if err != nil {
			t.Fatalf("λ=%v: %v", lambda, err)
		}
		if res.LogDet < prev-1e-6 {
			t.Fatalf("λ=%v: logdet %v < previous %v", lambda, res.LogDet, prev)
		}
		prev = res.LogDet
	}
}

func TestLogDetSolutionIsPD(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(8)
		m := randomSPD(rng, n)
		m.Scale(0.1 / float64(n))
		pat := make([]bool, n*n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				pat[i*n+j] = rng.Float64() < 0.5
			}
		}
		// Symmetrize the pattern.
		for i := 0; i < n; i++ {
			for j := 0; j < i; j++ {
				v := pat[i*n+j] || pat[j*n+i]
				pat[i*n+j], pat[j*n+i] = v, v
			}
		}
		p := &LogDetProblem{M: m, Pattern: pat, Lambda: 0.05}
		res, err := p.Solve(nil)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if _, err := Cholesky(res.X); err != nil {
			t.Fatalf("trial %d: solution not PD: %v", trial, err)
		}
		if !res.X.IsSymmetric(1e-9) {
			t.Fatalf("trial %d: solution not symmetric", trial)
		}
	}
}

func TestLogDetEmptyProblem(t *testing.T) {
	p := &LogDetProblem{M: NewSquare(0)}
	res, err := p.Solve(nil)
	if err != nil || !res.Converged {
		t.Fatalf("empty problem: res=%+v err=%v", res, err)
	}
}

func TestLogDetRejectsBadInputs(t *testing.T) {
	if _, err := (&LogDetProblem{M: NewMatrix(2, 3)}).Solve(nil); err == nil {
		t.Fatal("non-square M accepted")
	}
	if _, err := (&LogDetProblem{M: NewSquare(2), Pattern: make([]bool, 3)}).Solve(nil); err == nil {
		t.Fatal("wrong pattern length accepted")
	}
}

func TestLogDetCustomRidge(t *testing.T) {
	m, _ := FromRows([][]float64{{0.5}})
	p := &LogDetProblem{M: m, Lambda: 0, Ridge: 2}
	res, err := p.Solve(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(res.X.At(0, 0), 2.5, 1e-12) {
		t.Fatalf("X(0,0) = %v, want 2.5 with ridge 2", res.X.At(0, 0))
	}
}

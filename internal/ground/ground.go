// Package ground evaluates DeepDive programs into factor graphs — the
// grounding phase of the paper (Sections 2.5 and 3.1). It owns the
// relational database, evaluates deterministic (candidate/supervision)
// rules with counted derivations, materializes weighted rules into factor
// groups, and — the paper's first contribution — performs *incremental*
// grounding: given inserted/deleted base tuples and new rules, it derives
// the modified variables ΔV and factors ΔF with DRed-style delta
// evaluation instead of re-running every join.
//
// Variable ids and group indexes are stable across updates (append-only),
// so the graph before an update and the graph after it are directly
// comparable — which is what the incremental-inference strategies in
// package inc rely on.
package ground

import (
	"fmt"
	"sort"
	"strings"

	"deepdive/internal/datalog"
	"deepdive/internal/db"
	"deepdive/internal/factor"
)

// UDF is a user-defined function used in weight expressions: it maps the
// bound argument values to a tie key (rule FE1's phrase(...) in the
// paper). UDFs must be pure.
type UDF func(args []string) string

// UDFRegistry names the UDFs available to a program.
type UDFRegistry map[string]UDF

// varKey builds the variable-map key for a tuple of a variable relation.
func varKey(rel string, tupleKey string) string { return rel + "\x00" + tupleKey }

// varInfo records which tuple a VarID stands for.
type varInfo struct {
	rel string
	key string // tuple key
}

// gndState is one grounding of a group with its derivation count. flatID
// is the grounding's index in the flat pool of the grounder's current
// graph when the grounding is visible there, -1 otherwise — the handle
// the in-place patch path uses to tombstone retracted groundings.
type gndState struct {
	lits   []factor.Literal
	count  int
	flatID int32
}

// groupState accumulates the groundings of one grounded rule instance
// γ = (rule, head binding, weight binding).
type groupState struct {
	key      string
	head     factor.VarID
	weight   factor.WeightID
	sem      factor.Semantics
	gnds     map[string]*gndState
	gndOrder []string
}

// ruleEval is a compiled rule.
type ruleEval struct {
	rule    *datalog.Rule
	idx     int       // stable index for weight keys
	plan    *bodyPlan // cached body plan
	allVars []string  // body+head variable names, for grounding identity
}

// varsOf returns (caching) the rule's variable names in deterministic
// order; a grounding's identity is the rule's full binding c̄ over these
// (Section 2.4: the support counts distinct groundings c̄ ∈ D^|z̄|).
func (re *ruleEval) varsOf() []string {
	if re.allVars != nil {
		return re.allVars
	}
	seen := map[string]bool{}
	var out []string
	add := func(names []string) {
		for _, v := range names {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	add(re.rule.Head.Vars())
	add(re.rule.BodyVars())
	if out == nil {
		out = []string{}
	}
	re.allVars = out
	return out
}

// Grounder holds the database and all grounding state for one program.
type Grounder struct {
	prog *datalog.Program
	udfs UDFRegistry
	data *db.Database

	topo        []string               // relation evaluation order (derivation pipeline)
	rulesByHead map[string][]*ruleEval // derivation & supervision rules
	weighted    []*ruleEval            // inference (weighted) rules, in order
	derived     map[string]bool        // heads of derivation/supervision rules
	nextRuleIdx int

	vars    []varInfo
	varIdx  map[string]factor.VarID
	live    []bool
	evTrue  []int // per var: count of true evidence derivations
	evFalse []int

	weightKeys  []string
	weightInit  []float64
	weightLearn []bool
	weightIdx   map[string]factor.WeightID

	groups   []*groupState
	groupIdx map[string]int

	graphDirty bool
	lastGraph  *factor.Graph

	// version counts grounding generations: 0 before the initial Ground,
	// then +1 per Ground/ApplyUpdate. Serving snapshots pin themselves to
	// (version, graph epoch) so a reader can tell which update generation
	// it observes.
	version uint64

	// In-place update state: when enabled (the default), ApplyUpdate
	// splices the delta into the current graph through a factor.Patch in
	// O(|Δ|) instead of leaving it dirty for an O(V+F) rebuild, falling
	// back to a compacting rebuild when fragmentation crosses
	// compactThresh.
	inPlace       bool
	compactThresh float64

	// par is the delta-grounding worker count (see SetParallelism):
	// <= 1 sequential, n > 1 shards DRed join evaluation across n
	// workers, negative one worker per core.
	par int
}

// DefaultCompactionThreshold is the fragmentation ratio (tombstoned plus
// overflow groundings over the pool size) at which the in-place update
// path schedules a compacting rebuild.
const DefaultCompactionThreshold = 0.25

// SetInPlaceUpdates toggles O(Δ)-cost in-place graph patching on
// ApplyUpdate. On by default (the patch path has soaked through the
// differential harnesses); pass false to select the rebuild lesion
// configuration, where every update marks the graph dirty and the next
// Graph call rebuilds the flat pools from scratch.
func (g *Grounder) SetInPlaceUpdates(on bool) { g.inPlace = on }

// SetParallelism selects the worker count for incremental (DRed) delta
// grounding: <= 1 keeps the sequential path, n > 1 fans the per-rule,
// per-delta-seed join evaluations of each pipeline stage out across n
// workers, negative means one worker per core. The parallel path is
// bit-identical to the sequential one: workers only *evaluate* joins
// (read-only), and the resulting bindings are applied serially in
// exactly the order the sequential path would have produced them, so
// variable/weight/group interning order — and therefore the graph — is
// unchanged. See parallel.go for the decomposition.
func (g *Grounder) SetParallelism(n int) { g.par = n }

// Version returns the grounding generation: 0 before the initial Ground,
// incremented by Ground and by every ApplyUpdate. Together with the
// graph's patch epoch it pins a serving snapshot to one consistent view.
func (g *Grounder) Version() uint64 { return g.version }

// InPlaceUpdates reports whether in-place patching is enabled.
func (g *Grounder) InPlaceUpdates() bool { return g.inPlace }

// SetCompactionThreshold overrides DefaultCompactionThreshold. t <= 0
// restores the default.
func (g *Grounder) SetCompactionThreshold(t float64) { g.compactThresh = t }

func (g *Grounder) compactionThreshold() float64 {
	if g.compactThresh > 0 {
		return g.compactThresh
	}
	return DefaultCompactionThreshold
}

// New creates a Grounder for a validated program. Relations declared in
// the program are created in a fresh database.
func New(prog *datalog.Program, udfs UDFRegistry) (*Grounder, error) {
	g := &Grounder{
		prog:        prog,
		udfs:        udfs,
		data:        db.NewDatabase(),
		rulesByHead: make(map[string][]*ruleEval),
		derived:     make(map[string]bool),
		varIdx:      make(map[string]factor.VarID),
		weightIdx:   make(map[string]factor.WeightID),
		groupIdx:    make(map[string]int),
		graphDirty:  true,
		inPlace:     true,
	}
	for _, name := range prog.DeclOrder {
		d := prog.Decls[name]
		if _, err := g.data.Create(d.Name, d.Cols...); err != nil {
			return nil, err
		}
	}
	for _, r := range prog.Rules {
		if _, err := g.compileRule(r); err != nil {
			return nil, err
		}
	}
	if err := g.computeTopo(); err != nil {
		return nil, err
	}
	return g, nil
}

// compileRule registers a rule (validating UDF availability and the
// incremental-grounding restrictions) and returns its evaluator.
func (g *Grounder) compileRule(r *datalog.Rule) (*ruleEval, error) {
	if r.Weight.HasWeight && !r.Weight.IsFixed && r.Weight.Func != "w" {
		if _, ok := g.udfs[r.Weight.Func]; !ok {
			return nil, fmt.Errorf("ground: rule %s uses unknown UDF %q", r.Head.Pred, r.Weight.Func)
		}
	}
	if r.Kind == datalog.KindInference {
		for _, item := range r.Body {
			if item.Atom == nil || !item.Neg {
				continue
			}
			if d := g.prog.Decls[item.Atom.Pred]; d != nil && d.Variable {
				return nil, fmt.Errorf("ground: rule %s negates variable relation %s in a weighted rule; not supported",
					r.Head.Pred, item.Atom.Pred)
			}
		}
	}
	re := &ruleEval{rule: r, idx: g.nextRuleIdx}
	g.nextRuleIdx++
	if r.Kind == datalog.KindInference {
		// Weighted rules ground factors over existing candidate variables;
		// they never derive tuples, so they create no relation dependencies
		// (this is what makes symmetry rules like the paper's I1
		// non-recursive).
		g.weighted = append(g.weighted, re)
		return re, nil
	}
	g.rulesByHead[r.Head.Pred] = append(g.rulesByHead[r.Head.Pred], re)
	g.derived[r.Head.Pred] = true
	return re, nil
}

// computeTopo orders relations so every rule's body relations precede its
// head. Errors on recursion (KBC programs are non-recursive).
func (g *Grounder) computeTopo() error {
	// Build dependency edges: body rel -> head rel.
	deps := make(map[string]map[string]bool) // head -> set of body rels
	for head, rules := range g.rulesByHead {
		if deps[head] == nil {
			deps[head] = make(map[string]bool)
		}
		for _, re := range rules {
			for _, b := range re.rule.Body {
				if b.Atom != nil {
					deps[head][b.Atom.Pred] = true
				}
			}
		}
	}
	var order []string
	state := make(map[string]int) // 0 unvisited, 1 visiting, 2 done
	var visit func(name string) error
	visit = func(name string) error {
		switch state[name] {
		case 1:
			return fmt.Errorf("ground: recursive rules through relation %s are not supported", name)
		case 2:
			return nil
		}
		state[name] = 1
		// Deterministic order over dependencies.
		var ds []string
		for d := range deps[name] {
			ds = append(ds, d)
		}
		sort.Strings(ds)
		for _, d := range ds {
			if d == name {
				return fmt.Errorf("ground: recursive rules through relation %s are not supported", name)
			}
			if err := visit(d); err != nil {
				return err
			}
		}
		state[name] = 2
		order = append(order, name)
		return nil
	}
	for _, name := range g.prog.DeclOrder {
		if err := visit(name); err != nil {
			return err
		}
	}
	g.topo = order
	return nil
}

// DB exposes the underlying database (read-only use expected; mutate base
// relations only through ApplyUpdate or LoadBase).
func (g *Grounder) DB() *db.Database { return g.data }

// Program returns the (possibly extended) program.
func (g *Grounder) Program() *datalog.Program { return g.prog }

// LoadBase inserts base tuples into a non-derived relation before the
// initial Ground call.
func (g *Grounder) LoadBase(rel string, tuples []db.Tuple) error {
	r := g.data.Relation(rel)
	if r == nil {
		return fmt.Errorf("ground: unknown relation %s", rel)
	}
	if g.derived[rel] {
		return fmt.Errorf("ground: %s is derived; load base data into base relations only", rel)
	}
	for _, t := range tuples {
		r.Insert(t)
	}
	g.graphDirty = true
	return nil
}

// varFor returns (creating if needed) the VarID of a variable-relation
// tuple. Liveness is managed by visibility transitions in
// applyTupleDelta, not here.
func (g *Grounder) varFor(rel string, t db.Tuple) factor.VarID {
	k := varKey(rel, t.Key())
	if id, ok := g.varIdx[k]; ok {
		return id
	}
	id := factor.VarID(len(g.vars))
	g.vars = append(g.vars, varInfo{rel: rel, key: t.Key()})
	g.live = append(g.live, true)
	g.evTrue = append(g.evTrue, 0)
	g.evFalse = append(g.evFalse, 0)
	g.varIdx[k] = id
	return id
}

// VarOf looks up the VarID of a tuple without creating it.
func (g *Grounder) VarOf(rel string, t db.Tuple) (factor.VarID, bool) {
	id, ok := g.varIdx[varKey(rel, t.Key())]
	return id, ok
}

// VarTuple reverses VarOf.
func (g *Grounder) VarTuple(v factor.VarID) (rel string, t db.Tuple) {
	info := g.vars[v]
	return info.rel, db.TupleFromKey(info.key)
}

// IsLive reports whether the variable's tuple is still visible.
func (g *Grounder) IsLive(v factor.VarID) bool { return g.live[v] }

// NumVars returns the total number of variables ever created.
func (g *Grounder) NumVars() int { return len(g.vars) }

// weightFor interns a weight key.
func (g *Grounder) weightFor(key string, init float64, learn bool) (factor.WeightID, bool) {
	if id, ok := g.weightIdx[key]; ok {
		return id, false
	}
	id := factor.WeightID(len(g.weightKeys))
	g.weightKeys = append(g.weightKeys, key)
	g.weightInit = append(g.weightInit, init)
	g.weightLearn = append(g.weightLearn, learn)
	g.weightIdx[key] = id
	return id, true
}

// WeightKey returns the interned key of a weight id (rule + tie values).
func (g *Grounder) WeightKey(id factor.WeightID) string { return g.weightKeys[id] }

// LearnableWeights returns the ids of weights subject to learning (tied
// weights; fixed-value weights are excluded).
func (g *Grounder) LearnableWeights() []factor.WeightID {
	var out []factor.WeightID
	for i, l := range g.weightLearn {
		if l {
			out = append(out, factor.WeightID(i))
		}
	}
	return out
}

// NumGroups returns the number of factor groups materialized so far.
func (g *Grounder) NumGroups() int { return len(g.groups) }

// NumGroundings returns the number of visible groundings across groups.
func (g *Grounder) NumGroundings() int {
	n := 0
	for _, gs := range g.groups {
		for _, gnd := range gs.gnds {
			if gnd.count > 0 {
				n++
			}
		}
	}
	return n
}

// groupFor interns a group. Returns the group index and whether it is new.
func (g *Grounder) groupFor(key string, head factor.VarID, w factor.WeightID, sem factor.Semantics) (int, bool) {
	if gi, ok := g.groupIdx[key]; ok {
		return gi, false
	}
	gi := len(g.groups)
	g.groups = append(g.groups, &groupState{
		key: key, head: head, weight: w, sem: sem,
		gnds: make(map[string]*gndState),
	})
	g.groupIdx[key] = gi
	return gi, true
}

// addGrounding adds (count may be negative for removal) derivations of
// the grounding identified by key (the rule's binding c̄) to a group.
// Reports whether the group's visible grounding set changed.
func (g *Grounder) addGrounding(gi int, key string, lits []factor.Literal, count int) bool {
	gs := g.groups[gi]
	k := key
	gnd := gs.gnds[k]
	if gnd == nil {
		gnd = &gndState{lits: lits, flatID: -1}
		gs.gnds[k] = gnd
		gs.gndOrder = append(gs.gndOrder, k)
	}
	was := gnd.count > 0
	gnd.count += count
	if gnd.count < 0 {
		panic(fmt.Sprintf("ground: grounding count below zero in group %s", gs.key))
	}
	now := gnd.count > 0
	return was != now
}

// bindingKey serializes a rule binding over the rule's variables.
func bindingKey(re *ruleEval, b db.Binding) string {
	var sb strings.Builder
	for _, v := range re.varsOf() {
		sb.WriteString(b[v])
		sb.WriteByte(0x1f)
	}
	return sb.String()
}

// Graph builds (or returns the cached) factor graph for the current
// grounding state. Weight values persist across rebuilds: weights carry
// their last value from the previous graph when one exists, so learned
// weights survive incremental updates (warmstart).
func (g *Grounder) Graph() *factor.Graph {
	if !g.graphDirty && g.lastGraph != nil {
		return g.lastGraph
	}
	b := factor.NewBuilder()
	for range g.vars {
		b.AddVar()
	}
	for i := range g.weightKeys {
		v := g.weightInit[i]
		if g.lastGraph != nil && i < g.lastGraph.NumWeights() {
			v = g.lastGraph.Weight(factor.WeightID(i))
		}
		b.AddWeight(v)
	}
	// Build assigns global grounding indices sequentially over the visible
	// groundings in group order; record them so the in-place patch path
	// can address groundings in the flat pool later.
	var flatID int32
	for _, gs := range g.groups {
		var gnds []factor.Grounding
		for _, k := range gs.gndOrder {
			gnd := gs.gnds[k]
			if gnd.count > 0 {
				gnds = append(gnds, factor.Grounding{Lits: gnd.lits})
				gnd.flatID = flatID
				flatID++
			} else {
				gnd.flatID = -1
			}
		}
		b.AddGroup(gs.head, gs.weight, gs.sem, gnds)
	}
	graph := b.MustBuild()
	for v := range g.vars {
		if g.evTrue[v]+g.evFalse[v] > 0 {
			graph.SetEvidence(factor.VarID(v), true, g.evTrue[v] >= g.evFalse[v])
		}
	}
	g.lastGraph = graph
	g.graphDirty = false
	return graph
}

// QueryVars returns the live, non-evidence variables of a relation — the
// tuples whose marginals the KBC system reports.
func (g *Grounder) QueryVars(rel string) []factor.VarID {
	var out []factor.VarID
	for id := range g.vars {
		if g.vars[id].rel == rel && g.live[id] && g.evTrue[id]+g.evFalse[id] == 0 {
			out = append(out, factor.VarID(id))
		}
	}
	return out
}

// VarsOf returns all live variables of a relation (evidence included).
func (g *Grounder) VarsOf(rel string) []factor.VarID {
	var out []factor.VarID
	for id := range g.vars {
		if g.vars[id].rel == rel && g.live[id] {
			out = append(out, factor.VarID(id))
		}
	}
	return out
}

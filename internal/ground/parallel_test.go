package ground

// Differential test for sharded delta grounding: the same randomized
// update stream is applied to a sequential grounder and a parallel one
// (SetParallelism > 1), and after every step the two must agree
// bit-for-bit — identical deltas (the parallel path applies bindings in
// the canonical sequential order, so interning order is preserved),
// identical derived relations, and semantically identical graphs.
// Failures name the subtest seed; re-run with
// -run 'TestParallelDeltaGroundingMatchesSequential/seed=N'.

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"deepdive/internal/factor"
)

func TestParallelDeltaGroundingMatchesSequential(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runParallelDifferential(t, seed, 4)
		})
	}
	// Negative parallelism = one worker per core.
	t.Run("seed=1_per_core", func(t *testing.T) {
		runParallelDifferential(t, 1, -1)
	})
}

func runParallelDifferential(t *testing.T, seed int64, workers int) {
	rng := rand.New(rand.NewSource(seed))
	seq := &patchedPair{g: newSpouseGrounder(t, spouseBase()), src: spouseSrc}
	par := &patchedPair{g: newSpouseGrounder(t, spouseBase()), src: spouseSrc}
	par.g.SetParallelism(workers)
	seq.g.Graph()
	par.g.Graph()

	gen := newSpouseStream()
	for step := 0; step < 25; step++ {
		u, ruleSrc := gen.next(rng)

		ds := seq.apply(t, cloneUpdate(u), ruleSrc)
		dp := par.apply(t, cloneUpdate(u), ruleSrc)
		if !reflect.DeepEqual(ds, dp) {
			t.Fatalf("seed %d step %d: deltas diverge:\nsequential: %+v\nparallel:   %+v", seed, step, ds, dp)
		}
		if seq.g.Version() != par.g.Version() || seq.g.NumVars() != par.g.NumVars() ||
			seq.g.NumGroups() != par.g.NumGroups() || seq.g.NumGroundings() != par.g.NumGroundings() {
			t.Fatalf("seed %d step %d: grounder state diverges: version %d/%d vars %d/%d groups %d/%d gnds %d/%d",
				seed, step, seq.g.Version(), par.g.Version(), seq.g.NumVars(), par.g.NumVars(),
				seq.g.NumGroups(), par.g.NumGroups(), seq.g.NumGroundings(), par.g.NumGroundings())
		}
		for _, rel := range []string{"MarriedCandidate", "MarriedMentions", "MarriedMentions_Ev"} {
			ts, tp := seq.g.DB().Relation(rel).Tuples(), par.g.DB().Relation(rel).Tuples()
			if !reflect.DeepEqual(ts, tp) {
				t.Fatalf("seed %d step %d: relation %s diverges:\nsequential: %v\nparallel:   %v",
					seed, step, rel, ts, tp)
			}
		}
		if diffs := factor.DiffGraphs(seq.g.Graph(), par.g.Graph(), 3, seed*1000+int64(step)); len(diffs) > 0 {
			msg := ""
			for _, d := range diffs {
				msg += "  " + d + "\n"
			}
			t.Fatalf("seed %d step %d: parallel graph != sequential graph:\n%s", seed, step, msg)
		}
	}
}

package ground

// BenchmarkApplyUpdateParallel isolates the sharded DRed delta
// evaluation: one wide-document insert (m mentions in one sentence, so
// candidate generation joins m·(m−1) ordered pairs plus the feature and
// supervision rules) followed by its deletion, applied through
// ApplyUpdate at 1 vs 4 evaluation workers. The insert/delete
// round-trip keeps the grounder bounded across iterations.
//
// The udf dimension selects the weight-function regime. udf=inproc is
// the pure-CPU case: sharding helps there only when spare cores exist
// (on a single-vCPU container it is flat, since the workers timeslice
// one core). udf=extractor models the paper's deployment shape —
// feature extraction as external processes — by giving phrase() a fixed
// per-call round-trip latency; workers overlap those waits, so sharding
// wins on any core count. Precompute runs UDFs inside the workers
// (eval.go), which is what makes the overlap possible.

import (
	"fmt"
	"testing"
	"time"

	"deepdive/internal/db"
)

func wideDocUpdate(i, m int) Update {
	sid := fmt.Sprintf("bx%d", i)
	u := Update{Inserts: map[string][]db.Tuple{
		"Sentence": {{sid, "a sentence mentioning very many people at once"}},
	}}
	for k := 0; k < m; k++ {
		mid := fmt.Sprintf("q%dm%d", i, k)
		u.Inserts["PersonCandidate"] = append(u.Inserts["PersonCandidate"], db.Tuple{sid, mid})
		u.Inserts["Mentions"] = append(u.Inserts["Mentions"], db.Tuple{sid, mid})
		u.Inserts["EL"] = append(u.Inserts["EL"], db.Tuple{mid, "E" + mid})
	}
	return u
}

// extractorUDF wraps phraseUDF with a fixed per-call latency, standing
// in for an out-of-process feature extractor.
func extractorUDF(lat time.Duration) func([]string) string {
	return func(args []string) string {
		time.Sleep(lat)
		return phraseUDF(args)
	}
}

func BenchmarkApplyUpdateParallel(b *testing.B) {
	udfs := []struct {
		name string
		reg  UDFRegistry
	}{
		{"inproc", testUDFs()},
		{"extractor", UDFRegistry{"phrase": extractorUDF(time.Millisecond)}},
	}
	for _, u := range udfs {
		for _, par := range []int{1, 4} {
			b.Run(fmt.Sprintf("udf=%s/groundpar=%d", u.name, par), func(b *testing.B) {
				g := newSpouseGrounderUDFs(b, spouseBase(), u.reg)
				g.SetParallelism(par)
				g.Graph()
				b.ResetTimer()
				for n := 0; n < b.N; n++ {
					ins := wideDocUpdate(n, 16)
					if _, err := g.ApplyUpdate(ins); err != nil {
						b.Fatal(err)
					}
					if _, err := g.ApplyUpdate(Update{Deletes: ins.Inserts}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

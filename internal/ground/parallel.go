package ground

// Sharded delta grounding: the parallel analogue of the sequential DRed
// loop in incremental.go. The decomposition exploits the structure the
// sequential path already relies on:
//
//   - Evaluation is read-only. A DRed delta term (one rule, one delta
//     seed, one sign) or a full-rule evaluation only *reads* relations
//     and tracker delta lists; every mutation (relation inserts, variable
//     and weight interning, grounding counts) happens in applyBinding.
//   - Within one topological level — the rules deriving a single head
//     relation, or the whole weighted-rule phase — no rule's applies can
//     affect another rule's evaluation: a level's applies only mutate the
//     head relation (which no same-level body may reference, by the
//     no-recursion invariant) and factor state (which no join reads).
//
// So each level becomes: generate the evaluation jobs in sequential
// order, evaluate them concurrently across workers (each job privately
// accumulating its ordered bindings), then apply every job's bindings
// serially in job order. The applied binding stream is exactly the one
// the sequential path produces, which makes the parallel path
// bit-identical — the property the differential test in parallel_test.go
// pins down.
//
// Concurrent evaluation is safe because the lazily built db indexes are
// the only mutable state a join touches, and package db serializes their
// build/refresh internally; the lazy rule memos (plan, variable order)
// are pre-warmed before fan-out.

import (
	"runtime"
	"sync"
	"sync/atomic"

	"deepdive/internal/db"
)

// evalJob is one read-only join evaluation: a rule with an optional delta
// seed bound at one body position, the relation-state resolver of its
// DRed term, and the sign its bindings are applied with. Workers fill
// out/err; the driver applies out serially.
type evalJob struct {
	re       *ruleEval
	seedItem int      // body item index the seed binds, -1 for a full scan
	seed     db.Tuple // nil for a full scan
	sign     int      // +1 derive, -1 retract
	resolve  func(item int, name string) *db.Relation
	skipEval bool // out is pre-filled (empty-body rules)

	out []bindingPre // precomputed bindings in emission order
	err error
}

// parallelism resolves the configured worker count.
func (g *Grounder) parallelism() int {
	if g.par < 0 {
		return runtime.GOMAXPROCS(0)
	}
	return g.par
}

// runEvalJob evaluates one job, collecting precomputed bindings in
// emission order. Precomputing in the worker moves every pure
// per-binding derivation — head/literal instantiation, the UDF weight
// key, the binding key — off the serial apply path; EvalJoin's reused
// binding need not be cloned because precompute retains nothing of it.
func (g *Grounder) runEvalJob(j *evalJob) {
	if j.skipEval {
		return
	}
	j.err = g.evalRule(j.re, j.resolve, j.seedItem, j.seed, func(b db.Binding) bool {
		j.out = append(j.out, g.precompute(j.re, b))
		return true
	})
}

// runJobs evaluates jobs across the configured workers (work-stealing by
// atomic counter; job order does not matter here, only the apply order).
func (g *Grounder) runJobs(jobs []*evalJob) {
	n := g.parallelism()
	if n > len(jobs) {
		n = len(jobs)
	}
	if n <= 1 {
		for _, j := range jobs {
			g.runEvalJob(j)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(n)
	for w := 0; w < n; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				g.runEvalJob(jobs[i])
			}
		}()
	}
	wg.Wait()
}

// fullJobs decomposes a full-rule evaluation (new rules) into jobs.
func (g *Grounder) fullJobs(re *ruleEval) []*evalJob {
	if len(re.rule.Body) == 0 {
		return []*evalJob{{re: re, sign: +1, skipEval: true, out: []bindingPre{g.precompute(re, db.Binding{})}}}
	}
	return []*evalJob{{
		re: re, seedItem: -1, sign: +1,
		resolve: func(_ int, name string) *db.Relation { return g.currentState(name) },
	}}
}

// deltaJobs decomposes one existing rule's DRed delta evaluation into
// jobs, mirroring runRuleDelta term for term: one job per (changed
// positive join atom, sign, delta seed), with the same old/new resolver
// split around the seed position; the negated-atom fallback becomes the
// ordered retract + re-derive job pair of recomputeRule.
func (g *Grounder) deltaJobs(re *ruleEval, tr *tracker) []*evalJob {
	if len(re.rule.Body) == 0 {
		return nil // facts never re-fire
	}
	changed := func(name string) bool {
		return len(tr.added[name]) > 0 || len(tr.removed[name]) > 0
	}
	plan := g.planBody(re)
	touches := false
	negOnChanged := false
	for _, itemIdx := range plan.joinItems {
		atom, neg := g.itemAtom(re, itemIdx)
		if changed(atom.Pred) {
			touches = true
			if neg {
				negOnChanged = true
			}
		}
	}
	if !touches {
		return nil
	}
	if negOnChanged {
		return append([]*evalJob{{
			re: re, seedItem: -1, sign: -1,
			resolve: func(_ int, name string) *db.Relation { return g.oldState(tr, name) },
		}}, g.fullJobs(re)...)
	}
	var jobs []*evalJob
	for si, itemIdx := range plan.joinItems {
		atom, neg := g.itemAtom(re, itemIdx)
		if neg || !changed(atom.Pred) {
			continue
		}
		si := si
		resolver := func(otherItem int, name string) *db.Relation {
			for sj, idx := range plan.joinItems {
				if idx == otherItem {
					if sj < si {
						return g.currentState(name)
					}
					return g.oldState(tr, name)
				}
			}
			return g.currentState(name)
		}
		for _, sd := range []struct {
			tuples []db.Tuple
			sign   int
		}{
			{append([]db.Tuple(nil), tr.added[atom.Pred]...), +1},
			{append([]db.Tuple(nil), tr.removed[atom.Pred]...), -1},
		} {
			for _, t := range sd.tuples {
				jobs = append(jobs, &evalJob{re: re, seedItem: itemIdx, seed: t, sign: sd.sign, resolve: resolver})
			}
		}
	}
	return jobs
}

// runRuleLevel runs one level of the update pipeline on the parallel
// path: jobs generated in sequential order, evaluated concurrently,
// bindings applied serially in job order (the canonical sequential
// order). Errors surface at the job that produced them, after all
// earlier jobs' bindings were applied — the same "grounder partially
// updated" error state the sequential path leaves behind.
func (g *Grounder) runRuleLevel(rules []*ruleEval, tr *tracker, newRules map[*ruleEval]bool) error {
	var jobs []*evalJob
	for _, re := range rules {
		// Pre-warm the rule's lazy memos before fan-out: evalRule consults
		// the cached body plan, and applyBinding the variable order.
		g.planBody(re)
		re.varsOf()
		if newRules[re] {
			jobs = append(jobs, g.fullJobs(re)...)
		} else {
			jobs = append(jobs, g.deltaJobs(re, tr)...)
		}
	}
	g.runJobs(jobs)
	for _, j := range jobs {
		if j.err != nil {
			return j.err
		}
		for i := range j.out {
			if err := g.applyPre(j.re, &j.out[i], j.sign, tr); err != nil {
				return err
			}
		}
	}
	return nil
}

package ground

import (
	"fmt"
	"slices"

	"deepdive/internal/datalog"
	"deepdive/internal/db"
	"deepdive/internal/factor"
)

// Update describes one iteration of the KBC development loop
// (Section 3.1): base-data changes and/or new rules. The paper's rule
// categories map directly: FE rules and I rules arrive as NewRules with
// weights; S rules as NewRules deriving into _Ev relations; new documents
// as Inserts into base relations.
type Update struct {
	Inserts  map[string][]db.Tuple
	Deletes  map[string][]db.Tuple
	NewRules []*datalog.Rule
}

// Empty reports whether the update changes nothing.
func (u *Update) Empty() bool {
	return len(u.Inserts) == 0 && len(u.Deletes) == 0 && len(u.NewRules) == 0
}

// Delta summarizes how an update changed the grounded factor graph — the
// (ΔV, ΔF) the incremental-inference phase consumes (Section 3.2).
type Delta struct {
	// NewVars are variables created by this update.
	NewVars []factor.VarID
	// ModifiedGroups are indexes of pre-existing groups whose grounding
	// sets changed (valid in both the old and the new graph).
	ModifiedGroups []int
	// AddedGroups are indexes of groups created by this update (valid in
	// the new graph only).
	AddedGroups []int
	// EvidenceChanged are variables whose evidence status or value
	// changed (supervision updates).
	EvidenceChanged []factor.VarID
	// NewWeights are weight ids created by this update (new features).
	NewWeights []factor.WeightID
}

// StructureChanged reports whether the update touched the graph structure
// (factors added/removed or new variables) — the first rule of the
// paper's materialization optimizer.
func (d *Delta) StructureChanged() bool {
	return len(d.NewVars) > 0 || len(d.ModifiedGroups) > 0 || len(d.AddedGroups) > 0
}

// HasEvidenceChange reports whether supervision changed.
func (d *Delta) HasEvidenceChange() bool { return len(d.EvidenceChanged) > 0 }

// HasNewFeatures reports whether new tied weights appeared.
func (d *Delta) HasNewFeatures() bool { return len(d.NewWeights) > 0 }

// ChangedGroupsOld returns the group indexes whose energy differs between
// the old and new distribution, restricted to groups that exist in the
// old graph.
func (d *Delta) ChangedGroupsOld() []int32 {
	out := make([]int32, 0, len(d.ModifiedGroups))
	for _, gi := range d.ModifiedGroups {
		out = append(out, int32(gi))
	}
	return out
}

// ChangedGroupsNew returns the group indexes whose energy differs between
// the old and new distribution, as indexes into the new graph.
func (d *Delta) ChangedGroupsNew() []int32 {
	out := make([]int32, 0, len(d.ModifiedGroups)+len(d.AddedGroups))
	for _, gi := range d.ModifiedGroups {
		out = append(out, int32(gi))
	}
	for _, gi := range d.AddedGroups {
		out = append(out, int32(gi))
	}
	return out
}

// ApplyUpdate incrementally folds an update into the grounding state:
// base deltas propagate through the rule pipeline with DRed-style delta
// joins (old rules touched by changed relations re-evaluate only the
// delta terms; untouched rules are skipped), and new rules are evaluated
// once in full. Returns the Δ bookkeeping for incremental inference.
func (g *Grounder) ApplyUpdate(u Update) (*Delta, error) {
	d, commit, err := g.ApplyUpdateStaged(u)
	if err != nil {
		return nil, err
	}
	commit()
	return d, nil
}

// ApplyUpdateStaged is the two-phase form of ApplyUpdate for pipelined
// callers: the returned Delta reflects a fully evaluated update (all
// relation, variable, weight, and group state is mutated), but the
// cached factor graph has not advanced and the grounding version has not
// bumped — that is what commit does. The split lets a serving layer run
// the (expensive, read-heavy) delta evaluation of the next update while
// inference over the current graph is still in flight, and perform the
// (cheap, graph-mutating) commit only once the current graph is no
// longer being evaluated.
//
// The caller must invoke commit exactly once, before any subsequent
// Ground/ApplyUpdate/ApplyUpdateStaged/Graph call on this grounder, and
// must not run commit concurrently with evaluation over any graph of the
// cached graph's lineage (commit patches shared pool state; see
// factor.Patch). On error no commit is returned and the grounder may be
// left partially updated with a dirty graph, exactly like ApplyUpdate.
func (g *Grounder) ApplyUpdateStaged(u Update) (*Delta, func(), error) {
	// In-place patching needs the cached graph to reflect the pre-update
	// state; decide before mutating anything. The dirty flag is set
	// eagerly so error paths (which may leave the grounder partially
	// updated) can never serve a stale cached graph.
	canPatch := g.inPlace && g.lastGraph != nil && !g.graphDirty
	g.graphDirty = true
	tr := newTracker()

	// 1. Register new rules (program-level validation, compile, re-topo).
	newRules := make(map[*ruleEval]bool)
	if len(u.NewRules) > 0 {
		g.prog.Rules = append(g.prog.Rules, u.NewRules...)
		if err := datalog.Validate(g.prog); err != nil {
			g.prog.Rules = g.prog.Rules[:len(g.prog.Rules)-len(u.NewRules)]
			return nil, nil, err
		}
		for _, r := range u.NewRules {
			re, err := g.compileRule(r)
			if err != nil {
				return nil, nil, err
			}
			newRules[re] = true
		}
		if err := g.computeTopo(); err != nil {
			return nil, nil, err
		}
	}

	// 2. Apply base-relation deltas, relations in sorted-name order:
	// applyTupleDelta interns variables for variable base relations, so a
	// map-order walk here would make VarID assignment depend on Go's map
	// iteration — breaking the bit-for-bit determinism WAL replay (and
	// the differential harnesses) relies on.
	for _, rel := range sortedRelNames(u.Inserts) {
		if g.derived[rel] && !isNewHead(newRules, rel) {
			return nil, nil, fmt.Errorf("ground: cannot insert directly into derived relation %s", rel)
		}
		for _, t := range u.Inserts[rel] {
			if err := g.applyTupleDelta(tr, rel, t, +1); err != nil {
				return nil, nil, err
			}
		}
	}
	for _, rel := range sortedRelNames(u.Deletes) {
		for _, t := range u.Deletes[rel] {
			if err := g.applyTupleDelta(tr, rel, t, -1); err != nil {
				return nil, nil, err
			}
		}
	}

	// 3. Propagate through the derivation pipeline in topological order,
	// then ground weighted rules over the final candidate sets. With
	// parallelism configured, each level fans its DRed join evaluations
	// out across workers (see parallel.go); the sequential path keeps the
	// interleaved evaluate-and-apply loop, which never materializes
	// binding lists.
	par := g.parallelism() > 1
	for _, relName := range g.topo {
		rules := g.rulesByHead[relName]
		if par {
			if err := g.runRuleLevel(rules, tr, newRules); err != nil {
				return nil, nil, err
			}
			continue
		}
		for _, re := range rules {
			if newRules[re] {
				if err := g.runRuleFull(re, tr); err != nil {
					return nil, nil, err
				}
				continue
			}
			if err := g.runRuleDelta(re, tr); err != nil {
				return nil, nil, err
			}
		}
	}
	if par {
		if err := g.runRuleLevel(g.weighted, tr, newRules); err != nil {
			return nil, nil, err
		}
	} else {
		for _, re := range g.weighted {
			if newRules[re] {
				if err := g.runRuleFull(re, tr); err != nil {
					return nil, nil, err
				}
				continue
			}
			if err := g.runRuleDelta(re, tr); err != nil {
				return nil, nil, err
			}
		}
	}

	d := &Delta{
		NewVars:    tr.newVars,
		NewWeights: tr.newWeights,
	}
	for gi := range tr.modifiedGroups {
		d.ModifiedGroups = append(d.ModifiedGroups, gi)
	}
	slices.Sort(d.ModifiedGroups)
	d.AddedGroups = append(d.AddedGroups, tr.addedGroups...)
	slices.Sort(d.AddedGroups)
	for v := range tr.evChanged {
		d.EvidenceChanged = append(d.EvidenceChanged, v)
	}
	slices.Sort(d.EvidenceChanged)
	commit := func() {
		if canPatch {
			g.patchGraph(tr)
		}
		g.version++
	}
	return d, commit, nil
}

// patchGraph splices the update's ΔV/ΔF into the current graph through a
// factor.Patch in O(|Δ|): new variables, weights, and groups are
// appended, toggled groundings of pre-existing groups are appended or
// tombstoned by their recorded flat ids, and evidence changes are applied
// — the pools of untouched variables and factors are never rewritten. The
// pre-patch graph object keeps presenting the old distribution (the
// incremental-inference engine scores proposals against both), and the
// grounder's cached graph advances to the patched lineage head. When
// fragmentation from accumulated tombstones and overflow rows crosses the
// compaction threshold, the graph is left dirty so the next Graph call
// performs an O(V+F) compacting rebuild.
func (g *Grounder) patchGraph(tr *tracker) {
	old := g.lastGraph
	p := factor.NewPatch(old)
	for i := old.NumVars(); i < len(g.vars); i++ {
		p.AddVar()
	}
	for i := old.NumWeights(); i < len(g.weightKeys); i++ {
		p.AddWeight(g.weightInit[i])
	}
	// Groups created by this update, with their visible groundings.
	// addedGroups is in creation order, i.e. consecutive indices starting
	// at the old graph's group count.
	for _, gi := range tr.addedGroups {
		gs := g.groups[gi]
		if pgi := p.AddGroup(gs.head, gs.weight, gs.sem); pgi != gi {
			panic(fmt.Sprintf("ground: patch group index %d does not match grounder group %d", pgi, gi))
		}
		for _, key := range gs.gndOrder {
			gnd := gs.gnds[key]
			if gnd.count > 0 {
				gnd.flatID = p.AddGrounding(gi, gnd.lits)
			} else {
				gnd.flatID = -1
			}
		}
	}
	// Visibility toggles in pre-existing groups, in deterministic order
	// (group index, then the group's stable grounding order) so repeated
	// runs produce identical layouts.
	var modGroups []int
	for gi := range tr.touched {
		modGroups = append(modGroups, gi)
	}
	slices.Sort(modGroups)
	for _, gi := range modGroups {
		gs := g.groups[gi]
		keys := tr.touched[gi]
		for _, key := range gs.gndOrder {
			if !keys[key] {
				continue
			}
			gnd := gs.gnds[key]
			if gnd.count > 0 {
				if gnd.flatID < 0 {
					gnd.flatID = p.AddGrounding(gi, gnd.lits)
				}
			} else if gnd.flatID >= 0 {
				p.RemoveGrounding(gnd.flatID)
				gnd.flatID = -1
			}
		}
	}
	// Evidence: supervision changes on existing variables plus the labels
	// of variables created by this update.
	applyEv := func(v factor.VarID) {
		if g.evTrue[v]+g.evFalse[v] > 0 {
			p.SetEvidence(v, true, g.evTrue[v] >= g.evFalse[v])
		} else {
			p.SetEvidence(v, false, false)
		}
	}
	var evs []factor.VarID
	for v := range tr.evChanged {
		evs = append(evs, v)
	}
	slices.Sort(evs)
	for _, v := range evs {
		applyEv(v)
	}
	for i := old.NumVars(); i < len(g.vars); i++ {
		applyEv(factor.VarID(i))
	}
	ng := p.Apply()
	g.lastGraph = ng
	g.graphDirty = ng.Fragmentation() > g.compactionThreshold()
}

// sortedRelNames returns a delta map's relation names in sorted order.
func sortedRelNames(m map[string][]db.Tuple) []string {
	out := make([]string, 0, len(m))
	for rel := range m {
		out = append(out, rel)
	}
	slices.Sort(out)
	return out
}

func isNewHead(newRules map[*ruleEval]bool, rel string) bool {
	for re := range newRules {
		if re.rule.Head.Pred == rel {
			return true
		}
	}
	return false
}

// runRuleDelta applies the DRed delta terms of an existing rule:
//
//	Δ(A₁ ⋈ … ⋈ Aₙ) = Σᵢ A₁ⁿᵉʷ ⋈ … ⋈ Aᵢ₋₁ⁿᵉʷ ⋈ ΔAᵢ ⋈ Aᵢ₊₁ᵒˡᵈ ⋈ … ⋈ Aₙᵒˡᵈ
//
// Rules with a joined negated atom over a changed relation fall back to a
// full old-vs-new re-evaluation (counts make the retract/re-derive pair
// safe). Rules whose body touches no changed relation are skipped — this
// skip is where the incremental-grounding speedup comes from.
func (g *Grounder) runRuleDelta(re *ruleEval, tr *tracker) error {
	if len(re.rule.Body) == 0 {
		return nil // facts never re-fire
	}
	changed := func(name string) bool {
		return len(tr.added[name]) > 0 || len(tr.removed[name]) > 0
	}
	plan := g.planBody(re)
	touches := false
	negOnChanged := false
	for _, itemIdx := range plan.joinItems {
		atom, neg := g.itemAtom(re, itemIdx)
		if changed(atom.Pred) {
			touches = true
			if neg {
				negOnChanged = true
			}
		}
	}
	if !touches {
		return nil
	}
	if negOnChanged {
		return g.recomputeRule(re, tr)
	}
	// Snapshot of deltas before this rule runs: the rule must not consume
	// deltas it produces itself (its head differs from its body by the
	// no-recursion invariant, but applyBinding may add tuples to *body
	// variable relations* via varFor — those do not touch tr.added).
	type seed struct {
		tuples []db.Tuple
		sign   int
	}
	seedsFor := func(name string) []seed {
		return []seed{
			{tuples: append([]db.Tuple(nil), tr.added[name]...), sign: +1},
			{tuples: append([]db.Tuple(nil), tr.removed[name]...), sign: -1},
		}
	}

	for si, itemIdx := range plan.joinItems {
		atom, neg := g.itemAtom(re, itemIdx)
		if neg || !changed(atom.Pred) {
			continue
		}
		resolver := func(otherItem int, name string) *db.Relation {
			// Position of otherItem within joinItems determines old/new.
			for sj, idx := range plan.joinItems {
				if idx == otherItem {
					if sj < si {
						return g.currentState(name)
					}
					return g.oldState(tr, name)
				}
			}
			return g.currentState(name)
		}
		for _, sd := range seedsFor(atom.Pred) {
			for _, t := range sd.tuples {
				var applyErr error
				err := g.evalRule(re, resolver, itemIdx, t, func(b db.Binding) bool {
					if e := g.applyBinding(re, b, sd.sign, tr); e != nil {
						applyErr = e
						return false
					}
					return true
				})
				if applyErr != nil {
					return applyErr
				}
				if err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// recomputeRule fully retracts the rule's old derivations (evaluated
// against pre-update snapshots) and re-derives against the new state.
// Counted semantics make the pairing exact even when most derivations are
// unchanged.
func (g *Grounder) recomputeRule(re *ruleEval, tr *tracker) error {
	var applyErr error
	err := g.evalRule(re,
		func(_ int, name string) *db.Relation { return g.oldState(tr, name) },
		-1, nil,
		func(b db.Binding) bool {
			if e := g.applyBinding(re, b, -1, tr); e != nil {
				applyErr = e
				return false
			}
			return true
		})
	if applyErr != nil {
		return applyErr
	}
	if err != nil {
		return err
	}
	return g.runRuleFull(re, tr)
}

// The delta-sized sorts above use slices.Sort (O(n log n)); the former
// hand-rolled insertion sorts were quadratic on large update batches.
// Remaining per-update walks in this package (QueryVars/VarsOf/
// NumGroundings and the patch loops) are single linear passes.

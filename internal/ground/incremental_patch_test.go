package ground

// Ground-level differential test for in-place updates: random
// ground.Update sequences — new documents, retracted and re-asserted
// mentions, knowledge-base (supervision) changes, and new rules — are
// applied to two grounders over the same program, one on the default
// in-place path (factor.Patch splicing) and one forced onto the
// full-rebuild lesion path with SetInPlaceUpdates(false), and after every
// step the two graphs must be semantically identical. Failures name the
// subtest seed; re-run with -run
// 'TestApplyUpdateInPlaceMatchesRebuild/seed=N' to reproduce.

import (
	"fmt"
	"math/rand"
	"testing"

	"deepdive/internal/datalog"
	"deepdive/internal/db"
	"deepdive/internal/factor"
)

// patchedPair is one grounder under test plus its own copy of the
// evolving rule source (rules are parsed per grounder so the two never
// share AST nodes).
type patchedPair struct {
	g   *Grounder
	src string
}

func (pp *patchedPair) apply(t *testing.T, u Update, ruleSrc string) *Delta {
	t.Helper()
	if ruleSrc != "" {
		full, err := datalog.Parse(pp.src + "\n" + ruleSrc)
		if err != nil {
			t.Fatalf("new rule parse: %v", err)
		}
		u.NewRules = full.Rules[len(pp.g.Program().Rules):]
		pp.src += "\n" + ruleSrc
	}
	d, err := pp.g.ApplyUpdate(u)
	if err != nil {
		t.Fatalf("ApplyUpdate: %v", err)
	}
	return d
}

func TestApplyUpdateInPlaceMatchesRebuild(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runInPlaceDifferential(t, seed, 0) // default compaction threshold
		})
	}
	// An aggressive threshold forces a compacting rebuild after nearly
	// every update; the results must still match.
	t.Run("seed=1_eager_compaction", func(t *testing.T) {
		runInPlaceDifferential(t, 1, 0.01)
	})
}

func runInPlaceDifferential(t *testing.T, seed int64, compactThresh float64) {
	rng := rand.New(rand.NewSource(seed))
	patched := &patchedPair{g: newSpouseGrounder(t, spouseBase()), src: spouseSrc}
	rebuild := &patchedPair{g: newSpouseGrounder(t, spouseBase()), src: spouseSrc}
	patched.g.SetInPlaceUpdates(true)
	rebuild.g.SetInPlaceUpdates(false) // the rebuild lesion is the oracle
	if compactThresh > 0 {
		patched.g.SetCompactionThreshold(compactThresh)
	}
	// Prime the cached graphs (the in-place path patches the last graph).
	patched.g.Graph()
	rebuild.g.Graph()

	gen := newSpouseStream()
	sawPatched := false
	for step := 0; step < 25; step++ {
		u, ruleSrc := gen.next(rng)

		dp := patched.apply(t, cloneUpdate(u), ruleSrc)
		dr := rebuild.apply(t, cloneUpdate(u), ruleSrc)
		if len(dp.NewVars) != len(dr.NewVars) || len(dp.AddedGroups) != len(dr.AddedGroups) ||
			len(dp.ModifiedGroups) != len(dr.ModifiedGroups) {
			t.Fatalf("seed %d step %d: deltas diverge: %+v vs %+v", seed, step, dp, dr)
		}

		ga := patched.g.Graph()
		gb := rebuild.g.Graph()
		if ga.Patched() {
			sawPatched = true
		}
		if diffs := factor.DiffGraphs(ga, gb, 3, seed*100+int64(step)); len(diffs) > 0 {
			msg := ""
			for _, d := range diffs {
				msg += "  " + d + "\n"
			}
			t.Fatalf("seed %d step %d: in-place graph != rebuilt graph:\n%s", seed, step, msg)
		}
	}
	if compactThresh == 0 && !sawPatched {
		t.Fatalf("seed %d: in-place path never produced a patched graph", seed)
	}
}

// spouseStream generates the randomized update stream both differential
// tests (in-place vs rebuild, parallel vs sequential) drive the spouse
// program with: new documents, retracted and re-asserted mentions,
// supervision changes, and occasional new inference rules.
type spouseStream struct {
	docID, mentionID, ruleID int
	mentions                 []spouseMention // Mentions tuples currently present
	removed                  []spouseMention // previously deleted (candidates for re-assertion)
	kbCount                  map[string]int  // Married derivation counts
}

type spouseMention struct{ sid, mid string }

func newSpouseStream() *spouseStream {
	return &spouseStream{kbCount: map[string]int{"Barack\x00Michelle": 1}}
}

func (g *spouseStream) next(rng *rand.Rand) (Update, string) {
	words := []string{"met", "wed", "in", "Paris", "on", "Sunday", "quietly", "again"}
	entities := []string{"Barack", "Michelle", "Malia", "Sasha"}
	u := Update{Inserts: map[string][]db.Tuple{}, Deletes: map[string][]db.Tuple{}}
	ruleSrc := ""
	for op := 0; op < 1+rng.Intn(3); op++ {
		switch rng.Intn(5) {
		case 0: // new document with two person mentions (ΔV + ΔF)
			g.docID++
			sid := fmt.Sprintf("d%d", g.docID)
			content := ""
			for w := 0; w < 3+rng.Intn(5); w++ {
				content += words[rng.Intn(len(words))] + " "
			}
			u.Inserts["Sentence"] = append(u.Inserts["Sentence"], db.Tuple{sid, content})
			for k := 0; k < 2; k++ {
				g.mentionID++
				mid := fmt.Sprintf("x%d", g.mentionID)
				u.Inserts["PersonCandidate"] = append(u.Inserts["PersonCandidate"], db.Tuple{sid, mid})
				u.Inserts["Mentions"] = append(u.Inserts["Mentions"], db.Tuple{sid, mid})
				u.Inserts["EL"] = append(u.Inserts["EL"], db.Tuple{mid, entities[rng.Intn(len(entities))]})
				g.mentions = append(g.mentions, spouseMention{sid, mid})
			}
		case 1: // retract a mention (tombstoned groundings)
			if len(g.mentions) == 0 {
				continue
			}
			i := rng.Intn(len(g.mentions))
			m := g.mentions[i]
			g.mentions = append(g.mentions[:i], g.mentions[i+1:]...)
			g.removed = append(g.removed, m)
			u.Deletes["Mentions"] = append(u.Deletes["Mentions"], db.Tuple{m.sid, m.mid})
		case 2: // re-assert a retracted mention (fresh grounding after tombstone)
			if len(g.removed) == 0 {
				continue
			}
			i := rng.Intn(len(g.removed))
			m := g.removed[i]
			g.removed = append(g.removed[:i], g.removed[i+1:]...)
			g.mentions = append(g.mentions, m)
			u.Inserts["Mentions"] = append(u.Inserts["Mentions"], db.Tuple{m.sid, m.mid})
		case 3: // knowledge-base (supervision) change
			a := entities[rng.Intn(len(entities))]
			b := entities[rng.Intn(len(entities))]
			key := a + "\x00" + b
			if g.kbCount[key] == 0 || rng.Intn(2) == 0 {
				u.Inserts["Married"] = append(u.Inserts["Married"], db.Tuple{a, b})
				g.kbCount[key]++
			} else {
				u.Deletes["Married"] = append(u.Deletes["Married"], db.Tuple{a, b})
				g.kbCount[key]--
			}
		case 4: // new inference rule (ΔF over every candidate)
			if ruleSrc != "" || rng.Intn(3) != 0 {
				continue
			}
			g.ruleID++
			ruleSrc = fmt.Sprintf(
				"I%d: MarriedMentions(m1, m2) :- MarriedCandidate(m1, m2) weight = %.2f.",
				g.ruleID, rng.Float64()-0.5)
		}
	}
	return u, ruleSrc
}

// cloneUpdate deep-copies an update so the two grounders never share
// tuple storage.
func cloneUpdate(u Update) Update {
	c := Update{Inserts: map[string][]db.Tuple{}, Deletes: map[string][]db.Tuple{}}
	for rel, ts := range u.Inserts {
		for _, tp := range ts {
			c.Inserts[rel] = append(c.Inserts[rel], tp.Clone())
		}
	}
	for rel, ts := range u.Deletes {
		for _, tp := range ts {
			c.Deletes[rel] = append(c.Deletes[rel], tp.Clone())
		}
	}
	return c
}

// TestApplyUpdatePatchCost pins the O(Δ) claim structurally: after an
// update touching one document, the patched graph shares its frozen pools
// with the pre-update graph (same backing arrays, longer views) rather
// than rewriting them.
func TestApplyUpdatePatchCost(t *testing.T) {
	g := newSpouseGrounder(t, spouseBase())
	g.SetInPlaceUpdates(true)
	// The toy graph is tiny, so even a one-document delta trips the default
	// compaction threshold; raise it to observe the pure patch path.
	g.SetCompactionThreshold(0.9)
	before := g.Graph()
	csrBefore := before.CSR()

	_, err := g.ApplyUpdate(Update{Inserts: map[string][]db.Tuple{
		"Sentence":        {{"s9", "Pat and Sam wed"}},
		"PersonCandidate": {{"s9", "m8"}, {"s9", "m9"}},
		"Mentions":        {{"s9", "m8"}, {"s9", "m9"}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	after := g.Graph()
	if after == before {
		t.Fatal("patched graph is the same object as the base graph")
	}
	if !after.Patched() {
		t.Fatal("update did not take the patch path")
	}
	csrAfter := after.CSR()
	// The frozen adjacency pool is spliced through overflow rows, never
	// rewritten or appended to: the backing array must be shared.
	if &csrAfter.AdjGroups[0] != &csrBefore.AdjGroups[0] {
		t.Fatal("patch rewrote the adjacency pool instead of splicing")
	}
	// The literal pool grows append-style: the pre-update view keeps its
	// length while the patched view extends it.
	if len(csrAfter.Lits) <= len(csrBefore.Lits) {
		t.Fatalf("literal pool did not grow: %d -> %d", len(csrBefore.Lits), len(csrAfter.Lits))
	}
	if before.NumVars() >= after.NumVars() {
		t.Fatalf("update added no vars: %d -> %d", before.NumVars(), after.NumVars())
	}
	// The base graph still presents the pre-update distribution.
	if before.Patched() || before.NumGroundings() != int(csrBefore.GndOff[before.NumGroups()]) {
		t.Fatal("base graph mutated by patch")
	}
}

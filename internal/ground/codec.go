package ground

import (
	"fmt"

	"deepdive/internal/factor"
	"deepdive/internal/persist"
)

// Snapshot codec for Grounder. Persisted: the extraction tables (every
// db relation, first-insertion order preserved), the variable / weight
// / group interning tables in creation order, each group's groundings
// in gndOrder with counts and flat-pool handles, and the grounding
// version. NOT persisted: the compiled rules — the caller re-parses
// the persisted program source and builds a fresh Grounder with
// ground.New, which recompiles rules in declaration order and so
// reproduces the same rule indexes, weight keys, and topo order. The
// side maps (varIdx, weightIdx, groupIdx) are rebuilt from the ordered
// lists.
const grounderCodecVersion = 1

// AppendSnapshot encodes the grounder's dynamic state into b.
func (g *Grounder) AppendSnapshot(b *persist.Buf) {
	b.U8(grounderCodecVersion)
	b.U64(g.version)

	names := g.data.Names()
	b.Strs(names)
	for _, name := range names {
		g.data.Relation(name).AppendSnapshot(b)
	}

	rels := make([]string, len(g.vars))
	keys := make([]string, len(g.vars))
	for i, v := range g.vars {
		rels[i] = v.rel
		keys[i] = v.key
	}
	b.Strs(rels)
	b.Strs(keys)
	b.Bools(g.live)
	b.Ints(g.evTrue)
	b.Ints(g.evFalse)

	b.Strs(g.weightKeys)
	b.F64s(g.weightInit)
	b.Bools(g.weightLearn)

	b.U64(uint64(len(g.groups)))
	for _, gs := range g.groups {
		b.Str(gs.key)
		b.I64(int64(gs.head))
		b.I64(int64(gs.weight))
		b.U8(uint8(gs.sem))
		b.U64(uint64(len(gs.gndOrder)))
		for _, k := range gs.gndOrder {
			gnd := gs.gnds[k]
			b.Str(k)
			b.I64(int64(gnd.count))
			b.I64(int64(gnd.flatID))
			lits := make([]int32, len(gnd.lits))
			for i, l := range gnd.lits {
				enc := int32(l.Var) << 1
				if l.Neg {
					enc |= 1
				}
				lits[i] = enc
			}
			b.I32s(lits)
		}
	}
}

// RestoreSnapshot decodes state written by AppendSnapshot into a
// freshly constructed Grounder (same program source, no grounding run
// yet). cur becomes the grounder's cached current graph, so Graph()
// serves it without a rebuild.
func (g *Grounder) RestoreSnapshot(rd *persist.Rd, cur *factor.Graph) error {
	if g.version != 0 || len(g.vars) != 0 {
		return fmt.Errorf("ground: RestoreSnapshot into a used grounder")
	}
	if v := rd.U8("grounder version"); rd.Err() == nil && v != grounderCodecVersion {
		return fmt.Errorf("ground: unsupported grounder codec version %d", v)
	}
	g.version = rd.U64("grounding version")

	names := rd.Strs("db relation names")
	for _, name := range names {
		rel := g.data.Relation(name)
		if rel == nil {
			return fmt.Errorf("ground: snapshot has relation %s not declared by the program", name)
		}
		if err := rel.RestoreSnapshot(rd); err != nil {
			return err
		}
	}

	rels := rd.Strs("var rels")
	keys := rd.Strs("var keys")
	if len(rels) != len(keys) {
		return fmt.Errorf("ground: corrupt var table: %d rels, %d keys", len(rels), len(keys))
	}
	g.vars = make([]varInfo, len(rels))
	for i := range rels {
		g.vars[i] = varInfo{rel: rels[i], key: keys[i]}
		g.varIdx[varKey(rels[i], keys[i])] = factor.VarID(i)
	}
	g.live = rd.Bools("var live")
	g.evTrue = rd.Ints("var evTrue")
	g.evFalse = rd.Ints("var evFalse")

	g.weightKeys = rd.Strs("weight keys")
	g.weightInit = rd.F64s("weight init")
	g.weightLearn = rd.Bools("weight learn")
	for i, k := range g.weightKeys {
		g.weightIdx[k] = factor.WeightID(i)
	}

	nGroups := rd.U64("group count")
	for gi := uint64(0); gi < nGroups && rd.Err() == nil; gi++ {
		gs := &groupState{
			key:    rd.Str("group key"),
			head:   factor.VarID(rd.I64("group head")),
			weight: factor.WeightID(rd.I64("group weight")),
			sem:    factor.Semantics(rd.U8("group sem")),
			gnds:   make(map[string]*gndState),
		}
		nGnds := rd.U64("grounding count")
		for k := uint64(0); k < nGnds && rd.Err() == nil; k++ {
			key := rd.Str("grounding key")
			gnd := &gndState{
				count:  int(rd.I64("grounding count")),
				flatID: int32(rd.I64("grounding flatID")),
			}
			enc := rd.I32s("grounding lits")
			gnd.lits = make([]factor.Literal, len(enc))
			for i, e := range enc {
				gnd.lits[i] = factor.Literal{Var: factor.VarID(e >> 1), Neg: e&1 == 1}
			}
			gs.gnds[key] = gnd
			gs.gndOrder = append(gs.gndOrder, key)
		}
		g.groupIdx[gs.key] = len(g.groups)
		g.groups = append(g.groups, gs)
	}
	if err := rd.Err(); err != nil {
		return err
	}
	if len(g.live) != len(g.vars) || len(g.evTrue) != len(g.vars) || len(g.evFalse) != len(g.vars) {
		return fmt.Errorf("ground: corrupt variable tables in snapshot")
	}
	g.lastGraph = cur
	g.graphDirty = cur == nil
	return nil
}

// MarkGraphDirty forces the next Graph() call to rebuild the flat
// pools from the grounding tables — the compaction pass the checkpoint
// writer uses to fold patch overflow rows into a frozen base before
// serializing.
func (g *Grounder) MarkGraphDirty() { g.graphDirty = true }

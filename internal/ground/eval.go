package ground

import (
	"fmt"

	"deepdive/internal/datalog"
	"deepdive/internal/db"
	"deepdive/internal/factor"
)

// relResolver returns the relation state an evaluation should read for a
// given body position. Incremental evaluation mixes pre-update snapshots
// and post-update states per the DRed telescoping sum.
type relResolver func(name string) *db.Relation

// currentState resolves every relation to its live state.
func (g *Grounder) currentState(name string) *db.Relation { return g.data.Relation(name) }

// toTerm converts a datalog term to a query term.
func toTerm(t datalog.Term) db.Term {
	if t.IsVar {
		return db.V(t.Name)
	}
	return db.C(t.Value)
}

// bodyPlan is the compiled query plan of one rule body: join atoms (by
// body-item index) and the variable-relation atoms that become factor
// literals in weighted rules. For weighted rules the plan ends with a
// synthetic *head guard* item (index len(body)): a join atom over the
// head relation that restricts groundings to existing candidate tuples —
// inference rules relate existing variables, they do not derive tuples.
type bodyPlan struct {
	joinItems []int // body item indexes (guard index = len(body)) in join order
	litItems  []int // body item indexes that become literals (weighted rules)
	guardIdx  int   // index used for the head guard, or -1 for none
}

// planBody splits the body of a rule. For weighted (inference) rules,
// positive atoms over variable relations both join (to range over
// candidate tuples) and emit factor literals; negated atoms over variable
// relations are rejected at compile time (their grounding identity would
// depend on candidate liveness, which breaks exact DRed cancellation).
// For deterministic rules every atom joins — negation over a variable
// relation there is a plain anti-join over the candidate set.
func (g *Grounder) planBody(re *ruleEval) bodyPlan {
	if re.plan != nil {
		return *re.plan
	}
	p := bodyPlan{guardIdx: -1}
	weighted := re.rule.Kind == datalog.KindInference
	for i, item := range re.rule.Body {
		if item.Atom == nil {
			continue // conditions handled separately
		}
		decl := g.prog.Decls[item.Atom.Pred]
		p.joinItems = append(p.joinItems, i)
		if weighted && decl.Variable && !item.Neg {
			p.litItems = append(p.litItems, i)
		}
	}
	if weighted {
		p.guardIdx = len(re.rule.Body)
		p.joinItems = append(p.joinItems, p.guardIdx)
	}
	re.plan = &p
	return p
}

// itemAtom returns the atom of a plan item index (the head atom for the
// guard index).
func (g *Grounder) itemAtom(re *ruleEval, itemIdx int) (*datalog.Atom, bool) {
	if itemIdx == len(re.rule.Body) {
		return &re.rule.Head, false
	}
	item := re.rule.Body[itemIdx]
	return item.Atom, item.Neg
}

// conditions extracts the rule's comparison constraints.
func conditions(re *ruleEval) []db.Constraint {
	var cons []db.Constraint
	for _, item := range re.rule.Body {
		if item.Cond != nil {
			cons = append(cons, db.Constraint{Op: item.Cond.Op, L: toTerm(item.Cond.L), R: toTerm(item.Cond.R)})
		}
	}
	return cons
}

// evalRule enumerates the bindings of a rule body. resolve picks relation
// states per body item index. When seedItem >= 0, the positive join atom
// at that body index is bound to seedTuple instead of being scanned.
// seedResolve applies to the remaining atoms.
func (g *Grounder) evalRule(re *ruleEval, resolve func(item int, name string) *db.Relation,
	seedItem int, seedTuple db.Tuple, emit func(db.Binding) bool) error {

	plan := g.planBody(re)
	init := db.Binding{}
	var atoms []db.QueryAtom
	for _, i := range plan.joinItems {
		atom, neg := g.itemAtom(re, i)
		if i == seedItem {
			// Bind the seed tuple manually.
			for pos, t := range atom.Args {
				if t.IsVar {
					if v, ok := init[t.Name]; ok {
						if v != seedTuple[pos] {
							return nil // repeated var mismatch: no bindings
						}
						continue
					}
					init[t.Name] = seedTuple[pos]
				} else if t.Value != seedTuple[pos] {
					return nil // constant mismatch: no bindings
				}
			}
			continue
		}
		rel := resolve(i, atom.Pred)
		terms := make([]db.Term, len(atom.Args))
		for pos, t := range atom.Args {
			terms[pos] = toTerm(t)
		}
		atoms = append(atoms, db.QueryAtom{Rel: rel, Terms: terms, Neg: neg})
	}
	return db.EvalJoin(atoms, conditions(re), init, emit)
}

// instantiate builds the tuple of an atom under a binding.
func instantiate(a datalog.Atom, b db.Binding) db.Tuple {
	t := make(db.Tuple, len(a.Args))
	for i, term := range a.Args {
		if term.IsVar {
			v, ok := b[term.Name]
			if !ok {
				panic(fmt.Sprintf("ground: unbound head variable %s in %s (validation bug)", term.Name, a.Pred))
			}
			t[i] = v
		} else {
			t[i] = term.Value
		}
	}
	return t
}

// weightKeyOf computes the interned weight key and initial value for a
// rule binding.
func (g *Grounder) weightKeyOf(re *ruleEval, b db.Binding) (key string, init float64, learn bool) {
	w := re.rule.Weight
	if w.IsFixed {
		return fmt.Sprintf("w:%d", re.idx), w.Fixed, false
	}
	vals := make([]string, len(w.Args))
	for i, arg := range w.Args {
		vals[i] = b[arg]
	}
	if w.Func == "w" {
		return fmt.Sprintf("w:%d:%s", re.idx, db.Tuple(vals).Key()), 0, true
	}
	udf := g.udfs[w.Func]
	return fmt.Sprintf("w:%d:%s:%s", re.idx, w.Func, udf(vals)), 0, true
}

// tracker accumulates the effects of one grounding pass (full or
// incremental): relation deltas for downstream rules, snapshots, and the
// ΔV/ΔF bookkeeping reported to incremental inference.
type tracker struct {
	added   map[string][]db.Tuple
	removed map[string][]db.Tuple
	olds    map[string]*db.Relation

	newVars        []factor.VarID
	evChanged      map[factor.VarID]bool
	modifiedGroups map[int]bool
	addedGroups    []int
	addedSet       map[int]bool
	newWeights     []factor.WeightID
	// touched records, per pre-existing group, the binding keys of
	// groundings whose visibility toggled — the grounding-grained ΔF the
	// in-place patch path splices into the flat graph.
	touched map[int]map[string]bool
}

func newTracker() *tracker {
	return &tracker{
		added:          make(map[string][]db.Tuple),
		removed:        make(map[string][]db.Tuple),
		olds:           make(map[string]*db.Relation),
		evChanged:      make(map[factor.VarID]bool),
		modifiedGroups: make(map[int]bool),
		addedSet:       make(map[int]bool),
		touched:        make(map[int]map[string]bool),
	}
}

// touch records a grounding visibility toggle in a pre-existing group.
func (tr *tracker) touch(gi int, key string) {
	if tr.touched[gi] == nil {
		tr.touched[gi] = make(map[string]bool)
	}
	tr.touched[gi][key] = true
}

// snapshot records the pre-update state of a relation once.
func (tr *tracker) snapshot(r *db.Relation) {
	if _, ok := tr.olds[r.Name()]; !ok {
		tr.olds[r.Name()] = r.Snapshot()
	}
}

// oldState resolves a relation to its pre-update snapshot (falling back to
// the live state when it was never modified).
func (g *Grounder) oldState(tr *tracker, name string) *db.Relation {
	if old, ok := tr.olds[name]; ok {
		return old
	}
	return g.data.Relation(name)
}

// applyTupleDelta adds count derivations of t to rel, maintaining variable
// liveness, evidence counts, and the delta stream. The relation is
// snapshotted before its first modification in this pass.
func (g *Grounder) applyTupleDelta(tr *tracker, relName string, t db.Tuple, count int) error {
	r := g.data.Relation(relName)
	if r == nil {
		return fmt.Errorf("ground: unknown relation %s", relName)
	}
	tr.snapshot(r)
	if !r.InsertN(t, count) {
		return nil // visibility unchanged: nothing propagates
	}
	visible := r.Contains(t)
	if visible {
		tr.added[relName] = append(tr.added[relName], t.Clone())
	} else {
		tr.removed[relName] = append(tr.removed[relName], t.Clone())
	}
	decl := g.prog.Decls[relName]
	if decl != nil && decl.Variable {
		if visible {
			before := len(g.vars)
			id := g.varFor(relName, t)
			if int(id) >= before {
				tr.newVars = append(tr.newVars, id)
			}
			g.live[id] = true
		} else if id, ok := g.VarOf(relName, t); ok {
			g.live[id] = false
		}
	}
	if base, isEv := datalog.EvidenceTarget(relName); isEv && g.prog.Decls[base] != nil {
		if err := g.applyEvidenceDelta(tr, base, t, visible); err != nil {
			return err
		}
	}
	return nil
}

// applyEvidenceDelta updates per-variable evidence counts when an
// evidence tuple (base..., label) changes visibility.
func (g *Grounder) applyEvidenceDelta(tr *tracker, baseRel string, evTuple db.Tuple, nowVisible bool) error {
	label := evTuple[len(evTuple)-1]
	var isTrue bool
	switch label {
	case "true":
		isTrue = true
	case "false":
		isTrue = false
	default:
		return fmt.Errorf("ground: evidence label %q in %s_Ev must be true or false", label, baseRel)
	}
	base := evTuple[:len(evTuple)-1]
	before := len(g.vars)
	id := g.varFor(baseRel, base)
	if int(id) >= before {
		tr.newVars = append(tr.newVars, id)
	}
	d := 1
	if !nowVisible {
		d = -1
	}
	if isTrue {
		g.evTrue[id] += d
	} else {
		g.evFalse[id] += d
	}
	tr.evChanged[id] = true
	return nil
}

// bindingPre holds the pure derivations of one rule binding — everything
// applying it needs that does not touch mutable grounder state: the
// instantiated head, the weight key (including the UDF evaluation, the
// expensive part of feature-extraction rules), the grounding's binding
// key, and the instantiated literal tuples. The parallel path computes
// it inside the evaluation workers; the sequential path builds it inline
// in applyBinding. Both produce identical values — every field is a pure
// function of (rule, binding) — which keeps the parallel path
// bit-identical.
type bindingPre struct {
	head  db.Tuple
	wkey  string
	winit float64
	learn bool
	bkey  string
	lits  []db.Tuple
}

// precompute derives a binding's pure apply inputs. Safe to call from
// evaluation workers: it reads only immutable rule state, the pre-warmed
// plan/varsOf memos, and the (pure) UDF registry; the binding is not
// retained.
func (g *Grounder) precompute(re *ruleEval, b db.Binding) bindingPre {
	p := bindingPre{head: instantiate(re.rule.Head, b)}
	if re.rule.Kind != datalog.KindInference {
		return p
	}
	p.wkey, p.winit, p.learn = g.weightKeyOf(re, b)
	p.bkey = bindingKey(re, b)
	items := g.planBody(re).litItems
	if len(items) > 0 {
		p.lits = make([]db.Tuple, len(items))
		for k, i := range items {
			p.lits[k] = instantiate(*re.rule.Body[i].Atom, b)
		}
	}
	return p
}

// applyBinding applies one rule binding with the given sign (+1 derive,
// −1 retract). Derivation and supervision rules derive head tuples;
// weighted rules materialize factor groundings over existing candidate
// variables (the head-guard join guarantees the head tuple exists).
func (g *Grounder) applyBinding(re *ruleEval, b db.Binding, sign int, tr *tracker) error {
	p := g.precompute(re, b)
	return g.applyPre(re, &p, sign, tr)
}

// applyPre applies one precomputed rule binding: all remaining work is
// the stateful part — relation deltas, variable/weight/group interning,
// grounding counts — and must run on the driver goroutine.
func (g *Grounder) applyPre(re *ruleEval, p *bindingPre, sign int, tr *tracker) error {
	if re.rule.Kind != datalog.KindInference {
		return g.applyTupleDelta(tr, re.rule.Head.Pred, p.head, sign)
	}
	// Weighted rule: materialize the grounding.
	headVar, ok := g.VarOf(re.rule.Head.Pred, p.head)
	if !ok {
		// Candidate visible (guard join) but var not yet assigned — happens
		// when the candidate was loaded as base data before Ground.
		headVar = g.varFor(re.rule.Head.Pred, p.head)
		tr.newVars = append(tr.newVars, headVar)
	}
	wid, isNewW := g.weightFor(p.wkey, p.winit, p.learn)
	if isNewW {
		tr.newWeights = append(tr.newWeights, wid)
	}
	var lits []factor.Literal
	for k, i := range g.planBody(re).litItems {
		item := re.rule.Body[i]
		t := p.lits[k]
		id, ok := g.VarOf(item.Atom.Pred, t)
		if !ok {
			id = g.varFor(item.Atom.Pred, t)
			tr.newVars = append(tr.newVars, id)
		}
		lits = append(lits, factor.Literal{Var: id})
	}
	gkey := fmt.Sprintf("g:%d:%s:%d", re.idx, p.head.Key(), wid)
	gi, isNewG := g.groupFor(gkey, headVar, wid, g.prog.SemOf(re.rule))
	if isNewG {
		tr.addedGroups = append(tr.addedGroups, gi)
		tr.addedSet[gi] = true
	}
	// Groups created earlier in this same pass count as added, not
	// modified: they do not exist in the pre-update graph, so reporting
	// them in ModifiedGroups would leak an out-of-range index into
	// ChangedGroupsOld.
	if g.addGrounding(gi, p.bkey, lits, sign) && !tr.addedSet[gi] {
		tr.modifiedGroups[gi] = true
		tr.touch(gi, p.bkey)
	}
	g.graphDirty = true
	return nil
}

// Ground performs full (from scratch) grounding: it clears all derived
// state, evaluates every rule in topological order, creates variables for
// every visible variable-relation tuple, and applies evidence. Call once
// after LoadBase; use ApplyUpdate for everything afterwards.
func (g *Grounder) Ground() error {
	// Reset derived relations and all factor state.
	for name := range g.derived {
		g.data.Relation(name).Clear()
	}
	g.vars = nil
	g.live = nil
	g.evTrue = nil
	g.evFalse = nil
	g.varIdx = make(map[string]factor.VarID)
	g.weightKeys = nil
	g.weightInit = nil
	g.weightLearn = nil
	g.weightIdx = make(map[string]factor.WeightID)
	g.groups = nil
	g.groupIdx = make(map[string]int)
	g.lastGraph = nil
	g.graphDirty = true

	tr := newTracker()
	// Phase 1: the deterministic derivation pipeline, in topological order.
	for _, relName := range g.topo {
		for _, re := range g.rulesByHead[relName] {
			if err := g.runRuleFull(re, tr); err != nil {
				return err
			}
		}
	}
	g.ensureCandidateVars()
	// Phase 2: weighted rules ground factors over the final candidate sets.
	for _, re := range g.weighted {
		if err := g.runRuleFull(re, tr); err != nil {
			return err
		}
	}
	g.version++
	return nil
}

// runRuleFull evaluates a rule over current state and applies every
// binding with sign +1.
func (g *Grounder) runRuleFull(re *ruleEval, tr *tracker) error {
	if len(re.rule.Body) == 0 {
		return g.applyBinding(re, db.Binding{}, +1, tr)
	}
	var applyErr error
	err := g.evalRule(re,
		func(_ int, name string) *db.Relation { return g.currentState(name) },
		-1, nil,
		func(b db.Binding) bool {
			if e := g.applyBinding(re, b, +1, tr); e != nil {
				applyErr = e
				return false
			}
			return true
		})
	if applyErr != nil {
		return applyErr
	}
	return err
}

// ensureCandidateVars creates variables for every visible tuple of every
// variable relation, so isolated candidates still get marginals.
func (g *Grounder) ensureCandidateVars() {
	for _, name := range g.prog.DeclOrder {
		d := g.prog.Decls[name]
		if !d.Variable {
			continue
		}
		rel := g.data.Relation(name)
		rel.Each(func(t db.Tuple) bool {
			id := g.varFor(name, t)
			g.live[id] = true
			return true
		})
	}
}

package ground

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"strings"
	"testing"

	"deepdive/internal/datalog"
	"deepdive/internal/db"
	"deepdive/internal/factor"
)

// spouseSrc is the paper's running example (Figure 2).
const spouseSrc = `
@relation Sentence(sid, content).
@relation PersonCandidate(sid, mid).
@relation Mentions(sid, mid).
@relation EL(mid, eid).
@relation Married(eid1, eid2).
@variable MarriedCandidate(mid1, mid2).
@variable MarriedMentions(mid1, mid2).
@relation MarriedMentions_Ev(mid1, mid2, label).

R1: MarriedCandidate(m1, m2) :-
    PersonCandidate(s, m1), PersonCandidate(s, m2), m1 != m2.

R2: MarriedMentions(m1, m2) :- MarriedCandidate(m1, m2).

FE1: MarriedMentions(m1, m2) :-
    MarriedCandidate(m1, m2), Mentions(s, m1), Mentions(s, m2),
    Sentence(s, sent)
    weight = phrase(m1, m2, sent).

S1: MarriedMentions_Ev(m1, m2, true) :-
    MarriedCandidate(m1, m2), EL(m1, e1), EL(m2, e2), Married(e1, e2).
`

func phraseUDF(args []string) string {
	// A stand-in for the paper's phrase(): bucket by sentence word count.
	return fmt.Sprint(len(strings.Fields(args[2])))
}

func testUDFs() UDFRegistry { return UDFRegistry{"phrase": phraseUDF} }

type baseData map[string][]db.Tuple

func spouseBase() baseData {
	return baseData{
		"Sentence": {
			{"s1", "B. Obama and Michelle were married Oct. 3, 1992"},
			{"s2", "Malia and Sasha attended the state dinner"},
		},
		"PersonCandidate": {
			{"s1", "m1"}, {"s1", "m2"},
			{"s2", "m3"}, {"s2", "m4"},
		},
		"Mentions": {
			{"s1", "m1"}, {"s1", "m2"},
			{"s2", "m3"}, {"s2", "m4"},
		},
		"EL": {
			{"m1", "Barack"}, {"m2", "Michelle"},
			{"m3", "Malia"}, {"m4", "Sasha"},
		},
		"Married": {
			{"Barack", "Michelle"},
		},
	}
}

func newSpouseGrounder(t testing.TB, base baseData) *Grounder {
	t.Helper()
	return newSpouseGrounderUDFs(t, base, testUDFs())
}

func newSpouseGrounderUDFs(t testing.TB, base baseData, udfs UDFRegistry) *Grounder {
	t.Helper()
	g, err := New(datalog.MustParse(spouseSrc), udfs)
	if err != nil {
		t.Fatal(err)
	}
	for rel, tuples := range base {
		if err := g.LoadBase(rel, tuples); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Ground(); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGroundSpouseProgram(t *testing.T) {
	g := newSpouseGrounder(t, spouseBase())

	// R1 derives ordered pairs within each sentence: 2 + 2 = 4 candidates.
	mc := g.DB().Relation("MarriedCandidate")
	if mc.Len() != 4 {
		t.Fatalf("MarriedCandidate has %d tuples, want 4: %v", mc.Len(), mc.Tuples())
	}
	// FE1 derives MarriedMentions for each candidate (same sentence joins).
	mm := g.DB().Relation("MarriedMentions")
	if mm.Len() != 4 {
		t.Fatalf("MarriedMentions has %d tuples, want 4", mm.Len())
	}
	// S1 labels (m1,m2) as true evidence via the Married KB (the KB fact is
	// directional: only Married(Barack, Michelle) exists).
	ev := g.DB().Relation("MarriedMentions_Ev")
	if ev.Len() != 1 {
		t.Fatalf("MarriedMentions_Ev has %d tuples, want 1: %v", ev.Len(), ev.Tuples())
	}

	graph := g.Graph()
	// Variables: 4 MarriedCandidate + 4 MarriedMentions.
	if graph.NumVars() != 8 {
		t.Fatalf("graph has %d vars, want 8", graph.NumVars())
	}
	// One group per (FE1, head, weight): 4 heads.
	if graph.NumGroups() != 4 {
		t.Fatalf("graph has %d groups, want 4", graph.NumGroups())
	}
	// Evidence set on the two supervised MarriedMentions vars.
	v, ok := g.VarOf("MarriedMentions", db.Tuple{"m1", "m2"})
	if !ok || !graph.IsEvidence(v) || !graph.EvidenceValue(v) {
		t.Fatalf("evidence missing on (m1,m2): ok=%v", ok)
	}
	// Weight tying: both sentences have different word counts, so the UDF
	// produces (at most) 2 distinct weights here.
	if graph.NumWeights() != 2 {
		t.Fatalf("graph has %d weights, want 2 (tied by phrase bucket)", graph.NumWeights())
	}
	// QueryVars excludes evidence vars: 4 candidates − 1 supervised.
	qs := g.QueryVars("MarriedMentions")
	if len(qs) != 3 {
		t.Fatalf("QueryVars(MarriedMentions) = %d, want 3", len(qs))
	}
}

func TestGroundLiteralStructure(t *testing.T) {
	g := newSpouseGrounder(t, spouseBase())
	graph := g.Graph()
	// Every FE1 group should have exactly one grounding whose literal is
	// the MarriedCandidate tuple (the only variable-relation body atom).
	for i := 0; i < graph.NumGroups(); i++ {
		gr := graph.Group(i)
		if len(gr.Groundings) != 1 {
			t.Fatalf("group %d has %d groundings, want 1", i, len(gr.Groundings))
		}
		if len(gr.Groundings[0].Lits) != 1 {
			t.Fatalf("group %d grounding has %d literals, want 1", i, len(gr.Groundings[0].Lits))
		}
		lit := gr.Groundings[0].Lits[0]
		rel, _ := g.VarTuple(lit.Var)
		if rel != "MarriedCandidate" || lit.Neg {
			t.Fatalf("group %d literal over %s (neg=%v), want positive MarriedCandidate", i, rel, lit.Neg)
		}
	}
}

// weightByKey deterministically assigns weight values from their interned
// keys so two independently-built graphs can be compared energetically.
func weightByKey(g *Grounder, graph *factor.Graph) {
	for i := 0; i < graph.NumWeights(); i++ {
		h := fnv.New32a()
		h.Write([]byte(g.WeightKey(factor.WeightID(i))))
		v := float64(h.Sum32()%1000)/500.0 - 1.0
		graph.SetWeight(factor.WeightID(i), v)
	}
}

// liveTupleSet returns rel -> tuple keys of live vars.
func liveTupleSet(g *Grounder) map[string]bool {
	out := map[string]bool{}
	for v := 0; v < g.NumVars(); v++ {
		if g.IsLive(factor.VarID(v)) {
			rel, tup := g.VarTuple(factor.VarID(v))
			out[rel+"\x00"+tup.Key()] = true
		}
	}
	return out
}

// requireEquivalent checks that two grounders define the same distribution
// over the shared tuple universe: same live tuples, same evidence, and the
// same energy (up to a constant) for matching assignments. Energy equality
// up to a constant is verified by comparing energy *differences* between
// random assignment pairs.
func requireEquivalent(t *testing.T, a, b *Grounder, seed int64) {
	t.Helper()
	ga, gb := a.Graph(), b.Graph()
	weightByKey(a, ga)
	weightByKey(b, gb)

	la, lb := liveTupleSet(a), liveTupleSet(b)
	if len(la) != len(lb) {
		t.Fatalf("live tuple counts differ: %d vs %d", len(la), len(lb))
	}
	for k := range la {
		if !lb[k] {
			t.Fatalf("tuple %q live in a but not b", k)
		}
	}
	// Evidence agreement.
	for k := range la {
		parts := strings.SplitN(k, "\x00", 2)
		va, _ := a.VarOf(parts[0], db.TupleFromKey(parts[1]))
		vb, _ := b.VarOf(parts[0], db.TupleFromKey(parts[1]))
		if ga.IsEvidence(va) != gb.IsEvidence(vb) {
			t.Fatalf("evidence flag differs on %q", k)
		}
		if ga.IsEvidence(va) && ga.EvidenceValue(va) != gb.EvidenceValue(vb) {
			t.Fatalf("evidence value differs on %q", k)
		}
	}

	rng := rand.New(rand.NewSource(seed))
	keys := make([]string, 0, len(la))
	for k := range la {
		keys = append(keys, k)
	}
	// Deterministic key order for reproducibility.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	buildAssign := func(g *Grounder, graph *factor.Graph, vals map[string]bool) []bool {
		assign := make([]bool, graph.NumVars())
		for k, val := range vals {
			parts := strings.SplitN(k, "\x00", 2)
			v, ok := g.VarOf(parts[0], db.TupleFromKey(parts[1]))
			if !ok {
				t.Fatalf("missing var for %q", k)
			}
			assign[v] = val
		}
		return assign
	}
	var prevDiff float64
	havePrev := false
	for trial := 0; trial < 12; trial++ {
		vals := map[string]bool{}
		for _, k := range keys {
			vals[k] = rng.Intn(2) == 0
		}
		ea := ga.Energy(buildAssign(a, ga, vals))
		eb := gb.Energy(buildAssign(b, gb, vals))
		diff := ea - eb
		if havePrev && math.Abs(diff-prevDiff) > 1e-9 {
			t.Fatalf("energy difference not constant: %v vs %v", diff, prevDiff)
		}
		prevDiff, havePrev = diff, true
	}
}

func TestIncrementalInsertMatchesFullReground(t *testing.T) {
	// Incremental: start with base, apply an update adding a new sentence
	// with two person mentions.
	inc := newSpouseGrounder(t, spouseBase())
	upd := Update{Inserts: map[string][]db.Tuple{
		"Sentence":        {{"s3", "Pat and Chris tied the knot"}},
		"PersonCandidate": {{"s3", "m5"}, {"s3", "m6"}},
		"Mentions":        {{"s3", "m5"}, {"s3", "m6"}},
		"EL":              {{"m5", "Pat"}, {"m6", "Chris"}},
		"Married":         {{"Pat", "Chris"}},
	}}
	delta, err := inc.ApplyUpdate(upd)
	if err != nil {
		t.Fatal(err)
	}
	if !delta.StructureChanged() {
		t.Fatal("insert update should change structure")
	}
	if !delta.HasEvidenceChange() {
		t.Fatal("new Married fact should produce evidence changes")
	}

	// Full: fresh grounder with base + update applied up front.
	base := spouseBase()
	for rel, ts := range upd.Inserts {
		base[rel] = append(base[rel], ts...)
	}
	full := newSpouseGrounder(t, base)
	requireEquivalent(t, inc, full, 101)
}

func TestIncrementalDeleteMatchesFullReground(t *testing.T) {
	inc := newSpouseGrounder(t, spouseBase())
	upd := Update{Deletes: map[string][]db.Tuple{
		"PersonCandidate": {{"s1", "m2"}},
		"Mentions":        {{"s1", "m2"}},
	}}
	if _, err := inc.ApplyUpdate(upd); err != nil {
		t.Fatal(err)
	}
	// Candidates involving m2 must be gone.
	mc := inc.DB().Relation("MarriedCandidate")
	if mc.Contains(db.Tuple{"m1", "m2"}) || mc.Contains(db.Tuple{"m2", "m1"}) {
		t.Fatalf("deleted candidate still visible: %v", mc.Tuples())
	}

	base := spouseBase()
	base["PersonCandidate"] = base["PersonCandidate"][:1]
	base["PersonCandidate"] = append(base["PersonCandidate"], db.Tuple{"s2", "m3"}, db.Tuple{"s2", "m4"})
	base["Mentions"] = []db.Tuple{{"s1", "m1"}, {"s2", "m3"}, {"s2", "m4"}}
	full := newSpouseGrounder(t, base)
	requireEquivalent(t, inc, full, 202)
}

func TestIncrementalNewRuleMatchesFullReground(t *testing.T) {
	// Add the paper's I1-style symmetry rule incrementally.
	const symRule = `
I1: MarriedMentions(m2, m1) :-
    MarriedMentions(m1, m2), MarriedCandidate(m2, m1)
    weight = 0.8.
`
	inc := newSpouseGrounder(t, spouseBase())
	newProg := datalog.MustParse(spouseSrc + symRule)
	rule := newProg.RuleByLabel("I1")
	delta, err := inc.ApplyUpdate(Update{NewRules: []*datalog.Rule{rule}})
	if err != nil {
		t.Fatal(err)
	}
	if len(delta.AddedGroups) == 0 {
		t.Fatal("new inference rule added no groups")
	}

	fullProg := datalog.MustParse(spouseSrc + symRule)
	full, err := New(fullProg, testUDFs())
	if err != nil {
		t.Fatal(err)
	}
	for rel, tuples := range spouseBase() {
		if err := full.LoadBase(rel, tuples); err != nil {
			t.Fatal(err)
		}
	}
	if err := full.Ground(); err != nil {
		t.Fatal(err)
	}
	requireEquivalent(t, inc, full, 303)
}

func TestIncrementalSupervisionDelta(t *testing.T) {
	inc := newSpouseGrounder(t, spouseBase())
	graph := inc.Graph()
	v, _ := inc.VarOf("MarriedMentions", db.Tuple{"m3", "m4"})
	if graph.IsEvidence(v) {
		t.Fatal("(m3,m4) should start unsupervised")
	}
	// Marrying Malia and Sasha in the KB flips supervision via S1.
	delta, err := inc.ApplyUpdate(Update{Inserts: map[string][]db.Tuple{
		"Married": {{"Malia", "Sasha"}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !delta.HasEvidenceChange() {
		t.Fatal("supervision update reported no evidence change")
	}
	graph = inc.Graph()
	if !graph.IsEvidence(v) || !graph.EvidenceValue(v) {
		t.Fatal("evidence not set after supervision update")
	}
	// Removing the KB fact must clear it (DRed deletion through S1).
	if _, err := inc.ApplyUpdate(Update{Deletes: map[string][]db.Tuple{
		"Married": {{"Malia", "Sasha"}},
	}}); err != nil {
		t.Fatal(err)
	}
	graph = inc.Graph()
	if graph.IsEvidence(v) {
		t.Fatal("evidence not cleared after KB fact deletion")
	}
}

func TestDeltaChangedGroupViews(t *testing.T) {
	d := &Delta{ModifiedGroups: []int{3, 1}, AddedGroups: []int{7}}
	old := d.ChangedGroupsOld()
	if len(old) != 2 {
		t.Fatalf("ChangedGroupsOld = %v", old)
	}
	nw := d.ChangedGroupsNew()
	if len(nw) != 3 || nw[2] != 7 {
		t.Fatalf("ChangedGroupsNew = %v", nw)
	}
	if !d.StructureChanged() || d.HasEvidenceChange() || d.HasNewFeatures() {
		t.Fatal("delta flags wrong")
	}
}

func TestRecursionRejected(t *testing.T) {
	src := `
@relation R(x, y).
@relation T(x, y).
T(x, y) :- R(x, y).
T(x, z) :- T(x, y), T(y, z).
`
	_, err := New(datalog.MustParse(src), nil)
	if err == nil || !strings.Contains(err.Error(), "recursive") {
		t.Fatalf("recursion accepted: %v", err)
	}
}

func TestUnknownUDFRejected(t *testing.T) {
	src := `
@variable Q(x).
@relation R(x).
Q(x) :- R(x) weight = mystery(x).
`
	_, err := New(datalog.MustParse(src), nil)
	if err == nil || !strings.Contains(err.Error(), "unknown UDF") {
		t.Fatalf("unknown UDF accepted: %v", err)
	}
}

func TestNegatedVariableRelationInWeightedRuleRejected(t *testing.T) {
	src := `
@variable Q(x).
@variable P(x).
@relation R(x).
Q(x) :- R(x), !P(x) weight = 1.
`
	_, err := New(datalog.MustParse(src), nil)
	if err == nil || !strings.Contains(err.Error(), "negates variable relation") {
		t.Fatalf("negated variable relation accepted: %v", err)
	}
}

func TestDirectInsertIntoDerivedRejected(t *testing.T) {
	g := newSpouseGrounder(t, spouseBase())
	_, err := g.ApplyUpdate(Update{Inserts: map[string][]db.Tuple{
		"MarriedCandidate": {{"mX", "mY"}},
	}})
	if err == nil || !strings.Contains(err.Error(), "derived relation") {
		t.Fatalf("direct derived insert accepted: %v", err)
	}
}

func TestBadEvidenceLabelRejected(t *testing.T) {
	src := `
@variable Q(x).
@relation Q_Ev(x, label).
@relation R(x, label).
S: Q_Ev(x, l) :- R(x, l).
`
	g, err := New(datalog.MustParse(src), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.LoadBase("R", []db.Tuple{{"a", "maybe"}}); err != nil {
		t.Fatal(err)
	}
	if err := g.Ground(); err == nil || !strings.Contains(err.Error(), "must be true or false") {
		t.Fatalf("bad label accepted: %v", err)
	}
}

func TestUpdateEmpty(t *testing.T) {
	u := Update{}
	if !u.Empty() {
		t.Fatal("zero update not empty")
	}
	u.Inserts = map[string][]db.Tuple{"R": {{"a"}}}
	if u.Empty() {
		t.Fatal("non-zero update empty")
	}
}

func TestLoadBaseErrors(t *testing.T) {
	g := newSpouseGrounder(t, spouseBase())
	if err := g.LoadBase("Nope", nil); err == nil {
		t.Fatal("unknown relation accepted")
	}
	if err := g.LoadBase("MarriedCandidate", nil); err == nil {
		t.Fatal("derived relation accepted")
	}
}

func TestFixedWeightGrounding(t *testing.T) {
	src := `
@variable Q(x).
@relation R(x).
Q(x) :- R(x).
Q(x) :- R(x) weight = 2.5.
`
	g, err := New(datalog.MustParse(src), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.LoadBase("R", []db.Tuple{{"a"}, {"b"}}); err != nil {
		t.Fatal(err)
	}
	if err := g.Ground(); err != nil {
		t.Fatal(err)
	}
	graph := g.Graph()
	if graph.NumWeights() != 1 || graph.Weight(0) != 2.5 {
		t.Fatalf("fixed weight: n=%d v=%v", graph.NumWeights(), graph.Weight(0))
	}
	if len(g.LearnableWeights()) != 0 {
		t.Fatal("fixed weight reported learnable")
	}
}

func TestTiedWeightGrounding(t *testing.T) {
	src := `
@variable Class(x).
@relation R(x, f).
Class(x) :- R(x, f).
Class(x) :- R(x, f) weight = w(f).
`
	g, err := New(datalog.MustParse(src), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.LoadBase("R", []db.Tuple{
		{"a", "f1"}, {"b", "f1"}, {"c", "f2"},
	}); err != nil {
		t.Fatal(err)
	}
	if err := g.Ground(); err != nil {
		t.Fatal(err)
	}
	graph := g.Graph()
	// Two distinct features -> two tied weights shared across objects.
	if graph.NumWeights() != 2 {
		t.Fatalf("weights = %d, want 2", graph.NumWeights())
	}
	if len(g.LearnableWeights()) != 2 {
		t.Fatalf("learnable = %d, want 2", len(g.LearnableWeights()))
	}
	if graph.NumGroups() != 3 {
		t.Fatalf("groups = %d, want 3 (one per object/weight)", graph.NumGroups())
	}
}

func TestWeightsSurviveGraphRebuild(t *testing.T) {
	g := newSpouseGrounder(t, spouseBase())
	graph := g.Graph()
	graph.SetWeight(0, 3.25)
	if _, err := g.ApplyUpdate(Update{Inserts: map[string][]db.Tuple{
		"Sentence": {{"s9", "filler text here"}},
	}}); err != nil {
		t.Fatal(err)
	}
	graph2 := g.Graph()
	if graph2.Weight(0) != 3.25 {
		t.Fatalf("weight lost on rebuild: %v", graph2.Weight(0))
	}
}

func TestGroundingCountsReporting(t *testing.T) {
	g := newSpouseGrounder(t, spouseBase())
	if g.NumGroups() != 4 || g.NumGroundings() != 4 {
		t.Fatalf("groups=%d groundings=%d, want 4/4", g.NumGroups(), g.NumGroundings())
	}
	if g.NumVars() != 8 {
		t.Fatalf("vars=%d, want 8", g.NumVars())
	}
}

// TestQuickRandomUpdateSequences drives the incremental grounder through
// random insert/delete sequences and checks, after every step, that it
// defines the same distribution as a fresh full grounding of the same
// base state — the end-to-end DRed correctness property.
func TestQuickRandomUpdateSequences(t *testing.T) {
	people := []string{"m1", "m2", "m3", "m4", "m5", "m6"}
	ents := []string{"A", "B", "C", "D", "E", "F"}
	sents := []string{"s1", "s2", "s3"}

	for trial := 0; trial < 8; trial++ {
		rng := rand.New(rand.NewSource(int64(900 + trial)))
		inc := newSpouseGrounder(t, spouseBase())
		base := spouseBase()

		present := map[string]map[string]bool{}
		has := func(rel string, tu db.Tuple) bool {
			return present[rel] != nil && present[rel][tu.Key()]
		}
		mark := func(rel string, tu db.Tuple, on bool) {
			if present[rel] == nil {
				present[rel] = map[string]bool{}
			}
			present[rel][tu.Key()] = on
		}
		for rel, ts := range base {
			for _, tu := range ts {
				mark(rel, tu, true)
			}
		}

		for step := 0; step < 4; step++ {
			upd := Update{Inserts: map[string][]db.Tuple{}, Deletes: map[string][]db.Tuple{}}
			for k := 0; k < 3; k++ {
				var rel string
				var tu db.Tuple
				switch rng.Intn(3) {
				case 0:
					rel = "PersonCandidate"
					tu = db.Tuple{sents[rng.Intn(len(sents))], people[rng.Intn(len(people))]}
				case 1:
					rel = "Mentions"
					tu = db.Tuple{sents[rng.Intn(len(sents))], people[rng.Intn(len(people))]}
				default:
					rel = "Married"
					tu = db.Tuple{ents[rng.Intn(len(ents))], ents[rng.Intn(len(ents))]}
				}
				if has(rel, tu) {
					if rng.Intn(2) == 0 {
						upd.Deletes[rel] = append(upd.Deletes[rel], tu)
						mark(rel, tu, false)
					}
				} else {
					upd.Inserts[rel] = append(upd.Inserts[rel], tu)
					mark(rel, tu, true)
				}
			}
			if _, err := inc.ApplyUpdate(upd); err != nil {
				t.Fatalf("trial %d step %d: %v", trial, step, err)
			}

			// Fresh grounder over the accumulated base state.
			fresh := map[string][]db.Tuple{}
			for rel, keys := range present {
				for key, on := range keys {
					if on {
						fresh[rel] = append(fresh[rel], db.TupleFromKey(key))
					}
				}
			}
			for rel, ts := range base {
				if present[rel] == nil {
					fresh[rel] = ts
				}
			}
			full := newSpouseGrounder(t, fresh)
			requireEquivalent(t, inc, full, int64(7000+trial*10+step))
		}
	}
}

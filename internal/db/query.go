package db

import (
	"fmt"
	"strconv"
)

// Term is one argument position of a query atom: a named variable or a
// constant value.
type Term struct {
	IsVar bool
	Var   string // variable name when IsVar
	Const Value  // constant otherwise
}

// V returns a variable term.
func V(name string) Term { return Term{IsVar: true, Var: name} }

// C returns a constant term.
func C(v Value) Term { return Term{Const: v} }

// QueryAtom is one conjunct of a conjunctive query: a relation and a term
// pattern. A negated atom is an anti-join guard — the conjunction only
// holds where no matching tuple exists.
type QueryAtom struct {
	Rel   *Relation
	Terms []Term
	Neg   bool
}

// Constraint is a comparison between two terms, evaluated once both sides
// are bound. Supported ops: "=", "!=", "<", "<=" (numeric when both sides
// parse as integers, lexicographic otherwise).
type Constraint struct {
	Op   string
	L, R Term
}

// Binding maps variable names to values during evaluation.
type Binding map[string]Value

// Clone copies a binding.
func (b Binding) Clone() Binding {
	c := make(Binding, len(b))
	for k, v := range b {
		c[k] = v
	}
	return c
}

func termValue(t Term, b Binding) (Value, bool) {
	if !t.IsVar {
		return t.Const, true
	}
	v, ok := b[t.Var]
	return v, ok
}

func compare(op string, l, r Value) (bool, error) {
	switch op {
	case "=":
		return l == r, nil
	case "!=":
		return l != r, nil
	case "<", "<=":
		li, lerr := strconv.Atoi(l)
		ri, rerr := strconv.Atoi(r)
		var less, eq bool
		if lerr == nil && rerr == nil {
			less, eq = li < ri, li == ri
		} else {
			less, eq = l < r, l == r
		}
		if op == "<" {
			return less, nil
		}
		return less || eq, nil
	default:
		return false, fmt.Errorf("db: unsupported constraint op %q", op)
	}
}

// EvalJoin enumerates every binding of the conjunction (atoms ∧
// constraints), extending init, and calls emit for each. The binding
// passed to emit is reused across calls — clone it to retain. Returning
// false from emit stops enumeration early. Evaluation is a left-to-right
// index nested-loop join; constraints fire as soon as both sides are
// bound. Negated atoms require all their variables to be bound by earlier
// atoms (or init); unbound variables in a negated atom are an error.
func EvalJoin(atoms []QueryAtom, cons []Constraint, init Binding, emit func(Binding) bool) error {
	b := make(Binding, len(init)+8)
	for k, v := range init {
		b[k] = v
	}
	// Track which constraints have fired to avoid re-checking.
	_, err := evalFrom(atoms, cons, b, 0, emit)
	return err
}

// evalFrom recursively evaluates atoms[i:]. Returns keepGoing=false when
// emit requested a stop.
func evalFrom(atoms []QueryAtom, cons []Constraint, b Binding, i int, emit func(Binding) bool) (bool, error) {
	if ok, applicable, err := checkConstraints(cons, b); err != nil {
		return false, err
	} else if applicable && !ok {
		return true, nil
	}
	if i == len(atoms) {
		// Final full constraint check (covers constraints over variables
		// bound only by init).
		for _, c := range cons {
			lv, lok := termValue(c.L, b)
			rv, rok := termValue(c.R, b)
			if !lok || !rok {
				return false, fmt.Errorf("db: constraint %v %s %v has unbound variable", c.L, c.Op, c.R)
			}
			ok, err := compare(c.Op, lv, rv)
			if err != nil {
				return false, err
			}
			if !ok {
				return true, nil
			}
		}
		return emit(b), nil
	}
	atom := atoms[i]
	if atom.Neg {
		match, err := hasMatch(atom, b)
		if err != nil {
			return false, err
		}
		if match {
			return true, nil
		}
		return evalFrom(atoms, cons, b, i+1, emit)
	}

	// Split positions into bound (index key) and free.
	var boundCols []int
	var boundVals []Value
	for pos, t := range atom.Terms {
		if v, ok := termValue(t, b); ok {
			boundCols = append(boundCols, pos)
			boundVals = append(boundVals, v)
		}
	}
	candidates := lookupCandidates(atom.Rel, boundCols, boundVals)
	for _, tup := range candidates {
		newVars, ok := bindTuple(atom.Terms, tup, b)
		if !ok {
			continue
		}
		keep, err := evalFrom(atoms, cons, b, i+1, emit)
		for _, v := range newVars {
			delete(b, v)
		}
		if err != nil || !keep {
			return keep, err
		}
	}
	return true, nil
}

// checkConstraints verifies every constraint whose sides are both bound.
// Returns ok=false (with applicable=true) on the first violated one.
func checkConstraints(cons []Constraint, b Binding) (ok bool, applicable bool, err error) {
	for _, c := range cons {
		lv, lok := termValue(c.L, b)
		rv, rok := termValue(c.R, b)
		if !lok || !rok {
			continue
		}
		pass, err := compare(c.Op, lv, rv)
		if err != nil {
			return false, true, err
		}
		if !pass {
			return false, true, nil
		}
	}
	return true, true, nil
}

// lookupCandidates fetches matching tuples using an index on the bound
// columns (full scan when nothing is bound).
func lookupCandidates(rel *Relation, cols []int, vals []Value) []Tuple {
	if len(cols) == 0 {
		return rel.Tuples()
	}
	return rel.IndexOn(cols...).Lookup(vals...)
}

// bindTuple extends b with the atom's free variables bound to tup's
// values. It verifies constants and already-bound variables (including
// repeated variables within the atom). Returns the newly bound variable
// names for rollback, and whether the tuple matches.
func bindTuple(terms []Term, tup Tuple, b Binding) (newVars []string, ok bool) {
	for pos, t := range terms {
		if !t.IsVar {
			if tup[pos] != t.Const {
				rollback(b, newVars)
				return nil, false
			}
			continue
		}
		if v, bound := b[t.Var]; bound {
			if tup[pos] != v {
				rollback(b, newVars)
				return nil, false
			}
			continue
		}
		b[t.Var] = tup[pos]
		newVars = append(newVars, t.Var)
	}
	return newVars, true
}

func rollback(b Binding, vars []string) {
	for _, v := range vars {
		delete(b, v)
	}
}

// hasMatch reports whether any tuple matches a (negated) atom under b.
// All variables of the atom must be bound.
func hasMatch(atom QueryAtom, b Binding) (bool, error) {
	key := make([]Value, len(atom.Terms))
	for pos, t := range atom.Terms {
		v, ok := termValue(t, b)
		if !ok {
			return false, fmt.Errorf("db: negated atom over %s has unbound variable %q", atom.Rel.Name(), t.Var)
		}
		key[pos] = v
	}
	return atom.Rel.Contains(Tuple(key)), nil
}

// CountJoin returns the number of bindings of the conjunction.
func CountJoin(atoms []QueryAtom, cons []Constraint, init Binding) (int, error) {
	n := 0
	err := EvalJoin(atoms, cons, init, func(Binding) bool {
		n++
		return true
	})
	return n, err
}

package db

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTupleKeyRoundTrip(t *testing.T) {
	tu := Tuple{"a", "b,c", ""}
	if got := TupleFromKey(tu.Key()); got.Key() != tu.Key() {
		t.Fatalf("round trip: %v -> %v", tu, got)
	}
	if tu.String() != "(a, b,c, )" {
		t.Fatalf("String = %q", tu.String())
	}
}

func TestInsertDeleteVisibility(t *testing.T) {
	r := NewRelation("R", "x", "y")
	if !r.Insert(Tuple{"a", "1"}) {
		t.Fatal("first insert should report newly visible")
	}
	if r.Insert(Tuple{"a", "1"}) {
		t.Fatal("second insert should not report visibility change")
	}
	if r.Len() != 1 || r.Count(Tuple{"a", "1"}) != 2 {
		t.Fatalf("Len=%d Count=%d", r.Len(), r.Count(Tuple{"a", "1"}))
	}
	if r.Delete(Tuple{"a", "1"}) {
		t.Fatal("first delete should not change visibility (count 2→1)")
	}
	if !r.Delete(Tuple{"a", "1"}) {
		t.Fatal("second delete should report invisible (count 1→0)")
	}
	if r.Contains(Tuple{"a", "1"}) || r.Len() != 0 {
		t.Fatal("tuple still visible after full deletion")
	}
}

func TestDeleteAbsentPanics(t *testing.T) {
	r := NewRelation("R", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("delete of absent tuple did not panic")
		}
	}()
	r.Delete(Tuple{"zzz"})
}

func TestArityChecked(t *testing.T) {
	r := NewRelation("R", "x", "y")
	defer func() {
		if recover() == nil {
			t.Fatal("wrong arity insert did not panic")
		}
	}()
	r.Insert(Tuple{"only-one"})
}

func TestEachDeterministicOrder(t *testing.T) {
	r := NewRelation("R", "x")
	for i := 0; i < 10; i++ {
		r.Insert(Tuple{fmt.Sprint(i)})
	}
	var got []string
	r.Each(func(tu Tuple) bool {
		got = append(got, tu[0])
		return true
	})
	for i, v := range got {
		if v != fmt.Sprint(i) {
			t.Fatalf("order[%d] = %s, want %d", i, v, i)
		}
	}
	// Early stop.
	n := 0
	r.Each(func(Tuple) bool { n++; return n < 3 })
	if n != 3 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestReinsertAfterDeleteKeepsWorking(t *testing.T) {
	r := NewRelation("R", "x")
	r.Insert(Tuple{"a"})
	r.Delete(Tuple{"a"})
	if !r.Insert(Tuple{"a"}) {
		t.Fatal("reinsert should report newly visible")
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d, want 1", r.Len())
	}
}

func TestCompaction(t *testing.T) {
	r := NewRelation("R", "x")
	for i := 0; i < 300; i++ {
		r.Insert(Tuple{fmt.Sprint(i)})
	}
	for i := 0; i < 290; i++ {
		r.Delete(Tuple{fmt.Sprint(i)})
	}
	if r.Len() != 10 {
		t.Fatalf("Len = %d, want 10", r.Len())
	}
	var got []string
	r.Each(func(tu Tuple) bool { got = append(got, tu[0]); return true })
	if len(got) != 10 || got[0] != "290" {
		t.Fatalf("post-compaction iteration wrong: %v", got)
	}
}

func TestSnapshotIndependence(t *testing.T) {
	r := NewRelation("R", "x")
	r.Insert(Tuple{"a"})
	r.InsertN(Tuple{"b"}, 3)
	s := r.Snapshot()
	r.Delete(Tuple{"a"})
	if !s.Contains(Tuple{"a"}) {
		t.Fatal("snapshot affected by later mutation")
	}
	if s.Count(Tuple{"b"}) != 3 {
		t.Fatalf("snapshot count = %d, want 3", s.Count(Tuple{"b"}))
	}
}

func TestIndexLookupAndStaleness(t *testing.T) {
	r := NewRelation("R", "x", "y")
	r.Insert(Tuple{"a", "1"})
	r.Insert(Tuple{"a", "2"})
	r.Insert(Tuple{"b", "1"})
	ix := r.IndexOn(0)
	if got := ix.Lookup("a"); len(got) != 2 {
		t.Fatalf("Lookup(a) = %d tuples, want 2", len(got))
	}
	r.Insert(Tuple{"a", "3"})
	if got := ix.Lookup("a"); len(got) != 3 {
		t.Fatalf("stale index: Lookup(a) = %d tuples after insert, want 3", len(got))
	}
	ix2 := r.IndexOn(1, 0)
	if got := ix2.Lookup("1", "a"); len(got) != 1 {
		t.Fatalf("two-column lookup = %d, want 1", len(got))
	}
}

func TestDatabaseCreateAndNames(t *testing.T) {
	d := NewDatabase()
	d.MustCreate("B", "x")
	d.MustCreate("A", "x")
	if _, err := d.Create("A", "x"); err == nil {
		t.Fatal("duplicate create accepted")
	}
	if !d.Has("A") || d.Has("C") {
		t.Fatal("Has wrong")
	}
	if n := d.Names(); n[0] != "B" || n[1] != "A" {
		t.Fatalf("Names = %v (want creation order)", n)
	}
	if n := d.SortedNames(); n[0] != "A" || n[1] != "B" {
		t.Fatalf("SortedNames = %v", n)
	}
	d.Relation("A").Insert(Tuple{"t"})
	if d.TotalTuples() != 1 {
		t.Fatalf("TotalTuples = %d", d.TotalTuples())
	}
}

// Property: visibility transitions from Insert/Delete always agree with a
// shadow map implementation.
func TestQuickCountedSemantics(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := NewRelation("R", "x")
		shadow := map[string]int{}
		for step := 0; step < 300; step++ {
			k := fmt.Sprint(rng.Intn(10))
			tu := Tuple{k}
			if rng.Intn(2) == 0 || shadow[k] == 0 {
				became := r.Insert(tu)
				shadow[k]++
				if became != (shadow[k] == 1) {
					return false
				}
			} else {
				became := r.Delete(tu)
				shadow[k]--
				if became != (shadow[k] == 0) {
					return false
				}
			}
		}
		vis := 0
		for _, c := range shadow {
			if c > 0 {
				vis++
			}
		}
		return vis == r.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

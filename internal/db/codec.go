package db

import (
	"fmt"
	"slices"

	"deepdive/internal/persist"
)

// Snapshot codec for Relation. The full `order` walk is persisted —
// including tombstoned count-0 rows — because first-insertion order is
// the iteration order every downstream computation (grounding, delta
// evaluation) keys off; dropping dead keys on save would change where
// future compaction fires and thus perturb replay determinism.
func (r *Relation) AppendSnapshot(b *persist.Buf) {
	b.Str(r.name)
	b.Strs(r.cols)
	b.U64(r.version)
	b.U64(uint64(len(r.order)))
	for _, k := range r.order {
		row := r.rows[k]
		if row == nil {
			b.I64(-1)
			b.Strs(TupleFromKey(k))
			continue
		}
		b.I64(int64(row.Count))
		b.Strs(row.Tuple)
	}
}

// RestoreSnapshot decodes rows written by AppendSnapshot into r, which
// must be freshly created (same name and columns, no rows yet).
func (r *Relation) RestoreSnapshot(rd *persist.Rd) error {
	if len(r.rows) != 0 || len(r.order) != 0 {
		return fmt.Errorf("db: RestoreSnapshot into non-empty relation %s", r.name)
	}
	name := rd.Str("relation name")
	cols := rd.Strs("relation cols")
	if rd.Err() == nil && (name != r.name || !slices.Equal(cols, r.cols)) {
		return fmt.Errorf("db: snapshot relation %s(%v) does not match declared %s(%v)",
			name, cols, r.name, r.cols)
	}
	r.version = rd.U64("relation version")
	n := rd.U64("relation row count")
	for i := uint64(0); i < n && rd.Err() == nil; i++ {
		count := rd.I64("row count")
		tup := Tuple(rd.Strs("row tuple"))
		if rd.Err() != nil {
			break
		}
		k := tup.Key()
		r.order = append(r.order, k)
		if count < 0 { // order key whose row was dropped
			r.dead++
			continue
		}
		r.rows[k] = &Row{Tuple: tup, Count: int(count)}
		if count == 0 {
			r.dead++
		}
	}
	return rd.Err()
}

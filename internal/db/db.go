// Package db is the relational substrate DeepDive runs on — the role
// Postgres/Greenplum play in the paper. It provides named relations with
// counted multiset semantics (the derivation counts DRed incremental view
// maintenance needs), hash indexes, and conjunctive-query evaluation used
// by grounding.
//
// Counted semantics: every distinct tuple carries a derivation count. A
// tuple is *visible* while its count is positive. Inserting an existing
// tuple increments the count; deleting decrements it. The boolean returns
// of Insert/Delete report visibility transitions, which is exactly the
// delta stream downstream rules consume.
package db

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Value is a single column value. DeepDive stores everything as strings
// (identifiers, text spans, feature keys); numeric experiments encode
// numbers with strconv.
type Value = string

// Tuple is one row.
type Tuple []Value

// Key returns the canonical map key of a tuple. Column values may contain
// any bytes except the 0x1f unit separator.
func (t Tuple) Key() string { return strings.Join(t, "\x1f") }

// Clone returns a copy of the tuple.
func (t Tuple) Clone() Tuple { return append(Tuple(nil), t...) }

// String renders the tuple for debugging.
func (t Tuple) String() string { return "(" + strings.Join(t, ", ") + ")" }

// TupleFromKey reverses Tuple.Key.
func TupleFromKey(k string) Tuple { return strings.Split(k, "\x1f") }

// Row is a stored tuple with its derivation count.
type Row struct {
	Tuple Tuple
	Count int
}

// Relation is a named, counted multiset of tuples with lazily built hash
// indexes. Iteration order is insertion order of first appearance, which
// keeps every downstream computation deterministic.
//
// Concurrency: mutations (Insert/Delete/Clear) require exclusive access,
// but any number of goroutines may evaluate read-only queries (Each,
// Tuples, IndexOn, Lookup, EvalJoin) concurrently — the lazily built
// index cache is the only mutable state a read touches, and it is
// guarded by idxMu.
type Relation struct {
	name    string
	cols    []string
	rows    map[string]*Row
	order   []string // first-insertion order of keys (may contain dead keys)
	dead    int      // dead entries in order (count == 0 or missing)
	version uint64   // bumped on every visibility change
	idxMu   sync.Mutex
	indexes map[string]*Index
}

// NewRelation creates an empty relation with the given column names.
func NewRelation(name string, cols ...string) *Relation {
	return &Relation{
		name:    name,
		cols:    append([]string(nil), cols...),
		rows:    make(map[string]*Row),
		indexes: make(map[string]*Index),
	}
}

// Name returns the relation name.
func (r *Relation) Name() string { return r.name }

// Cols returns the column names (shared slice; do not mutate).
func (r *Relation) Cols() []string { return r.cols }

// Arity returns the number of columns.
func (r *Relation) Arity() int { return len(r.cols) }

// Len returns the number of visible (count > 0) distinct tuples.
func (r *Relation) Len() int {
	n := 0
	for _, row := range r.rows {
		if row.Count > 0 {
			n++
		}
	}
	return n
}

// Version returns a counter that changes whenever visibility changes;
// used by indexes to detect staleness.
func (r *Relation) Version() uint64 { return r.version }

func (r *Relation) checkArity(t Tuple) {
	if len(t) != len(r.cols) {
		panic(fmt.Sprintf("db: %s: tuple arity %d, want %d", r.name, len(t), len(r.cols)))
	}
}

// Insert adds one derivation of t and reports whether the tuple became
// visible (count went 0 → 1).
func (r *Relation) Insert(t Tuple) bool { return r.InsertN(t, 1) }

// InsertN adds n derivations (n may be negative for deletion) and reports
// whether visibility changed in either direction.
func (r *Relation) InsertN(t Tuple, n int) bool {
	r.checkArity(t)
	if n == 0 {
		return false
	}
	k := t.Key()
	row := r.rows[k]
	fresh := row == nil
	if fresh {
		row = &Row{Tuple: t.Clone()}
		r.rows[k] = row
		r.order = append(r.order, k)
	}
	was := row.Count > 0
	row.Count += n
	if row.Count < 0 {
		// Deleting more derivations than exist is a logic error upstream.
		panic(fmt.Sprintf("db: %s: negative count for %v", r.name, t))
	}
	now := row.Count > 0
	if was != now {
		r.version++
		if !now {
			r.dead++
			r.maybeCompact()
		} else if !fresh {
			r.dead--
		}
		return true
	}
	return false
}

// maybeCompact drops dead keys from the iteration order once they dominate.
func (r *Relation) maybeCompact() {
	if r.dead <= 64 || r.dead*2 < len(r.order) {
		return
	}
	live := r.order[:0]
	for _, k := range r.order {
		if row := r.rows[k]; row != nil && row.Count > 0 {
			live = append(live, k)
		} else {
			delete(r.rows, k)
		}
	}
	r.order = live
	r.dead = 0
}

// Delete removes one derivation of t and reports whether the tuple became
// invisible (count went 1 → 0). Deleting an absent tuple panics.
func (r *Relation) Delete(t Tuple) bool {
	r.checkArity(t)
	k := t.Key()
	row := r.rows[k]
	if row == nil || row.Count == 0 {
		panic(fmt.Sprintf("db: %s: delete of absent tuple %v", r.name, t))
	}
	return r.InsertN(t, -1)
}

// Contains reports whether t is visible.
func (r *Relation) Contains(t Tuple) bool {
	row := r.rows[t.Key()]
	return row != nil && row.Count > 0
}

// Count returns the derivation count of t (0 when absent).
func (r *Relation) Count(t Tuple) int {
	row := r.rows[t.Key()]
	if row == nil {
		return 0
	}
	return row.Count
}

// Each visits every visible tuple in first-insertion order. Returning
// false from f stops the walk. f must not mutate the relation.
func (r *Relation) Each(f func(Tuple) bool) {
	for _, k := range r.order {
		row := r.rows[k]
		if row == nil || row.Count <= 0 {
			continue
		}
		if !f(row.Tuple) {
			return
		}
	}
}

// Tuples returns all visible tuples in deterministic order.
func (r *Relation) Tuples() []Tuple {
	out := make([]Tuple, 0, len(r.rows))
	r.Each(func(t Tuple) bool {
		out = append(out, t)
		return true
	})
	return out
}

// Clear removes every tuple.
func (r *Relation) Clear() {
	r.rows = make(map[string]*Row)
	r.order = nil
	r.dead = 0
	r.version++
	r.idxMu.Lock()
	r.indexes = make(map[string]*Index)
	r.idxMu.Unlock()
}

// Snapshot returns an independent copy of the relation (rows and counts).
func (r *Relation) Snapshot() *Relation {
	c := NewRelation(r.name, r.cols...)
	for _, k := range r.order {
		row := r.rows[k]
		if row == nil || row.Count <= 0 {
			continue
		}
		c.InsertN(row.Tuple, row.Count)
	}
	return c
}

// Index is a hash index on a subset of columns. It is rebuilt lazily when
// the relation has changed since the index was built.
type Index struct {
	rel     *Relation
	cols    []int
	built   uint64
	buckets map[string][]Tuple
}

func indexKey(cols []int) string {
	parts := make([]string, len(cols))
	for i, c := range cols {
		parts[i] = fmt.Sprint(c)
	}
	return strings.Join(parts, ",")
}

// IndexOn returns (building or refreshing as needed) an index on the given
// column positions. Safe for concurrent readers: the index map and the
// lazy build/refresh are serialized on the relation's index lock, so
// parallel query evaluation over an unchanging relation is race-free.
func (r *Relation) IndexOn(cols ...int) *Index {
	for _, c := range cols {
		if c < 0 || c >= len(r.cols) {
			panic(fmt.Sprintf("db: %s: index column %d out of range", r.name, c))
		}
	}
	k := indexKey(cols)
	r.idxMu.Lock()
	defer r.idxMu.Unlock()
	idx := r.indexes[k]
	if idx == nil {
		idx = &Index{rel: r, cols: append([]int(nil), cols...)}
		r.indexes[k] = idx
	}
	idx.refresh()
	return idx
}

func (ix *Index) refresh() {
	if ix.buckets != nil && ix.built == ix.rel.version {
		return
	}
	ix.buckets = make(map[string][]Tuple)
	ix.rel.Each(func(t Tuple) bool {
		ix.buckets[ix.keyOf(t)] = append(ix.buckets[ix.keyOf(t)], t)
		return true
	})
	ix.built = ix.rel.version
}

func (ix *Index) keyOf(t Tuple) string {
	parts := make([]string, len(ix.cols))
	for i, c := range ix.cols {
		parts[i] = t[c]
	}
	return strings.Join(parts, "\x1f")
}

// Lookup returns the tuples whose indexed columns equal vals, in
// deterministic order. The slice is shared; do not mutate. The staleness
// re-check takes the relation's index lock only when the relation changed
// after IndexOn returned — concurrent readers over an unchanging relation
// stay on the lock-free fast path.
func (ix *Index) Lookup(vals ...Value) []Tuple {
	if len(vals) != len(ix.cols) {
		panic(fmt.Sprintf("db: index lookup with %d values, want %d", len(vals), len(ix.cols)))
	}
	if ix.built != ix.rel.version {
		ix.rel.idxMu.Lock()
		ix.refresh()
		ix.rel.idxMu.Unlock()
	}
	return ix.buckets[strings.Join(vals, "\x1f")]
}

// Database is a named collection of relations.
type Database struct {
	rels  map[string]*Relation
	names []string
}

// NewDatabase returns an empty database.
func NewDatabase() *Database {
	return &Database{rels: make(map[string]*Relation)}
}

// Create adds a new empty relation. Creating a duplicate name errors.
func (d *Database) Create(name string, cols ...string) (*Relation, error) {
	if _, ok := d.rels[name]; ok {
		return nil, fmt.Errorf("db: relation %q already exists", name)
	}
	r := NewRelation(name, cols...)
	d.rels[name] = r
	d.names = append(d.names, name)
	return r, nil
}

// MustCreate is Create that panics on error.
func (d *Database) MustCreate(name string, cols ...string) *Relation {
	r, err := d.Create(name, cols...)
	if err != nil {
		panic(err)
	}
	return r
}

// Relation returns a relation by name, or nil when absent.
func (d *Database) Relation(name string) *Relation { return d.rels[name] }

// Has reports whether a relation exists.
func (d *Database) Has(name string) bool { return d.rels[name] != nil }

// Names returns relation names in creation order.
func (d *Database) Names() []string { return append([]string(nil), d.names...) }

// SortedNames returns relation names alphabetically.
func (d *Database) SortedNames() []string {
	out := append([]string(nil), d.names...)
	sort.Strings(out)
	return out
}

// TotalTuples returns the number of visible tuples across all relations.
func (d *Database) TotalTuples() int {
	n := 0
	for _, name := range d.names {
		n += d.rels[name].Len()
	}
	return n
}

package db

import (
	"fmt"
	"testing"
)

func buildSample() (*Relation, *Relation) {
	person := NewRelation("PersonCandidate", "s", "m")
	person.Insert(Tuple{"s1", "m1"})
	person.Insert(Tuple{"s1", "m2"})
	person.Insert(Tuple{"s2", "m3"})
	sentence := NewRelation("Sentence", "s", "text")
	sentence.Insert(Tuple{"s1", "B. Obama and Michelle were married"})
	sentence.Insert(Tuple{"s2", "Malia attended the dinner"})
	return person, sentence
}

func collect(atoms []QueryAtom, cons []Constraint, init Binding, vars ...string) ([][]Value, error) {
	var out [][]Value
	err := EvalJoin(atoms, cons, init, func(b Binding) bool {
		row := make([]Value, len(vars))
		for i, v := range vars {
			row[i] = b[v]
		}
		out = append(out, row)
		return true
	})
	return out, err
}

func TestEvalJoinSelfJoin(t *testing.T) {
	// The paper's R1: MarriedCandidate(m1,m2) :- PersonCandidate(s,m1),
	// PersonCandidate(s,m2) with m1 != m2.
	person, _ := buildSample()
	atoms := []QueryAtom{
		{Rel: person, Terms: []Term{V("s"), V("m1")}},
		{Rel: person, Terms: []Term{V("s"), V("m2")}},
	}
	cons := []Constraint{{Op: "!=", L: V("m1"), R: V("m2")}}
	rows, err := collect(atoms, cons, nil, "m1", "m2")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 { // (m1,m2) and (m2,m1) in s1 only
		t.Fatalf("got %d rows, want 2: %v", len(rows), rows)
	}
}

func TestEvalJoinWithConstant(t *testing.T) {
	person, _ := buildSample()
	atoms := []QueryAtom{{Rel: person, Terms: []Term{C("s1"), V("m")}}}
	rows, err := collect(atoms, nil, nil, "m")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
}

func TestEvalJoinCrossRelation(t *testing.T) {
	person, sentence := buildSample()
	atoms := []QueryAtom{
		{Rel: person, Terms: []Term{V("s"), V("m")}},
		{Rel: sentence, Terms: []Term{V("s"), V("txt")}},
	}
	rows, err := collect(atoms, nil, nil, "m", "txt")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
}

func TestEvalJoinInitBinding(t *testing.T) {
	person, _ := buildSample()
	atoms := []QueryAtom{{Rel: person, Terms: []Term{V("s"), V("m")}}}
	rows, err := collect(atoms, nil, Binding{"s": "s2"}, "m")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0] != "m3" {
		t.Fatalf("seeded join = %v, want [[m3]]", rows)
	}
}

func TestEvalJoinNegation(t *testing.T) {
	person, _ := buildSample()
	married := NewRelation("Married", "m")
	married.Insert(Tuple{"m1"})
	atoms := []QueryAtom{
		{Rel: person, Terms: []Term{V("s"), V("m")}},
		{Rel: married, Terms: []Term{V("m")}, Neg: true},
	}
	rows, err := collect(atoms, nil, nil, "m")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("anti-join rows = %v, want m2 and m3", rows)
	}
	for _, r := range rows {
		if r[0] == "m1" {
			t.Fatal("negated tuple leaked through")
		}
	}
}

func TestEvalJoinNegationUnboundErrors(t *testing.T) {
	person, _ := buildSample()
	atoms := []QueryAtom{
		{Rel: person, Terms: []Term{V("s"), V("unbound")}, Neg: true},
	}
	if err := EvalJoin(atoms, nil, nil, func(Binding) bool { return true }); err == nil {
		t.Fatal("negated atom with unbound variable accepted")
	}
}

func TestEvalJoinRepeatedVarInAtom(t *testing.T) {
	pair := NewRelation("Pair", "a", "b")
	pair.Insert(Tuple{"x", "x"})
	pair.Insert(Tuple{"x", "y"})
	atoms := []QueryAtom{{Rel: pair, Terms: []Term{V("v"), V("v")}}}
	rows, err := collect(atoms, nil, nil, "v")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0] != "x" {
		t.Fatalf("repeated-var join = %v, want [[x]]", rows)
	}
}

func TestConstraintOps(t *testing.T) {
	nums := NewRelation("N", "v")
	for _, v := range []string{"2", "10", "3"} {
		nums.Insert(Tuple{v})
	}
	atoms := []QueryAtom{{Rel: nums, Terms: []Term{V("v")}}}
	// Numeric comparison: "10" > "2" numerically though not lexically.
	rows, err := collect(atoms, []Constraint{{Op: "<", L: V("v"), R: C("5")}}, nil, "v")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("numeric < rows = %v, want 2 and 3", rows)
	}
	// Equality.
	n, err := CountJoin(atoms, []Constraint{{Op: "=", L: V("v"), R: C("10")}}, nil)
	if err != nil || n != 1 {
		t.Fatalf("= count = %d err=%v", n, err)
	}
	// <= includes the boundary.
	n, err = CountJoin(atoms, []Constraint{{Op: "<=", L: V("v"), R: C("3")}}, nil)
	if err != nil || n != 2 {
		t.Fatalf("<= count = %d err=%v", n, err)
	}
	// Unknown operator errors.
	if _, err := CountJoin(atoms, []Constraint{{Op: "~", L: V("v"), R: C("3")}}, nil); err == nil {
		t.Fatal("unknown op accepted")
	}
}

func TestConstraintLexicographicFallback(t *testing.T) {
	words := NewRelation("W", "v")
	words.Insert(Tuple{"apple"})
	words.Insert(Tuple{"pear"})
	atoms := []QueryAtom{{Rel: words, Terms: []Term{V("v")}}}
	n, err := CountJoin(atoms, []Constraint{{Op: "<", L: V("v"), R: C("banana")}}, nil)
	if err != nil || n != 1 {
		t.Fatalf("lexicographic < count = %d err=%v", n, err)
	}
}

func TestEvalJoinEarlyStop(t *testing.T) {
	r := NewRelation("R", "x")
	for i := 0; i < 100; i++ {
		r.Insert(Tuple{fmt.Sprint(i)})
	}
	count := 0
	err := EvalJoin([]QueryAtom{{Rel: r, Terms: []Term{V("x")}}}, nil, nil, func(Binding) bool {
		count++
		return count < 5
	})
	if err != nil || count != 5 {
		t.Fatalf("early stop count = %d err=%v", count, err)
	}
}

func TestEvalJoinBindingReuseWarning(t *testing.T) {
	// Bindings are reused; cloning must give stable results.
	r := NewRelation("R", "x")
	r.Insert(Tuple{"a"})
	r.Insert(Tuple{"b"})
	var clones []Binding
	err := EvalJoin([]QueryAtom{{Rel: r, Terms: []Term{V("x")}}}, nil, nil, func(b Binding) bool {
		clones = append(clones, b.Clone())
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if clones[0]["x"] != "a" || clones[1]["x"] != "b" {
		t.Fatalf("clones = %v", clones)
	}
}

func TestCountJoinTriangle(t *testing.T) {
	e := NewRelation("E", "a", "b")
	edges := [][2]string{{"1", "2"}, {"2", "3"}, {"3", "1"}, {"1", "3"}}
	for _, ed := range edges {
		e.Insert(Tuple{ed[0], ed[1]})
	}
	atoms := []QueryAtom{
		{Rel: e, Terms: []Term{V("a"), V("b")}},
		{Rel: e, Terms: []Term{V("b"), V("c")}},
		{Rel: e, Terms: []Term{V("c"), V("a")}},
	}
	n, err := CountJoin(atoms, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Directed triangles: 1→2→3→1 and 1→3→1? (1,3)+(3,1) is a 2-cycle, not
	// a triangle unless c→a exists... enumerate: (a,b,c) ∈
	// {(1,2,3),(2,3,1),(3,1,2)} from the 3-cycle; (1,3,?) needs (3,c),(c,1):
	// c=1 gives (1,3,1) requiring (1,1) absent. So 3 matches.
	if n != 3 {
		t.Fatalf("triangle count = %d, want 3", n)
	}
}

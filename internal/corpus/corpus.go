// Package corpus generates the synthetic corpora and knowledge bases that
// stand in for the paper's five evaluation systems (Figure 7): News,
// Genomics, Adversarial, Pharmacogenomics, and Paleontology. Corpora are
// scaled ~2000× down from the paper but preserve the relative sizes,
// relation counts, text-quality differences (Adversarial = 1-2 malformed
// sentences per document; Paleontology = clean precise prose), and the
// repeated-mention skew that makes the counting semantics of Figure 4
// matter. Every generator is deterministic in its seed, and ground truth
// is known exactly, so precision/recall/F1 are computed against reality
// rather than approximated.
package corpus

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
)

// RelationSpec describes one target relation of a KBC system.
type RelationSpec struct {
	Name      string
	Type1     string // entity type of the first argument
	Type2     string // entity type of the second argument
	Symmetric bool   // whether the paper's I1-style symmetry rule applies
	// PosTemplates express the relation; {A}/{B} are argument slots.
	PosTemplates []string
}

// Spec parameterizes a synthetic KBC system.
type Spec struct {
	Name            string
	Seed            int64
	NumDocs         int
	SentencesPerDoc [2]int // inclusive min, max
	EntitiesPerType int
	Relations       []RelationSpec
	TruePairsPerRel int
	// KBFraction of true pairs goes into the distant-supervision KB (S1).
	KBFraction float64
	// NegPairsPerRel disjoint pairs go into the negative KB (S2).
	NegPairsPerRel int
	// SeedPairsPerRel labeled entity pairs (half true, half false) back
	// the base program's S0 supervision.
	SeedPairsPerRel int
	// ExpressProb: probability a planted pair mention uses a positive
	// template (otherwise neutral co-occurrence — a recall challenge).
	ExpressProb float64
	// PatternNoise: probability a *false* co-occurring pair is rendered
	// with a positive template (a precision challenge).
	PatternNoise float64
	// MentionsPerPair: mean number of sentences mentioning each pair
	// (repeated mentions are what separate Linear from Ratio/Logical).
	MentionsPerPair float64
	// FalsePairsPerRel: co-occurring unrelated pairs.
	FalsePairsPerRel int
	// Malformed: probability a sentence is corrupted (token dropout and
	// shuffling) — the Adversarial system's defining property.
	Malformed float64
	// Neutral templates for co-occurrence without the relation.
	NeutralTemplates []string
}

// Pair is an ordered entity pair.
type Pair struct{ E1, E2 string }

// LabeledPair carries a supervision label.
type LabeledPair struct {
	Pair
	Label bool
}

// System is a generated corpus plus its ground truth and supervision KBs.
type System struct {
	Spec Spec
	// Docs are raw documents (the unstructured input of Figure 1).
	Docs []string
	// Entities: type -> entity ids; Surface: entity id -> surface form.
	Entities map[string][]string
	Surface  map[string]string
	// Truth: relation -> set of true entity pairs (full ground truth).
	Truth map[string]map[Pair]bool
	// KB: relation -> incomplete KB for distant supervision (S1).
	KB map[string][]Pair
	// NegKB: relation -> disjoint pairs for negative supervision (S2).
	NegKB map[string][]Pair
	// Seeds: relation -> labeled pairs for the base program (S0).
	Seeds map[string][]LabeledPair
}

// IsTrue reports ground truth for a pair, honoring symmetry.
func (s *System) IsTrue(rel string, e1, e2 string) bool {
	truth := s.Truth[rel]
	if truth[Pair{e1, e2}] {
		return true
	}
	for _, r := range s.Spec.Relations {
		if r.Name == rel && r.Symmetric {
			return truth[Pair{e2, e1}]
		}
	}
	return false
}

// RelationSpecByName looks up a relation spec.
func (s *System) RelationSpecByName(name string) *RelationSpec {
	for i := range s.Spec.Relations {
		if s.Spec.Relations[i].Name == name {
			return &s.Spec.Relations[i]
		}
	}
	return nil
}

// Generate builds the corpus deterministically from the spec.
func Generate(spec Spec) *System {
	rng := rand.New(rand.NewSource(spec.Seed))
	s := &System{
		Spec:     spec,
		Entities: map[string][]string{},
		Surface:  map[string]string{},
		Truth:    map[string]map[Pair]bool{},
		KB:       map[string][]Pair{},
		NegKB:    map[string][]Pair{},
		Seeds:    map[string][]LabeledPair{},
	}
	s.makeEntities(rng)
	s.makeTruth(rng)
	sentences := s.makeSentences(rng)
	rng.Shuffle(len(sentences), func(i, j int) {
		sentences[i], sentences[j] = sentences[j], sentences[i]
	})
	s.packDocs(rng, sentences)
	return s
}

// nameParts provide distinct multi-token surface forms per type.
var firstParts = []string{
	"Alden", "Brava", "Corin", "Dalia", "Edrik", "Fen", "Gildar", "Hesper",
	"Ilona", "Jarek", "Kestrel", "Lorin", "Merou", "Nadir", "Orla", "Pavel",
	"Quin", "Rasia", "Soren", "Talia", "Ulric", "Vesna", "Wren", "Xanthe",
	"Yoren", "Zaida",
}
var secondParts = []string{
	"Ashford", "Blackwood", "Caldera", "Dunmore", "Eastvale", "Farrow",
	"Grenfell", "Halloway", "Ironwood", "Jessup", "Kirkwall", "Lockhart",
	"Marsden", "Northgate", "Okafor", "Pemberton", "Quillon", "Redfield",
	"Southwell", "Thornbury", "Underhill", "Vance", "Westbrook", "Yarrow",
}

func (s *System) makeEntities(rng *rand.Rand) {
	seen := map[string]bool{}
	var types []string
	for _, r := range s.Spec.Relations {
		for _, t := range []string{r.Type1, r.Type2} {
			if !seen[t] {
				seen[t] = true
				types = append(types, t)
			}
		}
	}
	sort.Strings(types)
	for _, typ := range types {
		for i := 0; i < s.Spec.EntitiesPerType; i++ {
			id := fmt.Sprintf("%s_%d", typ, i)
			first := firstParts[rng.Intn(len(firstParts))]
			second := secondParts[rng.Intn(len(secondParts))]
			surface := fmt.Sprintf("%s %s%s %s", first, typ, fmt.Sprint(i), second)
			s.Entities[typ] = append(s.Entities[typ], id)
			s.Surface[id] = surface
		}
	}
}

func (s *System) pickPair(rng *rand.Rand, r RelationSpec) Pair {
	t1 := s.Entities[r.Type1]
	t2 := s.Entities[r.Type2]
	for {
		p := Pair{t1[rng.Intn(len(t1))], t2[rng.Intn(len(t2))]}
		if p.E1 != p.E2 {
			return p
		}
	}
}

func (s *System) makeTruth(rng *rand.Rand) {
	for _, r := range s.Spec.Relations {
		truth := map[Pair]bool{}
		for len(truth) < s.Spec.TruePairsPerRel {
			truth[s.pickPair(rng, r)] = true
		}
		s.Truth[r.Name] = truth

		var pairs []Pair
		for p := range truth {
			pairs = append(pairs, p)
		}
		sortPairs(pairs)
		rng.Shuffle(len(pairs), func(i, j int) { pairs[i], pairs[j] = pairs[j], pairs[i] })

		nKB := int(float64(len(pairs)) * s.Spec.KBFraction)
		s.KB[r.Name] = append([]Pair(nil), pairs[:nKB]...)

		// Negative KB: pairs not in truth (approximating the paper's
		// "largely disjoint relations" trick, e.g. siblings).
		for len(s.NegKB[r.Name]) < s.Spec.NegPairsPerRel {
			p := s.pickPair(rng, r)
			if !truth[p] && !truth[Pair{p.E2, p.E1}] {
				s.NegKB[r.Name] = append(s.NegKB[r.Name], p)
			}
		}

		// Seeds: labeled positives from truth (beyond the KB slice when
		// possible) and labeled negatives from fresh false pairs.
		nSeed := s.Spec.SeedPairsPerRel
		for i := 0; i < (nSeed+1)/2 && i < len(pairs); i++ {
			p := pairs[len(pairs)-1-i]
			s.Seeds[r.Name] = append(s.Seeds[r.Name], LabeledPair{Pair: p, Label: true})
		}
		for i := 0; i < nSeed/2; i++ {
			p := s.pickPair(rng, r)
			if !truth[p] {
				s.Seeds[r.Name] = append(s.Seeds[r.Name], LabeledPair{Pair: p, Label: false})
			}
		}
	}
}

// fillers pad sentences with inert context so phrase features stay local.
var fillers = []string{
	"according to the report", "during the long expedition", "in recent years",
	"as documented previously", "after careful review", "near the northern site",
	"despite earlier doubts", "in the latest survey", "for several seasons",
}

func (s *System) renderTemplate(rng *rand.Rand, tpl string, p Pair) string {
	sent := strings.ReplaceAll(tpl, "{A}", s.Surface[p.E1])
	sent = strings.ReplaceAll(sent, "{B}", s.Surface[p.E2])
	if rng.Float64() < 0.5 {
		sent = sent + " " + fillers[rng.Intn(len(fillers))]
	}
	if rng.Float64() < s.Spec.Malformed {
		sent = corrupt(rng, sent)
	}
	return sent
}

// corrupt simulates the Adversarial system's broken text: random token
// dropout and local swaps outside entity names.
func corrupt(rng *rand.Rand, sent string) string {
	words := strings.Fields(sent)
	var out []string
	for _, w := range words {
		if rng.Float64() < 0.12 && !strings.ContainsAny(w, "0123456789") {
			continue // dropout
		}
		out = append(out, w)
	}
	if len(out) > 3 && rng.Float64() < 0.5 {
		i := rng.Intn(len(out) - 1)
		out[i], out[i+1] = out[i+1], out[i]
	}
	return strings.Join(out, " ")
}

func (s *System) makeSentences(rng *rand.Rand) []string {
	var sentences []string
	emit := func(rel RelationSpec, p Pair, positive bool) {
		n := 1 + poisson(rng, s.Spec.MentionsPerPair-1)
		for k := 0; k < n; k++ {
			var tpl string
			usePos := positive && rng.Float64() < s.Spec.ExpressProb
			if !positive && rng.Float64() < s.Spec.PatternNoise {
				usePos = true
			}
			if usePos {
				tpl = rel.PosTemplates[rng.Intn(len(rel.PosTemplates))]
			} else {
				tpl = s.Spec.NeutralTemplates[rng.Intn(len(s.Spec.NeutralTemplates))]
			}
			sentences = append(sentences, s.renderTemplate(rng, tpl, p))
		}
	}
	for _, rel := range s.Spec.Relations {
		var pairs []Pair
		for p := range s.Truth[rel.Name] {
			pairs = append(pairs, p)
		}
		sortPairs(pairs)
		for _, p := range pairs {
			emit(rel, p, true)
		}
		truth := s.Truth[rel.Name]
		made := 0
		for made < s.Spec.FalsePairsPerRel {
			p := s.pickPair(rng, rel)
			if truth[p] || truth[Pair{p.E2, p.E1}] {
				continue
			}
			emit(rel, p, false)
			made++
		}
	}
	return sentences
}

func (s *System) packDocs(rng *rand.Rand, sentences []string) {
	lo, hi := s.Spec.SentencesPerDoc[0], s.Spec.SentencesPerDoc[1]
	i := 0
	for d := 0; d < s.Spec.NumDocs && i < len(sentences); d++ {
		n := lo
		if hi > lo {
			n += rng.Intn(hi - lo + 1)
		}
		var doc []string
		for k := 0; k < n && i < len(sentences); k++ {
			doc = append(doc, sentences[i]+".")
			i++
		}
		s.Docs = append(s.Docs, strings.Join(doc, " "))
	}
	// Leftover sentences spill into extra docs so nothing is lost.
	for i < len(sentences) {
		var doc []string
		for k := 0; k < hi && i < len(sentences); k++ {
			doc = append(doc, sentences[i]+".")
			i++
		}
		s.Docs = append(s.Docs, strings.Join(doc, " "))
	}
}

func poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	// Knuth's method; means here are tiny.
	threshold := math.Exp(-mean)
	l := 1.0
	for i := 0; ; i++ {
		l *= rng.Float64()
		if l < threshold {
			return i
		}
	}
}

func sortPairs(ps []Pair) {
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0 && less(ps[j], ps[j-1]); j-- {
			ps[j], ps[j-1] = ps[j-1], ps[j]
		}
	}
}

func less(a, b Pair) bool {
	if a.E1 != b.E1 {
		return a.E1 < b.E1
	}
	return a.E2 < b.E2
}

package corpus

import (
	"strings"
	"testing"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Genomics())
	b := Generate(Genomics())
	if len(a.Docs) != len(b.Docs) {
		t.Fatalf("doc counts differ: %d vs %d", len(a.Docs), len(b.Docs))
	}
	for i := range a.Docs {
		if a.Docs[i] != b.Docs[i] {
			t.Fatalf("doc %d differs across identical seeds", i)
		}
	}
}

func TestGenerateGroundTruthShape(t *testing.T) {
	s := Generate(Genomics())
	if len(s.Truth) != 3 {
		t.Fatalf("relations = %d, want 3", len(s.Truth))
	}
	for rel, truth := range s.Truth {
		if len(truth) != s.Spec.TruePairsPerRel {
			t.Fatalf("%s: %d true pairs, want %d", rel, len(truth), s.Spec.TruePairsPerRel)
		}
		// KB is a strict subset of the truth.
		for _, p := range s.KB[rel] {
			if !truth[p] {
				t.Fatalf("%s: KB pair %v not in truth", rel, p)
			}
		}
		wantKB := int(float64(len(truth)) * s.Spec.KBFraction)
		if len(s.KB[rel]) != wantKB {
			t.Fatalf("%s: KB size %d, want %d", rel, len(s.KB[rel]), wantKB)
		}
		// NegKB pairs are never true.
		for _, p := range s.NegKB[rel] {
			if truth[p] || truth[Pair{p.E2, p.E1}] {
				t.Fatalf("%s: NegKB pair %v is actually true", rel, p)
			}
		}
		// Seeds are correctly labeled.
		for _, lp := range s.Seeds[rel] {
			if lp.Label != truth[lp.Pair] {
				t.Fatalf("%s: seed %v labeled %v but truth is %v", rel, lp.Pair, lp.Label, truth[lp.Pair])
			}
		}
	}
}

func TestSurfacesResolveInDocs(t *testing.T) {
	s := Generate(Paleontology())
	// Every true pair should have at least one document mentioning both
	// surfaces (possibly across relations, but at least its own planted
	// sentences — Paleontology has Malformed=0 so surfaces are intact).
	found := 0
	total := 0
	for rel, truth := range s.Truth {
		for p := range truth {
			total++
			s1, s2 := s.Surface[p.E1], s.Surface[p.E2]
			for _, d := range s.Docs {
				if strings.Contains(d, s1) && strings.Contains(d, s2) {
					found++
					break
				}
			}
		}
		_ = rel
	}
	if found < total*9/10 {
		t.Fatalf("only %d/%d true pairs co-occur in some document", found, total)
	}
}

func TestIsTrueSymmetry(t *testing.T) {
	s := Generate(News())
	var symRel, asymRel string
	for _, r := range s.Spec.Relations {
		if r.Symmetric && symRel == "" {
			symRel = r.Name
		}
		if !r.Symmetric && asymRel == "" {
			asymRel = r.Name
		}
	}
	for p := range s.Truth[symRel] {
		if !s.IsTrue(symRel, p.E2, p.E1) {
			t.Fatalf("symmetric relation %s not symmetric for %v", symRel, p)
		}
		break
	}
	for p := range s.Truth[asymRel] {
		if s.IsTrue(asymRel, p.E2, p.E1) && !s.Truth[asymRel][Pair{p.E2, p.E1}] {
			t.Fatalf("asymmetric relation %s reported reversed truth for %v", asymRel, p)
		}
		break
	}
}

func TestFigure7Shape(t *testing.T) {
	systems := AllSystems()
	if len(systems) != 5 {
		t.Fatalf("systems = %d", len(systems))
	}
	byName := map[string]*System{}
	for _, s := range systems {
		byName[s.Spec.Name] = s
	}
	// Relative document counts follow Figure 7's ordering:
	// Adversarial > News > Pharma > Paleontology > Genomics.
	order := []string{"Adversarial", "News", "Pharma", "Paleontology", "Genomics"}
	for i := 0; i+1 < len(order); i++ {
		a, b := byName[order[i]], byName[order[i+1]]
		if len(a.Docs) <= len(b.Docs) {
			t.Fatalf("doc ordering violated: %s(%d) <= %s(%d)",
				order[i], len(a.Docs), order[i+1], len(b.Docs))
		}
	}
	// Relation counts: News ≫ others; Adversarial = 1.
	if n := len(byName["News"].Spec.Relations); n < 10 {
		t.Fatalf("News relations = %d, want many", n)
	}
	if n := len(byName["Adversarial"].Spec.Relations); n != 1 {
		t.Fatalf("Adversarial relations = %d, want 1", n)
	}
	// Adversarial docs are short.
	if byName["Adversarial"].Spec.SentencesPerDoc[1] > 2 {
		t.Fatal("Adversarial docs should be 1-2 sentences")
	}
}

func TestSystemByName(t *testing.T) {
	for _, name := range []string{"Adversarial", "News", "Genomics", "Pharma", "Paleontology"} {
		s, err := SystemByName(name)
		if err != nil || s.Spec.Name == "" {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if _, err := SystemByName("Astrology"); err == nil {
		t.Fatal("unknown system accepted")
	}
}

func TestCorruptionOnlyWhereConfigured(t *testing.T) {
	clean := Generate(Paleontology())
	for _, d := range clean.Docs {
		if strings.Contains(d, "  ") {
			t.Fatal("clean corpus has corrupted spacing")
		}
	}
	adv := Generate(Adversarial())
	// At least some sentences should differ from any template rendering
	// (dropout shortens them); just check the corpus is non-empty and has
	// short docs.
	if len(adv.Docs) < 600 {
		t.Fatalf("Adversarial docs = %d", len(adv.Docs))
	}
}

func TestGenerateSpamStream(t *testing.T) {
	emails := GenerateSpamStream(SpamStreamSpec{Seed: 9})
	if len(emails) != 1200 {
		t.Fatalf("emails = %d", len(emails))
	}
	spam := 0
	for _, e := range emails {
		if e.Spam {
			spam++
		}
		if len(e.Words) == 0 {
			t.Fatal("empty email")
		}
	}
	if spam < 300 || spam > 700 {
		t.Fatalf("spam count = %d out of 1200", spam)
	}
	// Drift: early spam vocabulary should be absent from late spam.
	half := len(emails) / 2
	lateEarlyWords := 0
	earlySet := map[string]bool{}
	for _, w := range earlySpamWords {
		earlySet[w] = true
	}
	for _, e := range emails[half+50:] {
		if !e.Spam {
			continue
		}
		for _, w := range e.Words {
			if earlySet[w] {
				lateEarlyWords++
			}
		}
	}
	if lateEarlyWords != 0 {
		t.Fatalf("late spam still uses %d early vocabulary words", lateEarlyWords)
	}
}

func TestSpamStreamDeterministic(t *testing.T) {
	a := GenerateSpamStream(SpamStreamSpec{Seed: 4})
	b := GenerateSpamStream(SpamStreamSpec{Seed: 4})
	for i := range a {
		if a[i].Spam != b[i].Spam || strings.Join(a[i].Words, " ") != strings.Join(b[i].Words, " ") {
			t.Fatal("spam stream not deterministic")
		}
	}
}

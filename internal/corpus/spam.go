package corpus

import (
	"fmt"
	"math/rand"
)

// Email is one message of the concept-drift stream (Appendix B.4): a bag
// of word features and a spam label. The stream is chronological; the
// spam vocabulary drifts partway through, so a model trained on the early
// prefix degrades unless retrained.
type Email struct {
	Words []string
	Spam  bool
}

// SpamStreamSpec parameterizes GenerateSpamStream.
type SpamStreamSpec struct {
	N          int     // number of emails (paper: 9,324; scaled default 1,200)
	DriftAt    float64 // position (fraction of the stream) where spam vocabulary shifts
	SpamRate   float64 // fraction of spam messages
	WordsPer   int     // words per email
	NoiseWords int     // size of the shared innocuous vocabulary
	Seed       int64
}

func (s SpamStreamSpec) fill() SpamStreamSpec {
	if s.N <= 0 {
		s.N = 1200
	}
	if s.DriftAt <= 0 || s.DriftAt >= 1 {
		s.DriftAt = 0.5
	}
	if s.SpamRate <= 0 {
		s.SpamRate = 0.4
	}
	if s.WordsPer <= 0 {
		s.WordsPer = 12
	}
	if s.NoiseWords <= 0 {
		s.NoiseWords = 150
	}
	return s
}

var earlySpamWords = []string{
	"winner", "prize", "lottery", "viagra", "unclaimed", "transfer",
	"urgent", "millions", "deposit", "guarantee",
}
var lateSpamWords = []string{
	"crypto", "airdrop", "token", "exclusive", "investment", "wallet",
	"giveaway", "staking", "presale", "doubling",
}
var hamTopicWords = []string{
	"meeting", "agenda", "report", "schedule", "review", "project",
	"invoice", "draft", "minutes", "deadline", "budget", "notes",
}

// GenerateSpamStream builds the chronological email stream. Before the
// drift point spam uses the early vocabulary; after it, the late one.
// Ham vocabulary is stable throughout.
func GenerateSpamStream(spec SpamStreamSpec) []Email {
	s := spec.fill()
	rng := rand.New(rand.NewSource(s.Seed))
	noise := make([]string, s.NoiseWords)
	for i := range noise {
		noise[i] = fmt.Sprintf("w%d", i)
	}
	out := make([]Email, s.N)
	driftIdx := int(float64(s.N) * s.DriftAt)
	for i := 0; i < s.N; i++ {
		spam := rng.Float64() < s.SpamRate
		var words []string
		topical := earlySpamWords
		if i >= driftIdx {
			topical = lateSpamWords
		}
		if !spam {
			topical = hamTopicWords
		}
		for k := 0; k < s.WordsPer; k++ {
			r := rng.Float64()
			switch {
			case r < 0.25:
				words = append(words, topical[rng.Intn(len(topical))])
			case r < 0.33:
				// Cross-talk: the other class's vocabulary leaks in, so a
				// perfect classifier is impossible and loss curves stay
				// informative (Figures 16/17).
				other := hamTopicWords
				if !spam {
					if i >= driftIdx {
						other = lateSpamWords
					} else {
						other = earlySpamWords
					}
				}
				words = append(words, other[rng.Intn(len(other))])
			default:
				words = append(words, noise[rng.Intn(len(noise))])
			}
		}
		out[i] = Email{Words: words, Spam: spam}
	}
	return out
}

package corpus

import "fmt"

// The five KBC systems of Figure 7, scaled ~2000× down. The relative
// document counts (5M : 1.8M : 0.2M : 0.6M : 0.3M), relation counts, and
// text-quality properties described in Section 4.1 are preserved:
// Adversarial is 1-2 broken sentences per document; News has slightly
// degraded writing and many ambiguous relations; Genomics and Pharma have
// precise text but ambiguous relations; Paleontology is clean and precise.

var neutralGeneric = []string{
	"{A} appeared alongside {B} at the annual meeting",
	"{A} was discussed in the same report as {B}",
	"{A} and separately {B} were mentioned by the committee",
	"the study cited both {A} and {B} without further detail",
	"{A} was listed near {B} in the registry",
}

// News builds persons/organizations/locations relations (the TAC-KBP
// style workload; the paper's News has 34 relations — we scale to 16,
// keeping it the largest relation inventory by far).
func News() Spec {
	rels := []RelationSpec{
		{Name: "HasSpouse", Type1: "Person", Type2: "Person", Symmetric: true, PosTemplates: []string{
			"{A} and his wife {B} were married",
			"{A} married {B} in a small ceremony",
			"{A} and {B} celebrated their wedding anniversary",
		}},
		{Name: "Sibling", Type1: "Person", Type2: "Person", Symmetric: true, PosTemplates: []string{
			"{A} and her brother {B} grew up together",
			"{A} is a sibling of {B}",
		}},
		{Name: "MemberOf", Type1: "Person", Type2: "Org", PosTemplates: []string{
			"{A} is a member of {B}",
			"{A} joined {B} last spring",
			"{A} serves on the board of {B}",
		}},
		{Name: "WorksFor", Type1: "Person", Type2: "Org", PosTemplates: []string{
			"{A} works for {B}",
			"{A} was hired by {B}",
		}},
		{Name: "CEOOf", Type1: "Person", Type2: "Org", PosTemplates: []string{
			"{A} is the chief executive of {B}",
			"{A} leads {B} as its top executive",
		}},
		{Name: "FoundedBy", Type1: "Org", Type2: "Person", PosTemplates: []string{
			"{A} was founded by {B}",
			"{B} established {A} decades ago",
		}},
		{Name: "LivesIn", Type1: "Person", Type2: "Loc", PosTemplates: []string{
			"{A} lives in {B}",
			"{A} has resided in {B} for years",
		}},
		{Name: "BornIn", Type1: "Person", Type2: "Loc", PosTemplates: []string{
			"{A} was born in {B}",
		}},
		{Name: "DiedIn", Type1: "Person", Type2: "Loc", PosTemplates: []string{
			"{A} died in {B}",
		}},
		{Name: "VisitedPlace", Type1: "Person", Type2: "Loc", PosTemplates: []string{
			"{A} visited {B} last month",
			"{A} traveled to {B} for talks",
		}},
		{Name: "HeadquarteredIn", Type1: "Org", Type2: "Loc", PosTemplates: []string{
			"{A} is headquartered in {B}",
			"{A} opened its main office in {B}",
		}},
		{Name: "SubsidiaryOf", Type1: "Org", Type2: "Org", PosTemplates: []string{
			"{A} is a subsidiary of {B}",
			"{B} acquired {A} in a merger",
		}},
		{Name: "PartnerOrg", Type1: "Org", Type2: "Org", Symmetric: true, PosTemplates: []string{
			"{A} announced a partnership with {B}",
		}},
		{Name: "Mentor", Type1: "Person", Type2: "Person", PosTemplates: []string{
			"{A} mentored {B} early in her career",
		}},
		{Name: "Rival", Type1: "Person", Type2: "Person", Symmetric: true, PosTemplates: []string{
			"{A} and {B} have been rivals for years",
		}},
		{Name: "CapitalOf", Type1: "Loc", Type2: "Loc", PosTemplates: []string{
			"{A} is the capital of {B}",
		}},
	}
	return Spec{
		Name:             "News",
		Seed:             1801,
		NumDocs:          360,
		SentencesPerDoc:  [2]int{4, 7},
		EntitiesPerType:  40,
		Relations:        rels,
		TruePairsPerRel:  14,
		KBFraction:       0.35,
		NegPairsPerRel:   8,
		SeedPairsPerRel:  6,
		ExpressProb:      0.55, // degraded writing: relations often implicit
		PatternNoise:     0.18, // ambiguous phrasing ("member of")
		MentionsPerPair:  2.2,
		FalsePairsPerRel: 42,
		Malformed:        0.05,
		NeutralTemplates: neutralGeneric,
	}
}

// Adversarial models advertisement text: one relation, huge document
// count, 1-2 sentences each, heavy corruption — but a distinctive
// pattern, so quality stays moderate (the paper reports F1 ≈ 0.72
// across all semantics).
func Adversarial() Spec {
	rels := []RelationSpec{
		{Name: "AdvertisesService", Type1: "Vendor", Type2: "Service", PosTemplates: []string{
			"{A} offers {B} call now",
			"{A} best {B} available tonight",
			"{B} by {A} satisfaction guaranteed",
		}},
	}
	return Spec{
		Name:             "Adversarial",
		Seed:             5001,
		NumDocs:          1000,
		SentencesPerDoc:  [2]int{1, 2},
		EntitiesPerType:  60,
		Relations:        rels,
		TruePairsPerRel:  120,
		KBFraction:       0.3,
		NegPairsPerRel:   30,
		SeedPairsPerRel:  12,
		ExpressProb:      0.8,
		PatternNoise:     0.1,
		MentionsPerPair:  3.2,
		FalsePairsPerRel: 200,
		Malformed:        0.55,
		NeutralTemplates: []string{
			"{A} new listing near {B} area",
			"contact {A} about {B} anytime",
		},
	}
}

// Genomics extracts gene relations from precise text with linguistically
// ambiguous relationships.
func Genomics() Spec {
	rels := []RelationSpec{
		{Name: "GenePhenotype", Type1: "Gene", Type2: "Phenotype", PosTemplates: []string{
			"mutations in {A} are associated with {B}",
			"{A} variants were linked to {B} in the cohort",
			"loss of {A} causes {B}",
		}},
		{Name: "GeneGeneInteraction", Type1: "Gene", Type2: "Gene", Symmetric: true, PosTemplates: []string{
			"{A} interacts with {B} in the signaling pathway",
			"{A} and {B} form a regulatory complex",
		}},
		{Name: "GeneExpressedIn", Type1: "Gene", Type2: "Tissue", PosTemplates: []string{
			"{A} is expressed in {B}",
			"expression of {A} was detected in {B}",
		}},
	}
	return Spec{
		Name:             "Genomics",
		Seed:             2001,
		NumDocs:          50,
		SentencesPerDoc:  [2]int{6, 10},
		EntitiesPerType:  30,
		Relations:        rels,
		TruePairsPerRel:  18,
		KBFraction:       0.35,
		NegPairsPerRel:   10,
		SeedPairsPerRel:  6,
		ExpressProb:      0.6,
		PatternNoise:     0.12,
		MentionsPerPair:  2.0,
		FalsePairsPerRel: 54,
		Malformed:        0,
		NeutralTemplates: []string{
			"{A} was assayed together with {B} in the screen",
			"both {A} and {B} appeared in the differential analysis",
			"the panel included {A} as well as {B}",
		},
	}
}

// Pharmacogenomics relates drugs, genes, and diseases.
func Pharma() Spec {
	rels := []RelationSpec{
		{Name: "DrugTargetsGene", Type1: "Drug", Type2: "Gene", PosTemplates: []string{
			"{A} inhibits {B}",
			"{A} binds {B} with high affinity",
		}},
		{Name: "DrugTreatsDisease", Type1: "Drug", Type2: "Disease", PosTemplates: []string{
			"{A} is indicated for {B}",
			"{A} reduced symptoms of {B}",
		}},
		{Name: "GeneDiseaseAssoc", Type1: "Gene", Type2: "Disease", PosTemplates: []string{
			"{A} is associated with {B}",
			"variants of {A} predispose to {B}",
		}},
		{Name: "DrugInteraction", Type1: "Drug", Type2: "Drug", Symmetric: true, PosTemplates: []string{
			"{A} interacts adversely with {B}",
		}},
		{Name: "DrugMetabolizedBy", Type1: "Drug", Type2: "Gene", PosTemplates: []string{
			"{A} is metabolized by {B}",
		}},
		{Name: "GeneRegulatesGene", Type1: "Gene", Type2: "Gene", PosTemplates: []string{
			"{A} upregulates {B}",
			"{A} suppresses transcription of {B}",
		}},
		{Name: "DrugSideEffect", Type1: "Drug", Type2: "Disease", PosTemplates: []string{
			"{A} can induce {B} in rare cases",
		}},
		{Name: "DiseaseSubtype", Type1: "Disease", Type2: "Disease", PosTemplates: []string{
			"{A} is a subtype of {B}",
		}},
		{Name: "DrugContraindicated", Type1: "Drug", Type2: "Disease", PosTemplates: []string{
			"{A} is contraindicated in patients with {B}",
		}},
	}
	return Spec{
		Name:             "Pharma",
		Seed:             3001,
		NumDocs:          130,
		SentencesPerDoc:  [2]int{5, 8},
		EntitiesPerType:  32,
		Relations:        rels,
		TruePairsPerRel:  15,
		KBFraction:       0.35,
		NegPairsPerRel:   8,
		SeedPairsPerRel:  6,
		ExpressProb:      0.62,
		PatternNoise:     0.12,
		MentionsPerPair:  2.0,
		FalsePairsPerRel: 45,
		Malformed:        0,
		NeutralTemplates: []string{
			"{A} and {B} were both included in the trial arm",
			"the review discusses {A} in the context of {B}",
			"{A} appeared in the same pathway figure as {B}",
		},
	}
}

// Paleontology: clean curated journal prose, precise unambiguous writing,
// simple relationships (the paper's highest-quality system).
func Paleontology() Spec {
	rels := []RelationSpec{
		{Name: "TaxonInFormation", Type1: "Taxon", Type2: "Formation", PosTemplates: []string{
			"specimens of {A} were recovered from the {B}",
			"{A} occurs in the {B}",
		}},
		{Name: "FormationInPeriod", Type1: "Formation", Type2: "Period", PosTemplates: []string{
			"the {A} is assigned to the {B}",
			"the {A} dates to the {B}",
		}},
		{Name: "TaxonSynonym", Type1: "Taxon", Type2: "Taxon", Symmetric: true, PosTemplates: []string{
			"{A} is a junior synonym of {B}",
		}},
		{Name: "TaxonParent", Type1: "Taxon", Type2: "Taxon", PosTemplates: []string{
			"{A} is classified within {B}",
		}},
		{Name: "FormationAtLocation", Type1: "Formation", Type2: "Site", PosTemplates: []string{
			"the {A} crops out near {B}",
		}},
		{Name: "TaxonDiet", Type1: "Taxon", Type2: "Diet", PosTemplates: []string{
			"dental wear indicates {A} was {B}",
		}},
		{Name: "TaxonPeriod", Type1: "Taxon", Type2: "Period", PosTemplates: []string{
			"{A} lived during the {B}",
		}},
		{Name: "SiteInPeriodStudy", Type1: "Site", Type2: "Period", PosTemplates: []string{
			"deposits at {B} near {A} were dated", // note: deliberately the weakest pattern
		}},
	}
	return Spec{
		Name:             "Paleontology",
		Seed:             4001,
		NumDocs:          80,
		SentencesPerDoc:  [2]int{4, 8},
		EntitiesPerType:  26,
		Relations:        rels,
		TruePairsPerRel:  14,
		KBFraction:       0.4,
		NegPairsPerRel:   8,
		SeedPairsPerRel:  6,
		ExpressProb:      0.8, // precise, unambiguous writing
		PatternNoise:     0.04,
		MentionsPerPair:  1.8,
		FalsePairsPerRel: 32,
		Malformed:        0,
		NeutralTemplates: []string{
			"{A} is figured on the same plate as {B}",
			"the monograph lists {A} and {B} among the material examined",
		},
	}
}

// AllSystems returns generated instances of all five systems in the
// order of Figure 7.
func AllSystems() []*System {
	specs := []Spec{Adversarial(), News(), Genomics(), Pharma(), Paleontology()}
	out := make([]*System, len(specs))
	for i, sp := range specs {
		out[i] = Generate(sp)
	}
	return out
}

// SystemByName generates one system by its Figure 7 name.
func SystemByName(name string) (*System, error) {
	switch name {
	case "Adversarial":
		return Generate(Adversarial()), nil
	case "News":
		return Generate(News()), nil
	case "Genomics":
		return Generate(Genomics()), nil
	case "Pharma", "Pharmacogenomics":
		return Generate(Pharma()), nil
	case "Paleontology":
		return Generate(Paleontology()), nil
	default:
		return nil, fmt.Errorf("corpus: unknown system %q", name)
	}
}

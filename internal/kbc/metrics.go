package kbc

import (
	"math"

	"deepdive/internal/db"
	"deepdive/internal/factor"
)

// Scores are the paper's quality measures: precision (how often a claimed
// tuple is correct) and recall (how many of the possible tuples were
// extracted), combined into F1.
type Scores struct {
	Precision, Recall, F1 float64
	TP, FP, FN            int
}

func scoresFrom(tp, fp, fn int) Scores {
	s := Scores{TP: tp, FP: fp, FN: fn}
	if tp+fp > 0 {
		s.Precision = float64(tp) / float64(tp+fp)
	}
	if tp+fn > 0 {
		s.Recall = float64(tp) / float64(tp+fn)
	}
	if s.Precision+s.Recall > 0 {
		s.F1 = 2 * s.Precision * s.Recall / (s.Precision + s.Recall)
	}
	return s
}

// entityOf maps a mention id to its linked entity via the Mention
// relation.
func (p *Pipeline) entityOf(mid string) (string, bool) {
	rel := p.G.DB().Relation("Mention")
	rows := rel.IndexOn(0).Lookup(mid)
	if len(rows) == 0 {
		return "", false
	}
	return rows[0][3], true
}

// Evaluate scores the output knowledge base against the generator's
// exact ground truth, micro-averaged over every target relation. The
// output KB consists of every candidate fact whose probability clears
// the threshold; evidence variables contribute their supervised value
// (distant supervision puts facts into the KB directly, which is part of
// why the paper's S rules improve end-to-end quality).
func (p *Pipeline) Evaluate(marginals []float64, threshold float64) Scores {
	graph := p.G.Graph()
	tp, fp, fn := 0, 0, 0
	for _, r := range p.Sys.Spec.Relations {
		for _, v := range p.G.VarsOf(relVar(r.Name)) {
			_, tuple := p.G.VarTuple(v)
			e1, ok1 := p.entityOf(tuple[0])
			e2, ok2 := p.entityOf(tuple[1])
			if !ok1 || !ok2 {
				continue
			}
			truth := p.Sys.IsTrue(r.Name, e1, e2)
			var pred bool
			if graph.IsEvidence(v) {
				pred = graph.EvidenceValue(v)
			} else if int(v) < len(marginals) {
				pred = marginals[v] > threshold
			}
			switch {
			case pred && truth:
				tp++
			case pred && !truth:
				fp++
			case !pred && truth:
				fn++
			}
		}
	}
	return scoresFrom(tp, fp, fn)
}

// Fact identifies one extracted fact at mention level.
type Fact struct {
	Rel    string
	M1, M2 string
}

// FactProbs returns the marginal probability of every query fact.
func (p *Pipeline) FactProbs(marginals []float64) map[Fact]float64 {
	out := map[Fact]float64{}
	for _, r := range p.Sys.Spec.Relations {
		for _, v := range p.G.QueryVars(relVar(r.Name)) {
			if int(v) >= len(marginals) {
				continue
			}
			_, tuple := p.G.VarTuple(v)
			out[Fact{Rel: r.Name, M1: tuple[0], M2: tuple[1]}] = marginals[v]
		}
	}
	return out
}

// OverlapStats quantifies how similar two runs' extractions are — the
// paper's Section 4.2 comparison between Rerun and Incremental: the
// fraction of high-confidence facts of a appearing in b (and vice versa),
// and the fraction of shared facts whose probabilities differ by more
// than probTol.
type OverlapStats struct {
	HighConfOverlapAB float64 // of a's high-confidence facts, fraction also high-confidence in b
	HighConfOverlapBA float64
	FracLargeDiff     float64 // fraction of shared facts with |pa-pb| > probTol
	Shared            int
}

// CompareFacts computes OverlapStats between two fact-probability maps.
func CompareFacts(a, b map[Fact]float64, highConf, probTol float64) OverlapStats {
	var st OverlapStats
	countA, inB := 0, 0
	for f, pa := range a {
		if pa > highConf {
			countA++
			if pb, ok := b[f]; ok && pb > highConf {
				inB++
			}
		}
	}
	if countA > 0 {
		st.HighConfOverlapAB = float64(inB) / float64(countA)
	} else {
		st.HighConfOverlapAB = 1
	}
	countB, inA := 0, 0
	for f, pb := range b {
		if pb > highConf {
			countB++
			if pa, ok := a[f]; ok && pa > highConf {
				inA++
			}
		}
	}
	if countB > 0 {
		st.HighConfOverlapBA = float64(inA) / float64(countB)
	} else {
		st.HighConfOverlapBA = 1
	}
	large := 0
	for f, pa := range a {
		pb, ok := b[f]
		if !ok {
			continue
		}
		st.Shared++
		if math.Abs(pa-pb) > probTol {
			large++
		}
	}
	if st.Shared > 0 {
		st.FracLargeDiff = float64(large) / float64(st.Shared)
	}
	return st
}

// CalibrationBin is one bucket of a calibration curve.
type CalibrationBin struct {
	Lo, Hi   float64
	Count    int
	FracTrue float64
	MeanProb float64
}

// Calibration buckets query-fact marginals and reports the empirical
// fraction of true facts per bucket — DeepDive's calibrated-probability
// claim ("if one examined all facts with probability 0.9, approximately
// 90% would be correct").
func (p *Pipeline) Calibration(marginals []float64, bins int) []CalibrationBin {
	out := make([]CalibrationBin, bins)
	sums := make([]float64, bins)
	trues := make([]int, bins)
	for i := range out {
		out[i].Lo = float64(i) / float64(bins)
		out[i].Hi = float64(i+1) / float64(bins)
	}
	for _, r := range p.Sys.Spec.Relations {
		for _, v := range p.G.QueryVars(relVar(r.Name)) {
			if int(v) >= len(marginals) {
				continue
			}
			_, tuple := p.G.VarTuple(v)
			e1, ok1 := p.entityOf(tuple[0])
			e2, ok2 := p.entityOf(tuple[1])
			if !ok1 || !ok2 {
				continue
			}
			prob := marginals[v]
			b := int(prob * float64(bins))
			if b >= bins {
				b = bins - 1
			}
			out[b].Count++
			sums[b] += prob
			if p.Sys.IsTrue(r.Name, e1, e2) {
				trues[b]++
			}
		}
	}
	for i := range out {
		if out[i].Count > 0 {
			out[i].FracTrue = float64(trues[i]) / float64(out[i].Count)
			out[i].MeanProb = sums[i] / float64(out[i].Count)
		}
	}
	return out
}

// CountQueryVars returns the number of scored query variables (used by
// the Figure 7 statistics reproduction).
func (p *Pipeline) CountQueryVars() int {
	n := 0
	for _, r := range p.Sys.Spec.Relations {
		n += len(p.G.QueryVars(relVar(r.Name)))
	}
	return n
}

// Stats reports the Figure 7 row of this pipeline: documents, relations,
// rules, variables, factors.
type Stats struct {
	Docs, Relations, Rules, Vars, Factors int
}

// SystemStats computes the Figure 7 statistics for the pipeline's
// current grounding state.
func (p *Pipeline) SystemStats() Stats {
	return Stats{
		Docs:      len(p.Sys.Docs),
		Relations: len(p.Sys.Spec.Relations),
		Rules:     len(p.G.Program().Rules),
		Vars:      p.G.NumVars(),
		Factors:   p.G.NumGroundings(),
	}
}

var _ = db.Tuple{} // keep imports honest if refactors drop uses
var _ factor.VarID = 0

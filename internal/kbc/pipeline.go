package kbc

import (
	"fmt"
	"time"

	"deepdive/internal/corpus"
	"deepdive/internal/datalog"
	"deepdive/internal/factor"
	"deepdive/internal/gibbs"
	"deepdive/internal/ground"
	"deepdive/internal/inc"
	"deepdive/internal/learn"
)

// Config tunes a pipeline run. Zero values get sensible defaults sized
// for second-scale experiments.
type Config struct {
	Sem       factor.Semantics
	Threshold float64 // extraction threshold on marginals (default 0.5)

	LearnEpochs    int     // full (from scratch) learning epochs (default 12)
	IncLearnEpochs int     // warmstart learning epochs per update (default 3)
	LearnStep      float64 // step size (default 0.25)

	InferBurnin int // Gibbs burn-in sweeps (default 30)
	InferKeep   int // kept sweeps / kept worlds (default 300)

	MatSamples int // materialized sample count (default 1200)
	Lambda     float64

	// Parallelism shards Gibbs sweeps (learning chains, materialization,
	// rerun inference) across this many workers: <= 1 sequential, n > 1
	// uses n worker shards, negative means one worker per core. Ignored
	// when Replicas selects the replica engine.
	Parallelism int

	// Replicas selects the replica engine for every Gibbs chain the
	// pipeline runs (per-worker assignment/weight copies with periodic
	// averaging): n >= 1 replicas, negative one per core, 0 disables.
	Replicas int
	// SyncEvery is the replica merge interval in sweeps (learning:
	// gradient steps); <= 0 selects gibbs.DefaultSyncEvery.
	SyncEvery int

	// RebuildUpdates selects the rebuild lesion configuration: each
	// iteration's (ΔV, ΔF) marks the graph dirty for an O(V+F) rebuild of
	// the flat pools instead of the default O(|Δ|) factor.Patch splice.
	RebuildUpdates bool

	Seed int64

	// Lesion switches forwarded to the incremental engine.
	DisableSampling    bool
	DisableVariational bool
	IgnoreWorkload     bool
	// NoDecompose disables the Algorithm 2 blocked inference (the
	// NoDecomposition lesion of Figure 14); by default updates are
	// inferred per decomposition group with the update's touched
	// variables as the interest area.
	NoDecompose bool
}

func (c Config) fill() Config {
	if c.Threshold <= 0 {
		c.Threshold = 0.5
	}
	if c.LearnEpochs <= 0 {
		c.LearnEpochs = 12
	}
	if c.IncLearnEpochs <= 0 {
		c.IncLearnEpochs = 3
	}
	if c.LearnStep <= 0 {
		c.LearnStep = 0.25
	}
	if c.InferBurnin <= 0 {
		c.InferBurnin = 30
	}
	if c.InferKeep <= 0 {
		c.InferKeep = 300
	}
	if c.MatSamples <= 0 {
		c.MatSamples = 1200
	}
	if c.Lambda <= 0 {
		c.Lambda = 0.01
	}
	return c
}

// Pipeline is one KBC system under development: grounder, learned
// weights, incremental-inference engine, and the latest marginals.
type Pipeline struct {
	Sys     *corpus.System
	Cfg     Config
	G       *ground.Grounder
	BaseSrc string

	engine    *inc.Engine
	matGraph  *factor.Graph // the engine's Pr(0) graph
	Marginals []float64
	applied   []string
}

// NewPipeline builds and grounds the snapshot-0 program.
func NewPipeline(sys *corpus.System, cfg Config) (*Pipeline, error) {
	c := cfg.fill()
	baseSrc := BaseProgram(sys, c.Sem)
	prog, err := datalog.Parse(baseSrc)
	if err != nil {
		return nil, fmt.Errorf("kbc: base program: %w", err)
	}
	g, err := ground.New(prog, UDFs())
	if err != nil {
		return nil, err
	}
	g.SetInPlaceUpdates(!c.RebuildUpdates)
	for rel, tuples := range BaseTuples(sys) {
		if err := g.LoadBase(rel, tuples); err != nil {
			return nil, err
		}
	}
	if err := g.Ground(); err != nil {
		return nil, err
	}
	return &Pipeline{Sys: sys, Cfg: c, G: g, BaseSrc: baseSrc}, nil
}

// frozenMask marks non-learnable (fixed) weights for the learner.
func (p *Pipeline) frozenMask(graph *factor.Graph) []bool {
	frozen := make([]bool, graph.NumWeights())
	for i := range frozen {
		frozen[i] = true
	}
	for _, w := range p.G.LearnableWeights() {
		frozen[w] = false
	}
	return frozen
}

// LearnFull trains weights from scratch on the current graph.
func (p *Pipeline) LearnFull() time.Duration {
	start := time.Now()
	graph := p.G.Graph()
	warm := append([]float64(nil), graph.Weights()...) // keep fixed weights
	for _, w := range p.G.LearnableWeights() {
		warm[w] = 0
	}
	learn.Train(graph, learn.Options{
		Epochs:      p.Cfg.LearnEpochs,
		StepSize:    p.Cfg.LearnStep,
		Parallelism: p.Cfg.Parallelism,
		Replicas:    p.Cfg.Replicas,
		SyncEvery:   p.Cfg.SyncEvery,
		Seed:        p.Cfg.Seed + 101,
		Warmstart:   warm,
		Frozen:      p.frozenMask(graph),
	})
	return time.Since(start)
}

// learnIncremental warmstarts from the current weights for a few short
// epochs — warmstart needs far fewer passes than learning from scratch
// (Appendix B.3).
func (p *Pipeline) learnIncremental() time.Duration {
	start := time.Now()
	graph := p.G.Graph()
	learn.Train(graph, learn.Options{
		Epochs:      p.Cfg.IncLearnEpochs,
		StepSize:    p.Cfg.LearnStep,
		BatchSweeps: 5,
		Burnin:      5,
		Parallelism: p.Cfg.Parallelism,
		Replicas:    p.Cfg.Replicas,
		SyncEvery:   p.Cfg.SyncEvery,
		Seed:        p.Cfg.Seed + 103,
		Warmstart:   append([]float64(nil), graph.Weights()...),
		Frozen:      p.frozenMask(graph),
	})
	return time.Since(start)
}

// Materialize builds the incremental-inference engine over the current
// graph (both sampling and variational forms). Call after LearnFull.
func (p *Pipeline) Materialize() time.Duration {
	graph := p.G.Graph()
	eng, err := inc.NewEngine(graph, inc.Options{
		MaterializationSamples: p.Cfg.MatSamples,
		Burnin:                 p.Cfg.InferBurnin,
		KeepSamples:            p.Cfg.InferKeep,
		Lambda:                 p.Cfg.Lambda,
		Parallelism:            p.Cfg.Parallelism,
		Replicas:               p.Cfg.Replicas,
		SyncEvery:              p.Cfg.SyncEvery,
		Seed:                   p.Cfg.Seed + 107,
		DisableSampling:        p.Cfg.DisableSampling,
		DisableVariational:     p.Cfg.DisableVariational,
		IgnoreWorkload:         p.Cfg.IgnoreWorkload,
	})
	if err != nil {
		panic(fmt.Sprintf("kbc: materialization failed: %v", err))
	}
	p.engine = eng
	p.matGraph = graph
	return eng.MaterializationTime()
}

// Engine exposes the incremental engine (nil before Materialize).
func (p *Pipeline) Engine() *inc.Engine { return p.engine }

// InferFromScratch runs plain Gibbs on the current graph (the Rerun
// inference phase) and stores the marginals.
func (p *Pipeline) InferFromScratch() time.Duration {
	start := time.Now()
	p.Marginals = inc.RerunWith(p.G.Graph(), p.Cfg.InferBurnin, p.Cfg.InferKeep, p.Cfg.Seed+109,
		gibbs.Runtime{Workers: p.Cfg.Parallelism, Replicas: p.Cfg.Replicas, SyncEvery: p.Cfg.SyncEvery})
	return time.Since(start)
}

// IterationResult reports one incremental development step.
type IterationResult struct {
	Name       string
	GroundTime time.Duration
	LearnTime  time.Duration
	InferTime  time.Duration
	Strategy   inc.Strategy
	Acceptance float64
	FellBack   bool
	Scores     Scores
}

// Total returns learn + inference time (the quantity Figure 9 reports).
func (r *IterationResult) Total() time.Duration { return r.LearnTime + r.InferTime }

// ApplyIteration applies one development iteration incrementally:
// incremental grounding, warmstart learning (skipped when the update
// changes nothing), weight-diff augmentation of the change set, and
// engine inference under the optimizer's strategy choice.
func (p *Pipeline) ApplyIteration(name string) (*IterationResult, error) {
	if p.engine == nil {
		return nil, fmt.Errorf("kbc: ApplyIteration before Materialize")
	}
	rules, err := ParseIteration(p.Sys, p.BaseSrc, name)
	if err != nil {
		return nil, err
	}
	res := &IterationResult{Name: name}

	start := time.Now()
	delta, err := p.G.ApplyUpdate(ground.Update{NewRules: rules})
	if err != nil {
		return nil, err
	}
	res.GroundTime = time.Since(start)

	newGraph := p.G.Graph()
	if delta.HasNewFeatures() || delta.HasEvidenceChange() || delta.StructureChanged() {
		res.LearnTime = p.learnIncremental()
	}

	cs := inc.FromDelta(delta)
	p.addWeightChanges(&cs, newGraph)

	start = time.Now()
	var ir *inc.Result
	strategy := p.engine.ChooseStrategy(cs)
	if !p.Cfg.NoDecompose && strategy == inc.StrategySampling && cs.StructureChanged() {
		// Blocked inference over the new graph's connected components —
		// each per-sentence cluster keeps its own acceptance test, which
		// is what keeps the sampling approach alive under feature updates
		// (Appendix B.1).
		groups := inc.ComponentGroups(newGraph)
		ir = p.engine.InferDecomposed(newGraph, cs, groups)
	} else {
		ir = p.engine.Infer(newGraph, cs)
	}
	res.InferTime = time.Since(start)
	res.Strategy = ir.Strategy
	res.Acceptance = ir.AcceptanceRate
	res.FellBack = ir.FellBack
	p.Marginals = ir.Marginals
	p.applied = append(p.applied, name)
	res.Scores = p.Evaluate(p.Marginals, p.Cfg.Threshold)
	return res, nil
}

// addWeightChanges extends the change set with groups whose weight values
// changed (relearning shifts the distribution even for untouched groups).
func (p *Pipeline) addWeightChanges(cs *inc.ChangeSet, newGraph *factor.Graph) {
	const eps = 1e-9
	already := map[int32]bool{}
	for _, gi := range cs.ChangedOld {
		already[gi] = true
	}
	oldG := p.matGraph
	for gi := 0; gi < oldG.NumGroups(); gi++ {
		if already[int32(gi)] {
			continue
		}
		w := oldG.GroupWeight(gi)
		if int(w) < newGraph.NumWeights() {
			if diff := oldG.Weight(w) - newGraph.Weight(w); diff > eps || diff < -eps {
				cs.ChangedOld = append(cs.ChangedOld, int32(gi))
				cs.ChangedNew = append(cs.ChangedNew, int32(gi))
			}
		}
	}
}

// activeVars derives the Algorithm 2 interest area from the change set:
// variables touched by changed groups or evidence changes. Changed groups
// are walked directly over the flat CSR pools (factor.Graph.GroupVars) —
// the on-demand Graph.Group synthesis would allocate a full nested
// grounding list per changed group.
func activeVars(oldG *factor.Graph, cs inc.ChangeSet) []factor.VarID {
	seen := map[factor.VarID]bool{}
	add := func(v factor.VarID) {
		if !oldG.IsEvidence(v) {
			seen[v] = true
		}
	}
	for _, gi := range cs.ChangedOld {
		oldG.GroupVars(gi, add)
	}
	for _, v := range cs.EvidenceChanged {
		if int(v) < oldG.NumVars() {
			add(v)
		}
	}
	out := make([]factor.VarID, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	return out
}

// Applied lists the iterations applied so far.
func (p *Pipeline) Applied() []string { return append([]string(nil), p.applied...) }

// RerunResult reports one from-scratch run (the paper's Rerun baseline).
type RerunResult struct {
	GroundTime time.Duration
	LearnTime  time.Duration
	InferTime  time.Duration
	Scores     Scores
	Pipeline   *Pipeline
}

// Total returns learn + inference time.
func (r *RerunResult) Total() time.Duration { return r.LearnTime + r.InferTime }

// Rerun builds a fresh pipeline whose program contains the base rules
// plus every iteration up to and including upTo (by position in
// IterationNames; -1 = base only), grounds from scratch, learns from
// scratch, and infers with plain Gibbs.
func Rerun(sys *corpus.System, cfg Config, upTo int) (*RerunResult, error) {
	c := cfg.fill()
	src := BaseProgram(sys, c.Sem)
	for i := 0; i <= upTo && i < len(IterationNames); i++ {
		src += IterationRules(sys, IterationNames[i])
	}
	prog, err := datalog.Parse(src)
	if err != nil {
		return nil, err
	}
	g, err := ground.New(prog, UDFs())
	if err != nil {
		return nil, err
	}
	for rel, tuples := range BaseTuples(sys) {
		if err := g.LoadBase(rel, tuples); err != nil {
			return nil, err
		}
	}
	res := &RerunResult{}
	start := time.Now()
	if err := g.Ground(); err != nil {
		return nil, err
	}
	res.GroundTime = time.Since(start)

	p := &Pipeline{Sys: sys, Cfg: c, G: g, BaseSrc: src}
	res.LearnTime = p.LearnFull()
	res.InferTime = p.InferFromScratch()
	res.Scores = p.Evaluate(p.Marginals, c.Threshold)
	res.Pipeline = p
	return res, nil
}

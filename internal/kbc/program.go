// Package kbc assembles the end-to-end KBC pipeline of Figure 1: raw
// documents through NLP preprocessing into base relations, a generated
// DeepDive program per system (candidate generation, feature extraction,
// supervision, inference rules — the rule inventory of Figure 8), the
// iteration snapshots A1/FE1/FE2/I1/S1/S2 used throughout Section 4, and
// the Rerun-vs-Incremental measurement harness.
package kbc

import (
	"fmt"
	"strconv"
	"strings"

	"deepdive/internal/corpus"
	"deepdive/internal/datalog"
	"deepdive/internal/db"
	"deepdive/internal/factor"
	"deepdive/internal/ground"
	"deepdive/internal/nlp"
)

// relVar names the variable relation for a target relation.
func relVar(rel string) string { return "Rel_" + rel }

// BaseProgram renders the snapshot-0 DeepDive program for a system:
// declarations, candidate-generation rules (C), a bias feature (FE0), and
// seed supervision (S0). Later iterations arrive as updates via
// IterationRules.
func BaseProgram(sys *corpus.System, sem factor.Semantics) string {
	var sb strings.Builder
	sb.WriteString("@relation Sentence(sid, words).\n")
	sb.WriteString("@relation Mention(mid, sid, etype, eid).\n")
	for _, r := range sys.Spec.Relations {
		fmt.Fprintf(&sb, "@variable %s(m1, m2).\n", relVar(r.Name))
		fmt.Fprintf(&sb, "@relation %s_Ev(m1, m2, label).\n", relVar(r.Name))
		fmt.Fprintf(&sb, "@relation KB_%s(e1, e2).\n", r.Name)
		fmt.Fprintf(&sb, "@relation NegKB_%s(e1, e2).\n", r.Name)
		fmt.Fprintf(&sb, "@relation SeedKB_%s(e1, e2, label).\n", r.Name)
	}
	fmt.Fprintf(&sb, "@semantics(%s).\n", sem)
	for _, r := range sys.Spec.Relations {
		// Candidate generation (paper rule R1): typed mention pairs
		// co-occurring in a sentence.
		fmt.Fprintf(&sb, "C_%s: %s(m1, m2) :- Mention(m1, s, %q, e1), Mention(m2, s, %q, e2), m1 != m2.\n",
			r.Name, relVar(r.Name), r.Type1, r.Type2)
		// FE0: a learnable per-relation bias so snapshot 0 has a model.
		fmt.Fprintf(&sb, "FE0_%s: %s(m1, m2) :- %s(m1, m2) weight = w().\n",
			r.Name, relVar(r.Name), relVar(r.Name))
		// S0: seed supervision from a handful of hand-labeled pairs.
		fmt.Fprintf(&sb, "S0_%s: %s_Ev(m1, m2, l) :- %s(m1, m2), Mention(m1, s, t1, e1), Mention(m2, s, t2, e2), SeedKB_%s(e1, e2, l).\n",
			r.Name, relVar(r.Name), relVar(r.Name), r.Name)
	}
	return sb.String()
}

// IterationRules renders the rule text added by one development
// iteration (the workload categories of Figure 8): "FE1" shallow
// phrase features, "FE2" deeper tag-path features, "I1" inference rules
// (symmetry where the schema allows), "S1" positive distant supervision,
// "S2" negative supervision. "A1" is the analysis workload: no rules.
func IterationRules(sys *corpus.System, name string) string {
	var sb strings.Builder
	for _, r := range sys.Spec.Relations {
		rv := relVar(r.Name)
		switch name {
		case "A1":
			// Analysis only: marginal (pair) probabilities, no new rules.
		case "FE1":
			fmt.Fprintf(&sb, "FE1_%s: %s(m1, m2) :- Mention(m1, s, t1, e1), Mention(m2, s, t2, e2), Sentence(s, words), m1 != m2 weight = phrase(m1, m2, words).\n",
				r.Name, rv)
		case "FE2":
			fmt.Fprintf(&sb, "FE2_%s: %s(m1, m2) :- Mention(m1, s, t1, e1), Mention(m2, s, t2, e2), Sentence(s, words), m1 != m2 weight = tagpath(m1, m2, words).\n",
				r.Name, rv)
		case "I1":
			if r.Symmetric {
				fmt.Fprintf(&sb, "I1_%s: %s(m2, m1) :- %s(m1, m2) weight = 1.2.\n",
					r.Name, rv, rv)
			} else {
				// Asymmetric relations get a sentence-level prior: pairs
				// whose mentions are near each other are more likely.
				fmt.Fprintf(&sb, "I1_%s: %s(m1, m2) :- Mention(m1, s, t1, e1), Mention(m2, s, t2, e2), Sentence(s, words), m1 != m2 weight = proximity(m1, m2, words).\n",
					r.Name, rv)
			}
		case "S1":
			fmt.Fprintf(&sb, "S1_%s: %s_Ev(m1, m2, true) :- %s(m1, m2), Mention(m1, s, t1, e1), Mention(m2, s, t2, e2), KB_%s(e1, e2).\n",
				r.Name, rv, rv, r.Name)
		case "S2":
			fmt.Fprintf(&sb, "S2_%s: %s_Ev(m1, m2, false) :- %s(m1, m2), Mention(m1, s, t1, e1), Mention(m2, s, t2, e2), NegKB_%s(e1, e2).\n",
				r.Name, rv, rv, r.Name)
		default:
			panic(fmt.Sprintf("kbc: unknown iteration %q", name))
		}
	}
	return sb.String()
}

// IterationNames is the development sequence used in Section 4.2.
var IterationNames = []string{"A1", "FE1", "FE2", "I1", "S1", "S2"}

// ParseMentionID decodes "m:<sid>:<start>:<end>".
func ParseMentionID(mid string) (sid string, start, end int, ok bool) {
	parts := strings.Split(mid, ":")
	if len(parts) != 4 || parts[0] != "m" {
		return "", 0, 0, false
	}
	s, err1 := strconv.Atoi(parts[2])
	e, err2 := strconv.Atoi(parts[3])
	if err1 != nil || err2 != nil {
		return "", 0, 0, false
	}
	return parts[1], s, e, true
}

// UDFs returns the feature-extraction UDF registry shared by all systems:
//
//	phrase(m1, m2, words)    — normalized word sequence between mentions (FE1)
//	tagpath(m1, m2, words)   — POS-tag path with one-token context (FE2)
//	proximity(m1, m2, words) — bucketed token distance (I1 for asymmetric relations)
func UDFs() ground.UDFRegistry {
	spans := func(args []string) (tokens []string, aS, aE, bS, bE int, ok bool) {
		_, aS, aE, ok1 := ParseMentionID(args[0])
		_, bS, bE, ok2 := ParseMentionID(args[1])
		if !ok1 || !ok2 {
			return nil, 0, 0, 0, 0, false
		}
		return strings.Fields(args[2]), aS, aE, bS, bE, true
	}
	return ground.UDFRegistry{
		"phrase": func(args []string) string {
			tokens, aS, aE, bS, bE, ok := spans(args)
			if !ok {
				return "bad"
			}
			p := nlp.PhraseBetween(tokens, aS, aE, bS, bE, 4)
			if p == "" {
				return "adjacent"
			}
			return p
		},
		"tagpath": func(args []string) string {
			tokens, aS, aE, bS, bE, ok := spans(args)
			if !ok {
				return "bad"
			}
			p := nlp.TagPath(tokens, aS, aE, bS, bE)
			if p == "" {
				return "overlap"
			}
			return p
		},
		"proximity": func(args []string) string {
			_, aS, aE, bS, bE, ok := spans(args)
			if !ok {
				return "bad"
			}
			d := bS - aE
			if bE <= aS {
				d = aS - bE
			}
			switch {
			case d <= 2:
				return "near"
			case d <= 6:
				return "mid"
			default:
				return "far"
			}
		},
	}
}

// BaseTuples runs the NLP substrate over the system's documents and
// returns the base relations: Sentence, Mention (with entity links), and
// the per-relation KB / NegKB / SeedKB tables.
func BaseTuples(sys *corpus.System) map[string][]db.Tuple {
	gaz := nlp.NewGazetteer()
	for eid, surface := range sys.Surface {
		typ := strings.SplitN(eid, "_", 2)[0]
		gaz.Add(surface, typ, eid)
	}
	out := map[string][]db.Tuple{}
	for di, doc := range sys.Docs {
		for si, sent := range nlp.SplitSentences(doc) {
			tokens := nlp.Tokenize(sent)
			sid := fmt.Sprintf("s%d_%d", di, si)
			out["Sentence"] = append(out["Sentence"], db.Tuple{sid, strings.Join(tokens, " ")})
			for _, m := range gaz.Recognize(tokens) {
				mid := fmt.Sprintf("m:%s:%d:%d", sid, m.Start, m.End)
				out["Mention"] = append(out["Mention"], db.Tuple{mid, sid, m.Type, m.Entity})
			}
		}
	}
	for _, r := range sys.Spec.Relations {
		for _, p := range sys.KB[r.Name] {
			out["KB_"+r.Name] = append(out["KB_"+r.Name], db.Tuple{p.E1, p.E2})
		}
		for _, p := range sys.NegKB[r.Name] {
			out["NegKB_"+r.Name] = append(out["NegKB_"+r.Name], db.Tuple{p.E1, p.E2})
		}
		for _, lp := range sys.Seeds[r.Name] {
			out["SeedKB_"+r.Name] = append(out["SeedKB_"+r.Name],
				db.Tuple{lp.E1, lp.E2, fmt.Sprint(lp.Label)})
		}
	}
	return out
}

// ParseIteration parses the rules of an iteration against the current
// program (so new rules can be handed to ApplyUpdate).
func ParseIteration(sys *corpus.System, baseSrc, name string) ([]*datalog.Rule, error) {
	src := IterationRules(sys, name)
	if strings.TrimSpace(src) == "" {
		return nil, nil
	}
	full, err := datalog.Parse(baseSrc + src)
	if err != nil {
		return nil, err
	}
	base, err := datalog.Parse(baseSrc)
	if err != nil {
		return nil, err
	}
	return full.Rules[len(base.Rules):], nil
}

package kbc

import (
	"strings"
	"testing"

	"deepdive/internal/corpus"
	"deepdive/internal/datalog"
	"deepdive/internal/factor"
	"deepdive/internal/inc"
)

// smallSystem is a fast test corpus: one relation, compact.
func smallSystem() *corpus.System {
	spec := corpus.Genomics()
	spec.NumDocs = 20
	spec.EntitiesPerType = 14
	spec.TruePairsPerRel = 8
	spec.FalsePairsPerRel = 24
	spec.Seed = 77
	return corpus.Generate(spec)
}

func testConfig() Config {
	return Config{
		Sem:         factor.Ratio,
		LearnEpochs: 10, IncLearnEpochs: 4,
		InferBurnin: 15, InferKeep: 150,
		MatSamples: 500,
		Seed:       5,
	}
}

func TestBaseProgramParses(t *testing.T) {
	for _, sys := range corpus.AllSystems() {
		src := BaseProgram(sys, factor.Ratio)
		if _, err := datalog.Parse(src); err != nil {
			t.Fatalf("%s base program: %v", sys.Spec.Name, err)
		}
		for _, it := range IterationNames {
			full := src
			for _, name := range IterationNames {
				full += IterationRules(sys, name)
				if name == it {
					break
				}
			}
			if _, err := datalog.Parse(full); err != nil {
				t.Fatalf("%s through %s: %v", sys.Spec.Name, it, err)
			}
		}
	}
}

func TestParseMentionID(t *testing.T) {
	sid, s, e, ok := ParseMentionID("m:s3_1:2:4")
	if !ok || sid != "s3_1" || s != 2 || e != 4 {
		t.Fatalf("ParseMentionID = %q %d %d %v", sid, s, e, ok)
	}
	for _, bad := range []string{"", "m:x:1", "x:s:1:2", "m:s:a:2"} {
		if _, _, _, ok := ParseMentionID(bad); ok {
			t.Fatalf("bad mention id %q accepted", bad)
		}
	}
}

func TestUDFsAreDeterministicAndTotal(t *testing.T) {
	udfs := UDFs()
	args := []string{"m:s0_0:0:3", "m:s0_0:6:7", "Barack Person1 Ashford and his wife Michelle were married"}
	for name, f := range udfs {
		a := f(args)
		b := f(args)
		if a != b || a == "" {
			t.Fatalf("%s: %q vs %q", name, a, b)
		}
		if got := f([]string{"junk", "junk", "words"}); got != "bad" {
			t.Fatalf("%s on junk = %q, want bad", name, got)
		}
	}
	if p := udfs["phrase"](args); p != "and_his_wife" {
		t.Fatalf("phrase = %q", p)
	}
}

func TestBaseTuplesShape(t *testing.T) {
	sys := smallSystem()
	base := BaseTuples(sys)
	if len(base["Sentence"]) == 0 || len(base["Mention"]) == 0 {
		t.Fatal("no sentences or mentions extracted")
	}
	// Each mention's sid must reference an existing sentence.
	sids := map[string]bool{}
	for _, s := range base["Sentence"] {
		sids[s[0]] = true
	}
	for _, m := range base["Mention"] {
		if !sids[m[1]] {
			t.Fatalf("mention %v references unknown sentence", m)
		}
		if _, _, _, ok := ParseMentionID(m[0]); !ok {
			t.Fatalf("malformed mention id %q", m[0])
		}
	}
	for _, r := range sys.Spec.Relations {
		if len(base["KB_"+r.Name]) == 0 {
			t.Fatalf("empty KB for %s", r.Name)
		}
		if len(base["SeedKB_"+r.Name]) == 0 {
			t.Fatalf("empty seeds for %s", r.Name)
		}
	}
}

func TestPipelineEndToEnd(t *testing.T) {
	sys := smallSystem()
	p, err := NewPipeline(sys, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	stats := p.SystemStats()
	if stats.Vars == 0 || stats.Factors == 0 {
		t.Fatalf("empty grounding: %+v", stats)
	}
	p.LearnFull()
	p.InferFromScratch()
	baseScores := p.Evaluate(p.Marginals, 0.5)
	p.Materialize()

	var lastScores Scores
	for _, it := range IterationNames {
		res, err := p.ApplyIteration(it)
		if err != nil {
			t.Fatalf("%s: %v", it, err)
		}
		if len(p.Marginals) == 0 {
			t.Fatalf("%s: no marginals", it)
		}
		lastScores = res.Scores
		t.Logf("%s: F1=%.3f strategy=%v acc=%.2f ground=%v learn=%v infer=%v",
			it, res.Scores.F1, res.Strategy, res.Acceptance,
			res.GroundTime, res.LearnTime, res.InferTime)
	}
	// Feature extraction + supervision must improve on the bias-only base.
	if lastScores.F1 <= baseScores.F1 {
		t.Fatalf("no quality improvement: base F1 %.3f, final F1 %.3f",
			baseScores.F1, lastScores.F1)
	}
	if lastScores.F1 < 0.3 {
		t.Fatalf("final F1 %.3f too low", lastScores.F1)
	}
}

func TestIncrementalMatchesRerunQuality(t *testing.T) {
	sys := smallSystem()
	cfg := testConfig()

	incP, err := NewPipeline(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	incP.LearnFull()
	incP.Materialize()
	for _, it := range IterationNames {
		if _, err := incP.ApplyIteration(it); err != nil {
			t.Fatal(err)
		}
	}
	incScores := incP.Evaluate(incP.Marginals, 0.5)
	incFacts := incP.FactProbs(incP.Marginals)

	rr, err := Rerun(sys, cfg, len(IterationNames)-1)
	if err != nil {
		t.Fatal(err)
	}
	rrFacts := rr.Pipeline.FactProbs(rr.Pipeline.Marginals)

	if d := incScores.F1 - rr.Scores.F1; d > 0.15 || d < -0.15 {
		t.Fatalf("incremental F1 %.3f vs rerun F1 %.3f differ too much", incScores.F1, rr.Scores.F1)
	}
	// At this corpus scale the variational phase compresses confidence, so
	// the paper's 99%-at-0.9 claim is checked at the 0.7 level; see
	// EXPERIMENTS.md for the measured values at 0.9.
	ov := CompareFacts(rrFacts, incFacts, 0.7, 0.25)
	if ov.Shared == 0 {
		t.Fatal("no shared facts between rerun and incremental")
	}
	if ov.HighConfOverlapAB < 0.9 {
		t.Fatalf("high-confidence overlap %.2f too low", ov.HighConfOverlapAB)
	}
	t.Logf("overlap: AB=%.2f BA=%.2f largeDiff=%.2f shared=%d",
		ov.HighConfOverlapAB, ov.HighConfOverlapBA, ov.FracLargeDiff, ov.Shared)
}

// TestActiveVarsReadsCSRDirectly checks the interest-area derivation
// after its migration off the nested Graph.Group synthesis: changed
// groups contribute their head and every live body variable (evidence
// excluded), evidence changes contribute themselves.
func TestActiveVarsReadsCSRDirectly(t *testing.T) {
	b := factor.NewBuilder()
	ev := b.AddEvidenceVar(true)
	v1, v2, v3 := b.AddVar(), b.AddVar(), b.AddVar()
	w := b.AddWeight(0.4)
	b.AddGroup(v1, w, factor.Linear, []factor.Grounding{
		{Lits: []factor.Literal{{Var: v2}, {Var: ev}}},
	})
	b.AddGroup(v3, w, factor.Linear, []factor.Grounding{
		{Lits: []factor.Literal{{Var: v1}}},
	})
	g := b.MustBuild()

	got := activeVars(g, inc.ChangeSet{
		ChangedOld:      []int32{0},
		EvidenceChanged: []factor.VarID{v3},
	})
	want := map[factor.VarID]bool{v1: true, v2: true, v3: true} // ev excluded
	if len(got) != len(want) {
		t.Fatalf("activeVars = %v, want vars %v", got, want)
	}
	for _, v := range got {
		if !want[v] {
			t.Fatalf("unexpected active var %d in %v", v, got)
		}
	}

	// Tombstoned groundings must not contribute: retract group 1's only
	// grounding and re-derive.
	p := factor.NewPatch(g)
	p.RemoveGrounding(1) // group 1's grounding (global index 1)
	patched := p.Apply()
	got = activeVars(patched, inc.ChangeSet{ChangedOld: []int32{1}})
	if len(got) != 1 || got[0] != v3 {
		t.Fatalf("patched activeVars = %v, want head only [%d]", got, v3)
	}
}

func TestEvaluateCounts(t *testing.T) {
	sys := smallSystem()
	p, err := NewPipeline(sys, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// All-zero marginals: predictions come only from evidence (which is
	// correct by construction), so no false positives and plenty of
	// misses.
	zero := make([]float64, p.G.Graph().NumVars())
	s := p.Evaluate(zero, 0.5)
	if s.FP != 0 {
		t.Fatalf("zero marginals scored FP=%d", s.FP)
	}
	if s.FN == 0 {
		t.Fatal("ground truth has no positive query facts to miss")
	}
	// All-one marginals: recall 1.
	one := make([]float64, p.G.Graph().NumVars())
	for i := range one {
		one[i] = 1
	}
	s = p.Evaluate(one, 0.5)
	if s.Recall != 1 {
		t.Fatalf("all-one marginals recall %.2f", s.Recall)
	}
}

func TestCompareFactsBasics(t *testing.T) {
	a := map[Fact]float64{{Rel: "R", M1: "x", M2: "y"}: 0.95, {Rel: "R", M1: "x", M2: "z"}: 0.2}
	b := map[Fact]float64{{Rel: "R", M1: "x", M2: "y"}: 0.97, {Rel: "R", M1: "x", M2: "z"}: 0.5}
	ov := CompareFacts(a, b, 0.9, 0.05)
	if ov.HighConfOverlapAB != 1 || ov.Shared != 2 {
		t.Fatalf("overlap = %+v", ov)
	}
	if ov.FracLargeDiff != 0.5 {
		t.Fatalf("FracLargeDiff = %v, want 0.5", ov.FracLargeDiff)
	}
}

func TestCalibrationBuckets(t *testing.T) {
	sys := smallSystem()
	p, err := NewPipeline(sys, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	m := make([]float64, p.G.Graph().NumVars())
	for i := range m {
		m[i] = 0.95
	}
	bins := p.Calibration(m, 10)
	if len(bins) != 10 {
		t.Fatalf("bins = %d", len(bins))
	}
	total := 0
	for i, b := range bins {
		if i < 9 && b.Count != 0 {
			t.Fatalf("bin %d unexpectedly populated", i)
		}
		total += b.Count
	}
	if bins[9].Count == 0 || total != p.CountQueryVars() {
		t.Fatalf("last bin %d, total %d, query vars %d", bins[9].Count, total, p.CountQueryVars())
	}
}

func TestIterationRulesUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown iteration did not panic")
		}
	}()
	IterationRules(smallSystem(), "XX")
}

func TestRerunProgramGrowth(t *testing.T) {
	sys := smallSystem()
	src0 := BaseProgram(sys, factor.Linear)
	srcAll := src0
	for _, it := range IterationNames {
		srcAll += IterationRules(sys, it)
	}
	if !strings.Contains(srcAll, "S2_") || !strings.Contains(srcAll, "FE1_") {
		t.Fatal("iteration rules missing from combined program")
	}
	p0, _ := datalog.Parse(src0)
	pAll, _ := datalog.Parse(srcAll)
	if len(pAll.Rules) <= len(p0.Rules) {
		t.Fatal("combined program has no extra rules")
	}
}

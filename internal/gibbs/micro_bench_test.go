package gibbs_test

// Micro-benchmarks for the sampling support machinery the sweep loops
// lean on: the marginal estimator's observe step (once per kept sweep)
// and the sample store's pack step (once per materialized world). The
// estimator pair compares the observe-everything path (NewEstimator,
// the pre-overhaul behaviour) against the free-vars-only path
// (NewEstimatorFor) on a graph with a realistic evidence fraction.
// Results are recorded in BENCH_hotpath.json.

import (
	"testing"

	"deepdive/internal/factor"
	"deepdive/internal/gibbs"
)

// estimatorGraph builds a 8192-variable graph, roughly half evidence —
// the shape supervision-heavy KBC groundings produce.
func estimatorGraph() *factor.Graph {
	b := factor.NewBuilder()
	for i := 0; i < 8192; i++ {
		if i%2 == 0 {
			b.AddEvidenceVar(i%4 == 0)
		} else {
			b.AddVar()
		}
	}
	return b.MustBuild()
}

// benchAssign builds an assignment with about a third of the bits set.
func benchAssign(n int) []bool {
	out := make([]bool, n)
	for i := range out {
		out[i] = i%3 == 0
	}
	return out
}

func BenchmarkEstimatorObserve(b *testing.B) {
	g := estimatorGraph()
	assign := benchAssign(g.NumVars())
	b.Run("mode=all-vars", func(b *testing.B) {
		est := gibbs.NewEstimator(g.NumVars())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			est.Observe(assign)
		}
		_ = est.Means()
	})
	b.Run("mode=free-only", func(b *testing.B) {
		est := gibbs.NewEstimatorFor(g)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			est.Observe(assign)
		}
		_ = est.Means()
	})
}

func BenchmarkStoreAdd(b *testing.B) {
	const nVars = 4096
	assign := benchAssign(nVars)
	b.ResetTimer()
	var st *gibbs.Store
	for i := 0; i < b.N; i++ {
		if i%1024 == 0 {
			st = gibbs.NewStore(nVars) // bound store growth; fresh store per 1024 adds
		}
		st.Add(assign)
	}
}

package gibbs

import (
	"math"
	"math/rand"
	"testing"

	"deepdive/internal/factor"
)

// chainGraph builds a pairwise chain v[i] ← v[i+1] with a few evidence
// anchors, a small but non-trivial sampling workload.
func chainGraph(n int, w float64) *factor.Graph {
	b := factor.NewBuilder()
	vars := make([]factor.VarID, n)
	for i := range vars {
		if i%17 == 3 {
			vars[i] = b.AddEvidenceVar(i%2 == 0)
		} else {
			vars[i] = b.AddVar()
		}
	}
	wt := b.AddWeight(w)
	for i := 0; i+1 < n; i++ {
		b.AddGroup(vars[i], wt, factor.Ratio,
			[]factor.Grounding{{Lits: []factor.Literal{{Var: vars[i+1]}}}})
	}
	return b.MustBuild()
}

// TestParallelMatchesSequentialMarginals checks that the sharded sampler
// estimates the same distribution as the sequential scan sampler.
func TestParallelMatchesSequentialMarginals(t *testing.T) {
	g := chainGraph(120, 0.5)
	seq := New(g, 7)
	seq.RandomizeState()
	want := seq.Marginals(50, 4000)

	par := NewParallel(g, 4, 11)
	if par.Workers() != 4 {
		t.Fatalf("Workers() = %d, want 4", par.Workers())
	}
	par.RandomizeState()
	got := par.Marginals(50, 4000)

	var mad float64
	for v := range want {
		mad += math.Abs(want[v] - got[v])
	}
	mad /= float64(len(want))
	if mad > 0.02 {
		t.Fatalf("mean absolute marginal difference = %.4f, want <= 0.02", mad)
	}
	for v := 0; v < g.NumVars(); v++ {
		if g.IsEvidence(factor.VarID(v)) {
			fixed := 0.0
			if g.EvidenceValue(factor.VarID(v)) {
				fixed = 1
			}
			if got[v] != fixed {
				t.Fatalf("evidence var %d marginal = %v, want %v", v, got[v], fixed)
			}
		}
	}
}

// TestParallelDeterministicAtFixedWorkers verifies bit-for-bit
// reproducibility for a fixed (seed, worker count) pair: snapshot-based
// cross-shard reads make the chain independent of goroutine scheduling.
func TestParallelDeterministicAtFixedWorkers(t *testing.T) {
	g := chainGraph(90, 0.6)
	run := func() []float64 {
		p := NewParallel(g, 3, 42)
		p.RandomizeState()
		return p.Marginals(20, 300)
	}
	a, b := run(), run()
	for v := range a {
		if a[v] != b[v] {
			t.Fatalf("var %d: run1 = %v, run2 = %v — not deterministic", v, a[v], b[v])
		}
	}
	// A different seed must give a different chain (sanity that the test
	// above is not vacuous).
	p := NewParallel(g, 3, 43)
	p.RandomizeState()
	c := p.Marginals(20, 300)
	same := true
	for v := range a {
		if a[v] != c[v] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical marginals")
	}
}

// TestParallelCollectSamples checks the materialization loop over the
// parallel chain: sample count, width, and plausible world contents.
func TestParallelCollectSamples(t *testing.T) {
	g := chainGraph(60, 0.4)
	p := NewParallel(g, 2, 5)
	p.RandomizeState()
	st := p.CollectSamples(10, 50)
	if st.Len() != 50 || st.NumVars() != g.NumVars() {
		t.Fatalf("store: len=%d vars=%d, want 50, %d", st.Len(), st.NumVars(), g.NumVars())
	}
	for v := 0; v < g.NumVars(); v++ {
		if g.IsEvidence(factor.VarID(v)) && st.Bit(0, v) != g.EvidenceValue(factor.VarID(v)) {
			t.Fatalf("stored sample flips evidence var %d", v)
		}
	}
}

// TestParallelWorkerClamp covers more workers than free variables and the
// GOMAXPROCS default.
func TestParallelWorkerClamp(t *testing.T) {
	g := chainGraph(6, 0.3)
	p := NewParallel(g, 64, 1)
	if p.Workers() > p.NumFree() {
		t.Fatalf("workers = %d exceeds free vars %d", p.Workers(), p.NumFree())
	}
	p.Run(5) // must not panic with tiny shards
	auto := NewParallel(g, 0, 1)
	if auto.Workers() < 1 {
		t.Fatalf("auto workers = %d", auto.Workers())
	}
}

// TestNewChainSelection checks the Chain factory's worker dispatch.
func TestNewChainSelection(t *testing.T) {
	g := chainGraph(10, 0.3)
	if _, ok := NewChain(g, 1, 0).(*Sampler); !ok {
		t.Fatal("workers=0 should select the sequential Sampler")
	}
	if _, ok := NewChain(g, 1, 1).(*Sampler); !ok {
		t.Fatal("workers=1 should select the sequential Sampler")
	}
	if _, ok := NewChain(g, 1, 4).(*ParallelSampler); !ok {
		t.Fatal("workers=4 should select the ParallelSampler")
	}
	if _, ok := NewChain(g, 1, -1).(*ParallelSampler); !ok {
		t.Fatal("workers=-1 should select the ParallelSampler")
	}
}

// TestParallelMarginalsRepeatedCalls is the regression test for the
// stale-accumulator bug: Marginals used to leave p.counts allocated (and
// pointing at the previous run's totals) after returning, so a later
// collecting run could fold new sweeps into stale counts. The accumulator
// must be released on return, and a second Marginals call on the same
// sampler must report values from its own keep window only.
func TestParallelMarginalsRepeatedCalls(t *testing.T) {
	base := chainGraph(90, 0.5)
	patch := factor.NewPatch(base)
	w := patch.AddWeight(0.4)
	gi := patch.AddGroup(factor.VarID(1), w, factor.Ratio)
	patch.AddGrounding(gi, []factor.Literal{{Var: factor.VarID(2)}})
	for _, tc := range []struct {
		name string
		g    *factor.Graph
	}{{"rebuild", base}, {"patch", patch.Apply()}} {
		t.Run(tc.name, func(t *testing.T) { testMarginalsRepeated(t, tc.g) })
	}
}

func testMarginalsRepeated(t *testing.T, g *factor.Graph) {
	p := NewParallel(g, 3, 21)
	p.RandomizeState()
	first := p.Marginals(20, 400)
	if p.counts != nil {
		t.Fatal("Marginals left the count accumulator allocated")
	}
	if p.collecting {
		t.Fatal("Marginals left collecting enabled")
	}
	second := p.Marginals(0, 400)
	for v := range second {
		if second[v] < 0 || second[v] > 1 {
			t.Fatalf("second call marginal[%d] = %v out of [0,1] — stale counts double-counted", v, second[v])
		}
	}
	// Both estimates target the same distribution; with stale counts the
	// second would be systematically inflated.
	var mad float64
	n := 0
	for v := range first {
		if g.IsEvidence(factor.VarID(v)) {
			continue
		}
		mad += math.Abs(first[v] - second[v])
		n++
	}
	if mad/float64(n) > 0.1 {
		t.Fatalf("repeated Marginals drifted: MAD %.4f", mad/float64(n))
	}
	if p.counts != nil {
		t.Fatal("second Marginals left the accumulator allocated")
	}
}

// TestParallelWeightStatsMatchesState cross-checks the direct-evaluation
// sufficient statistic against the counter-based one on a shared world.
func TestParallelWeightStatsMatchesState(t *testing.T) {
	g := chainGraph(40, 0.5)
	rng := rand.New(rand.NewSource(9))
	assign := make([]bool, g.NumVars())
	for v := range assign {
		if g.IsEvidence(factor.VarID(v)) {
			assign[v] = g.EvidenceValue(factor.VarID(v))
		} else {
			assign[v] = rng.Intn(2) == 0
		}
	}
	st := factor.NewStateWith(g, assign)
	want := make([]float64, g.NumWeights())
	st.WeightStats(want)
	got := make([]float64, g.NumWeights())
	g.WeightStatsOf(assign, got)
	for k := range want {
		if math.Abs(want[k]-got[k]) > 1e-12 {
			t.Fatalf("weight %d: counter stat %v, direct stat %v", k, want[k], got[k])
		}
	}
}

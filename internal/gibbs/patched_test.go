package gibbs

// Race coverage for sampling over in-place patched graphs (run under
// `go test -race ./internal/gibbs/...`, the CI race job): the sharded
// sampler's workers read the patched overflow rows and tombstone stamps
// concurrently, graphs along a patch lineage share pool backing arrays
// while samplers sweep both ends of the lineage at once, and a chain is
// patched mid-run and resampled on a fresh sampler.

import (
	"math"
	"sync"
	"testing"

	"deepdive/internal/factor"
)

// patchChain derives a patched graph from g: a few new variables coupled
// into the chain through new groups, one grounding appended to an
// existing group, and one frozen grounding tombstoned.
func patchChain(g *factor.Graph) *factor.Graph {
	p := factor.NewPatch(g)
	w := p.AddWeight(0.8)
	for i := 0; i < 3; i++ {
		nv := p.AddVar()
		gi := p.AddGroup(nv, w, factor.Linear)
		p.AddGrounding(gi, []factor.Literal{{Var: factor.VarID(2 * i)}})
	}
	p.AddGrounding(0, []factor.Literal{{Var: factor.VarID(5), Neg: true}})
	p.RemoveGrounding(1)
	return p.Apply()
}

// TestParallelSweepOnPatchedGraph shards sweeps over a patched graph and
// requires the marginals to agree with a sequential chain over the
// compacted rebuild of the same graph — the patched layout must be
// race-free under concurrent workers and present the same distribution.
func TestParallelSweepOnPatchedGraph(t *testing.T) {
	base := chainGraph(90, 0.5)
	patched := patchChain(base)
	compact := factor.NewBuilderFrom(patched).MustBuild()

	par := NewParallel(patched, 4, 19)
	par.RandomizeState()
	got := par.Marginals(50, 4000)

	seq := New(compact, 23)
	seq.RandomizeState()
	want := seq.Marginals(50, 4000)

	var mad float64
	for v := range want {
		mad += math.Abs(want[v] - got[v])
	}
	mad /= float64(len(want))
	if mad > 0.02 {
		t.Fatalf("patched-vs-compacted mean absolute marginal difference = %.4f, want <= 0.02", mad)
	}
}

// TestParallelLineageSweepsConcurrently sweeps the base graph and its
// patched descendant at the same time: the two graphs share pool backing
// arrays, and concurrent read-only sweeps over both must be race-free.
func TestParallelLineageSweepsConcurrently(t *testing.T) {
	base := chainGraph(80, 0.4)
	patched := patchChain(base)

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		s := NewParallel(base, 4, 31)
		s.RandomizeState()
		s.Run(60)
	}()
	go func() {
		defer wg.Done()
		s := NewParallel(patched, 4, 37)
		s.RandomizeState()
		s.Run(60)
	}()
	wg.Wait()
}

// TestParallelPatchThenResample exercises the mid-run update cycle the
// incremental engine performs: sweep a chain, patch the graph between
// sweeps, and continue on a fresh sampler over the patched graph (the
// sampler's shard bounds and assignment width are sized at construction,
// so a patched graph always gets a new sampler).
func TestParallelPatchThenResample(t *testing.T) {
	g := chainGraph(70, 0.5)
	s := NewParallel(g, 4, 41)
	s.RandomizeState()
	s.Run(30)

	patched := patchChain(g)
	s2 := NewParallel(patched, 4, 43)
	// Continue from the pre-patch world: copy the old assignment into the
	// wider patched state.
	copy(s2.Assign(), s.Assign())
	s2.Run(30)

	marg := s2.Marginals(10, 500)
	if len(marg) != patched.NumVars() {
		t.Fatalf("marginal width %d, want %d", len(marg), patched.NumVars())
	}
	// The old sampler keeps working on the old view afterwards.
	s.Run(10)
}

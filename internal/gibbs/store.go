package gibbs

import (
	"fmt"
)

// Store holds possible worlds sampled from a distribution, bit-packed one
// bit per variable per sample — the "tuple bundle" materialization of the
// sampling approach (Section 3.2.2; cf. MCDB). A single sample for one
// random variable costs exactly one bit, matching the paper's space
// accounting.
type Store struct {
	nVars   int
	words   int // uint64 words per sample
	samples [][]uint64
	cursor  int // next sample to hand out via Next

	// arena is the tail of the current allocation chunk: Add carves each
	// sample's words from it instead of allocating per sample. Chunks
	// double up to arenaMaxChunk samples, so a materialization run costs
	// O(log n) allocations instead of n.
	arena []uint64
	chunk int // samples per chunk at the last growth
}

const (
	arenaMinChunk = 16
	arenaMaxChunk = 1024
)

// NewStore creates an empty store for worlds of nVars variables.
func NewStore(nVars int) *Store {
	return &Store{nVars: nVars, words: (nVars + 63) / 64}
}

// NumVars returns the per-sample variable count.
func (s *Store) NumVars() int { return s.nVars }

// Len returns the number of stored samples.
func (s *Store) Len() int { return len(s.samples) }

// Remaining returns how many stored samples have not been consumed yet.
func (s *Store) Remaining() int { return len(s.samples) - s.cursor }

// Reset rewinds the consumption cursor.
func (s *Store) Reset() { s.cursor = 0 }

// MemoryBytes returns the packed sample storage footprint.
func (s *Store) MemoryBytes() int { return len(s.samples) * s.words * 8 }

// Add packs and appends one world. len(assign) must equal NumVars.
// Samples are carved from a doubling arena (no per-sample allocation) and
// packed a word at a time (one store per 64 variables instead of one
// read-modify-write per set bit).
func (s *Store) Add(assign []bool) {
	if len(assign) != s.nVars {
		panic(fmt.Sprintf("gibbs: Store.Add got %d vars, want %d", len(assign), s.nVars))
	}
	if len(s.arena) < s.words {
		if s.chunk < arenaMaxChunk {
			if s.chunk == 0 {
				s.chunk = arenaMinChunk
			} else {
				s.chunk *= 2
			}
		}
		s.arena = make([]uint64, s.chunk*s.words)
	}
	w := s.arena[:s.words:s.words]
	s.arena = s.arena[s.words:]
	var x uint64
	wi := 0
	for j, v := range assign {
		if v {
			x |= 1 << (uint(j) & 63)
		}
		if j&63 == 63 {
			w[wi] = x
			x = 0
			wi++
		}
	}
	if s.nVars&63 != 0 {
		w[wi] = x
	}
	s.samples = append(s.samples, w)
}

// Get unpacks sample i into dst (allocating when needed) and returns it.
func (s *Store) Get(i int, dst []bool) []bool {
	if cap(dst) < s.nVars {
		dst = make([]bool, s.nVars)
	}
	dst = dst[:s.nVars]
	w := s.samples[i]
	for j := 0; j < s.nVars; j++ {
		dst[j] = w[j/64]&(1<<(uint(j)%64)) != 0
	}
	return dst
}

// Next returns the next unconsumed sample, advancing the cursor. ok is
// false when the store is exhausted — the signal for the optimizer's
// "if we run out of samples, use the variational approach" rule.
func (s *Store) Next(dst []bool) (out []bool, ok bool) {
	if s.cursor >= len(s.samples) {
		return dst, false
	}
	out = s.Get(s.cursor, dst)
	s.cursor++
	return out, true
}

// Peek unpacks the k-th unconsumed sample (the one Next would return
// after k more calls) into dst without advancing the cursor. ok is false
// when fewer than k+1 unconsumed samples remain. Probing code — e.g. the
// optimizer's acceptance-rate estimate — uses Peek so that measurement
// never eats into the proposals inference itself will consume.
func (s *Store) Peek(k int, dst []bool) (out []bool, ok bool) {
	if k < 0 || s.cursor+k >= len(s.samples) {
		return dst, false
	}
	return s.Get(s.cursor+k, dst), true
}

// Bit returns variable v of sample i without unpacking the whole world.
func (s *Store) Bit(i int, v int) bool {
	return s.samples[i][v/64]&(1<<(uint(v)%64)) != 0
}

// Means returns the per-variable empirical marginals across all stored
// samples.
func (s *Store) Means() []float64 {
	out := make([]float64, s.nVars)
	if len(s.samples) == 0 {
		return out
	}
	for i := range s.samples {
		for v := 0; v < s.nVars; v++ {
			if s.Bit(i, v) {
				out[v]++
			}
		}
	}
	inv := 1 / float64(len(s.samples))
	for v := range out {
		out[v] *= inv
	}
	return out
}

// FloatWorlds unpacks all samples as {0,1}-valued float rows, the input
// format the covariance estimation of Algorithm 1 consumes. When sub is
// non-nil only those variable indices are extracted (in order).
func (s *Store) FloatWorlds(sub []int) [][]float64 {
	rows := make([][]float64, len(s.samples))
	for i := range s.samples {
		if sub == nil {
			row := make([]float64, s.nVars)
			for v := 0; v < s.nVars; v++ {
				if s.Bit(i, v) {
					row[v] = 1
				}
			}
			rows[i] = row
		} else {
			row := make([]float64, len(sub))
			for k, v := range sub {
				if s.Bit(i, v) {
					row[k] = 1
				}
			}
			rows[i] = row
		}
	}
	return rows
}

package gibbs

import (
	"context"
	"math/rand"
	"runtime"
	"sync"

	"deepdive/internal/factor"
)

// DefaultSyncEvery is the default number of sweeps (sampling) or gradient
// steps (learning) between replica merges.
const DefaultSyncEvery = 8

// MixSeed scrambles a master seed through splitmix64 so that per-stream
// seeds derived by DeriveSeed never collide with streams another caller
// derives from an adjacent master seed (engines hand stages seeds like
// seed+1, seed+5, ...).
func MixSeed(seed int64) uint64 { return splitmix64(uint64(seed)) }

// DeriveSeed yields the i-th independent stream seed of a mixed master
// seed (the samplers' per-worker derivation rule, exported for the
// replica learner).
func DeriveSeed(mixed uint64, i int) int64 {
	return int64(splitmix64(mixed + uint64(i)))
}

// ReplicaSampler runs Gibbs sweeps in the style of DimmWitted's NUMA-node
// replica engine: every worker owns a *full private copy* of the
// assignment and runs independent Gauss-Seidel sweeps over it — zero
// cross-worker reads or writes during a sweep, where the sharded
// ParallelSampler still shares one assignment array and re-snapshots it
// every sweep. The workers' chains are merged by the driver every
// SyncEvery sweeps:
//
//   - vote: a per-variable majority vote across the replicas refreshes
//     the consensus world, the driver-visible assignment (the role the
//     sweep-start snapshot plays for the sharded sampler);
//   - exchange: the replica worlds rotate one position around the worker
//     ring, so every worker stream keeps continuing a stationary chain
//     (the merge never invents a world, which would bias the samples
//     toward the consensus mode).
//
// Each replica owns a full private factor.State — incrementally
// maintained support counters plus the Markov-blanket conditional cache —
// so a replica sweep costs O(occurrences of v) per variable through the
// fused State.SampleVar kernel instead of a from-scratch walk of every
// adjacent grounding. The exchange rotates the State handles themselves:
// counters and cached conditionals describe the world, so they travel
// with it and stay valid across merges.
//
// Marginal counts are pooled across all replicas — one Sweep yields one
// observation per replica, so a keep-sweep run pools keep×R worlds, the
// replica analogue of DimmWitted averaging per-node sample batches.
//
// Because each worker touches only its own arrays between merges, sweeps
// are race-free and the chain is bit-for-bit deterministic for a fixed
// (seed, replicas, syncEvery) triple. Replicas share one graph — on a
// patch lineage that means one immutable CSR pool backing all workers.
//
// The sampler itself is driven from one goroutine; only its internal
// sweeps fan out.
type ReplicaSampler struct {
	g    *factor.Graph
	free []factor.VarID // non-evidence variables, scan order

	replicas  int
	syncEvery int
	rngs      []*rand.Rand // per-replica streams
	master    *rand.Rand   // driver-side draws (RandomizeState)

	states []*factor.State // per-replica private worlds + counters + caches
	cons   []bool          // consensus world (majority vote), driver view
	fresh  bool            // cons reflects the current worlds
	since  int             // sweeps since the last merge

	collecting bool
	counts     [][]float64 // per-replica true counts
}

// NewReplica creates a replica sampler over g with the given replica
// count. replicas <= 0 selects runtime.GOMAXPROCS(0); syncEvery <= 0
// selects DefaultSyncEvery.
func NewReplica(g *factor.Graph, replicas, syncEvery int, seed int64) *ReplicaSampler {
	if replicas <= 0 {
		replicas = runtime.GOMAXPROCS(0)
	}
	if replicas < 1 {
		replicas = 1
	}
	if syncEvery <= 0 {
		syncEvery = DefaultSyncEvery
	}
	r := &ReplicaSampler{
		g:         g,
		replicas:  replicas,
		syncEvery: syncEvery,
		master:    rand.New(rand.NewSource(seed)),
		rngs:      make([]*rand.Rand, replicas),
		states:    make([]*factor.State, replicas),
		cons:      make([]bool, g.NumVars()),
		fresh:     true,
	}
	for v := 0; v < g.NumVars(); v++ {
		if g.IsEvidence(factor.VarID(v)) {
			r.cons[v] = g.EvidenceValue(factor.VarID(v))
		} else {
			r.free = append(r.free, factor.VarID(v))
		}
	}
	base := MixSeed(seed)
	for w := 0; w < replicas; w++ {
		r.states[w] = factor.NewStateWith(g, r.cons)
		// Same double-splitmix derivation as the sharded sampler: chains
		// built from adjacent master seeds must not share worker streams.
		r.rngs[w] = rand.New(rand.NewSource(DeriveSeed(base, w)))
	}
	return r
}

// Replicas returns the number of replica workers.
func (r *ReplicaSampler) Replicas() int { return r.replicas }

// SyncEvery returns the merge interval in sweeps.
func (r *ReplicaSampler) SyncEvery() int { return r.syncEvery }

// NumFree returns the number of free (sampled) variables.
func (r *ReplicaSampler) NumFree() int { return len(r.free) }

// Graph returns the underlying factor graph.
func (r *ReplicaSampler) Graph() *factor.Graph { return r.g }

// Assign returns the consensus world: the per-variable majority vote
// across replicas, refreshed lazily between sweeps. Evidence variables
// report their fixed values.
func (r *ReplicaSampler) Assign() []bool {
	if !r.fresh {
		r.vote()
	}
	return r.cons
}

// World returns replica w's private assignment (read between sweeps only;
// shared, not a copy). Unlike the consensus view this is one exact sample
// of the chain.
func (r *ReplicaSampler) World(w int) []bool { return r.states[w].Assign }

// RandomizeState assigns every free variable of every replica uniformly
// at random from the master stream, giving the replicas over-dispersed
// independent starts.
func (r *ReplicaSampler) RandomizeState() {
	for _, st := range r.states {
		world := st.Assign
		for _, v := range r.free {
			world[v] = r.master.Intn(2) == 0
		}
		st.Recount() // rebuild counters, drop cached conditionals
	}
	r.fresh = false
}

// vote refreshes the consensus world by per-variable majority across the
// replicas; ties adopt replica 0's value so the result is deterministic.
func (r *ReplicaSampler) vote() {
	for _, v := range r.free {
		t := 0
		for _, st := range r.states {
			if st.Assign[v] {
				t++
			}
		}
		switch {
		case 2*t > r.replicas:
			r.cons[v] = true
		case 2*t < r.replicas:
			r.cons[v] = false
		default:
			r.cons[v] = r.states[0].Assign[v]
		}
	}
	r.fresh = true
}

// merge is the sync point: vote, then exchange the replica worlds one
// position around the worker ring. The rotation hands every worker
// stream a world sampled by a different replica — cross-replica exchange
// without inventing a world, so every chain stays exactly stationary. The
// whole State rotates (assignment, counters, and cached conditionals
// describe the world, not the worker), so a merge costs R pointer moves
// and invalidates nothing.
func (r *ReplicaSampler) merge() {
	r.vote()
	if r.replicas > 1 {
		last := r.states[r.replicas-1]
		copy(r.states[1:], r.states[:r.replicas-1])
		r.states[0] = last
	}
	r.since = 0
}

// sweepReplica runs one full Gauss-Seidel scan of replica w's private
// world through the fused State.SampleVar kernel (counter-maintained
// supports, cached conditionals). Reads and writes touch only that
// replica's State (and its own count row when collecting), so concurrent
// replicas never race.
func (r *ReplicaSampler) sweepReplica(w int) {
	st := r.states[w]
	rng := r.rngs[w]
	var counts []float64
	if r.collecting {
		counts = r.counts[w]
	}
	for _, v := range r.free {
		val := st.SampleVar(v, rng.Float64())
		// counts first: it is loop-invariant (and usually nil), so the
		// branch predicts perfectly; testing the freshly sampled val first
		// would mispredict half the time.
		if counts != nil && val {
			counts[v]++
		}
	}
}

// Sweep advances every replica by one full scan (fanned out across the
// workers) and merges at the sync interval. One Sweep call samples
// NumFree × Replicas variables.
func (r *ReplicaSampler) Sweep() {
	if len(r.free) == 0 {
		return
	}
	if r.replicas == 1 {
		r.sweepReplica(0)
	} else {
		var wg sync.WaitGroup
		wg.Add(r.replicas)
		for w := 0; w < r.replicas; w++ {
			go func(w int) {
				defer wg.Done()
				r.sweepReplica(w)
			}(w)
		}
		wg.Wait()
	}
	r.fresh = false
	r.since++
	if r.since >= r.syncEvery {
		r.merge()
	}
}

// Run performs n sweeps.
func (r *ReplicaSampler) Run(n int) { r.RunCtx(nil, n) }

// RunCtx performs up to n sweeps, checking ctx between sweeps, and
// returns how many completed. The replica fan-out (and any merge the
// sweep triggers) always finishes before the check, so cancellation
// never observes a half-merged world.
func (r *ReplicaSampler) RunCtx(ctx context.Context, n int) int {
	for i := 0; i < n; i++ {
		if canceled(ctx) {
			return i
		}
		r.Sweep()
	}
	return n
}

// Marginals runs burnin sweeps, then keep sweeps with per-replica count
// rows (no shared accumulator contention), and returns the pooled
// empirical P(v = true): keep×Replicas observations per variable.
// Evidence variables report their fixed value.
func (r *ReplicaSampler) Marginals(burnin, keep int) []float64 {
	return r.MarginalsCtx(nil, burnin, keep)
}

// MarginalsCtx is Marginals with a cooperative cancellation check
// between sweeps; the estimate pools the sweeps completed before
// cancellation.
func (r *ReplicaSampler) MarginalsCtx(ctx context.Context, burnin, keep int) []float64 {
	r.RunCtx(ctx, burnin)
	n := r.g.NumVars()
	r.counts = make([][]float64, r.replicas)
	for w := range r.counts {
		r.counts[w] = make([]float64, n)
	}
	r.collecting = true
	kept := 0
	for i := 0; i < keep; i++ {
		if canceled(ctx) {
			break
		}
		r.Sweep()
		kept++
	}
	r.collecting = false
	out := make([]float64, n)
	inv := 0.0
	if kept > 0 {
		inv = 1 / float64(kept*r.replicas)
	}
	for v := 0; v < n; v++ {
		if r.g.IsEvidence(factor.VarID(v)) {
			if r.g.EvidenceValue(factor.VarID(v)) {
				out[v] = 1
			}
			continue
		}
		var c float64
		for w := 0; w < r.replicas; w++ {
			c += r.counts[w][v]
		}
		out[v] = c * inv
	}
	r.counts = nil // release; a later collecting run starts clean
	return out
}

// StoreWorlds appends every replica's current world to st — the
// replica-aware materialization step (each Sweep yields Replicas exact
// samples, not one consensus world, which would be biased).
func (r *ReplicaSampler) StoreWorlds(st *Store) {
	for _, rs := range r.states {
		st.Add(rs.Assign)
	}
}

// CollectSamples runs burnin sweeps and then stores n worlds, draining
// the replicas round-robin — the materialization loop of the sampling
// approach (Section 3.2.2) at one sweep per Replicas stored worlds.
func (r *ReplicaSampler) CollectSamples(burnin, n int) *Store {
	return r.CollectSamplesCtx(nil, burnin, n)
}

// CollectSamplesCtx is CollectSamples with a cooperative cancellation
// check between sweeps.
func (r *ReplicaSampler) CollectSamplesCtx(ctx context.Context, burnin, n int) *Store {
	st := NewStore(r.g.NumVars())
	r.RunCtx(ctx, burnin)
	for st.Len() < n {
		if canceled(ctx) {
			break
		}
		r.Sweep()
		for w := 0; w < r.replicas && st.Len() < n; w++ {
			st.Add(r.states[w].Assign)
		}
	}
	return st
}

// CondProb returns P(v = true | rest) under the consensus world by direct
// evaluation. Driver-side only (not safe during a Sweep).
func (r *ReplicaSampler) CondProb(v factor.VarID) float64 {
	return r.g.CondProbOf(r.Assign(), v)
}

// WeightStats accumulates the replica-averaged per-weight sufficient
// statistic into out: each replica's world contributes 1/Replicas of its
// statistic (computed from the replica's maintained support counters — no
// grounding walk), an unbiased lower-variance estimate than any single
// world's.
func (r *ReplicaSampler) WeightStats(out []float64) {
	scratch := make([]float64, len(out))
	inv := 1 / float64(r.replicas)
	for _, rs := range r.states {
		for i := range scratch {
			scratch[i] = 0
		}
		rs.WeightStats(scratch)
		for i, s := range scratch {
			out[i] += s * inv
		}
	}
}

// ReplicaLearner owns the model side of the replica engine during weight
// learning: one private weight vector per worker plus the canonical
// averaged model. Workers step their private vectors with no cross-worker
// reads; Average applies the DimmWitted model-averaging rule — canonical
// = mean of the replicas, broadcast back so every worker resumes from the
// merged model. Bind each private vector to the shared CSR pools with
// factor.Graph.WeightView.
type ReplicaLearner struct {
	weights   [][]float64
	canonical []float64
}

// NewReplicaLearner creates replicas private copies of init (replicas
// must be >= 1).
func NewReplicaLearner(replicas int, init []float64) *ReplicaLearner {
	if replicas < 1 {
		replicas = 1
	}
	l := &ReplicaLearner{
		weights:   make([][]float64, replicas),
		canonical: append([]float64(nil), init...),
	}
	for r := range l.weights {
		l.weights[r] = append([]float64(nil), init...)
	}
	return l
}

// Replicas returns the number of weight replicas.
func (l *ReplicaLearner) Replicas() int { return len(l.weights) }

// Weights returns replica r's live private vector; worker r mutates it
// freely between Average calls.
func (l *ReplicaLearner) Weights(r int) []float64 { return l.weights[r] }

// Canonical returns the live canonical (averaged) vector. Valid after the
// latest Average; between averages it holds the previous merge.
func (l *ReplicaLearner) Canonical() []float64 { return l.canonical }

// AsyncAverager coordinates overlap-averaged replica learning: instead
// of stopping every worker at a segment boundary to merge (Average's
// barrier), each worker publishes its private vector for segment s and
// keeps stepping immediately; the segment mean becomes available once
// all n workers have published, and workers fold it in one segment late.
// Results are deterministic for a fixed seed regardless of goroutine
// scheduling: a mean is computed — in replica order, so float summation
// order is fixed — only from the complete set of published vectors, and
// every correction a worker applies is a function of those means and its
// own private trajectory.
type AsyncAverager struct {
	mu      sync.Mutex
	cond    *sync.Cond
	n       int
	segs    map[int]*asyncSeg
	aborted bool
}

type asyncSeg struct {
	count    int
	vals     [][]float64 // indexed by replica until complete
	mean     []float64   // set once count == n
	consumed int         // WaitMean calls served; n frees the segment
}

// NewAsyncAverager creates an averager for n replica workers.
func NewAsyncAverager(n int) *AsyncAverager {
	a := &AsyncAverager{n: n, segs: map[int]*asyncSeg{}}
	a.cond = sync.NewCond(&a.mu)
	return a
}

// Publish contributes replica r's weights to segment seg's mean (w is
// copied). The completing publish computes the mean and wakes waiters.
func (a *AsyncAverager) Publish(seg, r int, w []float64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.aborted {
		return
	}
	s := a.segs[seg]
	if s == nil {
		s = &asyncSeg{vals: make([][]float64, a.n)}
		a.segs[seg] = s
	}
	s.vals[r] = append([]float64(nil), w...)
	s.count++
	if s.count == a.n {
		mean := make([]float64, len(w))
		inv := 1 / float64(a.n)
		for k := range mean {
			var sum float64
			for _, v := range s.vals {
				sum += v[k]
			}
			mean[k] = sum * inv
		}
		s.mean = mean
		s.vals = nil
		a.cond.Broadcast()
	}
}

// WaitMean blocks until segment seg's mean is complete and returns it,
// or nil after Abort. The slice is shared across workers — read-only.
// Each of the n workers calls WaitMean once per segment; the n-th call
// frees the segment's storage.
func (a *AsyncAverager) WaitMean(seg int) []float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	for {
		if a.aborted {
			return nil
		}
		if s := a.segs[seg]; s != nil && s.mean != nil {
			s.consumed++
			if s.consumed == a.n {
				delete(a.segs, seg)
			}
			return s.mean
		}
		a.cond.Wait()
	}
}

// Abort permanently unblocks every current and future WaitMean with a
// nil mean — the cancellation path when one worker stops early.
func (a *AsyncAverager) Abort() {
	a.mu.Lock()
	a.aborted = true
	a.cond.Broadcast()
	a.mu.Unlock()
}

// Average merges the replicas under the model-averaging rule — canonical
// = mean over replicas, element-wise — and broadcasts the merged model
// back into every replica. Returns the canonical vector. Driver-side
// only: no worker may be stepping during the merge.
func (l *ReplicaLearner) Average() []float64 {
	inv := 1 / float64(len(l.weights))
	for k := range l.canonical {
		var s float64
		for _, w := range l.weights {
			s += w[k]
		}
		l.canonical[k] = s * inv
	}
	for _, w := range l.weights {
		copy(w, l.canonical)
	}
	return l.canonical
}

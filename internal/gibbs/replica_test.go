package gibbs

import (
	"math"
	"testing"

	"deepdive/internal/factor"
)

// TestReplicaMatchesSequentialMarginals checks that the replica engine
// estimates the same distribution as the sequential scan sampler: the
// pooled per-replica counts must be an unbiased marginal estimate.
func TestReplicaMatchesSequentialMarginals(t *testing.T) {
	g := chainGraph(120, 0.5)
	seq := New(g, 7)
	seq.RandomizeState()
	want := seq.Marginals(50, 4000)

	rep := NewReplica(g, 4, 8, 11)
	if rep.Replicas() != 4 || rep.SyncEvery() != 8 {
		t.Fatalf("Replicas()=%d SyncEvery()=%d, want 4, 8", rep.Replicas(), rep.SyncEvery())
	}
	rep.RandomizeState()
	got := rep.Marginals(50, 1000) // pools 4000 observations across 4 replicas

	var mad float64
	for v := range want {
		mad += math.Abs(want[v] - got[v])
	}
	mad /= float64(len(want))
	if mad > 0.02 {
		t.Fatalf("mean absolute marginal difference = %.4f, want <= 0.02", mad)
	}
	for v := 0; v < g.NumVars(); v++ {
		if g.IsEvidence(factor.VarID(v)) {
			fixed := 0.0
			if g.EvidenceValue(factor.VarID(v)) {
				fixed = 1
			}
			if got[v] != fixed {
				t.Fatalf("evidence var %d marginal = %v, want %v", v, got[v], fixed)
			}
		}
	}
}

// TestReplicaDeterministicAtFixedConfig verifies bit-for-bit
// reproducibility for a fixed (seed, replicas, syncEvery) triple: workers
// touch only private state between merges, so goroutine scheduling cannot
// leak into the chain.
func TestReplicaDeterministicAtFixedConfig(t *testing.T) {
	g := chainGraph(90, 0.6)
	run := func(seed int64, replicas, syncEvery int) []float64 {
		r := NewReplica(g, replicas, syncEvery, seed)
		r.RandomizeState()
		return r.Marginals(20, 300)
	}
	a, b := run(42, 3, 4), run(42, 3, 4)
	for v := range a {
		if a[v] != b[v] {
			t.Fatalf("var %d: run1 = %v, run2 = %v — not deterministic", v, a[v], b[v])
		}
	}
	// A different seed must give a different chain (sanity that the check
	// above is not vacuous).
	c := run(43, 3, 4)
	same := true
	for v := range a {
		if a[v] != c[v] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical marginals")
	}
}

// TestReplicaConsensusAndWorlds covers the vote/exchange mechanics: the
// consensus view respects evidence, each replica world is a full valid
// assignment, and the ring exchange rotates worlds without losing any.
func TestReplicaConsensusAndWorlds(t *testing.T) {
	g := chainGraph(60, 0.4)
	r := NewReplica(g, 3, 2, 5)
	r.RandomizeState()
	r.Run(7)
	cons := r.Assign()
	if len(cons) != g.NumVars() {
		t.Fatalf("consensus width %d, want %d", len(cons), g.NumVars())
	}
	for v := 0; v < g.NumVars(); v++ {
		if g.IsEvidence(factor.VarID(v)) {
			if cons[v] != g.EvidenceValue(factor.VarID(v)) {
				t.Fatalf("consensus flips evidence var %d", v)
			}
			for w := 0; w < r.Replicas(); w++ {
				if r.World(w)[v] != g.EvidenceValue(factor.VarID(v)) {
					t.Fatalf("replica %d flips evidence var %d", w, v)
				}
			}
		}
	}
	// Consensus of identical replicas is that world; with a tie it adopts
	// replica 0 — either way a majority vote over {true,true,false} is true.
	two := NewReplica(g, 2, 1000, 9) // never auto-merges during the run
	two.Run(3)
	w0 := append([]bool(nil), two.World(0)...)
	votes := two.Assign()
	for _, v := range two.free {
		if two.World(0)[v] == two.World(1)[v] && votes[v] != two.World(0)[v] {
			t.Fatalf("unanimous vote ignored at var %d", v)
		}
		if two.World(0)[v] != two.World(1)[v] && votes[v] != w0[v] {
			t.Fatalf("tie at var %d must adopt replica 0's value", v)
		}
	}
}

// TestReplicaCollectSamples checks the materialization loop: sample
// count, width, evidence respected, and the round-robin drain yielding
// Replicas worlds per sweep.
func TestReplicaCollectSamples(t *testing.T) {
	g := chainGraph(60, 0.4)
	r := NewReplica(g, 2, 8, 5)
	r.RandomizeState()
	st := r.CollectSamples(10, 51)
	if st.Len() != 51 || st.NumVars() != g.NumVars() {
		t.Fatalf("store: len=%d vars=%d, want 51, %d", st.Len(), st.NumVars(), g.NumVars())
	}
	for v := 0; v < g.NumVars(); v++ {
		if g.IsEvidence(factor.VarID(v)) && st.Bit(0, v) != g.EvidenceValue(factor.VarID(v)) {
			t.Fatalf("stored sample flips evidence var %d", v)
		}
	}
	// StoreWorlds appends exactly one world per replica.
	before := st.Len()
	r.StoreWorlds(st)
	if st.Len() != before+r.Replicas() {
		t.Fatalf("StoreWorlds added %d worlds, want %d", st.Len()-before, r.Replicas())
	}
}

// TestReplicaDefaultsAndChainDispatch covers the GOMAXPROCS/default
// resolution and the Runtime factory's engine selection.
func TestReplicaDefaultsAndChainDispatch(t *testing.T) {
	g := chainGraph(10, 0.3)
	auto := NewReplica(g, 0, 0, 1)
	if auto.Replicas() < 1 || auto.SyncEvery() != DefaultSyncEvery {
		t.Fatalf("auto replica defaults: replicas=%d syncEvery=%d", auto.Replicas(), auto.SyncEvery())
	}
	auto.Run(3) // must not panic

	if _, ok := (Runtime{}).NewChain(g, 1).(*Sampler); !ok {
		t.Fatal("zero Runtime should select the sequential Sampler")
	}
	if _, ok := (Runtime{Workers: 4}).NewChain(g, 1).(*ParallelSampler); !ok {
		t.Fatal("Workers=4 should select the ParallelSampler")
	}
	if _, ok := (Runtime{Replicas: 1}).NewChain(g, 1).(*ReplicaSampler); !ok {
		t.Fatal("Replicas=1 should select the ReplicaSampler")
	}
	if _, ok := (Runtime{Replicas: -1, Workers: 4}).NewChain(g, 1).(*ReplicaSampler); !ok {
		t.Fatal("Replicas=-1 should override Workers")
	}
	if (Runtime{Replicas: 2}).ReplicaMode() != true || (Runtime{Workers: 8}).ReplicaMode() != false {
		t.Fatal("ReplicaMode misreports")
	}
}

// TestReplicaWeightStatsAveraged cross-checks the replica-averaged
// sufficient statistic: with one replica it must equal the direct
// single-world statistic.
func TestReplicaWeightStatsAveraged(t *testing.T) {
	g := chainGraph(40, 0.5)
	r := NewReplica(g, 1, 4, 9)
	r.RandomizeState()
	r.Run(3)
	got := make([]float64, g.NumWeights())
	r.WeightStats(got)
	want := make([]float64, g.NumWeights())
	g.WeightStatsOf(r.World(0), want)
	for k := range want {
		if math.Abs(want[k]-got[k]) > 1e-12 {
			t.Fatalf("weight %d: direct stat %v, replica stat %v", k, want[k], got[k])
		}
	}
}

// TestReplicaOnPatchedGraph composes the replica engine with the PR 2
// patch path: replicas over a patched graph (shared immutable pool
// lineage) must agree with a sequential chain over the same graph.
func TestReplicaOnPatchedGraph(t *testing.T) {
	g := chainGraph(80, 0.5)
	p := factor.NewPatch(g)
	w := p.AddWeight(0.8)
	nv := p.AddVar()
	gi := p.AddGroup(nv, w, factor.Ratio)
	p.AddGrounding(gi, []factor.Literal{{Var: factor.VarID(2)}})
	patched := p.Apply()

	seq := New(patched, 3)
	seq.RandomizeState()
	want := seq.Marginals(50, 4000)

	r := NewReplica(patched, 4, 8, 17)
	r.RandomizeState()
	got := r.Marginals(50, 1000)
	var mad float64
	for v := range want {
		mad += math.Abs(want[v] - got[v])
	}
	mad /= float64(len(want))
	if mad > 0.03 {
		t.Fatalf("patched-graph replica marginals differ: MAD %.4f", mad)
	}
}

// TestReplicaLearnerAveraging checks the DimmWitted model-averaging rule:
// canonical = element-wise mean, broadcast back into every replica.
func TestReplicaLearnerAveraging(t *testing.T) {
	l := NewReplicaLearner(3, []float64{1, 2})
	if l.Replicas() != 3 {
		t.Fatalf("Replicas() = %d", l.Replicas())
	}
	l.Weights(0)[0] = 4
	l.Weights(1)[0] = 1
	l.Weights(2)[0] = 1
	l.Weights(2)[1] = 5
	avg := l.Average()
	if avg[0] != 2 || avg[1] != 3 {
		t.Fatalf("Average() = %v, want [2 3]", avg)
	}
	for r := 0; r < 3; r++ {
		if l.Weights(r)[0] != 2 || l.Weights(r)[1] != 3 {
			t.Fatalf("replica %d not re-seeded with canonical: %v", r, l.Weights(r))
		}
	}
	if c := l.Canonical(); c[0] != 2 || c[1] != 3 {
		t.Fatalf("Canonical() = %v", c)
	}
}

package gibbs

import (
	"math"
	"testing"

	"deepdive/internal/factor"
)

// singleVarGraph builds one free variable with a prior weight w
// (energy +w when true, −w when false via a self-headed group with one
// always-true evidence grounding).
func singleVarGraph(w float64) (*factor.Graph, factor.VarID) {
	b := factor.NewBuilder()
	q := b.AddVar()
	ev := b.AddEvidenceVar(true)
	wid := b.AddWeight(w)
	b.AddGroup(q, wid, factor.Linear, []factor.Grounding{{Lits: []factor.Literal{{Var: ev}}}})
	return b.MustBuild(), q
}

func TestSamplerSingleVariableMarginal(t *testing.T) {
	// P(q) = sigmoid(2w) because E(1)=w, E(0)=−w.
	for _, w := range []float64{-1, 0, 0.5, 2} {
		g, q := singleVarGraph(w)
		s := New(g, 42)
		m := s.Marginals(100, 4000)
		want := 1 / (1 + math.Exp(-2*w))
		if math.Abs(m[q]-want) > 0.03 {
			t.Errorf("w=%v: marginal %v, want %v ± 0.03", w, m[q], want)
		}
	}
}

func TestSamplerMatchesExactEnumeration(t *testing.T) {
	// Three coupled variables; compare Gibbs marginals to exact
	// enumeration over the 8 worlds.
	b := factor.NewBuilder()
	v0, v1, v2 := b.AddVar(), b.AddVar(), b.AddVar()
	w1 := b.AddWeight(0.8)
	w2 := b.AddWeight(-0.6)
	ev := b.AddEvidenceVar(true)
	b.AddGroup(v0, w1, factor.Linear, []factor.Grounding{{Lits: []factor.Literal{{Var: v1}}}})
	b.AddGroup(v1, w2, factor.Ratio, []factor.Grounding{
		{Lits: []factor.Literal{{Var: v2}}},
		{Lits: []factor.Literal{{Var: v0, Neg: true}}},
	})
	b.AddGroup(v2, w1, factor.Logical, []factor.Grounding{{Lits: []factor.Literal{{Var: ev}}}})
	g := b.MustBuild()

	exact := make([]float64, g.NumVars())
	var z float64
	assign := make([]bool, g.NumVars())
	assign[ev] = true
	for mask := 0; mask < 8; mask++ {
		assign[v0] = mask&1 != 0
		assign[v1] = mask&2 != 0
		assign[v2] = mask&4 != 0
		p := math.Exp(g.Energy(assign))
		z += p
		for i, val := range assign {
			if val {
				exact[i] += p
			}
		}
	}
	for i := range exact {
		exact[i] /= z
	}

	s := New(g, 7)
	m := s.Marginals(200, 20000)
	for _, v := range []factor.VarID{v0, v1, v2} {
		if math.Abs(m[v]-exact[v]) > 0.02 {
			t.Errorf("var %d: gibbs %v, exact %v", v, m[v], exact[v])
		}
	}
}

func TestSamplerRespectsEvidence(t *testing.T) {
	b := factor.NewBuilder()
	q := b.AddVar()
	e1 := b.AddEvidenceVar(true)
	e0 := b.AddEvidenceVar(false)
	w := b.AddWeight(1)
	b.AddGroup(q, w, factor.Linear, []factor.Grounding{{Lits: []factor.Literal{{Var: e1}}}})
	g := b.MustBuild()
	s := New(g, 1)
	if s.NumFree() != 1 {
		t.Fatalf("NumFree = %d, want 1", s.NumFree())
	}
	s.Run(50)
	if s.State.Assign[e1] != true || s.State.Assign[e0] != false {
		t.Fatal("evidence values disturbed by sampling")
	}
}

func TestSamplerDeterministicBySeed(t *testing.T) {
	g, _ := singleVarGraph(0.3)
	a := New(g, 5).Marginals(10, 500)
	b := New(g, 5).Marginals(10, 500)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed gave different marginals")
		}
	}
	c := New(g, 6).Marginals(10, 500)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Log("different seeds coincided (possible but unlikely); not fatal")
	}
}

func TestEstimator(t *testing.T) {
	e := NewEstimator(2)
	if e.N() != 0 || e.Mean(0) != 0 {
		t.Fatal("fresh estimator not zeroed")
	}
	e.Observe([]bool{true, false})
	e.Observe([]bool{true, true})
	if e.N() != 2 || e.Mean(0) != 1 || e.Mean(1) != 0.5 {
		t.Fatalf("means = %v, n=%d", e.Means(), e.N())
	}
}

func TestRandomizeState(t *testing.T) {
	b := factor.NewBuilder()
	for i := 0; i < 64; i++ {
		b.AddVar()
	}
	g := b.MustBuild()
	s := New(g, 9)
	s.RandomizeState()
	trues := 0
	for _, v := range s.State.Assign {
		if v {
			trues++
		}
	}
	if trues == 0 || trues == 64 {
		t.Fatalf("RandomizeState gave degenerate assignment: %d true", trues)
	}
}

func TestSweepsToConverge(t *testing.T) {
	g, q := singleVarGraph(0) // uniform: P(q)=0.5
	res := SweepsToConverge(g, q, 0.5, 0.05, 5000, 20, 3)
	if !res.Converged {
		t.Fatalf("uniform single var did not converge: %+v", res)
	}
	// An impossible target must not report convergence.
	res = SweepsToConverge(g, q, 10, 0.01, 200, 5, 3)
	if res.Converged {
		t.Fatal("converged to impossible target")
	}
}

func TestCollectSamplesMeans(t *testing.T) {
	g, q := singleVarGraph(1)
	s := New(g, 11)
	st := s.CollectSamples(100, 3000)
	if st.Len() != 3000 {
		t.Fatalf("stored %d samples, want 3000", st.Len())
	}
	want := 1 / (1 + math.Exp(-2.0))
	if got := st.Means()[q]; math.Abs(got-want) > 0.04 {
		t.Fatalf("stored-sample mean %v, want %v ± 0.04", got, want)
	}
}

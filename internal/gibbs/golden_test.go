package gibbs_test

// Seed-pinned golden marginals: the hot-path overhaul (Markov-blanket
// conditional caching, table-driven semantics, fused sweep kernels) must
// preserve every sampler's output bit for bit at a fixed seed. The hashes
// below were captured on the pre-overhaul evaluators (PR 4); any change —
// a reordered float reduction, a cache serving a stale conditional, an
// extra or missing RNG draw — shifts the hash.

import (
	"math"
	"math/rand"
	"testing"

	"deepdive/internal/factor"
	"deepdive/internal/gibbs"
)

// goldenGraph builds a deterministic mixed-semantics graph: 48 variables
// (some evidence), 6 tied weights, 40 groups of 1-3 groundings with 1-3
// literals each, all three counting semantics.
func goldenGraph() *factor.Graph {
	rng := rand.New(rand.NewSource(77))
	b := factor.NewBuilder()
	const nVars = 48
	var vars []factor.VarID
	for i := 0; i < nVars; i++ {
		if rng.Intn(6) == 0 {
			vars = append(vars, b.AddEvidenceVar(rng.Intn(2) == 0))
		} else {
			vars = append(vars, b.AddVar())
		}
	}
	var weights []factor.WeightID
	for i := 0; i < 6; i++ {
		weights = append(weights, b.AddWeight(rng.Float64()*3-1.5))
	}
	sems := []factor.Semantics{factor.Linear, factor.Logical, factor.Ratio}
	for gi := 0; gi < 40; gi++ {
		var gnds []factor.Grounding
		for k := 0; k < 1+rng.Intn(3); k++ {
			var lits []factor.Literal
			for l := 0; l < 1+rng.Intn(3); l++ {
				lits = append(lits, factor.Literal{
					Var: vars[rng.Intn(nVars)],
					Neg: rng.Intn(3) == 0,
				})
			}
			gnds = append(gnds, factor.Grounding{Lits: lits})
		}
		b.AddGroup(vars[rng.Intn(nVars)], weights[rng.Intn(6)], sems[gi%3], gnds)
	}
	return b.MustBuild()
}

// goldenPatched extends the golden graph through a Patch: new vars, a new
// group, groundings added to existing groups, and one tombstone — the
// in-place update shapes whose overflow rows the cached evaluators must
// handle conservatively.
func goldenPatched() *factor.Graph {
	g := goldenGraph()
	p := factor.NewPatch(g)
	v1 := p.AddVar()
	v2 := p.AddVar()
	w := p.AddWeight(0.8)
	gi := p.AddGroup(v1, w, factor.Ratio)
	p.AddGrounding(gi, []factor.Literal{{Var: v2}, {Var: 3, Neg: true}})
	p.AddGrounding(gi, []factor.Literal{{Var: 5}})
	p.AddGrounding(3, []factor.Literal{{Var: v1}, {Var: 7}})
	p.AddGrounding(9, []factor.Literal{{Var: v2, Neg: true}})
	p.RemoveGrounding(1)
	return p.Apply()
}

// hashFloats folds float64 bit patterns through FNV-1a.
func hashFloats(xs []float64) uint64 {
	h := uint64(14695981039346656037)
	for _, x := range xs {
		bits := math.Float64bits(x)
		for s := 0; s < 64; s += 8 {
			h ^= (bits >> uint(s)) & 0xff
			h *= 1099511628211
		}
	}
	return h
}

func TestGoldenMarginalsPinned(t *testing.T) {
	cases := []struct {
		name string
		want uint64
		run  func() []float64
	}{
		{"sequential", 0x422a15c890229804, func() []float64 {
			return gibbs.New(goldenGraph(), 11).Marginals(20, 300)
		}},
		{"sequential-randomized", 0xff50d304c2e973d2, func() []float64 {
			s := gibbs.New(goldenGraph(), 11)
			s.RandomizeState()
			return s.Marginals(20, 300)
		}},
		{"parallel-4", 0xf96bbf1c375cf7fb, func() []float64 {
			return gibbs.NewParallel(goldenGraph(), 4, 11).Marginals(20, 300)
		}},
		{"replica-3", 0xa33e64c90bcf82a6, func() []float64 {
			return gibbs.NewReplica(goldenGraph(), 3, 4, 11).Marginals(20, 300)
		}},
		{"patched-sequential", 0xf9abb4565f9c4201, func() []float64 {
			return gibbs.New(goldenPatched(), 11).Marginals(20, 300)
		}},
		{"patched-parallel-4", 0x1cbf3f70ea694405, func() []float64 {
			return gibbs.NewParallel(goldenPatched(), 4, 11).Marginals(20, 300)
		}},
		{"patched-replica-3", 0x7c1af869c5fb2b1a, func() []float64 {
			return gibbs.NewReplica(goldenPatched(), 3, 4, 11).Marginals(20, 300)
		}},
		{"store-collect", 0x9f76480ee089bf3c, func() []float64 {
			st := gibbs.New(goldenGraph(), 11).CollectSamples(10, 100)
			return st.Means()
		}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			got := hashFloats(c.run())
			if got != c.want {
				t.Fatalf("marginals hash = %#x, want %#x (bit-level drift from the pre-overhaul sampler)", got, c.want)
			}
		})
	}
}

// TestGoldenWeightStatsPinned pins the learning-side sufficient statistic
// the same way (learn.Train's gradient source).
func TestGoldenWeightStatsPinned(t *testing.T) {
	for _, c := range []struct {
		name    string
		build   func() *factor.Graph
		want    uint64
		sweeps  int
		replica bool
	}{
		{name: "built", build: goldenGraph, want: 0xc75a4b5ee52d76a6, sweeps: 25},
		{name: "patched", build: goldenPatched, want: 0x3adef04d106011e8, sweeps: 25},
	} {
		c := c
		t.Run(c.name, func(t *testing.T) {
			g := c.build()
			s := gibbs.New(g, 7)
			stats := make([]float64, g.NumWeights())
			for i := 0; i < c.sweeps; i++ {
				s.Sweep()
				s.WeightStats(stats)
			}
			if got := hashFloats(stats); got != c.want {
				t.Fatalf("weight-stats hash = %#x, want %#x", got, c.want)
			}
		})
	}
}

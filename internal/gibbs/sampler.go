// Package gibbs implements the Gibbs sampling machinery DeepDive uses for
// statistical inference (Section 2.5 of the paper): a sequential scan
// sampler over a factor.Graph, a sharded ParallelSampler in the style of
// the production DimmWitted engine (one worker per core over the flat CSR
// layout), marginal-probability estimation, bit-packed sample storage
// ("tuple bundles", after MCDB), and convergence probes used by the
// semantics experiments of Appendix A. The Chain interface abstracts over
// the two samplers so callers opt into parallelism by configuration.
package gibbs

import (
	"context"
	"math"
	"math/rand"

	"deepdive/internal/factor"
)

// Sampler runs Gibbs sweeps over the free variables of a factor graph.
// It owns a State; callers that need the current world read
// Sampler.State.Assign. Not safe for concurrent use.
type Sampler struct {
	State *factor.State
	rng   *rand.Rand
	free  []factor.VarID // non-evidence variables, scan order
}

// New creates a sampler over g with a fresh all-false (plus evidence)
// initial state and a deterministic RNG seeded with seed.
func New(g *factor.Graph, seed int64) *Sampler {
	return FromState(factor.NewState(g), seed)
}

// FromState wraps an existing state. The sampler takes ownership.
func FromState(st *factor.State, seed int64) *Sampler {
	s := &Sampler{State: st, rng: rand.New(rand.NewSource(seed))}
	g := st.G
	for v := 0; v < g.NumVars(); v++ {
		if !g.IsEvidence(factor.VarID(v)) {
			s.free = append(s.free, factor.VarID(v))
		}
	}
	return s
}

// NumFree returns the number of free (sampled) variables.
func (s *Sampler) NumFree() int { return len(s.free) }

// Graph returns the underlying factor graph.
func (s *Sampler) Graph() *factor.Graph { return s.State.G }

// Assign returns the chain's current world (shared, not a copy).
func (s *Sampler) Assign() []bool { return s.State.Assign }

// CondProb returns P(v = true | rest) under the current world.
func (s *Sampler) CondProb(v factor.VarID) float64 { return s.State.CondProb(v) }

// WeightStats accumulates the current world's per-weight sufficient
// statistic into out, from the state's maintained support counters.
func (s *Sampler) WeightStats(out []float64) { s.State.WeightStats(out) }

// FreeVars returns the free-variable scan order (shared slice; do not
// mutate).
func (s *Sampler) FreeVars() []factor.VarID { return s.free }

// RandomizeState assigns every free variable uniformly at random; useful
// for over-dispersed chain starts.
func (s *Sampler) RandomizeState() {
	for _, v := range s.free {
		s.State.Set(v, s.rng.Intn(2) == 0)
	}
}

// SampleVar resamples a single variable from its conditional through the
// state's fused kernel (cached conditional → decide → apply in one pass).
func (s *Sampler) SampleVar(v factor.VarID) {
	s.State.SampleVar(v, s.rng.Float64())
}

// Sweep performs one full scan over all free variables. The loop body is
// the fused State.SampleVar kernel; the state and RNG headers are hoisted
// so the loop carries no repeated field loads.
func (s *Sampler) Sweep() {
	st, rng := s.State, s.rng
	for _, v := range s.free {
		st.SampleVar(v, rng.Float64())
	}
}

// Run performs n sweeps.
func (s *Sampler) Run(n int) { s.RunCtx(nil, n) }

// RunCtx performs up to n sweeps, checking ctx between sweeps, and
// returns how many completed.
func (s *Sampler) RunCtx(ctx context.Context, n int) int {
	for i := 0; i < n; i++ {
		if canceled(ctx) {
			return i
		}
		s.Sweep()
	}
	return n
}

// Marginals runs burnin sweeps, then keep sweeps, and returns the
// empirical P(v = true) for every variable. Evidence variables report
// their fixed value (0 or 1). keep must be ≥ 1.
func (s *Sampler) Marginals(burnin, keep int) []float64 {
	return s.MarginalsCtx(nil, burnin, keep)
}

// MarginalsCtx is Marginals with a cooperative cancellation check
// between sweeps.
func (s *Sampler) MarginalsCtx(ctx context.Context, burnin, keep int) []float64 {
	est := NewEstimatorFor(s.State.G)
	s.RunCtx(ctx, burnin)
	for i := 0; i < keep; i++ {
		if canceled(ctx) {
			break
		}
		s.Sweep()
		est.Observe(s.State.Assign)
	}
	return est.Means()
}

// StoreWorlds appends the chain's current world to st.
func (s *Sampler) StoreWorlds(st *Store) { st.Add(s.State.Assign) }

// CollectSamples runs burnin sweeps and then stores n worlds (one per
// sweep) into a new Store. This is the materialization loop of the
// sampling approach (Section 3.2.2).
func (s *Sampler) CollectSamples(burnin, n int) *Store {
	return s.CollectSamplesCtx(nil, burnin, n)
}

// CollectSamplesCtx is CollectSamples with a cooperative cancellation
// check between sweeps.
func (s *Sampler) CollectSamplesCtx(ctx context.Context, burnin, n int) *Store {
	st := NewStore(s.State.G.NumVars())
	s.RunCtx(ctx, burnin)
	for i := 0; i < n; i++ {
		if canceled(ctx) {
			break
		}
		s.Sweep()
		st.Add(s.State.Assign)
	}
	return st
}

// Estimator accumulates marginal estimates from observed worlds. Built
// through NewEstimatorFor it observes only the graph's free variables —
// evidence variables never change, so their fixed contribution is filled
// in once at read time instead of being re-counted every sweep.
type Estimator struct {
	counts []float64
	n      int

	// Free-vars-only mode (NewEstimatorFor): the observe loop walks free,
	// and reads reconstruct evidence entries from ev/evTrue. The
	// reconstruction replays the counting arithmetic (n·(1/n), n/n) so the
	// results are bit-identical to observing every variable.
	freeOnly bool
	free     []factor.VarID
	ev       []bool // per variable: fixed (evidence)
	evTrue   []bool // fixed value (meaningful when ev)
}

// NewEstimator returns an estimator over nVars variables that counts
// every variable of each observed world.
func NewEstimator(nVars int) *Estimator {
	return &Estimator{counts: make([]float64, nVars)}
}

// NewEstimatorFor returns an estimator over g's variables whose observe
// loop touches only the free variables.
func NewEstimatorFor(g *factor.Graph) *Estimator {
	e := &Estimator{
		counts:   make([]float64, g.NumVars()),
		freeOnly: true,
		ev:       make([]bool, g.NumVars()),
		evTrue:   make([]bool, g.NumVars()),
	}
	for v := 0; v < g.NumVars(); v++ {
		id := factor.VarID(v)
		if g.IsEvidence(id) {
			e.ev[v] = true
			e.evTrue[v] = g.EvidenceValue(id)
		} else {
			e.free = append(e.free, id)
		}
	}
	return e
}

// Observe adds one world.
func (e *Estimator) Observe(assign []bool) {
	if e.freeOnly {
		counts := e.counts
		for _, v := range e.free {
			if assign[v] {
				counts[v]++
			}
		}
	} else {
		for i, v := range assign {
			if v {
				e.counts[i]++
			}
		}
	}
	e.n++
}

// N returns the number of observed worlds.
func (e *Estimator) N() int { return e.n }

// Mean returns the current estimate of P(v = true).
func (e *Estimator) Mean(v factor.VarID) float64 {
	if e.n == 0 {
		return 0
	}
	if e.freeOnly && e.ev[v] {
		if e.evTrue[v] {
			return float64(e.n) / float64(e.n) // n/n: what counting would yield
		}
		return 0
	}
	return e.counts[v] / float64(e.n)
}

// Means returns all marginal estimates.
func (e *Estimator) Means() []float64 {
	out := make([]float64, len(e.counts))
	inv := 0.0
	if e.n > 0 {
		inv = 1 / float64(e.n)
	}
	if e.freeOnly && e.n > 0 {
		one := float64(e.n) * inv // n·(1/n): what counting would yield
		for i, c := range e.counts {
			switch {
			case e.ev[i] && e.evTrue[i]:
				out[i] = one
			case e.ev[i]:
				out[i] = 0
			default:
				out[i] = c * inv
			}
		}
		return out
	}
	for i, c := range e.counts {
		out[i] = c * inv
	}
	return out
}

// ConvergenceResult reports how many sweeps a chain needed before its
// running marginal estimate of one variable stayed within tol of target.
type ConvergenceResult struct {
	Sweeps    int
	Converged bool
	Estimate  float64
}

// SweepsToConverge runs a fresh chain over g and reports the first sweep
// count at which the running estimate of P(v) is within tol of target and
// remains within tol for `hold` further consecutive sweeps (guarding
// against transient crossings). Used for the Figure 13 reproduction.
func SweepsToConverge(g *factor.Graph, v factor.VarID, target, tol float64, maxSweeps, hold int, seed int64) ConvergenceResult {
	s := New(g, seed)
	s.RandomizeState()
	est := NewEstimatorFor(g)
	within := 0
	for it := 1; it <= maxSweeps; it++ {
		s.Sweep()
		est.Observe(s.State.Assign)
		cur := est.Mean(v)
		if math.Abs(cur-target) <= tol {
			within++
			if within >= hold {
				return ConvergenceResult{Sweeps: it - hold + 1, Converged: true, Estimate: cur}
			}
		} else {
			within = 0
		}
	}
	return ConvergenceResult{Sweeps: maxSweeps, Converged: false, Estimate: est.Mean(v)}
}

package gibbs

import (
	"fmt"

	"deepdive/internal/persist"
)

// Snapshot codec for Store. The bit-packed samples are written as one
// contiguous uint64 blob (n * words values) plus the consumption
// cursor; on restore the per-sample slices are views into the blob, so
// a cold start reads the whole store with a single memmove and zero
// per-sample work. The allocation arena is not persisted — it only
// amortizes future Adds, which re-grow it on demand.
const storeCodecVersion = 1

// AppendSnapshot encodes the store into b.
func (s *Store) AppendSnapshot(b *persist.Buf) {
	b.U8(storeCodecVersion)
	b.I64(int64(s.nVars))
	b.I64(int64(s.words))
	b.I64(int64(s.cursor))
	blob := make([]uint64, 0, len(s.samples)*s.words)
	for _, w := range s.samples {
		blob = append(blob, w...)
	}
	b.U64s(blob)
}

// DecodeStoreSnapshot rebuilds a store from r.
func DecodeStoreSnapshot(r *persist.Rd) (*Store, error) {
	if v := r.U8("store version"); r.Err() == nil && v != storeCodecVersion {
		return nil, fmt.Errorf("gibbs: unsupported store codec version %d", v)
	}
	s := &Store{}
	s.nVars = int(r.I64("store nVars"))
	s.words = int(r.I64("store words"))
	s.cursor = int(r.I64("store cursor"))
	blob := r.U64s("store samples")
	if err := r.Err(); err != nil {
		return nil, err
	}
	if s.words <= 0 {
		if s.words < 0 || len(blob) != 0 {
			return nil, fmt.Errorf("gibbs: corrupt store snapshot: %d words", s.words)
		}
		return s, nil
	}
	if len(blob)%s.words != 0 || s.cursor < 0 || s.cursor > len(blob)/s.words {
		return nil, fmt.Errorf("gibbs: corrupt store snapshot: %d words in blob of %d, cursor %d",
			s.words, len(blob), s.cursor)
	}
	n := len(blob) / s.words
	s.samples = make([][]uint64, n)
	for i := 0; i < n; i++ {
		s.samples[i] = blob[i*s.words : (i+1)*s.words : (i+1)*s.words]
	}
	return s, nil
}

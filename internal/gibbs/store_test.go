package gibbs

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestStoreRoundTrip(t *testing.T) {
	st := NewStore(70) // spans two uint64 words
	w1 := make([]bool, 70)
	w2 := make([]bool, 70)
	for i := range w1 {
		w1[i] = i%3 == 0
		w2[i] = i%2 == 0
	}
	st.Add(w1)
	st.Add(w2)
	if st.Len() != 2 {
		t.Fatalf("Len = %d, want 2", st.Len())
	}
	got := st.Get(0, nil)
	for i := range w1 {
		if got[i] != w1[i] {
			t.Fatalf("sample 0 bit %d = %v, want %v", i, got[i], w1[i])
		}
	}
	got = st.Get(1, got)
	for i := range w2 {
		if got[i] != w2[i] {
			t.Fatalf("sample 1 bit %d = %v, want %v", i, got[i], w2[i])
		}
	}
}

func TestStoreAddPanicsOnWrongSize(t *testing.T) {
	st := NewStore(4)
	defer func() {
		if recover() == nil {
			t.Fatal("Add with wrong size did not panic")
		}
	}()
	st.Add(make([]bool, 5))
}

func TestStoreNextAndExhaustion(t *testing.T) {
	st := NewStore(3)
	st.Add([]bool{true, false, true})
	st.Add([]bool{false, true, false})
	if st.Remaining() != 2 {
		t.Fatalf("Remaining = %d, want 2", st.Remaining())
	}
	s1, ok := st.Next(nil)
	if !ok || !s1[0] || s1[1] {
		t.Fatalf("first Next = %v, ok=%v", s1, ok)
	}
	_, ok = st.Next(nil)
	if !ok {
		t.Fatal("second Next should succeed")
	}
	if _, ok := st.Next(nil); ok {
		t.Fatal("exhausted store returned a sample")
	}
	if st.Remaining() != 0 {
		t.Fatalf("Remaining = %d after exhaustion, want 0", st.Remaining())
	}
	st.Reset()
	if st.Remaining() != 2 {
		t.Fatal("Reset did not rewind cursor")
	}
}

// TestStorePeek pins the non-consuming window contract: Peek(k) returns
// the sample Next would return after k more calls, never moves the
// cursor, and reports ok=false outside the unconsumed region.
func TestStorePeek(t *testing.T) {
	st := NewStore(3)
	worlds := [][]bool{
		{true, false, true},
		{false, true, false},
		{true, true, true},
	}
	for _, w := range worlds {
		st.Add(w)
	}
	check := func(k, wantIdx int) {
		t.Helper()
		got, ok := st.Peek(k, nil)
		if !ok {
			t.Fatalf("Peek(%d) not ok with %d remaining", k, st.Remaining())
		}
		for i, v := range worlds[wantIdx] {
			if got[i] != v {
				t.Fatalf("Peek(%d) bit %d = %v, want sample %d", k, i, got[i], wantIdx)
			}
		}
	}
	check(0, 0)
	check(2, 2)
	if st.Remaining() != 3 {
		t.Fatalf("Peek moved the cursor: Remaining = %d, want 3", st.Remaining())
	}
	if _, ok := st.Peek(3, nil); ok {
		t.Fatal("Peek past the stored samples reported ok")
	}
	if _, ok := st.Peek(-1, nil); ok {
		t.Fatal("Peek(-1) reported ok")
	}

	// After consuming one sample the window shifts: Peek(0) is sample 1.
	if _, ok := st.Next(nil); !ok {
		t.Fatal("Next failed")
	}
	check(0, 1)
	check(1, 2)
	if _, ok := st.Peek(2, nil); ok {
		t.Fatal("Peek past the unconsumed region reported ok")
	}
	if st.Remaining() != 2 {
		t.Fatalf("Remaining = %d after peeks, want 2", st.Remaining())
	}

	// Fully consumed: nothing to peek at any offset.
	st.Next(nil)
	st.Next(nil)
	if _, ok := st.Peek(0, nil); ok {
		t.Fatal("Peek on an exhausted store reported ok")
	}
}

func TestStoreMemoryBytes(t *testing.T) {
	st := NewStore(65) // 2 words per sample
	if st.MemoryBytes() != 0 {
		t.Fatal("empty store reports memory")
	}
	st.Add(make([]bool, 65))
	if st.MemoryBytes() != 16 {
		t.Fatalf("MemoryBytes = %d, want 16 (2 words)", st.MemoryBytes())
	}
	// One bit per variable per sample (padded to words): 100 samples of
	// 65 vars must take 1600 bytes, far below the unpacked 6500 bools.
	for i := 0; i < 99; i++ {
		st.Add(make([]bool, 65))
	}
	if st.MemoryBytes() != 1600 {
		t.Fatalf("MemoryBytes = %d, want 1600", st.MemoryBytes())
	}
}

func TestStoreMeans(t *testing.T) {
	st := NewStore(2)
	st.Add([]bool{true, false})
	st.Add([]bool{true, true})
	st.Add([]bool{false, true})
	st.Add([]bool{true, false})
	m := st.Means()
	if m[0] != 0.75 || m[1] != 0.5 {
		t.Fatalf("Means = %v, want [0.75 0.5]", m)
	}
	if got := NewStore(2).Means(); got[0] != 0 || got[1] != 0 {
		t.Fatal("empty store means not zero")
	}
}

func TestStoreFloatWorlds(t *testing.T) {
	st := NewStore(3)
	st.Add([]bool{true, false, true})
	rows := st.FloatWorlds(nil)
	if len(rows) != 1 || rows[0][0] != 1 || rows[0][1] != 0 || rows[0][2] != 1 {
		t.Fatalf("FloatWorlds = %v", rows)
	}
	sub := st.FloatWorlds([]int{2, 0})
	if sub[0][0] != 1 || sub[0][1] != 1 {
		t.Fatalf("FloatWorlds(sub) = %v", sub)
	}
}

// Property: pack → unpack round-trips for arbitrary worlds and sizes.
func TestQuickStoreRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		st := NewStore(n)
		worlds := make([][]bool, 1+rng.Intn(5))
		for k := range worlds {
			w := make([]bool, n)
			for i := range w {
				w[i] = rng.Intn(2) == 0
			}
			worlds[k] = w
			st.Add(w)
		}
		for k, w := range worlds {
			got := st.Get(k, nil)
			for i := range w {
				if got[i] != w[i] {
					return false
				}
				if st.Bit(k, i) != w[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

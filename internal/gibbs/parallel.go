package gibbs

import (
	"context"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"deepdive/internal/factor"
)

// ParallelSampler runs Gibbs sweeps with the free variables sharded across
// workers, in the style of DimmWitted's one-worker-per-core engine: every
// worker owns a contiguous range of the free-variable scan order, samples
// it Gauss-Seidel within the shard, and evaluates conditionals directly
// over the graph's flat CSR arrays (no shared support counters to
// contend on). Cross-shard neighbors are read from a snapshot taken at
// sweep start, so workers never observe each other's in-flight writes:
// sweeps are race-free and the chain is bit-for-bit deterministic for a
// fixed (seed, worker count) pair. Each worker draws from its own
// splitmix64-derived rand.Rand.
//
// Contiguous sharding preserves the locality of grounded per-document
// clusters, so only shard-boundary dependencies see one-sweep-stale
// values — the standard Hogwild-style approximation, which leaves
// marginals statistically indistinguishable from the sequential scan on
// sparse KBC graphs.
//
// Each variable's last conditional is memoized in a shard-local cache and
// stays valid until a Markov-blanket neighbor flips (in-shard flips
// invalidate immediately, cross-shard flips at the next snapshot refresh
// — see sweepShard and propagateFlips), so near-convergence sweeps skip
// most adjacency walks. The cache is bitwise transparent: chains are
// bit-for-bit identical with it on or off.
//
// The sampler itself is driven from one goroutine; only its internal
// sweeps fan out.
type ParallelSampler struct {
	g    *factor.Graph
	free []factor.VarID // non-evidence variables, scan order

	workers int
	shards  [][]factor.VarID // contiguous slices of free
	lo, hi  []int32          // ownership bounds (VarID) per worker
	rngs    []*rand.Rand     // per-worker streams
	master  *rand.Rand       // for RandomizeState and other driver-side draws

	cur  []bool // live assignment; workers write only their own shard
	snap []bool // sweep-start snapshot for cross-shard reads

	// Shard-local conditional cache: cSig[v] holds the sigmoid of v's last
	// conditional, valid while cStamp[v] == stamp. Fills and reads happen
	// only on the owning worker; invalidation is split to stay race-free —
	// a flip invalidates its in-shard blanket neighbors immediately (same
	// worker, Gauss-Seidel visibility), while cross-shard neighbors are
	// invalidated by the driver at the next sweep start (exactly when the
	// refreshed snapshot makes the flip visible to them). Each worker logs
	// its flips into a private row for the driver pass.
	csr     factor.CSR
	cSig    []float64
	cStamp  []uint32
	stamp   uint32
	flips   [][]int32 // per-worker flip log of the last sweep
	wgen    uint64    // graph weight generation the cache was filled under
	cacheOn bool      // lesion toggle (SetConditionalCache); default on

	collecting bool
	counts     []float64 // per-variable true counts; workers write own shard only
}

// splitmix64 is the SplitMix64 mixer; used to derive independent,
// deterministic per-worker seeds from one master seed.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// NewParallel creates a parallel sampler over g with workers shards.
// workers <= 0 selects runtime.GOMAXPROCS(0); the worker count is capped
// at the number of free variables.
func NewParallel(g *factor.Graph, workers int, seed int64) *ParallelSampler {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &ParallelSampler{
		g:       g,
		master:  rand.New(rand.NewSource(seed)),
		cur:     make([]bool, g.NumVars()),
		snap:    make([]bool, g.NumVars()),
		csr:     g.CSR(),
		cSig:    make([]float64, g.NumVars()),
		cStamp:  make([]uint32, g.NumVars()),
		stamp:   1,
		wgen:    g.WeightGeneration(),
		cacheOn: true,
	}
	for v := 0; v < g.NumVars(); v++ {
		if g.IsEvidence(factor.VarID(v)) {
			p.cur[v] = g.EvidenceValue(factor.VarID(v))
		} else {
			p.free = append(p.free, factor.VarID(v))
		}
	}
	copy(p.snap, p.cur)
	if workers > len(p.free) {
		workers = len(p.free)
	}
	if workers < 1 {
		workers = 1
	}
	p.workers = workers
	p.shards = make([][]factor.VarID, workers)
	p.lo = make([]int32, workers)
	p.hi = make([]int32, workers)
	p.rngs = make([]*rand.Rand, workers)
	p.flips = make([][]int32, workers)
	base, rem := len(p.free)/workers, len(p.free)%workers
	start := 0
	for w := 0; w < workers; w++ {
		size := base
		if w < rem {
			size++
		}
		shard := p.free[start : start+size]
		p.shards[w] = shard
		if len(shard) > 0 {
			p.lo[w] = int32(shard[0])
			p.hi[w] = int32(shard[len(shard)-1])
		} else {
			p.lo[w], p.hi[w] = 1, 0 // empty range
		}
		// Mix the master seed before adding the worker index: chains built
		// from adjacent master seeds (the learner's clamped/free pair, the
		// engine's phase offsets) must not share worker streams, which
		// splitmix64(seed+w) alone would allow.
		p.rngs[w] = rand.New(rand.NewSource(DeriveSeed(MixSeed(seed), w)))
		// Flip-log capacity: a variable flips at most once per sweep, so a
		// shard-sized row never reallocates mid-sweep.
		p.flips[w] = make([]int32, 0, size)
		start += size
	}
	return p
}

// Workers returns the number of worker shards.
func (p *ParallelSampler) Workers() int { return p.workers }

// NumFree returns the number of free (sampled) variables.
func (p *ParallelSampler) NumFree() int { return len(p.free) }

// Graph returns the underlying factor graph.
func (p *ParallelSampler) Graph() *factor.Graph { return p.g }

// Assign returns the live assignment (read it only between sweeps).
func (p *ParallelSampler) Assign() []bool { return p.cur }

// RandomizeState assigns every free variable uniformly at random from the
// master stream; useful for over-dispersed chain starts.
func (p *ParallelSampler) RandomizeState() {
	for _, v := range p.free {
		p.cur[v] = p.master.Intn(2) == 0
	}
	p.bumpStamp()
	for w := range p.flips {
		p.flips[w] = p.flips[w][:0]
	}
}

// bumpStamp invalidates every cached conditional in O(1).
func (p *ParallelSampler) bumpStamp() {
	p.stamp++
	if p.stamp == 0 { // wrapped: stale stamps could collide, clear them
		for i := range p.cStamp {
			p.cStamp[i] = 0
		}
		p.stamp = 1
	}
}

// propagateFlips is the driver-side half of cache invalidation, run
// between sweeps: every variable that flipped last sweep invalidates its
// full Markov blanket — in particular the cross-shard neighbors no worker
// may touch mid-sweep — exactly when the refreshed snapshot makes those
// flips visible. The walk's total cost is the summed blanket size of the
// sweep's flips, which is bounded by the adjacency work the invalidated
// entries will pay on their next miss anyway — and on KBC graphs the
// frequent flippers are weakly coupled variables with tiny blankets, so
// even mixing-phase sweeps propagate cheaply.
func (p *ParallelSampler) propagateFlips() {
	nbrOff, nbrs, nbrX := p.csr.NbrOff, p.csr.Nbrs, p.csr.NbrExtra
	cStamp := p.cStamp
	for w := range p.flips {
		for _, v := range p.flips[w] {
			for _, u := range nbrs[nbrOff[v]:nbrOff[v+1]] {
				cStamp[u] = 0
			}
			if nbrX != nil {
				for _, u := range nbrX[v] {
					cStamp[u] = 0
				}
			}
		}
		p.flips[w] = p.flips[w][:0]
	}
}

// sweepShard samples worker w's shard once. Reads of variables inside the
// shard see this sweep's values (Gauss-Seidel); reads of other shards see
// the sweep-start snapshot (factor.EnergyDeltaShard's read rule). Writes
// touch only cur[v], cSig[v], cStamp[v], and the flip log for owned v
// (and the owned slots of counts when collecting), so concurrent shards
// never race: in-sweep cache invalidation is clipped to the shard's
// ownership window, and cross-shard invalidation is the driver's
// propagateFlips pass.
func (p *ParallelSampler) sweepShard(w int) {
	if p.cacheOn {
		p.sweepShardCached(w)
	} else {
		p.sweepShardUncached(w)
	}
}

// sweepShardUncached is the lesion kernel (SetConditionalCache(false)):
// plain direct evaluation with no cache bookkeeping, the pre-overhaul
// sweep loop.
func (p *ParallelSampler) sweepShardUncached(w int) {
	g := p.g
	cur, snap := p.cur, p.snap
	lo, hi := p.lo[w], p.hi[w]
	rng := p.rngs[w]
	collecting := p.collecting
	for _, v := range p.shards[w] {
		delta := g.EnergyDeltaShard(cur, snap, lo, hi, v)
		val := rng.Float64() < 1/(1+math.Exp(-delta))
		cur[v] = val
		if collecting && val {
			p.counts[v]++
		}
	}
}

// SetConditionalCache toggles the shard-local conditional cache (enabled
// by default). The cache is bitwise transparent, so this knob changes
// performance only; it exists for lesion benchmarks and differential
// tests.
func (p *ParallelSampler) SetConditionalCache(on bool) {
	p.cacheOn = on
	p.bumpStamp()
	for w := range p.flips {
		p.flips[w] = p.flips[w][:0]
	}
}

// sweepShardCached is the hot kernel: conditionals come from the
// shard-local cache when valid, flips log for the driver pass and
// invalidate their in-shard blanket window immediately.
func (p *ParallelSampler) sweepShardCached(w int) {
	g := p.g
	cur, snap := p.cur, p.snap
	lo, hi := p.lo[w], p.hi[w]
	rng := p.rngs[w]
	cSig, cStamp, stamp := p.cSig, p.cStamp, p.stamp
	nbrOff, nbrs := p.csr.NbrOff, p.csr.Nbrs
	nbrX, adjX := p.csr.NbrExtra, p.csr.AdjExtra
	flips := p.flips[w][:0]
	collecting := p.collecting
	for _, v := range p.shards[w] {
		var sig float64
		if cStamp[v] == stamp {
			sig = cSig[v]
		} else {
			delta := g.EnergyDeltaShard(cur, snap, lo, hi, v)
			sig = 1 / (1 + math.Exp(-delta))
			// Overflow-row variables evaluate through patched-in adjacency;
			// conservatively never cache them (they are Δ-sized).
			if adjX == nil || adjX[v] == nil {
				cSig[v] = sig
				cStamp[v] = stamp
			}
		}
		val := rng.Float64() < sig
		if val != cur[v] {
			cur[v] = val
			flips = append(flips, int32(v))
			// Immediate invalidation of the in-shard blanket window (the
			// frozen row is ascending; overflow entries are range-checked).
			for _, u := range nbrs[nbrOff[v]:nbrOff[v+1]] {
				if u >= lo {
					if u > hi {
						break
					}
					cStamp[u] = 0
				}
			}
			if nbrX != nil {
				for _, u := range nbrX[v] {
					if u >= lo && u <= hi {
						cStamp[u] = 0
					}
				}
			}
		}
		if collecting && val {
			p.counts[v]++
		}
	}
	p.flips[w] = flips
}

// Sweep performs one full scan over all free variables, fanning the shards
// out across the workers.
func (p *ParallelSampler) Sweep() {
	if len(p.free) == 0 {
		return
	}
	if wg := p.g.WeightGeneration(); wg != p.wgen {
		p.wgen = wg
		p.bumpStamp()
	}
	if p.cacheOn {
		p.propagateFlips()
	}
	copy(p.snap, p.cur)
	if p.workers == 1 {
		p.sweepShard(0)
		return
	}
	var wg sync.WaitGroup
	wg.Add(p.workers)
	for w := 0; w < p.workers; w++ {
		go func(w int) {
			defer wg.Done()
			p.sweepShard(w)
		}(w)
	}
	wg.Wait()
}

// Run performs n sweeps.
func (p *ParallelSampler) Run(n int) { p.RunCtx(nil, n) }

// RunCtx performs up to n sweeps, checking ctx between sweeps, and
// returns how many completed. A sweep's worker fan-out always finishes
// before the check, so cancellation never observes a half-swept world.
func (p *ParallelSampler) RunCtx(ctx context.Context, n int) int {
	for i := 0; i < n; i++ {
		if canceled(ctx) {
			return i
		}
		p.Sweep()
	}
	return n
}

// Marginals runs burnin sweeps, then keep sweeps with per-worker marginal
// accumulators (each worker counts only its own shard — no shared
// accumulator contention), and returns the merged empirical P(v = true)
// for every variable. Evidence variables report their fixed value.
func (p *ParallelSampler) Marginals(burnin, keep int) []float64 {
	return p.MarginalsCtx(nil, burnin, keep)
}

// MarginalsCtx is Marginals with a cooperative cancellation check
// between sweeps; the estimate covers the sweeps completed before
// cancellation.
func (p *ParallelSampler) MarginalsCtx(ctx context.Context, burnin, keep int) []float64 {
	p.RunCtx(ctx, burnin)
	n := p.g.NumVars()
	p.counts = make([]float64, n)
	p.collecting = true
	kept := 0
	for i := 0; i < keep; i++ {
		if canceled(ctx) {
			break
		}
		p.Sweep()
		kept++
	}
	p.collecting = false
	out := make([]float64, n)
	inv := 0.0
	if kept > 0 {
		inv = 1 / float64(kept)
	}
	for v := 0; v < n; v++ {
		if p.g.IsEvidence(factor.VarID(v)) {
			if p.g.EvidenceValue(factor.VarID(v)) {
				out[v] = 1
			}
		} else {
			out[v] = p.counts[v] * inv
		}
	}
	// Release the accumulator: leaving it allocated would let a later
	// collecting run double-count into stale totals.
	p.counts = nil
	return out
}

// StoreWorlds appends the chain's current world to st.
func (p *ParallelSampler) StoreWorlds(st *Store) { st.Add(p.cur) }

// CollectSamples runs burnin sweeps and then stores n worlds (one per
// sweep) into a new Store — the materialization loop of the sampling
// approach (Section 3.2.2), now fed by the parallel chain.
func (p *ParallelSampler) CollectSamples(burnin, n int) *Store {
	return p.CollectSamplesCtx(nil, burnin, n)
}

// CollectSamplesCtx is CollectSamples with a cooperative cancellation
// check between sweeps.
func (p *ParallelSampler) CollectSamplesCtx(ctx context.Context, burnin, n int) *Store {
	st := NewStore(p.g.NumVars())
	p.RunCtx(ctx, burnin)
	for i := 0; i < n; i++ {
		if canceled(ctx) {
			break
		}
		p.Sweep()
		st.Add(p.cur)
	}
	return st
}

// CondProb returns P(v = true | rest) under the current assignment by
// direct evaluation. Driver-side only (not safe during a Sweep).
func (p *ParallelSampler) CondProb(v factor.VarID) float64 {
	return p.g.CondProbOf(p.cur, v)
}

// WeightStats accumulates the current world's per-weight sufficient
// statistic into out (like State.WeightStats, via direct evaluation).
func (p *ParallelSampler) WeightStats(out []float64) {
	p.g.WeightStatsOf(p.cur, out)
}

package gibbs

import "deepdive/internal/factor"

// Chain is a Gibbs chain over a factor graph — either the sequential
// Sampler or the sharded ParallelSampler. Weight learning and incremental
// materialization are written against this interface so parallelism is a
// configuration knob, not a code path.
type Chain interface {
	// Sweep performs one full scan over all free variables.
	Sweep()
	// Run performs n sweeps.
	Run(n int)
	// RandomizeState assigns every free variable uniformly at random.
	RandomizeState()
	// Assign returns the chain's current world (read between sweeps only;
	// shared, not a copy).
	Assign() []bool
	// Marginals runs burnin then keep sweeps and returns empirical
	// per-variable P(v = true); evidence variables report their fixed value.
	Marginals(burnin, keep int) []float64
	// CollectSamples runs burnin sweeps then stores n worlds.
	CollectSamples(burnin, n int) *Store
	// CondProb returns P(v = true | rest) under the current world.
	CondProb(v factor.VarID) float64
	// WeightStats accumulates the current world's per-weight sufficient
	// statistic into out.
	WeightStats(out []float64)
	// NumFree returns the number of free (sampled) variables.
	NumFree() int
	// Graph returns the underlying factor graph.
	Graph() *factor.Graph
}

var (
	_ Chain = (*Sampler)(nil)
	_ Chain = (*ParallelSampler)(nil)
)

// NewChain returns a chain over g: the sequential Sampler when workers <= 1,
// otherwise a ParallelSampler with that many worker shards. Negative
// workers select one worker per core (runtime.GOMAXPROCS).
func NewChain(g *factor.Graph, seed int64, workers int) Chain {
	if workers < 0 {
		return NewParallel(g, workers, seed) // resolves to GOMAXPROCS
	}
	if workers <= 1 {
		return New(g, seed)
	}
	return NewParallel(g, workers, seed)
}

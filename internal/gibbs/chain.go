package gibbs

import (
	"context"

	"deepdive/internal/factor"
)

// Chain is a Gibbs chain over a factor graph — either the sequential
// Sampler or the sharded ParallelSampler. Weight learning and incremental
// materialization are written against this interface so parallelism is a
// configuration knob, not a code path.
//
// The Ctx variants are the cancellation surface of the serving API: they
// check ctx between sweeps (the cooperative-cancellation granularity —
// a sweep is never interrupted mid-scan, so the chain's state stays a
// coherent world) and return whatever was accumulated so far. Callers
// that must distinguish a complete result from a cancelled one check
// ctx.Err() afterwards. A nil ctx means "never cancel".
type Chain interface {
	// Sweep performs one full scan over all free variables.
	Sweep()
	// Run performs n sweeps.
	Run(n int)
	// RunCtx performs up to n sweeps, checking ctx between sweeps, and
	// returns how many completed.
	RunCtx(ctx context.Context, n int) int
	// MarginalsCtx is Marginals with a cooperative cancellation check
	// between sweeps; on cancellation it returns the estimate over the
	// worlds observed so far (all-zero when cancelled before any).
	MarginalsCtx(ctx context.Context, burnin, keep int) []float64
	// CollectSamplesCtx is CollectSamples with a cooperative cancellation
	// check between sweeps; on cancellation the returned store holds the
	// worlds collected so far.
	CollectSamplesCtx(ctx context.Context, burnin, n int) *Store
	// RandomizeState assigns every free variable uniformly at random.
	RandomizeState()
	// Assign returns the chain's current world (read between sweeps only;
	// shared, not a copy).
	Assign() []bool
	// Marginals runs burnin then keep sweeps and returns empirical
	// per-variable P(v = true); evidence variables report their fixed value.
	Marginals(burnin, keep int) []float64
	// CollectSamples runs burnin sweeps then stores n worlds.
	CollectSamples(burnin, n int) *Store
	// StoreWorlds appends the current sweep's exact sample world(s) to st
	// — one world for the single-assignment chains, one per replica for
	// the replica engine (never a derived/consensus world, which would
	// bias the store). Call between sweeps only.
	StoreWorlds(st *Store)
	// CondProb returns P(v = true | rest) under the current world.
	CondProb(v factor.VarID) float64
	// WeightStats accumulates the current world's per-weight sufficient
	// statistic into out.
	WeightStats(out []float64)
	// NumFree returns the number of free (sampled) variables.
	NumFree() int
	// Graph returns the underlying factor graph.
	Graph() *factor.Graph
}

var (
	_ Chain = (*Sampler)(nil)
	_ Chain = (*ParallelSampler)(nil)
	_ Chain = (*ReplicaSampler)(nil)
)

// canceled reports whether ctx is non-nil and already cancelled — the
// single cooperative check every sweep loop consults.
func canceled(ctx context.Context) bool {
	return ctx != nil && ctx.Err() != nil
}

// NewChain returns a chain over g: the sequential Sampler when workers <= 1,
// otherwise a ParallelSampler with that many worker shards. Negative
// workers select one worker per core (runtime.GOMAXPROCS). Replica-mode
// selection goes through Runtime.NewChain.
func NewChain(g *factor.Graph, seed int64, workers int) Chain {
	if workers < 0 {
		return NewParallel(g, workers, seed) // resolves to GOMAXPROCS
	}
	if workers <= 1 {
		return New(g, seed)
	}
	return NewParallel(g, workers, seed)
}

// Runtime selects the sampling runtime by configuration: the replica
// engine when Replicas is non-zero, otherwise the sharded/sequential
// chain by worker count. It is the single knob every layer (learning,
// materialization, rerun inference) threads through, so the sharded
// sampler stays available as the lesion configuration of the replica
// engine.
type Runtime struct {
	// Workers shards sweeps over one shared assignment (ParallelSampler):
	// <= 1 sequential, n > 1 that many shards, negative one per core.
	// Ignored when Replicas is non-zero.
	Workers int
	// Replicas selects the replica engine (ReplicaSampler): n >= 1 runs n
	// full per-worker assignment copies, negative one per core, 0 disables
	// replica mode.
	Replicas int
	// SyncEvery is the replica merge interval in sweeps (learning: gradient
	// steps); <= 0 selects DefaultSyncEvery. Unused outside replica mode.
	SyncEvery int
}

// ReplicaMode reports whether the runtime selects the replica engine.
func (rt Runtime) ReplicaMode() bool { return rt.Replicas != 0 }

// NewChain builds the chain the runtime selects over g.
func (rt Runtime) NewChain(g *factor.Graph, seed int64) Chain {
	if rt.ReplicaMode() {
		return NewReplica(g, rt.Replicas, rt.SyncEvery, seed)
	}
	return NewChain(g, seed, rt.Workers)
}

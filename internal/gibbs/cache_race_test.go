package gibbs_test

// Exercises the conditional-cache machinery under the race detector (the
// `make race` CI lane runs this package with -race): sharded sweeps whose
// workers fill/invalidate shard-local cache windows concurrently, the
// driver's cross-shard invalidation pass, mid-run weight changes (bulk
// invalidation through the weight generation), lesion toggling, and the
// replica engine's rotating per-worker States — all over a patched graph
// so overflow rows and patched blanket links are in play.

import (
	"testing"

	"deepdive/internal/gibbs"
)

func TestParallelCacheRace(t *testing.T) {
	g := goldenPatched()
	p := gibbs.NewParallel(g, 4, 9)
	p.RandomizeState()
	p.Run(10)
	g.SetWeight(0, 2.0) // mid-run weight change: caches must bulk-invalidate
	p.Run(5)
	p.SetConditionalCache(false)
	p.Run(5)
	p.SetConditionalCache(true)
	if m := p.Marginals(5, 20); len(m) != g.NumVars() {
		t.Fatalf("marginals length %d, want %d", len(m), g.NumVars())
	}
}

func TestParallelCacheMatchesLesion(t *testing.T) {
	run := func(cache bool) []float64 {
		s := gibbs.NewParallel(goldenPatched(), 4, 9)
		s.SetConditionalCache(cache)
		s.RandomizeState()
		return s.Marginals(10, 60)
	}
	on, off := run(true), run(false)
	for v := range on {
		if on[v] != off[v] {
			t.Fatalf("var %d: cached marginal %v != lesion %v (cache must be bitwise transparent)", v, on[v], off[v])
		}
	}
}

func TestReplicaCacheRace(t *testing.T) {
	g := goldenPatched()
	r := gibbs.NewReplica(g, 4, 3, 9)
	r.RandomizeState()
	r.Run(10) // crosses merge points: states rotate around the ring
	g.SetWeight(0, -1.5)
	r.Run(5)
	stats := make([]float64, g.NumWeights())
	r.WeightStats(stats)
	if m := r.Marginals(3, 12); len(m) != g.NumVars() {
		t.Fatalf("marginals length %d, want %d", len(m), g.NumVars())
	}
}

package factor_test

// Differential harness for the O(Δ) in-place patch path: randomized
// update sequences are applied twice — through factor.Patch on a live
// graph, and to an independent nested model that is rebuilt from scratch
// through factor.Builder after every step — and the two graphs must stay
// semantically identical (energies, conditional deltas under both
// evaluation paths, weight statistics, adjacency sets, marginals at a
// fixed seed). The pre-patch graph is also re-checked after each step:
// lineage sharing must leave the old distribution untouched.
//
// Failures print the subtest seed (t.Run("seed=N")); re-run with
// -run 'TestPatchDifferential/seed=N' to reproduce.

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"deepdive/internal/factor"
	"deepdive/internal/gibbs"
)

// modelGnd is one grounding of the oracle model with its flat-pool id in
// the patched lineage (for targeted removal).
type modelGnd struct {
	lits   []factor.Literal
	live   bool
	flatID int32
}

type modelGroup struct {
	head factor.VarID
	w    factor.WeightID
	sem  factor.Semantics
	gnds []*modelGnd
}

// model is the independent nested representation the harness trusts: it
// never touches the flat layout, so a bug that corrupts both the patched
// pools and the synthesized Group view cannot hide from it.
type model struct {
	evidence []bool
	evValue  []bool
	weights  []float64
	groups   []*modelGroup
}

func (m *model) clone() *model {
	c := &model{
		evidence: append([]bool(nil), m.evidence...),
		evValue:  append([]bool(nil), m.evValue...),
		weights:  append([]float64(nil), m.weights...),
	}
	for _, gr := range m.groups {
		ng := &modelGroup{head: gr.head, w: gr.w, sem: gr.sem}
		for _, gnd := range gr.gnds {
			ng.gnds = append(ng.gnds, &modelGnd{
				lits:   append([]factor.Literal(nil), gnd.lits...),
				live:   gnd.live,
				flatID: gnd.flatID,
			})
		}
		c.groups = append(c.groups, ng)
	}
	return c
}

// build rebuilds a compact reference graph from the model's live state.
func (m *model) build(t *testing.T) *factor.Graph {
	t.Helper()
	b := factor.NewBuilder()
	for v := range m.evidence {
		if m.evidence[v] {
			b.AddEvidenceVar(m.evValue[v])
		} else {
			b.AddVar()
		}
	}
	for _, w := range m.weights {
		b.AddWeight(w)
	}
	for _, gr := range m.groups {
		var gnds []factor.Grounding
		for _, gnd := range gr.gnds {
			if gnd.live {
				gnds = append(gnds, factor.Grounding{Lits: append([]factor.Literal(nil), gnd.lits...)})
			}
		}
		b.AddGroup(gr.head, gr.w, gr.sem, gnds)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatalf("reference rebuild failed: %v", err)
	}
	return g
}

func (m *model) liveRefs() (out [][2]int) {
	for gi, gr := range m.groups {
		for ni, gnd := range gr.gnds {
			if gnd.live {
				out = append(out, [2]int{gi, ni})
			}
		}
	}
	return out
}

var allSems = []factor.Semantics{factor.Linear, factor.Logical, factor.Ratio}

// seedModel builds the starting graph and its model, and stamps the
// initial flat ids (Build assigns them sequentially in group order).
func seedModel(rng *rand.Rand, t *testing.T) (*model, *factor.Graph) {
	m := &model{}
	nVars := 8 + rng.Intn(8)
	for i := 0; i < nVars; i++ {
		ev := rng.Intn(5) == 0
		m.evidence = append(m.evidence, ev)
		m.evValue = append(m.evValue, ev && rng.Intn(2) == 0)
	}
	nW := 2 + rng.Intn(4)
	for i := 0; i < nW; i++ {
		m.weights = append(m.weights, rng.Float64()*2-1)
	}
	nG := 4 + rng.Intn(8)
	for gi := 0; gi < nG; gi++ {
		gr := &modelGroup{
			head: factor.VarID(rng.Intn(nVars)),
			w:    factor.WeightID(rng.Intn(nW)),
			sem:  allSems[rng.Intn(3)],
		}
		for k := 0; k < 1+rng.Intn(3); k++ {
			gr.gnds = append(gr.gnds, &modelGnd{lits: randLits(rng, nVars), live: true})
		}
		m.groups = append(m.groups, gr)
	}
	var id int32
	for _, gr := range m.groups {
		for _, gnd := range gr.gnds {
			gnd.flatID = id
			id++
		}
	}
	return m, m.build(t)
}

func randLits(rng *rand.Rand, nVars int) []factor.Literal {
	var lits []factor.Literal
	for l := 0; l < 1+rng.Intn(3); l++ {
		lits = append(lits, factor.Literal{
			Var: factor.VarID(rng.Intn(nVars)),
			Neg: rng.Intn(3) == 0,
		})
	}
	return lits
}

// mutateStep applies 1..4 random update operations to both the patch and
// the model.
func mutateStep(rng *rand.Rand, p *factor.Patch, m *model) {
	ops := 1 + rng.Intn(4)
	for o := 0; o < ops; o++ {
		switch rng.Intn(6) {
		case 0: // new variable (sometimes evidence)
			v := p.AddVar()
			m.evidence = append(m.evidence, false)
			m.evValue = append(m.evValue, false)
			if rng.Intn(3) == 0 {
				val := rng.Intn(2) == 0
				p.SetEvidence(v, true, val)
				m.evidence[v] = true
				m.evValue[v] = val
			}
		case 1: // new weight
			val := rng.Float64()*2 - 1
			p.AddWeight(val)
			m.weights = append(m.weights, val)
		case 2: // new group with groundings (a new rule's ΔF)
			head := factor.VarID(rng.Intn(len(m.evidence)))
			w := factor.WeightID(rng.Intn(len(m.weights)))
			sem := allSems[rng.Intn(3)]
			gi := p.AddGroup(head, w, sem)
			gr := &modelGroup{head: head, w: w, sem: sem}
			m.groups = append(m.groups, gr)
			if gi != len(m.groups)-1 {
				panic(fmt.Sprintf("group index drift: patch %d model %d", gi, len(m.groups)-1))
			}
			for k := 0; k < 1+rng.Intn(3); k++ {
				lits := randLits(rng, len(m.evidence))
				id := p.AddGrounding(gi, lits)
				gr.gnds = append(gr.gnds, &modelGnd{lits: lits, live: true, flatID: id})
			}
		case 3: // new grounding in an existing group (modified ΔF)
			gi := rng.Intn(len(m.groups))
			lits := randLits(rng, len(m.evidence))
			id := p.AddGrounding(gi, lits)
			m.groups[gi].gnds = append(m.groups[gi].gnds, &modelGnd{lits: lits, live: true, flatID: id})
		case 4: // remove a live grounding (retracted derivation)
			refs := m.liveRefs()
			if len(refs) == 0 {
				continue
			}
			ref := refs[rng.Intn(len(refs))]
			gnd := m.groups[ref[0]].gnds[ref[1]]
			p.RemoveGrounding(gnd.flatID)
			gnd.live = false
		case 5: // supervision change on an existing variable
			v := factor.VarID(rng.Intn(len(m.evidence)))
			if m.evidence[v] && rng.Intn(2) == 0 {
				p.SetEvidence(v, false, false)
				m.evidence[v] = false
			} else {
				val := rng.Intn(2) == 0
				p.SetEvidence(v, true, val)
				m.evidence[v] = true
				m.evValue[v] = val
			}
		}
	}
}

// TestPatchDifferential is the headline harness: 8 seeds × 30 steps = 240
// randomized update steps, each asserting patched ≡ rebuilt, plus
// old-lineage preservation and periodic fixed-seed marginal agreement.
func TestPatchDifferential(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			m, g := seedModel(rng, t)
			for step := 0; step < 30; step++ {
				prevG, prevM := g, m.clone()

				p := factor.NewPatch(g)
				mutateStep(rng, p, m)
				g = p.Apply()

				ref := m.build(t)
				if diffs := factor.DiffGraphs(g, ref, 4, seed*1000+int64(step)); len(diffs) > 0 {
					t.Fatalf("seed %d step %d: patched != rebuilt:\n%s", seed, step, joinLines(diffs))
				}
				// The pre-patch graph must still present the old distribution.
				prevRef := prevM.build(t)
				if diffs := factor.DiffGraphs(prevG, prevRef, 2, seed*2000+int64(step)); len(diffs) > 0 {
					t.Fatalf("seed %d step %d: patch corrupted its base graph:\n%s", seed, step, joinLines(diffs))
				}
				// NewBuilderFrom over the patched graph must compact to the
				// same distribution (the synthesized nested view is what the
				// rebuild path and learn.freeCopy consume).
				compact := factor.NewBuilderFrom(g).MustBuild()
				if diffs := factor.DiffGraphs(g, compact, 2, seed*3000+int64(step)); len(diffs) > 0 {
					t.Fatalf("seed %d step %d: patched != NewBuilderFrom compaction:\n%s", seed, step, joinLines(diffs))
				}

				if step%10 == 9 {
					mp := gibbs.New(g, seed+99).Marginals(20, 400)
					mr := gibbs.New(ref, seed+99).Marginals(20, 400)
					for v := range mp {
						if math.Abs(mp[v]-mr[v]) > 0.02 {
							t.Fatalf("seed %d step %d var %d: fixed-seed marginal %v vs %v",
								seed, step, v, mp[v], mr[v])
						}
					}
				}
			}
			if frag := g.Fragmentation(); frag <= 0 {
				t.Fatalf("seed %d: expected fragmentation after 30 patch steps, got %v", seed, frag)
			}
		})
	}
}

func joinLines(xs []string) string {
	out := ""
	for _, x := range xs {
		out += "  " + x + "\n"
	}
	return out
}

// TestPatchBasics pins the small patch invariants the harness relies on.
func TestPatchBasics(t *testing.T) {
	b := factor.NewBuilder()
	v0 := b.AddVar()
	v1 := b.AddVar()
	w := b.AddWeight(0.5)
	b.AddGroup(v0, w, factor.Linear,
		[]factor.Grounding{{Lits: []factor.Literal{{Var: v1}}}})
	g := b.MustBuild()

	p := factor.NewPatch(g)
	v2 := p.AddVar()
	w2 := p.AddWeight(-1)
	gi := p.AddGroup(v2, w2, factor.Ratio)
	id := p.AddGrounding(gi, []factor.Literal{{Var: v0}, {Var: v1, Neg: true}})
	ng := p.Apply()

	if ng == g {
		t.Fatal("Apply returned the base graph")
	}
	if !ng.Patched() || g.Patched() {
		t.Fatal("Patched flags wrong")
	}
	if ng.NumVars() != 3 || ng.NumGroups() != 2 || ng.NumWeights() != 2 {
		t.Fatalf("patched dims: vars=%d groups=%d weights=%d", ng.NumVars(), ng.NumGroups(), ng.NumWeights())
	}
	if g.NumVars() != 2 || g.NumGroups() != 1 || g.NumGroundings() != 1 {
		t.Fatalf("base dims mutated: vars=%d groups=%d gnds=%d", g.NumVars(), g.NumGroups(), g.NumGroundings())
	}
	if ng.NumGroundings() != 2 {
		t.Fatalf("patched NumGroundings = %d, want 2", ng.NumGroundings())
	}
	// Adjacency picked up the new group for the old vars.
	if adj := ng.AdjacentGroups(v0); len(adj) != 2 {
		t.Fatalf("v0 adjacency after patch: %v", adj)
	}
	if adj := g.AdjacentGroups(v0); len(adj) != 1 {
		t.Fatalf("base v0 adjacency grew: %v", adj)
	}

	// Tombstone the patched-in grounding on a second patch.
	p2 := factor.NewPatch(ng)
	p2.RemoveGrounding(id)
	ng2 := p2.Apply()
	if ng2.NumGroundings() != 1 {
		t.Fatalf("after tombstone NumGroundings = %d, want 1", ng2.NumGroundings())
	}
	if ng.NumGroundings() != 2 {
		t.Fatalf("tombstone leaked into earlier epoch: %d", ng.NumGroundings())
	}
	if ng2.Fragmentation() <= 0 {
		t.Fatal("fragmentation not reported")
	}
	// The dead group contributes zero energy, like an empty group.
	assign := []bool{true, true, true}
	e2 := ng2.Energy(assign)
	eBase := g.Energy(assign[:2])
	if math.Abs(e2-eBase) > 1e-12 {
		t.Fatalf("energy after tombstone %v, want base %v", e2, eBase)
	}
}

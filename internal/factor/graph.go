package factor

import (
	"fmt"
	"math"
	"slices"
)

// VarID identifies a Boolean random variable in a Graph.
type VarID int32

// NoVar marks an absent variable reference.
const NoVar VarID = -1

// WeightID indexes the tied-weight table of a Graph. Weight tying
// (Section 2.3 of the paper) means many groups may share one WeightID.
type WeightID int32

// Literal is one body conjunct: a variable reference, possibly negated.
type Literal struct {
	Var VarID
	Neg bool
}

// Grounding is one grounding of a rule body: a conjunction of literals.
// It is satisfied in a world when every literal holds.
type Grounding struct {
	Lits []Literal
}

// Group is one grounded Boolean rule γ = (q, w): the head variable, the
// tied weight, the counting semantics, and all body groundings. The energy
// contribution of the group is w · sign(head) · g(#satisfied groundings).
//
// Group is the nested view of the graph. The Graph stores only the flat
// CSR encoding; Graph.Group synthesizes this view on demand from the flat
// pools, so it always reflects the live (non-tombstoned) groundings.
type Group struct {
	Head       VarID
	Weight     WeightID
	Sem        Semantics
	Groundings []Grounding
}

// bodyOcc is one (variable, grounding) co-occurrence record built by
// Build. gnd is the global grounding index (into the flat grounding
// space), so counter updates index State.unsat directly. The occurrence
// counts are stored indexed by the variable's value — n[0] counts
// positive literals (unsatisfied when v=false), n[1] negated literals
// (unsatisfied when v=true) — so the sweep kernels read the contribution
// under either candidate value as n[b2i(val)] with no branch.
type bodyOcc struct {
	group int32
	gnd   int32 // global grounding index
	n     [2]uint16
}

// b2i converts a bool to its array index (compiles to a register move —
// Go bools are 0/1 bytes).
func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// Graph is a grounded factor graph: variables, evidence assignments, tied
// weights, and rule groups. Build one through a Builder, or derive one
// from an existing graph in O(|Δ|) through a Patch.
//
// Internally Build freezes the structure into a flat CSR
// (compressed-sparse-row) layout — contiguous group attribute arrays, a
// grounding-offset array, a literal pool, and per-variable adjacency
// indexes — so sampling walks contiguous int32 arrays instead of chasing
// nested slices (the DimmWitted layout).
//
// A Patch extends the frozen layout without rewriting it: new groundings
// are appended to the pools and linked to their group (and to the
// adjacency rows of the variables they touch) through small per-row
// overflow slices, and removed groundings are tombstoned in an
// epoch-stamped deadAt array. Graphs along a patch lineage share the pool
// backing arrays; each graph's slice lengths and epoch delimit its own
// consistent view, so the pre-patch graph keeps evaluating the old
// distribution while the patched graph evaluates the new one.
type Graph struct {
	numVars  int
	evidence []bool // per variable: value is fixed
	evValue  []bool // fixed value (meaningful when evidence)
	weights  []float64

	// Flat per-group attribute arrays.
	groupHead   []int32
	groupWeight []int32
	groupSem    []Semantics

	// Grounding and literal pools. Group g's frozen groundings are the
	// global grounding indices [gndOff[g], gndOff[g+1]); grounding k's
	// literals are lits[litOff[k]:litOff[k+1]], encoded var<<1|neg.
	// Patched-in groundings live at pool positions past the frozen region
	// and are reached through gndExtra instead of gndOff.
	gndOff []int32
	litOff []int32
	lits   []int32

	// Per-variable adjacency, CSR: v's body occurrence records (ascending
	// group order, contiguous per group) and the deduplicated union of
	// head and body groups (ascending). Patched-in entries live in the
	// bodyExtra/adjExtra overflow rows.
	bodyOff   []int32
	bodyRecs  []bodyOcc
	adjOff    []int32
	adjGroups []int32

	// Table-driven semantics: group gi's g(n) values are precomputed at
	// semTab[semOff[gi] + n] for n in [0, max support of gi]. The support
	// of a group is bounded by its grounding count, so the table replaces
	// the per-evaluation Semantics.G switch (and Ratio's log1p) with one
	// indexed load in every hot evaluator.
	semOff []int32
	semTab []float64

	// Markov-blanket adjacency, CSR: variable v's neighbors — every other
	// variable sharing at least one group with v — are
	// nbrs[nbrOff[v]:nbrOff[v+1]], deduplicated, ascending, self excluded.
	// A flip of v can change the cached conditional of exactly these
	// variables, so the conditional caches invalidate along these rows.
	// Patched-in couplings live in the nbrExtra overflow rows.
	nbrOff   []int32
	nbrs     []int32
	nbrExtra [][]int32

	// weightGen counts weight mutations (SetWeight, SetWeights,
	// NoteWeightsChanged). Conditional caches compare it against the value
	// they were filled under and bulk-invalidate on mismatch, so weight
	// updates during learning can never serve a stale conditional.
	weightGen uint64

	nGnd int // grounding pool size (live + tombstoned)

	// Patch state (zero on freshly built graphs); see Patch.
	epoch     int32       // patch generation of this view
	deadAt    []int32     // per grounding: epoch that tombstoned it (0 = live)
	gndExtra  [][]int32   // per group: overflow grounding ids (nil = none)
	bodyExtra [][]bodyOcc // per var: overflow occurrence records
	adjExtra  [][]int32   // per var: overflow adjacent group ids
	nDead     int         // tombstoned groundings visible at this epoch
	nExtra    int         // groundings living in overflow rows
}

// NumVars returns the number of variables.
func (g *Graph) NumVars() int { return g.numVars }

// NumGroups returns the number of rule groups.
func (g *Graph) NumGroups() int { return len(g.groupHead) }

// NumGroundings returns the live grounding (factor) count, the paper's
// "# factors". Tombstoned groundings are excluded.
func (g *Graph) NumGroundings() int { return g.nGnd - g.nDead }

// NumWeights returns the size of the tied-weight table.
func (g *Graph) NumWeights() int { return len(g.weights) }

// Patched reports whether this graph was derived through a Patch (rather
// than frozen directly by a Builder).
func (g *Graph) Patched() bool { return g.epoch > 0 }

// Fragmentation returns the fraction of the grounding pool that costs the
// evaluators extra work: tombstoned groundings (dead weight in the frozen
// CSR rows) plus overflow groundings (reached through per-row indirection
// instead of the contiguous ranges). Callers compact by rebuilding —
// NewBuilderFrom(g).Build() — when this crosses their threshold.
func (g *Graph) Fragmentation() float64 {
	if g.nGnd == 0 { // patched-in groundings count toward nGnd, so the pool is truly empty
		return 0
	}
	return float64(g.nDead+g.nExtra) / float64(g.nGnd)
}

// gndLive reports whether grounding k is visible at this graph's epoch.
// Tombstones written by later patches in the lineage carry later epochs
// and are ignored.
func (g *Graph) gndLive(k int32) bool {
	if g.deadAt == nil {
		return true
	}
	d := g.deadAt[k]
	return d == 0 || d > g.epoch
}

// extraGnds returns group gi's overflow grounding ids (nil when none).
func (g *Graph) extraGnds(gi int32) []int32 {
	if g.gndExtra == nil {
		return nil
	}
	return g.gndExtra[gi]
}

// eachLiveGnd calls f for every live grounding of group gi, frozen range
// first, then overflow. Non-hot-path helper; the samplers use the manual
// loops in groupSupport/shardSupport instead.
func (g *Graph) eachLiveGnd(gi int32, f func(k int32)) {
	for k := g.gndOff[gi]; k < g.gndOff[gi+1]; k++ {
		if g.gndLive(k) {
			f(k)
		}
	}
	for _, k := range g.extraGnds(gi) {
		if g.gndLive(k) {
			f(k)
		}
	}
}

// Group synthesizes the nested view of group i from the flat pools (live
// groundings only). The returned value is a fresh copy; mutating it does
// not affect the graph.
func (g *Graph) Group(i int) *Group {
	gr := &Group{
		Head:   VarID(g.groupHead[i]),
		Weight: WeightID(g.groupWeight[i]),
		Sem:    g.groupSem[i],
	}
	g.eachLiveGnd(int32(i), func(k int32) {
		lits := make([]Literal, 0, g.litOff[k+1]-g.litOff[k])
		for li := g.litOff[k]; li < g.litOff[k+1]; li++ {
			l := g.lits[li]
			lits = append(lits, Literal{Var: VarID(l >> 1), Neg: l&1 == 1})
		}
		gr.Groundings = append(gr.Groundings, Grounding{Lits: lits})
	})
	return gr
}

// GroupWeight returns group i's tied weight id without synthesizing the
// nested view (Group allocates the full grounding list; callers that only
// need attributes should use this or GroupHead).
func (g *Graph) GroupWeight(i int) WeightID { return WeightID(g.groupWeight[i]) }

// GroupHead returns group i's head variable.
func (g *Graph) GroupHead(i int) VarID { return VarID(g.groupHead[i]) }

// Weight returns the current value of weight w.
func (g *Graph) Weight(w WeightID) float64 { return g.weights[w] }

// SetWeight assigns weight w. States derived from the graph observe the
// change immediately (weights are read at evaluation time; cached
// conditionals are invalidated through the weight generation).
func (g *Graph) SetWeight(w WeightID, v float64) {
	g.weights[w] = v
	g.weightGen++
}

// Weights returns the live weight slice (shared, not a copy).
func (g *Graph) Weights() []float64 { return g.weights }

// SetWeights replaces all weight values. len(vals) must match NumWeights.
func (g *Graph) SetWeights(vals []float64) {
	if len(vals) != len(g.weights) {
		panic(fmt.Sprintf("factor: SetWeights got %d values, want %d", len(vals), len(g.weights)))
	}
	copy(g.weights, vals)
	g.weightGen++
}

// WeightGeneration returns the weight mutation counter. Conditional
// caches (State, gibbs.ParallelSampler) record it at fill time and
// bulk-invalidate when it moves.
func (g *Graph) WeightGeneration() uint64 { return g.weightGen }

// NoteWeightsChanged bumps the weight generation without changing any
// value. Call it after mutating weight storage behind the graph's back —
// the replica learner steps the caller-owned vector a WeightView is bound
// to directly, which SetWeight(s) never sees.
func (g *Graph) NoteWeightsChanged() { g.weightGen++ }

// semVal returns the precomputed g(n) of group gi.
func (g *Graph) semVal(gi int32, n int) float64 { return g.semTab[int(g.semOff[gi])+n] }

// Neighbors calls f for every variable sharing at least one group with v
// (v's Markov blanket), frozen CSR row first (ascending), then patched-in
// overflow entries.
func (g *Graph) Neighbors(v VarID, f func(VarID)) {
	for _, u := range g.nbrs[g.nbrOff[v]:g.nbrOff[v+1]] {
		f(VarID(u))
	}
	if g.nbrExtra != nil {
		for _, u := range g.nbrExtra[v] {
			f(VarID(u))
		}
	}
}

// WeightView returns a graph that shares every structural array with g —
// the CSR pools, adjacency rows, evidence tables, and patch state — but
// reads weight values from the caller-owned weights slice instead of g's.
// This is the replica engine's model-copy primitive: per-worker learners
// mutate their private vector freely while all views keep evaluating over
// one immutable pool lineage. len(weights) must match NumWeights.
//
// The view is a read-only alias of g's structure: do not patch it, and do
// not call SetEvidence on it (evidence arrays are shared with g).
func (g *Graph) WeightView(weights []float64) *Graph {
	if len(weights) != len(g.weights) {
		panic(fmt.Sprintf("factor: WeightView got %d weights, want %d", len(weights), len(g.weights)))
	}
	ng := *g
	ng.weights = weights
	return &ng
}

// GroupVars calls f for group gi's head and for every variable of each
// live grounding, reading the CSR pools directly — no nested-view
// synthesis, no allocation. Variables referenced more than once are
// reported more than once.
func (g *Graph) GroupVars(gi int32, f func(VarID)) {
	f(VarID(g.groupHead[gi]))
	g.eachLiveGnd(gi, func(k int32) {
		for li := g.litOff[k]; li < g.litOff[k+1]; li++ {
			f(VarID(g.lits[li] >> 1))
		}
	})
}

// IsEvidence reports whether v has a fixed value.
func (g *Graph) IsEvidence(v VarID) bool { return g.evidence[v] }

// EvidenceValue returns the fixed value of an evidence variable.
func (g *Graph) EvidenceValue(v VarID) bool { return g.evValue[v] }

// SetEvidence fixes (or, with ev=false, releases) the value of a variable.
// Used by supervision-rule updates; States must be rebuilt or re-synced
// afterwards.
func (g *Graph) SetEvidence(v VarID, ev bool, val bool) {
	g.evidence[v] = ev
	g.evValue[v] = val
}

// AdjacentGroups returns the indices of every group variable v touches
// (as head or in a body), deduplicated. The frozen entries come first in
// ascending order, followed by patched-in entries in patch order.
func (g *Graph) AdjacentGroups(v VarID) []int32 {
	out := append([]int32(nil), g.adjGroups[g.adjOff[v]:g.adjOff[v+1]]...)
	if g.adjExtra != nil {
		out = append(out, g.adjExtra[v]...)
	}
	return out
}

// gndSatisfied reports whether grounding k holds under assign.
func (g *Graph) gndSatisfied(k int32, assign []bool) bool {
	for li := g.litOff[k]; li < g.litOff[k+1]; li++ {
		l := g.lits[li]
		if assign[l>>1] == (l&1 == 1) {
			return false
		}
	}
	return true
}

// groupSupport counts the satisfied live groundings of group gi under
// assign (frozen range plus overflow, tombstones skipped).
func (g *Graph) groupSupport(gi int32, assign []bool) int {
	n := 0
	for k := g.gndOff[gi]; k < g.gndOff[gi+1]; k++ {
		if g.gndLive(k) && g.gndSatisfied(k, assign) {
			n++
		}
	}
	if g.gndExtra != nil {
		for _, k := range g.gndExtra[gi] {
			if g.gndLive(k) && g.gndSatisfied(k, assign) {
				n++
			}
		}
	}
	return n
}

// groupEnergy evaluates one group's energy from scratch under assign,
// walking the flat literal pool.
func (g *Graph) groupEnergy(gi int32, assign []bool) float64 {
	n := g.groupSupport(gi, assign)
	sign := -1.0
	if assign[g.groupHead[gi]] {
		sign = 1.0
	}
	return g.weights[g.groupWeight[gi]] * sign * g.semVal(gi, n)
}

// Energy computes Ŵ(F, I) = Σ_γ w(γ, I) from scratch for the complete
// assignment. Used by the strawman materialization and for testing; Gibbs
// uses incremental support counters instead.
func (g *Graph) Energy(assign []bool) float64 {
	if len(assign) != g.numVars {
		panic(fmt.Sprintf("factor: Energy got %d assignments, want %d", len(assign), g.numVars))
	}
	var e float64
	for gi := range g.groupHead {
		e += g.groupEnergy(int32(gi), assign)
	}
	return e
}

// EnergyOfGroups evaluates only the listed groups under assign. Incremental
// Metropolis-Hastings uses this to score the changed factors ΔF without
// touching the rest of the graph (Section 3.2.2).
func (g *Graph) EnergyOfGroups(assign []bool, groups []int32) float64 {
	var e float64
	for _, gi := range groups {
		e += g.groupEnergy(gi, assign)
	}
	return e
}

// PairAdjacency returns, for each unordered variable pair co-occurring in
// some group (head-body or body-body within a grounding, plus head with
// every body var of the group), a flattened n×n boolean pattern. This is
// the NZ set of Algorithm 1. The diagonal is set. Only call on small
// graphs (the variational approach runs it per decomposition component).
func (g *Graph) PairAdjacency() []bool {
	n := g.numVars
	pat := make([]bool, n*n)
	mark := func(a, b VarID) {
		pat[int(a)*n+int(b)] = true
		pat[int(b)*n+int(a)] = true
	}
	for i := 0; i < n; i++ {
		pat[i*n+i] = true
	}
	for gi := range g.groupHead {
		head := VarID(g.groupHead[gi])
		g.eachLiveGnd(int32(gi), func(k int32) {
			lits := g.lits[g.litOff[k]:g.litOff[k+1]]
			for ai, la := range lits {
				va := VarID(la >> 1)
				mark(head, va)
				for _, lb := range lits[ai+1:] {
					mark(va, VarID(lb>>1))
				}
			}
		})
	}
	return pat
}

// MarginalOfIsolated computes the exact marginal of a variable whose
// adjacent groups reference no other free variables, by direct evaluation
// of the two worlds. Returns NaN when the variable is not isolated in that
// sense. Used in tests and calibration checks.
func (g *Graph) MarginalOfIsolated(v VarID, assign []bool) float64 {
	adj := g.AdjacentGroups(v)
	for _, gi := range adj {
		if h := VarID(g.groupHead[gi]); h != v && !g.evidence[h] {
			return math.NaN()
		}
		free := false
		g.eachLiveGnd(gi, func(k int32) {
			for li := g.litOff[k]; li < g.litOff[k+1]; li++ {
				if u := VarID(g.lits[li] >> 1); u != v && !g.evidence[u] {
					free = true
				}
			}
		})
		if free {
			return math.NaN()
		}
	}
	work := make([]bool, len(assign))
	copy(work, assign)
	work[v] = true
	e1 := g.EnergyOfGroups(work, adj)
	work[v] = false
	e0 := g.EnergyOfGroups(work, adj)
	return 1 / (1 + math.Exp(e0-e1))
}

// Builder accumulates variables, weights, and groups, then freezes them
// into a Graph. The zero value is ready to use.
type Builder struct {
	evidence []bool
	evValue  []bool
	weights  []float64
	groups   []Group
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder { return &Builder{} }

// NewBuilderFrom seeds a Builder with a deep copy of an existing graph's
// live structure, so incremental updates can extend it (ΔV, ΔF) and
// rebuild. On a patched graph this is the compaction path: tombstoned
// groundings are dropped and overflow rows fold back into contiguous CSR
// ranges.
func NewBuilderFrom(g *Graph) *Builder {
	b := &Builder{
		evidence: append([]bool(nil), g.evidence...),
		evValue:  append([]bool(nil), g.evValue...),
		weights:  append([]float64(nil), g.weights...),
		groups:   make([]Group, g.NumGroups()),
	}
	for i := range b.groups {
		b.groups[i] = *g.Group(i) // synthesized views are already deep copies
	}
	return b
}

// AddVar registers a new free variable and returns its id.
func (b *Builder) AddVar() VarID {
	b.evidence = append(b.evidence, false)
	b.evValue = append(b.evValue, false)
	return VarID(len(b.evidence) - 1)
}

// AddEvidenceVar registers a new evidence variable fixed to val.
func (b *Builder) AddEvidenceVar(val bool) VarID {
	b.evidence = append(b.evidence, true)
	b.evValue = append(b.evValue, val)
	return VarID(len(b.evidence) - 1)
}

// SetEvidence marks an existing variable as evidence with the given value.
func (b *Builder) SetEvidence(v VarID, val bool) {
	b.evidence[v] = true
	b.evValue[v] = val
}

// ClearEvidence releases an evidence variable back to a free variable.
func (b *Builder) ClearEvidence(v VarID) { b.evidence[v] = false }

// NumVars returns the number of variables added so far.
func (b *Builder) NumVars() int { return len(b.evidence) }

// AddWeight registers a weight with an initial value and returns its id.
func (b *Builder) AddWeight(v float64) WeightID {
	b.weights = append(b.weights, v)
	return WeightID(len(b.weights) - 1)
}

// NumWeights returns the number of weights added so far.
func (b *Builder) NumWeights() int { return len(b.weights) }

// AddGroup appends a rule group. Groundings are retained, not copied.
func (b *Builder) AddGroup(head VarID, w WeightID, sem Semantics, groundings []Grounding) int {
	b.groups = append(b.groups, Group{Head: head, Weight: w, Sem: sem, Groundings: groundings})
	return len(b.groups) - 1
}

// Build validates the accumulated structure and freezes it into a Graph:
// the nested groups are flattened into the CSR layout (literal pool,
// grounding offsets, group attribute arrays) and the per-variable
// adjacency indexes are built. The nested view is not retained; Graph.Group
// synthesizes it back from the flat pools on demand.
func (b *Builder) Build() (*Graph, error) {
	n := len(b.evidence)
	nG := len(b.groups)
	g := &Graph{
		numVars:     n,
		evidence:    b.evidence,
		evValue:     b.evValue,
		weights:     b.weights,
		groupHead:   make([]int32, nG),
		groupWeight: make([]int32, nG),
		groupSem:    make([]Semantics, nG),
		gndOff:      make([]int32, nG+1),
	}

	// Pass 1: validate and size the pools.
	totalGnd, totalLit := 0, 0
	for gi := range b.groups {
		gr := &b.groups[gi]
		if gr.Head < 0 || int(gr.Head) >= n {
			return nil, fmt.Errorf("factor: group %d head %d out of range [0,%d)", gi, gr.Head, n)
		}
		if gr.Weight < 0 || int(gr.Weight) >= len(g.weights) {
			return nil, fmt.Errorf("factor: group %d weight %d out of range [0,%d)", gi, gr.Weight, len(g.weights))
		}
		totalGnd += len(gr.Groundings)
		for gndi, gnd := range gr.Groundings {
			for _, lit := range gnd.Lits {
				if lit.Var < 0 || int(lit.Var) >= n {
					return nil, fmt.Errorf("factor: group %d grounding %d references var %d out of range [0,%d)", gi, gndi, lit.Var, n)
				}
			}
			totalLit += len(gnd.Lits)
		}
	}
	g.nGnd = totalGnd
	g.litOff = make([]int32, totalGnd+1)
	g.lits = make([]int32, 0, totalLit)

	// Pass 2: fill the pools and accumulate per-variable adjacency plus the
	// Markov-blanket neighbor rows (every pair of variables co-occurring in
	// a group, head included).
	bodyTmp := make([][]bodyOcc, n)
	adjTmp := make([][]int32, n)
	nbrTmp := make([][]int32, n)
	groupMark := make([]int32, n) // stamp = group index + 1
	var groupVars []int32         // distinct variables of the current group
	addAdj := func(v VarID, gi int32) {
		a := adjTmp[v]
		if len(a) == 0 || a[len(a)-1] != gi {
			adjTmp[v] = append(a, gi)
		}
	}
	type occKey struct {
		v   VarID
		gnd int32
	}
	var gk int32 // global grounding index
	for gi := range b.groups {
		gr := &b.groups[gi]
		g.groupHead[gi] = int32(gr.Head)
		g.groupWeight[gi] = int32(gr.Weight)
		g.groupSem[gi] = gr.Sem
		g.gndOff[gi] = gk
		addAdj(gr.Head, int32(gi))
		groupVars = groupVars[:0]
		stamp := int32(gi) + 1
		markVar := func(v int32) {
			if groupMark[v] != stamp {
				groupMark[v] = stamp
				groupVars = append(groupVars, v)
			}
		}
		markVar(int32(gr.Head))
		// Collect per-(var, grounding) occurrence counts.
		occ := make(map[occKey]*bodyOcc)
		var order []occKey
		for _, gnd := range gr.Groundings {
			g.litOff[gk] = int32(len(g.lits))
			for _, lit := range gnd.Lits {
				enc := int32(lit.Var) << 1
				if lit.Neg {
					enc |= 1
				}
				g.lits = append(g.lits, enc)
				markVar(int32(lit.Var))
				k := occKey{lit.Var, gk}
				o := occ[k]
				if o == nil {
					o = &bodyOcc{group: int32(gi), gnd: gk}
					occ[k] = o
					order = append(order, k)
				}
				if lit.Neg {
					o.n[1]++
				} else {
					o.n[0]++
				}
			}
			gk++
		}
		for _, k := range order {
			bodyTmp[k.v] = append(bodyTmp[k.v], *occ[k])
			addAdj(k.v, int32(gi))
		}
		for i, a := range groupVars {
			for _, c := range groupVars[i+1:] {
				nbrTmp[a] = append(nbrTmp[a], c)
				nbrTmp[c] = append(nbrTmp[c], a)
			}
		}
	}
	g.gndOff[nG] = gk
	g.litOff[gk] = int32(len(g.lits))

	// Semantics lookup tables: one row of g(0..count) per group.
	g.semOff = make([]int32, nG)
	g.semTab = make([]float64, 0, totalGnd+nG)
	for gi := 0; gi < nG; gi++ {
		g.semOff[gi] = int32(len(g.semTab))
		cnt := int(g.gndOff[gi+1] - g.gndOff[gi])
		sem := g.groupSem[gi]
		for sup := 0; sup <= cnt; sup++ {
			g.semTab = append(g.semTab, sem.G(sup))
		}
	}

	for v := range nbrTmp {
		nbrTmp[v] = sortDedupInt32(nbrTmp[v])
	}
	g.nbrOff, g.nbrs = flattenInt32(nbrTmp)

	g.adjOff, g.adjGroups = flattenInt32(adjTmp)
	total := 0
	for _, recs := range bodyTmp {
		total += len(recs)
	}
	g.bodyOff = make([]int32, n+1)
	g.bodyRecs = make([]bodyOcc, 0, total)
	for v, recs := range bodyTmp {
		g.bodyOff[v] = int32(len(g.bodyRecs))
		g.bodyRecs = append(g.bodyRecs, recs...)
	}
	g.bodyOff[n] = int32(len(g.bodyRecs))
	return g, nil
}

// sortDedupInt32 sorts a row ascending and drops duplicates in place.
func sortDedupInt32(row []int32) []int32 {
	slices.Sort(row)
	return slices.Compact(row)
}

// flattenInt32 packs per-row slices into one CSR offset/value pair.
func flattenInt32(rows [][]int32) (off, flat []int32) {
	total := 0
	for _, r := range rows {
		total += len(r)
	}
	off = make([]int32, len(rows)+1)
	flat = make([]int32, 0, total)
	for i, r := range rows {
		off[i] = int32(len(flat))
		flat = append(flat, r...)
	}
	off[len(rows)] = int32(len(flat))
	return off, flat
}

// MustBuild is Build that panics on error; for tests and generators whose
// inputs are known valid by construction.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

package factor

import (
	"fmt"
	"math"
)

// State is one mutable possible world over a Graph: a full assignment plus
// incrementally maintained support counters (per-grounding unsatisfied
// literal counts and per-group satisfied-grounding counts). The counters
// live in flat arrays indexed by the graph's global grounding indices, so
// a Gibbs flip touches contiguous memory. Multiple States may share one
// Graph; a State is not safe for concurrent use (gibbs.ParallelSampler
// shards work across its own worker-local evaluation instead).
type State struct {
	G      *Graph
	Assign []bool

	unsat []uint16 // per global grounding index: # unsatisfied literals
	sat   []int32  // per group: # satisfied groundings
}

// NewState builds a State with every free variable false and evidence
// variables at their fixed values.
func NewState(g *Graph) *State {
	assign := make([]bool, g.numVars)
	for v := 0; v < g.numVars; v++ {
		if g.evidence[v] {
			assign[v] = g.evValue[v]
		}
	}
	return NewStateWith(g, assign)
}

// NewStateWith builds a State from an explicit assignment. Evidence
// variables are forced to their fixed values regardless of assign.
func NewStateWith(g *Graph, assign []bool) *State {
	if len(assign) != g.numVars {
		panic(fmt.Sprintf("factor: NewStateWith got %d assignments, want %d", len(assign), g.numVars))
	}
	s := &State{
		G:      g,
		Assign: append([]bool(nil), assign...),
		unsat:  make([]uint16, g.nGnd),
		sat:    make([]int32, g.NumGroups()),
	}
	for v := 0; v < g.numVars; v++ {
		if g.evidence[v] {
			s.Assign[v] = g.evValue[v]
		}
	}
	s.Recount()
	return s
}

// Recount rebuilds all support counters from the current assignment.
// Needed after evidence changes on the shared Graph.
//
// Tombstoned groundings get a permanent +1 floor on their unsatisfied
// count: flips adjust the counter relatively (u − now + after), so a
// floored counter can never reach zero and the dead grounding never
// contributes to a group's support — with no per-flip liveness check.
func (s *State) Recount() {
	g := s.G
	if len(s.unsat) != g.nGnd {
		s.unsat = make([]uint16, g.nGnd)
	}
	if len(s.sat) != g.NumGroups() {
		s.sat = make([]int32, g.NumGroups())
	}
	for gi := range g.groupHead {
		var sat int32
		for k := g.gndOff[gi]; k < g.gndOff[gi+1]; k++ {
			sat += s.recountGnd(k)
		}
		if g.gndExtra != nil {
			for _, k := range g.gndExtra[gi] {
				sat += s.recountGnd(k)
			}
		}
		s.sat[gi] = sat
	}
}

// recountGnd refreshes the unsatisfied-literal counter of grounding k and
// reports 1 when it counts toward its group's support.
func (s *State) recountGnd(k int32) int32 {
	g := s.G
	var u uint16
	for li := g.litOff[k]; li < g.litOff[k+1]; li++ {
		l := g.lits[li]
		if s.Assign[l>>1] == (l&1 == 1) {
			u++
		}
	}
	if !g.gndLive(k) {
		s.unsat[k] = u + 1 // tombstone floor: never satisfiable
		return 0
	}
	s.unsat[k] = u
	if u == 0 {
		return 1
	}
	return 0
}

// Support returns the current satisfied-grounding count of group gi.
func (s *State) Support(gi int) int { return int(s.sat[gi]) }

// Energy returns the total energy of the current world, computed from the
// maintained counters (O(#groups)).
func (s *State) Energy() float64 {
	var e float64
	g := s.G
	for gi := range g.groupHead {
		sign := -1.0
		if s.Assign[g.groupHead[gi]] {
			sign = 1.0
		}
		e += g.weights[g.groupWeight[gi]] * sign * g.groupSem[gi].G(int(s.sat[gi]))
	}
	return e
}

// supportRun returns the satisfied count of group gi if variable v (whose
// current value is cur and whose occurrence records for this group are
// run) were set to val, leaving all other variables at their values.
func (s *State) supportRun(gi int32, run []bodyOcc, cur, val bool) int32 {
	n := s.sat[gi]
	if cur == val {
		return n
	}
	for _, occ := range run {
		u := s.unsat[occ.gnd]
		// Contribution of v's literals to the unsat count now and after.
		var now, after uint16
		if cur {
			now = occ.nNeg
		} else {
			now = occ.nPos
		}
		if val {
			after = occ.nNeg
		} else {
			after = occ.nPos
		}
		uAfter := u - now + after
		if u == 0 && uAfter != 0 {
			n--
		} else if u != 0 && uAfter == 0 {
			n++
		}
	}
	return n
}

// EnergyDelta returns E(v=true) − E(v=false) conditioned on the rest of
// the current assignment. This is the quantity Gibbs needs:
// P(v=1 | rest) = sigmoid(EnergyDelta(v)).
//
// The walk is a single merged pass over v's deduplicated adjacency and its
// body occurrence records (both ascending by group, records contiguous per
// group), using the maintained counters for O(occurrences of v) work.
// Variables with patched-in adjacency (overflow rows) fall back to direct
// evaluation over the flat layout — such variables are Δ-sized after a
// patch, so the counter fast path still covers the untouched bulk.
func (s *State) EnergyDelta(v VarID) float64 {
	g := s.G
	if (g.bodyExtra != nil && g.bodyExtra[v] != nil) || (g.adjExtra != nil && g.adjExtra[v] != nil) {
		return g.EnergyDeltaOf(s.Assign, v)
	}
	cur := s.Assign[v]
	recs := g.bodyRecs[g.bodyOff[v]:g.bodyOff[v+1]]
	ri := 0
	var delta float64
	for _, gi := range g.adjGroups[g.adjOff[v]:g.adjOff[v+1]] {
		start := ri
		for ri < len(recs) && recs[ri].group == gi {
			ri++
		}
		run := recs[start:ri]
		n1 := s.supportRun(gi, run, cur, true)
		n0 := s.supportRun(gi, run, cur, false)
		w := g.weights[g.groupWeight[gi]]
		sem := g.groupSem[gi]
		if g.groupHead[gi] == int32(v) {
			// Head group: sign flips with v. If v also appears in the body,
			// the run handles the count under each value.
			// E(v=1) = +w·g(n1); E(v=0) = −w·g(n0) ⇒ diff = w·(g(n1)+g(n0)).
			delta += w * (sem.G(int(n1)) + sem.G(int(n0)))
		} else {
			// Body-only group: sign fixed by the head's current value.
			sign := -1.0
			if s.Assign[g.groupHead[gi]] {
				sign = 1.0
			}
			delta += w * sign * (sem.G(int(n1)) - sem.G(int(n0)))
		}
	}
	return delta
}

// CondProb returns P(v = true | rest of assignment).
func (s *State) CondProb(v VarID) float64 {
	return 1 / (1 + math.Exp(-s.EnergyDelta(v)))
}

// Set assigns variable v to val, updating support counters incrementally.
// Setting an evidence variable panics.
func (s *State) Set(v VarID, val bool) {
	if s.G.evidence[v] {
		panic(fmt.Sprintf("factor: Set on evidence variable %d", v))
	}
	s.setAny(v, val)
}

// setAny performs the flip without the evidence guard (used by SyncEvidence).
func (s *State) setAny(v VarID, val bool) {
	cur := s.Assign[v]
	if cur == val {
		return
	}
	s.Assign[v] = val
	g := s.G
	for _, occ := range g.bodyRecs[g.bodyOff[v]:g.bodyOff[v+1]] {
		s.applyOcc(occ, cur, val)
	}
	if g.bodyExtra != nil {
		for _, occ := range g.bodyExtra[v] {
			s.applyOcc(occ, cur, val)
		}
	}
}

// applyOcc folds one occurrence record of a v flip (cur → val) into the
// support counters.
func (s *State) applyOcc(occ bodyOcc, cur, val bool) {
	u := s.unsat[occ.gnd]
	var now, after uint16
	if cur {
		now = occ.nNeg
	} else {
		now = occ.nPos
	}
	if val {
		after = occ.nNeg
	} else {
		after = occ.nPos
	}
	uAfter := u - now + after
	if uAfter != u {
		s.unsat[occ.gnd] = uAfter
		if u == 0 && uAfter != 0 {
			s.sat[occ.group]--
		} else if u != 0 && uAfter == 0 {
			s.sat[occ.group]++
		}
	}
}

// SyncEvidence re-reads evidence flags/values from the shared Graph and
// forces evidence variables to their fixed values, updating counters.
func (s *State) SyncEvidence() {
	for v := 0; v < s.G.numVars; v++ {
		if s.G.evidence[v] && s.Assign[v] != s.G.evValue[v] {
			s.setAny(VarID(v), s.G.evValue[v])
		}
	}
}

// CopyAssignment copies the current assignment into dst (allocating when
// dst is too small) and returns it.
func (s *State) CopyAssignment(dst []bool) []bool {
	if cap(dst) < len(s.Assign) {
		dst = make([]bool, len(s.Assign))
	}
	dst = dst[:len(s.Assign)]
	copy(dst, s.Assign)
	return dst
}

// SetAssignment overwrites the whole assignment (respecting evidence) and
// recounts. Used when adopting a proposal world wholesale.
func (s *State) SetAssignment(assign []bool) {
	if len(assign) != s.G.numVars {
		panic(fmt.Sprintf("factor: SetAssignment got %d values, want %d", len(assign), s.G.numVars))
	}
	copy(s.Assign, assign)
	for v := 0; v < s.G.numVars; v++ {
		if s.G.evidence[v] {
			s.Assign[v] = s.G.evValue[v]
		}
	}
	s.Recount()
}

// WeightStats accumulates, for each weight id, the statistic
// Σ_groups sign(head)·g(n) of the current world into out. This is the
// sufficient statistic for maximum-likelihood weight learning:
// ∂ log Pr[I] / ∂w_k = stat_k(I) − E[stat_k]. len(out) must be NumWeights.
func (s *State) WeightStats(out []float64) {
	g := s.G
	if len(out) != len(g.weights) {
		panic(fmt.Sprintf("factor: WeightStats got %d slots, want %d", len(out), len(g.weights)))
	}
	for gi := range g.groupHead {
		sign := -1.0
		if s.Assign[g.groupHead[gi]] {
			sign = 1.0
		}
		out[g.groupWeight[gi]] += sign * g.groupSem[gi].G(int(s.sat[gi]))
	}
}

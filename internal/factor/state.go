package factor

import (
	"fmt"
	"math"
)

// occDelta is the per-occurrence scratch record the fused sweep kernel
// fills while computing a conditional: the grounding's current unsatisfied
// count and its value under either candidate assignment of the variable.
// If the kernel's caller then applies a flip, the new counter values are
// already here — no second walk over the occurrence records.
type occDelta struct {
	u, uT, uF uint16
}

// State is one mutable possible world over a Graph: a full assignment plus
// incrementally maintained support counters (per-grounding unsatisfied
// literal counts and per-group satisfied-grounding counts). The counters
// live in flat arrays indexed by the graph's global grounding indices, so
// a Gibbs flip touches contiguous memory. Multiple States may share one
// Graph; a State is not safe for concurrent use (gibbs.ParallelSampler
// shards work across its own worker-local evaluation instead).
//
// On top of the counters the State memoizes conditionals: each variable's
// last EnergyDelta (and its sigmoid) stays valid until a variable in its
// Markov blanket flips — a flip invalidates exactly the flipped variable's
// neighbor row of the graph's blanket CSR. Near convergence, where most
// resamples keep the current value, a sweep then skips both the adjacency
// walk and the math.Exp for most variables. The cache is bitwise
// transparent: a hit returns exactly the float64 a recomputation would
// produce, so chains are bit-for-bit identical with the cache on or off.
// Weight changes invalidate in bulk, either automatically through the
// graph's weight generation (SetWeight/SetWeights) or explicitly through
// InvalidateConditionals when weights are mutated behind the graph's back.
type State struct {
	G      *Graph
	Assign []bool

	unsat []uint16 // per global grounding index: # unsatisfied literals
	sat   []int32  // per group: # satisfied groundings

	// Markov-blanket conditional cache. An entry is valid when
	// cStamp[v] == stamp; sigOK marks entries whose sigmoid has also been
	// materialized. stamp starts at 1 so zeroed entries are invalid, and
	// bulk invalidation is one increment.
	cDelta  []float64
	cSig    []float64
	sigOK   []bool
	cStamp  []uint32
	stamp   uint32
	wgen    uint64 // graph weight generation the cache was filled under
	noCache bool

	scratch []occDelta // fused-kernel transition buffer, grown once
}

// NewState builds a State with every free variable false and evidence
// variables at their fixed values.
func NewState(g *Graph) *State {
	assign := make([]bool, g.numVars)
	for v := 0; v < g.numVars; v++ {
		if g.evidence[v] {
			assign[v] = g.evValue[v]
		}
	}
	return NewStateWith(g, assign)
}

// NewStateWith builds a State from an explicit assignment. Evidence
// variables are forced to their fixed values regardless of assign.
func NewStateWith(g *Graph, assign []bool) *State {
	if len(assign) != g.numVars {
		panic(fmt.Sprintf("factor: NewStateWith got %d assignments, want %d", len(assign), g.numVars))
	}
	s := &State{
		G:      g,
		Assign: append([]bool(nil), assign...),
		unsat:  make([]uint16, g.nGnd),
		sat:    make([]int32, g.NumGroups()),
		cDelta: make([]float64, g.numVars),
		cSig:   make([]float64, g.numVars),
		sigOK:  make([]bool, g.numVars),
		cStamp: make([]uint32, g.numVars),
		stamp:  1,
		wgen:   g.weightGen,
	}
	for v := 0; v < g.numVars; v++ {
		if g.evidence[v] {
			s.Assign[v] = g.evValue[v]
		}
	}
	s.Recount()
	return s
}

// Recount rebuilds all support counters from the current assignment and
// drops every cached conditional. Needed after evidence changes on the
// shared Graph.
//
// Tombstoned groundings get a permanent +1 floor on their unsatisfied
// count: flips adjust the counter relatively (u − now + after), so a
// floored counter can never reach zero and the dead grounding never
// contributes to a group's support — with no per-flip liveness check.
func (s *State) Recount() {
	g := s.G
	if len(s.unsat) != g.nGnd {
		s.unsat = make([]uint16, g.nGnd)
	}
	if len(s.sat) != g.NumGroups() {
		s.sat = make([]int32, g.NumGroups())
	}
	for gi := range g.groupHead {
		var sat int32
		for k := g.gndOff[gi]; k < g.gndOff[gi+1]; k++ {
			sat += s.recountGnd(k)
		}
		if g.gndExtra != nil {
			for _, k := range g.gndExtra[gi] {
				sat += s.recountGnd(k)
			}
		}
		s.sat[gi] = sat
	}
	s.InvalidateConditionals()
}

// recountGnd refreshes the unsatisfied-literal counter of grounding k and
// reports 1 when it counts toward its group's support.
func (s *State) recountGnd(k int32) int32 {
	g := s.G
	var u uint16
	for li := g.litOff[k]; li < g.litOff[k+1]; li++ {
		l := g.lits[li]
		if s.Assign[l>>1] == (l&1 == 1) {
			u++
		}
	}
	if !g.gndLive(k) {
		s.unsat[k] = u + 1 // tombstone floor: never satisfiable
		return 0
	}
	s.unsat[k] = u
	if u == 0 {
		return 1
	}
	return 0
}

// Support returns the current satisfied-grounding count of group gi.
func (s *State) Support(gi int) int { return int(s.sat[gi]) }

// Energy returns the total energy of the current world, computed from the
// maintained counters (O(#groups)).
func (s *State) Energy() float64 {
	var e float64
	g := s.G
	for gi := range g.groupHead {
		sign := -1.0
		if s.Assign[g.groupHead[gi]] {
			sign = 1.0
		}
		e += g.weights[g.groupWeight[gi]] * sign * g.semVal(int32(gi), int(s.sat[gi]))
	}
	return e
}

// InvalidateConditionals drops every cached conditional in O(1). Weight
// changes through Graph.SetWeight/SetWeights are detected automatically;
// call this (or Graph.NoteWeightsChanged) when weight storage is mutated
// directly — the replica learner steps the vector behind a WeightView —
// so the next sweep recomputes every conditional under the new model.
func (s *State) InvalidateConditionals() {
	s.stamp++
	if s.stamp == 0 { // wrapped: stale stamps could collide, clear them
		for i := range s.cStamp {
			s.cStamp[i] = 0
		}
		s.stamp = 1
	}
}

// SetConditionalCache toggles the Markov-blanket conditional cache
// (enabled by default). The cache is bitwise transparent, so this knob
// changes performance only; it exists for lesion benchmarks and the
// cached-vs-uncached differential harness.
func (s *State) SetConditionalCache(on bool) {
	s.noCache = !on
	s.InvalidateConditionals()
}

// ensureFresh bulk-invalidates when the graph's weights changed since the
// cache was last filled.
func (s *State) ensureFresh() {
	if s.wgen != s.G.weightGen {
		s.wgen = s.G.weightGen
		s.InvalidateConditionals()
	}
}

// overflowVar reports whether v carries patched-in occurrence or
// adjacency rows. Such variables evaluate through the direct path and are
// conservatively never cached (their count is O(|Δ|) after a patch, so
// the fast path still covers the untouched bulk).
func (s *State) overflowVar(v VarID) bool {
	g := s.G
	return (g.bodyExtra != nil && g.bodyExtra[v] != nil) || (g.adjExtra != nil && g.adjExtra[v] != nil)
}

// invalidateBlanket drops the cached conditionals of every variable whose
// conditional can observe a flip of v: v's Markov blanket, read off the
// graph's neighbor CSR (frozen row plus patched-in overflow). v's own
// entry stays valid — EnergyDelta(v) is conditioned on the rest of the
// world and does not depend on v's current value.
func (s *State) invalidateBlanket(v VarID) {
	g := s.G
	cStamp := s.cStamp
	for _, u := range g.nbrs[g.nbrOff[v]:g.nbrOff[v+1]] {
		cStamp[u] = 0
	}
	if g.nbrExtra != nil {
		for _, u := range g.nbrExtra[v] {
			cStamp[u] = 0
		}
	}
}

// deltaFused is the fused conditional kernel: one pass over v's occurrence
// records computes the group supports under both candidate values
// (E(v=true) − E(v=false) via the semantics tables) and records each
// grounding's counter transitions in the scratch buffer, so an
// immediately following flip applies from scratch without re-walking the
// records. Caller guarantees v has no overflow rows. Allocation-free
// after the scratch buffer's first growth; all slice headers are hoisted
// out of the record loop.
func (s *State) deltaFused(v VarID) float64 {
	g := s.G
	assign := s.Assign
	cur := assign[v]
	recs := g.bodyRecs[g.bodyOff[v]:g.bodyOff[v+1]]
	if cap(s.scratch) < len(recs) {
		s.scratch = make([]occDelta, len(recs)+16)
	}
	scr := s.scratch[:len(recs)]
	unsat, sat := s.unsat, s.sat
	weights, groupWeight, groupHead := g.weights, g.groupWeight, g.groupHead
	semOff, semTab := g.semOff, g.semTab
	ci := b2i(cur)
	ri := 0
	var delta float64
	for _, gi := range g.adjGroups[g.adjOff[v]:g.adjOff[v+1]] {
		n1 := sat[gi]
		n0 := n1
		for ri < len(recs) && recs[ri].group == gi {
			occ := &recs[ri]
			u := unsat[occ.gnd]
			now := occ.n[ci]
			uT := u - now + occ.n[1]
			uF := u - now + occ.n[0]
			scr[ri] = occDelta{u: u, uT: uT, uF: uF}
			if u == 0 {
				if uT != 0 {
					n1--
				}
				if uF != 0 {
					n0--
				}
			} else {
				if uT == 0 {
					n1++
				}
				if uF == 0 {
					n0++
				}
			}
			ri++
		}
		tab := semTab[semOff[gi]:]
		w := weights[groupWeight[gi]]
		if groupHead[gi] == int32(v) {
			// Head group: sign flips with v. If v also appears in the body,
			// the transitions above count support under each value.
			// E(v=1) = +w·g(n1); E(v=0) = −w·g(n0) ⇒ diff = w·(g(n1)+g(n0)).
			delta += w * (tab[n1] + tab[n0])
		} else {
			// Body-only group: sign fixed by the head's current value.
			sign := -1.0
			if assign[groupHead[gi]] {
				sign = 1.0
			}
			delta += w * sign * (tab[n1] - tab[n0])
		}
	}
	return delta
}

// applyScratch flips v to val using the counter transitions deltaFused
// just recorded — the second half of the fused kernel.
func (s *State) applyScratch(v VarID, val bool) {
	g := s.G
	recs := g.bodyRecs[g.bodyOff[v]:g.bodyOff[v+1]]
	scr := s.scratch[:len(recs)]
	unsat, sat := s.unsat, s.sat
	vi := b2i(val)
	for i := range recs {
		occ := &recs[i]
		sc := &scr[i]
		uNew := sc.uF
		if vi == 1 {
			uNew = sc.uT
		}
		if uNew != sc.u {
			unsat[occ.gnd] = uNew
			if sc.u == 0 {
				sat[occ.group]--
			} else if uNew == 0 {
				sat[occ.group]++
			}
		}
	}
	s.Assign[v] = val
}

// EnergyDelta returns E(v=true) − E(v=false) conditioned on the rest of
// the current assignment. This is the quantity Gibbs needs:
// P(v=1 | rest) = sigmoid(EnergyDelta(v)).
//
// The result is served from the conditional cache when no blanket
// variable flipped since it was computed; a miss runs the fused kernel
// over v's deduplicated adjacency and occurrence records (O(occurrences
// of v), using the maintained counters and semantics tables). Variables
// with patched-in adjacency (overflow rows) fall back to direct
// evaluation over the flat layout and are never cached — such variables
// are Δ-sized after a patch, so the fast path still covers the untouched
// bulk.
func (s *State) EnergyDelta(v VarID) float64 {
	s.ensureFresh()
	if !s.noCache && s.cStamp[v] == s.stamp {
		return s.cDelta[v]
	}
	if s.overflowVar(v) {
		return s.G.EnergyDeltaOf(s.Assign, v)
	}
	d := s.deltaFused(v)
	if !s.noCache {
		s.cDelta[v] = d
		s.sigOK[v] = false
		s.cStamp[v] = s.stamp
	}
	return d
}

// condSig returns P(v=true | rest) and whether the scratch buffer holds
// v's counter transitions from a fresh kernel walk this call (so a flip
// can apply without re-walking).
func (s *State) condSig(v VarID) (sig float64, fresh bool) {
	if !s.noCache && s.cStamp[v] == s.stamp {
		if s.sigOK[v] {
			return s.cSig[v], false
		}
		sig = 1 / (1 + math.Exp(-s.cDelta[v]))
		s.cSig[v] = sig
		s.sigOK[v] = true
		return sig, false
	}
	if s.overflowVar(v) {
		return 1 / (1 + math.Exp(-s.G.EnergyDeltaOf(s.Assign, v))), false
	}
	d := s.deltaFused(v)
	sig = 1 / (1 + math.Exp(-d))
	if !s.noCache {
		s.cDelta[v] = d
		s.cSig[v] = sig
		s.sigOK[v] = true
		s.cStamp[v] = s.stamp
	}
	return sig, true
}

// CondProb returns P(v = true | rest of assignment), cached like
// EnergyDelta (the sigmoid is memoized alongside the delta, so a cache
// hit skips the math.Exp too).
func (s *State) CondProb(v VarID) float64 {
	s.ensureFresh()
	sig, _ := s.condSig(v)
	return sig
}

// SampleVar is the fused resample kernel: given a uniform draw u, it
// computes P(v=true | rest) (cached, or one fused kernel walk), decides
// the new value, and applies a flip — from the kernel's own scratch
// transitions when the walk just ran, with no re-walk of the occurrence
// records — invalidating the flipped variable's blanket. Returns the
// sampled value. Sampling an evidence variable panics.
func (s *State) SampleVar(v VarID, u float64) bool {
	if s.G.evidence[v] {
		panic(fmt.Sprintf("factor: SampleVar on evidence variable %d", v))
	}
	s.ensureFresh()
	sig, fresh := s.condSig(v)
	val := u < sig
	if val != s.Assign[v] {
		if fresh {
			s.applyScratch(v, val)
		} else {
			s.setAny(v, val)
		}
		s.invalidateBlanket(v)
	}
	return val
}

// Set assigns variable v to val, updating support counters incrementally
// and invalidating the blanket's cached conditionals. Setting an evidence
// variable panics.
func (s *State) Set(v VarID, val bool) {
	if s.G.evidence[v] {
		panic(fmt.Sprintf("factor: Set on evidence variable %d", v))
	}
	if s.setAny(v, val) {
		s.invalidateBlanket(v)
	}
}

// setAny performs the flip without the evidence guard or blanket
// invalidation; reports whether the value changed.
func (s *State) setAny(v VarID, val bool) bool {
	cur := s.Assign[v]
	if cur == val {
		return false
	}
	s.Assign[v] = val
	g := s.G
	ci, vi := b2i(cur), b2i(val)
	unsat, sat := s.unsat, s.sat
	for i := g.bodyOff[v]; i < g.bodyOff[v+1]; i++ {
		occ := &g.bodyRecs[i]
		u := unsat[occ.gnd]
		uAfter := u - occ.n[ci] + occ.n[vi]
		if uAfter != u {
			unsat[occ.gnd] = uAfter
			if u == 0 {
				sat[occ.group]--
			} else if uAfter == 0 {
				sat[occ.group]++
			}
		}
	}
	if g.bodyExtra != nil {
		for i := range g.bodyExtra[v] {
			occ := &g.bodyExtra[v][i]
			u := unsat[occ.gnd]
			uAfter := u - occ.n[ci] + occ.n[vi]
			if uAfter != u {
				unsat[occ.gnd] = uAfter
				if u == 0 {
					sat[occ.group]--
				} else if uAfter == 0 {
					sat[occ.group]++
				}
			}
		}
	}
	return true
}

// SyncEvidence re-reads evidence flags/values from the shared Graph and
// forces evidence variables to their fixed values, updating counters and
// invalidating affected cached conditionals.
func (s *State) SyncEvidence() {
	for v := 0; v < s.G.numVars; v++ {
		if s.G.evidence[v] && s.Assign[v] != s.G.evValue[v] {
			if s.setAny(VarID(v), s.G.evValue[v]) {
				s.invalidateBlanket(VarID(v))
			}
		}
	}
}

// CopyAssignment copies the current assignment into dst (allocating when
// dst is too small) and returns it.
func (s *State) CopyAssignment(dst []bool) []bool {
	if cap(dst) < len(s.Assign) {
		dst = make([]bool, len(s.Assign))
	}
	dst = dst[:len(s.Assign)]
	copy(dst, s.Assign)
	return dst
}

// SetAssignment overwrites the whole assignment (respecting evidence) and
// recounts (dropping all cached conditionals). Used when adopting a
// proposal world wholesale.
func (s *State) SetAssignment(assign []bool) {
	if len(assign) != s.G.numVars {
		panic(fmt.Sprintf("factor: SetAssignment got %d values, want %d", len(assign), s.G.numVars))
	}
	copy(s.Assign, assign)
	for v := 0; v < s.G.numVars; v++ {
		if s.G.evidence[v] {
			s.Assign[v] = s.G.evValue[v]
		}
	}
	s.Recount()
}

// WeightStats accumulates, for each weight id, the statistic
// Σ_groups sign(head)·g(n) of the current world into out. This is the
// sufficient statistic for maximum-likelihood weight learning:
// ∂ log Pr[I] / ∂w_k = stat_k(I) − E[stat_k]. len(out) must be NumWeights.
func (s *State) WeightStats(out []float64) {
	g := s.G
	if len(out) != len(g.weights) {
		panic(fmt.Sprintf("factor: WeightStats got %d slots, want %d", len(out), len(g.weights)))
	}
	for gi := range g.groupHead {
		sign := -1.0
		if s.Assign[g.groupHead[gi]] {
			sign = 1.0
		}
		out[g.groupWeight[gi]] += sign * g.semVal(int32(gi), int(s.sat[gi]))
	}
}

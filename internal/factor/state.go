package factor

import (
	"fmt"
	"math"
)

// State is one mutable possible world over a Graph: a full assignment plus
// incrementally maintained support counters (per-grounding unsatisfied
// literal counts and per-group satisfied-grounding counts). Multiple
// States may share one Graph; a State is not safe for concurrent use.
type State struct {
	G      *Graph
	Assign []bool

	unsat [][]uint16 // per group, per grounding: # unsatisfied literals
	sat   []int32    // per group: # satisfied groundings
}

// NewState builds a State with every free variable false and evidence
// variables at their fixed values.
func NewState(g *Graph) *State {
	assign := make([]bool, g.numVars)
	for v := 0; v < g.numVars; v++ {
		if g.evidence[v] {
			assign[v] = g.evValue[v]
		}
	}
	return NewStateWith(g, assign)
}

// NewStateWith builds a State from an explicit assignment. Evidence
// variables are forced to their fixed values regardless of assign.
func NewStateWith(g *Graph, assign []bool) *State {
	if len(assign) != g.numVars {
		panic(fmt.Sprintf("factor: NewStateWith got %d assignments, want %d", len(assign), g.numVars))
	}
	s := &State{
		G:      g,
		Assign: append([]bool(nil), assign...),
		unsat:  make([][]uint16, len(g.groups)),
		sat:    make([]int32, len(g.groups)),
	}
	for v := 0; v < g.numVars; v++ {
		if g.evidence[v] {
			s.Assign[v] = g.evValue[v]
		}
	}
	s.Recount()
	return s
}

// Recount rebuilds all support counters from the current assignment.
// Needed after evidence changes on the shared Graph.
func (s *State) Recount() {
	g := s.G
	for gi := range g.groups {
		gr := &g.groups[gi]
		if s.unsat[gi] == nil || len(s.unsat[gi]) != len(gr.Groundings) {
			s.unsat[gi] = make([]uint16, len(gr.Groundings))
		}
		var sat int32
		for gndi, gnd := range gr.Groundings {
			var u uint16
			for _, lit := range gnd.Lits {
				if s.Assign[lit.Var] == lit.Neg {
					u++
				}
			}
			s.unsat[gi][gndi] = u
			if u == 0 {
				sat++
			}
		}
		s.sat[gi] = sat
	}
}

// Support returns the current satisfied-grounding count of group gi.
func (s *State) Support(gi int) int { return int(s.sat[gi]) }

// Energy returns the total energy of the current world, computed from the
// maintained counters (O(#groups)).
func (s *State) Energy() float64 {
	var e float64
	g := s.G
	for gi := range g.groups {
		gr := &g.groups[gi]
		sign := -1.0
		if s.Assign[gr.Head] {
			sign = 1.0
		}
		e += g.weights[gr.Weight] * sign * gr.Sem.G(int(s.sat[gi]))
	}
	return e
}

// supportIf returns the satisfied count of group gi if variable v were set
// to val, leaving all other variables at their current values. Runs over
// v's occurrences in the group only.
func (s *State) supportIf(gi int32, v VarID, val bool) int32 {
	n := s.sat[gi]
	cur := s.Assign[v]
	for _, occ := range s.G.bodyAdj[v] {
		if occ.group != gi {
			continue
		}
		u := s.unsat[occ.group][occ.gnd]
		// Contribution of v's literals to the unsat count now and after.
		var now, after uint16
		if cur {
			now = occ.nNeg
		} else {
			now = occ.nPos
		}
		if val {
			after = occ.nNeg
		} else {
			after = occ.nPos
		}
		uAfter := u - now + after
		if u == 0 && uAfter != 0 {
			n--
		} else if u != 0 && uAfter == 0 {
			n++
		}
	}
	return n
}

// EnergyDelta returns E(v=true) − E(v=false) conditioned on the rest of
// the current assignment. This is the quantity Gibbs needs:
// P(v=1 | rest) = sigmoid(EnergyDelta(v)).
func (s *State) EnergyDelta(v VarID) float64 {
	g := s.G
	var delta float64
	// Groups where v is the head: sign flips with v. If v also appears in
	// the body of the same group, supportIf handles the count under each
	// value; headAdj covers the sign part only, so treat those fully here.
	for _, gi := range g.headAdj[v] {
		gr := &g.groups[gi]
		w := g.weights[gr.Weight]
		n1 := s.supportIf(gi, v, true)
		n0 := s.supportIf(gi, v, false)
		delta += w * (gr.Sem.G(int(n1)) + gr.Sem.G(int(n0)))
		// E(v=1) = +w·g(n1); E(v=0) = −w·g(n0) ⇒ diff = w·(g(n1)+g(n0)).
	}
	// Groups where v appears only in bodies (head ≠ v): sign fixed by the
	// head's current value. Deduplicate body groups (a var can occur in
	// many groundings of one group); bodyAdj entries for one group are
	// contiguous because Build appends per group.
	adj := g.bodyAdj[v]
	for i := 0; i < len(adj); {
		gi := adj[i].group
		j := i + 1
		for j < len(adj) && adj[j].group == gi {
			j++
		}
		i = j
		gr := &g.groups[gi]
		if gr.Head == v {
			continue
		}
		sign := -1.0
		if s.Assign[gr.Head] {
			sign = 1.0
		}
		w := g.weights[gr.Weight]
		n1 := s.supportIf(gi, v, true)
		n0 := s.supportIf(gi, v, false)
		delta += w * sign * (gr.Sem.G(int(n1)) - gr.Sem.G(int(n0)))
	}
	return delta
}

// CondProb returns P(v = true | rest of assignment).
func (s *State) CondProb(v VarID) float64 {
	return 1 / (1 + math.Exp(-s.EnergyDelta(v)))
}

// Set assigns variable v to val, updating support counters incrementally.
// Setting an evidence variable panics.
func (s *State) Set(v VarID, val bool) {
	if s.G.evidence[v] {
		panic(fmt.Sprintf("factor: Set on evidence variable %d", v))
	}
	s.setAny(v, val)
}

// setAny performs the flip without the evidence guard (used by SyncEvidence).
func (s *State) setAny(v VarID, val bool) {
	cur := s.Assign[v]
	if cur == val {
		return
	}
	s.Assign[v] = val
	for _, occ := range s.G.bodyAdj[v] {
		u := s.unsat[occ.group][occ.gnd]
		var now, after uint16
		if cur {
			now = occ.nNeg
		} else {
			now = occ.nPos
		}
		if val {
			after = occ.nNeg
		} else {
			after = occ.nPos
		}
		uAfter := u - now + after
		if uAfter != u {
			s.unsat[occ.group][occ.gnd] = uAfter
			if u == 0 && uAfter != 0 {
				s.sat[occ.group]--
			} else if u != 0 && uAfter == 0 {
				s.sat[occ.group]++
			}
		}
	}
}

// SyncEvidence re-reads evidence flags/values from the shared Graph and
// forces evidence variables to their fixed values, updating counters.
func (s *State) SyncEvidence() {
	for v := 0; v < s.G.numVars; v++ {
		if s.G.evidence[v] && s.Assign[v] != s.G.evValue[v] {
			s.setAny(VarID(v), s.G.evValue[v])
		}
	}
}

// CopyAssignment copies the current assignment into dst (allocating when
// dst is too small) and returns it.
func (s *State) CopyAssignment(dst []bool) []bool {
	if cap(dst) < len(s.Assign) {
		dst = make([]bool, len(s.Assign))
	}
	dst = dst[:len(s.Assign)]
	copy(dst, s.Assign)
	return dst
}

// SetAssignment overwrites the whole assignment (respecting evidence) and
// recounts. Used when adopting a proposal world wholesale.
func (s *State) SetAssignment(assign []bool) {
	if len(assign) != s.G.numVars {
		panic(fmt.Sprintf("factor: SetAssignment got %d values, want %d", len(assign), s.G.numVars))
	}
	copy(s.Assign, assign)
	for v := 0; v < s.G.numVars; v++ {
		if s.G.evidence[v] {
			s.Assign[v] = s.G.evValue[v]
		}
	}
	s.Recount()
}

// WeightStats accumulates, for each weight id, the statistic
// Σ_groups sign(head)·g(n) of the current world into out. This is the
// sufficient statistic for maximum-likelihood weight learning:
// ∂ log Pr[I] / ∂w_k = stat_k(I) − E[stat_k]. len(out) must be NumWeights.
func (s *State) WeightStats(out []float64) {
	g := s.G
	if len(out) != len(g.weights) {
		panic(fmt.Sprintf("factor: WeightStats got %d slots, want %d", len(out), len(g.weights)))
	}
	for gi := range g.groups {
		gr := &g.groups[gi]
		sign := -1.0
		if s.Assign[gr.Head] {
			sign = 1.0
		}
		out[gr.Weight] += sign * gr.Sem.G(int(s.sat[gi]))
	}
}

package factor

import (
	"math"
	"math/rand"
	"testing"
)

// randomFlatGraph builds a random multi-literal graph exercising negation,
// repeated variables within a grounding, heads appearing in their own
// bodies, and all three semantics.
func randomFlatGraph(rng *rand.Rand, nVars, nGroups int) *Graph {
	b := NewBuilder()
	vars := make([]VarID, nVars)
	for i := range vars {
		if rng.Intn(5) == 0 {
			vars[i] = b.AddEvidenceVar(rng.Intn(2) == 0)
		} else {
			vars[i] = b.AddVar()
		}
	}
	nW := 3 + rng.Intn(3)
	ws := make([]WeightID, nW)
	for i := range ws {
		ws[i] = b.AddWeight(rng.Float64()*2 - 1)
	}
	sems := []Semantics{Linear, Logical, Ratio}
	for gi := 0; gi < nGroups; gi++ {
		head := vars[rng.Intn(nVars)]
		nGnd := 1 + rng.Intn(4)
		var gnds []Grounding
		for k := 0; k < nGnd; k++ {
			nLit := 1 + rng.Intn(3)
			var lits []Literal
			for l := 0; l < nLit; l++ {
				lits = append(lits, Literal{Var: vars[rng.Intn(nVars)], Neg: rng.Intn(3) == 0})
			}
			gnds = append(gnds, Grounding{Lits: lits})
		}
		b.AddGroup(head, ws[rng.Intn(nW)], sems[rng.Intn(3)], gnds)
	}
	return b.MustBuild()
}

func randomAssign(rng *rand.Rand, g *Graph) []bool {
	assign := make([]bool, g.NumVars())
	for v := range assign {
		if g.IsEvidence(VarID(v)) {
			assign[v] = g.EvidenceValue(VarID(v))
		} else {
			assign[v] = rng.Intn(2) == 0
		}
	}
	return assign
}

// TestFlatEnergyDeltaMatchesCounters checks the CSR direct evaluation
// (what the parallel sampler's workers run) against the counter-based
// incremental EnergyDelta on random graphs and assignments.
func TestFlatEnergyDeltaMatchesCounters(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		g := randomFlatGraph(rng, 4+rng.Intn(12), 1+rng.Intn(10))
		assign := randomAssign(rng, g)
		st := NewStateWith(g, assign)
		for v := 0; v < g.NumVars(); v++ {
			want := st.EnergyDelta(VarID(v))
			got := g.EnergyDeltaOf(st.Assign, VarID(v))
			if math.Abs(want-got) > 1e-9 {
				t.Fatalf("trial %d var %d: counter delta %v, direct delta %v", trial, v, want, got)
			}
		}
	}
}

// TestFlatEnergyDeltaMatchesBruteForce pins both evaluations to the
// definition: E(v=true) − E(v=false) by full re-evaluation.
func TestFlatEnergyDeltaMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		g := randomFlatGraph(rng, 3+rng.Intn(8), 1+rng.Intn(8))
		assign := randomAssign(rng, g)
		work := append([]bool(nil), assign...)
		for v := 0; v < g.NumVars(); v++ {
			work[v] = true
			e1 := g.Energy(work)
			work[v] = false
			e0 := g.Energy(work)
			work[v] = assign[v]
			want := e1 - e0
			got := g.EnergyDeltaOf(assign, VarID(v))
			if math.Abs(want-got) > 1e-9 {
				t.Fatalf("trial %d var %d: brute-force delta %v, direct delta %v", trial, v, want, got)
			}
		}
	}
}

// TestFlatWeightStatsMatchesCounters cross-checks the one-pass flat
// sufficient statistic against the counter-based one.
func TestFlatWeightStatsMatchesCounters(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		g := randomFlatGraph(rng, 4+rng.Intn(10), 1+rng.Intn(10))
		assign := randomAssign(rng, g)
		st := NewStateWith(g, assign)
		want := make([]float64, g.NumWeights())
		st.WeightStats(want)
		got := make([]float64, g.NumWeights())
		g.WeightStatsOf(assign, got)
		for k := range want {
			if math.Abs(want[k]-got[k]) > 1e-9 {
				t.Fatalf("trial %d weight %d: counter stat %v, flat stat %v", trial, k, want[k], got[k])
			}
		}
	}
}

// TestCSRShapeInvariants checks the frozen layout's structural invariants
// on random graphs: monotone offsets, pool sizes, adjacency ordering and
// deduplication.
func TestCSRShapeInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 30; trial++ {
		g := randomFlatGraph(rng, 3+rng.Intn(10), rng.Intn(10))
		c := g.CSR()
		if len(c.GndOff) != g.NumGroups()+1 || int(c.GndOff[g.NumGroups()]) != g.NumGroundings() {
			t.Fatalf("grounding offsets malformed: %v (groups=%d gnd=%d)", c.GndOff, g.NumGroups(), g.NumGroundings())
		}
		if len(c.LitOff) != g.NumGroundings()+1 || int(c.LitOff[g.NumGroundings()]) != len(c.Lits) {
			t.Fatalf("literal offsets malformed")
		}
		for i := 1; i < len(c.GndOff); i++ {
			if c.GndOff[i] < c.GndOff[i-1] {
				t.Fatal("GndOff not monotone")
			}
		}
		for i := 1; i < len(c.LitOff); i++ {
			if c.LitOff[i] < c.LitOff[i-1] {
				t.Fatal("LitOff not monotone")
			}
		}
		for _, l := range c.Lits {
			if v := LitVar(l); v < 0 || int(v) >= g.NumVars() {
				t.Fatalf("literal var %d out of range", v)
			}
		}
		for v := 0; v < g.NumVars(); v++ {
			adj := c.AdjGroups[c.AdjOff[v]:c.AdjOff[v+1]]
			for i := 1; i < len(adj); i++ {
				if adj[i] <= adj[i-1] {
					t.Fatalf("var %d adjacency not strictly ascending: %v", v, adj)
				}
			}
			// Cross-check against the nested view.
			want := map[int32]bool{}
			for gi := 0; gi < g.NumGroups(); gi++ {
				gr := g.Group(gi)
				touches := gr.Head == VarID(v)
				for _, gnd := range gr.Groundings {
					for _, lit := range gnd.Lits {
						if lit.Var == VarID(v) {
							touches = true
						}
					}
				}
				if touches {
					want[int32(gi)] = true
				}
			}
			if len(want) != len(adj) {
				t.Fatalf("var %d: adjacency %v, want %d groups", v, adj, len(want))
			}
			for _, gi := range adj {
				if !want[gi] {
					t.Fatalf("var %d: adjacency lists group %d it does not touch", v, gi)
				}
			}
		}
	}
}

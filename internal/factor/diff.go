package factor

import (
	"fmt"
	"math"
	"math/rand"
)

// DiffGraphs compares two graphs for semantic equivalence — identical
// distributions, not identical layouts — and returns a list of
// discrepancies (empty when equivalent). It is the oracle behind the
// patched-vs-rebuilt differential harness: a graph updated in place
// through a Patch must be indistinguishable from one rebuilt from
// scratch on
//
//   - dimensions (variables, groups, weights, live groundings),
//   - evidence flags and values,
//   - per-variable adjacency as sets,
//   - total energy on random assignments,
//   - per-variable conditional energy deltas, by direct evaluation and by
//     counter-based State evaluation (exercising both sampler paths), and
//   - per-weight sufficient statistics.
//
// probes random assignments are drawn from the given seed. Comparisons
// use a small epsilon: layouts may sum float contributions in different
// orders.
func DiffGraphs(a, b *Graph, probes int, seed int64) []string {
	const eps = 1e-9
	var diffs []string
	report := func(format string, args ...any) {
		if len(diffs) < 20 {
			diffs = append(diffs, fmt.Sprintf(format, args...))
		}
	}

	if a.NumVars() != b.NumVars() {
		report("NumVars %d vs %d", a.NumVars(), b.NumVars())
		return diffs
	}
	if a.NumGroups() != b.NumGroups() {
		report("NumGroups %d vs %d", a.NumGroups(), b.NumGroups())
		return diffs
	}
	if a.NumWeights() != b.NumWeights() {
		report("NumWeights %d vs %d", a.NumWeights(), b.NumWeights())
		return diffs
	}
	if a.NumGroundings() != b.NumGroundings() {
		report("NumGroundings %d vs %d", a.NumGroundings(), b.NumGroundings())
	}
	for v := 0; v < a.NumVars(); v++ {
		id := VarID(v)
		if a.IsEvidence(id) != b.IsEvidence(id) {
			report("var %d evidence flag %v vs %v", v, a.IsEvidence(id), b.IsEvidence(id))
		} else if a.IsEvidence(id) && a.EvidenceValue(id) != b.EvidenceValue(id) {
			report("var %d evidence value %v vs %v", v, a.EvidenceValue(id), b.EvidenceValue(id))
		}
	}
	for w := 0; w < a.NumWeights(); w++ {
		if math.Abs(a.Weight(WeightID(w))-b.Weight(WeightID(w))) > eps {
			report("weight %d value %v vs %v", w, a.Weight(WeightID(w)), b.Weight(WeightID(w)))
		}
	}

	// Adjacency as sets (layout may order rows differently). A patched
	// graph may carry stale superset entries — groups whose groundings for
	// the variable were all tombstoned stay in its rows until compaction;
	// the conditional-delta probes below verify they contribute nothing.
	// Anything missing is always an error, as is any superset entry on an
	// unpatched graph.
	for v := 0; v < a.NumVars(); v++ {
		sa := adjSet(a, VarID(v))
		sb := adjSet(b, VarID(v))
		for gi := range sb {
			if !sa[gi] {
				report("var %d adjacency: group %d missing from first graph", v, gi)
				break
			}
		}
		for gi := range sa {
			if !sb[gi] && !a.Patched() {
				report("var %d adjacency: group %d missing from second graph", v, gi)
				break
			}
		}
	}
	if len(diffs) > 0 {
		return diffs
	}

	rng := rand.New(rand.NewSource(seed))
	statsA := make([]float64, a.NumWeights())
	statsB := make([]float64, b.NumWeights())
	for p := 0; p < probes; p++ {
		assign := make([]bool, a.NumVars())
		for v := range assign {
			if a.IsEvidence(VarID(v)) {
				assign[v] = a.EvidenceValue(VarID(v))
			} else {
				assign[v] = rng.Intn(2) == 0
			}
		}
		if ea, eb := a.Energy(assign), b.Energy(assign); math.Abs(ea-eb) > eps*(1+math.Abs(ea)) {
			report("probe %d: energy %v vs %v", p, ea, eb)
		}
		sa := NewStateWith(a, assign)
		sb := NewStateWith(b, assign)
		if ea, eb := sa.Energy(), sb.Energy(); math.Abs(ea-eb) > eps*(1+math.Abs(ea)) {
			report("probe %d: counter energy %v vs %v", p, ea, eb)
		}
		for v := 0; v < a.NumVars(); v++ {
			id := VarID(v)
			da := a.EnergyDeltaOf(assign, id)
			db := b.EnergyDeltaOf(assign, id)
			if math.Abs(da-db) > eps*(1+math.Abs(da)) {
				report("probe %d var %d: direct delta %v vs %v", p, v, da, db)
			}
			ca := sa.EnergyDelta(id)
			cb := sb.EnergyDelta(id)
			if math.Abs(ca-cb) > eps*(1+math.Abs(ca)) {
				report("probe %d var %d: counter delta %v vs %v", p, v, ca, cb)
			}
			if math.Abs(da-ca) > eps*(1+math.Abs(da)) {
				report("probe %d var %d: direct %v vs counter %v on first graph", p, v, da, ca)
			}
		}
		for i := range statsA {
			statsA[i], statsB[i] = 0, 0
		}
		a.WeightStatsOf(assign, statsA)
		b.WeightStatsOf(assign, statsB)
		for k := range statsA {
			if math.Abs(statsA[k]-statsB[k]) > eps*(1+math.Abs(statsA[k])) {
				report("probe %d weight %d: stat %v vs %v", p, k, statsA[k], statsB[k])
			}
		}
		if len(diffs) >= 20 {
			break
		}
	}
	return diffs
}

// adjSet returns v's adjacent groups as a set.
func adjSet(g *Graph, v VarID) map[int32]bool {
	out := make(map[int32]bool)
	for _, gi := range g.AdjacentGroups(v) {
		out[gi] = true
	}
	return out
}

package factor

import (
	"fmt"

	"deepdive/internal/persist"
)

// Snapshot codec for Graph. Every field that defines the graph's view —
// frozen CSR pools, patch overflow rows, tombstone epochs — is written
// verbatim, so a decoded graph is semantically indistinguishable from
// the original: the same groundings are live, the same evaluation order
// is walked, and a subsequent Patch produces the same derived graph.
// The large pools are written as raw little-endian dumps (one memmove
// each on LE hosts); only bodyOcc records are re-packed, into 3 int32
// words per record. weightGen is not persisted: it only versions the
// conditional caches, which start cold after a restart anyway.
const graphCodecVersion = 1

// AppendSnapshot encodes the graph into b.
func (g *Graph) AppendSnapshot(b *persist.Buf) {
	b.U8(graphCodecVersion)
	b.I64(int64(g.numVars))
	b.I64(int64(g.nGnd))
	b.I64(int64(g.nDead))
	b.I64(int64(g.nExtra))
	b.I64(int64(g.epoch))
	b.Bools(g.evidence)
	b.Bools(g.evValue)
	b.F64s(g.weights)
	b.I32s(g.groupHead)
	b.I32s(g.groupWeight)
	semRaw := make([]int32, len(g.groupSem))
	for i, s := range g.groupSem {
		semRaw[i] = int32(s)
	}
	b.I32s(semRaw)
	b.I32s(g.gndOff)
	b.I32s(g.litOff)
	b.I32s(g.lits)
	b.I32s(g.bodyOff)
	b.I32s(packBodyRecs(g.bodyRecs))
	b.I32s(g.adjOff)
	b.I32s(g.adjGroups)
	b.I32s(g.semOff)
	b.F64s(g.semTab)
	b.I32s(g.nbrOff)
	b.I32s(g.nbrs)
	appendRows(b, g.nbrExtra)
	b.Bool(g.deadAt != nil)
	if g.deadAt != nil {
		b.I32s(g.deadAt)
	}
	appendRows(b, g.gndExtra)
	appendBodyRows(b, g.bodyExtra)
	appendRows(b, g.adjExtra)
}

// DecodeGraphSnapshot rebuilds a graph from r.
func DecodeGraphSnapshot(r *persist.Rd) (*Graph, error) {
	if v := r.U8("graph version"); r.Err() == nil && v != graphCodecVersion {
		return nil, fmt.Errorf("factor: unsupported graph codec version %d", v)
	}
	g := &Graph{}
	g.numVars = int(r.I64("numVars"))
	g.nGnd = int(r.I64("nGnd"))
	g.nDead = int(r.I64("nDead"))
	g.nExtra = int(r.I64("nExtra"))
	g.epoch = int32(r.I64("epoch"))
	g.evidence = r.Bools("evidence")
	g.evValue = r.Bools("evValue")
	g.weights = r.F64s("weights")
	g.groupHead = r.I32s("groupHead")
	g.groupWeight = r.I32s("groupWeight")
	semRaw := r.I32s("groupSem")
	g.groupSem = make([]Semantics, len(semRaw))
	for i, s := range semRaw {
		g.groupSem[i] = Semantics(s)
	}
	g.gndOff = r.I32s("gndOff")
	g.litOff = r.I32s("litOff")
	g.lits = r.I32s("lits")
	g.bodyOff = r.I32s("bodyOff")
	g.bodyRecs = unpackBodyRecs(r.I32s("bodyRecs"))
	g.adjOff = r.I32s("adjOff")
	g.adjGroups = r.I32s("adjGroups")
	g.semOff = r.I32s("semOff")
	g.semTab = r.F64s("semTab")
	g.nbrOff = r.I32s("nbrOff")
	g.nbrs = r.I32s("nbrs")
	g.nbrExtra = decodeRows(r, "nbrExtra")
	if r.Bool("deadAt present") {
		g.deadAt = r.I32s("deadAt")
		if g.deadAt == nil { // present but empty: preserve non-nil-ness
			g.deadAt = []int32{}
		}
	}
	g.gndExtra = decodeRows(r, "gndExtra")
	g.bodyExtra = decodeBodyRows(r, "bodyExtra")
	g.adjExtra = decodeRows(r, "adjExtra")
	if err := r.Err(); err != nil {
		return nil, err
	}
	return g, nil
}

// packBodyRecs flattens bodyOcc records into 3 int32 words each:
// group, gnd, n[0]|n[1]<<16.
func packBodyRecs(recs []bodyOcc) []int32 {
	out := make([]int32, 0, 3*len(recs))
	for _, rec := range recs {
		out = append(out, rec.group, rec.gnd,
			int32(uint32(rec.n[0])|uint32(rec.n[1])<<16))
	}
	return out
}

func unpackBodyRecs(raw []int32) []bodyOcc {
	if len(raw) == 0 {
		return nil
	}
	out := make([]bodyOcc, len(raw)/3)
	for i := range out {
		packed := uint32(raw[3*i+2])
		out[i] = bodyOcc{
			group: raw[3*i],
			gnd:   raw[3*i+1],
			n:     [2]uint16{uint16(packed & 0xFFFF), uint16(packed >> 16)},
		}
	}
	return out
}

// appendRows writes a per-row overflow table ([][]int32) in CSR form.
// A nil top-level table (unpatched graph) is distinguished from a
// present-but-all-empty one, because the patch machinery branches on
// table presence.
func appendRows(b *persist.Buf, rows [][]int32) {
	b.Bool(rows != nil)
	if rows == nil {
		return
	}
	off := make([]int32, len(rows)+1)
	total := 0
	for i, row := range rows {
		total += len(row)
		off[i+1] = int32(total)
	}
	flat := make([]int32, 0, total)
	for _, row := range rows {
		flat = append(flat, row...)
	}
	b.I32s(off)
	b.I32s(flat)
}

// decodeRows reads a CSR overflow table. Rows are three-index
// subslices of one backing array (len == cap), so a later append to a
// row reallocates instead of clobbering its neighbor.
func decodeRows(r *persist.Rd, what string) [][]int32 {
	if !r.Bool(what + " present") {
		return nil
	}
	off := r.I32s(what + " offsets")
	flat := r.I32s(what + " flat")
	if r.Err() != nil || len(off) == 0 {
		return [][]int32{}
	}
	rows := make([][]int32, len(off)-1)
	for i := range rows {
		a, b := off[i], off[i+1]
		if a < 0 || b < a || int(b) > len(flat) {
			r.Fail(what + " row bounds")
			return rows
		}
		if a < b {
			rows[i] = flat[a:b:b]
		}
	}
	return rows
}

// appendBodyRows / decodeBodyRows: the same CSR treatment for the
// per-variable bodyOcc overflow rows.
func appendBodyRows(b *persist.Buf, rows [][]bodyOcc) {
	b.Bool(rows != nil)
	if rows == nil {
		return
	}
	off := make([]int32, len(rows)+1)
	total := 0
	for i, row := range rows {
		total += len(row)
		off[i+1] = int32(total)
	}
	flat := make([]bodyOcc, 0, total)
	for _, row := range rows {
		flat = append(flat, row...)
	}
	b.I32s(off)
	b.I32s(packBodyRecs(flat))
}

func decodeBodyRows(r *persist.Rd, what string) [][]bodyOcc {
	if !r.Bool(what + " present") {
		return nil
	}
	off := r.I32s(what + " offsets")
	flat := unpackBodyRecs(r.I32s(what + " flat"))
	if r.Err() != nil || len(off) == 0 {
		return [][]bodyOcc{}
	}
	rows := make([][]bodyOcc, len(off)-1)
	for i := range rows {
		a, b := off[i], off[i+1]
		if a < 0 || b < a || int(b) > len(flat) {
			r.Fail(what + " row bounds")
			return rows
		}
		if a < b {
			rows[i] = flat[a:b:b]
		}
	}
	return rows
}

package factor

import (
	"math"
	"math/rand"
	"testing"
)

// TestEnergyOfGroupsParallelMatches requires the sharded evaluator to
// agree with the sequential one (up to float reassociation) across
// random graphs, group subsets, and worker counts — including lists
// below the fan-out threshold (sequential fallback) and far above it.
func TestEnergyOfGroupsParallelMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 5; trial++ {
		nGroups := 50 + rng.Intn(400)
		g := randomFlatGraph(rng, 40+rng.Intn(60), nGroups)
		assign := randomAssign(rng, g)
		var groups []int32
		for gi := 0; gi < g.NumGroups(); gi++ {
			if rng.Intn(4) != 0 {
				groups = append(groups, int32(gi))
			}
		}
		want := g.EnergyOfGroups(assign, groups)
		for _, workers := range []int{1, 2, 4, 7, -1} {
			got := g.EnergyOfGroupsParallel(assign, groups, workers)
			if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
				t.Fatalf("trial %d workers %d: parallel energy %v, sequential %v", trial, workers, got, want)
			}
		}
	}
}

// TestEnergyOfGroupsParallelDeterministic pins the chunked reduction:
// identical inputs and worker count must reproduce the identical float,
// or the MH accept decisions built on it would become run-dependent.
func TestEnergyOfGroupsParallelDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	g := randomFlatGraph(rng, 80, 400)
	assign := randomAssign(rng, g)
	groups := make([]int32, g.NumGroups())
	for gi := range groups {
		groups[gi] = int32(gi)
	}
	first := g.EnergyOfGroupsParallel(assign, groups, 4)
	for i := 0; i < 10; i++ {
		if got := g.EnergyOfGroupsParallel(assign, groups, 4); got != first {
			t.Fatalf("run %d: energy %v != first run %v", i, got, first)
		}
	}
}

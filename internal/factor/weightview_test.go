package factor

import (
	"math"
	"testing"
)

// viewGraph builds a small coupled graph for the view tests.
func viewGraph() *Graph {
	b := NewBuilder()
	v0, v1, v2 := b.AddVar(), b.AddVar(), b.AddVar()
	ev := b.AddEvidenceVar(true)
	w0, w1 := b.AddWeight(0.5), b.AddWeight(-0.3)
	b.AddGroup(v0, w0, Linear, []Grounding{{Lits: []Literal{{Var: v1}}}})
	b.AddGroup(v1, w1, Ratio, []Grounding{
		{Lits: []Literal{{Var: v2}, {Var: ev}}},
		{Lits: []Literal{{Var: v0, Neg: true}}},
	})
	return b.MustBuild()
}

// TestWeightViewIsolatesWeights checks the replica model-copy primitive:
// views share the CSR structure but read their own weight vector, and
// mutating a view's vector never leaks into the base graph or siblings.
func TestWeightViewIsolatesWeights(t *testing.T) {
	g := viewGraph()
	wA := append([]float64(nil), g.Weights()...)
	wB := append([]float64(nil), g.Weights()...)
	a, b := g.WeightView(wA), g.WeightView(wB)

	assign := []bool{true, true, true, true} // group 0's grounding satisfied, so weight 0 matters
	if got, want := a.Energy(assign), g.Energy(assign); got != want {
		t.Fatalf("fresh view energy %v, base %v", got, want)
	}

	wA[0] = 2.5
	if a.Weight(0) != 2.5 {
		t.Fatalf("view does not read its private vector: %v", a.Weight(0))
	}
	if g.Weight(0) != 0.5 || b.Weight(0) != 0.5 {
		t.Fatalf("private mutation leaked: base %v, sibling %v", g.Weight(0), b.Weight(0))
	}
	if a.Energy(assign) == g.Energy(assign) {
		t.Fatal("view energy ignores its private weights")
	}
	// Structure stays shared: same groups, same adjacency.
	if a.NumGroups() != g.NumGroups() || a.NumVars() != g.NumVars() {
		t.Fatal("view changed structure")
	}
	// SetWeight on the view writes the private vector only.
	a.SetWeight(1, 9)
	if wA[1] != 9 || g.Weight(1) != -0.3 {
		t.Fatalf("SetWeight on view: private %v, base %v", wA[1], g.Weight(1))
	}
}

// TestWeightViewOnPatchedGraph checks views over a patch lineage: the
// view evaluates the patched structure (shared immutable pools) under
// private weights.
func TestWeightViewOnPatchedGraph(t *testing.T) {
	g := viewGraph()
	p := NewPatch(g)
	w := p.AddWeight(1.1)
	nv := p.AddVar()
	gi := p.AddGroup(nv, w, Linear)
	p.AddGrounding(gi, []Literal{{Var: 0}})
	patched := p.Apply()

	priv := append([]float64(nil), patched.Weights()...)
	view := patched.WeightView(priv)
	assign := []bool{true, false, true, true, true}
	if view.Energy(assign) != patched.Energy(assign) {
		t.Fatal("patched view energy differs under identical weights")
	}
	priv[len(priv)-1] = -1.1
	d := view.Energy(assign) - patched.Energy(assign)
	if math.Abs(d-(-2.2)) > 1e-12 { // flipped the satisfied new group's weight
		t.Fatalf("patched view energy delta %v, want -2.2", d)
	}
}

// TestWeightViewPanicsOnBadLength guards the vector-length contract.
func TestWeightViewPanicsOnBadLength(t *testing.T) {
	g := viewGraph()
	defer func() {
		if recover() == nil {
			t.Fatal("short weight vector did not panic")
		}
	}()
	g.WeightView([]float64{1})
}

// TestGroupVarsMatchesNestedView checks the CSR-direct group-variable
// walk against the synthesized nested view, on both fresh and patched
// graphs (live groundings only).
func TestGroupVarsMatchesNestedView(t *testing.T) {
	g := viewGraph()
	p := NewPatch(g)
	w := p.AddWeight(0.2)
	nv := p.AddVar()
	gi := p.AddGroup(nv, w, Logical)
	p.AddGrounding(gi, []Literal{{Var: 1}, {Var: 2, Neg: true}})
	p.RemoveGrounding(1) // tombstone group 1's first grounding (global index 1)
	patched := p.Apply()

	for _, tc := range []struct {
		name string
		g    *Graph
	}{{"fresh", g}, {"patched", patched}} {
		for i := 0; i < tc.g.NumGroups(); i++ {
			want := map[VarID]int{}
			gr := tc.g.Group(i)
			want[gr.Head]++
			for _, gnd := range gr.Groundings {
				for _, lit := range gnd.Lits {
					want[lit.Var]++
				}
			}
			got := map[VarID]int{}
			tc.g.GroupVars(int32(i), func(v VarID) { got[v]++ })
			if len(got) != len(want) {
				t.Fatalf("%s group %d: GroupVars saw %v, nested view %v", tc.name, i, got, want)
			}
			for v, n := range want {
				if got[v] != n {
					t.Fatalf("%s group %d var %d: %d visits, want %d", tc.name, i, v, got[v], n)
				}
			}
		}
	}
}

package factor

import (
	"fmt"
	"math"
)

// CSR exposes the flat compressed-sparse-row arrays of a Graph — the
// DimmWitted-style layout Build emits. Samplers that want contiguous
// index arithmetic (e.g. the parallel Gibbs workers) read these arrays
// directly instead of walking the nested Group view.
//
// On a patched graph the frozen arrays alone are not the whole story:
// overflow rows (GndExtra, AdjExtra) hold the patched-in groundings and
// adjacency entries, and DeadAt/Epoch mark tombstoned groundings (a
// grounding k is dead when DeadAt[k] != 0 && DeadAt[k] <= Epoch). Rebuild
// through NewBuilderFrom to recover a purely contiguous view.
//
// All slices are shared with the Graph and must be treated as read-only.
type CSR struct {
	// Per-group attributes.
	GroupHead   []int32
	GroupWeight []int32
	GroupSem    []Semantics

	// Group g's frozen groundings are the global grounding indices
	// [GndOff[g], GndOff[g+1]); grounding k's literals are
	// Lits[LitOff[k]:LitOff[k+1]], encoded LitVar/LitNeg.
	GndOff []int32
	LitOff []int32
	Lits   []int32

	// Per-variable adjacency: variable v touches groups
	// AdjGroups[AdjOff[v]:AdjOff[v+1]] (deduplicated, ascending).
	AdjOff    []int32
	AdjGroups []int32

	// Per-group semantics lookup tables: group g's precomputed g(n) values
	// are SemTab[SemOff[g]+n] for n in [0, max support of g].
	SemOff []int32
	SemTab []float64

	// Markov-blanket neighbor CSR: variable v shares at least one group
	// with exactly Nbrs[NbrOff[v]:NbrOff[v+1]] (deduplicated, ascending,
	// self excluded). Conditional caches invalidate along these rows.
	NbrOff []int32
	Nbrs   []int32

	// Patch extensions (zero-valued on freshly built graphs).
	GndExtra [][]int32 // per group: overflow grounding ids
	AdjExtra [][]int32 // per var: overflow adjacent group ids
	NbrExtra [][]int32 // per var: overflow blanket neighbors
	DeadAt   []int32   // per grounding: tombstoning epoch (0 = live)
	Epoch    int32     // this view's patch generation
}

// LitVar decodes the variable of a pooled literal.
func LitVar(l int32) int32 { return l >> 1 }

// LitNeg decodes the negation flag of a pooled literal.
func LitNeg(l int32) bool { return l&1 == 1 }

// CSR returns the flat layout of the graph. The arrays are shared; treat
// them as read-only.
func (g *Graph) CSR() CSR {
	return CSR{
		GroupHead:   g.groupHead,
		GroupWeight: g.groupWeight,
		GroupSem:    g.groupSem,
		GndOff:      g.gndOff,
		LitOff:      g.litOff,
		Lits:        g.lits,
		AdjOff:      g.adjOff,
		AdjGroups:   g.adjGroups,
		SemOff:      g.semOff,
		SemTab:      g.semTab,
		NbrOff:      g.nbrOff,
		Nbrs:        g.nbrs,
		GndExtra:    g.gndExtra,
		AdjExtra:    g.adjExtra,
		NbrExtra:    g.nbrExtra,
		DeadAt:      g.deadAt,
		Epoch:       g.epoch,
	}
}

// EnergyDeltaOf computes E(v=true) − E(v=false) conditioned on the rest of
// assign by direct evaluation of v's adjacent groups over the flat layout —
// no support counters required, so any goroutine holding a consistent view
// of assign can call it.
func (g *Graph) EnergyDeltaOf(assign []bool, v VarID) float64 {
	return g.EnergyDeltaShard(assign, assign, 0, int32(g.numVars), v)
}

// shardGnd evaluates one grounding of a group adjacent to vi under the
// sharded read rule and reports its contribution to the group's
// satisfied-grounding counts with vi=true (n1) and vi=false (n0).
func (g *Graph) shardGnd(k, vi int32, cur, snap []bool, lo, hi int32) (n1, n0 int) {
	sat := true
	hasPos, hasNeg := false, false
	for li := g.litOff[k]; li < g.litOff[k+1]; li++ {
		l := g.lits[li]
		u := l >> 1
		neg := l&1 == 1
		if u == vi {
			if neg {
				hasNeg = true
			} else {
				hasPos = true
			}
			continue
		}
		var uval bool
		if u >= lo && u <= hi {
			uval = cur[u]
		} else {
			uval = snap[u]
		}
		if uval == neg {
			sat = false
			break
		}
	}
	if !sat {
		return 0, 0
	}
	if !hasNeg {
		n1 = 1
	}
	if !hasPos {
		n0 = 1
	}
	return n1, n0
}

// shardSupport counts group gi's satisfied live groundings with vi=true
// (n1) and vi=false (n0), frozen range plus overflow, under the sharded
// read rule.
func (g *Graph) shardSupport(gi, vi int32, cur, snap []bool, lo, hi int32) (n1, n0 int) {
	for k := g.gndOff[gi]; k < g.gndOff[gi+1]; k++ {
		if !g.gndLive(k) {
			continue
		}
		i1, i0 := g.shardGnd(k, vi, cur, snap, lo, hi)
		n1 += i1
		n0 += i0
	}
	if g.gndExtra != nil {
		for _, k := range g.gndExtra[gi] {
			if !g.gndLive(k) {
				continue
			}
			i1, i0 := g.shardGnd(k, vi, cur, snap, lo, hi)
			n1 += i1
			n0 += i0
		}
	}
	return n1, n0
}

// EnergyDeltaShard is EnergyDeltaOf under a sharded read rule: variables
// in [lo, hi] are read from cur, all others from snap. The parallel
// sampler's workers pass their ownership range so they observe their own
// in-sweep writes (Gauss-Seidel within the shard) and sweep-start
// snapshots of every other shard. There is exactly one evaluator: the
// sequential direct evaluation is the lo..hi-covers-everything case.
func (g *Graph) EnergyDeltaShard(cur, snap []bool, lo, hi int32, v VarID) float64 {
	vi := int32(v)
	var delta float64
	adj := g.adjGroups[g.adjOff[v]:g.adjOff[v+1]]
	var xadj []int32
	if g.adjExtra != nil {
		xadj = g.adjExtra[v]
	}
	weights, groupWeight, groupHead := g.weights, g.groupWeight, g.groupHead
	semOff, semTab := g.semOff, g.semTab
	for ai := 0; ai < len(adj)+len(xadj); ai++ {
		var gi int32
		if ai < len(adj) {
			gi = adj[ai]
		} else {
			gi = xadj[ai-len(adj)]
		}
		// n1/n0: satisfied groundings of the group with v=true / v=false.
		n1, n0 := g.shardSupport(gi, vi, cur, snap, lo, hi)
		w := weights[groupWeight[gi]]
		tab := semTab[semOff[gi]:]
		if groupHead[gi] == vi {
			// E(v=1) = +w·g(n1); E(v=0) = −w·g(n0) ⇒ diff = w·(g(n1)+g(n0)).
			delta += w * (tab[n1] + tab[n0])
		} else {
			h := groupHead[gi]
			var hv bool
			if h >= lo && h <= hi {
				hv = cur[h]
			} else {
				hv = snap[h]
			}
			if hv {
				delta += w * (tab[n1] - tab[n0])
			} else {
				delta -= w * (tab[n1] - tab[n0])
			}
		}
	}
	return delta
}

// CondProbOf returns P(v = true | rest of assign) by direct evaluation
// (see EnergyDeltaOf).
func (g *Graph) CondProbOf(assign []bool, v VarID) float64 {
	return 1 / (1 + math.Exp(-g.EnergyDeltaOf(assign, v)))
}

// WeightStatsOf accumulates, for each weight id, the statistic
// Σ_groups sign(head)·g(n) of the given world into out — the same
// sufficient statistic as State.WeightStats, but computed in one flat pass
// over the literal pool from a bare assignment (no support counters).
// len(out) must be NumWeights.
func (g *Graph) WeightStatsOf(assign []bool, out []float64) {
	if len(out) != len(g.weights) {
		panic(fmt.Sprintf("factor: WeightStatsOf got %d slots, want %d", len(out), len(g.weights)))
	}
	for gi := range g.groupHead {
		n := g.groupSupport(int32(gi), assign)
		sign := -1.0
		if assign[g.groupHead[gi]] {
			sign = 1.0
		}
		out[g.groupWeight[gi]] += sign * g.semVal(int32(gi), n)
	}
}

package factor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// votingGraph builds the Example 2.5 voting program: one query variable q,
// nUp evidence-true "Up" tuples and nDown evidence-true "Down" tuples,
// with rules q :- Up(x) [w=+1] and q :- Down(x) [w=-1].
func votingGraph(sem Semantics, nUp, nDown int, evidence bool) (*Graph, VarID) {
	b := NewBuilder()
	q := b.AddVar()
	wUp := b.AddWeight(1)
	wDown := b.AddWeight(-1)
	var upG, downG []Grounding
	for i := 0; i < nUp; i++ {
		var v VarID
		if evidence {
			v = b.AddEvidenceVar(true)
		} else {
			v = b.AddVar()
		}
		upG = append(upG, Grounding{Lits: []Literal{{Var: v}}})
	}
	for i := 0; i < nDown; i++ {
		var v VarID
		if evidence {
			v = b.AddEvidenceVar(true)
		} else {
			v = b.AddVar()
		}
		downG = append(downG, Grounding{Lits: []Literal{{Var: v}}})
	}
	b.AddGroup(q, wUp, sem, upG)
	b.AddGroup(q, wDown, sem, downG)
	return b.MustBuild(), q
}

func TestBuilderBasics(t *testing.T) {
	b := NewBuilder()
	v0 := b.AddVar()
	v1 := b.AddEvidenceVar(true)
	w := b.AddWeight(2.5)
	b.AddGroup(v0, w, Linear, []Grounding{{Lits: []Literal{{Var: v1}}}})
	g := b.MustBuild()
	if g.NumVars() != 2 || g.NumGroups() != 1 || g.NumWeights() != 1 || g.NumGroundings() != 1 {
		t.Fatalf("counts: vars=%d groups=%d weights=%d groundings=%d",
			g.NumVars(), g.NumGroups(), g.NumWeights(), g.NumGroundings())
	}
	if g.IsEvidence(v0) || !g.IsEvidence(v1) || !g.EvidenceValue(v1) {
		t.Fatal("evidence flags wrong")
	}
	if g.Weight(w) != 2.5 {
		t.Fatalf("Weight = %v, want 2.5", g.Weight(w))
	}
	g.SetWeight(w, -1)
	if g.Weight(w) != -1 {
		t.Fatalf("SetWeight did not stick")
	}
}

func TestBuildValidation(t *testing.T) {
	b := NewBuilder()
	v := b.AddVar()
	w := b.AddWeight(1)
	b.AddGroup(VarID(7), w, Linear, nil)
	if _, err := b.Build(); err == nil {
		t.Fatal("out-of-range head accepted")
	}
	b2 := NewBuilder()
	v = b2.AddVar()
	b2.AddGroup(v, WeightID(3), Linear, nil)
	if _, err := b2.Build(); err == nil {
		t.Fatal("out-of-range weight accepted")
	}
	b3 := NewBuilder()
	v = b3.AddVar()
	w = b3.AddWeight(1)
	b3.AddGroup(v, w, Linear, []Grounding{{Lits: []Literal{{Var: 99}}}})
	if _, err := b3.Build(); err == nil {
		t.Fatal("out-of-range body var accepted")
	}
}

func TestEnergyVotingClosedForm(t *testing.T) {
	for _, sem := range []Semantics{Linear, Logical, Ratio} {
		g, q := votingGraph(sem, 5, 3, true)
		assign := make([]bool, g.NumVars())
		for v := 1; v < g.NumVars(); v++ {
			assign[v] = true
		}
		assign[q] = true
		e1 := g.Energy(assign)
		assign[q] = false
		e0 := g.Energy(assign)
		wantDelta := 2 * (sem.G(5) - sem.G(3)) // (g5 - g3) - (-(g5 - g3))
		if math.Abs((e1-e0)-wantDelta) > 1e-12 {
			t.Errorf("%v: E1-E0 = %v, want %v", sem, e1-e0, wantDelta)
		}
	}
}

func TestEnergyOfGroupsMatchesTotal(t *testing.T) {
	g, _ := votingGraph(Ratio, 4, 4, true)
	assign := make([]bool, g.NumVars())
	for i := range assign {
		assign[i] = i%2 == 0
	}
	all := []int32{0, 1}
	if d := math.Abs(g.Energy(assign) - g.EnergyOfGroups(assign, all)); d > 1e-12 {
		t.Fatalf("EnergyOfGroups(all) differs from Energy by %v", d)
	}
	part := g.EnergyOfGroups(assign, []int32{0})
	rest := g.EnergyOfGroups(assign, []int32{1})
	if d := math.Abs(g.Energy(assign) - part - rest); d > 1e-12 {
		t.Fatalf("group energies don't sum: diff %v", d)
	}
}

func TestAdjacentGroups(t *testing.T) {
	g, q := votingGraph(Linear, 2, 2, true)
	adj := g.AdjacentGroups(q)
	if len(adj) != 2 {
		t.Fatalf("q adjacent to %d groups, want 2", len(adj))
	}
	// An Up evidence var is in exactly one group.
	adj = g.AdjacentGroups(1)
	if len(adj) != 1 || adj[0] != 0 {
		t.Fatalf("up var adjacency = %v, want [0]", adj)
	}
}

func TestPairAdjacency(t *testing.T) {
	b := NewBuilder()
	a := b.AddVar()
	c := b.AddVar()
	d := b.AddVar()
	e := b.AddVar() // isolated
	w := b.AddWeight(1)
	b.AddGroup(a, w, Linear, []Grounding{{Lits: []Literal{{Var: c}, {Var: d}}}})
	g := b.MustBuild()
	pat := g.PairAdjacency()
	n := g.NumVars()
	check := func(i, j VarID, want bool) {
		t.Helper()
		if pat[int(i)*n+int(j)] != want || pat[int(j)*n+int(i)] != want {
			t.Fatalf("pair (%d,%d) = %v, want %v", i, j, pat[int(i)*n+int(j)], want)
		}
	}
	check(a, c, true)  // head-body
	check(a, d, true)  // head-body
	check(c, d, true)  // body-body same grounding
	check(a, e, false) // isolated
	check(e, e, true)  // diagonal
}

func TestStateCountersMatchRecount(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g, _ := votingGraph(Ratio, 6, 6, false)
	s := NewState(g)
	for step := 0; step < 500; step++ {
		v := VarID(rng.Intn(g.NumVars()))
		s.Set(v, rng.Intn(2) == 0)
	}
	// Compare with a recount from scratch.
	want := NewStateWith(g, s.Assign)
	for gi := 0; gi < g.NumGroups(); gi++ {
		if s.Support(gi) != want.Support(gi) {
			t.Fatalf("group %d support drifted: inc=%d scratch=%d", gi, s.Support(gi), want.Support(gi))
		}
	}
	if d := math.Abs(s.Energy() - g.Energy(s.Assign)); d > 1e-9 {
		t.Fatalf("State.Energy drifted from Graph.Energy by %v", d)
	}
}

func TestEnergyDeltaMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 20; trial++ {
		g := randomGraph(rng, 8, 12, 3)
		s := NewState(g)
		for i := 0; i < 30; i++ {
			v := VarID(rng.Intn(g.NumVars()))
			if !g.IsEvidence(v) {
				s.Set(v, rng.Intn(2) == 0)
			}
		}
		for v := VarID(0); int(v) < g.NumVars(); v++ {
			if g.IsEvidence(v) {
				continue
			}
			work := append([]bool(nil), s.Assign...)
			work[v] = true
			e1 := g.Energy(work)
			work[v] = false
			e0 := g.Energy(work)
			if d := math.Abs(s.EnergyDelta(v) - (e1 - e0)); d > 1e-9 {
				t.Fatalf("trial %d var %d: EnergyDelta=%v brute=%v", trial, v, s.EnergyDelta(v), e1-e0)
			}
		}
	}
}

// randomGraph builds a random graph with nv vars (some evidence), ng
// groups, and up to litsPer literals per grounding; heads may also appear
// in bodies to exercise the combined head/body path.
func randomGraph(rng *rand.Rand, nv, ng, litsPer int) *Graph {
	b := NewBuilder()
	for i := 0; i < nv; i++ {
		if rng.Float64() < 0.25 {
			b.AddEvidenceVar(rng.Intn(2) == 0)
		} else {
			b.AddVar()
		}
	}
	for i := 0; i < ng; i++ {
		w := b.AddWeight(rng.NormFloat64())
		head := VarID(rng.Intn(nv))
		nGnd := 1 + rng.Intn(3)
		var gnds []Grounding
		for k := 0; k < nGnd; k++ {
			nl := 1 + rng.Intn(litsPer)
			var lits []Literal
			for l := 0; l < nl; l++ {
				lits = append(lits, Literal{Var: VarID(rng.Intn(nv)), Neg: rng.Intn(2) == 0})
			}
			gnds = append(gnds, Grounding{Lits: lits})
		}
		sem := Semantics(rng.Intn(3))
		b.AddGroup(head, w, sem, gnds)
	}
	return b.MustBuild()
}

func TestSetEvidencePanics(t *testing.T) {
	g, _ := votingGraph(Linear, 1, 1, true)
	s := NewState(g)
	defer func() {
		if recover() == nil {
			t.Fatal("Set on evidence variable did not panic")
		}
	}()
	s.Set(1, false)
}

func TestSyncEvidence(t *testing.T) {
	g, q := votingGraph(Linear, 2, 2, false)
	s := NewState(g)
	s.Set(1, true)
	g.SetEvidence(1, true, false)
	s.SyncEvidence()
	if s.Assign[1] != false {
		t.Fatal("SyncEvidence did not force evidence value")
	}
	// Counters must still be consistent.
	want := NewStateWith(g, s.Assign)
	for gi := 0; gi < g.NumGroups(); gi++ {
		if s.Support(gi) != want.Support(gi) {
			t.Fatalf("group %d support inconsistent after SyncEvidence", gi)
		}
	}
	_ = q
}

func TestSetAssignmentRespectsEvidence(t *testing.T) {
	g, q := votingGraph(Linear, 2, 2, true)
	s := NewState(g)
	proposal := make([]bool, g.NumVars()) // everything false, incl. evidence
	proposal[q] = true
	s.SetAssignment(proposal)
	if !s.Assign[1] {
		t.Fatal("SetAssignment overwrote evidence value")
	}
	if !s.Assign[q] {
		t.Fatal("SetAssignment dropped free-variable value")
	}
}

func TestWeightStats(t *testing.T) {
	g, q := votingGraph(Logical, 3, 2, true)
	s := NewState(g)
	s.Set(q, true)
	stats := make([]float64, g.NumWeights())
	s.WeightStats(stats)
	// sign(q)=+1, g(3)=1 for weight 0; g(2)=1 for weight 1.
	if stats[0] != 1 || stats[1] != 1 {
		t.Fatalf("stats = %v, want [1 1]", stats)
	}
	s.Set(q, false)
	stats[0], stats[1] = 0, 0
	s.WeightStats(stats)
	if stats[0] != -1 || stats[1] != -1 {
		t.Fatalf("stats = %v, want [-1 -1]", stats)
	}
}

func TestMarginalOfIsolated(t *testing.T) {
	g, q := votingGraph(Linear, 2, 1, true)
	s := NewState(g)
	p := g.MarginalOfIsolated(q, s.Assign)
	// W = 2·(g(2)·1 − g(1)·1)… E(q=1) = 1·(2) + (−1)·(1) = 1; E(q=0) = −1.
	want := 1 / (1 + math.Exp(-2.0))
	if math.Abs(p-want) > 1e-12 {
		t.Fatalf("marginal = %v, want %v", p, want)
	}
	// Non-isolated: free body var.
	g2, q2 := votingGraph(Linear, 2, 1, false)
	if !math.IsNaN(g2.MarginalOfIsolated(q2, make([]bool, g2.NumVars()))) {
		t.Fatal("MarginalOfIsolated should be NaN for non-isolated variable")
	}
}

func TestNewBuilderFromIsDeepCopy(t *testing.T) {
	g, q := votingGraph(Linear, 2, 2, true)
	b := NewBuilderFrom(g)
	nv := b.AddVar()
	w := b.AddWeight(3)
	b.AddGroup(nv, w, Linear, []Grounding{{Lits: []Literal{{Var: q}}}})
	g2 := b.MustBuild()
	if g2.NumVars() != g.NumVars()+1 || g2.NumGroups() != g.NumGroups()+1 {
		t.Fatalf("extended graph wrong shape: vars %d groups %d", g2.NumVars(), g2.NumGroups())
	}
	// Mutating the copy's grounding must not touch the original.
	g2.Group(0).Groundings[0].Lits[0].Neg = true
	if g.Group(0).Groundings[0].Lits[0].Neg {
		t.Fatal("NewBuilderFrom shared grounding storage")
	}
}

// Property test: incremental Set always agrees with a full Recount, and
// EnergyDelta always agrees with brute-force energy differences, on random
// graphs and random walks.
func TestQuickStateConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 3+rng.Intn(8), 1+rng.Intn(10), 3)
		s := NewState(g)
		for i := 0; i < 40; i++ {
			v := VarID(rng.Intn(g.NumVars()))
			if g.IsEvidence(v) {
				continue
			}
			val := rng.Intn(2) == 0
			work := append([]bool(nil), s.Assign...)
			work[v] = true
			e1 := g.Energy(work)
			work[v] = false
			e0 := g.Energy(work)
			if math.Abs(s.EnergyDelta(v)-(e1-e0)) > 1e-9 {
				return false
			}
			s.Set(v, val)
			if math.Abs(s.Energy()-g.Energy(s.Assign)) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

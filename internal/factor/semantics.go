// Package factor implements the factor-graph model of Section 2.4 of the
// paper: Boolean random variables, grounded rule groups, and the three
// counting semantics g(n) of Figure 4 (Linear, Logical, Ratio).
//
// A grounded inference rule γ = (q, w) contributes energy
//
//	w(γ, I) = w · sign(γ, I) · g(n(γ, I))        (Equation 1)
//
// where sign is +1 when the head holds in possible world I and -1
// otherwise, and n is the number of satisfied body groundings. A Group in
// this package is exactly one such γ: a head variable, a tied weight, and
// the set of body groundings. The probability of a world is
//
//	Pr[I] = Z⁻¹ · exp( Σ_γ w(γ, I) )             (Equation 2)
package factor

import (
	"fmt"
	"math"
)

// Semantics selects the transformation-group function g(n) applied to the
// satisfied-grounding count of a rule (Figure 4 of the paper).
type Semantics uint8

const (
	// Linear is g(n) = n: every satisfied grounding adds full weight.
	Linear Semantics = iota
	// Logical is g(n) = 1{n>0}: a rule fires at most once per head.
	Logical
	// Ratio is g(n) = log(1+n): diminishing returns in the support count.
	Ratio
)

// G evaluates the semantics function on a support count.
func (s Semantics) G(n int) float64 {
	switch s {
	case Linear:
		return float64(n)
	case Logical:
		if n > 0 {
			return 1
		}
		return 0
	case Ratio:
		return math.Log1p(float64(n))
	default:
		panic(fmt.Sprintf("factor: unknown semantics %d", s))
	}
}

// String implements fmt.Stringer.
func (s Semantics) String() string {
	switch s {
	case Linear:
		return "linear"
	case Logical:
		return "logical"
	case Ratio:
		return "ratio"
	default:
		return fmt.Sprintf("Semantics(%d)", uint8(s))
	}
}

// ParseSemantics converts a name ("linear", "logical", "ratio") into a
// Semantics value.
func ParseSemantics(name string) (Semantics, error) {
	switch name {
	case "linear":
		return Linear, nil
	case "logical":
		return Logical, nil
	case "ratio":
		return Ratio, nil
	default:
		return 0, fmt.Errorf("factor: unknown semantics %q (want linear, logical, or ratio)", name)
	}
}

package factor

import (
	"math"
	"testing"
)

func TestSemanticsG(t *testing.T) {
	cases := []struct {
		sem  Semantics
		n    int
		want float64
	}{
		{Linear, 0, 0},
		{Linear, 5, 5},
		{Logical, 0, 0},
		{Logical, 1, 1},
		{Logical, 1000, 1},
		{Ratio, 0, 0},
		{Ratio, 1, math.Log(2)},
		{Ratio, 9, math.Log(10)},
	}
	for _, c := range cases {
		if got := c.sem.G(c.n); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%v.G(%d) = %v, want %v", c.sem, c.n, got, c.want)
		}
	}
}

func TestSemanticsString(t *testing.T) {
	if Linear.String() != "linear" || Logical.String() != "logical" || Ratio.String() != "ratio" {
		t.Fatalf("String() mismatch: %v %v %v", Linear, Logical, Ratio)
	}
	if s := Semantics(99).String(); s != "Semantics(99)" {
		t.Fatalf("unknown semantics String() = %q", s)
	}
}

func TestParseSemantics(t *testing.T) {
	for _, name := range []string{"linear", "logical", "ratio"} {
		s, err := ParseSemantics(name)
		if err != nil {
			t.Fatalf("ParseSemantics(%q): %v", name, err)
		}
		if s.String() != name {
			t.Fatalf("round trip %q -> %v", name, s)
		}
	}
	if _, err := ParseSemantics("nope"); err == nil {
		t.Fatal("ParseSemantics accepted unknown name")
	}
}

func TestSemanticsGPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("G on unknown semantics did not panic")
		}
	}()
	Semantics(42).G(1)
}

// TestVotingExampleClosedForm reproduces Example 2.5 of the paper exactly:
// q() :- Up(x) weight 1 and q() :- Down(x) weight -1, with |Up| = 10⁶ and
// |Down| = 10⁶ − 100 — checked against the closed form
// Pr[q] = e^W / (e^-W + e^W), W = g(|Up|) − g(|Down|).
func TestVotingExampleClosedForm(t *testing.T) {
	up, down := 1_000_000, 1_000_000-100
	for _, c := range []struct {
		sem     Semantics
		wantLow float64
		wantHi  float64
	}{
		{Linear, 1 - 1e-40, 1.0},        // ≈ 1 − e⁻²⁰⁰
		{Ratio, 0.5 - 1e-4, 0.5 + 1e-4}, // ≈ 0.5
		{Logical, 0.5, 0.5},             // exactly 0.5
	} {
		w := c.sem.G(up) - c.sem.G(down)
		p := math.Exp(w) / (math.Exp(-w) + math.Exp(w))
		if p < c.wantLow || p > c.wantHi {
			t.Errorf("%v: Pr[q] = %v, want in [%v, %v]", c.sem, p, c.wantLow, c.wantHi)
		}
	}
	// Logical with |Down| = 1 still gives exactly 0.5 — the paper's point
	// that logical semantics ignores vote strength.
	w := Logical.G(up) - Logical.G(1)
	p := math.Exp(w) / (math.Exp(-w) + math.Exp(w))
	if p != 0.5 {
		t.Errorf("logical with one down-vote: Pr[q] = %v, want 0.5", p)
	}
}

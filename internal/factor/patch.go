package factor

import (
	"fmt"
	"sort"
)

// Patch derives a new Graph from an existing one at delta cost: new
// variables, weights, groups, and groundings are appended to the flat
// pools, removed groundings are tombstoned, and the per-variable
// adjacency CSR rows are spliced through small overflow slices — the
// untouched pools are never rewritten. This is the Δ-cost update path the
// paper's incremental-grounding contribution calls for.
//
// Precisely, a patch costs O(|Δ|) pool writes plus flat memcpys of the
// per-variable/per-group side tables (weight values, evidence flags, and
// overflow slice headers — O(V + G + W) words with no hashing or
// per-element allocation). A full rebuild is O(Σ groundings·literals)
// with per-group map construction, so the patch path wins by an order of
// magnitude already at percent-scale deltas and the gap widens with
// graph size; see BenchmarkApplyUpdatePatched vs
// BenchmarkApplyUpdateRebuild.
//
// Lineage sharing. Apply returns a new *Graph that shares the pool
// backing arrays with the base graph. Appends land past the base graph's
// slice lengths, and tombstones are stamped with the new graph's epoch,
// so the base graph keeps evaluating the old distribution unchanged —
// exactly what the incremental-inference engine needs, since it scores
// proposals against both Pr(0) and Pr(∆). Two rules follow:
//
//   - The lineage must be linear: once a Patch has been applied to a
//     graph, derive further patches from the result, not from the base
//     again (a second patch from the same base would append into pool
//     capacity the first patch's result already owns).
//   - Patching is not concurrency-safe with in-flight evaluation on any
//     graph of the lineage: apply patches between sweeps.
//
// Repeated patching fragments the layout (tombstones in the frozen rows,
// groundings reachable only through overflow). Monitor
// Graph.Fragmentation and compact by rebuilding through NewBuilderFrom
// when it crosses a threshold.
type Patch struct {
	base *Graph
	g    *Graph

	structOwned bool // overflow side tables copied for this patch
	applied     bool

	// adjacency-membership memo for pairs checked or added this patch;
	// key is int64(var)<<32 | group.
	adjSeen map[int64]bool
	// blanket-membership memo for neighbor pairs checked or added this
	// patch; key is int64(min)<<32 | max.
	nbrSeen map[int64]bool
	// per-group distinct-variable memo: seeded by one scan on the first
	// AddGrounding into a group, extended as groundings land, so streamed
	// additions stay O(Δ) instead of rescanning the group per call.
	groupVarsMemo map[int32]*groupVarSet
}

// groupVarSet tracks the distinct variables of one group during a patch.
type groupVarSet struct {
	seen map[VarID]bool
	vars []VarID
}

func (s *groupVarSet) add(v VarID) {
	if !s.seen[v] {
		s.seen[v] = true
		s.vars = append(s.vars, v)
	}
}

// NewPatch starts a patch over g. The working copy's weight table and
// evidence arrays are private from the start — callers mutate both
// directly on a live graph (learning writes weights, supervision flips
// evidence) and the base graph must keep its values; the heavyweight
// pools are shared per the lineage rules above.
func NewPatch(g *Graph) *Patch {
	ng := *g
	ng.epoch = g.epoch + 1
	ng.weights = append([]float64(nil), g.weights...)
	ng.evidence = append([]bool(nil), g.evidence...)
	ng.evValue = append([]bool(nil), g.evValue...)
	return &Patch{
		base:          g,
		g:             &ng,
		adjSeen:       make(map[int64]bool),
		nbrSeen:       make(map[int64]bool),
		groupVarsMemo: make(map[int32]*groupVarSet),
	}
}

// checkOpen panics after Apply: a patch is single-use.
func (p *Patch) checkOpen() {
	if p.applied {
		panic("factor: Patch used after Apply")
	}
}

// ownStruct takes private copies of the per-row overflow tables (top
// level only — the rows themselves stay shared and are grown by guarded
// appends). Called before any structural mutation.
func (p *Patch) ownStruct() {
	if p.structOwned {
		return
	}
	p.structOwned = true
	g := p.g
	ge := make([][]int32, len(g.groupHead))
	copy(ge, g.gndExtra)
	g.gndExtra = ge
	ae := make([][]int32, g.numVars)
	copy(ae, g.adjExtra)
	g.adjExtra = ae
	be := make([][]bodyOcc, g.numVars)
	copy(be, g.bodyExtra)
	g.bodyExtra = be
	ne := make([][]int32, g.numVars)
	copy(ne, g.nbrExtra)
	g.nbrExtra = ne
	// Semantics-table offsets are a per-group side table: extending a
	// group's table relocates its row, so the patch owns the offsets.
	g.semOff = append([]int32(nil), g.semOff...)
}

// AddVar registers a new free variable and returns its id.
func (p *Patch) AddVar() VarID {
	p.checkOpen()
	p.ownStruct()
	g := p.g
	g.evidence = append(g.evidence, false)
	g.evValue = append(g.evValue, false)
	g.bodyOff = append(g.bodyOff, g.bodyOff[len(g.bodyOff)-1])
	g.adjOff = append(g.adjOff, g.adjOff[len(g.adjOff)-1])
	g.nbrOff = append(g.nbrOff, g.nbrOff[len(g.nbrOff)-1])
	g.bodyExtra = append(g.bodyExtra, nil)
	g.adjExtra = append(g.adjExtra, nil)
	g.nbrExtra = append(g.nbrExtra, nil)
	g.numVars++
	return VarID(g.numVars - 1)
}

// SetEvidence fixes (or releases) the value of a variable in the patched
// graph; the base graph keeps its evidence state.
func (p *Patch) SetEvidence(v VarID, ev, val bool) {
	p.checkOpen()
	g := p.g
	if int(v) < 0 || int(v) >= g.numVars {
		panic(fmt.Sprintf("factor: Patch.SetEvidence var %d out of range [0,%d)", v, g.numVars))
	}
	g.evidence[v] = ev
	g.evValue[v] = val
}

// AddWeight registers a weight with an initial value and returns its id.
func (p *Patch) AddWeight(init float64) WeightID {
	p.checkOpen()
	p.g.weights = append(p.g.weights, init)
	return WeightID(len(p.g.weights) - 1)
}

// AddGroup appends an empty rule group; populate it with AddGrounding.
// Returns the group index (indexes are append-only across the lineage).
func (p *Patch) AddGroup(head VarID, w WeightID, sem Semantics) int {
	p.checkOpen()
	p.ownStruct()
	g := p.g
	if head < 0 || int(head) >= g.numVars {
		panic(fmt.Sprintf("factor: Patch.AddGroup head %d out of range [0,%d)", head, g.numVars))
	}
	if w < 0 || int(w) >= len(g.weights) {
		panic(fmt.Sprintf("factor: Patch.AddGroup weight %d out of range [0,%d)", w, len(g.weights)))
	}
	g.groupHead = append(g.groupHead, int32(head))
	g.groupWeight = append(g.groupWeight, int32(w))
	g.groupSem = append(g.groupSem, sem)
	// New groups own no frozen pool range; their groundings live entirely
	// in the overflow row. The repeated offset keeps len(gndOff) ==
	// NumGroups+1 with an empty [off, off) main range.
	g.gndOff = append(g.gndOff, g.gndOff[len(g.gndOff)-1])
	g.gndExtra = append(g.gndExtra, nil)
	// The new group's semantics table starts at the pool tail with the
	// support-0 entry; AddGrounding extends it in place.
	g.semOff = append(g.semOff, int32(len(g.semTab)))
	g.semTab = append(g.semTab, sem.G(0))
	gi := len(g.groupHead) - 1
	p.addAdj(head, int32(gi))
	return gi
}

// hasAdj reports whether group gi is already in v's adjacency (frozen row
// — binary search, it is ascending — or overflow row), memoizing lookups.
func (p *Patch) hasAdj(v VarID, gi int32) bool {
	key := int64(v)<<32 | int64(uint32(gi))
	if p.adjSeen[key] {
		return true
	}
	g := p.g
	row := g.adjGroups[g.adjOff[v]:g.adjOff[v+1]]
	i := sort.Search(len(row), func(i int) bool { return row[i] >= gi })
	found := i < len(row) && row[i] == gi
	if !found {
		for _, x := range g.adjExtra[v] {
			if x == gi {
				found = true
				break
			}
		}
	}
	if found {
		p.adjSeen[key] = true
	}
	return found
}

// addAdj links group gi into v's adjacency if absent.
func (p *Patch) addAdj(v VarID, gi int32) {
	if p.hasAdj(v, gi) {
		return
	}
	p.g.adjExtra[v] = append(p.g.adjExtra[v], gi)
	p.adjSeen[int64(v)<<32|int64(uint32(gi))] = true
}

// hasNbr reports whether a and b are already Markov-blanket neighbors
// (frozen row — binary search, it is ascending — or overflow row),
// memoizing lookups. Rows are kept symmetric, so one direction suffices.
func (p *Patch) hasNbr(a, b VarID) bool {
	lo, hi := a, b
	if lo > hi {
		lo, hi = hi, lo
	}
	key := int64(lo)<<32 | int64(uint32(hi))
	if p.nbrSeen[key] {
		return true
	}
	g := p.g
	row := g.nbrs[g.nbrOff[a]:g.nbrOff[a+1]]
	i := sort.Search(len(row), func(i int) bool { return row[i] >= int32(b) })
	found := i < len(row) && row[i] == int32(b)
	if !found {
		for _, x := range g.nbrExtra[a] {
			if x == int32(b) {
				found = true
				break
			}
		}
	}
	if found {
		p.nbrSeen[key] = true
	}
	return found
}

// addNbr links a and b as blanket neighbors (both directions) if absent.
func (p *Patch) addNbr(a, b VarID) {
	if a == b || p.hasNbr(a, b) {
		return
	}
	p.g.nbrExtra[a] = append(p.g.nbrExtra[a], int32(b))
	p.g.nbrExtra[b] = append(p.g.nbrExtra[b], int32(a))
	lo, hi := a, b
	if lo > hi {
		lo, hi = hi, lo
	}
	p.nbrSeen[int64(lo)<<32|int64(uint32(hi))] = true
}

// groupVars returns the memoized distinct-variable set of group gi (head
// plus every grounding's literals, frozen and overflow, tombstones
// included — stale blanket links only cost spurious invalidations). The
// first call for a group scans it once; later calls return the tracked
// set, which AddGrounding extends as new groundings land.
func (p *Patch) groupVars(gi int32) *groupVarSet {
	if s := p.groupVarsMemo[gi]; s != nil {
		return s
	}
	g := p.g
	s := &groupVarSet{seen: map[VarID]bool{}}
	s.add(VarID(g.groupHead[gi]))
	for k := g.gndOff[gi]; k < g.gndOff[gi+1]; k++ {
		for li := g.litOff[k]; li < g.litOff[k+1]; li++ {
			s.add(VarID(g.lits[li] >> 1))
		}
	}
	for _, k := range g.gndExtra[gi] {
		for li := g.litOff[k]; li < g.litOff[k+1]; li++ {
			s.add(VarID(g.lits[li] >> 1))
		}
	}
	p.groupVarsMemo[gi] = s
	return s
}

// AddGrounding appends one grounding (conjunction of literals) to group
// gi — either a group added by this patch or a pre-existing one — and
// returns its global grounding id, which RemoveGrounding accepts later.
func (p *Patch) AddGrounding(gi int, lits []Literal) int32 {
	p.checkOpen()
	p.ownStruct()
	g := p.g
	if gi < 0 || gi >= len(g.groupHead) {
		panic(fmt.Sprintf("factor: Patch.AddGrounding group %d out of range [0,%d)", gi, len(g.groupHead)))
	}
	// The group's tracked variable set: the new grounding's variables
	// couple to every variable already in the group through its shared
	// support count, so the blanket rows must link them for the
	// conditional caches to invalidate correctly.
	gv := p.groupVars(int32(gi))

	k := int32(g.nGnd)
	for _, lit := range lits {
		if lit.Var < 0 || int(lit.Var) >= g.numVars {
			panic(fmt.Sprintf("factor: Patch.AddGrounding var %d out of range [0,%d)", lit.Var, g.numVars))
		}
		enc := int32(lit.Var) << 1
		if lit.Neg {
			enc |= 1
		}
		g.lits = append(g.lits, enc)
	}
	g.litOff = append(g.litOff, int32(len(g.lits)))
	if g.deadAt != nil {
		g.deadAt = append(g.deadAt, 0)
	}

	// Extend the group's semantics table by one support level. The
	// group's prior table covers [0, oldCnt]; when it sits at the pool
	// tail (the common case: groundings stream into the most recently
	// patched groups) it extends in place, otherwise it relocates to the
	// tail — O(group) at worst, amortized O(1) on streaming patterns.
	oldCnt := int(g.gndOff[gi+1]-g.gndOff[gi]) + len(g.gndExtra[gi])
	off := int(g.semOff[gi])
	if off+oldCnt+1 != len(g.semTab) {
		g.semOff[gi] = int32(len(g.semTab))
		g.semTab = append(g.semTab, g.semTab[off:off+oldCnt+1]...)
	}
	g.semTab = append(g.semTab, g.groupSem[gi].G(oldCnt+1))

	g.nGnd++
	g.nExtra++
	g.gndExtra[gi] = append(g.gndExtra[gi], k)

	// Occurrence records: one per distinct variable of the grounding,
	// merging repeated (possibly negated) occurrences, like Build.
	for i, lit := range lits {
		merged := false
		for j := 0; j < i; j++ {
			if lits[j].Var == lit.Var {
				merged = true
				break
			}
		}
		if merged {
			continue
		}
		occ := bodyOcc{group: int32(gi), gnd: k}
		for _, l2 := range lits[i:] {
			if l2.Var != lit.Var {
				continue
			}
			if l2.Neg {
				occ.n[1]++
			} else {
				occ.n[0]++
			}
		}
		g.bodyExtra[lit.Var] = append(g.bodyExtra[lit.Var], occ)
		p.addAdj(lit.Var, int32(gi))
		// Blanket links: to every variable already tracked for the group —
		// including this grounding's earlier variables, which were added to
		// the set as they were processed (addNbr dedupes both directions
		// and skips self-links).
		for _, u := range gv.vars {
			p.addNbr(lit.Var, u)
		}
		gv.add(lit.Var)
	}
	return k
}

// RemoveGrounding tombstones grounding k (as returned by AddGrounding, or
// a frozen pool index). The grounding stays in the pools — its occurrence
// records become dead weight until compaction — but no evaluator at this
// patch's epoch or later counts it. Tombstoning is permanent for the
// lineage: to re-add an identical grounding later, append a fresh one.
func (p *Patch) RemoveGrounding(k int32) {
	p.checkOpen()
	g := p.g
	if k < 0 || int(k) >= g.nGnd {
		panic(fmt.Sprintf("factor: Patch.RemoveGrounding id %d out of range [0,%d)", k, g.nGnd))
	}
	if g.deadAt == nil {
		g.deadAt = make([]int32, g.nGnd)
	} else if len(g.deadAt) < g.nGnd {
		grown := make([]int32, g.nGnd)
		copy(grown, g.deadAt)
		g.deadAt = grown
	}
	if !g.gndLive(k) {
		panic(fmt.Sprintf("factor: Patch.RemoveGrounding id %d already tombstoned", k))
	}
	g.deadAt[k] = g.epoch
	g.nDead++
}

// Apply finalizes the patch and returns the new graph. The patch must not
// be used afterwards; derive further patches from the returned graph.
func (p *Patch) Apply() *Graph {
	p.checkOpen()
	p.applied = true
	return p.g
}

package factor_test

// Differential harness for the Markov-blanket conditional cache: over
// randomized build→update→flip sequences, a cached State and an uncached
// State stepped through identical mutations must report bit-identical
// EnergyDelta and CondProb for every variable after every step — the
// cache's contract is bitwise transparency, so the comparison is exact
// (==), not epsilon-based. Both update modes run: "inplace" applies each
// update through factor.Patch (exercising overflow rows, tombstones, and
// the patched semantics tables / blanket links), "rebuild" rebuilds the
// graph from the independent model oracle. Weight mutations are mixed in
// to exercise bulk invalidation through the weight generation.
//
// Failures print the subtest seed; re-run with
// -run 'TestConditionalCacheDifferential/<mode>/seed=N' to reproduce.

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"deepdive/internal/factor"
)

// cacheSteps is the per-seed step count; 8 seeds × 30 steps = 240
// randomized steps per mode.
const cacheSteps = 30

func TestConditionalCacheDifferential(t *testing.T) {
	for _, mode := range []string{"inplace", "rebuild"} {
		mode := mode
		t.Run(mode, func(t *testing.T) {
			for seed := int64(1); seed <= 8; seed++ {
				seed := seed
				t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
					runCacheDifferential(t, mode, seed)
				})
			}
		})
	}
}

func runCacheDifferential(t *testing.T, mode string, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	m, g := seedModel(rng, t)

	newStates := func(g *factor.Graph, assign []bool) (cached, plain *factor.State) {
		cached = factor.NewStateWith(g, assign)
		plain = factor.NewStateWith(g, assign)
		plain.SetConditionalCache(false)
		return cached, plain
	}

	randomAssign := func(n int) []bool {
		out := make([]bool, n)
		for i := range out {
			out[i] = rng.Intn(2) == 0
		}
		return out
	}

	compareAll := func(step int, cached, plain *factor.State) {
		g := cached.G
		for v := 0; v < g.NumVars(); v++ {
			id := factor.VarID(v)
			dc := cached.EnergyDelta(id)
			dp := plain.EnergyDelta(id)
			if math.Float64bits(dc) != math.Float64bits(dp) {
				t.Fatalf("step %d var %d: cached EnergyDelta %v != uncached %v (bit drift)", step, v, dc, dp)
			}
			pc := cached.CondProb(id)
			pp := plain.CondProb(id)
			if math.Float64bits(pc) != math.Float64bits(pp) {
				t.Fatalf("step %d var %d: cached CondProb %v != uncached %v (bit drift)", step, v, pc, pp)
			}
			// The direct evaluator is a different float reduction only for
			// patched layouts; on both it must agree to within epsilon.
			dd := g.EnergyDeltaOf(cached.Assign, id)
			if math.Abs(dd-dc) > 1e-9*(1+math.Abs(dd)) {
				t.Fatalf("step %d var %d: direct delta %v vs counter %v", step, v, dd, dc)
			}
		}
	}

	cached, plain := newStates(g, randomAssign(g.NumVars()))
	for step := 0; step < cacheSteps; step++ {
		// Mutate the graph: in-place patch or model rebuild.
		if mode == "inplace" {
			p := factor.NewPatch(g)
			mutateStep(rng, p, m)
			g = p.Apply()
		} else {
			p := factor.NewPatch(g) // mutateStep drives both; discard the patch result
			mutateStep(rng, p, m)
			g = m.build(t)
			// Build assigns grounding ids sequentially over live groundings
			// in group order; re-stamp the model so later removals target
			// the rebuilt graph's ids.
			var id int32
			for _, gr := range m.groups {
				for _, gnd := range gr.gnds {
					if gnd.live {
						gnd.flatID = id
						id++
					}
				}
			}
		}

		// Fresh states over the updated graph from one random assignment.
		cached, plain = newStates(g, randomAssign(g.NumVars()))
		compareAll(step, cached, plain)

		// A burst of identical random flips through the fused kernel (Set)
		// and occasional weight changes, comparing after each operation.
		for op := 0; op < 12; op++ {
			switch rng.Intn(5) {
			case 0: // weight change: bulk invalidation via weight generation
				w := factor.WeightID(rng.Intn(g.NumWeights()))
				val := rng.Float64()*2 - 1
				g.SetWeight(w, val)
			case 1: // sample through the fused kernel with a shared draw
				v := randomFreeVar(rng, g)
				if v < 0 {
					continue
				}
				u := rng.Float64()
				vc := cached.SampleVar(v, u)
				vp := plain.SampleVar(v, u)
				if vc != vp {
					t.Fatalf("step %d op %d var %d: SampleVar diverged (%v vs %v)", step, op, v, vc, vp)
				}
			default: // plain flip
				v := randomFreeVar(rng, g)
				if v < 0 {
					continue
				}
				val := rng.Intn(2) == 0
				cached.Set(v, val)
				plain.Set(v, val)
			}
		}
		compareAll(step, cached, plain)
	}
}

// randomFreeVar picks a uniformly random non-evidence variable (-1 when
// none exists).
func randomFreeVar(rng *rand.Rand, g *factor.Graph) factor.VarID {
	for try := 0; try < 64; try++ {
		v := factor.VarID(rng.Intn(g.NumVars()))
		if !g.IsEvidence(v) {
			return v
		}
	}
	return -1
}

// TestCacheSurvivesStateResets pins the bulk-invalidation paths the
// learner and the incremental engine depend on: Recount, SyncEvidence,
// SetAssignment, and direct weight-slice writes announced through
// NoteWeightsChanged must all leave the cache serving fresh conditionals.
func TestCacheSurvivesStateResets(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	_, g := seedModel(rng, t)
	st := factor.NewStateWith(g, make([]bool, g.NumVars()))

	warm := func() {
		for v := 0; v < g.NumVars(); v++ {
			st.EnergyDelta(factor.VarID(v))
		}
	}
	check := func(what string) {
		t.Helper()
		for v := 0; v < g.NumVars(); v++ {
			id := factor.VarID(v)
			got := st.EnergyDelta(id)
			want := g.EnergyDeltaOf(st.Assign, id)
			if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
				t.Fatalf("%s: var %d stale conditional %v, want %v", what, v, got, want)
			}
		}
	}

	warm()
	// Weight change through the graph API.
	g.SetWeight(0, 1.75)
	check("SetWeight")

	// Weight change behind the graph's back (replica learner pattern).
	warm()
	view := g.WeightView(append([]float64(nil), g.Weights()...))
	vst := factor.NewStateWith(view, st.Assign)
	for v := 0; v < view.NumVars(); v++ {
		vst.EnergyDelta(factor.VarID(v))
	}
	view.Weights()[0] = -2.5
	view.NoteWeightsChanged()
	for v := 0; v < view.NumVars(); v++ {
		id := factor.VarID(v)
		got := vst.EnergyDelta(id)
		want := view.EnergyDeltaOf(vst.Assign, id)
		if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
			t.Fatalf("NoteWeightsChanged: var %d stale conditional %v, want %v", v, got, want)
		}
	}

	// Evidence flip + SyncEvidence.
	warm()
	var ev factor.VarID = -1
	for v := 0; v < g.NumVars(); v++ {
		if g.IsEvidence(factor.VarID(v)) {
			ev = factor.VarID(v)
			break
		}
	}
	if ev >= 0 {
		g.SetEvidence(ev, true, !g.EvidenceValue(ev))
		st.SyncEvidence()
		check("SyncEvidence")
	}

	// Wholesale assignment swap.
	warm()
	prop := make([]bool, g.NumVars())
	for i := range prop {
		prop[i] = rng.Intn(2) == 0
	}
	st.SetAssignment(prop)
	check("SetAssignment")

	// Recount after nothing in particular (idempotent refresh).
	warm()
	st.Recount()
	check("Recount")
}

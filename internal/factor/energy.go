package factor

import (
	"runtime"
	"sync"
)

// Epoch returns the patch generation of this graph view: 0 for freshly
// built graphs, incremented by each Patch along a lineage. Together with
// a grounding-layer version it pins a serving snapshot to one consistent
// view of the shared pool backing arrays.
func (g *Graph) Epoch() int32 { return g.epoch }

// MinGroupsPerEnergyWorker is the smallest per-worker chunk of the group
// list worth fanning out in EnergyOfGroupsParallel: below it the
// goroutine handoff costs more than the evaluation it parallelizes.
const MinGroupsPerEnergyWorker = 64

// EnergyOfGroupsParallel is EnergyOfGroups with the group list split
// across up to `workers` goroutines (negative workers means one per
// core). Each worker evaluates a contiguous chunk; the partial sums are
// reduced in chunk order, so the result is deterministic for a fixed
// (len(groups), worker count) — though, floating-point addition being
// non-associative, it may differ from the sequential sum in the last
// bits. Small group lists fall back to the sequential evaluation.
//
// This is the sharded acceptance-scoring path of incremental inference:
// the Metropolis-Hastings chain itself is sequential, but each proposal's
// score touches every changed group, which for large updates dominates
// the per-proposal cost.
func (g *Graph) EnergyOfGroupsParallel(assign []bool, groups []int32, workers int) float64 {
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	nw := len(groups) / MinGroupsPerEnergyWorker
	if nw > workers {
		nw = workers
	}
	if nw <= 1 {
		return g.EnergyOfGroups(assign, groups)
	}
	chunk := (len(groups) + nw - 1) / nw
	partial := make([]float64, nw)
	var wg sync.WaitGroup
	wg.Add(nw)
	for w := 0; w < nw; w++ {
		go func(w int) {
			defer wg.Done()
			lo := w * chunk
			hi := lo + chunk
			if hi > len(groups) {
				hi = len(groups)
			}
			partial[w] = g.EnergyOfGroups(assign, groups[lo:hi])
		}(w)
	}
	wg.Wait()
	var e float64
	for _, p := range partial {
		e += p
	}
	return e
}

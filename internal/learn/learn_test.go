package learn

import (
	"math"
	"testing"

	"deepdive/internal/factor"
	"deepdive/internal/gibbs"
)

// classifierGraph builds the paper's one-line classifier
// Class(x) :- R(x, f) weight = w(f) over nObj objects: even objects carry
// feature 0 and are labeled true, odd objects carry feature 1 and are
// labeled false. The first nTrain objects are evidence; the rest are
// held-out queries. Returns the graph and the query variable ids.
func classifierGraph(nObj, nTrain int) (*factor.Graph, []factor.VarID) {
	b := factor.NewBuilder()
	anchor := b.AddEvidenceVar(true)
	w := []factor.WeightID{b.AddWeight(0), b.AddWeight(0)}
	var queries []factor.VarID
	for i := 0; i < nObj; i++ {
		label := i%2 == 0
		var v factor.VarID
		if i < nTrain {
			v = b.AddEvidenceVar(label)
		} else {
			v = b.AddVar()
			queries = append(queries, v)
		}
		feat := i % 2
		b.AddGroup(v, w[feat], factor.Linear, []factor.Grounding{{Lits: []factor.Literal{{Var: anchor}}}})
	}
	return b.MustBuild(), queries
}

func TestTrainLearnsSeparatingWeights(t *testing.T) {
	g, queries := classifierGraph(40, 30)
	res := Train(g, Options{Epochs: 40, StepSize: 0.3, Seed: 1})
	if res.Weights[0] <= 0.5 {
		t.Fatalf("weight for positive feature = %v, want > 0.5", res.Weights[0])
	}
	if res.Weights[1] >= -0.5 {
		t.Fatalf("weight for negative feature = %v, want < -0.5", res.Weights[1])
	}
	// Held-out inference: even objects should come out likely-true.
	s := gibbs.New(g, 2)
	m := s.Marginals(50, 1000)
	for qi, v := range queries {
		obj := 30 + qi
		if obj%2 == 0 && m[v] < 0.7 {
			t.Errorf("held-out positive object %d marginal %v, want > 0.7", obj, m[v])
		}
		if obj%2 == 1 && m[v] > 0.3 {
			t.Errorf("held-out negative object %d marginal %v, want < 0.3", obj, m[v])
		}
	}
}

func TestTrainLossDecreases(t *testing.T) {
	g, _ := classifierGraph(40, 30)
	initial := NewTrainer(g, Options{Seed: 3}).Loss(5) // untrained model
	res := Train(g, Options{Epochs: 25, StepSize: 0.3, Seed: 3, TrackLoss: true})
	if len(res.LossByEpoch) != 25 {
		t.Fatalf("tracked %d losses, want 25", len(res.LossByEpoch))
	}
	last := res.LossByEpoch[len(res.LossByEpoch)-1]
	if last >= initial {
		t.Fatalf("loss did not decrease: untrained %v final %v", initial, last)
	}
	if last > 0.4 {
		t.Fatalf("final loss %v too high for a separable problem", last)
	}
}

func TestWarmstartStartsLower(t *testing.T) {
	g, _ := classifierGraph(40, 30)
	good := Train(g, Options{Epochs: 40, StepSize: 0.3, Seed: 4}).Weights

	cold := NewTrainer(g, Options{Seed: 5})
	coldLoss := cold.Loss(5)

	warm := NewTrainer(g, Options{Seed: 5, Warmstart: good})
	warmLoss := warm.Loss(5)

	if warmLoss >= coldLoss {
		t.Fatalf("warmstart loss %v not lower than cold loss %v", warmLoss, coldLoss)
	}
}

func TestGDAlsoLearns(t *testing.T) {
	g, _ := classifierGraph(40, 30)
	res := Train(g, Options{Method: GD, Epochs: 60, StepSize: 0.5, BatchSweeps: 5, Seed: 6})
	if res.Weights[0] <= 0.3 || res.Weights[1] >= -0.3 {
		t.Fatalf("GD weights did not separate: %v", res.Weights[:2])
	}
}

func TestSGDConvergesFasterThanGDPerEpoch(t *testing.T) {
	// SGD takes BatchSweeps steps per epoch vs GD's single step, so for
	// equal epochs its loss should be at least as low. This mirrors the
	// Figure 16 ordering (SGD+warmstart fastest, GD slowest).
	g1, _ := classifierGraph(40, 30)
	sgd := Train(g1, Options{Method: SGD, Epochs: 10, StepSize: 0.3, Seed: 7, TrackLoss: true})
	g2, _ := classifierGraph(40, 30)
	gd := Train(g2, Options{Method: GD, Epochs: 10, StepSize: 0.3, Seed: 7, TrackLoss: true})
	if sgd.LossByEpoch[9] > gd.LossByEpoch[9]+0.05 {
		t.Fatalf("SGD loss %v much worse than GD loss %v at epoch 10",
			sgd.LossByEpoch[9], gd.LossByEpoch[9])
	}
}

func TestEvidenceLossPerfectAndTerribleModels(t *testing.T) {
	g, _ := classifierGraph(20, 20)
	g.SetWeights([]float64{5, -5}) // near-perfect model
	s := gibbs.New(g, 8)
	goodLoss := EvidenceLoss(g, s, 5)
	g.SetWeights([]float64{-5, 5}) // inverted model
	s2 := gibbs.New(g, 8)
	badLoss := EvidenceLoss(g, s2, 5)
	if goodLoss >= badLoss {
		t.Fatalf("good model loss %v not lower than bad model loss %v", goodLoss, badLoss)
	}
	if goodLoss > 0.1 {
		t.Fatalf("near-perfect model loss %v, want < 0.1", goodLoss)
	}
}

func TestEvidenceLossNoEvidence(t *testing.T) {
	b := factor.NewBuilder()
	b.AddVar()
	g := b.MustBuild()
	if got := EvidenceLoss(g, gibbs.New(g, 1), 3); got != 0 {
		t.Fatalf("loss with no evidence = %v, want 0", got)
	}
}

func TestTrainerPanicsOnBadWarmstart(t *testing.T) {
	g, _ := classifierGraph(4, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("bad warmstart length did not panic")
		}
	}()
	NewTrainer(g, Options{Warmstart: []float64{1}})
}

func TestTrainReplicasLearnsSeparatingWeights(t *testing.T) {
	g, queries := classifierGraph(40, 30)
	res := Train(g, Options{Epochs: 40, StepSize: 0.3, Seed: 1, Replicas: 4, SyncEvery: 4})
	if res.Weights[0] <= 0.5 {
		t.Fatalf("replica weight for positive feature = %v, want > 0.5", res.Weights[0])
	}
	if res.Weights[1] >= -0.5 {
		t.Fatalf("replica weight for negative feature = %v, want < -0.5", res.Weights[1])
	}
	// The averaged model must be written back into the graph.
	if g.Weight(0) != res.Weights[0] || g.Weight(1) != res.Weights[1] {
		t.Fatal("final canonical weights not pushed into the graph")
	}
	s := gibbs.New(g, 2)
	m := s.Marginals(50, 1000)
	for qi, v := range queries {
		obj := 30 + qi
		if obj%2 == 0 && m[v] < 0.7 {
			t.Errorf("held-out positive object %d marginal %v, want > 0.7", obj, m[v])
		}
		if obj%2 == 1 && m[v] > 0.3 {
			t.Errorf("held-out negative object %d marginal %v, want < 0.3", obj, m[v])
		}
	}
}

func TestTrainReplicasDeterministic(t *testing.T) {
	run := func() []float64 {
		g, _ := classifierGraph(30, 24)
		return Train(g, Options{Epochs: 6, StepSize: 0.3, Seed: 9, Replicas: 3, SyncEvery: 2}).Weights
	}
	a, b := run(), run()
	for k := range a {
		if a[k] != b[k] {
			t.Fatalf("weight %d: run1 %v, run2 %v — replica training not deterministic", k, a[k], b[k])
		}
	}
}

func TestTrainReplicasAsyncAveragingLearns(t *testing.T) {
	g, _ := classifierGraph(40, 30)
	res := Train(g, Options{Epochs: 40, StepSize: 0.3, Seed: 1, Replicas: 4, SyncEvery: 4, AsyncAveraging: true})
	if res.Weights[0] <= 0.5 {
		t.Fatalf("async weight for positive feature = %v, want > 0.5", res.Weights[0])
	}
	if res.Weights[1] >= -0.5 {
		t.Fatalf("async weight for negative feature = %v, want < -0.5", res.Weights[1])
	}
	if g.Weight(0) != res.Weights[0] || g.Weight(1) != res.Weights[1] {
		t.Fatal("final canonical weights not pushed into the graph")
	}
}

// TestTrainReplicasAsyncAveragingDeterministic pins the scheme's core
// claim: the overlapped averaging trajectory is a function of the seed
// alone, not of goroutine scheduling.
func TestTrainReplicasAsyncAveragingDeterministic(t *testing.T) {
	run := func() []float64 {
		g, _ := classifierGraph(30, 24)
		return Train(g, Options{Epochs: 6, StepSize: 0.3, Seed: 9, Replicas: 3, SyncEvery: 2, AsyncAveraging: true}).Weights
	}
	a, b := run(), run()
	for k := range a {
		if a[k] != b[k] {
			t.Fatalf("weight %d: run1 %v, run2 %v — async averaging not deterministic", k, a[k], b[k])
		}
	}
}

func TestTrainReplicasAsyncAveragingRespectsFrozen(t *testing.T) {
	g, _ := classifierGraph(20, 16)
	frozen := []bool{false, true} // weight 1 fixed
	res := Train(g, Options{Epochs: 15, StepSize: 0.3, Seed: 3, Replicas: 3, SyncEvery: 2, AsyncAveraging: true, Frozen: frozen})
	if res.Weights[1] != 0 {
		t.Fatalf("frozen weight moved to %v under async averaging", res.Weights[1])
	}
	if res.Weights[0] <= 0.3 {
		t.Fatalf("learnable weight did not move: %v", res.Weights[0])
	}
}

func TestTrainReplicasGD(t *testing.T) {
	g, _ := classifierGraph(40, 30)
	res := Train(g, Options{Method: GD, Epochs: 60, StepSize: 0.5, BatchSweeps: 5, Seed: 6, Replicas: 2})
	if res.Weights[0] <= 0.3 || res.Weights[1] >= -0.3 {
		t.Fatalf("replica GD weights did not separate: %v", res.Weights[:2])
	}
}

func TestTrainReplicasRespectsFrozen(t *testing.T) {
	g, _ := classifierGraph(20, 16)
	frozen := []bool{false, true} // weight 1 fixed
	res := Train(g, Options{Epochs: 15, StepSize: 0.3, Seed: 3, Replicas: 3, Frozen: frozen})
	if res.Weights[1] != 0 {
		t.Fatalf("frozen weight moved to %v under replica averaging", res.Weights[1])
	}
	if res.Weights[0] <= 0.3 {
		t.Fatalf("learnable weight did not move: %v", res.Weights[0])
	}
}

func TestTrainerReplicasAccessorsAndLoss(t *testing.T) {
	g, _ := classifierGraph(20, 16)
	tr := NewTrainer(g, Options{Seed: 5, Replicas: 2})
	if tr.Replicas() != 2 {
		t.Fatalf("Replicas() = %d, want 2", tr.Replicas())
	}
	if l := tr.Loss(3); math.IsNaN(l) || l <= 0 {
		t.Fatalf("replica trainer loss = %v", l)
	}
	seq := NewTrainer(g, Options{Seed: 5})
	if seq.Replicas() != 0 {
		t.Fatalf("sequential trainer Replicas() = %d, want 0", seq.Replicas())
	}
}

func TestMethodString(t *testing.T) {
	if SGD.String() != "sgd" || GD.String() != "gd" {
		t.Fatal("Method.String mismatch")
	}
	if Method(9).String() != "Method(9)" {
		t.Fatal("unknown Method.String mismatch")
	}
}

func TestOptionsFillDefaults(t *testing.T) {
	o := Options{}.fill()
	if o.Epochs != 20 || o.StepSize != 0.1 || o.Decay != 0.95 || o.BatchSweeps != 10 || o.Burnin != 10 {
		t.Fatalf("defaults = %+v", o)
	}
	o2 := Options{L2: -1}.fill()
	if o2.L2 != 0 {
		t.Fatalf("negative L2 should clamp to 0, got %v", o2.L2)
	}
}

func TestLearnedMarginalCloseToLogistic(t *testing.T) {
	// With only one feature and all-positive labels, the learned model
	// should put the held-out marginal near 1 — an end-to-end calibration
	// smoke test.
	b := factor.NewBuilder()
	anchor := b.AddEvidenceVar(true)
	w := b.AddWeight(0)
	for i := 0; i < 20; i++ {
		v := b.AddEvidenceVar(true)
		b.AddGroup(v, w, factor.Linear, []factor.Grounding{{Lits: []factor.Literal{{Var: anchor}}}})
	}
	q := b.AddVar()
	b.AddGroup(q, w, factor.Linear, []factor.Grounding{{Lits: []factor.Literal{{Var: anchor}}}})
	g := b.MustBuild()
	Train(g, Options{Epochs: 40, StepSize: 0.3, Seed: 11})
	m := gibbs.New(g, 12).Marginals(50, 1000)
	if m[q] < 0.85 {
		t.Fatalf("all-positive training gave held-out marginal %v, want > 0.85", m[q])
	}
	_ = math.Pi
}

// Package learn implements weight learning for DeepDive factor graphs.
//
// Learning finds the weights that maximize the likelihood of the evidence
// (Section 2.4: "in learning, one finds the set of weights that maximizes
// the probability of the evidence"). The gradient of the log-likelihood
// for a tied weight w_k is
//
//	∂ log Pr[E] / ∂w_k = E_{I ~ Pr(·|E)}[stat_k(I)] − E_{I ~ Pr}[stat_k(I)]
//
// where stat_k(I) = Σ_{γ with weight k} sign(γ,I)·g(n(γ,I)). Both
// expectations are estimated with Gibbs chains: a clamped chain on the
// graph as-is (evidence fixed) and a free chain on a copy with evidence
// released. This is the standard contrastive scheme DeepDive/Tuffy use;
// inference is the inner loop of learning, which is why incremental
// inference speeds up learning too.
//
// The package also implements the incremental-learning strategies compared
// in Appendix B.3: stochastic gradient descent with and without warmstart,
// and full gradient descent with warmstart.
package learn

import (
	"fmt"
	"math"

	"deepdive/internal/factor"
	"deepdive/internal/gibbs"
)

// Method selects the optimizer.
type Method uint8

const (
	// SGD takes a noisy gradient step after every sweep pair.
	SGD Method = iota
	// GD averages many sweeps into one full-batch gradient per epoch.
	GD
)

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case SGD:
		return "sgd"
	case GD:
		return "gd"
	default:
		return fmt.Sprintf("Method(%d)", uint8(m))
	}
}

// Options configures Train.
type Options struct {
	Method      Method
	Epochs      int     // optimizer epochs (default 20)
	StepSize    float64 // initial learning rate (default 0.1)
	Decay       float64 // multiplicative step decay per epoch (default 0.95)
	L2          float64 // ℓ2 regularization strength (default 1e-4)
	BatchSweeps int     // sweeps averaged per GD gradient (default 10)
	Burnin      int     // chain burn-in sweeps before learning (default 10)
	// Parallelism selects the Gibbs chain driving the gradient estimates:
	// <= 1 uses the sequential sampler, n > 1 shards sweeps across n
	// workers, negative means one worker per core.
	Parallelism int
	Seed        int64
	Warmstart   []float64 // initial weights; nil means start from zero
	// Frozen marks weights excluded from learning (fixed-value rule
	// weights). nil means all weights are learnable.
	Frozen []bool

	// TrackLoss, when set, records the evidence loss after every epoch
	// (costs extra sweeps).
	TrackLoss bool
}

func (o Options) fill() Options {
	if o.Epochs <= 0 {
		o.Epochs = 20
	}
	if o.StepSize <= 0 {
		o.StepSize = 0.1
	}
	if o.Decay <= 0 || o.Decay > 1 {
		o.Decay = 0.95
	}
	if o.L2 < 0 {
		o.L2 = 0
	} else if o.L2 == 0 {
		o.L2 = 1e-4
	}
	if o.BatchSweeps <= 0 {
		o.BatchSweeps = 10
	}
	if o.Burnin < 0 {
		o.Burnin = 0
	} else if o.Burnin == 0 {
		o.Burnin = 10
	}
	return o
}

// Result reports learned weights and optimizer diagnostics.
type Result struct {
	Weights     []float64
	LossByEpoch []float64 // filled when Options.TrackLoss
	Epochs      int
}

// freeCopy builds a graph identical to g but with every evidence variable
// released, sharing no mutable state with g.
func freeCopy(g *factor.Graph) *factor.Graph {
	b := factor.NewBuilderFrom(g)
	for v := 0; v < g.NumVars(); v++ {
		if g.IsEvidence(factor.VarID(v)) {
			b.ClearEvidence(factor.VarID(v))
		}
	}
	return b.MustBuild()
}

// Trainer holds the two chains and the weight vector across updates, so
// incremental learning can continue from a previous state (warmstart).
type Trainer struct {
	clamped gibbs.Chain
	free    gibbs.Chain
	g       *factor.Graph
	fg      *factor.Graph
	weights []float64
	opt     Options

	statsC []float64
	statsF []float64
}

// NewTrainer prepares chains over g. The graph's current weights are
// overwritten by opt.Warmstart (or zeros) before any sampling.
func NewTrainer(g *factor.Graph, opt Options) *Trainer {
	o := opt.fill()
	w := make([]float64, g.NumWeights())
	if o.Warmstart != nil {
		if len(o.Warmstart) != len(w) {
			panic(fmt.Sprintf("learn: warmstart has %d weights, want %d", len(o.Warmstart), len(w)))
		}
		copy(w, o.Warmstart)
	}
	g.SetWeights(w)
	fg := freeCopy(g)
	t := &Trainer{
		clamped: gibbs.NewChain(g, o.Seed, o.Parallelism),
		free:    gibbs.NewChain(fg, o.Seed+1, o.Parallelism),
		g:       g,
		fg:      fg,
		weights: w,
		opt:     o,
		statsC:  make([]float64, len(w)),
		statsF:  make([]float64, len(w)),
	}
	t.clamped.RandomizeState()
	t.free.RandomizeState()
	t.clamped.Run(o.Burnin)
	t.free.Run(o.Burnin)
	return t
}

// Weights returns the live weight vector.
func (t *Trainer) Weights() []float64 { return t.weights }

// syncWeights pushes the trainer's weights into both graphs.
func (t *Trainer) syncWeights() {
	t.g.SetWeights(t.weights)
	t.fg.SetWeights(t.weights)
}

// gradient estimates the log-likelihood gradient using `sweeps` sweeps of
// each chain, writing it into out.
func (t *Trainer) gradient(sweeps int, out []float64) {
	for i := range t.statsC {
		t.statsC[i] = 0
		t.statsF[i] = 0
	}
	for s := 0; s < sweeps; s++ {
		t.clamped.Sweep()
		t.clamped.WeightStats(t.statsC)
		t.free.Sweep()
		t.free.WeightStats(t.statsF)
	}
	inv := 1 / float64(sweeps)
	for k := range out {
		out[k] = (t.statsC[k]-t.statsF[k])*inv - t.opt.L2*t.weights[k]
	}
}

// Epoch performs one optimizer epoch and returns the step size used.
func (t *Trainer) Epoch(epoch int) float64 {
	step := t.opt.StepSize * math.Pow(t.opt.Decay, float64(epoch))
	grad := make([]float64, len(t.weights))
	apply := func() {
		for k := range t.weights {
			if t.opt.Frozen != nil && k < len(t.opt.Frozen) && t.opt.Frozen[k] {
				continue
			}
			t.weights[k] += step * grad[k]
		}
		t.syncWeights()
	}
	switch t.opt.Method {
	case SGD:
		// A handful of noisy single-sweep steps per epoch.
		for s := 0; s < t.opt.BatchSweeps; s++ {
			t.gradient(1, grad)
			apply()
		}
	case GD:
		t.gradient(t.opt.BatchSweeps, grad)
		apply()
	default:
		panic(fmt.Sprintf("learn: unknown method %v", t.opt.Method))
	}
	return step
}

// Loss estimates the evidence loss of the current weights: the average
// negative conditional log-likelihood of each evidence variable given the
// rest of the clamped chain's world. Lower is better; 0 is perfect.
func (t *Trainer) Loss(sweeps int) float64 {
	return EvidenceLoss(t.g, t.clamped, sweeps)
}

// Train runs the full optimization and returns the learned weights.
func Train(g *factor.Graph, opt Options) *Result {
	t := NewTrainer(g, opt)
	res := &Result{Epochs: t.opt.Epochs}
	for e := 0; e < t.opt.Epochs; e++ {
		t.Epoch(e)
		if t.opt.TrackLoss {
			res.LossByEpoch = append(res.LossByEpoch, t.Loss(3))
		}
	}
	res.Weights = append([]float64(nil), t.weights...)
	g.SetWeights(res.Weights)
	return res
}

// EvidenceLoss measures, for the graph's evidence variables, the average
// −log P(v = observed | rest) with the rest of the world drawn by the
// given (clamped) chain. A proxy for the training loss the paper plots
// in Figures 16 and 17.
func EvidenceLoss(g *factor.Graph, s gibbs.Chain, sweeps int) float64 {
	var evs []factor.VarID
	for v := 0; v < g.NumVars(); v++ {
		if g.IsEvidence(factor.VarID(v)) {
			evs = append(evs, factor.VarID(v))
		}
	}
	if len(evs) == 0 {
		return 0
	}
	var total float64
	var count int
	for k := 0; k < sweeps; k++ {
		s.Sweep()
		for _, v := range evs {
			p := s.CondProb(v)
			if !g.EvidenceValue(v) {
				p = 1 - p
			}
			if p < 1e-12 {
				p = 1e-12
			}
			total += -math.Log(p)
			count++
		}
	}
	return total / float64(count)
}

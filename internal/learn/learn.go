// Package learn implements weight learning for DeepDive factor graphs.
//
// Learning finds the weights that maximize the likelihood of the evidence
// (Section 2.4: "in learning, one finds the set of weights that maximizes
// the probability of the evidence"). The gradient of the log-likelihood
// for a tied weight w_k is
//
//	∂ log Pr[E] / ∂w_k = E_{I ~ Pr(·|E)}[stat_k(I)] − E_{I ~ Pr}[stat_k(I)]
//
// where stat_k(I) = Σ_{γ with weight k} sign(γ,I)·g(n(γ,I)). Both
// expectations are estimated with Gibbs chains: a clamped chain on the
// graph as-is (evidence fixed) and a free chain on a copy with evidence
// released. This is the standard contrastive scheme DeepDive/Tuffy use;
// inference is the inner loop of learning, which is why incremental
// inference speeds up learning too.
//
// The package also implements the incremental-learning strategies compared
// in Appendix B.3: stochastic gradient descent with and without warmstart,
// and full gradient descent with warmstart.
package learn

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"

	"deepdive/internal/factor"
	"deepdive/internal/gibbs"
)

// Method selects the optimizer.
type Method uint8

const (
	// SGD takes a noisy gradient step after every sweep pair.
	SGD Method = iota
	// GD averages many sweeps into one full-batch gradient per epoch.
	GD
)

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case SGD:
		return "sgd"
	case GD:
		return "gd"
	default:
		return fmt.Sprintf("Method(%d)", uint8(m))
	}
}

// Options configures Train.
type Options struct {
	Method      Method
	Epochs      int     // optimizer epochs (default 20)
	StepSize    float64 // initial learning rate (default 0.1)
	Decay       float64 // multiplicative step decay per epoch (default 0.95)
	L2          float64 // ℓ2 regularization strength (default 1e-4)
	BatchSweeps int     // sweeps averaged per GD gradient (default 10)
	Burnin      int     // chain burn-in sweeps before learning (default 10)
	// Parallelism selects the Gibbs chain driving the gradient estimates:
	// <= 1 uses the sequential sampler, n > 1 shards sweeps across n
	// workers, negative means one worker per core. Ignored when Replicas
	// selects the replica engine.
	Parallelism int
	// Replicas selects the DimmWitted-style replica learning engine: each
	// of n workers owns a private clamped/free chain pair and a private
	// weight vector bound to the shared CSR pools, takes gradient steps
	// with zero cross-worker reads, and the driver averages the weight
	// replicas every SyncEvery steps (model averaging). 0 disables;
	// negative means one worker per core.
	Replicas int
	// SyncEvery is the number of gradient steps between weight averaging
	// in replica mode; <= 0 selects gibbs.DefaultSyncEvery.
	SyncEvery int
	// AsyncAveraging overlaps the replica engine's SGD averaging barrier
	// with the next segment's gradient steps: workers publish their
	// private vectors and keep stepping, folding each segment mean in one
	// segment late (see Trainer.asyncSGDEpoch). Deterministic for a fixed
	// seed, but a different trajectory than the barrier schedule. Ignored
	// outside replica SGD.
	AsyncAveraging bool
	Seed           int64
	Warmstart      []float64 // initial weights; nil means start from zero
	// Frozen marks weights excluded from learning (fixed-value rule
	// weights). nil means all weights are learnable.
	Frozen []bool

	// TrackLoss, when set, records the evidence loss after every epoch
	// (costs extra sweeps).
	TrackLoss bool
}

func (o Options) fill() Options {
	if o.Epochs <= 0 {
		o.Epochs = 20
	}
	if o.StepSize <= 0 {
		o.StepSize = 0.1
	}
	if o.Decay <= 0 || o.Decay > 1 {
		o.Decay = 0.95
	}
	if o.L2 < 0 {
		o.L2 = 0
	} else if o.L2 == 0 {
		o.L2 = 1e-4
	}
	if o.BatchSweeps <= 0 {
		o.BatchSweeps = 10
	}
	if o.Burnin < 0 {
		o.Burnin = 0
	} else if o.Burnin == 0 {
		o.Burnin = 10
	}
	return o
}

// Result reports learned weights and optimizer diagnostics.
type Result struct {
	Weights     []float64
	LossByEpoch []float64 // filled when Options.TrackLoss
	Epochs      int
}

// freeCopy builds a graph identical to g but with every evidence variable
// released, sharing no mutable state with g.
func freeCopy(g *factor.Graph) *factor.Graph {
	b := factor.NewBuilderFrom(g)
	for v := 0; v < g.NumVars(); v++ {
		if g.IsEvidence(factor.VarID(v)) {
			b.ClearEvidence(factor.VarID(v))
		}
	}
	return b.MustBuild()
}

// replicaWorker is one worker of the replica learning engine: a private
// clamped/free chain pair over weight views bound to the worker's private
// vector, plus private statistic buffers. Between averaging barriers a
// worker reads and writes nothing shared.
type replicaWorker struct {
	clamped *gibbs.Sampler
	free    *gibbs.Sampler
	weights []float64 // the ReplicaLearner's private vector for this worker
	statsC  []float64
	statsF  []float64
	grad    []float64
}

// Trainer holds the two chains and the weight vector across updates, so
// incremental learning can continue from a previous state (warmstart).
// In replica mode (Options.Replicas) it instead holds one chain pair and
// one private weight vector per worker, merged through a
// gibbs.ReplicaLearner.
type Trainer struct {
	clamped gibbs.Chain
	free    gibbs.Chain
	g       *factor.Graph
	fg      *factor.Graph
	weights []float64
	opt     Options
	ctx     context.Context // cooperative cancellation; nil = never cancel

	statsC []float64
	statsF []float64

	rl      *gibbs.ReplicaLearner
	workers []replicaWorker
}

// NewTrainer prepares chains over g. The graph's current weights are
// overwritten by opt.Warmstart (or zeros) before any sampling.
func NewTrainer(g *factor.Graph, opt Options) *Trainer {
	return NewTrainerCtx(nil, g, opt)
}

// NewTrainerCtx is NewTrainer with a cooperative cancellation context
// threaded into every sweep loop the trainer runs (burn-in, gradient
// estimation). Cancellation between sweeps never leaves the model
// half-stepped: a gradient step whose sweeps were cut short is discarded,
// so the weight vector always reflects the last completed step.
func NewTrainerCtx(ctx context.Context, g *factor.Graph, opt Options) *Trainer {
	o := opt.fill()
	w := make([]float64, g.NumWeights())
	if o.Warmstart != nil {
		if len(o.Warmstart) != len(w) {
			panic(fmt.Sprintf("learn: warmstart has %d weights, want %d", len(o.Warmstart), len(w)))
		}
		copy(w, o.Warmstart)
	}
	g.SetWeights(w)
	fg := freeCopy(g)
	t := &Trainer{
		g:       g,
		fg:      fg,
		weights: w,
		opt:     o,
		ctx:     ctx,
	}
	if o.Replicas != 0 {
		t.initReplicas()
		return t
	}
	t.statsC = make([]float64, len(w))
	t.statsF = make([]float64, len(w))
	t.clamped = gibbs.NewChain(g, o.Seed, o.Parallelism)
	t.free = gibbs.NewChain(fg, o.Seed+1, o.Parallelism)
	t.clamped.RandomizeState()
	t.free.RandomizeState()
	t.clamped.RunCtx(ctx, o.Burnin)
	t.free.RunCtx(ctx, o.Burnin)
	return t
}

// canceled reports whether the trainer's context is cancelled.
func (t *Trainer) canceled() bool { return t.ctx != nil && t.ctx.Err() != nil }

// initReplicas builds the replica learning engine: R weight replicas
// (gibbs.ReplicaLearner) and, per worker, sequential clamped/free chains
// over factor.WeightView bindings of the shared graphs to the worker's
// private vector — the chains observe that worker's gradient steps and
// nothing else until the next averaging barrier.
func (t *Trainer) initReplicas() {
	o := t.opt
	n := o.Replicas
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n < 1 {
		n = 1
	}
	t.rl = gibbs.NewReplicaLearner(n, t.weights)
	t.workers = make([]replicaWorker, t.rl.Replicas())
	// Mix the master seed before adding the per-chain index (same rule as
	// the samplers' worker streams): callers derive stage seeds as small
	// offsets of one engine seed, and raw o.Seed+2r would hand worker r's
	// chain another stage's exact RNG stream.
	base := gibbs.MixSeed(o.Seed)
	for r := range t.workers {
		wr := t.rl.Weights(r)
		wk := &t.workers[r]
		wk.weights = wr
		wk.clamped = gibbs.New(t.g.WeightView(wr), gibbs.DeriveSeed(base, 2*r))
		wk.free = gibbs.New(t.fg.WeightView(wr), gibbs.DeriveSeed(base, 2*r+1))
		wk.statsC = make([]float64, len(wr))
		wk.statsF = make([]float64, len(wr))
		wk.grad = make([]float64, len(wr))
	}
	t.eachWorker(func(wk *replicaWorker) {
		wk.clamped.RandomizeState()
		wk.free.RandomizeState()
		wk.clamped.RunCtx(t.ctx, o.Burnin)
		wk.free.RunCtx(t.ctx, o.Burnin)
	})
	// Worker 0's chains double as the trainer's driver-side chains (Loss).
	t.clamped = t.workers[0].clamped
	t.free = t.workers[0].free
}

// eachWorker runs f over every replica worker concurrently and waits.
// Each f touches only its worker's private state, so the fan-out is
// race-free and the result deterministic.
func (t *Trainer) eachWorker(f func(wk *replicaWorker)) {
	if len(t.workers) == 1 {
		f(&t.workers[0])
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(t.workers))
	for r := range t.workers {
		go func(r int) {
			defer wg.Done()
			f(&t.workers[r])
		}(r)
	}
	wg.Wait()
}

// Replicas returns the replica worker count (0 when the replica engine is
// not in use).
func (t *Trainer) Replicas() int {
	if t.rl == nil {
		return 0
	}
	return t.rl.Replicas()
}

// Weights returns the live weight vector.
func (t *Trainer) Weights() []float64 { return t.weights }

// syncWeights pushes the trainer's weights into both graphs.
func (t *Trainer) syncWeights() {
	t.g.SetWeights(t.weights)
	t.fg.SetWeights(t.weights)
}

// finishGradient turns accumulated clamped/free statistics into the
// regularized gradient estimate: (statsC − statsF)/sweeps − L2·w. The
// single source of the objective for the sequential and replica paths.
func (t *Trainer) finishGradient(statsC, statsF []float64, sweeps int, weights, out []float64) {
	inv := 1 / float64(sweeps)
	for k := range out {
		out[k] = (statsC[k]-statsF[k])*inv - t.opt.L2*weights[k]
	}
}

// applyStep takes one frozen-guarded gradient step on weights. The single
// source of the update rule for the sequential and replica paths.
func (t *Trainer) applyStep(weights, grad []float64, step float64) {
	for k := range weights {
		if t.opt.Frozen != nil && k < len(t.opt.Frozen) && t.opt.Frozen[k] {
			continue
		}
		weights[k] += step * grad[k]
	}
}

// gradient estimates the log-likelihood gradient using `sweeps` sweeps of
// each chain, writing it into out. Returns false when cancelled before
// all sweeps completed — the partial estimate must not be applied.
func (t *Trainer) gradient(sweeps int, out []float64) bool {
	for i := range t.statsC {
		t.statsC[i] = 0
		t.statsF[i] = 0
	}
	for s := 0; s < sweeps; s++ {
		if t.canceled() {
			return false
		}
		t.clamped.Sweep()
		t.clamped.WeightStats(t.statsC)
		t.free.Sweep()
		t.free.WeightStats(t.statsF)
	}
	t.finishGradient(t.statsC, t.statsF, sweeps, t.weights, out)
	return true
}

// Epoch performs one optimizer epoch and returns the step size used.
// Cancellation mid-epoch abandons the in-flight gradient step; steps
// already applied remain (the weight vector stays a coherent model).
func (t *Trainer) Epoch(epoch int) float64 {
	step := t.opt.StepSize * math.Pow(t.opt.Decay, float64(epoch))
	if t.rl != nil {
		return t.replicaEpoch(step)
	}
	grad := make([]float64, len(t.weights))
	apply := func() {
		t.applyStep(t.weights, grad, step)
		t.syncWeights()
	}
	switch t.opt.Method {
	case SGD:
		// A handful of noisy single-sweep steps per epoch.
		for s := 0; s < t.opt.BatchSweeps; s++ {
			if !t.gradient(1, grad) {
				return step
			}
			apply()
		}
	case GD:
		if t.gradient(t.opt.BatchSweeps, grad) {
			apply()
		}
	default:
		panic(fmt.Sprintf("learn: unknown method %v", t.opt.Method))
	}
	return step
}

// replicaEpoch runs one optimizer epoch on the replica engine: workers
// take gradient steps on their private weight vectors concurrently, and
// the driver averages the replicas every SyncEvery steps (SGD) or after
// the epoch's single full-batch step (GD).
func (t *Trainer) replicaEpoch(step float64) float64 {
	syncEvery := t.opt.SyncEvery
	if syncEvery <= 0 {
		syncEvery = gibbs.DefaultSyncEvery
	}
	switch t.opt.Method {
	case SGD:
		if t.opt.AsyncAveraging && len(t.workers) > 1 {
			t.asyncSGDEpoch(step, syncEvery)
			return step
		}
		remaining := t.opt.BatchSweeps
		for remaining > 0 {
			if t.canceled() {
				return step
			}
			seg := syncEvery
			if seg > remaining {
				seg = remaining
			}
			t.eachWorker(func(wk *replicaWorker) {
				for s := 0; s < seg; s++ {
					if !t.workerGradient(wk, 1) {
						return
					}
					t.workerApply(wk, step)
				}
			})
			t.averageReplicas()
			remaining -= seg
		}
	case GD:
		if t.canceled() {
			return step
		}
		t.eachWorker(func(wk *replicaWorker) {
			if t.workerGradient(wk, t.opt.BatchSweeps) {
				t.workerApply(wk, step)
			}
		})
		t.averageReplicas()
	default:
		panic(fmt.Sprintf("learn: unknown method %v", t.opt.Method))
	}
	return step
}

// asyncSGDEpoch is replicaEpoch's SGD arm with the averaging barrier
// overlapped: each worker runs its segment of single-sweep gradient
// steps, publishes its private vector V_{r,s} to an AsyncAverager, and
// keeps stepping immediately instead of waiting at a barrier. The
// segment-(s−1) mean C_{s−1} lands while segment s runs, and the worker
// folds it in one segment late:
//
//	w_r ← C_{s−1} + (V_{r,s} − V_{r,s−1})
//
// i.e. the lagged consensus plus the worker's own progress since it was
// taken — for frozen weights the correction is the identity. The
// trajectory differs from the barrier schedule (the consensus arrives
// one segment late) but is deterministic for a fixed seed regardless of
// goroutine scheduling: every mean is computed in replica order from the
// complete published set, and every correction is a function of those
// means and the worker's private trajectory. A final driver-side merge
// produces the canonical model.
func (t *Trainer) asyncSGDEpoch(step float64, syncEvery int) {
	// Segment lengths, identical for every worker.
	var segs []int
	for remaining := t.opt.BatchSweeps; remaining > 0; {
		seg := syncEvery
		if seg > remaining {
			seg = remaining
		}
		segs = append(segs, seg)
		remaining -= seg
	}
	av := gibbs.NewAsyncAverager(len(t.workers))
	var wg sync.WaitGroup
	wg.Add(len(t.workers))
	for r := range t.workers {
		go func(r int) {
			defer wg.Done()
			wk := &t.workers[r]
			prev := append([]float64(nil), wk.weights...)
			cur := make([]float64, len(wk.weights))
			for s, n := range segs {
				for i := 0; i < n; i++ {
					if !t.workerGradient(wk, 1) {
						av.Abort() // unblock peers waiting on this worker's publish
						return
					}
					t.workerApply(wk, step)
				}
				copy(cur, wk.weights)
				av.Publish(s, r, cur)
				if s > 0 {
					mean := av.WaitMean(s - 1)
					if mean == nil {
						return // aborted by a cancelled peer
					}
					for k := range wk.weights {
						wk.weights[k] = mean[k] + (cur[k] - prev[k])
					}
					wk.clamped.Graph().NoteWeightsChanged()
					wk.free.Graph().NoteWeightsChanged()
				}
				prev, cur = cur, prev
			}
		}(r)
	}
	wg.Wait()
	if !t.canceled() {
		t.averageReplicas()
	}
}

// workerGradient estimates the gradient from the worker's private chains
// and weights, writing it into wk.grad. The chains evaluate through
// weight views of the shared graphs, so they observe this worker's steps
// immediately and other workers' never. Returns false when cancelled
// before all sweeps completed — the partial estimate must not be applied.
func (t *Trainer) workerGradient(wk *replicaWorker, sweeps int) bool {
	for i := range wk.statsC {
		wk.statsC[i] = 0
		wk.statsF[i] = 0
	}
	for s := 0; s < sweeps; s++ {
		if t.canceled() {
			return false
		}
		wk.clamped.Sweep()
		wk.clamped.WeightStats(wk.statsC)
		wk.free.Sweep()
		wk.free.WeightStats(wk.statsF)
	}
	t.finishGradient(wk.statsC, wk.statsF, sweeps, wk.weights, wk.grad)
	return true
}

// workerApply takes one gradient step on the worker's private vector and
// notes the change on the worker's weight views — the step writes the
// vector directly (never through Graph.SetWeights), so the chains' cached
// conditionals would otherwise keep serving the pre-step model.
func (t *Trainer) workerApply(wk *replicaWorker, step float64) {
	t.applyStep(wk.weights, wk.grad, step)
	wk.clamped.Graph().NoteWeightsChanged()
	wk.free.Graph().NoteWeightsChanged()
}

// averageReplicas merges the weight replicas under the model-averaging
// rule, records the canonical model as the trainer's weights, and pushes
// it into the base graphs so driver-side evaluation (Loss, the final
// SetWeights) sees the merged model.
func (t *Trainer) averageReplicas() {
	copy(t.weights, t.rl.Average())
	t.syncWeights()
	// Average broadcast the merged model into every replica's private
	// vector by direct copy; invalidate each worker's cached conditionals.
	for i := range t.workers {
		wk := &t.workers[i]
		wk.clamped.Graph().NoteWeightsChanged()
		wk.free.Graph().NoteWeightsChanged()
	}
}

// Loss estimates the evidence loss of the current weights: the average
// negative conditional log-likelihood of each evidence variable given the
// rest of the clamped chain's world. Lower is better; 0 is perfect.
func (t *Trainer) Loss(sweeps int) float64 {
	return EvidenceLoss(t.g, t.clamped, sweeps)
}

// Train runs the full optimization and returns the learned weights.
func Train(g *factor.Graph, opt Options) *Result {
	res, _ := TrainCtx(nil, g, opt)
	return res
}

// TrainCtx is Train with a cooperative cancellation check between
// sweeps and between gradient steps. On cancellation it returns the
// context's error alongside the weights of the last completed step —
// a coherent (partially trained) model is installed on g either way.
func TrainCtx(ctx context.Context, g *factor.Graph, opt Options) (*Result, error) {
	t := NewTrainerCtx(ctx, g, opt)
	res := &Result{Epochs: t.opt.Epochs}
	for e := 0; e < t.opt.Epochs; e++ {
		if t.canceled() {
			break
		}
		t.Epoch(e)
		if t.opt.TrackLoss && !t.canceled() {
			res.LossByEpoch = append(res.LossByEpoch, t.Loss(3))
		}
	}
	res.Weights = append([]float64(nil), t.weights...)
	g.SetWeights(res.Weights)
	if ctx != nil {
		return res, ctx.Err()
	}
	return res, nil
}

// EvidenceLoss measures, for the graph's evidence variables, the average
// −log P(v = observed | rest) with the rest of the world drawn by the
// given (clamped) chain. A proxy for the training loss the paper plots
// in Figures 16 and 17.
func EvidenceLoss(g *factor.Graph, s gibbs.Chain, sweeps int) float64 {
	var evs []factor.VarID
	for v := 0; v < g.NumVars(); v++ {
		if g.IsEvidence(factor.VarID(v)) {
			evs = append(evs, factor.VarID(v))
		}
	}
	if len(evs) == 0 {
		return 0
	}
	var total float64
	var count int
	for k := 0; k < sweeps; k++ {
		s.Sweep()
		for _, v := range evs {
			p := s.CondProb(v)
			if !g.EvidenceValue(v) {
				p = 1 - p
			}
			if p < 1e-12 {
				p = 1e-12
			}
			total += -math.Log(p)
			count++
		}
	}
	return total / float64(count)
}

// Package nlp is the lightweight NLP preprocessing substrate standing in
// for the Stanford CoreNLP pipeline the paper's systems run before
// DeepDive: sentence splitting, tokenization, a heuristic part-of-speech
// tagger, gazetteer-based named-entity recognition, and the feature
// functions (phrase-between, word sequences, tag paths) the paper's
// FE1/FE2 rules use as UDFs. See DESIGN.md for the substitution note.
package nlp

import (
	"strings"
	"unicode"
)

// Token is one token with its heuristic part-of-speech tag.
type Token struct {
	Text string
	Tag  string
}

// SplitSentences splits a document into sentences on ./!/? boundaries,
// protecting common abbreviations and initials ("Dr.", "B. Obama").
func SplitSentences(doc string) []string {
	var out []string
	var cur strings.Builder
	abbrev := map[string]bool{
		"dr": true, "mr": true, "mrs": true, "ms": true, "prof": true,
		"inc": true, "corp": true, "vs": true, "etc": true, "jr": true,
		"st": true, "no": true, "fig": true, "al": true, "oct": true,
		"jan": true, "feb": true, "mar": true, "apr": true, "jun": true,
		"jul": true, "aug": true, "sep": true, "nov": true, "dec": true,
	}
	flush := func() {
		s := strings.TrimSpace(cur.String())
		if s != "" {
			out = append(out, s)
		}
		cur.Reset()
	}
	runes := []rune(doc)
	for i := 0; i < len(runes); i++ {
		c := runes[i]
		cur.WriteRune(c)
		if c != '.' && c != '!' && c != '?' {
			continue
		}
		if c == '.' {
			// Look back at the word before the period.
			s := cur.String()
			j := len(s) - 1
			for j > 0 && s[j-1] != ' ' && s[j-1] != '.' {
				j--
			}
			word := strings.ToLower(strings.TrimSuffix(s[j:], "."))
			if abbrev[word] || len(word) == 1 {
				continue // initial or abbreviation, not a boundary
			}
			// A digit on both sides ("Oct. 3, 1992" handled above; "3.5").
			if i+1 < len(runes) && unicode.IsDigit(runes[i+1]) {
				continue
			}
		}
		flush()
	}
	flush()
	return out
}

// Tokenize splits a sentence into word tokens, separating punctuation.
func Tokenize(sent string) []string {
	var out []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			out = append(out, cur.String())
			cur.Reset()
		}
	}
	for _, r := range sent {
		switch {
		case unicode.IsSpace(r):
			flush()
		case r == ',' || r == ';' || r == ':' || r == '(' || r == ')' ||
			r == '!' || r == '?' || r == '"':
			flush()
			out = append(out, string(r))
		case r == '.':
			// Keep periods inside abbreviations/initials; final periods
			// become their own token.
			cur.WriteRune(r)
		default:
			cur.WriteRune(r)
		}
	}
	flush()
	// Split trailing period from the final word ("1992." -> "1992", ".").
	if n := len(out); n > 0 {
		last := out[n-1]
		if len(last) > 1 && strings.HasSuffix(last, ".") && !isInitial(last) {
			out[n-1] = strings.TrimSuffix(last, ".")
			out = append(out, ".")
		}
	}
	return out
}

func isInitial(w string) bool {
	return len(w) == 2 && w[1] == '.' && unicode.IsUpper(rune(w[0]))
}

// determiner/preposition/verb dictionaries for the heuristic tagger.
var (
	determiners  = wordSet("the a an this that these those")
	prepositions = wordSet("of in on at by for with from to between into over under near")
	conjunctions = wordSet("and or but nor so yet")
	pronouns     = wordSet("he she it they we his her its their our who which")
	beVerbs      = wordSet("is are was were be been being am")
	commonVerbs  = wordSet("married met said visited found reported causes inhibits " +
		"binds interacts occurs described collected attended wrote works tied")
)

func wordSet(s string) map[string]bool {
	m := map[string]bool{}
	for _, w := range strings.Fields(s) {
		m[w] = true
	}
	return m
}

// Tag assigns a heuristic part-of-speech tag to each token. The tagset is
// a small Penn-style subset: NNP (proper), NN, VB, VBD, IN, DT, CC, PRP,
// JJ, CD, PUNCT.
func Tag(tokens []string) []Token {
	out := make([]Token, len(tokens))
	for i, w := range tokens {
		out[i] = Token{Text: w, Tag: tagWord(w)}
	}
	return out
}

func tagWord(w string) string {
	lw := strings.ToLower(w)
	switch {
	case isPunct(w):
		return "PUNCT"
	case isNumber(w):
		return "CD"
	case determiners[lw]:
		return "DT"
	case prepositions[lw]:
		return "IN"
	case conjunctions[lw]:
		return "CC"
	case pronouns[lw]:
		return "PRP"
	case beVerbs[lw]:
		return "VB"
	case commonVerbs[lw]:
		if strings.HasSuffix(lw, "ed") {
			return "VBD"
		}
		return "VB"
	case strings.HasSuffix(lw, "ed") && len(lw) > 4:
		return "VBD"
	case strings.HasSuffix(lw, "ing") && len(lw) > 5:
		return "VBG"
	case strings.HasSuffix(lw, "ly") && len(lw) > 4:
		return "RB"
	case strings.HasSuffix(lw, "ous") || strings.HasSuffix(lw, "ful") || strings.HasSuffix(lw, "ive"):
		return "JJ"
	case w != lw && len(w) > 1: // capitalized
		return "NNP"
	default:
		return "NN"
	}
}

func isPunct(w string) bool {
	for _, r := range w {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			return false
		}
	}
	return len(w) > 0
}

func isNumber(w string) bool {
	digits := 0
	for _, r := range w {
		if unicode.IsDigit(r) {
			digits++
		} else if r != '.' && r != ',' && r != '-' {
			return false
		}
	}
	return digits > 0
}

// Mention is a recognized entity mention: a token span with an entity
// type and the linked entity id (gazetteer-based entity linking).
type Mention struct {
	Start, End int // token span [Start, End)
	Text       string
	Type       string
	Entity     string
}

// Gazetteer maps surface forms to (type, entity id). Multi-word names use
// single spaces between tokens.
type Gazetteer struct {
	entries map[string]gazEntry
	maxLen  int
}

type gazEntry struct {
	typ, entity string
}

// NewGazetteer builds an empty gazetteer.
func NewGazetteer() *Gazetteer {
	return &Gazetteer{entries: make(map[string]gazEntry), maxLen: 1}
}

// Add registers a surface form for an entity.
func (g *Gazetteer) Add(surface, typ, entity string) {
	g.entries[surface] = gazEntry{typ: typ, entity: entity}
	if n := len(strings.Fields(surface)); n > g.maxLen {
		g.maxLen = n
	}
}

// Len returns the number of surface forms.
func (g *Gazetteer) Len() int { return len(g.entries) }

// Recognize finds non-overlapping mentions by greedy longest match over
// the token sequence.
func (g *Gazetteer) Recognize(tokens []string) []Mention {
	var out []Mention
	for i := 0; i < len(tokens); {
		matched := false
		for l := min(g.maxLen, len(tokens)-i); l >= 1; l-- {
			surface := strings.Join(tokens[i:i+l], " ")
			if e, ok := g.entries[surface]; ok {
				out = append(out, Mention{
					Start: i, End: i + l, Text: surface, Type: e.typ, Entity: e.entity,
				})
				i += l
				matched = true
				break
			}
		}
		if !matched {
			i++
		}
	}
	return out
}

// PhraseBetween returns the normalized word sequence strictly between two
// token spans, truncated to maxWords (the paper's phrase(m1, m2, sent)
// feature). Spans may be given in either order.
func PhraseBetween(tokens []string, aStart, aEnd, bStart, bEnd, maxWords int) string {
	lo, hi := aEnd, bStart
	if bEnd <= aStart {
		lo, hi = bEnd, aStart
	}
	if lo >= hi || lo < 0 || hi > len(tokens) {
		return ""
	}
	words := tokens[lo:hi]
	if len(words) > maxWords {
		words = words[:maxWords]
	}
	norm := make([]string, len(words))
	for i, w := range words {
		norm[i] = strings.ToLower(w)
	}
	return strings.Join(norm, "_")
}

// TagPath returns the part-of-speech tag sequence between two spans plus
// one token of context on each side — the "deeper" dependency-path-like
// feature backing the paper's FE2 rules.
func TagPath(tokens []string, aStart, aEnd, bStart, bEnd int) string {
	lo, hi := aEnd, bStart
	if bEnd <= aStart {
		lo, hi = bEnd, aStart
	}
	if lo > hi || lo < 0 || hi > len(tokens) {
		return ""
	}
	from := max(lo-1, 0)
	to := min(hi+1, len(tokens))
	tags := Tag(tokens[from:to])
	parts := make([]string, len(tags))
	for i, t := range tags {
		parts[i] = t.Tag
	}
	return strings.Join(parts, "-")
}

// WindowWords returns lowercase tokens in a window before and after a
// span, prefixed with their offset direction ("L:..."/"R:..."), a
// bag-of-words-style context feature.
func WindowWords(tokens []string, start, end, window int) []string {
	var out []string
	for i := max(start-window, 0); i < start; i++ {
		out = append(out, "L:"+strings.ToLower(tokens[i]))
	}
	for i := end; i < min(end+window, len(tokens)); i++ {
		out = append(out, "R:"+strings.ToLower(tokens[i]))
	}
	return out
}

package nlp

import (
	"strings"
	"testing"
)

func TestSplitSentences(t *testing.T) {
	doc := "B. Obama married Michelle Oct. 3, 1992. They live in Washington. Dr. Smith agrees!"
	got := SplitSentences(doc)
	if len(got) != 3 {
		t.Fatalf("got %d sentences: %q", len(got), got)
	}
	if !strings.HasPrefix(got[0], "B. Obama") || !strings.HasSuffix(got[0], "1992.") {
		t.Fatalf("sentence 0 = %q", got[0])
	}
	if !strings.HasPrefix(got[2], "Dr. Smith") {
		t.Fatalf("sentence 2 = %q", got[2])
	}
}

func TestSplitSentencesEdgeCases(t *testing.T) {
	if got := SplitSentences(""); len(got) != 0 {
		t.Fatalf("empty doc gave %v", got)
	}
	if got := SplitSentences("No terminator here"); len(got) != 1 {
		t.Fatalf("unterminated doc gave %v", got)
	}
	if got := SplitSentences("One? Two! Three."); len(got) != 3 {
		t.Fatalf("mixed punctuation gave %v", got)
	}
}

func TestTokenize(t *testing.T) {
	got := Tokenize("B. Obama and Michelle were married, in 1992.")
	want := []string{"B.", "Obama", "and", "Michelle", "were", "married", ",", "in", "1992", "."}
	if len(got) != len(want) {
		t.Fatalf("tokens = %q, want %q", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestTagHeuristics(t *testing.T) {
	cases := map[string]string{
		"the":     "DT",
		"of":      "IN",
		"and":     "CC",
		"married": "VBD",
		"is":      "VB",
		"1992":    "CD",
		"Obama":   "NNP",
		"wife":    "NN",
		"quickly": "RB",
		"running": "VBG",
		"famous":  "JJ",
		",":       "PUNCT",
		"he":      "PRP",
	}
	for w, want := range cases {
		if got := tagWord(w); got != want {
			t.Errorf("tagWord(%q) = %q, want %q", w, got, want)
		}
	}
	tags := Tag([]string{"the", "wife"})
	if tags[0].Tag != "DT" || tags[1].Text != "wife" {
		t.Fatalf("Tag = %+v", tags)
	}
}

func TestGazetteerRecognize(t *testing.T) {
	g := NewGazetteer()
	g.Add("Barack Obama", "Person", "e1")
	g.Add("Obama", "Person", "e1")
	g.Add("Michelle", "Person", "e2")
	tokens := Tokenize("Barack Obama and Michelle were married")
	ms := g.Recognize(tokens)
	if len(ms) != 2 {
		t.Fatalf("mentions = %+v, want 2", ms)
	}
	// Longest match wins: "Barack Obama", not "Obama".
	if ms[0].Text != "Barack Obama" || ms[0].Start != 0 || ms[0].End != 2 {
		t.Fatalf("mention 0 = %+v", ms[0])
	}
	if ms[1].Entity != "e2" || ms[1].Type != "Person" {
		t.Fatalf("mention 1 = %+v", ms[1])
	}
	if g.Len() != 3 {
		t.Fatalf("Len = %d", g.Len())
	}
}

func TestGazetteerNoOverlap(t *testing.T) {
	g := NewGazetteer()
	g.Add("New York", "Location", "l1")
	g.Add("York", "Location", "l2")
	ms := g.Recognize([]string{"New", "York", "York"})
	if len(ms) != 2 || ms[0].Text != "New York" || ms[1].Text != "York" {
		t.Fatalf("mentions = %+v", ms)
	}
}

func TestPhraseBetween(t *testing.T) {
	tokens := Tokenize("Barack Obama and his wife Michelle were married")
	// spans: [0,2) and [5,6)
	got := PhraseBetween(tokens, 0, 2, 5, 6, 4)
	if got != "and_his_wife" {
		t.Fatalf("phrase = %q", got)
	}
	// Reversed order gives the same phrase.
	if rev := PhraseBetween(tokens, 5, 6, 0, 2, 4); rev != got {
		t.Fatalf("reversed phrase = %q, want %q", rev, got)
	}
	// Adjacent spans give empty.
	if adj := PhraseBetween(tokens, 0, 2, 2, 3, 4); adj != "" {
		t.Fatalf("adjacent phrase = %q", adj)
	}
	// Truncation.
	long := PhraseBetween(tokens, 0, 1, 7, 8, 2)
	if strings.Count(long, "_") != 1 {
		t.Fatalf("truncated phrase = %q", long)
	}
}

func TestTagPath(t *testing.T) {
	tokens := []string{"Obama", "married", "Michelle"}
	got := TagPath(tokens, 0, 1, 2, 3)
	// Window: token 0 (NNP), between: married (VBD), token 2 (NNP).
	if got != "NNP-VBD-NNP" {
		t.Fatalf("tag path = %q", got)
	}
}

func TestWindowWords(t *testing.T) {
	tokens := []string{"the", "famous", "Obama", "visited", "Paris"}
	got := WindowWords(tokens, 2, 3, 2)
	want := []string{"L:the", "L:famous", "R:visited", "R:paris"}
	if len(got) != len(want) {
		t.Fatalf("window = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("window[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	// At the boundary.
	if got := WindowWords(tokens, 0, 1, 2); len(got) != 2 {
		t.Fatalf("boundary window = %v", got)
	}
}

package inc

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"time"

	"deepdive/internal/factor"
	"deepdive/internal/gibbs"
)

// canceled reports whether ctx is non-nil and already cancelled — the
// cooperative check the incremental-inference loops consult between
// proposals/sweeps.
func canceled(ctx context.Context) bool {
	return ctx != nil && ctx.Err() != nil
}

// Strategy identifies a materialization/inference strategy.
type Strategy uint8

const (
	// StrategySampling is the tuple-bundle + Metropolis-Hastings approach.
	StrategySampling Strategy = iota
	// StrategyVariational is the log-det-relaxation approximate graph.
	StrategyVariational
	// StrategyRerun runs Gibbs from scratch (the baseline, not chosen by
	// the optimizer; used by lesion configurations).
	StrategyRerun
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case StrategySampling:
		return "sampling"
	case StrategyVariational:
		return "variational"
	case StrategyRerun:
		return "rerun"
	default:
		return fmt.Sprintf("Strategy(%d)", uint8(s))
	}
}

// Options configures an Engine.
type Options struct {
	// MaterializationSamples is how many worlds to store (default 1000).
	// The paper materializes "as many samples as possible when idle or
	// within a user-specified time interval"; see MaterializeForBudget.
	MaterializationSamples int
	// Burnin sweeps before materialization sampling (default 50).
	Burnin int
	// KeepSamples is the number of inference worlds per update (default 500).
	KeepSamples int
	// Lambda is the variational regularization parameter (default 0.01).
	Lambda float64
	// MaxDenseComponent caps the dense log-det solve (default 300).
	MaxDenseComponent int
	// Parallelism selects the Gibbs chain for materialization and rerun
	// fallbacks: <= 1 sequential, n > 1 shards sweeps across n workers,
	// negative means one worker per core. Ignored when Replicas selects
	// the replica engine.
	Parallelism int
	// Replicas selects the replica engine for materialization and rerun
	// chains (per-worker assignment copies merged every SyncEvery sweeps):
	// n >= 1 replicas, negative one per core, 0 disables.
	Replicas int
	// SyncEvery is the replica merge interval; <= 0 selects
	// gibbs.DefaultSyncEvery.
	SyncEvery int
	Seed      int64

	// MeasuredOptimizer drives the sampling-vs-variational choice from a
	// measured acceptance-rate probe over the stored samples (the §3.2
	// optimizer) instead of the purely rule-based §3.3 decision: sampling
	// when the measured rate is ≥ AcceptHigh, variational when it is
	// < AcceptLow, with the static rules as tie-breakers in between.
	// Off by default — ChooseStrategy keeps the static behavior.
	MeasuredOptimizer bool
	// ProbeSamples is how many stored (unconsumed) samples a measured
	// probe scores (default 24). Probing never consumes the store.
	ProbeSamples int
	// AcceptHigh is the normalized measured acceptance score
	// (NormalizeAcceptance) at or above which sampling is chosen outright
	// (default 0.2): stored proposals are still being adopted often
	// enough to converge within the sample budget.
	AcceptHigh float64
	// AcceptLow is the normalized measured acceptance score below which
	// the variational path is chosen outright (default 0.02): nearly
	// every proposal would be rejected, so replaying the store would burn
	// it without mixing.
	AcceptLow float64

	// CumulativeChanges makes the engine accumulate every change set it
	// infers over (NoteChanges) since materialization, scoring each update
	// against the union. The target distribution always differs from the
	// materialized Pr(0) by *all* deltas since materialization, not just
	// the latest one — without accumulation the variational inference
	// graph encodes only the current update's groups and facts touched by
	// earlier post-materialization updates drift toward 0.5. Off by
	// default for compatibility with per-update callers that manage their
	// own accumulation.
	CumulativeChanges bool

	// Lesion switches (Section 4.3): disable one side, or ignore workload
	// information (NoWorkloadInfo: always try sampling first, regardless
	// of the update's nature).
	DisableSampling    bool
	DisableVariational bool
	IgnoreWorkload     bool
}

func (o Options) fill() Options {
	if o.MaterializationSamples <= 0 {
		o.MaterializationSamples = 1000
	}
	if o.Burnin <= 0 {
		o.Burnin = 50
	}
	if o.KeepSamples <= 0 {
		o.KeepSamples = 500
	}
	if o.Lambda <= 0 {
		o.Lambda = 0.01
	}
	if o.MaxDenseComponent <= 0 {
		o.MaxDenseComponent = 300
	}
	if o.ProbeSamples <= 0 {
		o.ProbeSamples = 24
	}
	if o.AcceptHigh <= 0 {
		o.AcceptHigh = 0.2
	}
	if o.AcceptLow <= 0 {
		o.AcceptLow = 0.02
	}
	return o
}

// runtime derives the chain-selection config from the options.
func (o Options) runtime() gibbs.Runtime {
	return gibbs.Runtime{Workers: o.Parallelism, Replicas: o.Replicas, SyncEvery: o.SyncEvery}
}

// Result reports one incremental inference run.
type Result struct {
	Marginals      []float64
	Strategy       Strategy
	FellBack       bool // sampling exhausted; variational finished the job
	AcceptanceRate float64
	SamplesUsed    int
	Elapsed        time.Duration
	// Probed is the measured acceptance-rate estimate the optimizer based
	// its strategy choice on, or -1 when the choice was made without
	// probing (static rules, empty change set, or an upfront store-level
	// decision).
	Probed float64
	// ProbeReused reports that the measured verdict was served from the
	// engine's memo instead of re-scoring stored samples: the probe's
	// inputs (store position, accumulated change set, graph shape) were
	// identical to the previous probe's, which happens on every member
	// of a coalesced batch after the first once cumulative change sets
	// stabilize.
	ProbeReused bool
	// ProbeSkipped reports that the measured probe was skipped because
	// the acceptance rate observed by the previous actual sampling run
	// was decisive on its own (see the acceptance prior in
	// ChooseStrategyMeasured). Probed is -1 on such runs.
	ProbeSkipped bool
}

// Engine owns the materialization of the original distribution Pr(0) and
// answers updated-distribution queries. Following Section 3.3, it
// materializes *both* the sampling and the variational form ("we propose
// to materialize the factor graph using both the sampling approach and
// the variational approach, and defer the decision to the inference
// phase").
type Engine struct {
	opts    Options
	old     *factor.Graph
	sampler gibbs.Chain
	store   *gibbs.Store
	vm      *Variational

	// accum is the union of every change set noted since materialization
	// (Options.CumulativeChanges): the updated distribution differs from
	// Pr(0) by all of them, so every inference pass scores the union.
	accum ChangeSet

	// Probe-verdict memo (see ChooseStrategyMeasured): the last measured
	// (strategy, probe) pair and the fingerprint of the inputs it was
	// measured under. Weight drift between applies with an unchanged
	// change set is deliberately tolerated — that small staleness is the
	// amortization — while anything that moves the store cursor, the
	// accumulated change set, or the graph shape forces a re-probe.
	probeKey   uint64
	probeStrat Strategy
	probeVal   float64
	probeValid bool
	probeHit   bool // last ChooseStrategyMeasured call reused the memo

	// Acceptance prior: the normalized acceptance score the previous
	// *actual* sampling run observed over its full replay — a far larger
	// sample than any probe. When the prior is decisive by a wide margin
	// (see ChooseStrategyMeasured) the probe is skipped outright. The
	// prior is one-shot: consumed by the decision it informs and
	// re-validated only by the next sampling run, so a variational
	// stretch (which observes no acceptance) can never coast on a stale
	// prior indefinitely.
	priorAccept float64
	priorValid  bool
	probeSkip   bool // last ChooseStrategyMeasured call decided from the prior

	matElapsed time.Duration
}

// NewEngine materializes g under both strategies. The materialization
// chain (the dominant cost at scale) runs on the sharded or replica
// sampler when Options.Parallelism / Options.Replicas ask for it.
func NewEngine(g *factor.Graph, opts Options) (*Engine, error) {
	return NewEngineCtx(nil, g, opts)
}

// NewEngineCtx is NewEngine with a cooperative cancellation check
// threaded into the materialization sweep loop. A cancelled
// materialization returns ctx's error and no engine — materialization is
// all-or-nothing, so a serving layer never installs a partially
// materialized Pr(0).
func NewEngineCtx(ctx context.Context, g *factor.Graph, opts Options) (*Engine, error) {
	o := opts.fill()
	e := &Engine{opts: o, old: g}
	start := time.Now()
	e.sampler = o.runtime().NewChain(g, o.Seed)
	e.sampler.RandomizeState()
	e.store = e.sampler.CollectSamplesCtx(ctx, o.Burnin, o.MaterializationSamples)
	if canceled(ctx) {
		return nil, ctx.Err()
	}
	if !o.DisableVariational {
		vm, err := MaterializeVariationalCtx(ctx, g, e.store, VariationalOptions{
			Lambda:            o.Lambda,
			MaxDenseComponent: o.MaxDenseComponent,
		})
		if err != nil {
			return nil, err
		}
		e.vm = vm
	}
	e.matElapsed = time.Since(start)
	return e, nil
}

// MaterializeForBudget keeps drawing samples until the wall-clock budget
// is spent (the paper's Figure 15 protocol, scaled down from 8 hours) and
// returns how many samples are now stored.
func (e *Engine) MaterializeForBudget(budget time.Duration) int {
	return e.MaterializeForBudgetCtx(nil, budget)
}

// MaterializeForBudgetCtx is MaterializeForBudget with a cooperative
// cancellation check between sweeps — the form the background
// re-materializer uses so an incoming write can preempt it mid-budget.
// The store keeps every world sampled before the cancellation.
func (e *Engine) MaterializeForBudgetCtx(ctx context.Context, budget time.Duration) int {
	deadline := time.Now().Add(budget)
	for time.Now().Before(deadline) && !canceled(ctx) {
		e.sampler.Sweep()
		// StoreWorlds, not Assign: the replica chain's Assign is a
		// consensus vote, which would bias the materialized samples.
		e.sampler.StoreWorlds(e.store)
	}
	return e.store.Len()
}

// MaterializationTime returns the time spent in NewEngine.
func (e *Engine) MaterializationTime() time.Duration { return e.matElapsed }

// Store exposes the sample store (for statistics).
func (e *Engine) Store() *gibbs.Store { return e.store }

// OldGraph returns the materialized Pr(0) graph.
func (e *Engine) OldGraph() *factor.Graph { return e.old }

// Variational exposes the variational materialization (nil when disabled).
func (e *Engine) Variational() *Variational { return e.vm }

// ChooseStrategy applies the rule-based optimizer of Section 3.3:
//
//   - no structure change              → sampling (rule 1)
//   - evidence modified                → variational (rule 2)
//   - new features introduced          → sampling (rule 3)
//   - samples exhausted (at run time)  → variational (rule 4, in Infer)
//
// Lesion switches override the choice.
func (e *Engine) ChooseStrategy(cs ChangeSet) Strategy {
	switch {
	case e.opts.DisableSampling:
		return StrategyVariational
	case e.opts.DisableVariational:
		return StrategySampling
	case e.opts.IgnoreWorkload:
		return StrategySampling // always try sampling first, fall back on exhaustion
	case !cs.StructureChanged() && len(cs.EvidenceChanged) == 0:
		return StrategySampling
	case len(cs.EvidenceChanged) > 0:
		return StrategyVariational
	default:
		return StrategySampling
	}
}

// ChooseStrategyMeasured is the §3.2 measured optimizer: instead of
// deciding from the update's *shape* alone (the §3.3 rules), it estimates
// the Metropolis-Hastings acceptance rate the stored samples would
// achieve against the updated distribution (EstimateAcceptanceRate — a
// non-consuming peek over the unconsumed region) and chooses:
//
//   - probe ≥ AcceptHigh → sampling: stored proposals still mix.
//   - probe <  AcceptLow → variational: proposals would be rejected
//     wholesale; replaying the store burns it without converging.
//   - in between → the §3.3 static rules tie-break.
//
// The raw rate is rescaled by NormalizeAcceptance before thresholding —
// a short probe chain accepts every new-record score no matter how much
// the distribution changed, so the raw rate has a floor of ≈ H(n)/n that
// would keep AcceptLow unreachable.
//
// The probe is skipped (returning -1) when measurement cannot inform the
// choice: MeasuredOptimizer off or a lesion forcing one side (static
// rules decide), an empty change set (every proposal accepts — the A1
// case), an evidence change (forced evidence values hide the shift from
// group-energy scoring, so rule 2 decides), or too few unconsumed samples
// to finish a sampling pass anyway (rule 4 applied upfront instead of
// after burning what is left).
func (e *Engine) ChooseStrategyMeasured(newG *factor.Graph, cs ChangeSet) (Strategy, float64) {
	e.probeHit = false
	e.probeSkip = false
	if !e.opts.MeasuredOptimizer || e.opts.DisableSampling || e.opts.DisableVariational {
		return e.ChooseStrategy(cs), -1
	}
	if cs.Empty() {
		return StrategySampling, -1
	}
	if len(cs.EvidenceChanged) > 0 {
		return e.ChooseStrategy(cs), -1
	}
	if e.vm != nil && e.store.Remaining() < e.opts.KeepSamples {
		return StrategyVariational, -1
	}
	// Probe amortization: scoring stored samples against the updated
	// distribution costs a full EnergyOfGroups pass per probe sample, and
	// a coalesced batch re-asks the same question per member once the
	// cumulative change set has absorbed the batch's groups. Reuse the
	// last verdict while its inputs are unchanged; a sampling run (cursor
	// moves), a structural delta (change set grows), or a re-shaped graph
	// invalidates the key. Weight-only drift under an identical change
	// set reuses the verdict — the documented staleness this trades for
	// not re-probing every batch member.
	key := e.probeFingerprint(newG, cs)
	if e.probeValid && key == e.probeKey {
		e.probeHit = true
		return e.probeStrat, e.probeVal
	}
	// Acceptance-prior short-circuit: the previous sampling run scored
	// every proposal it replayed against the then-current distribution —
	// a measurement over KeepSamples proposals, versus the probe's
	// ProbeSamples. When that observation is decisive by a 2x margin
	// (the distribution has not shifted enough between two adjacent
	// updates to cross half an order of magnitude), re-measuring adds
	// nothing: skip the probe and spend the EnergyOfGroups pass on the
	// inference itself. The margins are deliberately asymmetric-safe —
	// an indecisive prior falls through to a normal probe, and the prior
	// is consumed either way it decides, so the next choice after a
	// skip is measured afresh unless a new sampling run re-validated it.
	if e.priorValid {
		switch {
		case e.priorAccept >= 2*e.opts.AcceptHigh:
			e.priorValid = false
			e.probeSkip = true
			return StrategySampling, -1
		case e.vm != nil && e.priorAccept < e.opts.AcceptLow/2:
			e.priorValid = false
			e.probeSkip = true
			return StrategyVariational, -1
		}
	}
	n := e.opts.ProbeSamples
	if r := e.store.Remaining(); n > r {
		n = r
	}
	probe := NormalizeAcceptance(
		EstimateAcceptanceRate(e.old, newG, e.store, cs, n, e.opts.Seed+43), n)
	var strat Strategy
	switch {
	case probe >= e.opts.AcceptHigh:
		strat = StrategySampling
	case e.vm != nil && probe < e.opts.AcceptLow:
		strat = StrategyVariational
	default:
		strat = e.ChooseStrategy(cs)
	}
	e.probeKey, e.probeStrat, e.probeVal, e.probeValid = key, strat, probe, true
	return strat, probe
}

// probeFingerprint hashes (FNV-1a) everything a probe's outcome depends
// on apart from the weight values: the store's consumption position and
// size, the updated graph's shape, and the change-set membership.
func (e *Engine) probeFingerprint(newG *factor.Graph, cs ChangeSet) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xFF
			h *= prime64
			v >>= 8
		}
	}
	mix(uint64(e.store.Len()))
	mix(uint64(e.store.Remaining()))
	mix(uint64(newG.NumVars()))
	mix(uint64(newG.NumGroups()))
	mix(uint64(newG.NumGroundings()))
	mix(uint64(len(cs.ChangedOld)))
	for _, gi := range cs.ChangedOld {
		mix(uint64(uint32(gi)))
	}
	mix(uint64(len(cs.ChangedNew)))
	for _, gi := range cs.ChangedNew {
		mix(uint64(uint32(gi)))
	}
	if cs.NewFeatures {
		mix(1)
	}
	return h
}

// ProbeReused reports whether the most recent strategy choice was
// served from the probe memo.
func (e *Engine) ProbeReused() bool { return e.probeHit }

// ProbeSkipped reports whether the most recent strategy choice was
// decided from the acceptance prior without probing.
func (e *Engine) ProbeSkipped() bool { return e.probeSkip }

// notePrior records the acceptance rate an actual sampling pass
// observed over proposed replayed proposals, normalized the same way
// probe scores are (NormalizeAcceptance) so it is comparable against
// the AcceptHigh/AcceptLow thresholds.
func (e *Engine) notePrior(rate float64, proposed int) {
	if proposed <= 0 {
		return
	}
	e.priorAccept = NormalizeAcceptance(rate, proposed)
	e.priorValid = true
}

// ResetProbeCache drops the memoized probe verdict and the acceptance
// prior. The serving layer calls it at every checkpoint so a process
// recovered from that checkpoint (whose restored engine starts with a
// cold memo and no prior) makes the same probe decisions the original
// process made after it.
func (e *Engine) ResetProbeCache() {
	e.probeValid = false
	e.probeHit = false
	e.priorValid = false
	e.probeSkip = false
}

// NoteChanges folds cs into the accumulated post-materialization change
// set. A no-op unless Options.CumulativeChanges is set.
func (e *Engine) NoteChanges(cs ChangeSet) {
	if e.opts.CumulativeChanges {
		e.accum = e.accum.Merge(cs)
	}
}

// Accumulated returns the change sets noted since materialization (the
// union AutoInferCtx scores against). Callers must not mutate it.
func (e *Engine) Accumulated() ChangeSet { return e.accum }

// AutoInferCtx is the serving layer's inference entry point: it notes cs
// into the cumulative post-materialization change set (when enabled),
// chooses a strategy — measured (§3.2) or static (§3.3) per the options —
// and dispatches to the decomposed sampling path (Algorithm 2, when the
// structure changed and a decomposition is supplied) or the plain
// strategy runner. groups is called only when the decomposition is
// actually used. Result.Probed carries the measured estimate (-1 when the
// choice was unprobed).
func (e *Engine) AutoInferCtx(ctx context.Context, newG *factor.Graph, cs ChangeSet, groups func() []DecompGroup) *Result {
	if e.opts.CumulativeChanges {
		e.accum = e.accum.Merge(cs)
		cs = e.accum
	}
	strat, probed := e.ChooseStrategyMeasured(newG, cs)
	skipped := e.probeSkip
	if strat == StrategySampling && cs.StructureChanged() && groups != nil {
		res := e.InferDecomposedCtx(ctx, newG, cs, groups())
		res.Probed = probed
		res.ProbeReused = e.probeHit
		res.ProbeSkipped = skipped
		return res
	}
	res := e.inferAs(ctx, newG, cs, strat)
	res.Probed = probed
	res.ProbeReused = e.probeHit
	res.ProbeSkipped = skipped
	return res
}

// Infer computes marginals under the updated distribution represented by
// newG (the graph after incremental grounding) and the change set.
func (e *Engine) Infer(newG *factor.Graph, cs ChangeSet) *Result {
	return e.InferCtx(nil, newG, cs)
}

// InferCtx is Infer with a cooperative cancellation check threaded into
// every inference loop (proposal scoring, variational sweeps, rerun
// sweeps). A cancelled run returns partial marginals; callers that must
// not serve them check ctx.Err() afterwards.
func (e *Engine) InferCtx(ctx context.Context, newG *factor.Graph, cs ChangeSet) *Result {
	return e.inferAs(ctx, newG, cs, e.ChooseStrategy(cs))
}

// inferAs runs one inference pass under an already-chosen strategy (the
// run-time exhaustion fallback of rule 4 still applies inside the
// sampling branch).
func (e *Engine) inferAs(ctx context.Context, newG *factor.Graph, cs ChangeSet, strat Strategy) *Result {
	start := time.Now()
	res := &Result{Strategy: strat, AcceptanceRate: 1, Probed: -1}
	switch res.Strategy {
	case StrategySampling:
		sr := SamplingInferCtx(ctx, e.old, newG, e.store, cs, e.opts.KeepSamples, e.opts.Seed+17, e.opts.Parallelism)
		res.AcceptanceRate = sr.AcceptanceRate()
		res.SamplesUsed = sr.Proposed
		if !canceled(ctx) {
			e.notePrior(res.AcceptanceRate, sr.Proposed)
		}
		if sr.Exhausted && sr.WorldsObserved < e.opts.KeepSamples && !canceled(ctx) {
			if e.vm != nil {
				// Rule 4: out of samples → variational.
				res.Marginals = VariationalInferCtx(ctx, e.vm, e.old, newG, cs.ChangedNew,
					e.opts.Burnin, e.opts.KeepSamples, e.opts.Seed+23)
				res.Strategy = StrategyVariational
				res.FellBack = true
			} else {
				// Lesion configuration without the variational side: rerun.
				res.Marginals = RerunWithCtx(ctx, newG, e.opts.Burnin, e.opts.KeepSamples, e.opts.Seed+29, e.opts.runtime())
				res.Strategy = StrategyRerun
				res.FellBack = true
			}
		} else {
			res.Marginals = sr.Marginals
		}
	case StrategyVariational:
		res.Marginals = VariationalInferCtx(ctx, e.vm, e.old, newG, cs.ChangedNew,
			e.opts.Burnin, e.opts.KeepSamples, e.opts.Seed+23)
	default:
		res.Marginals = RerunWithCtx(ctx, newG, e.opts.Burnin, e.opts.KeepSamples, e.opts.Seed+29, e.opts.runtime())
	}
	res.Elapsed = time.Since(start)
	return res
}

// Rerun is the from-scratch baseline ("Rerun" in Section 4.2): Gibbs over
// the full new graph.
func Rerun(newG *factor.Graph, burnin, keep int, seed int64) []float64 {
	return RerunParallel(newG, burnin, keep, seed, 1)
}

// RerunParallel is Rerun on a chain with the given worker count (<= 1
// sequential, negative means one worker per core).
func RerunParallel(newG *factor.Graph, burnin, keep int, seed int64, workers int) []float64 {
	return RerunWith(newG, burnin, keep, seed, gibbs.Runtime{Workers: workers})
}

// RerunWith is Rerun on the chain the runtime config selects (sequential,
// sharded, or replica).
func RerunWith(newG *factor.Graph, burnin, keep int, seed int64, rt gibbs.Runtime) []float64 {
	return RerunWithCtx(nil, newG, burnin, keep, seed, rt)
}

// RerunWithCtx is RerunWith with a cooperative cancellation check between
// sweeps; on cancellation it returns the estimate over the worlds
// observed so far.
func RerunWithCtx(ctx context.Context, newG *factor.Graph, burnin, keep int, seed int64, rt gibbs.Runtime) []float64 {
	s := rt.NewChain(newG, seed)
	s.RandomizeState()
	return s.MarginalsCtx(ctx, burnin, keep)
}

// InferDecomposed runs per-group incremental inference over an Algorithm 2
// decomposition: groups untouched by the update adopt stored samples
// directly (acceptance rate 1 — no computation on their factors), touched
// groups run a group-local acceptance test. This is the mechanism behind
// the Figure 14 lesion: without decomposition a single global acceptance
// test collapses when any part of the distribution changes.
func (e *Engine) InferDecomposed(newG *factor.Graph, cs ChangeSet, groups []DecompGroup) *Result {
	return e.InferDecomposedCtx(nil, newG, cs, groups)
}

// InferDecomposedCtx is InferDecomposed with a cooperative cancellation
// check between stored-sample proposals.
func (e *Engine) InferDecomposedCtx(ctx context.Context, newG *factor.Graph, cs ChangeSet, groups []DecompGroup) *Result {
	start := time.Now()
	res := &Result{Strategy: StrategySampling, AcceptanceRate: 1, Probed: -1}
	// Groups created by post-materialization updates are not part of
	// Pr(0); a later modification of one has no old-side energy.
	cs.ChangedOld = clampToGraph(e.old, cs.ChangedOld)

	n := newG.NumVars()
	blockOf := make([]int, n)
	for i := range blockOf {
		blockOf[i] = -1
	}
	for bi, grp := range groups {
		for _, v := range grp.Inactive {
			blockOf[v] = bi
		}
		for _, v := range grp.Active {
			if blockOf[v] == -1 {
				blockOf[v] = bi
			}
		}
	}
	// Residual block for unassigned free vars (e.g. new vars).
	residual := len(groups)
	for v := 0; v < n; v++ {
		if blockOf[v] == -1 && !newG.IsEvidence(factor.VarID(v)) {
			blockOf[v] = residual
		}
	}
	nBlocks := residual + 1
	varsByBlock := make([][]factor.VarID, nBlocks)
	for v := 0; v < n; v++ {
		if b := blockOf[v]; b >= 0 && !newG.IsEvidence(factor.VarID(v)) {
			varsByBlock[b] = append(varsByBlock[b], factor.VarID(v))
		}
	}

	// CSR-direct: GroupVars reports the head first, then each live
	// grounding's variables in pool order — the same scan order the
	// nested-view walk used, without synthesizing the grounding list.
	blockForGroup := func(g *factor.Graph, gi int32) int {
		block := residual
		found := false
		g.GroupVars(gi, func(v factor.VarID) {
			if found || g.IsEvidence(v) {
				return
			}
			if blockOf[v] >= 0 {
				block = blockOf[v]
				found = true
			}
		})
		return block
	}
	changedNewByBlock := make([][]int32, nBlocks)
	for _, gi := range cs.ChangedNew {
		b := blockForGroup(newG, gi)
		changedNewByBlock[b] = append(changedNewByBlock[b], gi)
	}
	changedOldByBlock := make([][]int32, nBlocks)
	for _, gi := range cs.ChangedOld {
		b := blockForGroup(e.old, gi)
		changedOldByBlock[b] = append(changedOldByBlock[b], gi)
	}

	rng := rand.New(rand.NewSource(e.opts.Seed + 31))
	st := factor.NewState(newG)
	sampler := gibbs.FromState(st, e.opts.Seed+37)
	est := gibbs.NewEstimator(n)

	// Old-graph groups reference only old variables, so the (wider) new
	// world can be scored against both graphs directly.
	blockScore := func(world []bool, b int) float64 {
		if len(changedNewByBlock[b]) == 0 && len(changedOldByBlock[b]) == 0 {
			return 0
		}
		return newG.EnergyOfGroups(world, changedNewByBlock[b]) -
			e.old.EnergyOfGroups(world, changedOldByBlock[b])
	}

	prop := make([]bool, n)
	hybrid := make([]bool, n)
	accepted, proposed := 0, 0
	for est.N() < e.opts.KeepSamples {
		if canceled(ctx) {
			break
		}
		raw, ok := e.store.Next(nil)
		if !ok {
			res.FellBack = true
			break
		}
		copy(prop, raw[:min(len(raw), n)])
		for v := 0; v < n; v++ {
			if newG.IsEvidence(factor.VarID(v)) {
				prop[v] = newG.EvidenceValue(factor.VarID(v))
			} else if v >= e.old.NumVars() {
				prop[v] = st.Assign[v] // new vars keep chain values
			}
		}
		// hybrid mirrors st.Assign except within the block under test.
		copy(hybrid, st.Assign)
		for b := 0; b < nBlocks; b++ {
			touched := len(changedNewByBlock[b]) > 0 || len(changedOldByBlock[b]) > 0
			if !touched {
				// Untouched block: adopt the proposal outright.
				for _, v := range varsByBlock[b] {
					st.Set(v, prop[v])
					hybrid[v] = prop[v]
				}
				continue
			}
			proposed++
			for _, v := range varsByBlock[b] {
				hybrid[v] = prop[v]
			}
			d := blockScore(hybrid, b) - blockScore(st.Assign, b)
			if d >= 0 || rng.Float64() < math.Exp(d) {
				accepted++
				for _, v := range varsByBlock[b] {
					st.Set(v, prop[v])
				}
			} else {
				for _, v := range varsByBlock[b] {
					hybrid[v] = st.Assign[v]
				}
			}
		}
		completeNewVars(sampler, e.old.NumVars())
		est.Observe(st.Assign)
	}
	if res.FellBack && e.vm != nil && est.N() < e.opts.KeepSamples && !canceled(ctx) {
		res.Marginals = VariationalInferCtx(ctx, e.vm, e.old, newG, cs.ChangedNew,
			e.opts.Burnin, e.opts.KeepSamples, e.opts.Seed+41)
		res.Strategy = StrategyVariational
	} else {
		res.Marginals = est.Means()
	}
	if proposed > 0 {
		res.AcceptanceRate = float64(accepted) / float64(proposed)
	}
	if !canceled(ctx) {
		e.notePrior(res.AcceptanceRate, proposed)
	}
	res.SamplesUsed = proposed
	res.Elapsed = time.Since(start)
	return res
}

package inc

import (
	"context"
	"math"
	"math/rand"

	"deepdive/internal/factor"
	"deepdive/internal/gibbs"
)

// SamplingResult reports the outcome of the sampling (independent
// Metropolis-Hastings) inference phase.
type SamplingResult struct {
	Marginals      []float64
	Accepted       int
	Proposed       int
	Exhausted      bool // ran out of stored samples before collecting keep worlds
	WorldsObserved int
}

// AcceptanceRate returns accepted/proposed (1 when nothing was proposed).
func (r *SamplingResult) AcceptanceRate() float64 {
	if r.Proposed == 0 {
		return 1
	}
	return float64(r.Accepted) / float64(r.Proposed)
}

// SamplingInfer implements the inference phase of the sampling approach
// (Section 3.2.2): stored samples from Pr(0) are proposals for an
// independent Metropolis-Hastings chain targeting Pr(∆). The acceptance
// test evaluates only the changed factors:
//
//	α = min(1, exp(score(I') − score(I)))
//	score(I) = E_newΔ(I) − E_oldΔ(I)
//
// so when the distribution did not change (score ≡ 0) every proposal is
// accepted and inference is nearly free — the paper's A1 case.
//
// New variables (beyond the stored samples' width) are drawn from their
// Gibbs conditionals given each adopted world; evidence variables are
// forced to their (possibly updated) values. The store is consumed from
// its cursor; exhaustion is reported so the optimizer can fall back.
//
// keep < 1 is clamped to 1, and the chain's seed world counts as an
// observation whenever the store exhausts before any proposal is adopted
// or rejected — a one-sample store still yields one observed world
// instead of an all-zero marginal vector.
func SamplingInfer(oldG, newG *factor.Graph, store *gibbs.Store, cs ChangeSet, keep int, seed int64) *SamplingResult {
	return SamplingInferCtx(nil, oldG, newG, store, cs, keep, seed, 0)
}

// SamplingInferCtx is SamplingInfer with a cooperative cancellation check
// between proposals and with the per-proposal acceptance scoring sharded
// across up to `workers` goroutines (factor.EnergyOfGroupsParallel). The
// Metropolis-Hastings chain itself stays sequential — only each
// proposal's evaluation of the changed groups fans out, which is the
// dominant per-proposal cost when an update touches a large ΔF. workers
// <= 1 keeps the sequential scorer; negative means one per core.
func SamplingInferCtx(ctx context.Context, oldG, newG *factor.Graph, store *gibbs.Store, cs ChangeSet, keep int, seed int64, workers int) *SamplingResult {
	if keep < 1 {
		keep = 1
	}
	// Groups created by post-materialization updates have no old-side
	// energy: they are not part of Pr(0), so a later modification of one
	// appears only on the new side of the score.
	cs.ChangedOld = clampToGraph(oldG, cs.ChangedOld)
	rng := rand.New(rand.NewSource(seed))
	res := &SamplingResult{}
	est := gibbs.NewEstimator(newG.NumVars())

	// Working state over the new graph (handles new vars + new evidence).
	st := factor.NewState(newG)
	sampler := gibbs.FromState(st, seed+1)

	propose := func() ([]bool, bool) {
		raw, ok := store.Next(nil)
		if !ok {
			return nil, false
		}
		full := make([]bool, newG.NumVars())
		copy(full, raw[:min(len(raw), len(full))])
		for v := 0; v < newG.NumVars(); v++ {
			if newG.IsEvidence(factor.VarID(v)) {
				full[v] = newG.EvidenceValue(factor.VarID(v))
			}
		}
		return full, true
	}

	// Old-graph groups reference only old variables, so the (wider) new
	// world scores against both graphs directly.
	score := func(full []bool) float64 {
		if len(cs.ChangedOld) == 0 && len(cs.ChangedNew) == 0 {
			return 0
		}
		return newG.EnergyOfGroupsParallel(full, cs.ChangedNew, workers) -
			oldG.EnergyOfGroupsParallel(full, cs.ChangedOld, workers)
	}

	// Initialize the chain from the first proposal (unconditionally).
	cur, ok := propose()
	if !ok {
		res.Exhausted = true
		res.Marginals = est.Means()
		return res
	}
	st.SetAssignment(cur)
	completeNewVars(sampler, oldG.NumVars())
	curScore := score(st.Assign)

	for est.N() < keep {
		if canceled(ctx) {
			break
		}
		prop, ok := propose()
		if !ok {
			res.Exhausted = true
			break
		}
		res.Proposed++
		// Score the proposal: new vars get conditionals after adoption, so
		// score on the proposal with current new-var values carried over.
		for v := oldG.NumVars(); v < newG.NumVars(); v++ {
			if !newG.IsEvidence(factor.VarID(v)) {
				prop[v] = st.Assign[v]
			}
		}
		propScore := score(prop)
		if propScore >= curScore || rng.Float64() < math.Exp(propScore-curScore) {
			res.Accepted++
			st.SetAssignment(prop)
			completeNewVars(sampler, oldG.NumVars())
			curScore = score(st.Assign)
		}
		est.Observe(st.Assign)
	}
	if est.N() == 0 {
		// The store exhausted right after seeding: the seed world was
		// consumed but never observed, and Means() over zero observations
		// would report every marginal as 0. The seeded chain state is a
		// valid MH state — observe it once.
		est.Observe(st.Assign)
	}
	res.WorldsObserved = est.N()
	res.Marginals = est.Means()
	return res
}

// clampToGraph drops group indexes outside g — groups that did not exist
// when g was materialized. The returned slice aliases groups when nothing
// is dropped.
func clampToGraph(g *factor.Graph, groups []int32) []int32 {
	n := int32(g.NumGroups())
	keep := true
	for _, gi := range groups {
		if gi >= n {
			keep = false
			break
		}
	}
	if keep {
		return groups
	}
	out := make([]int32, 0, len(groups))
	for _, gi := range groups {
		if gi < n {
			out = append(out, gi)
		}
	}
	return out
}

// completeNewVars resamples the variables appended by the update from
// their conditionals given the adopted world.
func completeNewVars(s *gibbs.Sampler, firstNew int) {
	for _, v := range s.FreeVars() {
		if int(v) >= firstNew {
			s.SampleVar(v)
		}
	}
}

// EstimateAcceptanceRate scores a random selection of the *unconsumed*
// stored samples against the updated distribution — a cheap probe the
// optimizer can use. Probing is strictly non-consuming: samples are read
// through Store.Peek, so the cursor (and therefore the number of
// proposals a subsequent sampling run can draw) is untouched — a measured
// optimizer that probes before every update must not accelerate store
// exhaustion. Only the unconsumed region is scored because those are the
// proposals an actual sampling pass would replay; an exhausted store
// reports 0 (nothing left to propose, matching the run-time fallback
// rule). probe is clamped to ≥ 1 (a non-positive probe would otherwise
// score nothing and return 0/0 = NaN).
func EstimateAcceptanceRate(oldG, newG *factor.Graph, store *gibbs.Store, cs ChangeSet, probe int, seed int64) float64 {
	remaining := store.Remaining()
	if remaining == 0 {
		return 0
	}
	if probe < 1 {
		probe = 1
	}
	if probe > remaining {
		probe = remaining
	}
	cs.ChangedOld = clampToGraph(oldG, cs.ChangedOld)
	rng := rand.New(rand.NewSource(seed))
	full := make([]bool, newG.NumVars())
	raw := make([]bool, store.NumVars())
	score := func(k int) float64 {
		raw, _ = store.Peek(k, raw)
		copy(full, raw[:min(len(raw), len(full))])
		for v := 0; v < newG.NumVars(); v++ {
			if newG.IsEvidence(factor.VarID(v)) {
				full[v] = newG.EvidenceValue(factor.VarID(v))
			}
		}
		return newG.EnergyOfGroups(full, cs.ChangedNew) - oldG.EnergyOfGroups(full, cs.ChangedOld)
	}
	cur := score(rng.Intn(remaining))
	accepted, proposed := 0, 0
	for k := 0; k < probe; k++ {
		s := score(rng.Intn(remaining))
		proposed++
		if s >= cur || rng.Float64() < math.Exp(s-cur) {
			accepted++
			cur = s
		}
	}
	return float64(accepted) / float64(proposed)
}

// NormalizeAcceptance rescales a measured acceptance rate from an
// n-proposal probe into a [0,1] mixing score net of the record-only
// baseline: an independence Metropolis-Hastings chain accepts every
// new-record score unconditionally, so even against a maximally changed
// distribution a probe of n i.i.d. proposals accepts ≈ H(n)/n of them
// (the expected record count of a random sequence). Without the
// correction a short probe can never read "low" — the §3.2 thresholds
// would be dead letters. 1 means every proposal accepted (unchanged
// distribution), 0 means nothing beyond the record floor (proposals are
// rejected wholesale). n ≤ 1 returns the raw rate (the baseline equals
// the whole probe).
func NormalizeAcceptance(rate float64, n int) float64 {
	if n <= 1 {
		return rate
	}
	// H(n) ≈ ln n + γ + 1/(2n).
	h := math.Log(float64(n)) + 0.5772156649 + 1/(2*float64(n))
	base := h / float64(n)
	if base >= 1 {
		return rate
	}
	norm := (rate - base) / (1 - base)
	if norm < 0 {
		return 0
	}
	if norm > 1 {
		return 1
	}
	return norm
}

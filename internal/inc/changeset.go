// Package inc implements the paper's incremental-inference contribution
// (Section 3.2): given a factor graph materialized for the original
// distribution Pr(0) and the changes (ΔV, ΔF) produced by incremental
// grounding, compute marginals under the updated distribution Pr(∆)
// without re-running inference from scratch.
//
// Three materialization strategies are provided, mirroring the paper:
//
//   - Strawman (3.2.1): complete materialization of every possible world;
//     exponential space, feasible only below ~20 variables.
//   - Sampling (3.2.2): MCDB-style tuple-bundle samples from Pr(0) reused
//     as independent Metropolis-Hastings proposals; the acceptance test
//     touches only the changed factors.
//   - Variational (3.2.3, Algorithm 1): a sparser approximate factor
//     graph from a log-determinant relaxation with ℓ1 box constraints;
//     updates are applied directly to the approximate graph.
//
// A rule-based optimizer (Section 3.3) chooses between sampling and
// variational per update, and Algorithm 2 (Appendix B.1) decomposes the
// graph into independently-materialized groups around "active" variables.
package inc

import (
	"deepdive/internal/factor"
	"deepdive/internal/ground"
)

// ChangeSet describes how the distribution changed between the old and
// new factor graphs. Group indexes are stable across an update (new
// groups are appended), so ChangedOld indexes the old graph and
// ChangedNew the new one.
type ChangeSet struct {
	// ChangedOld: groups (old-graph indexes) whose energy differs under
	// the new distribution — modified groundings or changed weights.
	ChangedOld []int32
	// ChangedNew: groups (new-graph indexes) whose energy differs —
	// modified groups plus appended new groups.
	ChangedNew []int32
	// EvidenceChanged lists variables whose evidence flag/value changed.
	EvidenceChanged []factor.VarID
	// NewFeatures reports whether new tied weights were introduced.
	NewFeatures bool
}

// FromDelta converts incremental-grounding bookkeeping to a ChangeSet.
func FromDelta(d *ground.Delta) ChangeSet {
	return ChangeSet{
		ChangedOld:      d.ChangedGroupsOld(),
		ChangedNew:      d.ChangedGroupsNew(),
		EvidenceChanged: append([]factor.VarID(nil), d.EvidenceChanged...),
		NewFeatures:     d.HasNewFeatures(),
	}
}

// Merge returns the union of two change sets with duplicate group and
// variable entries removed (duplicates would double-count energy in
// EnergyOfGroups). Callers use it to accumulate the deltas of several
// grounding passes — e.g. an apply retrying after a cancelled
// predecessor whose grounding already committed — into one set to score.
func (c ChangeSet) Merge(o ChangeSet) ChangeSet {
	return ChangeSet{
		ChangedOld:      mergeInt32(c.ChangedOld, o.ChangedOld),
		ChangedNew:      mergeInt32(c.ChangedNew, o.ChangedNew),
		EvidenceChanged: mergeVarIDs(c.EvidenceChanged, o.EvidenceChanged),
		NewFeatures:     c.NewFeatures || o.NewFeatures,
	}
}

func mergeInt32(a, b []int32) []int32 {
	if len(a) == 0 && len(b) == 0 {
		return nil
	}
	seen := make(map[int32]bool, len(a)+len(b))
	out := make([]int32, 0, len(a)+len(b))
	for _, xs := range [][]int32{a, b} {
		for _, x := range xs {
			if !seen[x] {
				seen[x] = true
				out = append(out, x)
			}
		}
	}
	return out
}

func mergeVarIDs(a, b []factor.VarID) []factor.VarID {
	if len(a) == 0 && len(b) == 0 {
		return nil
	}
	seen := make(map[factor.VarID]bool, len(a)+len(b))
	out := make([]factor.VarID, 0, len(a)+len(b))
	for _, xs := range [][]factor.VarID{a, b} {
		for _, x := range xs {
			if !seen[x] {
				seen[x] = true
				out = append(out, x)
			}
		}
	}
	return out
}

// Empty reports whether the distribution is unchanged (the paper's A1
// analysis workload: pure re-querying).
func (c *ChangeSet) Empty() bool {
	return len(c.ChangedOld) == 0 && len(c.ChangedNew) == 0 && len(c.EvidenceChanged) == 0
}

// StructureChanged reports whether factors were added, removed, or
// modified.
func (c *ChangeSet) StructureChanged() bool {
	return len(c.ChangedOld) > 0 || len(c.ChangedNew) > 0
}

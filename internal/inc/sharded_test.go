package inc

import (
	"math"
	"math/rand"
	"testing"

	"deepdive/internal/factor"
	"deepdive/internal/gibbs"
)

// shardedScoringFixture builds an old/new graph pair whose changed-group
// set is large enough to engage the sharded acceptance scorer
// (≥ 2×factor.MinGroupsPerEnergyWorker groups, all with shifted
// weights), plus a sample store materialized from the old distribution.
func shardedScoringFixture(t *testing.T) (oldG, newG *factor.Graph, store *gibbs.Store, cs ChangeSet) {
	t.Helper()
	const nVars = 120
	const nGroups = 4 * factor.MinGroupsPerEnergyWorker
	rng := rand.New(rand.NewSource(5))
	build := func(shift float64) *factor.Graph {
		r := rand.New(rand.NewSource(9)) // same structure both builds
		b := factor.NewBuilder()
		for v := 0; v < nVars; v++ {
			b.AddVar()
		}
		for gi := 0; gi < nGroups; gi++ {
			w := b.AddWeight(r.NormFloat64()*0.6 + shift)
			head := factor.VarID(r.Intn(nVars))
			var gnds []factor.Grounding
			for k := 0; k < 1+r.Intn(3); k++ {
				gnds = append(gnds, factor.Grounding{Lits: []factor.Literal{
					{Var: factor.VarID(r.Intn(nVars)), Neg: r.Intn(2) == 0},
				}})
			}
			b.AddGroup(head, w, factor.Ratio, gnds)
		}
		return b.MustBuild()
	}
	oldG = build(0)
	newG = build(0.35) // same structure, every weight shifted
	s := gibbs.New(oldG, 21)
	s.RandomizeState()
	store = s.CollectSamples(20, 600)
	groups := make([]int32, nGroups)
	for gi := range groups {
		groups[gi] = int32(gi)
	}
	cs = ChangeSet{ChangedOld: groups, ChangedNew: groups}
	_ = rng
	return oldG, newG, store, cs
}

// TestSamplingInferShardedAgreement compares the sharded per-proposal
// acceptance scoring against the sequential path. The MH chain itself is
// identical; only the float summation order differs, so marginals must
// agree closely (decision flips from last-bit energy differences can
// perturb individual chains, hence a tolerance rather than equality).
func TestSamplingInferShardedAgreement(t *testing.T) {
	oldG, newG, store1, cs := shardedScoringFixture(t)
	seq := SamplingInfer(oldG, newG, store1, cs, 300, 77)

	_, _, store2, _ := shardedScoringFixture(t)
	for _, workers := range []int{2, 4} {
		par := SamplingInferCtx(nil, oldG, newG, store2, cs, 300, 77, workers)
		store2.Reset()
		if seq.Proposed == 0 || par.Proposed == 0 {
			t.Fatalf("workers %d: no proposals (seq %d, par %d)", workers, seq.Proposed, par.Proposed)
		}
		if math.Abs(seq.AcceptanceRate()-par.AcceptanceRate()) > 0.05 {
			t.Fatalf("workers %d: acceptance %v (seq) vs %v (sharded)", workers, seq.AcceptanceRate(), par.AcceptanceRate())
		}
		var maxDiff float64
		for v := range seq.Marginals {
			if d := math.Abs(seq.Marginals[v] - par.Marginals[v]); d > maxDiff {
				maxDiff = d
			}
		}
		if maxDiff > 0.08 {
			t.Fatalf("workers %d: max marginal divergence %v", workers, maxDiff)
		}
	}
}

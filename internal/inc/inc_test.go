package inc

import (
	"math"
	"testing"

	"deepdive/internal/factor"
	"deepdive/internal/gibbs"
)

// chainGraph builds a chain v0—v1—…—v(n-1) with pairwise couplings of
// weight w (group: head=v(i), body=v(i+1), linear), plus a weak positive
// bias on v0 so marginals are asymmetric.
func chainGraph(n int, w float64) *factor.Graph {
	b := factor.NewBuilder()
	anchor := b.AddEvidenceVar(true)
	vars := make([]factor.VarID, n)
	for i := range vars {
		vars[i] = b.AddVar()
	}
	cw := b.AddWeight(w)
	for i := 0; i+1 < n; i++ {
		b.AddGroup(vars[i], cw, factor.Linear,
			[]factor.Grounding{{Lits: []factor.Literal{{Var: vars[i+1]}}}})
	}
	bias := b.AddWeight(0.7)
	b.AddGroup(vars[0], bias, factor.Linear,
		[]factor.Grounding{{Lits: []factor.Literal{{Var: anchor}}}})
	return b.MustBuild()
}

// deriveModes are the two ways to produce the post-update graph the
// incremental strategies consume: a full rebuild through factor.Builder
// (the historical path) and an O(Δ) in-place factor.Patch. The strategies
// must behave identically on either derivation, so the affected tests run
// under both as subtests.
var deriveModes = []string{"rebuild", "patch"}

// graphEditor abstracts the mutation surface the two derivations share.
type graphEditor interface {
	AddVar() factor.VarID
	AddWeight(v float64) factor.WeightID
	AddGroup(head factor.VarID, w factor.WeightID, sem factor.Semantics, gnds []factor.Grounding) int
}

type builderEditor struct{ b *factor.Builder }

func (e builderEditor) AddVar() factor.VarID                { return e.b.AddVar() }
func (e builderEditor) AddWeight(v float64) factor.WeightID { return e.b.AddWeight(v) }
func (e builderEditor) AddGroup(head factor.VarID, w factor.WeightID, sem factor.Semantics, gnds []factor.Grounding) int {
	return e.b.AddGroup(head, w, sem, gnds)
}

type patchEditor struct{ p *factor.Patch }

func (e patchEditor) AddVar() factor.VarID                { return e.p.AddVar() }
func (e patchEditor) AddWeight(v float64) factor.WeightID { return e.p.AddWeight(v) }
func (e patchEditor) AddGroup(head factor.VarID, w factor.WeightID, sem factor.Semantics, gnds []factor.Grounding) int {
	gi := e.p.AddGroup(head, w, sem)
	for _, gnd := range gnds {
		e.p.AddGrounding(gi, gnd.Lits)
	}
	return gi
}

// rebuildOrPatch derives a new graph from g in the given mode, applying
// edit (when non-nil) through the mode's mutation surface.
func rebuildOrPatch(t *testing.T, g *factor.Graph, mode string, edit func(graphEditor)) *factor.Graph {
	t.Helper()
	switch mode {
	case "rebuild":
		nb := factor.NewBuilderFrom(g)
		if edit != nil {
			edit(builderEditor{nb})
		}
		return nb.MustBuild()
	case "patch":
		p := factor.NewPatch(g)
		if edit != nil {
			edit(patchEditor{p})
		}
		return p.Apply()
	default:
		t.Fatalf("unknown derivation mode %q", mode)
		return nil
	}
}

func maxAbsDiff(a, b []float64, skipEvidence *factor.Graph) float64 {
	worst := 0.0
	for i := range a {
		if skipEvidence != nil && skipEvidence.IsEvidence(factor.VarID(i)) {
			continue
		}
		d := math.Abs(a[i] - b[i])
		if d > worst {
			worst = d
		}
	}
	return worst
}

func TestStrawmanExactMatchesEnumeration(t *testing.T) {
	g := chainGraph(5, 0.8)
	s, err := MaterializeStrawman(g)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumWorlds() != 32 {
		t.Fatalf("NumWorlds = %d, want 32", s.NumWorlds())
	}
	exact := s.ExactMarginals(nil, nil, nil)
	// Long-run Gibbs should agree.
	m := gibbs.New(g, 3).Marginals(200, 20000)
	if d := maxAbsDiff(exact, m, g); d > 0.02 {
		t.Fatalf("strawman exact vs gibbs diff %v", d)
	}
}

func TestStrawmanInferTracksChangedDistribution(t *testing.T) {
	for _, mode := range deriveModes {
		t.Run(mode, func(t *testing.T) {
			g := chainGraph(5, 0.8)
			s, err := MaterializeStrawman(g)
			if err != nil {
				t.Fatal(err)
			}
			// New graph: same structure but the bias weight flipped negative
			// (a changed factor). Group 4 is the bias group.
			newG := rebuildOrPatch(t, g, mode, nil)
			biasGroup := int32(newG.NumGroups() - 1)
			newG.SetWeight(newG.Group(int(biasGroup)).Weight, -0.7)

			changed := []int32{biasGroup}
			exact := s.ExactMarginals(newG, changed, changed)
			got := s.Infer(newG, changed, changed, 200, 20000, 7)
			if d := maxAbsDiff(exact, got, g); d > 0.03 {
				t.Fatalf("strawman incremental gibbs vs exact diff %v", d)
			}
			// And the change must actually lower P(v1=first chain var).
			orig := s.ExactMarginals(nil, nil, nil)
			if !(exact[1] < orig[1]) {
				t.Fatalf("bias flip did not lower marginal: %v -> %v", orig[1], exact[1])
			}
		})
	}
}

func TestStrawmanInfeasibleBeyondCap(t *testing.T) {
	b := factor.NewBuilder()
	for i := 0; i < MaxStrawmanVars+1; i++ {
		b.AddVar()
	}
	if _, err := MaterializeStrawman(b.MustBuild()); err == nil {
		t.Fatal("oversized strawman accepted")
	}
}

func TestSamplingNoChangeFullAcceptance(t *testing.T) {
	g := chainGraph(6, 0.6)
	sampler := gibbs.New(g, 11)
	store := sampler.CollectSamples(100, 2000)
	res := SamplingInfer(g, g, store, ChangeSet{}, 1500, 12)
	if res.AcceptanceRate() != 1 {
		t.Fatalf("acceptance = %v, want 1 for unchanged distribution", res.AcceptanceRate())
	}
	truth := MaterializeStrawmanMust(t, g).ExactMarginals(nil, nil, nil)
	if d := maxAbsDiff(res.Marginals, truth, g); d > 0.05 {
		t.Fatalf("sampling marginals diff %v from exact", d)
	}
}

func MaterializeStrawmanMust(t *testing.T, g *factor.Graph) *Strawman {
	t.Helper()
	s, err := MaterializeStrawman(g)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSamplingTracksChangedWeights(t *testing.T) {
	for _, mode := range deriveModes {
		t.Run(mode, func(t *testing.T) {
			g := chainGraph(6, 0.6)
			store := gibbs.New(g, 13).CollectSamples(100, 20000)
			// New graph: the shared coupling weight flipped, changing all five
			// coupling groups (indexes 0..4).
			newG := rebuildOrPatch(t, g, mode, nil)
			newG.SetWeight(newG.Group(0).Weight, -0.6)
			changed := []int32{0, 1, 2, 3, 4}
			cs := ChangeSet{ChangedOld: changed, ChangedNew: changed}
			res := SamplingInfer(g, newG, store, cs, 19000, 14)
			if res.AcceptanceRate() >= 1 {
				t.Fatalf("acceptance = %v, want < 1 for changed distribution", res.AcceptanceRate())
			}
			truth := MaterializeStrawmanMust(t, g).ExactMarginals(newG, changed, changed)
			if d := maxAbsDiff(res.Marginals, truth, g); d > 0.06 {
				t.Fatalf("sampling marginals diff %v from exact", d)
			}
		})
	}
}

func TestSamplingHandlesNewVariablesAndEvidence(t *testing.T) {
	for _, mode := range deriveModes {
		t.Run(mode, func(t *testing.T) {
			g := chainGraph(4, 0.6)
			store := gibbs.New(g, 15).CollectSamples(100, 3000)
			// Extend: new variable coupled to the chain tail; evidence set on v2.
			var nv factor.VarID
			var gi int
			tail := factor.VarID(4) // last chain var (anchor=0, chain=1..4)
			newG := rebuildOrPatch(t, g, mode, func(e graphEditor) {
				nv = e.AddVar()
				w := e.AddWeight(1.5)
				gi = e.AddGroup(nv, w, factor.Linear,
					[]factor.Grounding{{Lits: []factor.Literal{{Var: tail}}}})
			})
			newG.SetEvidence(2, true, true)
			cs := ChangeSet{
				ChangedNew:      []int32{int32(gi)},
				EvidenceChanged: []factor.VarID{2},
			}
			res := SamplingInfer(g, newG, store, cs, 2500, 16)
			if res.Marginals[2] != 1 {
				t.Fatalf("evidence var marginal = %v, want 1", res.Marginals[2])
			}
			if g.IsEvidence(2) {
				t.Fatal("evidence change leaked into the pre-update graph")
			}
			truth := MaterializeStrawmanMust(t, newG).ExactMarginals(nil, nil, nil)
			if d := math.Abs(res.Marginals[nv] - truth[nv]); d > 0.12 {
				t.Fatalf("new-var marginal %v vs exact %v", res.Marginals[nv], truth[nv])
			}
		})
	}
}

func TestSamplingExhaustion(t *testing.T) {
	g := chainGraph(4, 0.5)
	store := gibbs.New(g, 17).CollectSamples(10, 50)
	res := SamplingInfer(g, g, store, ChangeSet{}, 500, 18)
	if !res.Exhausted {
		t.Fatal("store of 50 samples should exhaust before 500 keeps")
	}
	if res.WorldsObserved >= 500 {
		t.Fatalf("observed %d worlds from 50 samples", res.WorldsObserved)
	}
}

// TestEstimateAcceptanceRateClampsProbe is the NaN regression test: a
// probe <= 0 used to skip the scoring loop entirely and return 0/0. The
// clamp promised by the doc comment must make it behave as probe = 1.
func TestEstimateAcceptanceRateClampsProbe(t *testing.T) {
	for _, mode := range deriveModes {
		t.Run(mode, func(t *testing.T) {
			g := chainGraph(5, 0.5)
			store := gibbs.New(g, 41).CollectSamples(50, 200)
			newG := rebuildOrPatch(t, g, mode, nil)
			for _, probe := range []int{0, -3} {
				r := EstimateAcceptanceRate(g, newG, store, ChangeSet{}, probe, 42)
				if math.IsNaN(r) {
					t.Fatalf("probe=%d returned NaN", probe)
				}
				if r != 1 {
					t.Fatalf("probe=%d on unchanged distribution = %v, want 1", probe, r)
				}
			}
			// Empty store still reports 0 (no samples to replay at all).
			if r := EstimateAcceptanceRate(g, newG, gibbs.NewStore(g.NumVars()), ChangeSet{}, 0, 43); r != 0 {
				t.Fatalf("empty store estimate = %v, want 0", r)
			}
		})
	}
}

// TestSamplingInferEdgeCases covers the seed-world guard: keep <= 0 is
// clamped, and a store of one sample (whose only world is consumed to
// seed the chain) must still yield one observed world instead of the
// all-zero marginal vector Means() produces over zero observations.
func TestSamplingInferEdgeCases(t *testing.T) {
	for _, mode := range deriveModes {
		t.Run(mode, func(t *testing.T) {
			g := chainGraph(4, 0.9) // strong coupling: true-heavy worlds
			newG := rebuildOrPatch(t, g, mode, nil)

			makeStore := func(n int) *gibbs.Store {
				if n == 0 {
					return gibbs.NewStore(g.NumVars())
				}
				return gibbs.New(g, 45).CollectSamples(200, n)
			}

			// store.Len() == 0: nothing to seed from.
			res := SamplingInfer(g, newG, makeStore(0), ChangeSet{}, 1, 46)
			if !res.Exhausted || res.WorldsObserved != 0 {
				t.Fatalf("empty store: exhausted=%v observed=%d", res.Exhausted, res.WorldsObserved)
			}
			if len(res.Marginals) != newG.NumVars() {
				t.Fatalf("empty store marginal width %d", len(res.Marginals))
			}

			// store.Len() == 1 with keep in {0, 1}: the single sample seeds
			// the chain and must be observed.
			for _, keep := range []int{0, 1} {
				res := SamplingInfer(g, newG, makeStore(1), ChangeSet{}, keep, 47)
				if res.WorldsObserved != 1 {
					t.Fatalf("keep=%d single-sample store observed %d worlds, want 1", keep, res.WorldsObserved)
				}
				any := false
				for v := 0; v < g.NumVars(); v++ {
					if res.Marginals[v] != 0 {
						any = true
					}
				}
				if !any {
					t.Fatalf("keep=%d single-sample marginals all zero — seed world lost", keep)
				}
			}

			// keep <= 0 with a full store behaves as keep = 1.
			res = SamplingInfer(g, newG, makeStore(50), ChangeSet{}, 0, 48)
			if res.WorldsObserved != 1 || res.Exhausted {
				t.Fatalf("keep=0 observed %d worlds (exhausted=%v), want 1", res.WorldsObserved, res.Exhausted)
			}
		})
	}
}

func TestEstimateAcceptanceRate(t *testing.T) {
	for _, mode := range deriveModes {
		t.Run(mode, func(t *testing.T) {
			g := chainGraph(6, 0.6)
			store := gibbs.New(g, 19).CollectSamples(100, 1000)
			// Unchanged: rate 1.
			if r := EstimateAcceptanceRate(g, g, store, ChangeSet{}, 100, 20); r != 1 {
				t.Fatalf("unchanged estimate = %v, want 1", r)
			}
			// Heavily changed: rate < 1.
			newG := rebuildOrPatch(t, g, mode, nil)
			newG.SetWeight(newG.Group(0).Weight, -3)
			changed := []int32{0, 1, 2, 3, 4}
			r := EstimateAcceptanceRate(g, newG, store, ChangeSet{ChangedOld: changed, ChangedNew: changed}, 200, 21)
			if r >= 0.95 {
				t.Fatalf("heavy change estimate = %v, want < 0.95", r)
			}
		})
	}
}

func TestVariationalApproximatesMarginals(t *testing.T) {
	g := chainGraph(6, 0.9)
	store := gibbs.New(g, 23).CollectSamples(200, 3000)
	vm, err := MaterializeVariational(g, store, VariationalOptions{Lambda: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if len(vm.Edges) == 0 {
		t.Fatal("variational produced no edges for a correlated chain")
	}
	got := VariationalInfer(vm, nil, g, nil, 200, 5000, 24)
	truth := MaterializeStrawmanMust(t, g).ExactMarginals(nil, nil, nil)
	if d := maxAbsDiff(got, truth, g); d > 0.15 {
		t.Fatalf("variational marginals diff %v from exact (edges=%d)", d, len(vm.Edges))
	}
}

func TestVariationalLambdaControlsSparsity(t *testing.T) {
	g := chainGraph(10, 0.8)
	store := gibbs.New(g, 25).CollectSamples(200, 2000)
	prev := math.MaxInt
	for _, lambda := range []float64{0.001, 0.1, 10} {
		vm, err := MaterializeVariational(g, store, VariationalOptions{Lambda: lambda})
		if err != nil {
			t.Fatalf("λ=%v: %v", lambda, err)
		}
		if len(vm.Edges) > prev {
			t.Fatalf("λ=%v: edges grew from %d to %d", lambda, prev, len(vm.Edges))
		}
		prev = len(vm.Edges)
	}
	if prev != 0 {
		t.Fatalf("λ=10 should prune (nearly) all edges of a weak chain, kept %d", prev)
	}
}

func TestVariationalRespectsAdjacency(t *testing.T) {
	// Two independent pairs: no cross-pair edges allowed.
	b := factor.NewBuilder()
	v0, v1, v2, v3 := b.AddVar(), b.AddVar(), b.AddVar(), b.AddVar()
	w := b.AddWeight(1.2)
	b.AddGroup(v0, w, factor.Linear, []factor.Grounding{{Lits: []factor.Literal{{Var: v1}}}})
	b.AddGroup(v2, w, factor.Linear, []factor.Grounding{{Lits: []factor.Literal{{Var: v3}}}})
	g := b.MustBuild()
	store := gibbs.New(g, 27).CollectSamples(100, 2000)
	vm, err := MaterializeVariational(g, store, VariationalOptions{Lambda: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range vm.Edges {
		same := (e.I < 2) == (e.J < 2)
		if !same {
			t.Fatalf("cross-component edge %v-%v", e.I, e.J)
		}
	}
}

func TestVariationalLargeComponentFallback(t *testing.T) {
	g := chainGraph(30, 0.7)
	store := gibbs.New(g, 29).CollectSamples(100, 1500)
	vm, err := MaterializeVariational(g, store, VariationalOptions{Lambda: 0.01, MaxDenseComponent: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(vm.Edges) == 0 {
		t.Fatal("threshold fallback produced no edges")
	}
	// Edges only between chain neighbors (adjacency pattern respected).
	for _, e := range vm.Edges {
		d := int(e.J) - int(e.I)
		if d < 0 {
			d = -d
		}
		if d != 1 {
			t.Fatalf("non-adjacent edge %v-%v in chain", e.I, e.J)
		}
	}
}

func TestEngineStrategyRules(t *testing.T) {
	g := chainGraph(5, 0.5)
	e, err := NewEngine(g, Options{MaterializationSamples: 200, KeepSamples: 100, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		cs   ChangeSet
		want Strategy
	}{
		{"no change (A1)", ChangeSet{}, StrategySampling},
		{"evidence update (S rules)", ChangeSet{EvidenceChanged: []factor.VarID{1}}, StrategyVariational},
		{"new features (FE rules)", ChangeSet{ChangedNew: []int32{0}, NewFeatures: true}, StrategySampling},
		{"structure only (I rules)", ChangeSet{ChangedNew: []int32{0}}, StrategySampling},
	}
	for _, c := range cases {
		if got := e.ChooseStrategy(c.cs); got != c.want {
			t.Errorf("%s: strategy = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestEngineLesionSwitches(t *testing.T) {
	g := chainGraph(5, 0.5)
	noSamp, _ := NewEngine(g, Options{MaterializationSamples: 100, Seed: 1, DisableSampling: true})
	if noSamp.ChooseStrategy(ChangeSet{}) != StrategyVariational {
		t.Fatal("DisableSampling ignored")
	}
	noVar, _ := NewEngine(g, Options{MaterializationSamples: 100, Seed: 1, DisableVariational: true})
	if noVar.ChooseStrategy(ChangeSet{EvidenceChanged: []factor.VarID{1}}) != StrategySampling {
		t.Fatal("DisableVariational ignored")
	}
	noWl, _ := NewEngine(g, Options{MaterializationSamples: 100, Seed: 1, IgnoreWorkload: true})
	if noWl.ChooseStrategy(ChangeSet{EvidenceChanged: []factor.VarID{1}}) != StrategySampling {
		t.Fatal("IgnoreWorkload ignored")
	}
}

func TestEngineInferUnchangedMatchesTruth(t *testing.T) {
	g := chainGraph(6, 0.7)
	e, err := NewEngine(g, Options{MaterializationSamples: 3000, KeepSamples: 2000, Burnin: 100, Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	res := e.Infer(g, ChangeSet{})
	if res.Strategy != StrategySampling || res.FellBack {
		t.Fatalf("unchanged inference used %v (fellback=%v)", res.Strategy, res.FellBack)
	}
	truth := MaterializeStrawmanMust(t, g).ExactMarginals(nil, nil, nil)
	if d := maxAbsDiff(res.Marginals, truth, g); d > 0.05 {
		t.Fatalf("marginals diff %v", d)
	}
}

func TestEngineFallsBackOnExhaustion(t *testing.T) {
	g := chainGraph(6, 0.7)
	e, err := NewEngine(g, Options{MaterializationSamples: 50, KeepSamples: 500, Burnin: 20, Seed: 35})
	if err != nil {
		t.Fatal(err)
	}
	res := e.Infer(g, ChangeSet{})
	if !res.FellBack || res.Strategy != StrategyVariational {
		t.Fatalf("expected variational fallback, got %v fellback=%v", res.Strategy, res.FellBack)
	}
	if len(res.Marginals) != g.NumVars() {
		t.Fatalf("marginals length %d", len(res.Marginals))
	}
}

func TestEngineMaterializeForBudget(t *testing.T) {
	g := chainGraph(5, 0.5)
	e, err := NewEngine(g, Options{MaterializationSamples: 10, Seed: 37})
	if err != nil {
		t.Fatal(err)
	}
	n0 := e.Store().Len()
	n1 := e.MaterializeForBudget(20e6) // 20ms
	if n1 <= n0 {
		t.Fatalf("budget materialization added no samples: %d -> %d", n0, n1)
	}
}

func TestDecomposeStructure(t *testing.T) {
	// v1—a—v2 and v3 isolated; a active. Components {v1}, {v2} share
	// boundary {a} and merge; {v3} has an empty boundary, which the
	// paper's merge criterion (|A_j ∪ A_k| = max(|A_j|, |A_k|)) also
	// absorbs — the empty set is contained in every boundary.
	b := factor.NewBuilder()
	a := b.AddVar()
	v1 := b.AddVar()
	v2 := b.AddVar()
	v3 := b.AddVar()
	w := b.AddWeight(1)
	b.AddGroup(v1, w, factor.Linear, []factor.Grounding{{Lits: []factor.Literal{{Var: a}}}})
	b.AddGroup(v2, w, factor.Linear, []factor.Grounding{{Lits: []factor.Literal{{Var: a}}}})
	_ = v3
	g := b.MustBuild()
	groups := Decompose(g, []factor.VarID{a})
	if len(groups) != 1 {
		t.Fatalf("got %d groups, want 1 after paper-literal merging: %+v", len(groups), groups)
	}
	grp := groups[0]
	if len(grp.Inactive) != 3 || len(grp.Active) != 1 || grp.Active[0] != a {
		t.Fatalf("merged group wrong: %+v", grp)
	}
}

func TestDecomposeDistinctBoundariesStaySeparate(t *testing.T) {
	// a1—v1 and a2—v2 with disjoint boundaries {a1} and {a2}:
	// |{a1} ∪ {a2}| = 2 ≠ max(1, 1), so the groups must NOT merge.
	b := factor.NewBuilder()
	a1 := b.AddVar()
	a2 := b.AddVar()
	v1 := b.AddVar()
	v2 := b.AddVar()
	w := b.AddWeight(1)
	b.AddGroup(v1, w, factor.Linear, []factor.Grounding{{Lits: []factor.Literal{{Var: a1}}}})
	b.AddGroup(v2, w, factor.Linear, []factor.Grounding{{Lits: []factor.Literal{{Var: a2}}}})
	g := b.MustBuild()
	groups := Decompose(g, []factor.VarID{a1, a2})
	if len(groups) != 2 {
		t.Fatalf("got %d groups, want 2: %+v", len(groups), groups)
	}
}

func TestDecomposePartition(t *testing.T) {
	g := chainGraph(10, 0.5)
	active := []factor.VarID{3, 7}
	groups := Decompose(g, active)
	seen := map[factor.VarID]int{}
	for _, grp := range groups {
		for _, v := range grp.Inactive {
			seen[v]++
			if v == 3 || v == 7 {
				t.Fatalf("active var %d in inactive set", v)
			}
			if g.IsEvidence(v) {
				t.Fatalf("evidence var %d in inactive set", v)
			}
		}
	}
	// Every free non-active var appears exactly once.
	for v := 0; v < g.NumVars(); v++ {
		id := factor.VarID(v)
		if g.IsEvidence(id) || id == 3 || id == 7 {
			continue
		}
		if seen[id] != 1 {
			t.Fatalf("var %d appears %d times", v, seen[id])
		}
	}
}

func TestInferDecomposedUntouchedBlocksFree(t *testing.T) {
	for _, mode := range deriveModes {
		t.Run(mode, func(t *testing.T) {
			// Two chains, each anchored on its own active variable, so the
			// decomposition keeps them separate. Change only the second chain's
			// factor; the first block adopts samples without acceptance testing.
			b := factor.NewBuilder()
			a1, a2 := b.AddVar(), b.AddVar()
			v1, v2 := b.AddVar(), b.AddVar()
			w1 := b.AddWeight(1.0)
			w2 := b.AddWeight(1.0)
			b.AddGroup(v1, w1, factor.Linear, []factor.Grounding{{Lits: []factor.Literal{{Var: a1}}}})
			b.AddGroup(v2, w2, factor.Linear, []factor.Grounding{{Lits: []factor.Literal{{Var: a2}}}})
			g := b.MustBuild()
			e, err := NewEngine(g, Options{MaterializationSamples: 4000, KeepSamples: 3000, Burnin: 100, Seed: 39})
			if err != nil {
				t.Fatal(err)
			}
			newG := rebuildOrPatch(t, g, mode, nil)
			newG.SetWeight(newG.Group(1).Weight, -1.0)
			cs := ChangeSet{ChangedOld: []int32{1}, ChangedNew: []int32{1}}
			groups := Decompose(g, []factor.VarID{a1, a2})
			if len(groups) != 2 {
				t.Fatalf("decomposition groups = %d, want 2: %+v", len(groups), groups)
			}
			res := e.InferDecomposed(newG, cs, groups)
			truth := MaterializeStrawmanMust(t, g).ExactMarginals(newG, cs.ChangedOld, cs.ChangedNew)
			if d := maxAbsDiff(res.Marginals, truth, newG); d > 0.08 {
				t.Fatalf("decomposed marginals diff %v (truth %v, got %v)", d, truth, res.Marginals)
			}
		})
	}
}

func TestChangeSetHelpers(t *testing.T) {
	cs := ChangeSet{}
	if !cs.Empty() || cs.StructureChanged() {
		t.Fatal("empty ChangeSet misreported")
	}
	cs.ChangedNew = []int32{1}
	if cs.Empty() || !cs.StructureChanged() {
		t.Fatal("non-empty ChangeSet misreported")
	}
}

func TestStrategyString(t *testing.T) {
	if StrategySampling.String() != "sampling" ||
		StrategyVariational.String() != "variational" ||
		StrategyRerun.String() != "rerun" {
		t.Fatal("Strategy strings wrong")
	}
	if Strategy(7).String() != "Strategy(7)" {
		t.Fatal("unknown Strategy string wrong")
	}
}

package inc

import (
	"fmt"
	"math"
	"math/rand"

	"deepdive/internal/factor"
)

// MaxStrawmanVars bounds complete materialization: 2^20 worlds × 8 bytes
// = 8 MiB. The paper observes the strawman is "often infeasible on even
// moderate-sized graphs"; this constant is where our implementation draws
// the line.
const MaxStrawmanVars = 20

// Strawman is the complete materialization of Section 3.2.1: the
// (unnormalized log-) probability of every possible world of the free
// variables, stored explicitly.
type Strawman struct {
	graph    *factor.Graph
	free     []factor.VarID
	varBit   map[factor.VarID]int
	energies []float64 // indexed by bitmask over free variables
}

// MaterializeStrawman enumerates every possible world of g's free
// variables and stores its energy. Errors when the graph has more than
// MaxStrawmanVars free variables.
func MaterializeStrawman(g *factor.Graph) (*Strawman, error) {
	var free []factor.VarID
	for v := 0; v < g.NumVars(); v++ {
		if !g.IsEvidence(factor.VarID(v)) {
			free = append(free, factor.VarID(v))
		}
	}
	if len(free) > MaxStrawmanVars {
		return nil, fmt.Errorf("inc: strawman materialization infeasible for %d free variables (max %d)",
			len(free), MaxStrawmanVars)
	}
	s := &Strawman{
		graph:    g,
		free:     free,
		varBit:   make(map[factor.VarID]int, len(free)),
		energies: make([]float64, 1<<uint(len(free))),
	}
	for i, v := range free {
		s.varBit[v] = i
	}
	assign := make([]bool, g.NumVars())
	for v := 0; v < g.NumVars(); v++ {
		if g.IsEvidence(factor.VarID(v)) {
			assign[v] = g.EvidenceValue(factor.VarID(v))
		}
	}
	for mask := range s.energies {
		for i, v := range free {
			assign[v] = mask&(1<<uint(i)) != 0
		}
		s.energies[mask] = g.Energy(assign)
	}
	return s, nil
}

// NumWorlds returns the number of stored worlds.
func (s *Strawman) NumWorlds() int { return len(s.energies) }

// MemoryBytes returns the materialization footprint.
func (s *Strawman) MemoryBytes() int { return len(s.energies) * 8 }

// maskOf packs an assignment of the free variables into a world index.
func (s *Strawman) maskOf(assign []bool) int {
	mask := 0
	for i, v := range s.free {
		if assign[v] {
			mask |= 1 << uint(i)
		}
	}
	return mask
}

// ExactMarginals computes exact marginals of the stored distribution,
// optionally tilted by the changed factors of a new graph (pass nil
// newG for the original distribution). Used as ground truth in tests and
// for tiny graphs.
func (s *Strawman) ExactMarginals(newG *factor.Graph, changedOld, changedNew []int32) []float64 {
	n := s.graph.NumVars()
	out := make([]float64, n)
	assign := make([]bool, n)
	for v := 0; v < n; v++ {
		if s.graph.IsEvidence(factor.VarID(v)) {
			assign[v] = s.graph.EvidenceValue(factor.VarID(v))
			if assign[v] {
				out[v] = 1 // evidence reports its value
			}
		}
	}
	// Log-sum-exp for stability.
	var maxE = math.Inf(-1)
	scores := make([]float64, len(s.energies))
	for mask := range s.energies {
		e := s.energies[mask]
		if newG != nil {
			for i, v := range s.free {
				assign[v] = mask&(1<<uint(i)) != 0
			}
			e += newG.EnergyOfGroups(assign, changedNew) - s.graph.EnergyOfGroups(assign, changedOld)
		}
		scores[mask] = e
		if e > maxE {
			maxE = e
		}
	}
	var z float64
	sums := make([]float64, len(s.free))
	for mask, e := range scores {
		p := math.Exp(e - maxE)
		z += p
		for i := range s.free {
			if mask&(1<<uint(i)) != 0 {
				sums[i] += p
			}
		}
	}
	for i, v := range s.free {
		out[v] = sums[i] / z
	}
	return out
}

// Infer runs Gibbs sampling for the updated distribution using stored
// energies: the conditional of a variable needs only the two stored world
// energies plus the changed factors' energies — no access to the original
// factors (the strawman's speed argument in the paper).
func (s *Strawman) Infer(newG *factor.Graph, changedOld, changedNew []int32, burnin, keep int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	n := s.graph.NumVars()
	assign := make([]bool, n)
	for v := 0; v < n; v++ {
		if s.graph.IsEvidence(factor.VarID(v)) {
			assign[v] = s.graph.EvidenceValue(factor.VarID(v))
		}
	}
	mask := 0
	score := func(m int) float64 {
		e := s.energies[m]
		if newG != nil && (len(changedOld) > 0 || len(changedNew) > 0) {
			for i, v := range s.free {
				assign[v] = m&(1<<uint(i)) != 0
			}
			e += newG.EnergyOfGroups(assign, changedNew) - s.graph.EnergyOfGroups(assign, changedOld)
		}
		return e
	}
	counts := make([]float64, n)
	total := burnin + keep
	for it := 0; it < total; it++ {
		for i := range s.free {
			m1 := mask | 1<<uint(i)
			m0 := mask &^ (1 << uint(i))
			d := score(m1) - score(m0)
			if rng.Float64() < 1/(1+math.Exp(-d)) {
				mask = m1
			} else {
				mask = m0
			}
		}
		if it >= burnin {
			for i, v := range s.free {
				if mask&(1<<uint(i)) != 0 {
					counts[v]++
				}
			}
		}
	}
	out := make([]float64, n)
	for v := 0; v < n; v++ {
		if s.graph.IsEvidence(factor.VarID(v)) {
			if s.graph.EvidenceValue(factor.VarID(v)) {
				out[v] = 1
			}
			continue
		}
		out[v] = counts[v] / float64(keep)
	}
	return out
}

package inc

import (
	"fmt"
	"time"

	"deepdive/internal/factor"
	"deepdive/internal/gibbs"
	"deepdive/internal/persist"
)

// Snapshot codec for Engine. Persisted: the sample store (bit-packed
// blob + consumption cursor), the variational materialization, the
// accumulated post-materialization change set, and the wall-clock
// materialization cost (for stats continuity). NOT persisted: the
// options (the caller reopens with the same configuration, like any
// config), the Pr(0) graph (serialized separately by the caller — it
// may be shared with the current graph), and the probe-verdict cache
// (restored engines start cold so WAL replay from a checkpoint sees
// the same cache evolution as the original process did after its
// checkpoint).
const engineCodecVersion = 1

// AppendSnapshot encodes the engine's dynamic state into b.
func (e *Engine) AppendSnapshot(b *persist.Buf) {
	b.U8(engineCodecVersion)
	b.I64(int64(e.matElapsed))
	e.store.AppendSnapshot(b)
	b.Bool(e.vm != nil)
	if e.vm != nil {
		e.vm.AppendSnapshot(b)
	}
	e.accum.AppendSnapshot(b)
}

// RestoreEngine rebuilds an engine around an already-decoded Pr(0)
// graph. No sampling happens: the store is the persisted one, and the
// (idle-path-only) materialization chain is rebuilt unsampled.
func RestoreEngine(old *factor.Graph, opts Options, r *persist.Rd) (*Engine, error) {
	if v := r.U8("engine version"); r.Err() == nil && v != engineCodecVersion {
		return nil, fmt.Errorf("inc: unsupported engine codec version %d", v)
	}
	o := opts.fill()
	e := &Engine{opts: o, old: old}
	e.matElapsed = time.Duration(r.I64("engine matElapsed"))
	store, err := gibbs.DecodeStoreSnapshot(r)
	if err != nil {
		return nil, err
	}
	e.store = store
	if r.Bool("variational present") {
		vm, err := DecodeVariationalSnapshot(r)
		if err != nil {
			return nil, err
		}
		e.vm = vm
	}
	accum, err := DecodeChangeSet(r)
	if err != nil {
		return nil, err
	}
	e.accum = accum
	// The chain exists only for the MaterializeForBudget idle path; it
	// carries no sampled state worth persisting.
	e.sampler = o.runtime().NewChain(old, o.Seed)
	return e, nil
}

// AppendSnapshot encodes the variational materialization: a pure POD
// (unary/pairwise potentials), written as parallel pools.
func (v *Variational) AppendSnapshot(b *persist.Buf) {
	b.I64(int64(v.NumVars))
	b.F64(v.Lambda)
	ei := make([]int32, len(v.Edges))
	ej := make([]int32, len(v.Edges))
	ew := make([]float64, len(v.Edges))
	for i, pf := range v.Edges {
		ei[i], ej[i], ew[i] = int32(pf.I), int32(pf.J), pf.W
	}
	b.I32s(ei)
	b.I32s(ej)
	b.F64s(ew)
	uv := make([]int32, len(v.Unaries))
	uw := make([]float64, len(v.Unaries))
	for i, uf := range v.Unaries {
		uv[i], uw[i] = int32(uf.V), uf.W
	}
	b.I32s(uv)
	b.F64s(uw)
}

// DecodeVariationalSnapshot reverses Variational.AppendSnapshot.
func DecodeVariationalSnapshot(r *persist.Rd) (*Variational, error) {
	v := &Variational{}
	v.NumVars = int(r.I64("variational numVars"))
	v.Lambda = r.F64("variational lambda")
	ei := r.I32s("variational edge i")
	ej := r.I32s("variational edge j")
	ew := r.F64s("variational edge w")
	if len(ei) != len(ej) || len(ei) != len(ew) {
		return nil, fmt.Errorf("inc: corrupt variational edge pools")
	}
	if len(ei) > 0 {
		v.Edges = make([]PairFactor, len(ei))
		for i := range ei {
			v.Edges[i] = PairFactor{I: factor.VarID(ei[i]), J: factor.VarID(ej[i]), W: ew[i]}
		}
	}
	uv := r.I32s("variational unary v")
	uw := r.F64s("variational unary w")
	if len(uv) != len(uw) {
		return nil, fmt.Errorf("inc: corrupt variational unary pools")
	}
	if len(uv) > 0 {
		v.Unaries = make([]UnaryFactor, len(uv))
		for i := range uv {
			v.Unaries[i] = UnaryFactor{V: factor.VarID(uv[i]), W: uw[i]}
		}
	}
	return v, r.Err()
}

// AppendSnapshot encodes a change set.
func (cs ChangeSet) AppendSnapshot(b *persist.Buf) {
	b.I32s(cs.ChangedOld)
	b.I32s(cs.ChangedNew)
	ev := make([]int32, len(cs.EvidenceChanged))
	for i, v := range cs.EvidenceChanged {
		ev[i] = int32(v)
	}
	b.I32s(ev)
	b.Bool(cs.NewFeatures)
}

// DecodeChangeSet reverses ChangeSet.AppendSnapshot.
func DecodeChangeSet(r *persist.Rd) (ChangeSet, error) {
	var cs ChangeSet
	cs.ChangedOld = r.I32s("changeset changedOld")
	cs.ChangedNew = r.I32s("changeset changedNew")
	ev := r.I32s("changeset evidence")
	if len(ev) > 0 {
		cs.EvidenceChanged = make([]factor.VarID, len(ev))
		for i, v := range ev {
			cs.EvidenceChanged[i] = factor.VarID(v)
		}
	}
	cs.NewFeatures = r.Bool("changeset newFeatures")
	return cs, r.Err()
}

package inc

import (
	"testing"

	"deepdive/internal/factor"
	"deepdive/internal/gibbs"
)

// TestEstimateAcceptanceRateCursorInvariance pins the non-consuming
// contract of the probe: however many times the optimizer measures, the
// store's cursor — and therefore the number of proposals a subsequent
// sampling pass can draw — must not move. The old implementation probed
// via whole-store Get over already-consumed samples; the rewrite peeks
// the unconsumed window only.
func TestEstimateAcceptanceRateCursorInvariance(t *testing.T) {
	g := chainGraph(6, 0.6)
	store := gibbs.New(g, 19).CollectSamples(100, 200)

	// Consume a prefix so the unconsumed window is a strict suffix.
	for i := 0; i < 50; i++ {
		if _, ok := store.Next(nil); !ok {
			t.Fatal("store exhausted during setup")
		}
	}
	before := store.Remaining()

	newG := factor.NewBuilderFrom(g).MustBuild()
	newG.SetWeight(newG.Group(0).Weight, -3)
	changed := []int32{0, 1, 2, 3, 4}
	cs := ChangeSet{ChangedOld: changed, ChangedNew: changed}
	for i := 0; i < 10; i++ {
		r := EstimateAcceptanceRate(g, newG, store, cs, 40, int64(100+i))
		if r < 0 || r > 1 {
			t.Fatalf("probe %d returned %v outside [0,1]", i, r)
		}
		if store.Remaining() != before {
			t.Fatalf("probe %d consumed the store: Remaining %d -> %d", i, before, store.Remaining())
		}
	}

	// A fully consumed store has nothing left to propose: the probe must
	// report 0 (the upfront form of the run-time exhaustion fallback),
	// not score consumed samples as if they were still available.
	for store.Remaining() > 0 {
		store.Next(nil)
	}
	if r := EstimateAcceptanceRate(g, newG, store, cs, 40, 7); r != 0 {
		t.Fatalf("exhausted store probe = %v, want 0", r)
	}
	if store.Remaining() != 0 {
		t.Fatal("probe on exhausted store moved the cursor")
	}
}

// addBiasedVar appends one new variable with a single strong positive
// bias group (anchored on the evidence-true var 0 that chainGraph
// creates) and returns the new graph, the new var, and the new group's
// index.
func addBiasedVar(t *testing.T, g *factor.Graph, w float64) (*factor.Graph, factor.VarID, int32) {
	t.Helper()
	p := factor.NewPatch(g)
	v := p.AddVar()
	wid := p.AddWeight(w)
	gi := p.AddGroup(v, wid, factor.Linear)
	p.AddGrounding(gi, []factor.Literal{{Var: 0}})
	return p.Apply(), v, int32(gi)
}

// TestCumulativeChangesetEncodesEarlierUpdates is the minimal unit case
// of the drift bug the quality autopilot fixes: two sequential
// post-materialization updates touching disjoint groups, inferred
// variationally (the store-exhaustion regime). The second pass's
// inference graph must still encode the first update's groups — with
// per-update change sets the first update's variable has no factor in
// the approximate graph and its marginal collapses to ~0.5.
func TestCumulativeChangesetEncodesEarlierUpdates(t *testing.T) {
	base := chainGraph(6, 0.5)

	run := func(cumulative bool) (first, second float64, eng *Engine) {
		t.Helper()
		var err error
		eng, err = NewEngine(base, Options{
			MaterializationSamples: 400,
			KeepSamples:            400,
			Seed:                   11,
			DisableSampling:        true, // force the variational path (the post-exhaustion regime)
			CumulativeChanges:      cumulative,
		})
		if err != nil {
			t.Fatal(err)
		}
		g1, a, giA := addBiasedVar(t, base, 2.0)
		r1 := eng.AutoInferCtx(nil, g1, ChangeSet{ChangedNew: []int32{giA}}, nil)
		if r1.Strategy != StrategyVariational {
			t.Fatalf("first update strategy = %v, want variational", r1.Strategy)
		}
		g2, _, giB := addBiasedVar(t, g1, 2.0)
		r2 := eng.AutoInferCtx(nil, g2, ChangeSet{ChangedNew: []int32{giB}}, nil)
		if r2.Strategy != StrategyVariational {
			t.Fatalf("second update strategy = %v, want variational", r2.Strategy)
		}
		return r1.Marginals[a], r2.Marginals[a], eng
	}

	first, second, eng := run(true)
	if first < 0.7 {
		t.Fatalf("first update marginal = %v, want > 0.7 (bias weight 2)", first)
	}
	if second < 0.7 {
		t.Fatalf("cumulative mode: second update dropped the first update's group — marginal %v -> %v", first, second)
	}
	acc := eng.Accumulated()
	if len(acc.ChangedNew) != 2 {
		t.Fatalf("Accumulated().ChangedNew = %v, want both updates' groups", acc.ChangedNew)
	}

	// The lesion: per-update change sets reproduce the drift. This pins
	// that the fix above is load-bearing, not vacuous.
	first, second, eng = run(false)
	if first < 0.7 {
		t.Fatalf("lesion first update marginal = %v, want > 0.7", first)
	}
	if second > 0.6 {
		t.Fatalf("lesion second update marginal = %v — expected drift toward 0.5 without cumulative tracking", second)
	}
	if acc := eng.Accumulated(); len(acc.ChangedNew) != 0 {
		t.Fatalf("lesion engine accumulated %v with CumulativeChanges off", acc.ChangedNew)
	}
}

// TestChooseStrategyMeasured pins the §3.2 decision rule: high measured
// acceptance → sampling, low → variational, an empty change set skips the
// probe, and a store too drained to finish a sampling pass chooses
// variational upfront without burning a probe.
func TestChooseStrategyMeasured(t *testing.T) {
	g := chainGraph(6, 0.6)
	eng, err := NewEngine(g, Options{
		MaterializationSamples: 400,
		KeepSamples:            100,
		Seed:                   13,
		MeasuredOptimizer:      true,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Empty change set: sampling, unprobed (every proposal accepts).
	if s, p := eng.ChooseStrategyMeasured(g, ChangeSet{}); s != StrategySampling || p != -1 {
		t.Fatalf("empty cs: (%v, %v), want (sampling, -1)", s, p)
	}

	// Near-identical distribution: probe ≈ 1 → sampling.
	tweak := factor.NewBuilderFrom(g).MustBuild()
	tweak.SetWeight(tweak.Group(0).Weight, 0.6+1e-6)
	cs := ChangeSet{ChangedOld: []int32{0}, ChangedNew: []int32{0}}
	s, p := eng.ChooseStrategyMeasured(tweak, cs)
	if s != StrategySampling || p < eng.opts.AcceptHigh {
		t.Fatalf("tiny change: (%v, %v), want sampling with high probe", s, p)
	}

	// Heavy change: probe collapses → variational, even though the static
	// rules (structure change, no evidence change) would keep sampling.
	heavy := factor.NewBuilderFrom(g).MustBuild()
	for gi := 0; gi < heavy.NumGroups(); gi++ {
		heavy.SetWeight(heavy.Group(gi).Weight, -6)
	}
	all := make([]int32, heavy.NumGroups())
	for i := range all {
		all[i] = int32(i)
	}
	csAll := ChangeSet{ChangedOld: all, ChangedNew: all}
	if st := eng.ChooseStrategy(csAll); st != StrategySampling {
		t.Fatalf("static rules chose %v — the measured rule would not be load-bearing", st)
	}
	s, p = eng.ChooseStrategyMeasured(heavy, csAll)
	if s != StrategyVariational || p < 0 || p >= eng.opts.AcceptLow {
		t.Fatalf("heavy change: (%v, %v), want variational with probe < %v", s, p, eng.opts.AcceptLow)
	}

	// Drain the store below KeepSamples: variational upfront, unprobed.
	for eng.Store().Remaining() >= eng.opts.KeepSamples {
		eng.Store().Next(nil)
	}
	if s, p := eng.ChooseStrategyMeasured(tweak, cs); s != StrategyVariational || p != -1 {
		t.Fatalf("drained store: (%v, %v), want (variational, -1)", s, p)
	}
}

// TestAcceptancePriorSkipsProbe pins the acceptance-prior short-circuit:
// a sampling run's observed acceptance rate, when decisive by the 2x
// margin, decides the next strategy choice without measuring a probe —
// and the prior is one-shot, so the choice after a skip probes again
// unless another sampling run re-validated it.
func TestAcceptancePriorSkipsProbe(t *testing.T) {
	g := chainGraph(6, 0.6)
	eng, err := NewEngine(g, Options{
		MaterializationSamples: 600,
		KeepSamples:            100,
		Seed:                   13,
		MeasuredOptimizer:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	retune := func(gi int) (*factor.Graph, ChangeSet) {
		ng := factor.NewBuilderFrom(g).MustBuild()
		ng.SetWeight(ng.Group(gi).Weight, 0.6+1e-6)
		return ng, ChangeSet{ChangedOld: []int32{int32(gi)}, ChangedNew: []int32{int32(gi)}}
	}

	// Cold engine: the first update probes, runs sampling (near-identical
	// distribution), and its observed acceptance becomes a decisive prior.
	g1, cs1 := retune(0)
	r := eng.AutoInferCtx(nil, g1, cs1, nil)
	if r.Strategy != StrategySampling || r.Probed < 0 || r.ProbeSkipped {
		t.Fatalf("cold update: strategy=%v probed=%v skipped=%v, want probed sampling", r.Strategy, r.Probed, r.ProbeSkipped)
	}
	if !eng.priorValid || eng.priorAccept < 2*eng.opts.AcceptHigh {
		t.Fatalf("sampling run left prior (valid=%v, %v), want decisive >= %v", eng.priorValid, eng.priorAccept, 2*eng.opts.AcceptHigh)
	}

	// Next choice (new fingerprint, so the memo cannot answer): the prior
	// decides sampling without a probe.
	g2, cs2 := retune(1)
	if s, p := eng.ChooseStrategyMeasured(g2, cs2); s != StrategySampling || p != -1 || !eng.ProbeSkipped() {
		t.Fatalf("primed prior: (%v, %v, skipped=%v), want (sampling, -1, true)", s, p, eng.ProbeSkipped())
	}

	// The skip consumed the prior: the same question again must measure.
	if s, p := eng.ChooseStrategyMeasured(g2, cs2); s != StrategySampling || p < 0 || eng.ProbeSkipped() {
		t.Fatalf("consumed prior: (%v, %v, skipped=%v), want a fresh probe", s, p, eng.ProbeSkipped())
	}

	// A wholesale-rejection observation skips straight to variational.
	eng.notePrior(0, 200)
	g3, cs3 := retune(2)
	if s, p := eng.ChooseStrategyMeasured(g3, cs3); s != StrategyVariational || p != -1 || !eng.ProbeSkipped() {
		t.Fatalf("low prior: (%v, %v, skipped=%v), want (variational, -1, true)", s, p, eng.ProbeSkipped())
	}

	// ResetProbeCache (the checkpoint hook) drops the prior along with the
	// memo, so a recovered process starts from the same cold state.
	eng.notePrior(1, 200)
	eng.ResetProbeCache()
	g4, cs4 := retune(3)
	if s, p := eng.ChooseStrategyMeasured(g4, cs4); s != StrategySampling || p < 0 || eng.ProbeSkipped() {
		t.Fatalf("after reset: (%v, %v, skipped=%v), want a fresh probe", s, p, eng.ProbeSkipped())
	}
}

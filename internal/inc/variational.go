package inc

import (
	"context"
	"math"

	"deepdive/internal/factor"
	"deepdive/internal/gibbs"
	"deepdive/internal/linalg"
)

// PairFactor is one pairwise potential of the approximated graph: weight
// W couples variables I and J (energy +W when both true with I as head —
// an Ising-style coupling whose sign carries the learned correlation).
type PairFactor struct {
	I, J factor.VarID
	W    float64
}

// UnaryFactor is a per-variable bias potential matching the variable's
// first moment under Pr(0).
type UnaryFactor struct {
	V factor.VarID
	W float64
}

// Variational is the materialization of Section 3.2.3 / Algorithm 1: a
// sparser factor graph (only unary and pairwise potentials) approximating
// Pr(0). Edge weights come from the inverse-covariance estimate X̂ of the
// log-determinant relaxation; the ℓ1 box half-width λ controls sparsity.
//
// Deviation note (documented in DESIGN.md): Algorithm 1's line 5-7 emits a
// factor per non-zero X̂ij. We emit pairwise factors from the off-diagonal
// X̂ entries and unary factors matched to the sampled first moments, which
// keeps single-variable marginals calibrated while preserving the
// sparsity/λ tradeoff the paper studies.
type Variational struct {
	NumVars int
	Edges   []PairFactor
	Unaries []UnaryFactor
	Lambda  float64
}

// NumFactors returns the approximate graph's factor count (the quantity
// Figure 6 plots against λ).
func (vm *Variational) NumFactors() int { return len(vm.Edges) + len(vm.Unaries) }

// VariationalOptions tunes materialization.
type VariationalOptions struct {
	Lambda            float64 // ℓ1 box half-width (paper default search starts at 0.001)
	MaxDenseComponent int     // per-component cap for the dense log-det solve (default 300)
	Solver            linalg.LogDetOptions
}

func (o VariationalOptions) fill() VariationalOptions {
	if o.Lambda <= 0 {
		o.Lambda = 0.01
	}
	if o.MaxDenseComponent <= 0 {
		o.MaxDenseComponent = 300
	}
	return o
}

// MaterializeVariational runs Algorithm 1 using worlds already sampled
// from Pr(0) (the same tuple bundles the sampling approach stores — the
// paper's "both approaches need samples from the original factor graph").
// The NZ pattern comes from factor co-occurrence; the optimization runs
// per connected component so dense linear algebra stays small. Components
// larger than MaxDenseComponent use covariance thresholding directly (the
// scalable fallback documented in DESIGN.md).
func MaterializeVariational(g *factor.Graph, store *gibbs.Store, opts VariationalOptions) (*Variational, error) {
	return MaterializeVariationalCtx(nil, g, store, opts)
}

// MaterializeVariationalCtx is MaterializeVariational with a cooperative
// cancellation check between per-component solves, so a background
// materialization can be preempted without waiting out the remaining
// log-det optimizations. A cancelled run returns ctx's error and no
// materialization.
func MaterializeVariationalCtx(ctx context.Context, g *factor.Graph, store *gibbs.Store, opts VariationalOptions) (*Variational, error) {
	o := opts.fill()
	vm := &Variational{NumVars: g.NumVars(), Lambda: o.Lambda}

	means := store.Means()
	// Unary potentials: logit of the sampled marginal, clamped.
	for v := 0; v < g.NumVars(); v++ {
		if g.IsEvidence(factor.VarID(v)) {
			continue
		}
		m := clamp(means[v], 0.02, 0.98)
		w := 0.5 * math.Log(m/(1-m))
		if math.Abs(w) > 1e-6 {
			vm.Unaries = append(vm.Unaries, UnaryFactor{V: factor.VarID(v), W: w})
		}
	}

	comps := components(g)
	for _, comp := range comps {
		if canceled(ctx) {
			return nil, ctx.Err()
		}
		if len(comp) < 2 {
			continue
		}
		if len(comp) > o.MaxDenseComponent {
			vm.thresholdEdges(g, store, comp)
			continue
		}
		if err := vm.solveComponent(g, store, comp, o); err != nil {
			return nil, err
		}
	}
	return vm, nil
}

// solveComponent runs the dense log-det relaxation on one connected
// component and emits pairwise factors for non-zero off-diagonal entries.
func (vm *Variational) solveComponent(g *factor.Graph, store *gibbs.Store, comp []int, o VariationalOptions) error {
	n := len(comp)
	rows := store.FloatWorlds(comp)
	m, err := linalg.Covariance(rows)
	if err != nil {
		return err
	}
	// NZ pattern restricted to the component.
	local := make(map[int]int, n)
	for i, v := range comp {
		local[v] = i
	}
	pat := make([]bool, n*n)
	markAdjacent(g, comp, local, pat)
	// Zero covariance entries off the pattern (Algorithm 1 line 3).
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && !pat[i*n+j] {
				m.Set(i, j, 0)
			}
		}
	}
	prob := &linalg.LogDetProblem{M: m, Pattern: pat, Lambda: o.Lambda}
	res, err := prob.Solve(&o.Solver)
	if err != nil {
		return err
	}
	const eps = 1e-6
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			w := res.X.At(i, j)
			if math.Abs(w) > eps {
				vm.Edges = append(vm.Edges, PairFactor{
					I: factor.VarID(comp[i]), J: factor.VarID(comp[j]), W: edgeWeight(w),
				})
			}
		}
	}
	return nil
}

// thresholdEdges is the scalable fallback for oversized components:
// pairwise covariances on the adjacency pattern, soft-thresholded by λ.
func (vm *Variational) thresholdEdges(g *factor.Graph, store *gibbs.Store, comp []int) {
	local := make(map[int]int, len(comp))
	for i, v := range comp {
		local[v] = i
	}
	means := store.Means()
	n := store.Len()
	if n < 2 {
		return
	}
	seen := make(map[[2]int]bool)
	visitAdjacent(g, comp, local, func(a, b int) {
		if a > b {
			a, b = b, a
		}
		k := [2]int{a, b}
		if seen[k] {
			return
		}
		seen[k] = true
		var cov float64
		for s := 0; s < n; s++ {
			va, vb := 0.0, 0.0
			if store.Bit(s, a) {
				va = 1
			}
			if store.Bit(s, b) {
				vb = 1
			}
			cov += (va - means[a]) * (vb - means[b])
		}
		cov /= float64(n - 1)
		// Soft threshold by λ: |cov| ≤ λ is dropped, larger shrinks by λ.
		if math.Abs(cov) <= vm.Lambda {
			return
		}
		w := cov - math.Copysign(vm.Lambda, cov)
		vm.Edges = append(vm.Edges, PairFactor{I: factor.VarID(a), J: factor.VarID(b), W: edgeWeight(w)})
	})
}

// edgeWeight converts an inverse-covariance-scale entry into a pairwise
// potential weight. X̂ij > 0 for {0,1} variables indicates the pair
// co-occurs more than independence predicts; the factor weight scales it
// into the energy domain.
func edgeWeight(x float64) float64 { return 4 * x }

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// components returns the connected components of the graph's variable
// adjacency (variables sharing a group), each as a sorted var list.
// Evidence variables do not connect components (they are fixed).
// Groups are walked CSR-direct (factor.Graph.GroupVars reports the head
// first, then each live grounding's variables), so no nested view is
// synthesized per group.
func components(g *factor.Graph) [][]int {
	n := g.NumVars()
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for gi := 0; gi < g.NumGroups(); gi++ {
		anchorVar := -1
		g.GroupVars(int32(gi), func(v factor.VarID) {
			if g.IsEvidence(v) {
				return
			}
			if anchorVar == -1 {
				anchorVar = int(v)
			} else {
				union(anchorVar, int(v))
			}
		})
	}
	byRoot := make(map[int][]int)
	for v := 0; v < n; v++ {
		if g.IsEvidence(factor.VarID(v)) {
			continue
		}
		r := find(v)
		byRoot[r] = append(byRoot[r], v)
	}
	var out [][]int
	// Deterministic order: by smallest member.
	var roots []int
	for r := range byRoot {
		roots = append(roots, byRoot[r][0])
	}
	sortInts(roots)
	seen := make(map[int]bool)
	for _, first := range roots {
		r := find(first)
		if seen[r] {
			continue
		}
		seen[r] = true
		out = append(out, byRoot[r])
	}
	return out
}

// markAdjacent sets pat for pairs of component variables co-occurring in
// a group.
func markAdjacent(g *factor.Graph, comp []int, local map[int]int, pat []bool) {
	n := len(comp)
	visitAdjacent(g, comp, local, func(a, b int) {
		i, j := local[a], local[b]
		pat[i*n+j] = true
		pat[j*n+i] = true
	})
	for i := 0; i < n; i++ {
		pat[i*n+i] = true
	}
}

// visitAdjacent calls f(a, b) for every adjacent pair of free variables
// within the component (global var ids). Groups are walked CSR-direct
// with one reused buffer instead of synthesizing the nested view per
// group.
func visitAdjacent(g *factor.Graph, comp []int, local map[int]int, f func(a, b int)) {
	inComp := func(v factor.VarID) bool {
		_, ok := local[int(v)]
		return ok
	}
	var vars []factor.VarID
	for gi := 0; gi < g.NumGroups(); gi++ {
		vars = vars[:0]
		g.GroupVars(int32(gi), func(v factor.VarID) {
			if !g.IsEvidence(v) && inComp(v) {
				vars = append(vars, v)
			}
		})
		for ai := range vars {
			for bi := ai + 1; bi < len(vars); bi++ {
				if vars[ai] != vars[bi] {
					f(int(vars[ai]), int(vars[bi]))
				}
			}
		}
	}
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// BuildInferenceGraph applies an update to the approximated graph
// (Section 3.2.3's inference phase): the result contains the pairwise and
// unary approximation factors, evidence copied from the new graph, and
// the changed/new factor groups of the new graph. Because the
// approximation already encodes the *old* energy of groups that existed
// at materialization time, a group whose weight merely changed is
// appended with the weight difference (w_new − w_old) so the combined
// energy approximates E_old + ΔE = E_new instead of double counting.
// Structurally new groups carry their full weight. Pass oldG = nil to
// append everything at full weight. The final variable
// (id = newG.NumVars()) is an always-true anchor used by unary
// potentials.
func (vm *Variational) BuildInferenceGraph(oldG, newG *factor.Graph, changedNew []int32) *factor.Graph {
	b := factor.NewBuilder()
	for v := 0; v < newG.NumVars(); v++ {
		if newG.IsEvidence(factor.VarID(v)) {
			b.AddEvidenceVar(newG.EvidenceValue(factor.VarID(v)))
		} else {
			b.AddVar()
		}
	}
	anchor := b.AddEvidenceVar(true)
	for _, u := range vm.Unaries {
		if newG.IsEvidence(u.V) {
			continue
		}
		w := b.AddWeight(u.W)
		b.AddGroup(u.V, w, factor.Linear, []factor.Grounding{{Lits: []factor.Literal{{Var: anchor}}}})
	}
	for _, e := range vm.Edges {
		w := b.AddWeight(e.W)
		b.AddGroup(e.I, w, factor.Linear, []factor.Grounding{{Lits: []factor.Literal{{Var: e.J}}}})
	}
	for _, gi := range changedNew {
		gr := newG.Group(int(gi))
		wv := newG.Weight(gr.Weight)
		if oldG != nil && int(gi) < oldG.NumGroups() {
			old := oldG.Group(int(gi))
			if old.Weight == gr.Weight && int(old.Weight) < oldG.NumWeights() {
				wv -= oldG.Weight(old.Weight)
			}
		}
		if wv == 0 {
			continue
		}
		w := b.AddWeight(wv)
		gnds := make([]factor.Grounding, len(gr.Groundings))
		for i, gnd := range gr.Groundings {
			gnds[i] = factor.Grounding{Lits: append([]factor.Literal(nil), gnd.Lits...)}
		}
		b.AddGroup(gr.Head, w, gr.Sem, gnds)
	}
	return b.MustBuild()
}

// VariationalInfer runs Gibbs on the approximated (plus update) graph and
// returns marginals for the new graph's variables.
func VariationalInfer(vm *Variational, oldG, newG *factor.Graph, changedNew []int32, burnin, keep int, seed int64) []float64 {
	return VariationalInferCtx(nil, vm, oldG, newG, changedNew, burnin, keep, seed)
}

// VariationalInferCtx is VariationalInfer with a cooperative cancellation
// check between sweeps of the approximate-graph chain.
func VariationalInferCtx(ctx context.Context, vm *Variational, oldG, newG *factor.Graph, changedNew []int32, burnin, keep int, seed int64) []float64 {
	ig := vm.BuildInferenceGraph(oldG, newG, changedNew)
	s := gibbs.New(ig, seed)
	m := s.MarginalsCtx(ctx, burnin, keep)
	return m[:newG.NumVars()]
}

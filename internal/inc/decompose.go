package inc

import (
	"sort"

	"deepdive/internal/factor"
)

// DecompGroup is one output group of Algorithm 2 (Appendix B.1): a set of
// inactive variables that are conditionally independent of all other
// inactive variables given the group's active boundary.
type DecompGroup struct {
	Inactive []factor.VarID
	Active   []factor.VarID
}

// Decompose implements Algorithm 2: heuristic decomposition with inactive
// variables.
//
//  1. Remove the active variables; the connected components of the rest
//     are the initial inactive sets V(i)_j.
//  2. The minimal conditioning set V(a)_j of a component is its active
//     boundary — the active variables sharing a factor with it.
//  3. Greedily merge pairs of groups whose active sets satisfy
//     |A_j ∪ A_k| = max(|A_j|, |A_k|) (one contains the other), repeating
//     to a fixpoint, so no active variable is materialized twice without
//     need.
//
// Evidence variables are fixed and participate in neither side.
func Decompose(g *factor.Graph, active []factor.VarID) []DecompGroup {
	n := g.NumVars()
	isActive := make([]bool, n)
	for _, v := range active {
		isActive[v] = true
	}
	skip := func(v factor.VarID) bool {
		return g.IsEvidence(v) || isActive[v]
	}

	// Union-find over inactive free variables.
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}

	// Group cliques connect inactive vars; collect active boundaries.
	// Groups are walked CSR-direct (factor.Graph.GroupVars) with reused
	// buffers and a generation-stamped dedup array instead of synthesizing
	// the nested grounding view (and a fresh map) per group.
	type edge struct{ comp, act int }
	var boundaryEdges []edge
	var inactive, actives []factor.VarID
	seenAt := make([]int32, n)
	for i := range seenAt {
		seenAt[i] = -1
	}
	for gi := 0; gi < g.NumGroups(); gi++ {
		inactive = inactive[:0]
		actives = actives[:0]
		stamp := int32(gi)
		g.GroupVars(int32(gi), func(v factor.VarID) {
			if seenAt[v] == stamp {
				return
			}
			seenAt[v] = stamp
			if g.IsEvidence(v) {
				return
			}
			if isActive[v] {
				actives = append(actives, v)
			} else {
				inactive = append(inactive, v)
			}
		})
		for i := 1; i < len(inactive); i++ {
			union(int(inactive[0]), int(inactive[i]))
		}
		if len(inactive) > 0 {
			for _, a := range actives {
				boundaryEdges = append(boundaryEdges, edge{comp: int(inactive[0]), act: int(a)})
			}
		}
	}

	// Collect components.
	compOf := make(map[int][]factor.VarID)
	for v := 0; v < n; v++ {
		if skip(factor.VarID(v)) {
			continue
		}
		r := find(v)
		compOf[r] = append(compOf[r], factor.VarID(v))
	}
	boundary := make(map[int]map[factor.VarID]bool)
	for _, e := range boundaryEdges {
		r := find(e.comp)
		if boundary[r] == nil {
			boundary[r] = make(map[factor.VarID]bool)
		}
		boundary[r][factor.VarID(e.act)] = true
	}

	var groups []DecompGroup
	var roots []int
	for r := range compOf {
		roots = append(roots, int(compOf[r][0]))
	}
	sort.Ints(roots)
	done := map[int]bool{}
	for _, first := range roots {
		r := find(first)
		if done[r] {
			continue
		}
		done[r] = true
		grp := DecompGroup{Inactive: compOf[r]}
		for a := range boundary[r] {
			grp.Active = append(grp.Active, a)
		}
		sortVarIDs(grp.Inactive)
		sortVarIDs(grp.Active)
		groups = append(groups, grp)
	}

	// Greedy merge (Algorithm 2 lines 4-6): merge when one active set
	// contains the other.
	merged := true
	for merged {
		merged = false
	outer:
		for j := 0; j < len(groups); j++ {
			for k := j + 1; k < len(groups); k++ {
				u := unionSize(groups[j].Active, groups[k].Active)
				if u == max(len(groups[j].Active), len(groups[k].Active)) {
					groups[j] = mergeGroups(groups[j], groups[k])
					groups = append(groups[:k], groups[k+1:]...)
					merged = true
					break outer
				}
			}
		}
	}
	return groups
}

// ComponentGroups returns the connected components of g's free variables
// as decomposition groups with empty boundaries — the natural inference
// blocks when no interest area is declared (per-sentence clusters in KBC
// graphs). Unlike Decompose it performs no merging, so each component
// keeps its own acceptance test in InferDecomposed.
func ComponentGroups(g *factor.Graph) []DecompGroup {
	comps := components(g)
	out := make([]DecompGroup, 0, len(comps))
	for _, comp := range comps {
		grp := DecompGroup{Inactive: make([]factor.VarID, len(comp))}
		for i, v := range comp {
			grp.Inactive[i] = factor.VarID(v)
		}
		out = append(out, grp)
	}
	return out
}

func unionSize(a, b []factor.VarID) int {
	seen := make(map[factor.VarID]bool, len(a)+len(b))
	for _, v := range a {
		seen[v] = true
	}
	for _, v := range b {
		seen[v] = true
	}
	return len(seen)
}

func mergeGroups(a, b DecompGroup) DecompGroup {
	out := DecompGroup{}
	out.Inactive = append(append([]factor.VarID{}, a.Inactive...), b.Inactive...)
	seen := map[factor.VarID]bool{}
	for _, v := range append(append([]factor.VarID{}, a.Active...), b.Active...) {
		if !seen[v] {
			seen[v] = true
			out.Active = append(out.Active, v)
		}
	}
	sortVarIDs(out.Inactive)
	sortVarIDs(out.Active)
	return out
}

func sortVarIDs(xs []factor.VarID) {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
}

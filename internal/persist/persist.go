// Package persist implements the on-disk wire format shared by every
// layer that owns durable KB state. Three pieces:
//
//   - Buf/Rd: a little-endian buffer codec whose slice payloads are raw
//     pool dumps — on little-endian hosts an []int32/[]float64/[]uint64
//     pool is written and read back with a single memmove, no
//     per-element decode, so a cold start is bounded by I/O rather than
//     deserialization.
//   - Sectioned file container: magic + a sequence of (kind, length,
//     CRC-32C, payload) sections + an end marker. A file without a
//     valid end marker or with any checksum mismatch is rejected whole;
//     recovery then falls back to the previous snapshot generation.
//   - WAL segments: length-prefixed records (ticket + payload +
//     CRC-32C) with torn-tail truncation on read, so a crash mid-append
//     loses at most the record being written.
//
// The package is pure wire format: it imports nothing from the rest of
// the module, so every layer (factor, gibbs, ground, db, inc, the KB)
// can depend on it without cycles.
package persist

import (
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"unsafe"
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// hostLE reports whether the host is little-endian; on such hosts the
// slice codecs below degenerate to single memmoves.
var hostLE = func() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// ---------------------------------------------------------------------
// Buf: append-only encoder.

// Buf is the append-only encoder for snapshot payloads. All integers
// are fixed-width little-endian; slices are a u64 element count
// followed by the raw little-endian element data.
type Buf struct {
	b []byte
}

// Bytes returns the encoded payload.
func (b *Buf) Bytes() []byte { return b.b }

// Len returns the current encoded length.
func (b *Buf) Len() int { return len(b.b) }

func (b *Buf) U8(v uint8) { b.b = append(b.b, v) }

func (b *Buf) Bool(v bool) {
	if v {
		b.U8(1)
	} else {
		b.U8(0)
	}
}

func (b *Buf) U32(v uint32) {
	b.b = append(b.b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func (b *Buf) U64(v uint64) {
	b.b = append(b.b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

func (b *Buf) I64(v int64) { b.U64(uint64(v)) }

func (b *Buf) F64(v float64) { b.U64(math.Float64bits(v)) }

// rawAppend appends the raw bytes of a slice whose element type is
// size bytes wide. Little-endian hosts take the memmove path.
func rawAppend[T any](b *Buf, s []T, size int) {
	b.U64(uint64(len(s)))
	if len(s) == 0 {
		return
	}
	if hostLE {
		p := unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*size)
		b.b = append(b.b, p...)
		return
	}
	// Portable fallback for big-endian hosts (practically unreachable).
	for i := range s {
		switch v := any(s[i]).(type) {
		case int32:
			b.U32(uint32(v))
		case uint64:
			b.U64(v)
		case float64:
			b.F64(v)
		case bool:
			b.Bool(v)
		default:
			panic("persist: unsupported raw element type")
		}
	}
}

func (b *Buf) I32s(s []int32)   { rawAppend(b, s, 4) }
func (b *Buf) U64s(s []uint64)  { rawAppend(b, s, 8) }
func (b *Buf) F64s(s []float64) { rawAppend(b, s, 8) }

// Bools writes a []bool as one byte per element (matching Go's in-memory
// layout, so the little-endian path is a memmove too).
func (b *Buf) Bools(s []bool) { rawAppend(b, s, 1) }

// Ints writes a []int as 64-bit values (no memmove: int width is
// platform-dependent, and these tables are small).
func (b *Buf) Ints(s []int) {
	b.U64(uint64(len(s)))
	for _, v := range s {
		b.I64(int64(v))
	}
}

// Str writes a length-prefixed string.
func (b *Buf) Str(s string) {
	b.U64(uint64(len(s)))
	b.b = append(b.b, s...)
}

// Strs writes a string table in CSR form: count, a u32 length table,
// then the concatenated bytes — two contiguous reads on decode.
func (b *Buf) Strs(s []string) {
	b.U64(uint64(len(s)))
	for _, v := range s {
		b.U32(uint32(len(v)))
	}
	for _, v := range s {
		b.b = append(b.b, v...)
	}
}

// ---------------------------------------------------------------------
// Rd: sticky-error decoder.

// Rd decodes a payload written by Buf. Errors are sticky: after the
// first failure every method returns a zero value and Err() reports
// the original problem, so decode call sites stay linear.
type Rd struct {
	b   []byte
	off int
	err error
}

func NewRd(b []byte) *Rd { return &Rd{b: b} }

// Err returns the first decode error, if any.
func (r *Rd) Err() error { return r.err }

// Done reports whether the payload was fully consumed without error.
func (r *Rd) Done() bool { return r.err == nil && r.off == len(r.b) }

// Fail records a structural validation error discovered by a caller
// (e.g. CSR row bounds that do not add up); like internal decode
// errors it is sticky.
func (r *Rd) Fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("persist: invalid payload: %s at offset %d", what, r.off)
	}
}

func (r *Rd) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("persist: truncated payload reading %s at offset %d", what, r.off)
	}
}

func (r *Rd) take(n int, what string) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || len(r.b)-r.off < n {
		r.fail(what)
		return nil
	}
	p := r.b[r.off : r.off+n]
	r.off += n
	return p
}

func (r *Rd) U8(what string) uint8 {
	p := r.take(1, what)
	if p == nil {
		return 0
	}
	return p[0]
}

func (r *Rd) Bool(what string) bool { return r.U8(what) != 0 }

func (r *Rd) U32(what string) uint32 {
	p := r.take(4, what)
	if p == nil {
		return 0
	}
	return uint32(p[0]) | uint32(p[1])<<8 | uint32(p[2])<<16 | uint32(p[3])<<24
}

func (r *Rd) U64(what string) uint64 {
	p := r.take(8, what)
	if p == nil {
		return 0
	}
	return uint64(p[0]) | uint64(p[1])<<8 | uint64(p[2])<<16 | uint64(p[3])<<24 |
		uint64(p[4])<<32 | uint64(p[5])<<40 | uint64(p[6])<<48 | uint64(p[7])<<56
}

func (r *Rd) I64(what string) int64 { return int64(r.U64(what)) }

func (r *Rd) F64(what string) float64 { return math.Float64frombits(r.U64(what)) }

// count reads a u64 element count and bounds-checks it against the
// remaining payload so a corrupt length cannot drive a huge allocation.
func (r *Rd) count(size int, what string) int {
	n := r.U64(what)
	if r.err != nil {
		return 0
	}
	if n > uint64(len(r.b)-r.off)/uint64(size) {
		r.fail(what)
		return 0
	}
	return int(n)
}

// rawRead reads n elements of width size into a freshly allocated
// slice; one memmove on little-endian hosts.
func rawRead[T any](r *Rd, size int, what string) []T {
	n := r.count(size, what)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]T, n)
	p := r.take(n*size, what)
	if p == nil {
		return nil
	}
	if hostLE {
		dst := unsafe.Slice((*byte)(unsafe.Pointer(&out[0])), n*size)
		copy(dst, p)
		return out
	}
	sub := Rd{b: p}
	for i := range out {
		switch any(out[i]).(type) {
		case int32:
			out[i] = any(int32(sub.U32(what))).(T)
		case uint64:
			out[i] = any(sub.U64(what)).(T)
		case float64:
			out[i] = any(sub.F64(what)).(T)
		case bool:
			out[i] = any(sub.Bool(what)).(T)
		default:
			panic("persist: unsupported raw element type")
		}
	}
	return out
}

func (r *Rd) I32s(what string) []int32   { return rawRead[int32](r, 4, what) }
func (r *Rd) U64s(what string) []uint64  { return rawRead[uint64](r, 8, what) }
func (r *Rd) F64s(what string) []float64 { return rawRead[float64](r, 8, what) }
func (r *Rd) Bools(what string) []bool   { return rawRead[bool](r, 1, what) }

func (r *Rd) Ints(what string) []int {
	n := r.count(8, what)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = int(r.I64(what))
	}
	return out
}

func (r *Rd) Str(what string) string {
	n := r.count(1, what)
	p := r.take(n, what)
	if p == nil {
		return ""
	}
	return string(p)
}

func (r *Rd) Strs(what string) []string {
	n := r.count(4, what)
	if r.err != nil || n == 0 {
		return nil
	}
	lens := r.take(4*n, what)
	if lens == nil {
		return nil
	}
	total := 0
	for i := 0; i < n; i++ {
		total += int(uint32(lens[4*i]) | uint32(lens[4*i+1])<<8 |
			uint32(lens[4*i+2])<<16 | uint32(lens[4*i+3])<<24)
		if total > len(r.b)-r.off {
			r.fail(what)
			return nil
		}
	}
	blob := r.take(total, what)
	if blob == nil {
		return nil
	}
	out := make([]string, n)
	off := 0
	for i := 0; i < n; i++ {
		l := int(uint32(lens[4*i]) | uint32(lens[4*i+1])<<8 |
			uint32(lens[4*i+2])<<16 | uint32(lens[4*i+3])<<24)
		out[i] = string(blob[off : off+l])
		off += l
	}
	return out
}

// ---------------------------------------------------------------------
// Sectioned file container.

// Section is one typed, independently checksummed region of a snapshot
// file. Payloads are 8-byte aligned in the file so pool dumps land on
// natural boundaries for mmap-style access.
type Section struct {
	Kind    uint32
	Payload []byte
}

const endKind = 0xFFFFFFFF

// EncodeFile assembles a snapshot file image: magic, each section with
// its CRC-32C, and the end marker that proves the file was written out
// completely.
func EncodeFile(magic uint64, secs []Section) []byte {
	var b Buf
	b.U64(magic)
	for _, s := range secs {
		b.U32(s.Kind)
		b.U32(0) // reserved / pad to 8
		b.U64(uint64(len(s.Payload)))
		b.U32(crc32.Checksum(s.Payload, castagnoli))
		b.U32(0) // pad: payload starts 8-byte aligned
		b.b = append(b.b, s.Payload...)
		for len(b.b)%8 != 0 {
			b.U8(0)
		}
	}
	b.U32(endKind)
	b.U32(0)
	b.U64(0)
	b.U32(0)
	b.U32(0)
	return b.Bytes()
}

// ErrBadFile marks a snapshot file that fails structural validation
// (wrong magic, checksum mismatch, or missing end marker).
var ErrBadFile = errors.New("persist: invalid or incomplete snapshot file")

// DecodeFile validates a snapshot image and returns its sections.
func DecodeFile(magic uint64, data []byte) ([]Section, error) {
	r := NewRd(data)
	if got := r.U64("magic"); r.Err() != nil || got != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadFile)
	}
	var secs []Section
	for {
		kind := r.U32("section kind")
		r.U32("section pad")
		n := r.U64("section length")
		crc := r.U32("section crc")
		r.U32("section pad")
		if r.Err() != nil {
			return nil, fmt.Errorf("%w: truncated section header", ErrBadFile)
		}
		if kind == endKind {
			return secs, nil
		}
		if n > uint64(len(data)) {
			return nil, fmt.Errorf("%w: section length overflows file", ErrBadFile)
		}
		payload := r.take(int(n), "section payload")
		for r.off%8 != 0 && r.err == nil {
			r.U8("section padding")
		}
		if r.Err() != nil {
			return nil, fmt.Errorf("%w: truncated section payload", ErrBadFile)
		}
		if crc32.Checksum(payload, castagnoli) != crc {
			return nil, fmt.Errorf("%w: section %d checksum mismatch", ErrBadFile, kind)
		}
		secs = append(secs, Section{Kind: kind, Payload: payload})
	}
}

// FindSection returns the first section of the given kind, or nil.
func FindSection(secs []Section, kind uint32) []byte {
	for _, s := range secs {
		if s.Kind == kind {
			return s.Payload
		}
	}
	return nil
}

// WriteFileAtomic writes data to path crash-consistently: a temp file
// in the same directory, fsync, rename into place, fsync the directory.
// Readers therefore see either the old file or the complete new one.
// An optional Injector (at most one) is consulted at OpSnapWrite before
// the data write and OpSnapSync before the fsync; an injected error
// aborts the write with the temp file removed, leaving the old file
// untouched.
func WriteFileAtomic(path string, data []byte, injs ...Injector) error {
	var inj Injector
	if len(injs) > 0 {
		inj = injs[0]
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if err := inject(inj, OpSnapWrite); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	_, err = tmp.Write(data)
	if err == nil {
		err = inject(inj, OpSnapSync)
	}
	if err == nil {
		err = tmp.Sync()
	}
	if err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return SyncDir(dir)
}

// SyncDir fsyncs a directory so renames and unlinks within it are
// durable.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

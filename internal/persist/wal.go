package persist

import (
	"hash/crc32"
	"os"
)

// WAL record framing: magic u32, payload length u32, ticket u64,
// payload bytes, CRC-32C u32 over (ticket || payload). Records are
// appended and fsync'd one at a time; a crash mid-append leaves a torn
// tail that ReadWAL truncates away, so the prefix of fully-fsync'd
// records is exactly what recovery replays.
const walRecMagic = 0x31524457 // "WDR1" little-endian

// WAL is an append-only write-ahead-log segment. Append durability is
// per-record: the record is fully written and fsync'd before Append
// returns, which callers rely on to order "logged" before "published".
type WAL struct {
	f    *os.File
	path string
	inj  Injector
}

// SetInjector installs an I/O fault injector consulted at OpWALAppend
// (before the record write) and OpWALSync (before the fsync). Nil
// disables injection. Not safe to call concurrently with Append.
func (w *WAL) SetInjector(inj Injector) { w.inj = inj }

// CreateWAL creates (or truncates) a WAL segment. The caller should
// SyncDir the parent directory if the segment's existence must be
// durable immediately.
func CreateWAL(path string) (*WAL, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	return &WAL{f: f, path: path}, nil
}

// OpenWALAppend opens an existing segment (creating it if absent) for
// further appends after recovery. Any torn tail left by a crash is
// trimmed first so new records start on a clean record boundary.
func OpenWALAppend(path string) (*WAL, error) {
	valid, err := validWALPrefix(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(valid); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(valid, 0); err != nil {
		f.Close()
		return nil, err
	}
	return &WAL{f: f, path: path}, nil
}

// Path returns the segment's file path.
func (w *WAL) Path() string { return w.path }

// Append writes one record and fsyncs the segment. On return the
// record is durable; on error the segment may hold a torn tail, which
// the next recovery truncates.
func (w *WAL) Append(ticket uint64, payload []byte) error {
	if err := inject(w.inj, OpWALAppend); err != nil {
		return err
	}
	var b Buf
	b.U32(walRecMagic)
	b.U32(uint32(len(payload)))
	b.U64(ticket)
	b.b = append(b.b, payload...)
	var crcBuf Buf
	crcBuf.U64(ticket)
	crc := crc32.Update(crc32.Checksum(crcBuf.Bytes(), castagnoli), castagnoli, payload)
	b.U32(crc)
	if _, err := w.f.Write(b.Bytes()); err != nil {
		return err
	}
	return w.Sync()
}

// Sync fsyncs the segment.
func (w *WAL) Sync() error {
	if err := inject(w.inj, OpWALSync); err != nil {
		return err
	}
	return w.f.Sync()
}

// Close closes the segment file.
func (w *WAL) Close() error { return w.f.Close() }

// WALRecord is one recovered log record.
type WALRecord struct {
	Ticket  uint64
	Payload []byte
}

// ReadWAL returns the valid record prefix of a segment. A torn or
// corrupt tail ends the scan without error — those bytes were never
// acknowledged as durable. A missing file reads as an empty segment.
func ReadWAL(path string) ([]WALRecord, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	recs, _ := scanWAL(data)
	return recs, nil
}

// validWALPrefix returns the byte length of the valid record prefix.
func validWALPrefix(path string) (int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	_, n := scanWAL(data)
	return int64(n), nil
}

// scanWAL walks records until the first torn or corrupt one, returning
// the valid records and the byte length of the valid prefix.
func scanWAL(data []byte) ([]WALRecord, int) {
	var recs []WALRecord
	off := 0
	for {
		r := NewRd(data[off:])
		magic := r.U32("wal magic")
		n := r.U32("wal length")
		ticket := r.U64("wal ticket")
		if r.Err() != nil || magic != walRecMagic {
			return recs, off
		}
		payload := r.take(int(n), "wal payload")
		crc := r.U32("wal crc")
		if r.Err() != nil {
			return recs, off
		}
		var crcBuf Buf
		crcBuf.U64(ticket)
		want := crc32.Update(crc32.Checksum(crcBuf.Bytes(), castagnoli), castagnoli, payload)
		if crc != want {
			return recs, off
		}
		recs = append(recs, WALRecord{Ticket: ticket, Payload: payload})
		off += r.off
	}
}

package persist

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestBufRdRoundTrip(t *testing.T) {
	var b Buf
	b.U8(7)
	b.Bool(true)
	b.Bool(false)
	b.U32(0xDEADBEEF)
	b.U64(1 << 50)
	b.I64(-42)
	b.F64(3.25)
	b.I32s([]int32{-1, 0, 1, 1 << 30})
	b.I32s(nil)
	b.U64s([]uint64{0, ^uint64(0)})
	b.F64s([]float64{0.5, -2.75})
	b.Bools([]bool{true, false, true})
	b.Ints([]int{-3, 9})
	b.Str("hello")
	b.Str("")
	b.Strs([]string{"a", "", "longer string"})
	b.Strs(nil)

	r := NewRd(b.Bytes())
	if v := r.U8("u8"); v != 7 {
		t.Fatalf("u8 = %d", v)
	}
	if !r.Bool("b1") || r.Bool("b2") {
		t.Fatal("bools")
	}
	if v := r.U32("u32"); v != 0xDEADBEEF {
		t.Fatalf("u32 = %x", v)
	}
	if v := r.U64("u64"); v != 1<<50 {
		t.Fatalf("u64 = %d", v)
	}
	if v := r.I64("i64"); v != -42 {
		t.Fatalf("i64 = %d", v)
	}
	if v := r.F64("f64"); v != 3.25 {
		t.Fatalf("f64 = %v", v)
	}
	i32s := r.I32s("i32s")
	if len(i32s) != 4 || i32s[0] != -1 || i32s[3] != 1<<30 {
		t.Fatalf("i32s = %v", i32s)
	}
	if v := r.I32s("empty i32s"); v != nil {
		t.Fatalf("empty i32s = %v", v)
	}
	u64s := r.U64s("u64s")
	if len(u64s) != 2 || u64s[1] != ^uint64(0) {
		t.Fatalf("u64s = %v", u64s)
	}
	f64s := r.F64s("f64s")
	if len(f64s) != 2 || f64s[1] != -2.75 {
		t.Fatalf("f64s = %v", f64s)
	}
	bools := r.Bools("bools")
	if len(bools) != 3 || !bools[0] || bools[1] || !bools[2] {
		t.Fatalf("bools = %v", bools)
	}
	ints := r.Ints("ints")
	if len(ints) != 2 || ints[0] != -3 || ints[1] != 9 {
		t.Fatalf("ints = %v", ints)
	}
	if s := r.Str("str"); s != "hello" {
		t.Fatalf("str = %q", s)
	}
	if s := r.Str("empty str"); s != "" {
		t.Fatalf("empty str = %q", s)
	}
	strs := r.Strs("strs")
	if len(strs) != 3 || strs[0] != "a" || strs[1] != "" || strs[2] != "longer string" {
		t.Fatalf("strs = %v", strs)
	}
	if v := r.Strs("empty strs"); v != nil {
		t.Fatalf("empty strs = %v", v)
	}
	if !r.Done() {
		t.Fatalf("not done: err=%v", r.Err())
	}
}

func TestRdStickyErrors(t *testing.T) {
	r := NewRd([]byte{1, 2})
	r.U64("truncated")
	if r.Err() == nil {
		t.Fatal("expected truncation error")
	}
	// Every further read is a zero value, same error.
	if v := r.U32("after"); v != 0 {
		t.Fatalf("post-error read = %d", v)
	}
	if s := r.Strs("after"); s != nil {
		t.Fatalf("post-error strs = %v", s)
	}
	r2 := NewRd(nil)
	r2.Fail("structural check")
	if r2.Err() == nil {
		t.Fatal("Fail did not stick")
	}
}

func TestRdCorruptCountBounded(t *testing.T) {
	var b Buf
	b.U64(1 << 60) // absurd element count
	r := NewRd(b.Bytes())
	if v := r.I32s("huge"); v != nil || r.Err() == nil {
		t.Fatalf("corrupt count not rejected: %v, err=%v", v, r.Err())
	}
}

func TestFileContainerRoundTrip(t *testing.T) {
	secs := []Section{
		{Kind: 1, Payload: []byte("alpha")},
		{Kind: 2, Payload: nil},
		{Kind: 9, Payload: bytes.Repeat([]byte{0xAB}, 37)},
	}
	const magic = 0x1122334455667788
	img := EncodeFile(magic, secs)
	got, err := DecodeFile(magic, img)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("%d sections", len(got))
	}
	for i := range secs {
		if got[i].Kind != secs[i].Kind || !bytes.Equal(got[i].Payload, secs[i].Payload) {
			t.Fatalf("section %d mismatch", i)
		}
	}
	if FindSection(got, 9) == nil || FindSection(got, 3) != nil {
		t.Fatal("FindSection")
	}

	if _, err := DecodeFile(magic+1, img); err == nil {
		t.Fatal("wrong magic accepted")
	}
	// Flip a payload byte: checksum must catch it.
	bad := append([]byte(nil), img...)
	bad[len(bad)-30] ^= 0x01
	if _, err := DecodeFile(magic, bad); err == nil {
		t.Fatal("corrupt payload accepted")
	}
	// Truncate before the end marker: incomplete file rejected.
	if _, err := DecodeFile(magic, img[:len(img)-10]); err == nil {
		t.Fatal("truncated file accepted")
	}
}

func TestWALAppendReadTornTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	w, err := CreateWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	payloads := [][]byte{[]byte("one"), []byte("two"), {}, []byte("four")}
	for i, p := range payloads {
		if err := w.Append(uint64(i+1), p); err != nil {
			t.Fatal(err)
		}
	}
	must := func(recs []WALRecord, want int) {
		t.Helper()
		if len(recs) != want {
			t.Fatalf("%d records, want %d", len(recs), want)
		}
		for i, r := range recs[:want] {
			if r.Ticket != uint64(i+1) || !bytes.Equal(r.Payload, payloads[i]) {
				t.Fatalf("record %d = %d %q", i, r.Ticket, r.Payload)
			}
		}
	}
	recs, err := ReadWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	must(recs, 4)
	w.Close()

	// Torn tail: garbage after the valid records is ignored...
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0x57, 0x44, 0x52, 0x31, 0xFF}) // magic prefix then junk
	f.Close()
	recs, err = ReadWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	must(recs, 4)

	// ...and OpenWALAppend trims it so new appends extend cleanly.
	w, err = OpenWALAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(5, []byte("five")); err != nil {
		t.Fatal(err)
	}
	w.Close()
	recs, err = ReadWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 || recs[4].Ticket != 5 || string(recs[4].Payload) != "five" {
		t.Fatalf("after trim+append: %d records", len(recs))
	}

	// Corrupt a middle record: the scan stops there (prefix semantics).
	data, _ := os.ReadFile(path)
	data[20] ^= 0xFF
	os.WriteFile(path, data, 0o644)
	recs, _ = ReadWAL(path)
	if len(recs) >= 5 {
		t.Fatalf("corrupt record did not end scan: %d records", len(recs))
	}

	// Missing file reads as empty.
	recs, err = ReadWAL(filepath.Join(dir, "nope.log"))
	if err != nil || recs != nil {
		t.Fatalf("missing file: %v %v", recs, err)
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f.bin")
	if err := WriteFileAtomic(path, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, []byte("v2 longer")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "v2 longer" {
		t.Fatalf("%q %v", got, err)
	}
	// No tmp litter left behind.
	ents, _ := os.ReadDir(dir)
	if len(ents) != 1 {
		t.Fatalf("%d entries in dir", len(ents))
	}
}

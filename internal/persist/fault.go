package persist

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// I/O fault injection. The durability layer's failure modes are not
// only crashes: a disk can return ENOSPC or EIO from a write, an fsync
// can stall for seconds on a saturated device, and both must leave the
// KB in a recoverable, still-serving state. The Injector interface lets
// tests (and the chaos harness) place such faults at exact operations —
// the fault *returns* as an error or delay instead of killing the
// process, which is what distinguishes it from the crash-point FaultHook
// in the root package.

// Op identifies one injectable I/O operation of the durability layer.
type Op string

const (
	// OpWALAppend is the record write of WAL.Append (before the data
	// reaches the file).
	OpWALAppend Op = "wal-append"
	// OpWALSync is the fsync of WAL.Append (and WAL.Sync): the point a
	// record becomes durable. A latency injection here models a slow
	// fsync on a saturated device.
	OpWALSync Op = "wal-sync"
	// OpWALCreate is the creation of a fresh WAL segment (checkpoint
	// rotation).
	OpWALCreate Op = "wal-create"
	// OpSnapWrite is the data write of a snapshot file (WriteFileAtomic's
	// temp-file write).
	OpSnapWrite Op = "snap-write"
	// OpSnapSync is the snapshot file's fsync before rename.
	OpSnapSync Op = "snap-sync"
)

// Injector decides the fate of one I/O operation: return nil to let it
// proceed (after any injected latency), or an error to fail it at that
// point. Implementations must be safe for concurrent use — the WAL
// append path and the off-lock snapshot writer run on different
// goroutines.
type Injector interface {
	Fault(op Op) error
}

// Canonical injected-error classes. They are distinct sentinel values
// (not syscall errnos, for portability) so tests can assert the exact
// class that propagated: errors.Is(err, persist.ErrInjectedNoSpace).
var (
	ErrInjectedNoSpace = errors.New("persist: injected ENOSPC (no space left on device)")
	ErrInjectedIO      = errors.New("persist: injected EIO (input/output error)")
)

// faultState is one op's armed behavior inside a FaultPlan.
type faultState struct {
	oneShot []error       // queue of one-shot errors, consumed in order
	sticky  error         // returned on every call until cleared
	latency time.Duration // injected delay per call
	prob    float64       // probability of failing with probErr
	probErr error
}

// FaultPlan is a concrete, concurrency-safe Injector with three arming
// modes per operation — a one-shot error queue (consumed in order), a
// sticky error (every call fails until cleared), and a probabilistic
// error — plus per-op latency injection that composes with all of them.
// The zero value injects nothing.
type FaultPlan struct {
	mu    sync.Mutex
	ops   map[Op]*faultState
	rng   *rand.Rand
	count map[Op]uint64 // faults actually injected (errors returned)
	calls map[Op]uint64 // operations consulted
}

// NewFaultPlan returns an empty plan; seed fixes the probabilistic
// arm's RNG so chaos schedules are reproducible.
func NewFaultPlan(seed int64) *FaultPlan {
	return &FaultPlan{
		ops:   map[Op]*faultState{},
		rng:   rand.New(rand.NewSource(seed)),
		count: map[Op]uint64{},
		calls: map[Op]uint64{},
	}
}

func (p *FaultPlan) state(op Op) *faultState {
	st := p.ops[op]
	if st == nil {
		st = &faultState{}
		p.ops[op] = st
	}
	return st
}

// Arm queues one error to be returned by the next call to op (FIFO when
// armed repeatedly).
func (p *FaultPlan) Arm(op Op, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.state(op).oneShot = append(p.state(op).oneShot, err)
}

// SetSticky makes every call to op fail with err until cleared with a
// nil err. One-shot arms take precedence while queued.
func (p *FaultPlan) SetSticky(op Op, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.state(op).sticky = err
}

// SetLatency injects a delay into every call to op (0 clears). The
// delay applies whether or not the call also fails.
func (p *FaultPlan) SetLatency(op Op, d time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.state(op).latency = d
}

// SetProbabilistic fails each call to op with probability prob (using
// the plan's seeded RNG). prob <= 0 clears.
func (p *FaultPlan) SetProbabilistic(op Op, prob float64, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := p.state(op)
	st.prob, st.probErr = prob, err
}

// Injected reports how many calls to op returned an injected error.
func (p *FaultPlan) Injected(op Op) uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.count[op]
}

// Calls reports how many times op was consulted.
func (p *FaultPlan) Calls(op Op) uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.calls[op]
}

// Fault implements Injector.
func (p *FaultPlan) Fault(op Op) error {
	p.mu.Lock()
	st := p.ops[op]
	p.calls[op]++
	if st == nil {
		p.mu.Unlock()
		return nil
	}
	latency := st.latency
	var err error
	switch {
	case len(st.oneShot) > 0:
		err = st.oneShot[0]
		st.oneShot = st.oneShot[1:]
	case st.sticky != nil:
		err = st.sticky
	case st.prob > 0 && p.rng.Float64() < st.prob:
		err = st.probErr
	}
	if err != nil {
		p.count[op]++
	}
	p.mu.Unlock()
	if latency > 0 {
		time.Sleep(latency)
	}
	if err != nil {
		return fmt.Errorf("injected fault at %s: %w", op, err)
	}
	return nil
}

// inject consults an optional injector (nil-safe helper for the write
// paths below).
func inject(inj Injector, op Op) error {
	if inj == nil {
		return nil
	}
	return inj.Fault(op)
}

package deepdive_test

// BenchmarkServingThroughput measures snapshot-read throughput — one
// "read" is a Snapshot load plus a point Marginal query — at 1/4/8
// reader goroutines, with and without a concurrent writer streaming
// document updates through Apply. The reads/sec metric (and its
// stability when the writer column turns on) is the serving claim:
// readers never block on inference. Results are recorded in
// BENCH_serving.json; run with `make bench-serving` for the smoke
// variant.

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"deepdive"
)

func benchServingKB(b testing.TB, opts ...deepdive.Option) *deepdive.KB {
	b.Helper()
	kb, err := deepdive.OpenKB(spouseSource, append([]deepdive.Option{
		deepdive.WithUDF("phrase", phraseUDF),
		deepdive.WithSeed(7),
		deepdive.WithLearning(8, 0.3),
		deepdive.WithInference(20, 150),
		deepdive.WithMaterialization(100000, 0.01),
	}, opts...)...)
	if err != nil {
		b.Fatal(err)
	}
	check := func(e error) {
		if e != nil {
			b.Fatal(e)
		}
	}
	check(kb.Load("Sentence", []deepdive.Tuple{
		{"s1", "Alan and his wife Beth"},
		{"s2", "Carl and his wife Dana"},
		{"s3", "Eve met Frank"},
	}))
	check(kb.Load("PersonMention", []deepdive.Tuple{
		{"a", "s1", "Alan"}, {"b", "s1", "Beth"},
		{"c", "s2", "Carl"}, {"d", "s2", "Dana"},
		{"e", "s3", "Eve"}, {"f", "s3", "Frank"},
	}))
	check(kb.Load("Married", []deepdive.Tuple{{"Alan", "Beth"}}))
	ctx := context.Background()
	check(kb.Init(ctx))
	if _, err := kb.Learn(ctx); err != nil {
		b.Fatal(err)
	}
	if _, err := kb.Infer(ctx); err != nil {
		b.Fatal(err)
	}
	if _, err := kb.Materialize(ctx); err != nil {
		b.Fatal(err)
	}
	return kb
}

func BenchmarkServingThroughput(b *testing.B) {
	for _, readers := range []int{1, 4, 8} {
		for _, writer := range []bool{false, true} {
			b.Run(fmt.Sprintf("readers=%d/writer=%v", readers, writer), func(b *testing.B) {
				kb := benchServingKB(b)
				cands := kb.Snapshot().Candidates("HasSpouse")
				if len(cands) == 0 {
					b.Fatal("no candidates to query")
				}

				stopW := make(chan struct{})
				var writerWG sync.WaitGroup
				if writer {
					writerWG.Add(1)
					go func() {
						defer writerWG.Done()
						ctx := context.Background()
						for i := 0; ; i++ {
							select {
							case <-stopW:
								return
							default:
							}
							// Cycle insert/delete over a small doc set so the
							// graph stays bounded while updates keep flowing.
							u := docUpdate(i % 3)
							if i%6 >= 3 {
								u = deepdive.Update{Deletes: u.Inserts}
							}
							if _, err := kb.Apply(ctx, u); err != nil {
								b.Errorf("writer: %v", err)
								return
							}
						}
					}()
				}

				per := b.N/readers + 1
				b.ResetTimer()
				var wg sync.WaitGroup
				for r := 0; r < readers; r++ {
					wg.Add(1)
					go func(r int) {
						defer wg.Done()
						for i := 0; i < per; i++ {
							snap := kb.Snapshot()
							c := cands[(r+i)%len(cands)]
							snap.Marginal("HasSpouse", c)
						}
					}(r)
				}
				wg.Wait()
				b.StopTimer()
				b.ReportMetric(float64(per*readers)/b.Elapsed().Seconds(), "reads/sec")
				close(stopW)
				writerWG.Wait()
				kb.Close()
			})
		}
	}
}

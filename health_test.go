package deepdive_test

// Health state machine + self-healing WAL repair tests: a broken
// durable chain heals itself without a manual Checkpoint, escalates to
// ReadOnly when repair keeps failing, serves reads through every state,
// and — with auto-repair disabled (the lesion) — stays wedged exactly
// like the pre-self-healing KB.

import (
	"context"
	"errors"
	"testing"
	"time"

	"deepdive"
)

// waitHealth polls until the KB reaches the wanted state or the timeout
// elapses.
func waitHealth(t *testing.T, kb *deepdive.KB, want deepdive.HealthState, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if kb.Health().State == want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("health never reached %v (now %v)", want, kb.Health().State)
}

// TestAutoRepairHealsBrokenChain: an injected EIO on a WAL append
// latches DurabilityDegraded, the background loop repairs the chain
// without any manual Checkpoint, updates flow again, and recovery after
// a clean close matches the live fact set.
func TestAutoRepairHealsBrokenChain(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	plan := deepdive.NewIOFaultPlan(1)
	kb := persistSpouseKB(t, deepdive.WithDataDir(dir),
		deepdive.WithIOFaults(plan),
		deepdive.WithRepairBackoff(20*time.Millisecond, 100*time.Millisecond))
	bmust(t, kb.Checkpoint(ctx))
	if _, err := kb.Apply(ctx, docUpdate(0)); err != nil {
		t.Fatal(err)
	}
	if st := kb.Health(); st.State != deepdive.Healthy || !st.AutoRepair || !st.Durable {
		t.Fatalf("fresh durable KB health = %+v", st)
	}

	plan.Arm(deepdive.IOWALAppend, deepdive.ErrInjectedIO)
	_, err := kb.Apply(ctx, docUpdate(1))
	if !errors.Is(err, deepdive.ErrDurabilitySuspended) {
		t.Fatalf("faulted update: got %v, want ErrDurabilitySuspended", err)
	}
	if !errors.Is(err, deepdive.ErrInjectedIO) {
		t.Fatalf("faulted update should carry the append failure: %v", err)
	}

	// Reads keep serving off the snapshot pointer while degraded.
	if kb.Snapshot() == nil || len(kb.Extractions("HasSpouse", 0)) == 0 {
		t.Fatal("reads unavailable while degraded")
	}

	// The repair checkpoint lands in the background — no manual call.
	waitHealth(t, kb, deepdive.Healthy, 10*time.Second)
	st := kb.Health()
	if st.WALBroken || st.AutoRepairs != 1 || st.RepairAttempts < 1 {
		t.Fatalf("post-repair health = %+v", st)
	}
	if _, err := kb.Apply(ctx, docUpdate(2)); err != nil {
		t.Fatalf("update after auto-repair: %v", err)
	}
	want := spouseBits(kb)
	bmust(t, kb.Close())

	kb2 := reopenSpouseKB(t, dir)
	defer kb2.Close()
	assertSameBits(t, want, spouseBits(kb2), "after auto-repair")
}

// TestReadOnlyEscalation: when every repair attempt fails (sticky
// ENOSPC on WAL rotation), ReadOnlyAfter consecutive failures escalate
// Degraded → ReadOnly; updates report ErrReadOnly, reads still serve,
// and clearing the fault lets the still-running loop heal to Healthy.
func TestReadOnlyEscalation(t *testing.T) {
	ctx := context.Background()
	plan := deepdive.NewIOFaultPlan(2)
	kb := persistSpouseKB(t, deepdive.WithDataDir(t.TempDir()),
		deepdive.WithIOFaults(plan),
		deepdive.WithRepairBackoff(5*time.Millisecond, 20*time.Millisecond),
		deepdive.WithReadOnlyAfter(2))
	defer kb.Close()
	bmust(t, kb.Checkpoint(ctx))

	plan.SetSticky(deepdive.IOWALCreate, deepdive.ErrInjectedNoSpace)
	plan.Arm(deepdive.IOWALAppend, deepdive.ErrInjectedNoSpace)
	if _, err := kb.Apply(ctx, docUpdate(0)); err == nil {
		t.Fatal("faulted update acknowledged")
	}
	waitHealth(t, kb, deepdive.ReadOnly, 10*time.Second)

	_, err := kb.Apply(ctx, docUpdate(1))
	if !errors.Is(err, deepdive.ErrReadOnly) {
		t.Fatalf("read-only update: got %v, want ErrReadOnly", err)
	}
	if !errors.Is(err, deepdive.ErrDurabilitySuspended) {
		t.Fatal("ErrReadOnly must refine ErrDurabilitySuspended for errors.Is")
	}
	if len(kb.Extractions("HasSpouse", 0)) == 0 {
		t.Fatal("reads unavailable while read-only")
	}

	// Disk comes back: the loop is still retrying and heals on its own.
	plan.SetSticky(deepdive.IOWALCreate, nil)
	waitHealth(t, kb, deepdive.Healthy, 10*time.Second)
	if _, err := kb.Apply(ctx, docUpdate(2)); err != nil {
		t.Fatalf("update after recovery from read-only: %v", err)
	}
	if st := kb.Health(); st.RepairFailures < 2 {
		t.Fatalf("expected >=2 counted repair failures, got %+v", st)
	}
}

// TestAutoRepairLesionStaysWedged: with auto-repair disabled the broken
// chain stays latched (no background attempts), exactly the manual-
// Checkpoint behavior the chaos harness uses as its lesion control.
func TestAutoRepairLesionStaysWedged(t *testing.T) {
	ctx := context.Background()
	plan := deepdive.NewIOFaultPlan(3)
	kb := persistSpouseKB(t, deepdive.WithDataDir(t.TempDir()),
		deepdive.WithIOFaults(plan),
		deepdive.WithAutoRepair(false),
		deepdive.WithRepairBackoff(5*time.Millisecond, 10*time.Millisecond))
	defer kb.Close()
	bmust(t, kb.Checkpoint(ctx))

	plan.Arm(deepdive.IOWALAppend, deepdive.ErrInjectedIO)
	if _, err := kb.Apply(ctx, docUpdate(0)); err == nil {
		t.Fatal("faulted update acknowledged")
	}
	time.Sleep(150 * time.Millisecond) // many backoff periods
	st := kb.Health()
	if st.State != deepdive.DurabilityDegraded || st.AutoRepair || st.RepairAttempts != 0 {
		t.Fatalf("lesion KB should stay wedged with zero attempts: %+v", st)
	}
	if _, err := kb.Apply(ctx, docUpdate(1)); !errors.Is(err, deepdive.ErrDurabilitySuspended) {
		t.Fatalf("wedged update: got %v, want ErrDurabilitySuspended", err)
	}

	// Manual repair still works.
	bmust(t, kb.Checkpoint(ctx))
	if kb.Health().State != deepdive.Healthy {
		t.Fatalf("manual Checkpoint should heal: %+v", kb.Health())
	}
	if _, err := kb.Apply(ctx, docUpdate(2)); err != nil {
		t.Fatal(err)
	}
}

// Package deepdive is a from-scratch Go implementation of the DeepDive
// knowledge-base-construction system described in "Incremental Knowledge
// Base Construction Using DeepDive" (Shin et al., VLDB 2015).
//
// A DeepDive program is a set of datalog-style rules over a user schema:
// deterministic candidate-generation rules, weighted feature-extraction
// and inference rules (with weight tying and UDF weight expressions), and
// supervision rules deriving evidence. Grounding evaluates the rules into
// a factor graph; Gibbs sampling estimates the marginal probability of
// every candidate fact; weight learning fits the rule weights to the
// evidence.
//
// The distinguishing feature, following the paper, is *incrementality*:
// after an initial materialization, both grounding (DRed delta rules) and
// inference (sampling and variational materialization with a rule-based
// optimizer) process updates — new documents, new rules, new supervision —
// orders of magnitude faster than re-running from scratch, with nearly
// identical output.
//
// The serving API separates the KB that answers queries from the pipeline
// that refreshes it. Reads go through immutable Snapshots (lock-free,
// safe under any concurrency); writes take a context.Context and publish
// a fresh snapshot per state change; the update queue coalesces streams
// of small deltas into batched applies.
//
// Quick start:
//
//	kb, _ := deepdive.OpenKB(source, deepdive.WithUDF("phrase", phraseFn))
//	kb.Load("Sentence", sentences)
//	ctx := context.Background()
//	kb.Init(ctx)
//	kb.Learn(ctx)
//	kb.Materialize(ctx)
//
//	// Serve queries from any number of goroutines:
//	snap := kb.Snapshot()
//	for _, f := range snap.Extractions("HasSpouse", 0.9) { ... }
//
//	// Stream updates through the coalescing queue:
//	t := kb.Updates().Submit(deepdive.Update{RuleSource: newRules})
//	res, _ := t.Wait(ctx)
//
// The Engine type is the deprecated synchronous wrapper of the pre-KB
// API; new code should use KB directly.
package deepdive

import (
	"context"
	"time"

	"deepdive/internal/db"
	"deepdive/internal/factor"
	"deepdive/internal/ground"
	"deepdive/internal/inc"
	"deepdive/internal/persist"
)

// Tuple is one relational row (all values are strings).
type Tuple = db.Tuple

// UDF maps bound weight-expression arguments to a tie key.
type UDF = ground.UDF

// Semantics selects the counting semantics g(n) of a rule (Figure 4 of
// the paper).
type Semantics = factor.Semantics

// The three semantics of Figure 4.
const (
	Linear  = factor.Linear
	Logical = factor.Logical
	Ratio   = factor.Ratio
)

// Strategy identifies the incremental-inference strategy an update used.
type Strategy = inc.Strategy

// Strategies reported by Update results.
const (
	StrategySampling    = inc.StrategySampling
	StrategyVariational = inc.StrategyVariational
	StrategyRerun       = inc.StrategyRerun
)

// I/O fault injection. Unlike the crash-point FaultHook (which simulates
// a process kill), an injected I/O fault *returns*: the write path sees
// ENOSPC/EIO-style errors or added latency and must degrade gracefully.
// IOFaultPlan is the concrete injector — arm one-shot, sticky, or
// probabilistic errors and per-op latency, then pass it via WithIOFaults.
type (
	IOInjector  = persist.Injector
	IOFaultOp   = persist.Op
	IOFaultPlan = persist.FaultPlan
)

// Injectable I/O operations of the durability layer.
const (
	IOWALAppend = persist.OpWALAppend // WAL record write
	IOWALSync   = persist.OpWALSync   // WAL fsync (the durability point)
	IOWALCreate = persist.OpWALCreate // WAL segment creation (checkpoint rotation)
	IOSnapWrite = persist.OpSnapWrite // snapshot temp-file write
	IOSnapSync  = persist.OpSnapSync  // snapshot fsync before rename
)

// Canonical injected-error classes, for errors.Is assertions.
var (
	ErrInjectedNoSpace = persist.ErrInjectedNoSpace
	ErrInjectedIO      = persist.ErrInjectedIO
)

// NewIOFaultPlan returns an empty injection plan; seed fixes the
// probabilistic arm's RNG so chaos schedules are reproducible.
func NewIOFaultPlan(seed int64) *IOFaultPlan { return persist.NewFaultPlan(seed) }

// Options configure a KB (or the deprecated Engine wrapper).
type Options struct {
	UDFs map[string]UDF

	// Learning.
	LearnEpochs    int     // full learning epochs (default 12)
	IncLearnEpochs int     // warmstart epochs per update (default 3)
	LearnStep      float64 // SGD step size (default 0.25)

	// Inference.
	InferBurnin int // Gibbs burn-in sweeps (default 30)
	InferKeep   int // kept worlds (default 300)

	// Incremental materialization.
	MatSamples int     // stored sample worlds (default 1200)
	Lambda     float64 // variational regularization λ (default 0.01)

	// Parallelism shards Gibbs sweeps (inference, learning chains,
	// materialization) across this many workers and, during incremental
	// inference, shards each Metropolis-Hastings proposal's acceptance
	// scoring over large changed-group sets: <= 1 sequential, n > 1 uses
	// n workers, negative means one worker per core. Ignored for sweep
	// sharding when Replicas selects the replica engine.
	Parallelism int

	// Replicas selects the DimmWitted-style replica engine for every Gibbs
	// chain the engine runs: each of n workers owns a full private
	// assignment copy (and, during learning, a private weight vector) over
	// the shared CSR pools, and the driver merges every SyncEvery sweeps —
	// assignments by consensus vote and ring exchange, weights by model
	// averaging. n >= 1 replicas, negative means one per core, 0 keeps the
	// sharded/sequential runtime.
	Replicas int
	// SyncEvery is the replica merge interval in sweeps (learning:
	// gradient steps); <= 0 selects the default (8).
	SyncEvery int

	// RebuildUpdates selects the rebuild lesion configuration: every
	// update marks the factor graph dirty for an O(V+F) rebuild of the
	// flat pools. Off by default — updates splice (ΔV, ΔF) into the live
	// graph through factor.Patch in O(|Δ|), with fragmentation from
	// accumulated tombstones triggering an occasional compacting rebuild.
	RebuildUpdates bool

	// MaxPending bounds the update queue's pending depth: when the queue
	// already holds this many unapplied updates, Submit blocks (and
	// SubmitCtx honours its context) until the writer drains a batch —
	// backpressure instead of unbounded producer memory. 0 means
	// unbounded.
	MaxPending int

	// SerializedUpdates selects the serialized-queue lesion: the update
	// queue finishes each batch (learning, inference, publication) before
	// grounding the next, instead of overlapping batch N+1's grounding
	// with batch N's finish stage. Results are bit-identical either way —
	// the pipeline exists purely for throughput — so this is a comparison
	// and debugging knob.
	SerializedUpdates bool

	// RematLowWater arms the quality autopilot's background
	// re-materializer: when an update leaves fewer than this many
	// unconsumed sample worlds in the store, the KB re-materializes Pr(0)
	// in the background (sampling off-lock in the write locks' idle gaps)
	// and atomically swaps the fresh engine in, resetting the
	// materialization boundary. Any incoming write preempts an in-flight
	// re-materialization. 0 (the default) disables background
	// re-materialization.
	RematLowWater int

	// RematBudget extends each background re-materialization beyond the
	// initial MatSamples worlds: after the baseline materialization the
	// sampler keeps drawing for this much wall-clock time (the paper's
	// "materialize as many samples as possible when idle" protocol,
	// budget-bounded). 0 stops at MatSamples.
	RematBudget time.Duration

	// RematForceAfter bounds re-materialization starvation under a
	// saturated update queue: after this many consecutive preempted (or
	// superseded) background re-materializations, the update queue holds
	// one cooperative slot — it waits for the in-flight (or a freshly
	// launched) re-materialization to finish before taking the next batch,
	// guaranteeing the store is eventually refilled no matter how dense
	// the write stream is. 0 (the default) never holds the queue.
	RematForceAfter int

	// DataDir enables durability: the directory holds snapshot files
	// (sectioned, checksummed images of the full KB state) and write-ahead
	// log segments recording every committed update. Opening a KB with a
	// DataDir that already holds a snapshot recovers from it — the latest
	// valid snapshot is loaded and the WAL tail replayed — instead of
	// starting empty (see KB.Recovered). Durability begins at the first
	// Checkpoint: Load/Init/Learn/Materialize are not logged, so the
	// intended lifecycle is to Checkpoint once the pipeline is
	// materialized and after any later monolithic writer. Empty (the
	// default) disables persistence.
	DataDir string

	// PersistFault is the crash-injection hook used by the recovery tests:
	// when set, it is invoked at the named kill points of the WAL-append
	// and checkpoint paths (see the Fault* constants), and a non-nil error
	// aborts the operation at exactly that point — simulating a crash whose
	// on-disk state recovery must handle. Nil in production.
	PersistFault FaultHook

	// IOFaults injects returned I/O errors and latency into the durability
	// layer's write paths — WAL append, WAL fsync, segment creation,
	// snapshot write, snapshot fsync (see the IO* operation constants).
	// The degraded-mode counterpart of the crash-point PersistFault hook:
	// the KB must survive these, not just recover from them. Nil in
	// production.
	IOFaults IOInjector

	// DisableAutoRepair turns the background WAL repair loop off: after a
	// failed append the KB stays DurabilityDegraded (refusing updates)
	// until a manual Checkpoint. This is the pre-self-healing behavior and
	// the chaos harness's lesion configuration. Off by default — a broken
	// durable chain repairs itself.
	DisableAutoRepair bool

	// RepairBackoff and RepairBackoffMax schedule the background repair
	// loop: the delay before each attempt is jittered over [b/2, b], with
	// b doubling from RepairBackoff and capped at RepairBackoffMax.
	// Defaults: 200ms and 10s.
	RepairBackoff    time.Duration
	RepairBackoffMax time.Duration

	// ReadOnlyAfter escalates DurabilityDegraded to ReadOnly after this
	// many consecutive failed auto-repair attempts. The repair loop keeps
	// retrying either way — the escalation changes the refusal error
	// (ErrReadOnly, serve-tier code "read_only") so clients stop
	// hot-retrying a KB whose disk is probably gone. 0 (the default)
	// never escalates.
	ReadOnlyAfter int

	// StaticOptimizer is the quality-autopilot lesion switch: the
	// pre-autopilot behavior of the §3.3 static strategy rules, per-update
	// change sets (no cumulative accumulation since materialization), and
	// no background re-materialization. By default the KB runs the §3.2
	// measured optimizer (strategy chosen from a non-consuming
	// acceptance-rate probe of the stored samples) and scores every update
	// against the cumulative post-materialization change set — the
	// combination that keeps marginals pinned to a from-scratch oracle
	// under sustained update streams (see the soak tests).
	StaticOptimizer bool

	// ProgressPublish auto-publishes partial progress on long coalesced
	// batches: when an update's grounding stage (delta evaluation + graph
	// commit) runs for at least this long, an intermediate snapshot is
	// published immediately after the commit — new candidates, evidence
	// values, and deletions become visible right away instead of after the
	// batch's learning and inference finish. The intermediate snapshot
	// carries the previous marginal vector: facts the batch grounded
	// report no marginal until the final publication. 0 (the default)
	// publishes only final states.
	ProgressPublish time.Duration

	// AsyncAveraging lets the replica learner overlap its model-averaging
	// barrier with the first gradient steps of the next segment: each
	// worker publishes its weights and immediately keeps stepping, then
	// folds the segment mean in when it lands (a one-segment-lag
	// correction). The trajectory differs from the barrier schedule but
	// stays deterministic for a fixed seed. Only meaningful when Replicas
	// selects the replica engine during learning.
	AsyncAveraging bool

	Seed int64
}

// Option mutates Options.
type Option func(*Options)

// WithUDF registers a user-defined weight function.
func WithUDF(name string, f UDF) Option {
	return func(o *Options) {
		if o.UDFs == nil {
			o.UDFs = map[string]UDF{}
		}
		o.UDFs[name] = f
	}
}

// WithSeed fixes the random seed (default 0).
func WithSeed(seed int64) Option { return func(o *Options) { o.Seed = seed } }

// WithLearning overrides learning parameters.
func WithLearning(epochs int, step float64) Option {
	return func(o *Options) { o.LearnEpochs = epochs; o.LearnStep = step }
}

// WithInference overrides inference parameters.
func WithInference(burnin, keep int) Option {
	return func(o *Options) { o.InferBurnin = burnin; o.InferKeep = keep }
}

// WithMaterialization overrides incremental materialization parameters.
func WithMaterialization(samples int, lambda float64) Option {
	return func(o *Options) { o.MatSamples = samples; o.Lambda = lambda }
}

// WithParallelism shards every Gibbs chain the engine runs (inference,
// learning, materialization) and the incremental acceptance scoring
// across n workers. n <= 1 keeps the sequential paths; a negative n
// means one worker per core.
func WithParallelism(n int) Option { return func(o *Options) { o.Parallelism = n } }

// WithReplicas runs every Gibbs chain on the replica engine: n workers
// with full private assignment (and, during learning, weight) copies,
// merged every syncEvery sweeps/steps (see Options.Replicas). n negative
// means one replica per core; syncEvery <= 0 selects the default.
func WithReplicas(n, syncEvery int) Option {
	return func(o *Options) { o.Replicas = n; o.SyncEvery = syncEvery }
}

// WithRebuildUpdates toggles the rebuild lesion configuration (see
// Options.RebuildUpdates). In-place O(Δ) patching is the default.
func WithRebuildUpdates(on bool) Option { return func(o *Options) { o.RebuildUpdates = on } }

// WithMaxPending bounds the update queue's pending depth (see
// Options.MaxPending): submissions past the bound block until the writer
// drains a batch. n <= 0 means unbounded (the default).
func WithMaxPending(n int) Option { return func(o *Options) { o.MaxPending = n } }

// WithSerializedUpdates toggles the serialized-queue lesion (see
// Options.SerializedUpdates). The pipelined path is the default.
func WithSerializedUpdates(on bool) Option { return func(o *Options) { o.SerializedUpdates = on } }

// WithAsyncAveraging lets replica learning overlap model averaging with
// the next segment's gradient steps (see Options.AsyncAveraging).
func WithAsyncAveraging(on bool) Option { return func(o *Options) { o.AsyncAveraging = on } }

// WithRematerialization arms the background re-materializer: when fewer
// than lowWater unconsumed samples remain after an update, Pr(0) is
// re-materialized in the background and swapped in atomically, with
// budget of extra sampling time beyond the baseline sample count (see
// Options.RematLowWater / Options.RematBudget). lowWater <= 0 disables.
func WithRematerialization(lowWater int, budget time.Duration) Option {
	return func(o *Options) { o.RematLowWater = lowWater; o.RematBudget = budget }
}

// WithRematForceAfter bounds re-materialization starvation (see
// Options.RematForceAfter): after n consecutive preempted background
// re-materializations the update queue holds one cooperative slot for
// the next one to finish. n <= 0 (the default) never holds the queue.
func WithRematForceAfter(n int) Option { return func(o *Options) { o.RematForceAfter = n } }

// WithProgressPublish auto-publishes an intermediate snapshot after the
// graph commit of any update whose grounding stage ran at least d (see
// Options.ProgressPublish). d <= 0 (the default) publishes only final
// states.
func WithProgressPublish(d time.Duration) Option {
	return func(o *Options) { o.ProgressPublish = d }
}

// WithDataDir enables durability under dir: checkpoints write snapshot
// files there, committed updates are write-ahead logged, and reopening
// recovers the latest snapshot plus the WAL tail (see Options.DataDir).
func WithDataDir(dir string) Option { return func(o *Options) { o.DataDir = dir } }

// WithPersistFaultHook installs a crash-injection hook for recovery
// testing (see Options.PersistFault).
func WithPersistFaultHook(h FaultHook) Option { return func(o *Options) { o.PersistFault = h } }

// WithIOFaults installs an I/O fault injector on the durability layer's
// write paths (see Options.IOFaults). Build one with NewIOFaultPlan.
func WithIOFaults(inj IOInjector) Option { return func(o *Options) { o.IOFaults = inj } }

// WithAutoRepair toggles the background WAL repair loop (see
// Options.DisableAutoRepair). On by default; WithAutoRepair(false) is
// the manual-Checkpoint lesion configuration.
func WithAutoRepair(on bool) Option { return func(o *Options) { o.DisableAutoRepair = !on } }

// WithRepairBackoff overrides the repair loop's backoff schedule (see
// Options.RepairBackoff). Non-positive values keep the defaults.
func WithRepairBackoff(base, max time.Duration) Option {
	return func(o *Options) { o.RepairBackoff = base; o.RepairBackoffMax = max }
}

// WithReadOnlyAfter escalates to the ReadOnly health state after n
// consecutive failed auto-repair attempts (see Options.ReadOnlyAfter).
// n <= 0 (the default) never escalates.
func WithReadOnlyAfter(n int) Option { return func(o *Options) { o.ReadOnlyAfter = n } }

// WithStaticOptimizer selects the quality-autopilot lesion configuration:
// static §3.3 strategy rules, per-update change sets, and no background
// re-materialization (see Options.StaticOptimizer).
func WithStaticOptimizer(on bool) Option { return func(o *Options) { o.StaticOptimizer = on } }

// WithInPlaceUpdates toggles O(Δ)-cost in-place factor-graph patching.
//
// Deprecated: in-place patching is on by default; use
// WithRebuildUpdates(true) to select the rebuild lesion configuration.
func WithInPlaceUpdates(on bool) Option { return func(o *Options) { o.RebuildUpdates = !on } }

func (o *Options) fill() {
	if o.LearnEpochs <= 0 {
		o.LearnEpochs = 12
	}
	if o.IncLearnEpochs <= 0 {
		o.IncLearnEpochs = 3
	}
	if o.LearnStep <= 0 {
		o.LearnStep = 0.25
	}
	if o.InferBurnin <= 0 {
		o.InferBurnin = 30
	}
	if o.InferKeep <= 0 {
		o.InferKeep = 300
	}
	if o.MatSamples <= 0 {
		o.MatSamples = 1200
	}
	if o.Lambda <= 0 {
		o.Lambda = 0.01
	}
	if o.RepairBackoff <= 0 {
		o.RepairBackoff = 200 * time.Millisecond
	}
	if o.RepairBackoffMax <= 0 {
		o.RepairBackoffMax = 10 * time.Second
	}
}

// Update is one increment of the development loop: new rules (as program
// source), inserted tuples, and/or deleted tuples.
type Update struct {
	RuleSource string
	Inserts    map[string][]Tuple
	Deletes    map[string][]Tuple
}

// UpdateResult reports how an update (or a coalesced batch of updates)
// was processed.
type UpdateResult struct {
	GroundTime time.Duration
	LearnTime  time.Duration
	InferTime  time.Duration
	Strategy   Strategy
	Acceptance float64
	// Probe is the measured acceptance-rate estimate the optimizer based
	// its strategy choice on, or -1 when the choice was made without
	// probing (static rules, empty change set, or an upfront store-level
	// decision).
	Probe float64
	// ProbeReused reports that the optimizer served its strategy verdict
	// from the per-batch probe memo instead of re-measuring (the probe for
	// an identical change-set fingerprint was amortized).
	ProbeReused bool
	NewVars     int
	NewFactors  int
	// Coalesced is how many queued updates the batch merged (1 for a
	// direct Apply; set by the update queue).
	Coalesced int
	// Epoch is the snapshot generation this update's results were
	// published under.
	Epoch uint64
	// IntermediateEpoch is the partial-progress snapshot published after
	// this update's graph commit, or 0 when none was (the grounding stage
	// finished under the Options.ProgressPublish threshold, or the
	// threshold is unset).
	IntermediateEpoch uint64
}

// Extraction is one fact of the output knowledge base.
type Extraction struct {
	Tuple       Tuple
	Probability float64
	Evidence    bool
}

// GraphStats summarizes the grounded factor graph.
type GraphStats struct {
	Variables  int
	Factors    int
	Weights    int
	Evidence   int
	QueryFacts int
	// Autopilot is the quality-autopilot state at publication time (nil
	// on snapshots published before Materialize).
	Autopilot *AutopilotStats
}

// Engine is the deprecated synchronous handle of one KBC system. It
// wraps a KB with the pre-serving API: no contexts, no snapshots, not
// safe for concurrent use (reads may interleave with writes only through
// the underlying KB's snapshot isolation).
//
// Deprecated: use OpenKB and the KB type; its Snapshot views are safe
// for concurrent serving, and its write operations accept contexts.
type Engine struct {
	kb *KB
}

// Open parses and validates a DeepDive program.
//
// Deprecated: use OpenKB.
func Open(source string, opts ...Option) (*Engine, error) {
	kb, err := OpenKB(source, opts...)
	if err != nil {
		return nil, err
	}
	return &Engine{kb: kb}, nil
}

// KB returns the serving handle the engine wraps, for migration.
func (e *Engine) KB() *KB { return e.kb }

// Load inserts base tuples into a base relation. Call before Init; use
// Update for changes afterwards.
func (e *Engine) Load(relation string, tuples []Tuple) error {
	return e.kb.Load(relation, tuples)
}

// Init performs the initial grounding (candidate generation, feature
// extraction, supervision, factor-graph construction).
func (e *Engine) Init() error { return e.kb.Init(context.Background()) }

// Learn fits rule weights from scratch (tied weights start at zero;
// fixed weights stay fixed).
func (e *Engine) Learn() time.Duration {
	d, _ := e.kb.Learn(context.Background())
	return d
}

// Infer runs Gibbs sampling from scratch on the current graph and stores
// marginals for every candidate fact.
func (e *Engine) Infer() time.Duration {
	d, _ := e.kb.Infer(context.Background())
	return d
}

// Materialize prepares the incremental-inference engine (sample bundles +
// variational approximation) over the current distribution. Call after
// Learn; afterwards Update serves changes incrementally.
func (e *Engine) Materialize() (time.Duration, error) {
	return e.kb.Materialize(context.Background())
}

// Update applies an increment: incremental grounding (DRed), warmstart
// learning when the model changed, and incremental inference under the
// optimizer's materialization strategy. Marginals are refreshed.
func (e *Engine) Update(u Update) (*UpdateResult, error) {
	return e.kb.Apply(context.Background(), u)
}

// Marginal returns the latest marginal probability of a candidate fact,
// or (0, false) when no such candidate exists. Evidence facts report
// their supervised value (0 or 1).
func (e *Engine) Marginal(relation string, t Tuple) (float64, bool) {
	return e.kb.Marginal(relation, t)
}

// Extractions returns the facts of a variable relation whose probability
// exceeds the threshold, including supervised-true evidence facts.
func (e *Engine) Extractions(relation string, threshold float64) []Extraction {
	return e.kb.Extractions(relation, threshold)
}

// Candidates returns every live candidate tuple of a variable relation.
func (e *Engine) Candidates(relation string) []Tuple {
	return e.kb.Candidates(relation)
}

// Stats reports the current grounding statistics.
func (e *Engine) Stats() GraphStats { return e.kb.Stats() }

// Relation exposes a read-only view of a database relation's tuples.
func (e *Engine) Relation(name string) []Tuple { return e.kb.Relation(name) }

// addWeightChanges marks groups whose weight values changed since
// materialization (relearning shifts the distribution).
func addWeightChanges(cs *inc.ChangeSet, eng *inc.Engine, newGraph *factor.Graph) {
	oldG := eng.OldGraph()
	const eps = 1e-9
	seen := map[int32]bool{}
	for _, gi := range cs.ChangedOld {
		seen[gi] = true
	}
	for gi := 0; gi < oldG.NumGroups(); gi++ {
		if seen[int32(gi)] {
			continue
		}
		w := oldG.GroupWeight(gi)
		if int(w) < newGraph.NumWeights() {
			if d := oldG.Weight(w) - newGraph.Weight(w); d > eps || d < -eps {
				cs.ChangedOld = append(cs.ChangedOld, int32(gi))
				cs.ChangedNew = append(cs.ChangedNew, int32(gi))
			}
		}
	}
}

// Package deepdive is a from-scratch Go implementation of the DeepDive
// knowledge-base-construction system described in "Incremental Knowledge
// Base Construction Using DeepDive" (Shin et al., VLDB 2015).
//
// A DeepDive program is a set of datalog-style rules over a user schema:
// deterministic candidate-generation rules, weighted feature-extraction
// and inference rules (with weight tying and UDF weight expressions), and
// supervision rules deriving evidence. Grounding evaluates the rules into
// a factor graph; Gibbs sampling estimates the marginal probability of
// every candidate fact; weight learning fits the rule weights to the
// evidence.
//
// The distinguishing feature, following the paper, is *incrementality*:
// after an initial materialization, both grounding (DRed delta rules) and
// inference (sampling and variational materialization with a rule-based
// optimizer) process updates — new documents, new rules, new supervision —
// orders of magnitude faster than re-running from scratch, with nearly
// identical output.
//
// Quick start:
//
//	eng, _ := deepdive.Open(source, deepdive.WithUDF("phrase", phraseFn))
//	eng.Load("Sentence", sentences)
//	eng.Init()
//	eng.Learn()
//	eng.Materialize()
//	res, _ := eng.Update(deepdive.Update{RuleSource: newRules})
//	for _, f := range eng.Extractions("HasSpouse", 0.9) { ... }
package deepdive

import (
	"fmt"
	"time"

	"deepdive/internal/datalog"
	"deepdive/internal/db"
	"deepdive/internal/factor"
	"deepdive/internal/gibbs"
	"deepdive/internal/ground"
	"deepdive/internal/inc"
	"deepdive/internal/learn"
)

// Tuple is one relational row (all values are strings).
type Tuple = db.Tuple

// UDF maps bound weight-expression arguments to a tie key.
type UDF = ground.UDF

// Semantics selects the counting semantics g(n) of a rule (Figure 4 of
// the paper).
type Semantics = factor.Semantics

// The three semantics of Figure 4.
const (
	Linear  = factor.Linear
	Logical = factor.Logical
	Ratio   = factor.Ratio
)

// Strategy identifies the incremental-inference strategy an update used.
type Strategy = inc.Strategy

// Strategies reported by Update results.
const (
	StrategySampling    = inc.StrategySampling
	StrategyVariational = inc.StrategyVariational
	StrategyRerun       = inc.StrategyRerun
)

// Options configure an Engine.
type Options struct {
	UDFs map[string]UDF

	// Learning.
	LearnEpochs    int     // full learning epochs (default 12)
	IncLearnEpochs int     // warmstart epochs per update (default 3)
	LearnStep      float64 // SGD step size (default 0.25)

	// Inference.
	InferBurnin int // Gibbs burn-in sweeps (default 30)
	InferKeep   int // kept worlds (default 300)

	// Incremental materialization.
	MatSamples int     // stored sample worlds (default 1200)
	Lambda     float64 // variational regularization λ (default 0.01)

	// Parallelism shards Gibbs sweeps (inference, learning chains, and
	// materialization) across this many workers: <= 1 sequential, n > 1
	// uses n worker shards, negative means one worker per core. Ignored
	// when Replicas selects the replica engine.
	Parallelism int

	// Replicas selects the DimmWitted-style replica engine for every Gibbs
	// chain the engine runs: each of n workers owns a full private
	// assignment copy (and, during learning, a private weight vector) over
	// the shared CSR pools, and the driver merges every SyncEvery sweeps —
	// assignments by consensus vote and ring exchange, weights by model
	// averaging. n >= 1 replicas, negative means one per core, 0 keeps the
	// sharded/sequential runtime.
	Replicas int
	// SyncEvery is the replica merge interval in sweeps (learning:
	// gradient steps); <= 0 selects the default (8).
	SyncEvery int

	// InPlaceUpdates makes Update splice (ΔV, ΔF) into the live factor
	// graph through factor.Patch in O(|Δ|) instead of rebuilding the flat
	// pools in O(V+F); fragmentation from accumulated tombstones triggers
	// an occasional compacting rebuild. Off by default.
	InPlaceUpdates bool

	Seed int64
}

// Option mutates Options.
type Option func(*Options)

// WithUDF registers a user-defined weight function.
func WithUDF(name string, f UDF) Option {
	return func(o *Options) {
		if o.UDFs == nil {
			o.UDFs = map[string]UDF{}
		}
		o.UDFs[name] = f
	}
}

// WithSeed fixes the random seed (default 0).
func WithSeed(seed int64) Option { return func(o *Options) { o.Seed = seed } }

// WithLearning overrides learning parameters.
func WithLearning(epochs int, step float64) Option {
	return func(o *Options) { o.LearnEpochs = epochs; o.LearnStep = step }
}

// WithInference overrides inference parameters.
func WithInference(burnin, keep int) Option {
	return func(o *Options) { o.InferBurnin = burnin; o.InferKeep = keep }
}

// WithMaterialization overrides incremental materialization parameters.
func WithMaterialization(samples int, lambda float64) Option {
	return func(o *Options) { o.MatSamples = samples; o.Lambda = lambda }
}

// WithParallelism shards every Gibbs chain the engine runs (inference,
// learning, materialization) across n workers. n <= 1 keeps the
// sequential sampler; a negative n means one worker per core.
func WithParallelism(n int) Option { return func(o *Options) { o.Parallelism = n } }

// WithReplicas runs every Gibbs chain on the replica engine: n workers
// with full private assignment (and, during learning, weight) copies,
// merged every syncEvery sweeps/steps (see Options.Replicas). n negative
// means one replica per core; syncEvery <= 0 selects the default.
func WithReplicas(n, syncEvery int) Option {
	return func(o *Options) { o.Replicas = n; o.SyncEvery = syncEvery }
}

// WithInPlaceUpdates toggles O(Δ)-cost in-place factor-graph patching on
// Update (see Options.InPlaceUpdates).
func WithInPlaceUpdates(on bool) Option { return func(o *Options) { o.InPlaceUpdates = on } }

func (o *Options) fill() {
	if o.LearnEpochs <= 0 {
		o.LearnEpochs = 12
	}
	if o.IncLearnEpochs <= 0 {
		o.IncLearnEpochs = 3
	}
	if o.LearnStep <= 0 {
		o.LearnStep = 0.25
	}
	if o.InferBurnin <= 0 {
		o.InferBurnin = 30
	}
	if o.InferKeep <= 0 {
		o.InferKeep = 300
	}
	if o.MatSamples <= 0 {
		o.MatSamples = 1200
	}
	if o.Lambda <= 0 {
		o.Lambda = 0.01
	}
}

// Engine is one KBC system: program, database, factor graph, learned
// weights, marginals, and (after Materialize) the incremental-inference
// engine. Engines are not safe for concurrent use.
type Engine struct {
	opts     Options
	grounder *ground.Grounder
	engine   *inc.Engine
	marg     []float64
	inited   bool
}

// Open parses and validates a DeepDive program.
func Open(source string, opts ...Option) (*Engine, error) {
	var o Options
	for _, f := range opts {
		f(&o)
	}
	o.fill()
	prog, err := datalog.Parse(source)
	if err != nil {
		return nil, err
	}
	udfs := ground.UDFRegistry{}
	for name, f := range o.UDFs {
		udfs[name] = f
	}
	g, err := ground.New(prog, udfs)
	if err != nil {
		return nil, err
	}
	g.SetInPlaceUpdates(o.InPlaceUpdates)
	return &Engine{opts: o, grounder: g}, nil
}

// Load inserts base tuples into a base relation. Call before Init; use
// Update for changes afterwards.
func (e *Engine) Load(relation string, tuples []Tuple) error {
	if e.inited {
		return fmt.Errorf("deepdive: Load after Init; use Update for incremental data")
	}
	return e.grounder.LoadBase(relation, tuples)
}

// Init performs the initial grounding (candidate generation, feature
// extraction, supervision, factor-graph construction).
func (e *Engine) Init() error {
	if err := e.grounder.Ground(); err != nil {
		return err
	}
	e.inited = true
	return nil
}

// frozen returns the non-learnable weight mask.
func (e *Engine) frozen(g *factor.Graph) []bool {
	mask := make([]bool, g.NumWeights())
	for i := range mask {
		mask[i] = true
	}
	for _, w := range e.grounder.LearnableWeights() {
		mask[w] = false
	}
	return mask
}

// Learn fits rule weights from scratch (tied weights start at zero;
// fixed weights stay fixed).
func (e *Engine) Learn() time.Duration {
	start := time.Now()
	g := e.grounder.Graph()
	warm := append([]float64(nil), g.Weights()...)
	for _, w := range e.grounder.LearnableWeights() {
		warm[w] = 0
	}
	learn.Train(g, learn.Options{
		Epochs:      e.opts.LearnEpochs,
		StepSize:    e.opts.LearnStep,
		Parallelism: e.opts.Parallelism,
		Replicas:    e.opts.Replicas,
		SyncEvery:   e.opts.SyncEvery,
		Seed:        e.opts.Seed + 1,
		Warmstart:   warm,
		Frozen:      e.frozen(g),
	})
	return time.Since(start)
}

// Infer runs Gibbs sampling from scratch on the current graph and stores
// marginals for every candidate fact.
func (e *Engine) Infer() time.Duration {
	start := time.Now()
	e.marg = inc.RerunWith(e.grounder.Graph(), e.opts.InferBurnin, e.opts.InferKeep, e.opts.Seed+2,
		gibbs.Runtime{Workers: e.opts.Parallelism, Replicas: e.opts.Replicas, SyncEvery: e.opts.SyncEvery})
	return time.Since(start)
}

// Materialize prepares the incremental-inference engine (sample bundles +
// variational approximation) over the current distribution. Call after
// Learn; afterwards Update serves changes incrementally.
func (e *Engine) Materialize() (time.Duration, error) {
	eng, err := inc.NewEngine(e.grounder.Graph(), inc.Options{
		MaterializationSamples: e.opts.MatSamples,
		Burnin:                 e.opts.InferBurnin,
		KeepSamples:            e.opts.InferKeep,
		Lambda:                 e.opts.Lambda,
		Parallelism:            e.opts.Parallelism,
		Replicas:               e.opts.Replicas,
		SyncEvery:              e.opts.SyncEvery,
		Seed:                   e.opts.Seed + 3,
	})
	if err != nil {
		return 0, err
	}
	e.engine = eng
	return eng.MaterializationTime(), nil
}

// Update is one increment of the development loop: new rules (as program
// source), inserted tuples, and/or deleted tuples.
type Update struct {
	RuleSource string
	Inserts    map[string][]Tuple
	Deletes    map[string][]Tuple
}

// UpdateResult reports how an update was processed.
type UpdateResult struct {
	GroundTime time.Duration
	LearnTime  time.Duration
	InferTime  time.Duration
	Strategy   Strategy
	Acceptance float64
	NewVars    int
	NewFactors int
}

// Update applies an increment: incremental grounding (DRed), warmstart
// learning when the model changed, and incremental inference under the
// optimizer's materialization strategy. Marginals are refreshed.
func (e *Engine) Update(u Update) (*UpdateResult, error) {
	if !e.inited {
		return nil, fmt.Errorf("deepdive: Update before Init")
	}
	if e.engine == nil {
		return nil, fmt.Errorf("deepdive: Update before Materialize")
	}
	var rules []*datalog.Rule
	if u.RuleSource != "" {
		prog := e.grounder.Program()
		combined := prog.String() + "\n" + u.RuleSource
		full, err := datalog.Parse(combined)
		if err != nil {
			return nil, err
		}
		rules = full.Rules[len(prog.Rules):]
	}
	res := &UpdateResult{}
	oldGraph := e.grounder.Graph()

	start := time.Now()
	delta, err := e.grounder.ApplyUpdate(ground.Update{
		NewRules: rules,
		Inserts:  u.Inserts,
		Deletes:  u.Deletes,
	})
	if err != nil {
		return nil, err
	}
	res.GroundTime = time.Since(start)
	res.NewVars = len(delta.NewVars)
	res.NewFactors = len(delta.AddedGroups)

	newGraph := e.grounder.Graph()
	if delta.StructureChanged() || delta.HasEvidenceChange() {
		start = time.Now()
		g := newGraph
		learn.Train(g, learn.Options{
			Epochs:      e.opts.IncLearnEpochs,
			StepSize:    e.opts.LearnStep,
			Parallelism: e.opts.Parallelism,
			Replicas:    e.opts.Replicas,
			SyncEvery:   e.opts.SyncEvery,
			Seed:        e.opts.Seed + 5,
			Warmstart:   append([]float64(nil), g.Weights()...),
			Frozen:      e.frozen(g),
		})
		res.LearnTime = time.Since(start)
	}

	cs := inc.FromDelta(delta)
	addWeightChanges(&cs, e.engine, newGraph)

	start = time.Now()
	var ir *inc.Result
	if e.engine.ChooseStrategy(cs) == inc.StrategySampling && cs.StructureChanged() {
		ir = e.engine.InferDecomposed(newGraph, cs, inc.ComponentGroups(newGraph))
	} else {
		ir = e.engine.Infer(newGraph, cs)
	}
	res.InferTime = time.Since(start)
	res.Strategy = ir.Strategy
	res.Acceptance = ir.AcceptanceRate
	e.marg = ir.Marginals
	_ = oldGraph
	return res, nil
}

// addWeightChanges marks groups whose weight values changed since
// materialization (relearning shifts the distribution).
func addWeightChanges(cs *inc.ChangeSet, eng *inc.Engine, newGraph *factor.Graph) {
	oldG := engOld(eng)
	const eps = 1e-9
	seen := map[int32]bool{}
	for _, gi := range cs.ChangedOld {
		seen[gi] = true
	}
	for gi := 0; gi < oldG.NumGroups(); gi++ {
		if seen[int32(gi)] {
			continue
		}
		w := oldG.GroupWeight(gi)
		if int(w) < newGraph.NumWeights() {
			if d := oldG.Weight(w) - newGraph.Weight(w); d > eps || d < -eps {
				cs.ChangedOld = append(cs.ChangedOld, int32(gi))
				cs.ChangedNew = append(cs.ChangedNew, int32(gi))
			}
		}
	}
}

// Marginal returns the latest marginal probability of a candidate fact,
// or (0, false) when no such candidate exists. Evidence facts report
// their supervised value (0 or 1).
func (e *Engine) Marginal(relation string, t Tuple) (float64, bool) {
	v, ok := e.grounder.VarOf(relation, t)
	if !ok || !e.grounder.IsLive(v) {
		return 0, false
	}
	g := e.grounder.Graph()
	if g.IsEvidence(v) {
		if g.EvidenceValue(v) {
			return 1, true
		}
		return 0, true
	}
	if e.marg == nil || int(v) >= len(e.marg) {
		return 0, false
	}
	return e.marg[v], true
}

// Extraction is one fact of the output knowledge base.
type Extraction struct {
	Tuple       Tuple
	Probability float64
	Evidence    bool
}

// Extractions returns the facts of a variable relation whose probability
// exceeds the threshold, including supervised-true evidence facts.
func (e *Engine) Extractions(relation string, threshold float64) []Extraction {
	g := e.grounder.Graph()
	var out []Extraction
	for _, v := range e.grounder.VarsOf(relation) {
		_, t := e.grounder.VarTuple(v)
		if g.IsEvidence(v) {
			if g.EvidenceValue(v) {
				out = append(out, Extraction{Tuple: t, Probability: 1, Evidence: true})
			}
			continue
		}
		if e.marg == nil || int(v) >= len(e.marg) {
			continue
		}
		if p := e.marg[v]; p > threshold {
			out = append(out, Extraction{Tuple: t, Probability: p})
		}
	}
	return out
}

// Candidates returns every live candidate tuple of a variable relation.
func (e *Engine) Candidates(relation string) []Tuple {
	var out []Tuple
	for _, v := range e.grounder.VarsOf(relation) {
		_, t := e.grounder.VarTuple(v)
		out = append(out, t)
	}
	return out
}

// GraphStats summarizes the grounded factor graph.
type GraphStats struct {
	Variables  int
	Factors    int
	Weights    int
	Evidence   int
	QueryFacts int
}

// Stats reports the current grounding statistics.
func (e *Engine) Stats() GraphStats {
	g := e.grounder.Graph()
	st := GraphStats{
		Variables: g.NumVars(),
		Factors:   e.grounder.NumGroundings(),
		Weights:   g.NumWeights(),
	}
	for v := 0; v < g.NumVars(); v++ {
		if g.IsEvidence(factor.VarID(v)) {
			st.Evidence++
		}
	}
	st.QueryFacts = st.Variables - st.Evidence
	return st
}

// Relation exposes a read-only view of a database relation's tuples.
func (e *Engine) Relation(name string) []Tuple {
	r := e.grounder.DB().Relation(name)
	if r == nil {
		return nil
	}
	return r.Tuples()
}

// engOld accesses the engine's materialized graph via the exported API.
func engOld(eng *inc.Engine) *factor.Graph { return eng.OldGraph() }
